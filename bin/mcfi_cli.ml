(* mcfi: the command-line front end to the toolchain (paper §7).

   Subcommands:
     run       compile (+instrument+verify+link+load) and execute a
               MiniC program
     compile   compile modules to .mobj object files (separately!)
     inspect   print an object file's code, sites and type information
     analyze   run the C1/C2 analyzer on a source file
     stats     execute under full telemetry and export the metrics
     trace     execute under telemetry and print the event trace
     torture   seeded multi-domain torture of the runtime protocols
     fuzz      property-based fuzzing against the differential oracle bank
     fleet     tenant-fleet supervision under seeded chaos
     forensics validate and replay flight-recorder forensic bundles
     top       live fleet dashboard over the time-series rings
     bench     list the built-in benchmark suite

   Examples:
     mcfi run prog.mc
     mcfi run --plain prog.mc
     mcfi compile -o prog.mobj prog.mc
     mcfi inspect prog.mobj
     mcfi analyze prog.mc
     mcfi stats prog.mc --format prometheus
     mcfi stats prog.mc --dispatch
     mcfi trace prog.mc --last 25
     mcfi torture --telemetry
     mcfi torture --kill-every 50 --shards 4 --forensics /tmp/bundles
     mcfi forensics /tmp/bundles/*.json
     mcfi top --once *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let module_name path = Filename.remove_extension (Filename.basename path)

(* ---- run ---- *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"MiniC source file")
  in
  let plain =
    Arg.(value & flag & info [ "plain" ] ~doc:"run without MCFI protection")
  in
  let tco =
    Arg.(value & flag & info [ "tco" ]
           ~doc:"enable tail-call optimization (the x86-64 flavour)")
  in
  let fuel =
    Arg.(value & opt int 500_000_000 & info [ "fuel" ]
           ~doc:"instruction budget")
  in
  let dynamic =
    Arg.(value & opt_all file [] & info [ "dl" ]
           ~doc:"MiniC module loadable at runtime via dlopen(name)")
  in
  let run file plain tco fuel dynamic =
    let dynamic =
      List.map (fun p -> (module_name p, read_file p)) dynamic
    in
    match
      Mcfi.Pipeline.run_source ~instrumented:(not plain) ~tco ~fuel ~dynamic
        (read_file file)
    with
    | reason, output ->
      print_string output;
      Fmt.pr "[%a]@." Mcfi_runtime.Machine.pp_exit_reason reason;
      (match reason with Mcfi_runtime.Machine.Exited 0 -> 0 | _ -> 1)
    | exception Mcfi.Pipeline.Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"compile, instrument, verify, load and execute")
    Term.(const run $ file $ plain $ tco $ fuel $ dynamic)

(* ---- compile ---- *)

let compile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"MiniC source file")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT"
           ~doc:"output object file (default: FILE.mobj)")
  in
  let plain =
    Arg.(value & flag & info [ "plain" ] ~doc:"skip instrumentation")
  in
  let tco = Arg.(value & flag & info [ "tco" ] ~doc:"tail-call optimization") in
  let freestanding =
    Arg.(value & flag & info [ "freestanding" ]
           ~doc:"do not prepend the libc prototypes")
  in
  let compile file output plain tco freestanding =
    let out = Option.value output ~default:(module_name file ^ ".mobj") in
    let src = read_file file in
    let src = if freestanding then src else Suite.Libc.header ^ src in
    match
      let obj =
        Mcfi.Pipeline.compile_module ~tco ~name:(module_name file) src
      in
      if plain then obj else Mcfi.Pipeline.instrument obj
    with
    | obj ->
      Mcfi_compiler.Objfile.save out obj;
      Fmt.pr "wrote %s (%d items, %d sites, instrumented=%b)@." out
        (List.length obj.Mcfi_compiler.Objfile.o_items)
        (List.length obj.Mcfi_compiler.Objfile.o_sites)
        obj.Mcfi_compiler.Objfile.o_instrumented;
      0
    | exception Mcfi.Pipeline.Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"compile one module, separately, to a .mobj")
    Term.(const compile $ file $ output $ plain $ tco $ freestanding)

(* ---- inspect ---- *)

let inspect_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"a .mobj object file")
  in
  let disasm =
    Arg.(value & flag & info [ "disasm" ] ~doc:"print the laid-out code")
  in
  let inspect file disasm =
    let obj = Mcfi_compiler.Objfile.load file in
    let open Mcfi_compiler.Objfile in
    Fmt.pr "module %s (instrumented=%b)@." obj.o_name obj.o_instrumented;
    Fmt.pr "functions:@.";
    List.iter
      (fun fi ->
        Fmt.pr "  %-20s : %a%s%s@." fi.fi_name Minic.Ast.pp_fun_ty fi.fi_ty
          (if fi.fi_defined then "" else " (extern)")
          (if fi.fi_address_taken then " (address-taken)" else ""))
      obj.o_functions;
    Fmt.pr "indirect-branch sites (Bary slot order):@.";
    List.iteri (fun k s -> Fmt.pr "  %3d: %a@." k pp_site s) obj.o_sites;
    Fmt.pr "%d data definitions, %d words@." (List.length obj.o_data)
      (data_size obj);
    if disasm then begin
      match
        Vmisa.Asm.assemble ~base:Vmisa.Abi.code_base
          ~resolve_code:(fun _ -> Some 0)
          ~resolve_data:(fun _ -> Some 16)
          obj.o_items
      with
      | Ok prog ->
        Fmt.pr "code (%d bytes):@." (String.length prog.Vmisa.Asm.image);
        let listing, _ =
          Vmisa.Disasm.disassemble ~base:prog.Vmisa.Asm.base
            prog.Vmisa.Asm.image
        in
        Vmisa.Disasm.pp_listing Fmt.stdout listing
      | Error e -> Fmt.epr "cannot lay out: %a@." Vmisa.Asm.pp_error e
    end;
    0
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"show an object file's auxiliary information")
    Term.(const inspect $ file $ disasm)

(* ---- exec: link saved object files and run ---- *)

let exec_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.mobj"
           ~doc:"instrumented object files (compile with `mcfi compile`); \
                 libc and the start stub are linked in automatically")
  in
  let fuel =
    Arg.(value & opt int 500_000_000 & info [ "fuel" ]
           ~doc:"instruction budget")
  in
  let exec files fuel =
    match
      let objs = List.map Mcfi_compiler.Objfile.load files in
      List.iter
        (fun (o : Mcfi_compiler.Objfile.t) ->
          if not o.o_instrumented then
            failwith (o.o_name ^ " is not instrumented"))
        objs;
      let libc =
        Mcfi.Pipeline.instrument
          (Mcfi.Pipeline.compile_module ~name:"libc" Suite.Libc.source)
      in
      let start =
        Mcfi.Pipeline.instrument (Mcfi_runtime.Linker.start_module ())
      in
      let exe =
        Mcfi_runtime.Linker.link ~name:"a.out" (start :: libc :: objs)
      in
      let proc = Mcfi_runtime.Process.create ~instrumented:true () in
      Mcfi_runtime.Process.load proc exe;
      let reason = Mcfi_runtime.Process.run ~fuel proc in
      (reason, Mcfi_runtime.Machine.output (Mcfi_runtime.Process.machine proc))
    with
    | reason, output ->
      print_string output;
      Fmt.pr "[%a]@." Mcfi_runtime.Machine.pp_exit_reason reason;
      (match reason with Mcfi_runtime.Machine.Exited 0 -> 0 | _ -> 1)
    | exception Mcfi_runtime.Linker.Error msg ->
      Fmt.epr "link error: %s@." msg;
      2
    | exception Mcfi_runtime.Process.Error msg ->
      Fmt.epr "load error: %s@." msg;
      2
    | exception Failure msg ->
      Fmt.epr "error: %s@." msg;
      2
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:"statically link instrumented object files and execute")
    Term.(const exec $ files $ fuel)

(* ---- analyze ---- *)

let analyze_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"MiniC source file")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"list every cast site")
  in
  let analyze file verbose =
    let src = read_file file in
    match
      Minic.Typecheck.check
        (Minic.Parser.parse ~name:(module_name file)
           (Suite.Libc.header ^ src))
    with
    | info ->
      let r = Minic.Analyzer.analyze ~source:src info in
      Fmt.pr
        "SLOC %d | VBE %d | UC %d DC %d MF %d SU %d NF %d | VAE %d (K1 %d, K2 %d)@."
        r.sloc r.vbe r.uc r.dc r.mf r.su r.nf r.vae r.k1 r.k2;
      if verbose then
        List.iter (Fmt.pr "  %a@." Minic.Analyzer.pp_violation) r.violations;
      if r.k1 > 0 then begin
        Fmt.pr "note: K1 cases can break the type-matching CFG; fix them with@.";
        Fmt.pr "      wrapper functions or type adjustments (paper, section 6)@."
      end;
      0
    | exception Minic.Typecheck.Error (msg, loc) ->
      Fmt.epr "type error at %a: %s@." Minic.Ast.pp_loc loc msg;
      2
    | exception Minic.Parser.Error (msg, loc) ->
      Fmt.epr "parse error at %a: %s@." Minic.Ast.pp_loc loc msg;
      2
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"report C1 violations (paper Tables 1 and 2)")
    Term.(const analyze $ file $ verbose)

(* ---- stats / trace: run a program under telemetry ---- *)

(* Shared runner: compile FILE (plus any --dl modules), execute it with
   telemetry in detail mode (exact outcome tallies — a one-shot program
   run is not the place to sample), and hand the process back. *)
let observed_run file fuel dynamic =
  Telemetry.enable ();
  Telemetry.set_detail true;
  Telemetry.reset ();
  let dynamic = List.map (fun p -> (module_name p, read_file p)) dynamic in
  let proc =
    Mcfi.Pipeline.build_process
      ~sources:[ (module_name file, read_file file) ]
      ~dynamic ()
  in
  let reason = Mcfi_runtime.Process.run ~fuel proc in
  (proc, reason)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"MiniC source file")

let fuel_arg =
  Arg.(value & opt int 500_000_000 & info [ "fuel" ]
         ~doc:"instruction budget")

let dynamic_arg =
  Arg.(value & opt_all file [] & info [ "dl" ]
         ~doc:"MiniC module loadable at runtime via dlopen(name)")

let stats_cmd =
  let format =
    Arg.(value
         & opt (enum [ ("pretty", `Pretty); ("prometheus", `Prometheus);
                       ("json", `Json) ]) `Pretty
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"output format: $(b,pretty), $(b,prometheus) or $(b,json)")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ]
           ~doc:"suppress the program's own output")
  in
  let dispatch =
    Arg.(value & flag & info [ "dispatch" ]
           ~doc:"run the program a second time, untraced, on the threaded \
                 engine and report its dispatch internals (superinstruction \
                 fusion, hoist-cache traffic, pre-decode churn); the \
                 counters also land in the exported metrics as \
                 $(b,mcfi_dispatch_*)")
  in
  (* The threaded engine falls back to byte stepping while the tracer is
     on, so its internals are measured on a second, untraced execution of
     the same program; the counters are folded into the metrics registry
     afterwards so every export format carries them. *)
  let threaded_pass file fuel dynamic =
    Telemetry.disable ();
    let dynamic = List.map (fun p -> (module_name p, read_file p)) dynamic in
    let proc =
      Mcfi.Pipeline.build_process
        ~sources:[ (module_name file, read_file file) ]
        ~dynamic ()
    in
    let m = Mcfi_runtime.Process.machine proc in
    Mcfi_runtime.Machine.set_dispatch m Mcfi_runtime.Machine.Threaded;
    ignore (Mcfi_runtime.Process.run ~fuel proc);
    Telemetry.enable ();
    Mcfi_runtime.Machine.publish_dispatch_stats m;
    Mcfi_runtime.Machine.dispatch_stats m
  in
  let redteam_flag =
    Arg.(value & flag & info [ "redteam" ]
           ~doc:"also render the attack-surface table: per corruptible \
                 indirect-branch site, the in-class targets the installed \
                 tables admit, plus the equivalence-class-size histogram")
  in
  let stats file format quiet fuel dynamic dispatch redteam =
    match observed_run file fuel dynamic with
    | proc, reason ->
      let m = Mcfi_runtime.Process.machine proc in
      if not quiet then print_string (Mcfi_runtime.Machine.output m);
      let dstats = if dispatch then Some (threaded_pass file fuel dynamic)
                   else None in
      if redteam then
        (match Redteam.Reach.compute proc with
        | Some reach -> Fmt.pr "%a" Redteam.Reach.pp_table reach
        | None -> Fmt.pr "attack surface: process is uninstrumented@.");
      (match format with
      | `Prometheus -> print_string (Telemetry.Export.prometheus ())
      | `Json -> print_endline (Telemetry.Export.json ())
      | `Pretty ->
        Fmt.pr "%a@." Telemetry.Export.pp_stats ();
        (match Mcfi_runtime.Machine.profile m with
        | [] -> ()
        | prof ->
          Fmt.pr "instructions retired by class:@.";
          List.iter (fun (cls, n) -> Fmt.pr "  %-16s %12d@." cls n) prof);
        (match Mcfi_runtime.Machine.branch_profile m with
        | [] -> ()
        | bp ->
          Fmt.pr "indirect-branch site executions (Bary slot: count):@.";
          List.iter (fun (slot, n) -> Fmt.pr "  %4d: %d@." slot n) bp);
        (match dstats with
        | None -> ()
        | Some ds ->
          Fmt.pr "threaded-dispatch internals (untraced second pass):@.";
          List.iter (fun (k, n) -> Fmt.pr "  %-20s %12d@." k n) ds));
      (match reason with Mcfi_runtime.Machine.Exited 0 -> 0 | _ -> 1)
    | exception Mcfi.Pipeline.Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"execute a program under full telemetry and export the metrics")
    Term.(const stats $ file_arg $ format $ quiet $ fuel_arg $ dynamic_arg
          $ dispatch $ redteam_flag)

let trace_cmd =
  let last =
    Arg.(value & opt int 40 & info [ "last" ] ~docv:"N"
           ~doc:"print only the last N events (0 = all)")
  in
  let trace file last fuel dynamic =
    match observed_run file fuel dynamic with
    | _proc, reason ->
      let events = Telemetry.drain () in
      let total = List.length events in
      let shown =
        if last > 0 && total > last then begin
          Fmt.pr "... (%d earlier events)@." (total - last);
          List.filteri (fun i _ -> i >= total - last) events
        end
        else events
      in
      List.iter (Fmt.pr "%a@." Telemetry.Event.pp) shown;
      Fmt.pr "%d events in trace (%d emitted, %d dropped to wraparound)@."
        total
        (Telemetry.events_emitted ())
        (Telemetry.events_dropped ());
      (match reason with Mcfi_runtime.Machine.Exited 0 -> 0 | _ -> 1)
    | exception Mcfi.Pipeline.Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"execute a program under telemetry and print the merged event \
             trace")
    Term.(const trace $ file_arg $ last $ fuel_arg $ dynamic_arg)

(* ---- torture ---- *)

let torture_cmd =
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED"
           ~doc:"master seed; a failing run prints the seed to replay")
  in
  let scenarios =
    Arg.(value & opt int 1 & info [ "scenarios" ]
           ~doc:"number of seed-derived scenarios to run")
  in
  let long =
    Arg.(value & flag & info [ "long" ]
           ~doc:"sustained run: several scenarios, each with the full \
                 acceptance dimensions and a loader storm")
  in
  let checkers =
    Arg.(value & opt (some int) None & info [ "checkers" ]
           ~doc:"override: checker domains")
  in
  let updaters =
    Arg.(value & opt (some int) None & info [ "updaters" ]
           ~doc:"override: updater domains")
  in
  let updates =
    Arg.(value & opt (some int) None & info [ "updates" ]
           ~doc:"override: total update transactions")
  in
  let kill_every =
    Arg.(value & opt (some int) None & info [ "kill-every" ]
           ~doc:"override: kill an updater mid-install every N updates \
                 (0 = never)")
  in
  let loads =
    Arg.(value & opt (some int) None & info [ "loads" ]
           ~doc:"override: loader-storm dlopen count (0 = storm off)")
  in
  let telemetry =
    Arg.(value & flag & info [ "telemetry" ]
           ~doc:"run with telemetry enabled and print the stats report \
                 after each scenario (sampled mode: the low-overhead \
                 production default)")
  in
  let forensics =
    Arg.(value & opt (some string) None & info [ "forensics" ] ~docv:"DIR"
           ~doc:"write one forensic bundle JSON into DIR per \
                 flight-recorder trigger (injected kill, oracle anomaly, \
                 failed check, ...); replay them with $(b,mcfi forensics)")
  in
  let dispatch_conv =
    let parse s =
      match Mcfi_runtime.Machine.dispatch_of_string s with
      | Ok v -> Ok v
      | Error e -> Error (`Msg e)
    in
    Arg.conv
      ( parse,
        fun ppf d -> Fmt.string ppf (Mcfi_runtime.Machine.dispatch_name d) )
  in
  let dispatch =
    Arg.(value & opt (some dispatch_conv) None & info [ "dispatch" ]
           ~docv:"ENGINE"
           ~doc:"override: the check execution path — $(b,byte) (a full \
                 table read per check) or $(b,threaded) (the threaded \
                 engine's model: version-hoisted reads cached per site, \
                 revalidated on the shard sequence word alone)")
  in
  let stm_conv =
    let parse s =
      match Idtables.Stm.of_string s with
      | Ok v -> Ok v
      | Error e -> Error (`Msg e)
    in
    Arg.conv (parse, Idtables.Stm.pp)
  in
  let shards =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
           ~doc:"override: split the tables into N independently versioned \
                 shard fault domains (default 1)")
  in
  let stm =
    Arg.(value & opt (some stm_conv) None & info [ "stm" ] ~docv:"VARIANT"
           ~doc:"override: the commit protocol — $(b,tml), $(b,norec) \
                 (NOrec-style value validation) or $(b,seqlock) \
                 (ticket-lock seqlock)")
  in
  let torture seed scenarios long checkers updaters updates kill_every loads
      shards stm dispatch telemetry forensics =
    if telemetry then Telemetry.enable ();
    if forensics <> None then Obs.Flightrec.set_dir forensics;
    let override v o = Option.value o ~default:v in
    let scenario i =
      let seed = Int64.add seed (Int64.of_int i) in
      let sc =
        if long then
          { (Stress.default ~seed) with
            Stress.updates = 40_000;
            loader_loads = 24;
            loader_fault_one_in = 3;
          }
        else if i = 0 then Stress.default ~seed
        else Stress.generate ~seed
      in
      {
        sc with
        Stress.checkers = override sc.Stress.checkers checkers;
        updaters = override sc.Stress.updaters updaters;
        updates = override sc.Stress.updates updates;
        kill_every = override sc.Stress.kill_every kill_every;
        loader_loads = override sc.Stress.loader_loads loads;
        shards = override sc.Stress.shards shards;
        stm = override sc.Stress.stm stm;
        hoisted =
          (match dispatch with
          | None -> sc.Stress.hoisted
          | Some Mcfi_runtime.Machine.Byte -> false
          | Some Mcfi_runtime.Machine.Threaded -> true);
      }
    in
    let n = if long then max 3 scenarios else scenarios in
    let failures = ref 0 in
    for i = 0 to n - 1 do
      let sc = scenario i in
      Fmt.pr "@[<v>scenario %d/%d: %a@]@." (i + 1) n Stress.pp_scenario sc;
      let r = Stress.run sc in
      Fmt.pr "%a@.@." Stress.pp_report r;
      if telemetry then Fmt.pr "%a@.@." Telemetry.Export.pp_stats ();
      if r.Stress.rp_anomalies <> [] then incr failures
    done;
    (match forensics with
    | Some dir ->
      Fmt.pr "forensics: %d bundle(s) written to %s@."
        (List.length (Obs.Flightrec.files_written ()))
        dir
    | None -> ());
    if !failures > 0 then begin
      Fmt.epr "torture: %d scenario(s) with anomalies (seed %Ld)@." !failures
        seed;
      1
    end
    else 0
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:"multi-domain torture of the transaction and linking protocols, \
             validated by the epoch-history oracle")
    Term.(const torture $ seed $ scenarios $ long $ checkers $ updaters
          $ updates $ kill_every $ loads $ shards $ stm $ dispatch $ telemetry
          $ forensics)

(* ---- forensics: validate and replay flight-recorder bundles ---- *)

let forensics_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"BUNDLE.json"
           ~doc:"forensic bundle files written by the flight recorder \
                 (--forensics DIR on torture and fleet runs)")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ]
           ~doc:"validate only; print nothing but errors")
  in
  (* exit status: 0 all bundles valid, 1 a bundle failed validation,
     2 a file could not be read or parsed at all *)
  let replay files quiet =
    let worst = ref 0 in
    List.iter
      (fun path ->
        match Mcfi.Forensics.of_file path with
        | Error msg ->
          Fmt.epr "%s: %s@." path msg;
          worst := max !worst 2
        | Ok bundle -> (
          match Mcfi.Forensics.validate bundle with
          | Error msg ->
            Fmt.epr "%s: invalid bundle: %s@." path msg;
            worst := max !worst 1
          | Ok () ->
            if not quiet then
              Fmt.pr "@[<v>%s:@,%a@]@.@." path Mcfi.Forensics.pp bundle))
      files;
    !worst
  in
  Cmd.v
    (Cmd.info "forensics"
       ~doc:"validate flight-recorder forensic bundles and replay their \
             event tails")
    Term.(const replay $ files $ quiet)

(* ---- top: live fleet dashboard ---- *)

let top_cmd =
  let seed =
    Arg.(value & opt int64 7L & info [ "seed" ] ~docv:"SEED"
           ~doc:"fleet campaign seed")
  in
  let ticks =
    Arg.(value & opt (some int) None & info [ "ticks" ]
           ~doc:"override: supervision rounds")
  in
  let shards =
    Arg.(value & opt (some int) None & info [ "shards" ]
           ~doc:"override: shard fault domains")
  in
  let full =
    Arg.(value & flag & info [ "full" ]
           ~doc:"drive the full acceptance-gate fleet (64 tenants) instead \
                 of the smoke fleet")
  in
  let slo_breaker =
    Arg.(value & flag & info [ "slo-breaker" ]
           ~doc:"let SLO burn-rate alerts trip the shard circuit breaker")
  in
  let once =
    Arg.(value & flag & info [ "once" ]
           ~doc:"run the fleet to completion, render a single frame without \
                 cursor control, and exit (for CI and tests)")
  in
  let interval =
    Arg.(value & opt float 0.5 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"redraw period")
  in
  let no_color =
    Arg.(value & flag & info [ "no-color" ] ~doc:"disable ANSI colors")
  in
  let top seed ticks shards full slo_breaker once interval no_color =
    let base =
      if full then Supervisor.Fleet.default ~seed
      else Supervisor.Fleet.smoke ~seed
    in
    let fc =
      {
        base with
        Supervisor.Fleet.fc_ticks =
          Option.value ticks ~default:base.Supervisor.Fleet.fc_ticks;
        fc_shards = Option.value shards ~default:base.Supervisor.Fleet.fc_shards;
        fc_slo_breaker = base.Supervisor.Fleet.fc_slo_breaker || slo_breaker;
      }
    in
    let color = not no_color in
    if once then begin
      (* Fleet.run resets the observability registries on entry, not on
         exit, so the time-series data is still live for the frame. *)
      let r = Supervisor.Fleet.run fc in
      print_string (Obs.Dashboard.render ~color ());
      Fmt.pr "fleet %s: %d/%d tenants alive, %d alert(s)@."
        (if Supervisor.Fleet.ok r then "ok" else "FAILED")
        r.Supervisor.Fleet.fr_survivors fc.Supervisor.Fleet.fc_tenants
        r.Supervisor.Fleet.fr_slo_alerts;
      if Supervisor.Fleet.ok r then 0 else 1
    end
    else begin
      let result = Atomic.make None in
      let worker =
        Domain.spawn (fun () ->
            Atomic.set result (Some (Supervisor.Fleet.run fc)))
      in
      let rec redraw () =
        if Atomic.get result = None then begin
          print_string (Obs.Dashboard.frame ~color ());
          flush stdout;
          Unix.sleepf interval;
          redraw ()
        end
      in
      redraw ();
      Domain.join worker;
      print_string (Obs.Dashboard.frame ~color ());
      match Atomic.get result with
      | Some r ->
        Fmt.pr "%a@." Supervisor.Fleet.pp_report r;
        if Supervisor.Fleet.ok r then 0 else 1
      | None -> 1
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"run a fleet while redrawing a live terminal dashboard over \
             the time-series rings (flight recorder, SLO burn rates, \
             sparklines)")
    Term.(const top $ seed $ ticks $ shards $ full $ slo_breaker $ once
          $ interval $ no_color)

(* ---- bench ---- *)

let bench_cmd =
  let schema_version =
    Arg.(value & flag & info [ "schema-version" ]
           ~doc:"print the BENCH_*.json schema version this build emits \
                 and exit (CI checks committed artifacts against it)")
  in
  let list schema =
    if schema then begin
      Fmt.pr "%d@." Mcfi.Benchjson.schema_version;
      0
    end
    else begin
      List.iter
        (fun (b : Suite.Programs.benchmark) ->
          Fmt.pr "%-12s (%s): %s@." b.name b.spec_name b.description)
        Suite.Programs.all;
      Fmt.pr "run them all with: dune exec bench/main.exe@.";
      0
    end
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"list the built-in benchmark suite")
    Term.(const list $ schema_version)

let () =
  let doc = "the MCFI toolchain: modular control-flow integrity" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "mcfi" ~doc)
          [ run_cmd; compile_cmd; exec_cmd; inspect_cmd; analyze_cmd;
            stats_cmd; trace_cmd; torture_cmd; Fuzz.Cli.cmd;
            Redteam.Cli.cmd; Supervisor.Cli.cmd; forensics_cmd; top_cmd;
            bench_cmd ]))
