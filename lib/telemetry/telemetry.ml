(* Domain-safe observability for the MCFI runtime.

   Three pieces, all process-global:

   - per-domain trace rings: fixed-size event records (five ints) written
     by the owning domain with plain array stores and published with one
     atomic store of the ring's write cursor.  A global atomic sequence
     counter stamps every event, so draining all rings and sorting by
     stamp yields one merged, causally ordered trace (OCaml atomics are
     sequentially consistent: if event A's effects were visible to the
     domain that emitted B, then seq(A) < seq(B)).

   - a metrics registry: named monotonic counters and log2-bucketed
     histograms, all [Atomic] cells, safe to bump from any domain.

   - exporters: a Prometheus text exposition, a JSON document, and a
     human-readable stats report.

   Everything is gated on [enabled]: a disabled hook is one atomic load
   and no allocation, so the hooks can live permanently inside the
   check/update transactions without a measurable tax. *)

(* ---- the gates ---- *)

(* The three gate words are read on every check by every checker domain,
   and [sample_request] is also written by updater-side emits.  Module
   initialization allocates them back to back, which lands all three on
   one cache line: a single [sample_request] store then invalidates the
   line holding [enabled_flag] for every checker — measured at ~10% of
   multi-domain check throughput (BENCH_7).  The retained pad arrays
   keep each gate on its own line; they are module fields, so they stay
   live and the spacing survives promotion out of the minor heap. *)

let enabled_flag = Atomic.make false
let _pad_gate0 = Array.make 15 0

(* Detail mode: exact per-check outcome tallies and wheel-based 1-in-64
   sampling.  Costs a [Domain.self] plus slab stores on every check
   (~10-15 ns), which is real money against a ~20 ns check — tests and
   deep debugging turn it on; the production default samples via
   [sample_request] below at ~1 ns per check. *)
let detail_flag = Atomic.make false
let _pad_gate1 = Array.make 15 0

(* The default-mode sampling trigger: rare structural events (installs,
   watchdog fires, faults, spans) arm this flag and the next check to
   see it claims it, tracing itself fully.  Checks only ever read it
   (one load of a read-mostly line) unless it is armed, so the hot path
   pays nothing measurable.  A time-gated re-arm at the claim keeps a
   chain alive when checks are infrequent (< ~10 kHz) without letting
   it storm a busy checker. *)
let sample_request = Atomic.make false
let _pad_gate2 = Array.make 15 0

let enabled () = Atomic.get enabled_flag

let enable () =
  Atomic.set enabled_flag true;
  Atomic.set sample_request true

let disable () = Atomic.set enabled_flag false
let set_detail b = Atomic.set detail_flag b
let detail () = Atomic.get detail_flag

(* Arming is read-before-write: while the trigger is already armed —
   the steady state under an install storm, where every update emits
   two lifecycle events — re-arming would dirty the line every checker
   polls.  The read hits a shared (read-only) copy instead. *)
let arm_sample () =
  if not (Atomic.get sample_request) then Atomic.set sample_request true

let request_sample () = if Atomic.get enabled_flag then arm_sample ()

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ---- event taxonomy ---- *)

module Event = struct
  type kind =
    | Check_pass
    | Check_violation
    | Check_exhausted
    | Check_retry
    | Watchdog_fire
    | Update_begin
    | Update_commit
    | Update_recover
    | Update_rollback
    | Span_begin
    | Span_end
    | Fault_injected
    | Tenant_state
    | Tenant_restart
    | Install_shed

  let kind_code = function
    | Check_pass -> 0
    | Check_violation -> 1
    | Check_exhausted -> 2
    | Check_retry -> 3
    | Watchdog_fire -> 4
    | Update_begin -> 5
    | Update_commit -> 6
    | Update_recover -> 7
    | Update_rollback -> 8
    | Span_begin -> 9
    | Span_end -> 10
    | Fault_injected -> 11
    | Tenant_state -> 12
    | Tenant_restart -> 13
    | Install_shed -> 14

  let kind_of_code = function
    | 0 -> Check_pass
    | 1 -> Check_violation
    | 2 -> Check_exhausted
    | 3 -> Check_retry
    | 4 -> Watchdog_fire
    | 5 -> Update_begin
    | 6 -> Update_commit
    | 7 -> Update_recover
    | 8 -> Update_rollback
    | 9 -> Span_begin
    | 10 -> Span_end
    | 11 -> Fault_injected
    | 12 -> Tenant_state
    | 13 -> Tenant_restart
    | 14 -> Install_shed
    | n -> invalid_arg (Printf.sprintf "Telemetry.Event.kind_of_code %d" n)

  let kind_name = function
    | Check_pass -> "check-pass"
    | Check_violation -> "check-violation"
    | Check_exhausted -> "check-exhausted"
    | Check_retry -> "check-retry"
    | Watchdog_fire -> "watchdog-fire"
    | Update_begin -> "update-begin"
    | Update_commit -> "update-commit"
    | Update_recover -> "update-recover"
    | Update_rollback -> "update-rollback"
    | Span_begin -> "span-begin"
    | Span_end -> "span-end"
    | Fault_injected -> "fault-injected"
    | Tenant_state -> "tenant-state"
    | Tenant_restart -> "tenant-restart"
    | Install_shed -> "install-shed"

  (* install-span phases of the dynamic-linking protocol, in the order
     they run; [a] of a span event is one of these codes *)
  let phase_extract = 0
  let phase_merge = 1
  let phase_journal = 2
  let phase_table_write = 3
  let phase_oracle = 4
  let phase_load = 5

  let phase_name = function
    | 0 -> "extract"
    | 1 -> "merge"
    | 2 -> "journal"
    | 3 -> "table-write"
    | 4 -> "oracle"
    | 5 -> "load"
    | n -> Printf.sprintf "phase-%d" n

  (* ---- the context word ----

     [emit] stores the kind code in the low 4 bits of the ring's kind
     word; the bits above were dead weight until sharded torture runs
     made merged traces ambiguous (which shard did this check hit? which
     engine ran it?).  The context word [x] packs into those upper bits:

       bits 0-8   shard id + 1        (0 = unknown)
       bits 9-10  dispatch engine     (0 unknown, 1 byte, 2 threaded)
       bits 11-27 alert id + 1        (0 = none; SLO-driven breaker trips)

     All three are optional; an all-zero word renders nothing, so
     un-contextualized emitters read exactly as before. *)

  let dispatch_byte = 1
  let dispatch_threaded = 2

  let dispatch_ctx_name = function
    | 1 -> "byte"
    | 2 -> "threaded"
    | _ -> "?"

  let make_ctx ?shard ?dispatch ?alert () =
    (match shard with Some s -> (s land 0xff) + 1 | None -> 0)
    lor (match dispatch with Some d -> (d land 3) lsl 9 | None -> 0)
    lor (match alert with Some a -> ((a land 0xffff) + 1) lsl 11 | None -> 0)

  let ctx_shard x = (x land 0x1ff) - 1
  let ctx_dispatch x = (x lsr 9) land 3
  let ctx_alert x = ((x lsr 11) land 0x1ffff) - 1

  let pp_ctx ppf x =
    if x <> 0 then begin
      let s = ctx_shard x and d = ctx_dispatch x and al = ctx_alert x in
      let parts =
        (if s >= 0 then [ Printf.sprintf "shard=%d" s ] else [])
        @ (if d <> 0 then [ "dispatch=" ^ dispatch_ctx_name d ] else [])
        @ if al >= 0 then [ Printf.sprintf "alert=%d" al ] else []
      in
      if parts <> [] then Fmt.pf ppf " [%s]" (String.concat " " parts)
    end

  type t = {
    seq : int;
    domain : int;
    kind : kind;
    a : int;
    b : int;
    c : int;
    x : int;  (* context word; 0 = no context *)
  }

  let pp ppf e =
    let head () = Fmt.pf ppf "#%-8d d%-2d " e.seq e.domain in
    head ();
    (match e.kind with
    | Check_pass | Check_violation | Check_exhausted ->
      Fmt.pf ppf "%-16s slot=%d target=0x%x retries=%d" (kind_name e.kind)
        e.a e.b e.c
    | Check_retry ->
      Fmt.pf ppf "%-16s slot=%d target=0x%x round=%d" (kind_name e.kind) e.a
        e.b e.c
    | Watchdog_fire ->
      Fmt.pf ppf "%-16s version=%d slot=%d rounds=%d" (kind_name e.kind) e.a
        e.b e.c
    | Update_begin | Update_commit | Update_recover ->
      Fmt.pf ppf "%-16s version=%d tag=%d" (kind_name e.kind) e.a e.b
    | Update_rollback ->
      Fmt.pf ppf "%-16s loads=%d" (kind_name e.kind) e.a
    | Span_begin -> Fmt.pf ppf "%-16s %s load=%d" (kind_name e.kind)
        (phase_name e.a) e.b
    | Span_end ->
      Fmt.pf ppf "%-16s %s load=%d ns=%d" (kind_name e.kind) (phase_name e.a)
        e.b e.c
    | Fault_injected ->
      Fmt.pf ppf "%-16s point=%d" (kind_name e.kind) e.a
    | Tenant_state ->
      Fmt.pf ppf "%-16s tenant=%d to=%d from=%d" (kind_name e.kind) e.a e.b
        e.c
    | Tenant_restart ->
      Fmt.pf ppf "%-16s tenant=%d attempt=%d delay=%d" (kind_name e.kind) e.a
        e.b e.c
    | Install_shed ->
      Fmt.pf ppf "%-16s tenant=%d queue=%d retry-after=%d" (kind_name e.kind)
        e.a e.b e.c);
    pp_ctx ppf e.x
end

(* ---- per-domain trace rings ---- *)

(* Single-writer ring.  The writer stores the six event words with plain
   writes and then publishes with an atomic store of [published] (a
   release point: a drainer that reads [published] >= n sees event n-1's
   words).  The only racy slot is the one a writer may currently be
   overwriting; the drain protocol discards it (see [drain_ring]). *)
type ring = {
  r_cap : int;
  r_dom : int array;
  r_seq : int array;
  r_kind : int array;
  r_a : int array;
  r_b : int array;
  r_c : int array;
  r_published : int Atomic.t; (* events ever written to this ring *)
}

let default_capacity = 4096
let capacity = Atomic.make default_capacity

let set_ring_capacity n =
  if n < 8 then invalid_arg "Telemetry.set_ring_capacity: capacity < 8";
  Atomic.set capacity n

let global_seq = Atomic.make 0

(* Rings live in a fixed pool indexed by domain id modulo the pool size,
   not in domain-local storage.  Short-lived domains (the stress harness
   spawns fresh checker/updater domains per scenario) would otherwise
   mint and abandon megabytes of arrays per run, and that GC debt lands
   inside the measured window — it cost 20% of check throughput before
   the pool.  A freshly spawned domain adopts the slot of a dead
   predecessor and keeps appending, so the predecessor's tail events stay
   drainable and nothing is re-allocated; the per-event [r_dom] word
   keeps attribution exact across adoptions.  Two *live* domains whose
   ids collide modulo the pool size would garble each other's slots —
   like the tally slab we accept that for a diagnostics path, since ids
   are handed out contiguously and it takes [ring_slots] concurrent
   domains to collide. *)
let ring_slots = 64

let pool : ring option Atomic.t array =
  Array.init ring_slots (fun _ -> Atomic.make None)

let make_ring () =
  let cap = Atomic.get capacity in
  {
    r_cap = cap;
    r_dom = Array.make cap 0;
    r_seq = Array.make cap 0;
    r_kind = Array.make cap 0;
    r_a = Array.make cap 0;
    r_b = Array.make cap 0;
    r_c = Array.make cap 0;
    r_published = Atomic.make 0;
  }

let ring_for slot =
  match Atomic.get pool.(slot) with
  | Some r when r.r_cap = Atomic.get capacity -> r
  | _ ->
    let r = make_ring () in
    Atomic.set pool.(slot) (Some r);
    r

(* ---- hot-path per-domain scalar tallies ----

   The check transaction fires a telemetry hook on every single check,
   so this layer cannot afford a DLS lookup (~6 ns) per hook, let alone
   a shared atomic counter (cross-domain cache-line traffic).  The
   tallies live in one flat int array where each domain owns a padded
   [slab_stride]-slot stride indexed by its id; [check_begin] resolves
   the stride once per check and encodes it into the ctx it returns, so
   [check_end] pays no second lookup.  Domain ids past [slab_domains]
   wrap and share a stride: colliding increments are plain stores and
   may undercount, which a statistics path tolerates (trace events are
   unaffected).  Dead domains' tallies persist until [reset], exactly
   like their rings. *)

let slab_domains = 128
let slab_stride = 64 (* 512 B per domain: strides never share a line *)
let slab = Array.make (slab_domains * slab_stride) 0
let off_tick = 0
let off_t0 = 1 (* entry stamp (ns) of this domain's in-flight sampled check *)
let off_fast_checks = 2
let off_fast_retries = 3
let off_checks = 4
let off_passes = 5
let off_violations = 6
let off_exhausted = 7
let off_retries = 8

let slab_base () =
  ((Domain.self () :> int) land (slab_domains - 1)) * slab_stride

let slab_total off =
  let t = ref 0 in
  for d = 0 to slab_domains - 1 do
    t := !t + slab.((d * slab_stride) + off)
  done;
  !t

let reset () =
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | Some r -> Atomic.set r.r_published 0
      | None -> ())
    pool;
  Atomic.set global_seq 0;
  Array.fill slab 0 (Array.length slab) 0;
  if Atomic.get enabled_flag then Atomic.set sample_request true

(* ---- emit (the hot path) ---- *)

(* A process-wide default dispatch hint, folded into every emitted
   context word that does not already carry dispatch bits.  The harness
   that knows which engine a run uses (Machine.run, Stress.run,
   Fleet.run) sets it once; individual emitters never need to thread it
   through. *)
let dispatch_hint = Atomic.make 0

let set_dispatch_hint d = Atomic.set dispatch_hint ((d land 3) lsl 9)

let emit ?(x = 0) kind ~a ~b ~c =
  if Atomic.get enabled_flag then begin
    let d = (Domain.self () :> int) in
    let r = ring_for (d land (ring_slots - 1)) in
    let seq = Atomic.fetch_and_add global_seq 1 in
    let p = Atomic.get r.r_published in
    let i = p mod r.r_cap in
    let x = if x land (3 lsl 9) = 0 then x lor Atomic.get dispatch_hint else x in
    r.r_dom.(i) <- d;
    r.r_seq.(i) <- seq;
    r.r_kind.(i) <- Event.kind_code kind lor (x lsl 4);
    r.r_a.(i) <- a;
    r.r_b.(i) <- b;
    r.r_c.(i) <- c;
    Atomic.set r.r_published (p + 1);
    (* every structural event arms the default-mode check sampler: the
       moments around installs, fires and faults are exactly the checks
       worth tracing.  Check events themselves must not re-arm or a
       sampled check would chain into a storm of sampled checks. *)
    match kind with
    | Event.Check_pass | Event.Check_violation | Event.Check_exhausted
    | Event.Check_retry ->
      ()
    | _ -> arm_sample ()
  end

let fast_check () =
  if Atomic.get enabled_flag && Atomic.get detail_flag then begin
    let b = slab_base () in
    slab.(b + off_fast_checks) <- slab.(b + off_fast_checks) + 1
  end

let fast_retry () =
  if Atomic.get enabled_flag && Atomic.get detail_flag then begin
    let b = slab_base () in
    slab.(b + off_fast_retries) <- slab.(b + off_fast_retries) + 1
  end

(* Detail-mode sampling wheel: 1 check in [sample_interval] per domain
   gets a trace event, the latency clock reads and the histogram points;
   the rest only tally.  Per-check events would contend the global trace
   sequence across checker domains and the clock reads alone cost
   ~40 ns each. *)
let sample_interval = 64

(* Default-mode chain re-arm: a claimed sample re-arms the request when
   at least this much time passed since the previous arm, so sparse
   checkers (< ~10 kHz) keep a steady latency feed while busy checkers
   fall back to event-driven samples. *)
let rearm_interval_ns = 100_000

let last_arm = ref 0 (* plain: a lost race just skips one re-arm *)

(* ctx layout: 0 = disabled; else bit 0 set, bit 1 = this check is
   sampled, bit 2 = tally exact outcome counts (detail mode), and the
   caller's slab stride base in the bits above. *)
let check_begin () =
  if not (Atomic.get enabled_flag) then 0
  else if Atomic.get detail_flag then begin
    let b = slab_base () in
    let tick = slab.(b + off_tick) + 1 in
    slab.(b + off_tick) <- tick;
    if tick land (sample_interval - 1) = 0 then begin
      slab.(b + off_t0) <- now_ns ();
      (b lsl 3) lor 7
    end
    else (b lsl 3) lor 5
  end
  else if
    Atomic.get sample_request
    && Atomic.compare_and_set sample_request true false
  then begin
    let b = slab_base () in
    let t = now_ns () in
    slab.(b + off_t0) <- t;
    if t - !last_arm >= rearm_interval_ns then begin
      last_arm := t;
      Atomic.set sample_request true
    end;
    (b lsl 3) lor 3
  end
  else 1

let ctx_sampled ctx = ctx land 2 <> 0
let ctx_active ctx = ctx land 6 <> 0

(* ---- drain ---- *)

let drain_ring r =
  let p1 = Atomic.get r.r_published in
  let lo = max 0 (p1 - r.r_cap) in
  let acc = ref [] in
  for idx = p1 - 1 downto lo do
    let i = idx mod r.r_cap in
    let kw = r.r_kind.(i) in
    acc :=
      {
        Event.seq = r.r_seq.(i);
        domain = r.r_dom.(i);
        kind = Event.kind_of_code (kw land 15);
        a = r.r_a.(i);
        b = r.r_b.(i);
        c = r.r_c.(i);
        x = kw lsr 4;
      }
      :: !acc
  done;
  let events = !acc in
  (* Anything the writer may have been overwriting while we read is
     discarded: event [p2] (possibly mid-write, unpublished) occupies the
     slot of event [p2 - cap], so only indices strictly above that line
     are certainly intact. *)
  let p2 = Atomic.get r.r_published in
  let safe_from = p2 - r.r_cap + 1 in
  List.filteri (fun k _ -> lo + k >= safe_from) events

let live_rings () =
  Array.to_list pool |> List.filter_map Atomic.get

let drain () =
  let events = List.concat_map drain_ring (live_rings ()) in
  List.sort (fun a b -> compare a.Event.seq b.Event.seq) events

let events_emitted () =
  List.fold_left
    (fun acc r -> acc + Atomic.get r.r_published)
    0 (live_rings ())

let events_dropped () =
  List.fold_left
    (fun acc r -> acc + max 0 (Atomic.get r.r_published - r.r_cap + 1))
    0 (live_rings ())

let fast_totals () = (slab_total off_fast_checks, slab_total off_fast_retries)

type check_counts = {
  cc_checks : int;
  cc_passes : int;
  cc_violations : int;
  cc_exhausted : int;
  cc_retries : int;
}

let check_totals () =
  {
    cc_checks = slab_total off_checks;
    cc_passes = slab_total off_passes;
    cc_violations = slab_total off_violations;
    cc_exhausted = slab_total off_exhausted;
    cc_retries = slab_total off_retries;
  }

(* ---- metrics registry ---- *)

module Metrics = struct
  type counter = { c_name : string; c_cell : int Atomic.t }

  (* log2 buckets: bucket 0 counts v < 2; bucket i >= 1 counts
     2^i <= v < 2^(i+1).  62 buckets cover the whole positive int range. *)
  let buckets = 62

  type histogram = {
    h_name : string;
    h_buckets : int Atomic.t array;
    h_count : int Atomic.t;
    h_sum : int Atomic.t;
  }

  (* Registration is cold (module-init time); a mutex keeps find-or-create
     atomic.  The lists are read lock-free by the exporters. *)
  let lock = Mutex.create ()
  let counters : counter list Atomic.t = Atomic.make []
  let histograms : histogram list Atomic.t = Atomic.make []

  let counter name =
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match
          List.find_opt (fun c -> c.c_name = name) (Atomic.get counters)
        with
        | Some c -> c
        | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Atomic.set counters (c :: Atomic.get counters);
          c)

  let histogram name =
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match
          List.find_opt (fun h -> h.h_name = name) (Atomic.get histograms)
        with
        | Some h -> h
        | None ->
          let h =
            {
              h_name = name;
              h_buckets = Array.init buckets (fun _ -> Atomic.make 0);
              h_count = Atomic.make 0;
              h_sum = Atomic.make 0;
            }
          in
          Atomic.set histograms (h :: Atomic.get histograms);
          h)

  let incr c = if Atomic.get enabled_flag then Atomic.incr c.c_cell

  let add c n =
    if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_cell n)

  let counter_value c = Atomic.get c.c_cell

  let bucket_of v =
    if v < 2 then 0
    else begin
      let rec go i v = if v < 2 then i else go (i + 1) (v lsr 1) in
      go 0 v
    end

  (* inclusive upper bound of a bucket, the value a percentile reports *)
  let bucket_hi i = (1 lsl (i + 1)) - 1

  let observe h v =
    if Atomic.get enabled_flag then begin
      let v = max 0 v in
      Atomic.incr h.h_buckets.(min (buckets - 1) (bucket_of v));
      Atomic.incr h.h_count;
      ignore (Atomic.fetch_and_add h.h_sum v)
    end

  let bucket_counts h = Array.map Atomic.get h.h_buckets

  type summary = {
    s_count : int;
    s_sum : int;
    s_mean : float;
    s_p50 : int;
    s_p90 : int;
    s_p99 : int;
  }

  let percentile counts total p =
    let need = max 1 (int_of_float (ceil (p *. float_of_int total))) in
    let rec go i seen =
      if i >= Array.length counts then bucket_hi (Array.length counts - 1)
      else begin
        let seen = seen + counts.(i) in
        if seen >= need then bucket_hi i else go (i + 1) seen
      end
    in
    go 0 0

  let summary h =
    let counts = bucket_counts h in
    let count = Atomic.get h.h_count in
    let sum = Atomic.get h.h_sum in
    if count = 0 then
      { s_count = 0; s_sum = 0; s_mean = 0.0; s_p50 = 0; s_p90 = 0; s_p99 = 0 }
    else
      {
        s_count = count;
        s_sum = sum;
        s_mean = float_of_int sum /. float_of_int count;
        s_p50 = percentile counts count 0.50;
        s_p90 = percentile counts count 0.90;
        s_p99 = percentile counts count 0.99;
      }

  let reset () =
    List.iter (fun c -> Atomic.set c.c_cell 0) (Atomic.get counters);
    List.iter
      (fun h ->
        Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
        Atomic.set h.h_count 0;
        Atomic.set h.h_sum 0)
      (Atomic.get histograms)

  let sorted_counters () =
    List.sort
      (fun a b -> compare a.c_name b.c_name)
      (Atomic.get counters)

  let sorted_histograms () =
    List.sort
      (fun a b -> compare a.h_name b.h_name)
      (Atomic.get histograms)
end

let reset () =
  reset ();
  Metrics.reset ()

(* (Fusion tallies are reset separately — [Fusion.reset] — because a
   profiling run typically spans several harness resets.) *)

(* The check-outcome histograms live here rather than in the transaction
   layer because [check_end] feeds them: the sampled exit point already
   knows the retries and holds the entry stamp, so routing the values
   back through the caller would just re-export the slab encoding. *)
let m_check_latency = Metrics.histogram "mcfi_check_latency_ns"
let m_check_retries = Metrics.histogram "mcfi_check_retries"

let check_end ?(x = 0) ctx ~outcome ~slot ~target ~retries =
  if ctx land 4 <> 0 then begin
    let b = ctx lsr 3 in
    slab.(b + off_checks) <- slab.(b + off_checks) + 1;
    let o =
      if outcome = 0 then off_passes
      else if outcome = 1 then off_violations
      else off_exhausted
    in
    slab.(b + o) <- slab.(b + o) + 1;
    if retries > 0 then
      slab.(b + off_retries) <- slab.(b + off_retries) + retries
  end;
  if ctx land 2 <> 0 then begin
    let b = ctx lsr 3 in
    let kind =
      if outcome = 0 then Event.Check_pass
      else if outcome = 1 then Event.Check_violation
      else Event.Check_exhausted
    in
    emit ~x kind ~a:slot ~b:target ~c:retries;
    Metrics.observe m_check_retries retries;
    Metrics.observe m_check_latency (now_ns () - slab.(b + off_t0))
  end

(* ---- fusion-candidate pair profile ----

   Which instruction-class pairs retire back to back, fed by the VM's
   profiling path while telemetry is enabled.  This is the evidence the
   threaded-dispatch superinstruction set is chosen from: the top pairs
   here (cmp+jump, table+table, table+cmp, the masked-store prefix
   pairs) are exactly the sequences fused into single handlers.  The
   tally matrix uses plain stores — colliding increments from several
   machines may undercount, which a profile tolerates (same contract as
   the tally slab). *)

module Fusion = struct
  let classes = 16
  let pairs = Array.make (classes * classes) 0
  let names = Array.make classes ""

  let set_name k n = if k >= 0 && k < classes then names.(k) <- n

  let name k =
    if k >= 0 && k < classes && names.(k) <> "" then names.(k)
    else Printf.sprintf "class-%d" k

  let record ~prev ~cur =
    if prev >= 0 && prev < classes && cur >= 0 && cur < classes then begin
      let i = (prev * classes) + cur in
      pairs.(i) <- pairs.(i) + 1
    end

  let reset () = Array.fill pairs 0 (Array.length pairs) 0

  (* all non-zero pairs, hottest first *)
  let top n =
    let acc = ref [] in
    Array.iteri
      (fun i c ->
        if c > 0 then acc := (i / classes, i mod classes, c) :: !acc)
      pairs;
    let sorted =
      List.sort (fun (_, _, a) (_, _, b) -> compare b a) !acc
    in
    List.filteri (fun i _ -> i < n) sorted

  let export ?(limit = 8) () =
    let b = Buffer.create 256 in
    Buffer.add_string b "{\"fusion_candidates\": [";
    List.iteri
      (fun i (p, c, n) ->
        if i > 0 then Buffer.add_string b ", ";
        Printf.ksprintf (Buffer.add_string b)
          "{\"prev\": \"%s\", \"next\": \"%s\", \"count\": %d}" (name p)
          (name c) n)
      (top limit);
    Buffer.add_string b "]}";
    Buffer.contents b
end

(* ---- exporters ---- *)

module Export = struct
  (* Zero-valued metrics are omitted: every instrumented subsystem
     registers its metrics at module-init time whether or not it runs,
     and an exposition full of zeros buries the signal. *)

  let live_counters () =
    List.filter
      (fun c -> Metrics.counter_value c > 0)
      (Metrics.sorted_counters ())

  let live_histograms () =
    List.filter
      (fun h -> Atomic.get h.Metrics.h_count > 0)
      (Metrics.sorted_histograms ())

  let prometheus () =
    let b = Buffer.create 1024 in
    let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    List.iter
      (fun c ->
        p "# TYPE %s counter\n" c.Metrics.c_name;
        p "%s %d\n" c.Metrics.c_name (Metrics.counter_value c))
      (live_counters ());
    let fc, fr = fast_totals () in
    if fc > 0 then begin
      p "# TYPE mcfi_fast_checks_total counter\n";
      p "mcfi_fast_checks_total %d\n" fc;
      p "# TYPE mcfi_fast_check_retries_total counter\n";
      p "mcfi_fast_check_retries_total %d\n" fr
    end;
    let ct = check_totals () in
    if ct.cc_checks > 0 then begin
      p "# TYPE mcfi_checks_total counter\n";
      p "mcfi_checks_total %d\n" ct.cc_checks;
      p "# TYPE mcfi_check_pass_total counter\n";
      p "mcfi_check_pass_total %d\n" ct.cc_passes;
      p "# TYPE mcfi_check_violation_total counter\n";
      p "mcfi_check_violation_total %d\n" ct.cc_violations;
      p "# TYPE mcfi_check_exhausted_total counter\n";
      p "mcfi_check_exhausted_total %d\n" ct.cc_exhausted;
      p "# TYPE mcfi_check_retries_total counter\n";
      p "mcfi_check_retries_total %d\n" ct.cc_retries
    end;
    List.iter
      (fun h ->
        let counts = Metrics.bucket_counts h in
        let count = Atomic.get h.Metrics.h_count in
        let sum = Atomic.get h.Metrics.h_sum in
        let top = ref 0 in
        Array.iteri (fun i n -> if n > 0 then top := i) counts;
        p "# TYPE %s histogram\n" h.Metrics.h_name;
        let cum = ref 0 in
        for i = 0 to !top do
          cum := !cum + counts.(i);
          p "%s_bucket{le=\"%d\"} %d\n" h.Metrics.h_name (Metrics.bucket_hi i)
            !cum
        done;
        p "%s_bucket{le=\"+Inf\"} %d\n" h.Metrics.h_name count;
        p "%s_sum %d\n" h.Metrics.h_name sum;
        p "%s_count %d\n" h.Metrics.h_name count)
      (live_histograms ());
    Buffer.contents b

  let json () =
    let b = Buffer.create 1024 in
    let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    p "{\"counters\": {";
    List.iteri
      (fun i c ->
        if i > 0 then p ", ";
        p "\"%s\": %d" c.Metrics.c_name (Metrics.counter_value c))
      (live_counters ());
    p "}, \"histograms\": {";
    List.iteri
      (fun i h ->
        if i > 0 then p ", ";
        let s = Metrics.summary h in
        p
          "\"%s\": {\"count\": %d, \"sum\": %d, \"mean\": %.1f, \"p50\": %d, \
           \"p90\": %d, \"p99\": %d}"
          h.Metrics.h_name s.Metrics.s_count s.Metrics.s_sum s.Metrics.s_mean
          s.Metrics.s_p50 s.Metrics.s_p90 s.Metrics.s_p99)
      (live_histograms ());
    let fc, fr = fast_totals () in
    p "}, \"fast\": {\"checks\": %d, \"retries\": %d}" fc fr;
    let ct = check_totals () in
    p
      ", \"checks\": {\"total\": %d, \"pass\": %d, \"violation\": %d, \
       \"exhausted\": %d, \"retries\": %d}"
      ct.cc_checks ct.cc_passes ct.cc_violations ct.cc_exhausted ct.cc_retries;
    p ", \"events\": {\"emitted\": %d, \"dropped\": %d}}" (events_emitted ())
      (events_dropped ());
    Buffer.contents b

  let pp_stats ppf () =
    Fmt.pf ppf "@[<v>";
    let cs = live_counters () in
    if cs <> [] then begin
      Fmt.pf ppf "counters:@,";
      List.iter
        (fun c ->
          Fmt.pf ppf "  %-36s %12d@," c.Metrics.c_name
            (Metrics.counter_value c))
        cs
    end;
    let fc, fr = fast_totals () in
    if fc > 0 then
      Fmt.pf ppf "  %-36s %12d@,  %-36s %12d@," "mcfi_fast_checks_total" fc
        "mcfi_fast_check_retries_total" fr;
    let ct = check_totals () in
    if ct.cc_checks > 0 then begin
      Fmt.pf ppf "  %-36s %12d@," "mcfi_checks_total" ct.cc_checks;
      Fmt.pf ppf "  %-36s %12d@," "mcfi_check_pass_total" ct.cc_passes;
      Fmt.pf ppf "  %-36s %12d@," "mcfi_check_violation_total" ct.cc_violations;
      Fmt.pf ppf "  %-36s %12d@," "mcfi_check_exhausted_total" ct.cc_exhausted;
      Fmt.pf ppf "  %-36s %12d@," "mcfi_check_retries_total" ct.cc_retries
    end;
    let hs = live_histograms () in
    if hs <> [] then begin
      Fmt.pf ppf "histograms (count / mean / p50 / p90 / p99):@,";
      List.iter
        (fun h ->
          let s = Metrics.summary h in
          Fmt.pf ppf "  %-36s %9d %12.1f %10d %10d %10d@," h.Metrics.h_name
            s.Metrics.s_count s.Metrics.s_mean s.Metrics.s_p50 s.Metrics.s_p90
            s.Metrics.s_p99)
        hs
    end;
    Fmt.pf ppf "trace: %d events emitted, %d dropped to ring wraparound@]"
      (events_emitted ()) (events_dropped ())
end
