(** Domain-safe observability: per-domain lock-free trace rings, a
    counter/histogram metrics registry, and text/JSON exporters.

    Every hook is gated on {!enabled}; when the gate is off a hook costs
    one atomic load and allocates nothing, so instrumentation can stay
    compiled into the hot check/update paths permanently. *)

(** {1 The gates} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turn telemetry on (and arm one default-mode check sample). *)

val disable : unit -> unit

val set_detail : bool -> unit
(** Detail mode (off by default): exact per-check outcome tallies
    ({!check_totals}, {!fast_totals}) and uniform 1-in-64 check
    sampling, at the price of a [Domain.self] and a few stores on every
    check (~10-15 ns).  The default mode keeps the per-check cost at
    about one load by sampling only when {!request_sample} arms the
    trigger — which every structural event (install, watchdog fire,
    fault, span) does automatically. *)

val detail : unit -> bool

val request_sample : unit -> unit
(** Arm the default-mode sampler: the next check transaction on any
    domain traces itself (outcome event, latency, retries).  No-op when
    disabled. *)

val reset : unit -> unit
(** Rewind every trace ring, zero the sequence counter, and zero every
    registered metric.  Rings are recycled, not re-allocated, so a reset
    before a measured run adds no GC debt to the run.  Best-effort when
    other domains are emitting concurrently. *)

val now_ns : unit -> int
(** Wall-clock nanoseconds (gettimeofday-based; for span durations). *)

(** {1 Trace events} *)

module Event : sig
  type kind =
    | Check_pass          (** a=slot, b=target, c=retries used *)
    | Check_violation     (** a=slot, b=target, c=retries used *)
    | Check_exhausted     (** a=slot, b=target, c=retries used *)
    | Check_retry         (** a=slot, b=target, c=round *)
    | Watchdog_fire       (** a=table version observed, b=slot, c=rounds *)
    | Update_begin        (** a=version, b=tag *)
    | Update_commit       (** a=version, b=tag *)
    | Update_recover      (** a=version, b=tag *)
    | Update_rollback     (** a=loads rolled back *)
    | Span_begin          (** a=phase code, b=load ordinal *)
    | Span_end            (** a=phase code, b=load ordinal, c=ns *)
    | Fault_injected      (** a=fault point ordinal *)
    | Tenant_state        (** a=tenant, b=new health state, c=old state *)
    | Tenant_restart      (** a=tenant, b=attempt, c=backoff delay *)
    | Install_shed        (** a=tenant, b=queue length, c=retry-after *)

  val kind_code : kind -> int
  val kind_of_code : int -> kind
  val kind_name : kind -> string

  (** Install-span phase codes carried in [a] of span events. *)

  val phase_extract : int
  val phase_merge : int
  val phase_journal : int
  val phase_table_write : int
  val phase_oracle : int
  val phase_load : int
  val phase_name : int -> string

  (** {2 The context word}

      Merged traces from sharded, multi-engine runs need every event to
      say {e which shard} and {e which dispatch engine} it belongs to.
      Rather than widening the five-word ring record, the context packs
      into the unused upper bits of the kind word: shard id (bits 0-8 of
      the context, stored +1 so 0 means unknown), dispatch engine (bits
      9-10) and an SLO alert id (bits 11+, stored +1) for alert-driven
      breaker trips.  A zero word renders nothing, so uncontextualized
      emitters print exactly as before. *)

  val dispatch_byte : int
  val dispatch_threaded : int
  val dispatch_ctx_name : int -> string

  val make_ctx : ?shard:int -> ?dispatch:int -> ?alert:int -> unit -> int
  (** Pack a context word; omitted components decode as absent. *)

  val ctx_shard : int -> int
  (** Shard id carried by a context word, [-1] when absent. *)

  val ctx_dispatch : int -> int
  (** [0] unknown, {!dispatch_byte} or {!dispatch_threaded}. *)

  val ctx_alert : int -> int
  (** Alert id carried by a context word, [-1] when absent. *)

  val pp_ctx : Format.formatter -> int -> unit

  type t = {
    seq : int;
    domain : int;
    kind : kind;
    a : int;
    b : int;
    c : int;
    x : int;  (** context word; 0 = no context *)
  }

  val pp : Format.formatter -> t -> unit
end

val set_ring_capacity : int -> unit
(** Capacity (events) for rings minted after the call; min 8.  Live
    rings keep their old capacity until their pool slot re-mints.
    Default 4096. *)

val emit : ?x:int -> Event.kind -> a:int -> b:int -> c:int -> unit
(** Record one event in the calling domain's ring.  No-op when disabled;
    when enabled: one fetch-and-add on the global sequence, six plain
    array stores, one atomic publish.  Steady-state, no allocation:
    rings live in a fixed pool keyed by domain id, so freshly spawned
    domains adopt a dead predecessor's ring instead of minting one.
    [x] is an {!Event.make_ctx} context word (default none); if it
    carries no dispatch bits the process-wide {!set_dispatch_hint} is
    folded in. *)

val set_dispatch_hint : int -> unit
(** Declare the dispatch engine the current run uses
    ({!Event.dispatch_byte} / {!Event.dispatch_threaded}, [0] to clear).
    Folded into every emitted context word lacking dispatch bits, so a
    harness sets it once instead of threading it through every
    emitter. *)

val fast_check : unit -> unit
(** Scalar tally for the production fast path (no event record).
    Counts only in detail mode; the default mode leaves the fast path
    untaxed. *)

val fast_retry : unit -> unit

(** {2 The check-transaction hot path}

    One {!check_begin}/{!check_end} bracket per check.  In the default
    mode an unsampled check pays two or three loads of a read-mostly
    cache line and a couple of branches — nothing per-domain, nothing
    shared-mutable; a check that claims an armed {!request_sample}
    trigger traces itself fully (outcome event, entry/exit clock,
    histogram points).  Detail mode replaces the trigger with a uniform
    per-domain 1-in-64 wheel and adds exact outcome tallies. *)

val check_begin : unit -> int
(** Returns [0] when telemetry is disabled, otherwise an opaque ctx to
    hand back to {!check_end}, deciding whether this check is sampled
    and, if so, stamping the entry clock. *)

val ctx_sampled : int -> bool
(** Whether a {!check_begin} ctx is a sampled check — the caller should
    gate per-retry trace events on this. *)

val ctx_active : int -> bool
(** Whether {!check_end} has any work to do for this ctx (sampled or
    detail mode) — callers may skip outcome encoding otherwise. *)

val check_end :
  ?x:int -> int -> outcome:int -> slot:int -> target:int -> retries:int -> unit
(** Close the bracket: in detail mode tally the outcome ([0] = pass,
    [1] = violation, else retries-exhausted); when sampled, emit the
    outcome event — carrying the [x] context word, see {!emit} — and
    record check latency and retries-per-check. *)

val drain : unit -> Event.t list
(** Merge all rings into one sequence-ordered trace.  Concurrent writers
    are safe: any slot a writer may currently be overwriting is dropped,
    so each ring contributes at most capacity − 1 most-recent events and
    no torn events. *)

val events_emitted : unit -> int
val events_dropped : unit -> int

val fast_totals : unit -> int * int
(** [(fast_checks, fast_retries)] summed over all domains. *)

type check_counts = {
  cc_checks : int;
  cc_passes : int;
  cc_violations : int;
  cc_exhausted : int;
  cc_retries : int;
}

val check_totals : unit -> check_counts
(** Exact {!check_end} outcome totals summed over all domains (detail
    mode only; zeros otherwise). *)

(** {1 Metrics} *)

module Metrics : sig
  type counter
  type histogram

  val counter : string -> counter
  (** Find or register a named monotonic counter. *)

  val histogram : string -> histogram
  (** Find or register a named log2-bucketed histogram: bucket 0 holds
      values < 2, bucket [i >= 1] holds values in [2{^i}, 2{^i+1}). *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val counter_value : counter -> int

  val observe : histogram -> int -> unit
  (** Record one (non-negative) value; gated on {!enabled}. *)

  val bucket_of : int -> int
  val bucket_hi : int -> int
  val bucket_counts : histogram -> int array

  type summary = {
    s_count : int;
    s_sum : int;
    s_mean : float;
    s_p50 : int;  (** bucket upper bounds, i.e. conservative estimates *)
    s_p90 : int;
    s_p99 : int;
  }

  val summary : histogram -> summary
  val reset : unit -> unit
end

(** {1 Fusion-candidate pair profile}

    Which instruction-class pairs retire back to back — the evidence the
    threaded-dispatch superinstruction set is chosen from.  The VM's
    profiling path feeds {!Fusion.record} with (previous, current)
    class ids while telemetry is enabled; {!Fusion.top} ranks the pairs
    and {!Fusion.export} emits them as JSON.  Tallies use plain stores:
    concurrent machines may undercount (the tally-slab contract). *)

module Fusion : sig
  (** Class-id space (ids outside [0, classes) are ignored). *)
  val classes : int

  (** Bind a display name to a class id (the VM registers its
      instruction-class names at machine creation). *)
  val set_name : int -> string -> unit

  val name : int -> string

  (** Tally one retired pair: [prev] then [cur]. *)
  val record : prev:int -> cur:int -> unit

  val reset : unit -> unit

  (** The [n] hottest pairs, [(prev, cur, count)], hottest first; only
      pairs that fired. *)
  val top : int -> (int * int * int) list

  (** JSON document of the top [limit] (default 8) pairs. *)
  val export : ?limit:int -> unit -> string
end

(** {1 Exporters} *)

module Export : sig
  val prometheus : unit -> string
  (** Prometheus text exposition (counters + cumulative-bucket
      histograms).  Metrics that never fired are omitted. *)

  val json : unit -> string
  (** Self-contained JSON document: counters, histogram summaries,
      fast-path tallies, event emitted/dropped totals.  Parseable by
      [Benchjson.parse]. *)

  val pp_stats : Format.formatter -> unit -> unit
  (** Human-readable stats report. *)
end
