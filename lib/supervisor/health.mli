(** The per-tenant health state machine of the fleet supervisor.

    A tenant's {e fault domain} is judged from the outside, by signals
    the runtime already produces: its reader's epoch progression
    (a registered reader whose epoch stalls is wedged inside — or
    around — a check transaction), its check-transaction pressure
    (retries on version skew, [Retries_exhausted] outcomes), its
    pending-install queue depth, and whether it died this tick.  The
    machine is pure and single-owner: the supervisor ticks it once per
    supervision round with a {!signals} sample; workers never touch it.

    {v
        Starting ──clean──▶ Healthy ◀──clean── Degraded
            │                  │    ──trouble──▶  │
            │                  │                  │ breaker
          crash              crash              crash / trip
            ▼                  ▼                  ▼
        Restarting ◀─────────(budget left)   Quarantined
            │  backoff elapsed                    (absorbing,
            ▼                                      bar retire)
         Starting             retire ▶ Dead (absorbing)
    v}

    Crashes are restarted under a bounded exponential backoff with
    seeded jitter (deterministic per tenant stream) and a restart
    budget per sliding window; exhausting the budget — or sustaining
    [Degraded] past the circuit-breaker threshold — quarantines the
    tenant.  The breaker also steps the tenant's check-transaction
    escalation: a trusted tenant waits out (and repairs) a stalled
    updater ([Wait_for_updater]); a degraded one fails fast
    ([Fail_check]) so it cannot amplify an install storm. *)

type state = Starting | Healthy | Degraded | Quarantined | Restarting | Dead

val state_name : state -> string

val state_code : state -> int
(** Stable ordinal, carried in {!Telemetry.Event.Tenant_state}. *)

val state_of_code : int -> state
val pp_state : Format.formatter -> state -> unit

val all_states : state list

type policy = {
  p_start_ticks : int;  (** clean ticks to leave [Starting] *)
  p_heal_ticks : int;  (** clean ticks to leave [Degraded] *)
  p_degrade_exhausted : int;
      (** [Retries_exhausted] outcomes in one tick that mark trouble *)
  p_degrade_retries : int;  (** check retries in one tick that mark trouble *)
  p_stall_ticks : int;
      (** ticks of stalled reader epoch before the tenant counts as
          wedged (trouble) *)
  p_breaker_ticks : int;
      (** sustained [Degraded] ticks before the breaker trips to
          [Quarantined] *)
  p_restart_budget : int;  (** restarts allowed per window *)
  p_budget_window : int;  (** budget window, in ticks *)
  p_backoff_base : int;  (** first restart delay, in ticks *)
  p_backoff_cap : int;  (** exponent cap: delay ≤ base·2{^cap} (+ jitter) *)
  p_queue_capacity : int;
      (** pending-install queue bound; past it the supervisor sheds *)
}

val default_policy : policy
val pp_policy : Format.formatter -> policy -> unit

(** One supervision tick's sample of a tenant's runtime signals. *)
type signals = {
  s_epoch : int;  (** the tenant reader's epoch ({!Idtables.Tables.reader_epoch}) *)
  s_crashed : bool;  (** the tenant died since the last tick *)
  s_exhausted : int;  (** [Retries_exhausted] outcomes since the last tick *)
  s_retries : int;  (** check retries since the last tick *)
  s_queue : int;  (** pending-install queue length *)
}

val quiet : epoch:int -> signals
(** A no-trouble sample (epoch as given, everything else zero/false). *)

type t

val create : ?prng:Mcfi_util.Prng.t -> policy -> t
(** A machine in [Starting].  [prng] seeds the restart-delay jitter
    (default: an unjittered, purely exponential schedule). *)

val state : t -> state

val restart_attempt : t -> int
(** Consecutive restarts without reaching [Healthy] (0 when healthy). *)

val restarts_in_window : t -> int
val last_restart_delay : t -> int
(** The backoff delay (ticks) computed for the most recent restart. *)

val restart_delay_preview : policy -> ?prng:Mcfi_util.Prng.t -> int -> int
(** [restart_delay_preview policy ?prng attempt] is the delay the
    machine would pick for restart [attempt] (1-based): exponential in
    the attempt, capped, plus a jitter draw from [prng] — the schedule
    {!tick} follows, exposed for determinism tests. *)

val tick : t -> now:int -> signals -> state * state
(** Advance one supervision round at tick [now]; returns
    [(old_state, new_state)] (equal when nothing changed).  A crash
    outranks everything (except the absorbing states): it either
    schedules a restart — [Restarting] until the backoff delay elapses,
    then [Starting] — or, with the window budget spent, quarantines. *)

val retire : t -> state * state
(** Force the absorbing [Dead] state (fleet churn, end of run). *)

val quarantine : t -> state * state
(** Trip the breaker by decree — the supervisor knows something the
    signals have not caught up with yet (e.g. a wedge set right before
    shutdown).  No-op on [Dead]. *)

val escalation_of : state -> Idtables.Tx.escalation
(** The circuit breaker's output: [Starting]/[Healthy] tenants run
    their checks with [Wait_for_updater] (they may take the update lock
    to repair a torn install); every other state gets [Fail_check] so a
    troubled tenant sheds load instead of amplifying it. *)
