module Prng = Mcfi_util.Prng

type state = Starting | Healthy | Degraded | Quarantined | Restarting | Dead

let state_name = function
  | Starting -> "starting"
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"
  | Restarting -> "restarting"
  | Dead -> "dead"

let state_code = function
  | Starting -> 0
  | Healthy -> 1
  | Degraded -> 2
  | Quarantined -> 3
  | Restarting -> 4
  | Dead -> 5

let state_of_code = function
  | 0 -> Starting
  | 1 -> Healthy
  | 2 -> Degraded
  | 3 -> Quarantined
  | 4 -> Restarting
  | 5 -> Dead
  | c -> invalid_arg (Printf.sprintf "Health.state_of_code %d" c)

let pp_state ppf s = Fmt.string ppf (state_name s)
let all_states = [ Starting; Healthy; Degraded; Quarantined; Restarting; Dead ]

type policy = {
  p_start_ticks : int;
  p_heal_ticks : int;
  p_degrade_exhausted : int;
  p_degrade_retries : int;
  p_stall_ticks : int;
  p_breaker_ticks : int;
  p_restart_budget : int;
  p_budget_window : int;
  p_backoff_base : int;
  p_backoff_cap : int;
  p_queue_capacity : int;
}

let default_policy =
  {
    p_start_ticks = 2;
    p_heal_ticks = 3;
    p_degrade_exhausted = 4;
    p_degrade_retries = 2048;
    p_stall_ticks = 12;
    p_breaker_ticks = 24;
    p_restart_budget = 4;
    p_budget_window = 200;
    p_backoff_base = 2;
    p_backoff_cap = 4;
    p_queue_capacity = 16;
  }

let pp_policy ppf p =
  Fmt.pf ppf
    "start=%d heal=%d degrade-exhausted=%d degrade-retries=%d stall=%d \
     breaker=%d budget=%d/%d backoff=%d..<<%d queue=%d"
    p.p_start_ticks p.p_heal_ticks p.p_degrade_exhausted p.p_degrade_retries
    p.p_stall_ticks p.p_breaker_ticks p.p_restart_budget p.p_budget_window
    p.p_backoff_base p.p_backoff_cap p.p_queue_capacity

type signals = {
  s_epoch : int;
  s_crashed : bool;
  s_exhausted : int;
  s_retries : int;
  s_queue : int;
}

let quiet ~epoch =
  { s_epoch = epoch; s_crashed = false; s_exhausted = 0; s_retries = 0; s_queue = 0 }

type t = {
  policy : policy;
  prng : Prng.t option;
  mutable st : state;
  mutable ticks_in_state : int;
  mutable clean_ticks : int;
  mutable last_epoch : int;
  mutable stall_ticks : int;
  mutable attempt : int;  (* consecutive restarts since last Healthy *)
  mutable in_window : int;
  mutable window_start : int;
  mutable restart_at : int;  (* tick at which Restarting may re-enter Starting *)
  mutable last_delay : int;
}

let create ?prng policy =
  {
    policy;
    prng;
    st = Starting;
    ticks_in_state = 0;
    clean_ticks = 0;
    last_epoch = min_int;
    stall_ticks = 0;
    attempt = 0;
    in_window = 0;
    window_start = 0;
    restart_at = 0;
    last_delay = 0;
  }

let state h = h.st
let restart_attempt h = h.attempt
let restarts_in_window h = h.in_window
let last_restart_delay h = h.last_delay

(* Bounded exponential with seeded jitter, the same shape as
   [Tx.backoff_spins]: base·2^min(attempt-1, cap), plus a uniform draw
   in [0, base·2^…) when jittered — restarting tenants desynchronize
   instead of slamming the tables in lockstep, deterministically per
   tenant stream. *)
let restart_delay_preview policy ?prng attempt =
  let base =
    policy.p_backoff_base * (1 lsl min (max 0 (attempt - 1)) policy.p_backoff_cap)
  in
  let base = max 1 base in
  match prng with None -> base | Some p -> base + Prng.int p base

let escalation_of = function
  | Starting | Healthy -> Idtables.Tx.Wait_for_updater
  | Degraded | Quarantined | Restarting | Dead -> Idtables.Tx.Fail_check

let enter h ~now st =
  if st <> h.st then begin
    h.st <- st;
    h.ticks_in_state <- 0;
    h.clean_ticks <- 0;
    if st = Healthy then h.attempt <- 0;
    if st = Starting then h.stall_ticks <- 0
  end
  else h.ticks_in_state <- h.ticks_in_state + 1;
  ignore now

let crash h ~now =
  if h.in_window >= h.policy.p_restart_budget then Quarantined
  else begin
    h.in_window <- h.in_window + 1;
    h.attempt <- h.attempt + 1;
    let delay = restart_delay_preview h.policy ?prng:h.prng h.attempt in
    h.last_delay <- delay;
    h.restart_at <- now + delay;
    Restarting
  end

let tick h ~now signals =
  let old = h.st in
  (* roll the restart-budget window *)
  if now - h.window_start >= h.policy.p_budget_window then begin
    h.window_start <- now;
    h.in_window <- 0
  end;
  (* epoch-stall tracking: a registered reader whose epoch does not move
     is wedged inside (or around) a check transaction *)
  let advanced = signals.s_epoch <> h.last_epoch in
  h.last_epoch <- signals.s_epoch;
  if advanced then h.stall_ticks <- 0
  else h.stall_ticks <- h.stall_ticks + 1;
  let wedged =
    (match old with
    | Starting | Healthy | Degraded -> true
    | Quarantined | Restarting | Dead -> false)
    && h.stall_ticks >= h.policy.p_stall_ticks
  in
  let troubled =
    wedged
    || signals.s_exhausted >= h.policy.p_degrade_exhausted
    || signals.s_retries >= h.policy.p_degrade_retries
  in
  let next =
    match old with
    | Dead -> Dead
    | Quarantined -> Quarantined
    | _ when signals.s_crashed -> crash h ~now
    | Restarting -> if now >= h.restart_at then Starting else Restarting
    | Starting ->
      if troubled then Degraded
      else begin
        h.clean_ticks <- h.clean_ticks + 1;
        if h.clean_ticks >= h.policy.p_start_ticks then Healthy else Starting
      end
    | Healthy -> if troubled then Degraded else Healthy
    | Degraded ->
      (* the breaker counts sustained residence, healing resets it *)
      if h.ticks_in_state + 1 >= h.policy.p_breaker_ticks then Quarantined
      else if troubled then begin
        h.clean_ticks <- 0;
        Degraded
      end
      else begin
        h.clean_ticks <- h.clean_ticks + 1;
        if h.clean_ticks >= h.policy.p_heal_ticks then Healthy else Degraded
      end
  in
  enter h ~now next;
  (old, next)

let retire h =
  let old = h.st in
  h.st <- Dead;
  h.ticks_in_state <- 0;
  h.clean_ticks <- 0;
  (old, Dead)

let quarantine h =
  let old = h.st in
  if old <> Dead then begin
    h.st <- Quarantined;
    h.ticks_in_state <- 0;
    h.clean_ticks <- 0
  end;
  (old, h.st)
