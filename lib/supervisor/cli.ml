(* The `mcfi fleet` subcommand.

   Exposed as a [Cmdliner] term (plus the pure [config_of] assembly) so
   the test suite can drive flag parsing through [Cmd.eval_value ~argv]
   without spawning a process. *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED"
         ~doc:"campaign seed; the whole chaos schedule replays from it")

let tenants_arg =
  Arg.(value & opt (some int) None & info [ "tenants" ] ~docv:"N"
         ~doc:"fleet size (default 64, or 16 with $(b,--smoke))")

let workers_arg =
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
         ~doc:"worker domains multiplexing the tenants")

let ticks_arg =
  Arg.(value & opt (some int) None & info [ "ticks" ] ~docv:"N"
         ~doc:"supervision rounds to run")

let storm_every_arg =
  Arg.(value & opt (some int) None & info [ "storm-every" ] ~docv:"N"
         ~doc:"install-storm burst every $(docv) ticks (0 = never)")

let storm_size_arg =
  Arg.(value & opt (some int) None & info [ "storm-size" ] ~docv:"N"
         ~doc:"extra installs admitted per storm tick")

let churn_every_arg =
  Arg.(value & opt (some int) None & info [ "churn-every" ] ~docv:"N"
         ~doc:"retire-and-restart a healthy tenant every $(docv) ticks \
               (0 = never)")

let loaders_arg =
  Arg.(value & opt (some int) None & info [ "loaders" ] ~docv:"N"
         ~doc:"tenants that own a real process and churn dlopens")

let kill_one_in_arg =
  Arg.(value & opt (some int) None & info [ "kill-one-in" ] ~docv:"N"
         ~doc:"each tenant slice dies mid-install with probability 1/$(docv) \
               (replaces the default chaos plans together with the other \
               chaos flags)")

let wedge_one_in_arg =
  Arg.(value & opt (some int) None & info [ "wedge-one-in" ] ~docv:"N"
         ~doc:"each tenant slice wedges its epoch reader with probability \
               1/$(docv)")

let slow_one_in_arg =
  Arg.(value & opt (some int) None & info [ "slow-one-in" ] ~docv:"N"
         ~doc:"each tenant slice turns the tenant slow with probability \
               1/$(docv)")

let smoke_arg =
  Arg.(value & flag & info [ "smoke" ]
         ~doc:"the small CI fleet: 16 tenants, a deterministic kill and \
               wedge plan, short run")

let stm_conv =
  let parse s =
    match Idtables.Stm.of_string s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Idtables.Stm.pp)

let shards_arg =
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
         ~doc:"split the shared tables into $(docv) independently versioned \
               shard fault domains; each tenant is homed on one (default 1)")

let stm_arg =
  Arg.(value & opt (some stm_conv) None & info [ "stm" ] ~docv:"VARIANT"
         ~doc:"commit protocol for every shard transaction: $(b,tml), \
               $(b,norec) or $(b,seqlock)")

let shard_breaker_arg =
  Arg.(value & opt (some int) None & info [ "shard-breaker" ] ~docv:"N"
         ~doc:"quarantine a whole shard (shedding only its own tenants) \
               after $(docv) crashes attributed to it (0 = off)")

let slo_breaker_arg =
  Arg.(value & flag & info [ "slo-breaker" ]
         ~doc:"let the SLO engine's shard burn-rate alerts trip the shard \
               breaker; the quarantine transition carries the alert id")

let forensics_arg =
  Arg.(value & opt (some string) None & info [ "forensics" ] ~docv:"DIR"
         ~doc:"write every forensic bundle the flight recorder snapshots \
               to $(docv) as forensics-<id>-<trigger>.json (replayable \
               with $(b,mcfi forensics))")

let dispatch_conv =
  let parse s =
    match Mcfi_runtime.Machine.dispatch_of_string s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun ppf d -> Fmt.string ppf (Mcfi_runtime.Machine.dispatch_name d))

let dispatch_arg =
  Arg.(value & opt (some dispatch_conv) None & info [ "dispatch" ]
         ~docv:"ENGINE"
         ~doc:"VM execution engine for the loader tenants' processes: \
               $(b,byte) or $(b,threaded)")

let telemetry_arg =
  Arg.(value & flag & info [ "telemetry" ]
         ~doc:"enable telemetry for the run and print the stats report")

let override v o = match o with Some x -> x | None -> v

let config_of seed tenants workers ticks storm_every storm_size churn_every
    loaders kill_one_in wedge_one_in slow_one_in shards stm shard_breaker
    slo_breaker dispatch smoke =
  let base = if smoke then Fleet.smoke ~seed else Fleet.default ~seed in
  let chaos =
    match (kill_one_in, wedge_one_in, slow_one_in) with
    | None, None, None -> base.Fleet.fc_chaos
    | _ ->
      let plan action = function
        | Some one_in when one_in > 0 ->
          [ Faults.Tenant.Random { seed; one_in; action } ]
        | _ -> []
      in
      plan Faults.Tenant.Kill_install kill_one_in
      @ plan Faults.Tenant.Wedge_reader wedge_one_in
      @ plan Faults.Tenant.Slow_tenant slow_one_in
  in
  {
    base with
    Fleet.fc_tenants = override base.Fleet.fc_tenants tenants;
    fc_workers = override base.Fleet.fc_workers workers;
    fc_ticks = override base.Fleet.fc_ticks ticks;
    fc_storm_every = override base.Fleet.fc_storm_every storm_every;
    fc_storm_size = override base.Fleet.fc_storm_size storm_size;
    fc_churn_every = override base.Fleet.fc_churn_every churn_every;
    fc_loaders = override base.Fleet.fc_loaders loaders;
    fc_chaos = chaos;
    fc_shards = override base.Fleet.fc_shards shards;
    fc_stm = override base.Fleet.fc_stm stm;
    fc_shard_breaker = override base.Fleet.fc_shard_breaker shard_breaker;
    fc_slo_breaker = base.Fleet.fc_slo_breaker || slo_breaker;
    fc_dispatch = override base.Fleet.fc_dispatch dispatch;
  }

let config_term =
  Term.(const config_of $ seed_arg $ tenants_arg $ workers_arg $ ticks_arg
        $ storm_every_arg $ storm_size_arg $ churn_every_arg $ loaders_arg
        $ kill_one_in_arg $ wedge_one_in_arg $ slow_one_in_arg $ shards_arg
        $ stm_arg $ shard_breaker_arg $ slo_breaker_arg $ dispatch_arg
        $ smoke_arg)

let main config telemetry forensics =
  if telemetry then Telemetry.enable ();
  if forensics <> None then Obs.Flightrec.set_dir forensics;
  Fmt.pr "fleet: %a@." Fleet.pp_config config;
  let r = Fleet.run config in
  Fmt.pr "%a@." Fleet.pp_report r;
  if telemetry then Fmt.pr "%a@." Telemetry.Export.pp_stats ();
  if forensics <> None then
    Fmt.pr "forensics: %d bundle(s) written to %s@."
      (List.length (Obs.Flightrec.files_written ()))
      (Option.value ~default:"" forensics);
  if Fleet.ok r then begin
    Fmt.pr "fleet: OK@.";
    0
  end
  else begin
    Fmt.pr "fleet: FAILED (%d anomalies, %d unrecovered, quiesce %b)@."
      (List.length r.Fleet.fr_anomalies)
      r.Fleet.fr_unrecovered r.Fleet.fr_final_quiesce;
    1
  end

let cmd =
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"supervise a tenant fleet on shared ID tables under seeded \
             chaos: mid-install kills, wedged readers, install storms, \
             churn — validated by the epoch-history oracle")
    Term.(const main $ config_term $ telemetry_arg $ forensics_arg)
