module Prng = Mcfi_util.Prng
module Tables = Idtables.Tables
module Tx = Idtables.Tx
module Stm = Idtables.Stm
module Shards = Idtables.Shards

type config = {
  fc_seed : int64;
  fc_tenants : int;
  fc_workers : int;
  fc_ticks : int;
  fc_checks_per_slice : int;
  fc_cfgs : int;
  fc_targets : int;
  fc_slots : int;
  fc_base_installs : int;
  fc_storm_every : int;
  fc_storm_size : int;
  fc_churn_every : int;
  fc_loaders : int;
  fc_chaos : Faults.Tenant.plan list;
  fc_policy : Health.policy;
  fc_tick_s : float;
  fc_shards : int;
  fc_stm : Stm.variant;
  fc_shard_breaker : int;
  fc_slo_breaker : bool;
  fc_dispatch : Mcfi_runtime.Machine.dispatch;
}

let default ~seed =
  {
    fc_seed = seed;
    fc_tenants = 64;
    fc_workers = 4;
    fc_ticks = 240;
    fc_checks_per_slice = 8;
    fc_cfgs = 6;
    fc_targets = 24;
    fc_slots = 4;
    fc_base_installs = 2;
    fc_storm_every = 20;
    fc_storm_size = 24;
    fc_churn_every = 60;
    fc_loaders = 2;
    fc_chaos =
      [
        Faults.Tenant.Random { seed; one_in = 900; action = Kill_install };
        Faults.Tenant.Random { seed; one_in = 4000; action = Wedge_reader };
        Faults.Tenant.Random { seed; one_in = 600; action = Slow_tenant };
      ];
    fc_policy = Health.default_policy;
    fc_tick_s = 0.001;
    fc_shards = 1;
    fc_stm = Stm.Tml;
    fc_shard_breaker = 0;
    fc_slo_breaker = false;
    fc_dispatch = Mcfi_runtime.Machine.Byte;
  }

let smoke ~seed =
  {
    (default ~seed) with
    fc_tenants = 16;
    fc_workers = 2;
    fc_ticks = 80;
    fc_storm_every = 10;
    fc_storm_size = 12;
    fc_churn_every = 25;
    fc_loaders = 1;
    fc_chaos =
      [
        Faults.Tenant.At { tenant = 3; action = Kill_install; hit = 4 };
        Faults.Tenant.At { tenant = 7; action = Wedge_reader; hit = 6 };
        Faults.Tenant.Random { seed; one_in = 500; action = Slow_tenant };
      ];
  }

let pp_config ppf fc =
  Fmt.pf ppf
    "seed=%Ld tenants=%d (%d loaders) workers=%d ticks=%d base=%d \
     storm=%d/%d churn=%d shards=%d stm=%a breaker=%d slo-breaker=%b \
     dispatch=%s chaos=[%a] policy=(%a)"
    fc.fc_seed fc.fc_tenants fc.fc_loaders fc.fc_workers fc.fc_ticks
    fc.fc_base_installs fc.fc_storm_size fc.fc_storm_every fc.fc_churn_every
    fc.fc_shards Stm.pp fc.fc_stm fc.fc_shard_breaker fc.fc_slo_breaker
    (Mcfi_runtime.Machine.dispatch_name fc.fc_dispatch)
    (Fmt.list ~sep:Fmt.comma Faults.Tenant.pp_plan)
    fc.fc_chaos Health.pp_policy fc.fc_policy

type report = {
  fr_config : config;
  fr_checks : int;
  fr_passes : int;
  fr_violations : int;
  fr_exhausted : int;
  fr_retries : int;
  fr_installs : int;
  fr_served : int;
  fr_admitted : int;
  fr_shed : int;
  fr_deferred : int;
  fr_kills : int;
  fr_restarts : int;
  fr_quarantined : int;
  fr_unrecovered : int;
  fr_survivors : int;
  fr_survival_rate : float;
  fr_recoveries_ms : float list;
  fr_recovery_p50_ms : float;
  fr_recovery_p99_ms : float;
  fr_loads_ok : int;
  fr_loads_failed : int;
  fr_quiesces : int;
  fr_final_quiesce : bool;
  fr_shard_installs : int array;
  fr_shard_served : int array;
  fr_shards_quarantined : int;
  fr_slo_alerts : int;
  fr_alert_trips : (int * int) list;  (* (shard, alert id), trip order *)
  fr_anomalies : Stress.anomaly list;
  fr_elapsed_s : float;
}

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>tenants %d: %d serving at end (survival %.2f), %d quarantined@,\
     kills %d, restarts %d, unrecovered %d@,\
     recovery p50 %.1fms p99 %.1fms (%d samples)@,\
     checks %d (%d pass / %d violation / %d exhausted), retries %d@,\
     installs %d completed; admissions %d admitted / %d shed / %d deferred, \
     %d served@,\
     loads %d ok / %d failed@,\
     quiesces %d, final quiescence %b%a@,\
     anomalies %d%a@,\
     elapsed %.2fs@]"
    r.fr_config.fc_tenants r.fr_survivors r.fr_survival_rate r.fr_quarantined
    r.fr_kills r.fr_restarts r.fr_unrecovered r.fr_recovery_p50_ms
    r.fr_recovery_p99_ms
    (List.length r.fr_recoveries_ms)
    r.fr_checks r.fr_passes r.fr_violations r.fr_exhausted r.fr_retries
    r.fr_installs r.fr_admitted r.fr_shed r.fr_deferred r.fr_served
    r.fr_loads_ok r.fr_loads_failed r.fr_quiesces r.fr_final_quiesce
    (fun ppf r ->
      if Array.length r.fr_shard_installs > 1 then
        Fmt.pf ppf
          "@,shards: installs %a, served %a, %d shard(s) quarantined"
          Fmt.(array ~sep:(any "/") int)
          r.fr_shard_installs
          Fmt.(array ~sep:(any "/") int)
          r.fr_shard_served r.fr_shards_quarantined;
      if r.fr_slo_alerts > 0 || r.fr_alert_trips <> [] then
        Fmt.pf ppf "@,slo: %d burn-rate alert(s)%a" r.fr_slo_alerts
          (fun ppf -> function
            | [] -> ()
            | trips ->
              Fmt.pf ppf ", breaker trips [%a]"
                Fmt.(
                  list ~sep:comma (fun ppf (sh, al) ->
                      pf ppf "shard %d by alert #%d" sh al))
                trips)
          r.fr_alert_trips)
    r
    (List.length r.fr_anomalies)
    (fun ppf -> function
      | [] -> ()
      | l ->
        Fmt.pf ppf ":@,  @[<v>%a@]" (Fmt.list ~sep:Fmt.cut Stress.pp_anomaly) l)
    r.fr_anomalies r.fr_elapsed_s

let ok r =
  r.fr_anomalies = [] && r.fr_unrecovered = 0 && r.fr_final_quiesce

(* ------------------------------------------------------------------ *)
(* Tenants                                                             *)

let fleet_base = 0x1000

(* Mutable per-tenant state.  Ownership: the [Atomic.t] fields are the
   shared surface; everything [mutable] is single-owner — either
   supervisor-only, or worker-side and touched only inside a [tn_busy]
   claim window (the claim CAS provides the happens-before edge between
   consecutive owners). *)
type tenant = {
  tn_id : int;
  tn_shard : int;  (* home fault domain: id mod shards *)
  tn_loader : bool;
  tn_prng : Prng.t;  (* worker-side: probes, kill points, jitter *)
  tn_busy : bool Atomic.t;  (* claim: one worker (or the supervisor) at a time *)
  tn_alive : bool Atomic.t;
  tn_wedged : bool Atomic.t;
  tn_slow : bool Atomic.t;
  tn_crashed : bool Atomic.t;  (* set by a worker, consumed by the supervisor *)
  tn_kill_next : bool Atomic.t;  (* chaos: die inside the next install *)
  tn_escalation : int Atomic.t;  (* Health.state_code, supervisor -> workers *)
  tn_reader : Tables.reader option Atomic.t;
  tn_proc : Mcfi_runtime.Process.t option Atomic.t;  (* loaders *)
  tn_queue : int Queue.t;  (* pending installs: CFG pool indexes *)
  tn_qlock : Mutex.t;
  tn_qlen : int Atomic.t;
  tn_progress : int Atomic.t;  (* slices completed: the loader "epoch" *)
  tn_load_n : int Atomic.t;
  tn_checks : int Atomic.t;
  tn_passes : int Atomic.t;
  tn_violations : int Atomic.t;
  tn_exhausted : int Atomic.t;
  tn_retries : int Atomic.t;
  tn_served : int Atomic.t;
  tn_loads_ok : int Atomic.t;
  tn_loads_failed : int Atomic.t;
  tn_health : Health.t;  (* supervisor-only *)
  mutable tn_last_exhausted : int;
  mutable tn_last_retries : int;
  mutable tn_crash_wall : float;
  mutable tn_was_killed : bool;  (* ever crashed (for the recovery gate) *)
  mutable tn_kills : int;
  mutable tn_restarts : int;
}

(* Per-shard fault-domain state, supervisor-owned.  The breaker trips
   when [sh_crashes] crashes have been attributed to the shard
   ([fc_shard_breaker] > 0): the shard is quarantined and sheds {e only
   its own} tenants — every other shard's tenants keep serving. *)
type shard_state = {
  sh_id : int;
  mutable sh_crashes : int;
  mutable sh_quarantined : bool;
}

type ctx = {
  cx : config;
  shs : Shards.t;
  hists : Stress.history array; (* install log, one per shard *)
  shard_states : shard_state array;
  pool : Stress.cfg array;
  chaos : Faults.Tenant.armed;
  tenants : tenant array;
  stop : bool Atomic.t;
}

let enqueue tn ci =
  Mutex.lock tn.tn_qlock;
  Queue.push ci tn.tn_queue;
  Mutex.unlock tn.tn_qlock;
  Atomic.incr tn.tn_qlen

let dequeue tn =
  Mutex.lock tn.tn_qlock;
  let v = Queue.take_opt tn.tn_queue in
  Mutex.unlock tn.tn_qlock;
  if v <> None then Atomic.decr tn.tn_qlen;
  v

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)

type wtally = {
  mutable w_anomalies : Stress.anomaly list;
  mutable w_count : int;
}

let max_anomalies_kept = 4

let record_anomaly y ~seed an_kind an_detail =
  y.w_count <- y.w_count + 1;
  if y.w_count <= max_anomalies_kept then
    y.w_anomalies <-
      { Stress.an_seed = seed; an_kind; an_detail } :: y.w_anomalies;
  (* same choke point as the torture oracle: exactly one forensic bundle
     per recorded anomaly (the trigger is uncapped) *)
  if Obs.Flightrec.recording () then
    ignore
      (Obs.Flightrec.record_trigger Obs.Flightrec.Oracle_anomaly
         ~reason:(Printf.sprintf "%s (replay with seed %Ld)" an_kind seed)
         ~extra:
           [
             ("kind", Obs.Json.Str an_kind);
             ("detail", Obs.Json.Str an_detail);
             ("seed", Obs.Json.Str (Int64.to_string seed));
           ]
         ())

(* One queued install, committed under this tenant's identity.  A kill
   marker arms a one-shot global mid-install fault right before the
   transaction: the plan fires inside whichever updater crosses the
   point next (usually this one), and whoever catches [Injected] in its
   own update marks {e itself} crashed — the journal is left set and
   the update lock released, exactly the corpse the supervisor must
   contain. *)
let serve_install ctx y tn ci =
  if Atomic.get tn.tn_kill_next then begin
    Atomic.set tn.tn_kill_next false;
    let point, hit =
      if Prng.bool tn.tn_prng then
        (Faults.Plan.Nth_tary_write, 1 + Prng.int tn.tn_prng ctx.cx.fc_targets)
      else (Faults.Plan.Between_tary_and_bary, 1)
    in
    (* on a sharded fleet the kill is scoped to this tenant's home
       shard, so the corpse's torn install is confined there *)
    let plan =
      if Shards.count ctx.shs = 1 then Faults.Plan.At { point; hit }
      else Faults.Plan.At_shard { shard = tn.tn_shard; point; hit }
    in
    Faults.arm plan
  end;
  match
    Shards.update ~tag:ci ctx.shs ~shard:tn.tn_shard
      ~tary:(Stress.tary_of ~base:fleet_base ctx.pool.(ci))
      ~bary:(Stress.bary_of ctx.pool.(ci))
  with
  | (_ : int) -> Atomic.incr tn.tn_served
  | exception Faults.Injected _ ->
    Atomic.set tn.tn_crashed true;
    Atomic.set tn.tn_alive false;
    (* one bundle per injected kill (uncapped): snapshot the home
       shard's journal state before the supervisor's recovery redoes it *)
    if Obs.Flightrec.recording () then
      ignore
        (Obs.Flightrec.record_trigger Obs.Flightrec.Injected_kill
           ~reason:
             (Printf.sprintf "tenant %d killed mid-install of cfg %d (shard %d)"
                tn.tn_id ci tn.tn_shard)
           ~extra:
             [
               ("tenant", Obs.Json.num tn.tn_id);
               ("cfg", Obs.Json.num ci);
               ("shard", Obs.Json.num tn.tn_shard);
               ( "shard_state",
                 Tables.state_json (Shards.tables ctx.shs tn.tn_shard) );
             ]
           ())
  | exception Tx.Version_space_exhausted ->
    record_anomaly y ~seed:ctx.cx.fc_seed "version-space-exhausted"
      (Printf.sprintf "tenant %d exhausted versions mid-fleet" tn.tn_id)

let check_slice ctx y tn =
  let sc = ctx.cx in
  match Atomic.get tn.tn_reader with
  | None -> ()
  | Some rd ->
    Tables.reader_quiescent rd;
    let h = ctx.hists.(tn.tn_shard) in
    let esc =
      Health.escalation_of (Health.state_of_code (Atomic.get tn.tn_escalation))
    in
    let wd = { Tx.wd_deadline = 256; wd_on_expire = esc } in
    let on_retry () = Atomic.incr tn.tn_retries in
    (* black-box tally handle: resolved once per slice, bumped per check
       with plain stores — the flight recorder's always-on accounting *)
    let fr = Obs.Flightrec.tally () in
    for _ = 1 to sc.fc_checks_per_slice do
      let slot = Prng.int tn.tn_prng sc.fc_slots in
      let kind = Prng.int tn.tn_prng 10 in
      let tidx, target =
        if kind = 0 then (-1, fleet_base + (4 * Prng.int tn.tn_prng sc.fc_targets) + 2)
        else if kind = 1 then (-1, fleet_base + (4 * sc.fc_targets))
        else
          let i = Prng.int tn.tn_prng sc.fc_targets in
          (i, fleet_base + (4 * i))
      in
      let c0 = Stress.history_completed h in
      let out =
        Shards.check ~watchdog:wd ~jitter:tn.tn_prng ~on_retry ctx.shs
          ~shard:tn.tn_shard ~bary_index:slot ~target
      in
      let b1 = Stress.history_began h in
      Atomic.incr tn.tn_checks;
      if Obs.Flightrec.recording () then
        Obs.Flightrec.bump fr
          ~outcome:
            (match out with
            | Tx.Pass -> 0
            | Tx.Violation -> 1
            | Tx.Retries_exhausted -> 2)
          ~retries:0;
      let detail kind_s =
        Printf.sprintf "tenant %d (shard %d): %s: slot=%d tidx=%d window=[%d,%d]"
          tn.tn_id tn.tn_shard kind_s slot tidx
          (max 0 (c0 - 1))
          (b1 - 1)
      in
      match out with
      | Tx.Pass ->
        Atomic.incr tn.tn_passes;
        if
          not
            (Stress.window_justifies h ctx.pool ~slot ~tidx ~c0 ~b1
               ~pass:true)
        then
          record_anomaly y ~seed:sc.fc_seed "unjustified-pass"
            (detail "no live CFG version allows this edge")
      | Tx.Violation ->
        Atomic.incr tn.tn_violations;
        if
          not
            (Stress.window_justifies h ctx.pool ~slot ~tidx ~c0 ~b1
               ~pass:false)
        then
          record_anomaly y ~seed:sc.fc_seed "unjustified-violation"
            (detail "every live CFG version allows this edge")
      | Tx.Retries_exhausted -> Atomic.incr tn.tn_exhausted
    done

let loader_slice _ctx _y tn =
  match Atomic.get tn.tn_proc with
  | None -> ()
  | Some proc ->
    let i = Atomic.fetch_and_add tn.tn_load_n 1 in
    let name = Printf.sprintf "t%d_plug%d" tn.tn_id i in
    let src =
      Printf.sprintf "int t%d_fn_%d(int x) { return x + %d; }" tn.tn_id i i
    in
    (match
       let obj =
         Mcfi.Pipeline.instrument (Mcfi.Pipeline.compile_module ~name src)
       in
       Mcfi_runtime.Process.load proc obj
     with
    | () -> Atomic.incr tn.tn_loads_ok
    | exception
        ( Mcfi_runtime.Process.Error _ | Mcfi.Pipeline.Error _
        | Faults.Injected _ | Invalid_argument _ ) ->
      Atomic.incr tn.tn_loads_failed)

let slice ctx y tn =
  (match Faults.Tenant.crossing ctx.chaos ~tenant:tn.tn_id with
  | None -> ()
  | Some Faults.Tenant.Kill_install -> Atomic.set tn.tn_kill_next true
  | Some Faults.Tenant.Wedge_reader -> Atomic.set tn.tn_wedged true
  | Some Faults.Tenant.Slow_tenant -> Atomic.set tn.tn_slow true);
  (* a wedged tenant stays registered but stops crossing branch
     boundaries: its epoch stalls and only supervised teardown can
     unwedge quiescence *)
  if not (Atomic.get tn.tn_wedged) then begin
    if Atomic.get tn.tn_slow then Tx.backoff 6;
    if tn.tn_loader then begin
      (* a loader with a pending kill dies between dlopens: a voluntary
         crash the supervisor contains with [Process.teardown] *)
      if Atomic.get tn.tn_kill_next then begin
        Atomic.set tn.tn_kill_next false;
        Atomic.set tn.tn_crashed true;
        Atomic.set tn.tn_alive false;
        if Obs.Flightrec.recording () then
          ignore
            (Obs.Flightrec.record_trigger Obs.Flightrec.Injected_kill
               ~reason:
                 (Printf.sprintf "loader tenant %d died between dlopens"
                    tn.tn_id)
               ~extra:
                 [
                   ("tenant", Obs.Json.num tn.tn_id);
                   ("shard", Obs.Json.num tn.tn_shard);
                 ]
               ())
      end
      else loader_slice ctx y tn
    end
    else begin
      check_slice ctx y tn;
      if Atomic.get tn.tn_alive then
        match dequeue tn with
        | Some ci -> serve_install ctx y tn ci
        | None -> ()
    end;
    Atomic.incr tn.tn_progress
  end

let worker_loop ctx () =
  let y = { w_anomalies = []; w_count = 0 } in
  while not (Atomic.get ctx.stop) do
    Array.iter
      (fun tn ->
        if
          Atomic.get tn.tn_alive
          && Atomic.compare_and_set tn.tn_busy false true
        then
          Fun.protect
            ~finally:(fun () -> Atomic.set tn.tn_busy false)
            (fun () -> if Atomic.get tn.tn_alive then slice ctx y tn))
      ctx.tenants;
    Domain.cpu_relax ()
  done;
  y

(* ------------------------------------------------------------------ *)
(* Supervisor side                                                     *)

let loader_program =
  {|
int seed_fn(int x) { return x + 1; }
int main() { return seed_fn(0); }
|}

let build_loader_proc fc =
  let proc =
    Mcfi.Pipeline.build_process ~instrumented:true
      ~sources:[ ("main", loader_program) ]
      ()
  in
  Mcfi_runtime.Machine.set_dispatch
    (Mcfi_runtime.Process.machine proc)
    fc.fc_dispatch;
  proc

(* Claim the tenant the way a worker would, so teardown/rebirth never
   races a slice in flight.  Callers set [tn_alive] to false first when
   they need workers to stop picking the tenant up. *)
let with_claim tn f =
  let rec grab () =
    if not (Atomic.compare_and_set tn.tn_busy false true) then begin
      Domain.cpu_relax ();
      grab ()
    end
  in
  grab ();
  Fun.protect ~finally:(fun () -> Atomic.set tn.tn_busy false) f

(* Crash-only containment: free the corpse's reader registration (a
   dead reader must never gate [try_quiesce]), tear down a loader's
   process, and redo any install transaction it died inside of. *)
let teardown_tenant ctx tn =
  Atomic.set tn.tn_alive false;
  with_claim tn (fun () ->
      (match Atomic.exchange tn.tn_reader None with
      | Some rd -> Shards.unregister_reader ctx.shs ~shard:tn.tn_shard rd
      | None -> ());
      (match Atomic.exchange tn.tn_proc None with
      | Some proc -> Mcfi_runtime.Process.teardown proc
      | None -> ());
      Atomic.set tn.tn_wedged false;
      Atomic.set tn.tn_slow false;
      Atomic.set tn.tn_kill_next false);
  (* the corpse can only have torn its own home shard: recovery is
     confined there, other shards' journals are not even looked at *)
  ignore (Shards.recover ctx.shs ~shard:tn.tn_shard)

let rebirth_tenant ctx tn =
  with_claim tn (fun () ->
      if tn.tn_loader then
        Atomic.set tn.tn_proc (Some (build_loader_proc ctx.cx))
      else
        Atomic.set tn.tn_reader
          (Some (Shards.register_reader ctx.shs ~shard:tn.tn_shard));
      Atomic.set tn.tn_alive true)

let sample_epoch tn =
  if tn.tn_loader then Atomic.get tn.tn_progress
  else
    match Atomic.get tn.tn_reader with
    | Some rd -> Tables.reader_epoch rd
    | None -> Atomic.get tn.tn_progress

let sample_signals tn =
  let exhausted = Atomic.get tn.tn_exhausted in
  let retries = Atomic.get tn.tn_retries in
  let s =
    {
      Health.s_epoch = sample_epoch tn;
      s_crashed = Atomic.exchange tn.tn_crashed false;
      s_exhausted = exhausted - tn.tn_last_exhausted;
      s_retries = retries - tn.tn_last_retries;
      s_queue = Atomic.get tn.tn_qlen;
    }
  in
  tn.tn_last_exhausted <- exhausted;
  tn.tn_last_retries <- retries;
  s

(* Drive one tenant's health machine and apply the side effects of the
   transition: teardown on death and quarantine, rebirth when the
   backoff elapses, telemetry on every edge. *)
let supervise_tenant ctx recoveries tn ~now ~signals =
  if signals.Health.s_crashed then begin
    let sh = ctx.shard_states.(tn.tn_shard) in
    sh.sh_crashes <- sh.sh_crashes + 1
  end;
  let old_st, new_st = Health.tick tn.tn_health ~now signals in
  if new_st <> old_st then begin
    Atomic.set tn.tn_escalation (Health.state_code new_st);
    let xw = Telemetry.Event.make_ctx ~shard:tn.tn_shard () in
    Telemetry.emit Telemetry.Event.Tenant_state ~a:tn.tn_id
      ~b:(Health.state_code new_st) ~c:(Health.state_code old_st) ~x:xw;
    if Obs.Flightrec.recording () then begin
      Obs.Flightrec.note
        ~kind:Telemetry.Event.(kind_code Tenant_state)
        ~ctx:xw ~a:tn.tn_id
        ~b:(Health.state_code new_st)
        ~c:(Health.state_code old_st);
      (* a tenant sliding into Degraded or Quarantined is forensic
         material: snapshot before the teardown below redoes the journal *)
      match new_st with
      | (Health.Degraded | Health.Quarantined)
        when Obs.Flightrec.trigger_armed Obs.Flightrec.Supervisor_transition
        ->
        ignore
          (Obs.Flightrec.record_trigger Obs.Flightrec.Supervisor_transition
             ~reason:
               (Printf.sprintf "tenant %d (shard %d): %s -> %s" tn.tn_id
                  tn.tn_shard
                  (Health.state_name old_st)
                  (Health.state_name new_st))
             ~extra:
               [
                 ("tenant", Obs.Json.num tn.tn_id);
                 ("shard", Obs.Json.num tn.tn_shard);
                 ("from", Obs.Json.Str (Health.state_name old_st));
                 ("to", Obs.Json.Str (Health.state_name new_st));
                 ( "shard_state",
                   Tables.state_json (Shards.tables ctx.shs tn.tn_shard) );
               ]
             ())
      | _ -> ()
    end;
    (match new_st with
    | Health.Restarting ->
      tn.tn_kills <- tn.tn_kills + 1;
      tn.tn_was_killed <- true;
      tn.tn_crash_wall <- Unix.gettimeofday ();
      Telemetry.emit Telemetry.Event.Tenant_restart ~a:tn.tn_id
        ~b:(Health.restart_attempt tn.tn_health)
        ~c:(Health.last_restart_delay tn.tn_health)
        ~x:xw;
      teardown_tenant ctx tn
    | Health.Quarantined ->
      if signals.Health.s_crashed then begin
        tn.tn_kills <- tn.tn_kills + 1;
        tn.tn_was_killed <- true
      end;
      teardown_tenant ctx tn
    | Health.Starting when old_st = Health.Restarting ->
      rebirth_tenant ctx tn;
      tn.tn_restarts <- tn.tn_restarts + 1;
      recoveries :=
        ((Unix.gettimeofday () -. tn.tn_crash_wall) *. 1000.) :: !recoveries
    | _ -> ())
  end

(* Quarantine a whole shard by decree: it is declared a lost fault
   domain — every tenant homed there is quarantined and torn down, the
   shard's journal is redone one last time, and admission stops routing
   installs to it.  Tenants on other shards are untouched — the blast
   radius of a rotten shard is exactly its own tenant population.
   [alert] is the SLO burn-rate alert id when the trip is alert-driven;
   it rides in every transition event's context word and in the
   forensic bundle, so the trip is explainable after the fact. *)
let quarantine_shard ctx sh ?alert ~reason () =
  sh.sh_quarantined <- true;
  (* snapshot the forensic bundle before teardown redoes the journal:
     the shard state it carries is the one the breaker saw *)
  if
    Obs.Flightrec.recording ()
    && Obs.Flightrec.trigger_armed Obs.Flightrec.Supervisor_transition
  then
    ignore
      (Obs.Flightrec.record_trigger Obs.Flightrec.Supervisor_transition
         ~reason
         ~extra:
           ([
              ("shard", Obs.Json.num sh.sh_id);
              ("crashes", Obs.Json.num sh.sh_crashes);
              ( "shard_state",
                Tables.state_json (Shards.tables ctx.shs sh.sh_id) );
            ]
           @
           match alert with
           | Some id -> [ ("alert", Obs.Json.num id) ]
           | None -> [])
         ());
  Array.iter
    (fun tn ->
      if tn.tn_shard = sh.sh_id then begin
        let old_st, new_st = Health.quarantine tn.tn_health in
        if new_st <> old_st then begin
          Atomic.set tn.tn_escalation (Health.state_code new_st);
          Telemetry.emit Telemetry.Event.Tenant_state ~a:tn.tn_id
            ~b:(Health.state_code new_st)
            ~c:(Health.state_code old_st)
            ~x:(Telemetry.Event.make_ctx ~shard:tn.tn_shard ?alert ())
        end;
        teardown_tenant ctx tn
      end)
    ctx.tenants;
  ignore (Shards.recover ctx.shs ~shard:sh.sh_id)

(* The crash-count circuit breaker.  When [fc_shard_breaker] > 0 and a
   shard has accumulated that many tenant crashes, the shard is
   quarantined wholesale.  (The SLO engine's burn-rate alerts drive
   {!quarantine_shard} separately, from the supervisor tick.) *)
let trip_shard_breakers ctx =
  if ctx.cx.fc_shard_breaker > 0 then
    Array.iter
      (fun sh ->
        if (not sh.sh_quarantined) && sh.sh_crashes >= ctx.cx.fc_shard_breaker
        then
          quarantine_shard ctx sh
            ~reason:
              (Printf.sprintf
                 "shard %d breaker: %d crash(es) reached the threshold %d"
                 sh.sh_id sh.sh_crashes ctx.cx.fc_shard_breaker)
            ())
      ctx.shard_states

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

type admissions = {
  mutable ad_cursor : int;
  mutable ad_admitted : int;
  mutable ad_shed : int;
  mutable ad_deferred : int;
  (* sheds pushed back with a retry-after: (due tick, pool index) *)
  mutable ad_retry : (int * int) list;
}

let retry_after = 3

let admissible ctx tn =
  (not tn.tn_loader)
  && (not ctx.shard_states.(tn.tn_shard).sh_quarantined)
  && Atomic.get tn.tn_alive
  && not (Atomic.get tn.tn_wedged)
  &&
  match Health.state_of_code (Atomic.get tn.tn_escalation) with
  | Health.Starting | Health.Healthy | Health.Degraded -> true
  | Health.Quarantined | Health.Restarting | Health.Dead -> false

(* Round-robin one install over the admissible tenants; bounded queues
   shed under storm.  A shed install is deferred once (with the
   retry-after the [Install_shed] event carries) and dropped for good
   the second time. *)
let admit_one ctx ad ~now ~deferred ci =
  let n = Array.length ctx.tenants in
  let rec place k =
    if k >= n then None
    else begin
      ad.ad_cursor <- (ad.ad_cursor + 1) mod n;
      let tn = ctx.tenants.(ad.ad_cursor) in
      if admissible ctx tn && Atomic.get tn.tn_qlen < ctx.cx.fc_policy.Health.p_queue_capacity
      then Some tn
      else place (k + 1)
    end
  in
  match place 0 with
  | Some tn ->
    enqueue tn ci;
    ad.ad_admitted <- ad.ad_admitted + 1
  | None ->
    (* every queue full (or nobody admissible): shed *)
    Telemetry.emit Telemetry.Event.Install_shed ~a:ad.ad_cursor
      ~b:(Atomic.get ctx.tenants.(ad.ad_cursor).tn_qlen)
      ~c:retry_after;
    if deferred then ad.ad_shed <- ad.ad_shed + 1
    else begin
      ad.ad_deferred <- ad.ad_deferred + 1;
      ad.ad_retry <- (now + retry_after, ci) :: ad.ad_retry
    end

let admit_tick ctx ad prng ~now =
  let due, later = List.partition (fun (d, _) -> d <= now) ad.ad_retry in
  ad.ad_retry <- later;
  List.iter (fun (_, ci) -> admit_one ctx ad ~now ~deferred:true ci) due;
  let storm =
    ctx.cx.fc_storm_every > 0 && now mod ctx.cx.fc_storm_every = 0
  in
  let n =
    ctx.cx.fc_base_installs + if storm then ctx.cx.fc_storm_size else 0
  in
  for _ = 1 to n do
    admit_one ctx ad ~now ~deferred:false
      (Prng.int prng (Array.length ctx.pool))
  done

(* ------------------------------------------------------------------ *)
(* The run                                                             *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let run fc =
  let fc =
    {
      fc with
      fc_tenants = max 2 fc.fc_tenants;
      fc_workers = max 1 fc.fc_workers;
      fc_loaders = min fc.fc_loaders (fc.fc_tenants / 2);
      fc_shards = max 1 fc.fc_shards;
    }
  in
  Faults.disarm ();
  Faults.Stats.reset ();
  if Telemetry.enabled () then Telemetry.reset ();
  (* rewind the observability layer for exact per-run accounting: one
     bundle per kill/anomaly, alert ids counted from this run's alerts.
     Caps and the forensics output directory survive the reset. *)
  if Obs.Flightrec.recording () then Obs.Flightrec.reset ();
  Obs.Slo.reset ();
  Obs.Timeseries.reset ();
  Telemetry.set_dispatch_hint
    (match fc.fc_dispatch with
    | Mcfi_runtime.Machine.Byte -> Telemetry.Event.dispatch_byte
    | Mcfi_runtime.Machine.Threaded -> Telemetry.Event.dispatch_threaded);
  Tx.seed_domain_jitter fc.fc_seed;
  let t0 = Unix.gettimeofday () in
  let nsh = fc.fc_shards in
  let master = Prng.create fc.fc_seed in
  let pool =
    Array.init fc.fc_cfgs (fun _ ->
        Stress.gen_cfg master ~slots:fc.fc_slots ~targets:fc.fc_targets)
  in
  let admit_prng = Prng.split master in
  let churn_prng = Prng.split master in
  let shs =
    Shards.create ~stm:fc.fc_stm ~shards:nsh ~code_base:fleet_base
      ~capacity:(4 * fc.fc_targets) ~bary_slots:fc.fc_slots ()
  in
  (* every admission can begin at most one install, plus the seed
     install and slack for journal redos; size each shard's log for the
     worst case of every install landing on it *)
  let storms =
    if fc.fc_storm_every > 0 then fc.fc_ticks / fc.fc_storm_every else 0
  in
  let hists =
    Array.init nsh (fun _ ->
        Stress.make_history
          ((fc.fc_ticks * fc.fc_base_installs) + (storms * fc.fc_storm_size)
          + 64))
  in
  Array.iteri
    (fun i h -> Shards.set_observer shs ~shard:i (Some (Stress.observer h)))
    hists;
  for i = 0 to nsh - 1 do
    let _v0 : int =
      Shards.update ~tag:0 shs ~shard:i
        ~tary:(Stress.tary_of ~base:fleet_base pool.(0))
        ~bary:(Stress.bary_of pool.(0))
    in
    ()
  done;
  let tenants =
    Array.init fc.fc_tenants (fun i ->
        let worker_prng = Prng.split master in
        let jitter_prng = Prng.split master in
        let loader = i < fc.fc_loaders in
        {
          tn_id = i;
          tn_shard = i mod nsh;
          tn_loader = loader;
          tn_prng = worker_prng;
          tn_busy = Atomic.make false;
          tn_alive = Atomic.make false;
          tn_wedged = Atomic.make false;
          tn_slow = Atomic.make false;
          tn_crashed = Atomic.make false;
          tn_kill_next = Atomic.make false;
          tn_escalation = Atomic.make (Health.state_code Health.Starting);
          tn_reader = Atomic.make None;
          tn_proc = Atomic.make None;
          tn_queue = Queue.create ();
          tn_qlock = Mutex.create ();
          tn_qlen = Atomic.make 0;
          tn_progress = Atomic.make 0;
          tn_load_n = Atomic.make 0;
          tn_checks = Atomic.make 0;
          tn_passes = Atomic.make 0;
          tn_violations = Atomic.make 0;
          tn_exhausted = Atomic.make 0;
          tn_retries = Atomic.make 0;
          tn_served = Atomic.make 0;
          tn_loads_ok = Atomic.make 0;
          tn_loads_failed = Atomic.make 0;
          tn_health = Health.create ~prng:jitter_prng fc.fc_policy;
          tn_last_exhausted = 0;
          tn_last_retries = 0;
          tn_crash_wall = 0.;
          tn_was_killed = false;
          tn_kills = 0;
          tn_restarts = 0;
        })
  in
  let ctx =
    {
      cx = fc;
      shs;
      hists;
      shard_states =
        Array.init nsh (fun i ->
            { sh_id = i; sh_crashes = 0; sh_quarantined = false });
      pool;
      chaos = Faults.Tenant.arm fc.fc_chaos;
      tenants;
      stop = Atomic.make false;
    }
  in
  (* birth: register every tenant before the workers start *)
  Array.iter
    (fun tn ->
      if tn.tn_loader then Atomic.set tn.tn_proc (Some (build_loader_proc fc))
      else
        Atomic.set tn.tn_reader
          (Some (Shards.register_reader shs ~shard:tn.tn_shard));
      Atomic.set tn.tn_alive true)
    tenants;
  let workers =
    Array.init fc.fc_workers (fun _ -> Domain.spawn (worker_loop ctx))
  in
  let ad =
    { ad_cursor = 0; ad_admitted = 0; ad_shed = 0; ad_deferred = 0; ad_retry = [] }
  in
  let recoveries = ref [] in
  (* SLO trackers: shard health (crash-free tenant-ticks per shard) plus
     two fleet-wide objectives.  The shard objective is tuned so one
     isolated crash on an 8-tenant shard burns 0.5x budget (no alert)
     but a sustained crash-per-tick episode burns 2.5x in both windows
     and raises exactly one alert on the rising edge. *)
  let shard_pop = Array.make nsh 0 in
  Array.iter
    (fun tn -> shard_pop.(tn.tn_shard) <- shard_pop.(tn.tn_shard) + 1)
    tenants;
  let slo_shard =
    Array.init nsh (fun i ->
        Obs.Slo.tracker
          (Obs.Slo.objective ~target:0.95 ~fast_window:5 ~slow_window:30
             ~burn:2.0 "shard-crash-free")
          ~entity:(Printf.sprintf "shard-%d" i))
  in
  let slo_serve =
    Obs.Slo.tracker
      (Obs.Slo.objective ~target:0.9 "serve-vs-shed")
      ~entity:"fleet"
  in
  let slo_install =
    Obs.Slo.tracker
      (Obs.Slo.objective ~target:0.9 "install-success")
      ~entity:"fleet"
  in
  let ts_checks = Obs.Timeseries.series "fleet.checks"
  and ts_served = Obs.Timeseries.series "fleet.served"
  and ts_shed = Obs.Timeseries.series "fleet.shed"
  and ts_violations = Obs.Timeseries.series "fleet.violations"
  and ts_healthy = Obs.Timeseries.series "fleet.healthy"
  and ts_shard =
    Array.init nsh (fun i ->
        Obs.Timeseries.series (Printf.sprintf "shard%d.installs" i))
  in
  let last_crashes = Array.make nsh 0 in
  let last_admitted = ref 0
  and last_shed = ref 0
  and last_served = ref 0 in
  let alert_trips = ref [] in
  let sum f = Array.fold_left (fun acc tn -> acc + f tn) 0 tenants in
  (* one supervisor-tick pass over the SLO engine: observe this tick's
     deltas, evaluate the burn windows, and (when [fc_slo_breaker]) let
     a shard alert trip the breaker — the trip carries the alert id *)
  let slo_tick ~now =
    let crashes_now = ref 0 in
    for i = 0 to nsh - 1 do
      let sh = ctx.shard_states.(i) in
      let crashed = sh.sh_crashes - last_crashes.(i) in
      last_crashes.(i) <- sh.sh_crashes;
      crashes_now := !crashes_now + crashed;
      let total = max 1 shard_pop.(i) in
      Obs.Slo.observe slo_shard.(i) ~good:(max 0 (total - crashed)) ~total;
      match Obs.Slo.evaluate slo_shard.(i) ~tick:now with
      | Some al when fc.fc_slo_breaker && not sh.sh_quarantined ->
        alert_trips := (sh.sh_id, al.Obs.Slo.al_id) :: !alert_trips;
        quarantine_shard ctx sh ~alert:al.Obs.Slo.al_id
          ~reason:
            (Fmt.str "slo breaker: %a" Obs.Slo.pp_alert al)
          ()
      | Some _ | None -> ()
    done;
    let admitted = ad.ad_admitted and shed = ad.ad_shed in
    let served = sum (fun tn -> Atomic.get tn.tn_served) in
    let g_adm = admitted - !last_admitted and b_shed = shed - !last_shed in
    let g_srv = served - !last_served in
    last_admitted := admitted;
    last_shed := shed;
    last_served := served;
    Obs.Slo.observe slo_serve ~good:g_adm ~total:(g_adm + b_shed);
    ignore (Obs.Slo.evaluate slo_serve ~tick:now);
    Obs.Slo.observe slo_install ~good:g_srv ~total:(g_srv + !crashes_now);
    ignore (Obs.Slo.evaluate slo_install ~tick:now);
    (* time-series snapshots under [mcfi top] and the bench harness *)
    Obs.Timeseries.push ts_checks
      (float_of_int (sum (fun tn -> Atomic.get tn.tn_checks)));
    Obs.Timeseries.push ts_served (float_of_int served);
    Obs.Timeseries.push ts_shed (float_of_int shed);
    Obs.Timeseries.push ts_violations
      (float_of_int (sum (fun tn -> Atomic.get tn.tn_violations)));
    Obs.Timeseries.push ts_healthy
      (float_of_int
         (sum (fun tn ->
              if Health.state tn.tn_health = Health.Healthy then 1 else 0)));
    Array.iteri
      (fun i h ->
        Obs.Timeseries.push ts_shard.(i)
          (float_of_int (Stress.history_completed h)))
      ctx.hists
  in
  for now = 1 to fc.fc_ticks do
    admit_tick ctx ad admit_prng ~now;
    Array.iter
      (fun tn ->
        supervise_tenant ctx recoveries tn ~now ~signals:(sample_signals tn))
      tenants;
    trip_shard_breakers ctx;
    slo_tick ~now;
    (* fleet churn: voluntarily retire a serving tenant; it restarts
       through the same crash path as a real kill *)
    if fc.fc_churn_every > 0 && now mod fc.fc_churn_every = 0 then begin
      let candidates =
        Array.to_list tenants
        |> List.filter (fun tn ->
               (not tn.tn_loader) && Atomic.get tn.tn_alive
               && Health.state tn.tn_health = Health.Healthy)
      in
      match candidates with
      | [] -> ()
      | l -> Atomic.set (Prng.choose churn_prng l).tn_crashed true
    end;
    (* the supervisor doubles as the quiescence reclaimer, shard by
       shard: one shard's stalled epoch never gates another's *)
    for i = 0 to nsh - 1 do
      let ti = Shards.tables shs i in
      if Tables.updates_since_quiesce ti > 0 then
        ignore (Tables.quiesce_attempt ti)
    done;
    if fc.fc_tick_s > 0. then Unix.sleepf fc.fc_tick_s
  done;
  Atomic.set ctx.stop true;
  let tallies = Array.map Domain.join workers in
  Faults.disarm ();
  (* a wedge set too late for the stall detector to catch in-run must
     not slip through as a survivor (or let its registration pollute
     the quiescence gate): quarantine stragglers by decree *)
  Array.iter
    (fun tn ->
      if Atomic.get tn.tn_wedged then begin
        let old_st, new_st = Health.quarantine tn.tn_health in
        if new_st <> old_st then begin
          Atomic.set tn.tn_escalation (Health.state_code new_st);
          Telemetry.emit Telemetry.Event.Tenant_state ~a:tn.tn_id
            ~b:(Health.state_code new_st) ~c:(Health.state_code old_st)
            ~x:(Telemetry.Event.make_ctx ~shard:tn.tn_shard ());
          teardown_tenant ctx tn
        end
      end)
    tenants;
  (* drain: process crashes still pending and let every Restarting
     tenant finish its backoff and rebirth.  The fake epoch keeps
     advancing so nobody looks wedged while the workers are gone. *)
  let max_delay =
    Health.restart_delay_preview fc.fc_policy
      (fc.fc_policy.Health.p_backoff_cap + 1)
  in
  let drain_rounds = (2 * max_delay * fc.fc_policy.Health.p_restart_budget) + 8 in
  for round = 1 to drain_rounds do
    let now = fc.fc_ticks + round in
    Array.iter
      (fun tn ->
        match Health.state tn.tn_health with
        | Health.Dead | Health.Quarantined -> ()
        | _ ->
          let signals =
            {
              (Health.quiet ~epoch:now) with
              Health.s_crashed = Atomic.exchange tn.tn_crashed false;
            }
          in
          supervise_tenant ctx recoveries tn ~now ~signals)
      tenants
  done;
  (* the last kill may have left a torn install on some shard: complete
     it so every shard's install log balances *)
  ignore (Shards.recover_all shs);
  (* wedged-quiescence gate, per shard: with every corpse torn down,
     the survivors' epochs advancing must let each shard's tables
     quiesce independently *)
  let quiesce_shard i =
    let ti = Shards.tables shs i in
    if Tables.updates_since_quiesce ti = 0 then true
    else if Tables.registered_readers ti = 0 then begin
      (* every reader this shard had has been unregistered — e.g. the
         whole shard was quarantined and its tenants torn down — so no
         check transaction can be in flight against it; the epoch
         registry can never produce evidence again, and declaring
         directly is sound *)
      Tables.quiesce ti;
      true
    end
    else begin
      let rec attempt round =
        if round > 200 then false
        else begin
          Array.iter
            (fun tn ->
              if tn.tn_shard = i then
                match Atomic.get tn.tn_reader with
                | Some rd -> Tables.reader_quiescent rd
                | None -> ())
            tenants;
          Tables.quiesce_attempt ti || attempt (round + 1)
        end
      in
      attempt 0
    end
  in
  let final_quiesce = ref true in
  for i = 0 to nsh - 1 do
    if not (quiesce_shard i) then final_quiesce := false
  done;
  let final_quiesce = !final_quiesce in
  (* final teardown: every remaining registration and loader process *)
  Array.iter (fun tn -> teardown_tenant ctx tn) tenants;
  for i = 0 to nsh - 1 do
    Shards.set_observer shs ~shard:i None
  done;
  let anomalies =
    Array.fold_left
      (fun acc y -> List.rev_append y.w_anomalies acc)
      [] tallies
  in
  let anomalies = ref anomalies in
  Array.iteri
    (fun i h ->
      if Stress.history_overflowed h then
        anomalies :=
          {
            Stress.an_seed = fc.fc_seed;
            an_kind = "history-overflow";
            an_detail =
              Printf.sprintf "shard %d: more installs began than the fleet \
                              admits" i;
          }
          :: !anomalies;
      let began = Stress.history_began h in
      let completed = Stress.history_completed h in
      if began <> completed then
        anomalies :=
          {
            Stress.an_seed = fc.fc_seed;
            an_kind = "unbalanced-install-log";
            an_detail =
              Printf.sprintf "shard %d: %d installs began but %d completed" i
                began completed;
          }
          :: !anomalies)
    hists;
  let anomalies = !anomalies in
  let shard_installs =
    Array.map (fun h -> Stress.history_completed h) hists
  in
  let completed = Array.fold_left ( + ) 0 shard_installs in
  let anomalies =
    if final_quiesce then anomalies
    else
      {
        Stress.an_seed = fc.fc_seed;
        an_kind = "wedged-quiescence";
        an_detail =
          "tables could not quiesce after every corpse was torn down";
      }
      :: anomalies
  in
  let unrecovered =
    (* a killed tenant still in [Restarting] was neither reborn nor
       quarantined — the acceptance gate demands there are none *)
    sum (fun tn ->
        if tn.tn_was_killed && Health.state tn.tn_health = Health.Restarting
        then 1
        else 0)
  in
  let quarantined =
    sum (fun tn ->
        if Health.state tn.tn_health = Health.Quarantined then 1 else 0)
  in
  let survivors =
    sum (fun tn ->
        match Health.state tn.tn_health with
        | Health.Starting | Health.Healthy | Health.Degraded -> 1
        | Health.Quarantined | Health.Restarting | Health.Dead -> 0)
  in
  let recoveries_ms = !recoveries in
  let sorted = Array.of_list recoveries_ms in
  Array.sort compare sorted;
  {
    fr_config = fc;
    fr_checks = sum (fun tn -> Atomic.get tn.tn_checks);
    fr_passes = sum (fun tn -> Atomic.get tn.tn_passes);
    fr_violations = sum (fun tn -> Atomic.get tn.tn_violations);
    fr_exhausted = sum (fun tn -> Atomic.get tn.tn_exhausted);
    fr_retries = sum (fun tn -> Atomic.get tn.tn_retries);
    fr_installs = completed;
    fr_served = sum (fun tn -> Atomic.get tn.tn_served);
    fr_admitted = ad.ad_admitted;
    fr_shed = ad.ad_shed + List.length ad.ad_retry;
    fr_deferred = ad.ad_deferred;
    fr_kills = sum (fun tn -> tn.tn_kills);
    fr_restarts = sum (fun tn -> tn.tn_restarts);
    fr_quarantined = quarantined;
    fr_unrecovered = unrecovered;
    fr_survivors = survivors;
    fr_survival_rate = float_of_int survivors /. float_of_int fc.fc_tenants;
    fr_recoveries_ms = recoveries_ms;
    fr_recovery_p50_ms = percentile sorted 0.50;
    fr_recovery_p99_ms = percentile sorted 0.99;
    fr_loads_ok = sum (fun tn -> Atomic.get tn.tn_loads_ok);
    fr_loads_failed = sum (fun tn -> Atomic.get tn.tn_loads_failed);
    fr_quiesces =
      (let q = ref 0 in
       for i = 0 to nsh - 1 do
         q := !q + Tables.quiesce_events (Shards.tables shs i)
       done;
       !q);
    fr_final_quiesce = final_quiesce;
    fr_shard_installs = shard_installs;
    fr_shard_served =
      Array.init nsh (fun i ->
          sum (fun tn ->
              if tn.tn_shard = i then Atomic.get tn.tn_served else 0));
    fr_shards_quarantined =
      Array.fold_left
        (fun acc sh -> if sh.sh_quarantined then acc + 1 else acc)
        0 ctx.shard_states;
    fr_slo_alerts = Obs.Slo.alert_count ();
    fr_alert_trips = List.rev !alert_trips;
    fr_anomalies = anomalies;
    fr_elapsed_s = Unix.gettimeofday () -. t0;
  }
