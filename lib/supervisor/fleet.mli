(** Tenant-fleet supervision: N tenants on one shared table pair, each
    its own fault domain, under a supervisor that restarts, degrades and
    quarantines them while an install storm rages.

    Every tenant is a supervised workload entity: it registers an epoch
    reader on the shared tables, runs oracle-validated check
    transactions (judged by the {!Stress} epoch-history oracle), and
    serves install transactions from a bounded per-tenant queue the
    supervisor feeds.  A few {e loader} tenants own a real
    {!Mcfi_runtime.Process} instead and churn [dlopen]s against it.
    Chaos comes from {!Faults.Tenant} plans — kill-mid-install (the
    victim dies inside an update transaction, journal set, lock
    released), wedge-reader (the tenant stops crossing branch
    boundaries while staying registered — the corpse that would wedge
    quiescence forever), slow-tenant — all replayable from the single
    campaign seed.

    The supervisor ticks on the main domain: it samples each tenant's
    runtime signals, drives its {!Health} machine, tears down crashed
    and quarantined tenants crash-only ({!Mcfi_runtime.Process.teardown}
    semantics: unregister the reader so the corpse cannot gate
    {!Idtables.Tables.try_quiesce}, then {!Idtables.Tx.recover} any torn
    install it died inside of), restarts within a bounded jittered
    backoff and a per-window budget, sheds admissions past the queue
    bound (with a retry-after), and doubles as the quiescence
    reclaimer. *)

type config = {
  fc_seed : int64;
  fc_tenants : int;  (** fleet size (including loaders) *)
  fc_workers : int;  (** worker domains multiplexing the tenants *)
  fc_ticks : int;  (** supervision rounds *)
  fc_checks_per_slice : int;  (** check transactions per tenant slice *)
  fc_cfgs : int;  (** seeded CFG pool size *)
  fc_targets : int;  (** Tary targets of the shared tables *)
  fc_slots : int;  (** Bary slots *)
  fc_base_installs : int;  (** installs admitted per tick (baseline) *)
  fc_storm_every : int;  (** a storm burst every N ticks (0 = never) *)
  fc_storm_size : int;  (** extra installs admitted per storm tick *)
  fc_churn_every : int;
      (** voluntarily retire-and-restart a tenant every N ticks (0 = never) *)
  fc_loaders : int;  (** tenants owning a real process (dlopen churn) *)
  fc_chaos : Faults.Tenant.plan list;
  fc_policy : Health.policy;
  fc_tick_s : float;  (** supervisor pacing between rounds, seconds *)
  fc_shards : int;
      (** shard fault domains ({!Idtables.Shards}); each tenant is homed
          on shard [id mod fc_shards]: its reader, checks, installs,
          kills and recovery all confined there *)
  fc_stm : Idtables.Stm.variant;
      (** commit protocol every shard transaction runs under *)
  fc_shard_breaker : int;
      (** per-shard circuit breaker: quarantine a whole shard — tearing
          down {e only its own} tenants — once this many crashes have
          been attributed to it (0 = off) *)
  fc_slo_breaker : bool;
      (** let the SLO engine's shard burn-rate alerts trip the breaker:
          a shard whose "shard-crash-free" objective burns past
          threshold in both windows is quarantined, and the transition
          record carries the alert id ({!Obs.Slo}) *)
  fc_dispatch : Mcfi_runtime.Machine.dispatch;
      (** execution engine for the loader tenants' VM processes *)
}

val default : seed:int64 -> config
(** The acceptance-gate shape: 64 tenants, storms, churn, and seeded
    kill/wedge/slow chaos. *)

val smoke : seed:int64 -> config
(** A small fast fleet (16 tenants) for CI and unit tests. *)

val pp_config : Format.formatter -> config -> unit

type report = {
  fr_config : config;
  fr_checks : int;
  fr_passes : int;
  fr_violations : int;
  fr_exhausted : int;
  fr_retries : int;
  fr_installs : int;  (** installs completed on the shared tables *)
  fr_served : int;  (** queued installs committed by tenants *)
  fr_admitted : int;  (** installs accepted into tenant queues *)
  fr_shed : int;  (** admissions dropped by load shedding *)
  fr_deferred : int;  (** admissions pushed back with a retry-after *)
  fr_kills : int;  (** tenant deaths the supervisor processed *)
  fr_restarts : int;  (** rebirths completed *)
  fr_quarantined : int;  (** tenants quarantined (budget or breaker) *)
  fr_unrecovered : int;
      (** killed tenants neither reborn nor quarantined by the end —
          the acceptance gate demands 0 *)
  fr_survivors : int;  (** tenants still serving at the end *)
  fr_survival_rate : float;
  fr_recoveries_ms : float list;  (** crash-to-rebirth latencies *)
  fr_recovery_p50_ms : float;
  fr_recovery_p99_ms : float;
  fr_loads_ok : int;  (** loader-tenant dlopens that committed *)
  fr_loads_failed : int;  (** loader-tenant dlopens rolled back *)
  fr_quiesces : int;
  fr_final_quiesce : bool;
      (** every shard's post-run tables reached quiescence — teardown
          really did free every corpse's reader registration *)
  fr_shard_installs : int array;  (** installs completed per shard *)
  fr_shard_served : int array;  (** queued installs committed, per shard *)
  fr_shards_quarantined : int;  (** shards whose breaker tripped *)
  fr_slo_alerts : int;  (** burn-rate alerts the SLO engine raised *)
  fr_alert_trips : (int * int) list;
      (** [(shard, alert id)] for every alert-driven breaker trip, in
          trip order — empty unless [fc_slo_breaker] *)
  fr_anomalies : Stress.anomaly list;
  fr_elapsed_s : float;
}

val pp_report : Format.formatter -> report -> unit

val ok : report -> bool
(** The acceptance predicate: no oracle anomalies, every killed tenant
    restarted or quarantined, quiescence not wedged. *)

val run : config -> report
(** Execute the fleet.  Resets {!Faults.Stats} (and the process-global
    telemetry when enabled), plus the flight recorder, SLO registry and
    time-series registry, so a run's observability accounting is exact:
    one forensic bundle per injected kill and per oracle anomaly, alert
    ids counted from this run.  Leaves no global fault plan armed.  The
    workload is deterministic per seed; domain scheduling still varies,
    but the epoch-history oracle judges every interleaving. *)
