module Prng = Mcfi_util.Prng
open Idtables

type scenario = {
  seed : int64;
  checkers : int;
  updaters : int;
  updates : int;
  cfgs : int;
  targets : int;
  slots : int;
  kill_every : int;
  reclaimer : bool;
  watchdog_deadline : int;
  loader_loads : int;
  loader_fault_one_in : int;
  shards : int;
  stm : Stm.variant;
  hoisted : bool;
}

let default ~seed =
  {
    seed;
    checkers = 4;
    updaters = 2;
    (* past the 2^14 ABA wall: only epoch quiescence gets us through *)
    updates = Id.max_version + 128;
    cfgs = 6;
    targets = 24;
    slots = 4;
    kill_every = 389;
    reclaimer = true;
    watchdog_deadline = 256;
    loader_loads = 0;
    loader_fault_one_in = 0;
    shards = 1;
    stm = Stm.Tml;
    hoisted = false;
  }

let generate ~seed =
  let p = Prng.create seed in
  let base =
    {
      seed;
      checkers = 2 + Prng.int p 4;
      updaters = 1 + Prng.int p 3;
      updates = 4096 + Prng.int p 24_000;
      cfgs = 4 + Prng.int p 12;
      targets = 8 + (4 * Prng.int p 14);
      slots = 2 + Prng.int p 6;
      kill_every = Prng.choose p [ 0; 61; 97; 193 ];
      reclaimer = Prng.bool p;
      watchdog_deadline = 64 + Prng.int p 448;
      loader_loads = Prng.choose p [ 0; 4; 8 ];
      loader_fault_one_in = Prng.choose p [ 0; 2; 3 ];
      shards = 1;
      stm = Stm.Tml;
      hoisted = false;
    }
  in
  (* drawn after the record so the base dimensions keep their stream
     positions (record-field evaluation order is unspecified) *)
  let shards = Prng.choose p [ 1; 2; 4 ] in
  let stm = Prng.choose p Stm.all in
  let hoisted = Prng.bool p in
  { base with shards; stm; hoisted }

let pp_scenario ppf sc =
  Fmt.pf ppf
    "seed=%Ld checkers=%d updaters=%d updates=%d cfgs=%d targets=%d slots=%d \
     kill-every=%d reclaimer=%b deadline=%d loads=%d load-fault-1/%d \
     shards=%d stm=%a dispatch=%s"
    sc.seed sc.checkers sc.updaters sc.updates sc.cfgs sc.targets sc.slots
    sc.kill_every sc.reclaimer sc.watchdog_deadline sc.loader_loads
    sc.loader_fault_one_in sc.shards Stm.pp sc.stm
    (if sc.hoisted then "threaded" else "byte")

type anomaly = { an_seed : int64; an_kind : string; an_detail : string }

let pp_anomaly ppf a =
  Fmt.pf ppf "[%s] %s (replay with seed %Ld)" a.an_kind a.an_detail a.an_seed

type report = {
  rp_scenario : scenario;
  rp_checks : int;
  rp_passes : int;
  rp_violations : int;
  rp_exhausted : int;
  rp_installs : int;
  rp_shard_installs : int array;
  rp_kills : int;
  rp_recoveries : int;
  rp_retries : int;
  rp_watchdog_fires : int;
  rp_rollbacks : int;
  rp_loads_ok : int;
  rp_loads_failed : int;
  rp_quiesces : int;
  rp_anomalies : anomaly list;
  rp_trace : Telemetry.Event.t list;
  rp_elapsed_s : float;
}

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>checks %d (%d pass / %d violation / %d exhausted)@,\
     installs %d%a, kills %d, recoveries %d, quiesces %d@,\
     retries %d, watchdog fires %d@,\
     loads %d ok / %d failed, rollbacks %d@,\
     anomalies %d%a%a@,\
     elapsed %.2fs@]"
    r.rp_checks r.rp_passes r.rp_violations r.rp_exhausted r.rp_installs
    (fun ppf a ->
      if Array.length a > 1 then
        Fmt.pf ppf " (per shard: %a)"
          Fmt.(array ~sep:(any "/") int)
          a)
    r.rp_shard_installs r.rp_kills r.rp_recoveries r.rp_quiesces r.rp_retries
    r.rp_watchdog_fires r.rp_loads_ok r.rp_loads_failed r.rp_rollbacks
    (List.length r.rp_anomalies)
    (fun ppf -> function
      | [] -> ()
      | l -> Fmt.pf ppf ":@,  @[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_anomaly) l)
    r.rp_anomalies
    (fun ppf -> function
      | [] -> ()
      | tr ->
        Fmt.pf ppf "@,trace evidence (%d most recent events):@,  @[<v>%a@]"
          (List.length tr)
          (Fmt.list ~sep:Fmt.cut Telemetry.Event.pp)
          tr)
    r.rp_trace r.rp_elapsed_s

(* ------------------------------------------------------------------ *)
(* Seeded CFG pool                                                     *)

(* A pool CFG over a small ECN space: [c_bary.(slot)] is the branch
   slot's class, [c_tary.(i)] the class of the i-th 4-aligned target
   (-1 = not a target).  Three classes and a 1-in-4 hole rate give a
   healthy mix of passes and violations. *)
type cfg = { c_bary : int array; c_tary : int array }

let ecn_space = 3

let gen_cfg p ~slots ~targets =
  {
    c_bary = Array.init slots (fun _ -> Prng.int p ecn_space);
    c_tary =
      Array.init targets (fun _ ->
          if Prng.int p 4 = 0 then -1 else Prng.int p ecn_space);
  }

let allows cfg ~slot ~tidx =
  tidx >= 0 && cfg.c_tary.(tidx) >= 0 && cfg.c_tary.(tidx) = cfg.c_bary.(slot)

let tary_of ~base cfg =
  let acc = ref [] in
  Array.iteri
    (fun i e -> if e >= 0 then acc := (base + (4 * i), e) :: !acc)
    cfg.c_tary;
  !acc

let bary_of cfg =
  Array.to_list (Array.mapi (fun s e -> (s, e)) cfg.c_bary)

(* ------------------------------------------------------------------ *)
(* Epoch-history oracle                                                *)

(* The install log.  [obs_begin] (under the update lock, before the first
   slot write) records version and tag at index [h_began], then publishes
   by bumping the counter — so any entry below an observed [h_began] is
   fully written.  Completions happen in begin order: installs serialize
   on the update lock and a torn install is redone by the next lock
   holder before its own begins, hence "[h_completed] = c" means exactly
   entries 0..c-1 are fully installed. *)
type history = {
  h_version : int array;
  h_tag : int array;
  h_began : int Atomic.t;
  h_completed : int Atomic.t;
  h_overflow : bool Atomic.t;
}

let make_history size =
  {
    h_version = Array.make size (-1);
    h_tag = Array.make size (-1);
    h_began = Atomic.make 0;
    h_completed = Atomic.make 0;
    h_overflow = Atomic.make false;
  }

let history_began h = Atomic.get h.h_began
let history_completed h = Atomic.get h.h_completed
let history_overflowed h = Atomic.get h.h_overflow

let observer h =
  {
    Tables.obs_begin =
      (fun ~version ~tag ->
        let i = Atomic.get h.h_began in
        if i < Array.length h.h_tag then begin
          h.h_version.(i) <- version;
          h.h_tag.(i) <- tag;
          Atomic.incr h.h_began
        end
        else Atomic.set h.h_overflow true);
    obs_complete = (fun ~version:_ ~tag:_ -> Atomic.incr h.h_completed);
  }

(* A check that read [h_completed] = c0 before its first table read and
   [h_began] = b1 after its last can only have observed table words
   written by installs [c0-1 .. b1-1]: anything older was fully
   overwritten before the check started (entry c0-1 was the last
   complete install, and each install rewrites every slot), anything
   newer had not begun when the check finished. *)
let window_justifies h pool ~slot ~tidx ~c0 ~b1 ~pass =
  let lo = max 0 (c0 - 1) in
  let hi = min (b1 - 1) (Array.length h.h_tag - 1) in
  let rec go i =
    i <= hi
    &&
    let tag = h.h_tag.(i) in
    let ok = tag >= 0 && tag < Array.length pool && allows pool.(tag) ~slot ~tidx in
    (if pass then ok else not ok) || go (i + 1)
  in
  go lo

(* ------------------------------------------------------------------ *)
(* Per-domain tallies                                                  *)

type tally = {
  mutable y_checks : int;
  mutable y_passes : int;
  mutable y_violations : int;
  mutable y_exhausted : int;
  mutable y_anomaly_count : int;
  mutable y_anomalies : anomaly list; (* capped; newest first *)
}

let new_tally () =
  {
    y_checks = 0;
    y_passes = 0;
    y_violations = 0;
    y_exhausted = 0;
    y_anomaly_count = 0;
    y_anomalies = [];
  }

let max_anomalies_kept = 4

let record_anomaly y ~seed kind detail =
  y.y_anomaly_count <- y.y_anomaly_count + 1;
  if y.y_anomaly_count <= max_anomalies_kept then
    y.y_anomalies <-
      { an_seed = seed; an_kind = kind; an_detail = detail } :: y.y_anomalies;
  (* the choke point every oracle verdict passes through: exactly one
     forensic bundle per recorded anomaly (the trigger is uncapped) *)
  if Obs.Flightrec.recording () then
    ignore
      (Obs.Flightrec.record_trigger Obs.Flightrec.Oracle_anomaly
         ~reason:(Printf.sprintf "%s (replay with seed %Ld)" kind seed)
         ~extra:
           [
             ("kind", Obs.Json.Str kind);
             ("detail", Obs.Json.Str detail);
             ("seed", Obs.Json.Str (Int64.to_string seed));
           ]
         ())

(* ------------------------------------------------------------------ *)
(* Component A: the table torture                                      *)

let torture_base = 0x1000

let m_hoist_site_hits = Telemetry.Metrics.counter "mcfi_hoist_site_hits_total"

let m_hoist_site_misses =
  Telemetry.Metrics.counter "mcfi_hoist_site_misses_total"

let torture_checker ~stop ~shs ~shard ~h ~pool ~prng ~sc () =
  let rd = Shards.register_reader shs ~shard in
  let wd =
    { Tx.wd_deadline = sc.watchdog_deadline; wd_on_expire = Tx.Wait_for_updater }
  in
  (* the backoff jitter stream is derived in the spawned domain itself:
     per-domain, never shared with a sibling checker *)
  let jitter = Tx.domain_jitter () in
  (* threaded-dispatch analogue: one version-hoisted site per branch
     slot, exactly as the fused check superinstructions keep one per
     enforcement site.  The epoch-history oracle judges hoisted checks
     unchanged: a hit requires the shard's install sequence word even
     and unmoved since the fill, so the cached pair is bit-identical to
     a fresh read in the same window. *)
  let sites =
    if sc.hoisted then Some (Array.init sc.slots (fun _ -> Tx.site ()))
    else None
  in
  let y = new_tally () in
  (* black-box tally handle: resolved once, bumped per check with plain
     stores — the flight recorder's always-on accounting *)
  let fr = Obs.Flightrec.tally () in
  while not (Atomic.get stop) do
    (* branch boundary: provably outside any check transaction *)
    Tables.reader_quiescent rd;
    let slot = Prng.int prng sc.slots in
    let kind = Prng.int prng 10 in
    let tidx, target =
      if kind = 0 then (* misaligned probe: can never be a valid target *)
        (-1, torture_base + (4 * Prng.int prng sc.targets) + 2)
      else if kind = 1 then (* past the covered code: likewise *)
        (-1, torture_base + (4 * sc.targets))
      else
        let i = Prng.int prng sc.targets in
        (i, torture_base + (4 * i))
    in
    let c0 = Atomic.get h.h_completed in
    let out =
      match sites with
      | Some st ->
        Shards.check_hoisted ~watchdog:wd ~jitter shs ~shard st.(slot)
          ~bary_index:slot ~target
      | None ->
        Shards.check ~watchdog:wd ~jitter shs ~shard ~bary_index:slot ~target
    in
    let b1 = Atomic.get h.h_began in
    y.y_checks <- y.y_checks + 1;
    if Obs.Flightrec.recording () then
      Obs.Flightrec.bump fr
        ~outcome:
          (match out with
          | Tx.Pass -> 0
          | Tx.Violation -> 1
          | Tx.Retries_exhausted -> 2)
        ~retries:0;
    let detail kind_s =
      Printf.sprintf
        "%s: shard=%d slot=%d tidx=%d window=[%d,%d] versions=[%d,%d]" kind_s
        shard slot tidx
        (max 0 (c0 - 1))
        (b1 - 1)
        (h.h_version.(max 0 (c0 - 1)))
        (h.h_version.(max 0 (min (b1 - 1) (Array.length h.h_version - 1))))
    in
    match out with
    | Tx.Pass ->
      y.y_passes <- y.y_passes + 1;
      if not (window_justifies h pool ~slot ~tidx ~c0 ~b1 ~pass:true) then
        record_anomaly y ~seed:sc.seed "unjustified-pass"
          (detail "no live CFG version allows this edge")
    | Tx.Violation ->
      y.y_violations <- y.y_violations + 1;
      if not (window_justifies h pool ~slot ~tidx ~c0 ~b1 ~pass:false) then
        record_anomaly y ~seed:sc.seed "unjustified-violation"
          (detail "every live CFG version allows this edge")
    | Tx.Retries_exhausted -> y.y_exhausted <- y.y_exhausted + 1
  done;
  Shards.unregister_reader shs ~shard rd;
  (* hoisted-site cache traffic, aggregated into the metrics registry
     (the torture analogue of the fused superinstructions' hoist cache;
     [Metrics.add] is gated on telemetry being enabled) *)
  (match sites with
  | Some st ->
    let hits = ref 0 and misses = ref 0 in
    Array.iter
      (fun s ->
        let h, m = Tx.site_stats s in
        hits := !hits + h;
        misses := !misses + m)
      st;
    Telemetry.Metrics.add m_hoist_site_hits !hits;
    Telemetry.Metrics.add m_hoist_site_misses !misses
  | None -> ());
  y

(* every 11th update by an updater on a multi-shard harness commits the
   same CFG on its home shard and one other, through the cross-shard
   sequence — so [Between_shard_commits] kills get exercised and each
   shard's oracle still sees a full install of a pool CFG *)
let cross_shard_every = 11

let torture_updater ~shs ~pool ~prng ~sc ~n ~uid () =
  let nsh = Shards.count shs in
  let home = uid mod nsh in
  let kills = ref 0 in
  let fatal = ref [] in
  for j = 1 to n do
    let ci = Prng.int prng (Array.length pool) in
    if sc.kill_every > 0 && uid = 0 && j mod sc.kill_every = 0 then begin
      (* arm a one-shot mid-install kill; it fires inside whichever
         updater crosses the point next (usually this one, within this
         very update) and leaves at most one shard's journal for that
         shard's next lock holder to redo *)
      let plan =
        if nsh = 1 then
          let point, hit =
            if Prng.bool prng then
              (Faults.Plan.Nth_tary_write, 1 + Prng.int prng sc.targets)
            else (Faults.Plan.Between_tary_and_bary, 1)
          in
          Faults.Plan.At { point; hit }
        else
          match Prng.int prng 3 with
          | 0 ->
            Faults.Plan.At_shard
              {
                shard = home;
                point = Faults.Plan.Nth_tary_write;
                hit = 1 + Prng.int prng sc.targets;
              }
          | 1 ->
            Faults.Plan.At_shard
              { shard = home; point = Faults.Plan.Between_tary_and_bary; hit = 1 }
          | _ ->
            (* dies between shard commits: the earlier shard stays
               committed, this one is never touched *)
            Faults.Plan.At_shard
              {
                shard = (home + 1) mod nsh;
                point = Faults.Plan.Between_shard_commits;
                hit = 1;
              }
      in
      Faults.arm plan
    end;
    let tary = tary_of ~base:torture_base pool.(ci) in
    let bary = bary_of pool.(ci) in
    match
      if nsh > 1 && j mod cross_shard_every = 0 then
        let other = (home + 1 + Prng.int prng (nsh - 1)) mod nsh in
        ignore
          (Shards.update_multi_full ~tag:ci shs
             [ (home, (tary, bary)); (other, (tary, bary)) ])
      else ignore (Shards.update ~tag:ci shs ~shard:home ~tary ~bary)
    with
    | () -> ()
    | exception Faults.Injected _ ->
      incr kills;
      (* one bundle per injected kill (uncapped): the shard-state
         snapshot shows which journal the next lock holder must redo *)
      if Obs.Flightrec.recording () then
        ignore
          (Obs.Flightrec.record_trigger Obs.Flightrec.Injected_kill
             ~reason:
               (Printf.sprintf "updater %d killed mid-install at update %d"
                  uid j)
             ~extra:
               [
                 ("updater", Obs.Json.num uid);
                 ("update", Obs.Json.num j);
                 ("shards", Shards.states_json shs);
               ]
             ())
    | exception Tx.Version_space_exhausted ->
      fatal :=
        {
          an_seed = sc.seed;
          an_kind = "version-space-exhausted";
          an_detail =
            Printf.sprintf
              "updater %d (shard %d) exhausted versions at its update %d" uid
              home j;
        }
        :: !fatal
  done;
  (!kills, !fatal)

let reclaimer_loop ~stop ~shs () =
  let nsh = Shards.count shs in
  while not (Atomic.get stop) do
    for i = 0 to nsh - 1 do
      let t = Shards.tables shs i in
      if Tables.updates_since_quiesce t > 0 then
        ignore (Tables.quiesce_attempt t)
    done;
    Tx.backoff 4
  done

let run_torture sc master pool =
  let nsh = max 1 sc.shards in
  let shs =
    Shards.create ~stm:sc.stm ~shards:nsh ~code_base:torture_base
      ~capacity:(4 * sc.targets) ~bary_slots:sc.slots ()
  in
  (* the cross-shard path commits one update on two shards, and each
     shard takes one seeding install: size every shard's log for the
     worst case *)
  let hists =
    Array.init nsh (fun _ -> make_history ((2 * sc.updates) + 64 + nsh))
  in
  Array.iteri
    (fun i h -> Shards.set_observer shs ~shard:i (Some (observer h)))
    hists;
  (* an initial complete install per shard so every check window is
     non-empty on every shard *)
  for i = 0 to nsh - 1 do
    let _v0 : int =
      Shards.update ~tag:0 shs ~shard:i
        ~tary:(tary_of ~base:torture_base pool.(0))
        ~bary:(bary_of pool.(0))
    in
    ()
  done;
  let chk_prngs = Array.init sc.checkers (fun _ -> Prng.split master) in
  let upd_prngs = Array.init sc.updaters (fun _ -> Prng.split master) in
  let stop = Atomic.make false in
  let checkers =
    Array.mapi
      (fun i prng ->
        let shard = i mod nsh in
        Domain.spawn
          (torture_checker ~stop ~shs ~shard ~h:hists.(shard) ~pool ~prng ~sc))
      chk_prngs
  in
  let reclaimer =
    if sc.reclaimer then Some (Domain.spawn (reclaimer_loop ~stop ~shs))
    else None
  in
  let per = sc.updates / sc.updaters in
  let updaters =
    Array.init sc.updaters (fun uid ->
        let n =
          if uid = 0 then sc.updates - (per * (sc.updaters - 1)) else per
        in
        Domain.spawn
          (torture_updater ~shs ~pool ~prng:upd_prngs.(uid) ~sc ~n ~uid))
  in
  let upd_results = Array.map Domain.join updaters in
  Faults.disarm ();
  (* the last kill may have left a torn install on some shard: complete
     it so that shard's log balances and its tables end consistent *)
  ignore (Shards.recover_all shs);
  Atomic.set stop true;
  let chk_results = Array.map Domain.join checkers in
  Option.iter Domain.join reclaimer;
  for i = 0 to nsh - 1 do
    Shards.set_observer shs ~shard:i None
  done;
  let kills = Array.fold_left (fun acc (k, _) -> acc + k) 0 upd_results in
  let fatal =
    ref
      (Array.fold_left (fun acc (_, f) -> List.rev_append f acc) [] upd_results)
  in
  Array.iteri
    (fun i h ->
      if Atomic.get h.h_overflow then
        fatal :=
          {
            an_seed = sc.seed;
            an_kind = "history-overflow";
            an_detail =
              Printf.sprintf
                "shard %d: more installs began than the scenario allows" i;
          }
          :: !fatal;
      let completed = Atomic.get h.h_completed in
      let began = Atomic.get h.h_began in
      if completed <> began then
        fatal :=
          {
            an_seed = sc.seed;
            an_kind = "unbalanced-install-log";
            an_detail =
              Printf.sprintf "shard %d: %d installs began but %d completed" i
                began completed;
          }
          :: !fatal)
    hists;
  let shard_installs = Array.map (fun h -> Atomic.get h.h_completed) hists in
  let installs = Array.fold_left ( + ) 0 shard_installs in
  let quiesces = ref 0 in
  for i = 0 to nsh - 1 do
    quiesces := !quiesces + Tables.quiesce_events (Shards.tables shs i)
  done;
  (chk_results, installs, kills, !fatal, !quiesces, shard_installs)

(* ------------------------------------------------------------------ *)
(* Component B: the loader storm                                       *)

(* The victim program needs live indirect edges, so its tables hold
   matching branch/target classes the storm checkers can probe. *)
let storm_program =
  {|
typedef int (*op_fn)(int);
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int apply(op_fn f, int x) { return f(x); }
int main() {
  op_fn f = inc;
  op_fn g = dec;
  return apply(f, apply(g, 41));
}
|}

(* A (branch slot, target) pair allowed by the current tables.  The
   type-matching CFG generator only merges equivalence classes as more
   modules load, so an allowed edge stays allowed across the storm —
   a stable oracle for the checkers. *)
let stable_probe t =
  let tary = Tables.tary_entries t in
  List.find_map
    (fun (slot, bid) ->
      List.find_map
        (fun (addr, tid) ->
          if Id.ecn tid = Id.ecn bid then Some (slot, addr) else None)
        tary)
    (Tables.bary_entries t)

let storm_checker ~stop ~t ~load_seq ~slot ~allowed ~denied ~sc ~prng () =
  let rd = Tables.register_reader t in
  let wd =
    { Tx.wd_deadline = sc.watchdog_deadline; wd_on_expire = Tx.Wait_for_updater }
  in
  let y = new_tally () in
  (* a short storm can finish before this domain starts: probe a minimum
     number of times regardless, so the stable edges are always exercised *)
  while y.y_checks < 32 || not (Atomic.get stop) do
    Tables.reader_quiescent rd;
    let probe_denied = Prng.int prng 4 = 0 in
    let target = if probe_denied then denied else allowed in
    let s0 = Atomic.get load_seq in
    let out = Tx.check ~watchdog:wd t ~bary_index:slot ~target in
    let s1 = Atomic.get load_seq in
    y.y_checks <- y.y_checks + 1;
    match out with
    | Tx.Pass ->
      y.y_passes <- y.y_passes + 1;
      if probe_denied then
        record_anomaly y ~seed:sc.seed "storm-denied-pass"
          (Printf.sprintf "never-valid target 0x%x passed its check" target)
    | Tx.Violation ->
      y.y_violations <- y.y_violations + 1;
      (* a failed load's rollback scrubs the tables mid-restore, so a
         stable-edge violation is only anomalous outside any load
         window: the seqlock parity must show no load began or ended
         around the check *)
      if (not probe_denied) && s0 = s1 && s0 land 1 = 0 then
        record_anomaly y ~seed:sc.seed "storm-stable-edge-violation"
          (Printf.sprintf
             "allowed edge slot=%d target=0x%x violated with no load in \
              flight"
             slot target)
    | Tx.Retries_exhausted -> y.y_exhausted <- y.y_exhausted + 1
  done;
  Tables.unregister_reader t rd;
  y

let storm_fault_points =
  Faults.Plan.
    [ During_verification; Nth_tary_write; Between_tary_and_bary;
      After_code_append ]

let run_storm sc prng =
  let proc =
    Mcfi.Pipeline.build_process ~instrumented:true
      ~sources:[ ("main", storm_program) ]
      ()
  in
  let t = Option.get (Mcfi_runtime.Process.tables proc) in
  match stable_probe t with
  | None ->
    Mcfi_runtime.Process.teardown proc;
    ( [||],
      0,
      0,
      [
        {
          an_seed = sc.seed;
          an_kind = "storm-no-stable-edge";
          an_detail = "victim program produced no allowed indirect edge";
        };
      ] )
  | Some (slot, allowed) ->
    (* far beyond any code the storm loads: a forever-invalid target *)
    let denied = Tables.code_base t + Tables.capacity t - 4 in
    let load_seq = Atomic.make 0 in
    let stop = Atomic.make false in
    let nchk = max 1 (min 2 sc.checkers) in
    let chk_prngs = Array.init nchk (fun _ -> Prng.split prng) in
    let checkers =
      Array.map
        (fun p ->
          Domain.spawn
            (storm_checker ~stop ~t ~load_seq ~slot ~allowed ~denied ~sc
               ~prng:p))
        chk_prngs
    in
    let ok = ref 0 and failed = ref 0 in
    let prev = ref None in
    for i = 1 to sc.loader_loads do
      Atomic.incr load_seq;
      (* odd: a load window is open *)
      let name, src =
        match !prev with
        | Some prev_mod when i mod 4 = 0 ->
          (* re-load the previous module verbatim: the symbol clash must
             fail the load and exercise the journal rollback *)
          prev_mod
        | _ ->
          ( Printf.sprintf "plug%d" i,
            Printf.sprintf "int fn_%d(int x) { return x + %d; }" i i )
      in
      prev := Some (name, src);
      (match
         let obj =
           Mcfi.Pipeline.instrument (Mcfi.Pipeline.compile_module ~name src)
         in
         if
           sc.loader_fault_one_in > 0
           && Prng.int prng sc.loader_fault_one_in = 0
         then
           Faults.arm
             (Faults.Plan.At
                { point = Prng.choose prng storm_fault_points; hit = 1 });
         Mcfi_runtime.Process.load proc obj
       with
      | () -> incr ok
      | exception Faults.Injected _ ->
        incr failed;
        if Obs.Flightrec.recording () then
          ignore
            (Obs.Flightrec.record_trigger Obs.Flightrec.Injected_kill
               ~reason:
                 (Printf.sprintf "loader killed mid-load of %s (load %d)" name
                    i)
               ~extra:
                 [
                   ("module", Obs.Json.Str name);
                   ("load", Obs.Json.num i);
                   ("tables", Tables.state_json t);
                 ]
               ())
      | exception
          ( Mcfi_runtime.Process.Error _ | Mcfi.Pipeline.Error _
          | Invalid_argument _ ) ->
        incr failed);
      Faults.disarm ();
      Atomic.incr load_seq (* even: window closed *)
    done;
    Atomic.set stop true;
    let chk_results = Array.map Domain.join checkers in
    (* the kill path: the victim process is done — its reader must not
       outlive it in the epoch registry, or the tables could never
       quiesce again *)
    Mcfi_runtime.Process.teardown proc;
    (chk_results, !ok, !failed, [])

(* ------------------------------------------------------------------ *)

let empty_tallies : tally array = [||]

(* trace evidence attached to an anomalous report: enough tail to see
   the installs and watchdog fires around the bad check, small enough to
   print *)
let max_trace_evidence = 256

let run sc =
  let sc =
    {
      sc with
      checkers = max 1 sc.checkers;
      updaters = max 1 sc.updaters;
      shards = max 1 sc.shards;
    }
  in
  Faults.disarm ();
  Faults.Stats.reset ();
  (* every spawned domain derives its own backoff jitter stream from
     this seed; re-seeding also invalidates streams cached by domains a
     previous run left behind *)
  Tx.seed_domain_jitter sc.seed;
  (* the harness owns the process-global trace while it runs, exactly as
     it owns [Faults.Stats] *)
  if Telemetry.enabled () then Telemetry.reset ();
  (* ... and the flight recorder: rewinding here makes the run's bundle
     accounting exact (one per anomaly, one per kill).  The output
     directory and caps survive the reset. *)
  if Obs.Flightrec.recording () then Obs.Flightrec.reset ();
  (* trace events from this run carry the engine the scenario drives
     (the hoisted torture path is the threaded-dispatch analogue) *)
  Telemetry.set_dispatch_hint
    (if sc.hoisted then Telemetry.Event.dispatch_threaded
     else Telemetry.Event.dispatch_byte);
  let t0 = Unix.gettimeofday () in
  let master = Prng.create sc.seed in
  let pool_prng = Prng.split master in
  let pool =
    Array.init (max 1 sc.cfgs) (fun _ ->
        gen_cfg pool_prng ~slots:sc.slots ~targets:sc.targets)
  in
  let tort_tallies, installs, kills, tort_anoms, quiesces, shard_installs =
    if sc.updates > 0 then run_torture sc master pool
    else (empty_tallies, 0, 0, [], 0, Array.make sc.shards 0)
  in
  let storm_tallies, loads_ok, loads_failed, storm_anoms =
    if sc.loader_loads > 0 then run_storm sc (Prng.split master)
    else (empty_tallies, 0, 0, [])
  in
  let stats = Faults.Stats.snapshot () in
  let tallies = Array.append tort_tallies storm_tallies in
  let sum f = Array.fold_left (fun acc y -> acc + f y) 0 tallies in
  let anomalies =
    tort_anoms @ storm_anoms
    @ Array.fold_left
        (fun acc y -> List.rev_append y.y_anomalies acc)
        [] tallies
  in
  (* an anomaly stops being a bare counter: ship the merged trace tail
     as evidence alongside it *)
  let trace =
    if anomalies <> [] && Telemetry.enabled () then begin
      let all = Telemetry.drain () in
      let n = List.length all in
      if n <= max_trace_evidence then all
      else List.filteri (fun i _ -> i >= n - max_trace_evidence) all
    end
    else []
  in
  {
    rp_scenario = sc;
    rp_checks = sum (fun y -> y.y_checks);
    rp_passes = sum (fun y -> y.y_passes);
    rp_violations = sum (fun y -> y.y_violations);
    rp_exhausted = sum (fun y -> y.y_exhausted);
    rp_installs = installs;
    rp_shard_installs = shard_installs;
    rp_kills = kills;
    rp_recoveries = stats.Faults.Stats.recoveries;
    rp_retries = stats.Faults.Stats.retries;
    rp_watchdog_fires = stats.Faults.Stats.watchdog_fires;
    rp_rollbacks = stats.Faults.Stats.rollbacks;
    rp_loads_ok = loads_ok;
    rp_loads_failed = loads_failed;
    rp_quiesces = quiesces;
    rp_anomalies = anomalies;
    rp_trace = trace;
    rp_elapsed_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Component C: check throughput during delta installs                 *)

type throughput = {
  tp_checks : int;
  tp_checks_during_install : int;
  tp_installs : int;
  tp_carries : int;
  tp_elapsed_s : float;
  tp_install_s : float;
}

(* Unlike a full update, a delta leaves clean classes at their old
   version, so a cross-class probe (a genuine violation attempt) sees
   version skew that never resolves — the watchdog path decides it, as
   in [torture_checker]; [check_fast]'s unbounded spin would livelock. *)
let throughput_checker ~stop ~installing ~t ~prng ~targets ~slots () =
  let rd = Tables.register_reader t in
  let wd = { Tx.wd_deadline = 8; wd_on_expire = Tx.Wait_for_updater } in
  let jitter = Tx.domain_jitter () in
  let checks = ref 0 and during = ref 0 in
  while not (Atomic.get stop) do
    Tables.reader_quiescent rd;
    let slot = Prng.int prng slots in
    let target = torture_base + (4 * Prng.int prng targets) in
    let overlapped = Atomic.get installing in
    ignore (Tx.check ~watchdog:wd ~jitter t ~bary_index:slot ~target);
    incr checks;
    if overlapped || Atomic.get installing then incr during
  done;
  Tables.unregister_reader t rd;
  (!checks, !during)

let install_throughput ?(checkers = 4) ?(installs = 256) ?(targets = 4096)
    ?(slots = 4096) ?(classes = 64) ~seed () =
  if classes < 3 then invalid_arg "Stress.install_throughput: classes < 3";
  let prng = Prng.create seed in
  let t =
    Tables.create ~code_base:torture_base ~capacity:(4 * targets)
      ~bary_slots:slots ()
  in
  (* Mirror of the installed assignment, kept class/version-consistent:
     every delta rewrites *all* slots of the (few) classes it dirties,
     exactly as the linker's [Cfggen] delta does, so concurrent checks
     on untouched classes never see version skew. *)
  let cur_bary = Array.init slots (fun _ -> Prng.int prng classes) in
  let cur_tary =
    Array.init targets (fun i ->
        if Prng.int prng 4 = 0 then -1 else cur_bary.(i mod slots))
  in
  let addr i = torture_base + (4 * i) in
  let full_tary () =
    let acc = ref [] in
    Array.iteri (fun i e -> if e >= 0 then acc := (addr i, e) :: !acc) cur_tary;
    !acc
  in
  ignore
    (Tx.update t ~tary:(full_tary ())
       ~bary:(Array.to_list (Array.mapi (fun s e -> (s, e)) cur_bary)));
  let stop = Atomic.make false in
  let installing = Atomic.make false in
  let chk_prngs = Array.init (max 1 checkers) (fun _ -> Prng.split prng) in
  let doms =
    Array.map
      (fun prng ->
        Domain.spawn
          (throughput_checker ~stop ~installing ~t ~prng ~targets ~slots))
      chk_prngs
  in
  let carries = ref 0 in
  let t0 = Unix.gettimeofday () in
  let install_s = ref 0.0 in
  for _ = 1 to installs do
    (* dirty two classes: shuffle membership between them, rewrite every
       slot of both at the bumped version *)
    let a = Prng.int prng classes in
    let b = (a + 1 + Prng.int prng (classes - 1)) mod classes in
    let tary_rw = ref [] and bary_rw = ref [] in
    for s = 0 to slots - 1 do
      let e = cur_bary.(s) in
      if e = a || e = b then begin
        let e' = if Prng.bool prng then a else b in
        cur_bary.(s) <- e';
        bary_rw := (s, e') :: !bary_rw
      end
    done;
    for i = 0 to targets - 1 do
      let e = cur_tary.(i) in
      if e = a || e = b then begin
        let e' = if Prng.bool prng then a else b in
        cur_tary.(i) <- e';
        tary_rw := (addr i, e') :: !tary_rw
      end
    done;
    (* occasionally grow an untouched class through the carry path: a
       hole joins it at the donor's current version *)
    let tary_carry =
      if Prng.int prng 4 <> 0 then []
      else
        let hole = ref (-1) and donor = ref (-1) in
        (try
           for i = 0 to targets - 1 do
             let j = (i + Prng.int prng targets) mod targets in
             if !hole < 0 && cur_tary.(j) < 0 then hole := j;
             if
               !donor < 0 && cur_tary.(j) >= 0 && cur_tary.(j) <> a
               && cur_tary.(j) <> b
             then donor := j;
             if !hole >= 0 && !donor >= 0 then raise Exit
           done
         with Exit -> ());
        if !hole < 0 || !donor < 0 then []
        else begin
          let e = cur_tary.(!donor) in
          cur_tary.(!hole) <- e;
          incr carries;
          [ (addr !hole, e, Tx.From_tary (addr !donor)) ]
        end
    in
    let i0 = Unix.gettimeofday () in
    Atomic.set installing true;
    ignore
      (Tx.update_delta t ~tary:!tary_rw ~bary:!bary_rw ~tary_carry
         ~bary_carry:[]);
    Atomic.set installing false;
    install_s := !install_s +. (Unix.gettimeofday () -. i0)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  let results = Array.map Domain.join doms in
  let checks = Array.fold_left (fun acc (c, _) -> acc + c) 0 results in
  let during = Array.fold_left (fun acc (_, d) -> acc + d) 0 results in
  {
    tp_checks = checks;
    tp_checks_during_install = during;
    tp_installs = installs;
    tp_carries = !carries;
    tp_elapsed_s = elapsed;
    tp_install_s = !install_s;
  }

(* ------------------------------------------------------------------ *)
(* Component D: install scaling across shards                          *)

type shard_scaling = {
  ss_shards : int;
  ss_stm : Stm.variant;
  ss_installs : int;
  ss_installs_per_s : float;
  ss_wedge_s : float;
  ss_wedged_installs : int;
  ss_elapsed_s : float;
}

let scaling_updater ~stop ~shs ~prng ~cfgs ~shard ~tally () =
  let ti = Shards.tables shs shard in
  while not (Atomic.get stop) do
    let ci = Prng.int prng (Array.length cfgs) in
    let tary, bary = cfgs.(ci) in
    (match Shards.update ~tag:ci shs ~shard ~tary ~bary with
    | (_ : int) -> Atomic.incr tally
    | exception Tx.Version_space_exhausted ->
      (* the wall arrived between quiescent points; declare and rebase *)
      Tables.quiesce ti;
      ignore (Shards.refresh shs ~shard));
    (* no checker ever reads these tables — the measurement counts
       installs only — so every iteration is a provably quiescent
       point, declared directly (the epoch registry is empty and could
       never produce evidence); this keeps the version space
       reclaimable past 2^14 installs per shard *)
    Tables.quiesce ti
  done

(* Phase A: [updaters] domains hammer installs, homed round-robin over
   the shards, for [duration_s] — contended install throughput.  Phase
   B: one extra domain grabs shard 0's update lock and wedges it for
   [wedge_s] while the same updaters keep going; installs completed in
   the window measure how much of the fleet a single wedged shard takes
   down.  With one shard the window count collapses toward zero (the
   single lock is the wedged lock); with N shards the updaters homed
   off shard 0 are untouched. *)
let shard_scaling ?(updaters = 4) ?(duration_s = 0.2) ?(wedge_s = 0.2)
    ?(targets = 64) ?(slots = 16) ?(stm = Stm.Tml) ~shards ~seed () =
  let nsh = max 1 shards in
  let prng = Prng.create seed in
  Tx.seed_domain_jitter seed;
  let shs =
    Shards.create ~stm ~shards:nsh ~code_base:torture_base
      ~capacity:(4 * targets) ~bary_slots:slots ()
  in
  let pool =
    Array.init 4 (fun _ -> gen_cfg prng ~slots ~targets)
  in
  let cfgs =
    Array.map (fun c -> (tary_of ~base:torture_base c, bary_of c)) pool
  in
  let spawn_updaters ~stop ~tally =
    Array.init (max 1 updaters) (fun uid ->
        let prng = Prng.split prng in
        let shard = uid mod nsh in
        Domain.spawn (scaling_updater ~stop ~shs ~prng ~cfgs ~shard ~tally))
  in
  let t0 = Unix.gettimeofday () in
  (* phase A: contended installs/s *)
  let stop_a = Atomic.make false in
  let tally_a = Atomic.make 0 in
  let doms_a = spawn_updaters ~stop:stop_a ~tally:tally_a in
  Unix.sleepf duration_s;
  Atomic.set stop_a true;
  Array.iter Domain.join doms_a;
  let installs = Atomic.get tally_a in
  (* phase B: wedge shard 0's update lock, count what still lands.  The
     wedger holds the lock until [wedge_done] — set only after the
     window's tally is sampled — so the sample is taken with the lock
     provably still held and a single-shard run reads (near) zero
     rather than racing the release. *)
  let stop_b = Atomic.make false in
  let tally_b = Atomic.make 0 in
  let wedge_open = Atomic.make false in
  let wedge_done = Atomic.make false in
  let wedger =
    Domain.spawn (fun () ->
        Tables.with_update_lock (Shards.tables shs 0) (fun () ->
            Atomic.set wedge_open true;
            while not (Atomic.get wedge_done) do
              Domain.cpu_relax ()
            done))
  in
  while not (Atomic.get wedge_open) do
    Domain.cpu_relax ()
  done;
  let doms_b = spawn_updaters ~stop:stop_b ~tally:tally_b in
  Unix.sleepf wedge_s;
  let wedged_installs = Atomic.get tally_b in
  Atomic.set wedge_done true;
  Domain.join wedger;
  Atomic.set stop_b true;
  Array.iter Domain.join doms_b;
  {
    ss_shards = nsh;
    ss_stm = stm;
    ss_installs = installs;
    ss_installs_per_s = float_of_int installs /. duration_s;
    ss_wedge_s = wedge_s;
    ss_wedged_installs = wedged_installs;
    ss_elapsed_s = Unix.gettimeofday () -. t0;
  }
