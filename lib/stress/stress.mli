(** Multi-domain torture harness for the transaction protocol (§5.2) and
    the dynamic-linking protocol (§6–7).

    A {e scenario} — derived deterministically from a seed — runs N
    checker domains against M updater domains on one table pair, plus an
    optional loader storm that [Process.load]s (and fails, and rolls
    back) modules against a live process while more checkers run.  The
    updater storm is composed with the fault-injection plans of
    [lib/faults], so updaters are killed mid-install and recovery is
    exercised {e concurrently} with running checks.

    Every check outcome is validated by an {e epoch-history oracle}: the
    table observer logs each install transaction's begin (before its
    first slot write) and completion (after its final barrier), both
    under the update lock; a checker brackets its transaction with the
    completed/begun counters and the oracle then demands that a [Pass] be
    justified by some CFG whose install overlapped the check's read
    window, and a [Violation] by some overlapping CFG that denies the
    edge.  A pass explained by no live version would be a CFI breach of
    the mechanism itself; a violation explained by none would be a
    spurious halt.

    Scenarios are deterministic in their {e workload} (CFG pool, probe
    streams, kill schedule all derive from the seed); domain scheduling
    still varies between runs, but the oracle judges every interleaving,
    so a reported anomaly always carries the seed needed to re-run the
    same hunt. *)

type scenario = {
  seed : int64;
  checkers : int;  (** checker domains on the shared tables *)
  updaters : int;  (** updater domains *)
  updates : int;  (** update transactions, total across updaters *)
  cfgs : int;  (** size of the seeded CFG pool *)
  targets : int;  (** 4-byte-aligned Tary target slots *)
  slots : int;  (** Bary slots *)
  kill_every : int;
      (** arm a mid-install updater kill every [kill_every] updates of
          updater 0 (0 = never) *)
  reclaimer : bool;  (** run a background quiescence-reclaimer domain *)
  watchdog_deadline : int;  (** checker watchdog deadline, backoff rounds *)
  loader_loads : int;  (** loader-storm [Process.load]s (0 = storm off) *)
  loader_fault_one_in : int;
      (** arm a fault for roughly 1 in [n] loader loads (0 = never) *)
  shards : int;
      (** fault domains: the table pair is split into [shards]
          independently versioned shards ({!Idtables.Shards}); checkers
          and updaters are homed round-robin, roughly one update in
          eleven commits cross-shard, and kills are shard-scoped so a
          torn install is confined to one shard's recovery *)
  stm : Idtables.Stm.variant;
      (** commit protocol every shard transaction runs under — the same
          epoch-history oracle judges all variants *)
  hoisted : bool;
      (** torture checkers run through version-hoisted {!Idtables.Tx.site}
          caches (one per branch slot, as the threaded engine's fused
          check superinstructions do) instead of full per-check table
          reads; the epoch-history oracle judges both paths unchanged *)
}

(** A scenario with the dimensions the acceptance gate needs: 4 checkers,
    2 updaters, > 2^14 updates, periodic mid-install kills. *)
val default : seed:int64 -> scenario

(** Derive a randomized scenario (domain counts, pool shape, kill cadence,
    storm size) from the seed — the [torture] subcommand's generator. *)
val generate : seed:int64 -> scenario

val pp_scenario : Format.formatter -> scenario -> unit

(** An oracle violation (or fatal protocol error), with enough detail to
    investigate and the seed to replay the hunt. *)
type anomaly = { an_seed : int64; an_kind : string; an_detail : string }

val pp_anomaly : Format.formatter -> anomaly -> unit

type report = {
  rp_scenario : scenario;
  rp_checks : int;  (** check transactions run (torture + storm) *)
  rp_passes : int;
  rp_violations : int;
  rp_exhausted : int;  (** checks that reported [Retries_exhausted] *)
  rp_installs : int;  (** completed install transactions, all shards *)
  rp_shard_installs : int array;
      (** completed install transactions per shard (each shard's own
          history log balanced begin-for-completion) *)
  rp_kills : int;  (** updater kills injected mid-install *)
  rp_recoveries : int;  (** torn installs redone from the journal *)
  rp_retries : int;  (** check retries on version skew *)
  rp_watchdog_fires : int;
  rp_rollbacks : int;  (** loader-storm journal rollbacks *)
  rp_loads_ok : int;
  rp_loads_failed : int;  (** failed loads (faults, duplicates) — all rolled back *)
  rp_quiesces : int;  (** quiescence points declared on the torture tables *)
  rp_anomalies : anomaly list;
  rp_trace : Telemetry.Event.t list;
      (** merged trace tail attached as evidence when the run is
          anomalous and [Telemetry.enabled]; empty otherwise *)
  rp_elapsed_s : float;
}

val pp_report : Format.formatter -> report -> unit

(** [run scenario] executes the scenario and returns its report.  Resets
    {!Faults.Stats} — and, when telemetry is enabled, the process-global
    trace/metrics (the harness owns both while it runs) — and leaves no
    plan armed. *)
val run : scenario -> report

(** {2 Check throughput during delta installs}

    The §8-style interference measurement for the incremental linker:
    checker domains hammer {!Idtables.Tx.check_fast} while the main
    domain streams {!Idtables.Tx.update_delta} transactions, each
    dirtying two classes (every slot of both rewritten at the bumped
    version, as the linker's delta does) and occasionally growing an
    untouched class through the carry path. *)

type throughput = {
  tp_checks : int;  (** checks completed across all checker domains *)
  tp_checks_during_install : int;
      (** checks whose window overlapped an install *)
  tp_installs : int;  (** delta installs performed *)
  tp_carries : int;  (** installs that exercised a carry entry *)
  tp_elapsed_s : float;  (** wall time of the whole install stream *)
  tp_install_s : float;  (** cumulative wall time inside installs *)
}

(** [install_throughput ~seed ()] runs the scenario above and returns
    the raw counts; callers derive rates ([tp_checks /. tp_elapsed_s],
    [tp_checks_during_install /. tp_install_s]).  Deterministic workload
    per [seed]; scheduling still varies. *)
val install_throughput :
  ?checkers:int ->
  ?installs:int ->
  ?targets:int ->
  ?slots:int ->
  ?classes:int ->
  seed:int64 ->
  unit ->
  throughput

(** {2 Install scaling across shards}

    Two measurements against an {!Idtables.Shards} instance. Phase A:
    updater domains hammer full installs, homed round-robin over the
    shards — contended install throughput, where a single shard means a
    single update lock.  Phase B: one extra domain wedges shard 0's
    update lock for [wedge_s] while the same updaters keep going;
    installs completed inside the window measure the blast radius of
    one wedged shard (near zero with one shard; untouched homes keep
    installing with several). *)

type shard_scaling = {
  ss_shards : int;
  ss_stm : Idtables.Stm.variant;
  ss_installs : int;  (** phase-A installs completed *)
  ss_installs_per_s : float;
  ss_wedge_s : float;  (** length of the wedged window *)
  ss_wedged_installs : int;
      (** installs completed while shard 0's lock was held *)
  ss_elapsed_s : float;
}

val shard_scaling :
  ?updaters:int ->
  ?duration_s:float ->
  ?wedge_s:float ->
  ?targets:int ->
  ?slots:int ->
  ?stm:Idtables.Stm.variant ->
  shards:int ->
  seed:int64 ->
  unit ->
  shard_scaling

(** {2 The seeded CFG pool and epoch-history oracle}

    Exposed for harnesses that run their own workloads against shared
    tables but want this module's correctness judge — the fleet
    supervisor ([lib/supervisor]) validates every tenant check with it.

    A pool CFG lives in a tiny ECN space: [c_bary.(slot)] is a branch
    slot's class, [c_tary.(i)] the class of the [i]-th 4-aligned target
    ([-1] = not a target). *)

type cfg = { c_bary : int array; c_tary : int array }

val ecn_space : int
(** Number of distinct equivalence classes a pool CFG draws from. *)

val gen_cfg : Mcfi_util.Prng.t -> slots:int -> targets:int -> cfg
(** Draw one pool CFG (about 1-in-4 targets are holes). *)

val allows : cfg -> slot:int -> tidx:int -> bool
(** Whether the CFG permits branch [slot] to reach target index [tidx]. *)

val tary_of : base:int -> cfg -> (int * int) list
(** [(address, ecn)] Tary entries of a CFG, targets based at [base]. *)

val bary_of : cfg -> (int * int) list
(** [(slot, ecn)] Bary entries of a CFG. *)

(** The install log: an {!Idtables.Tables.observer} records each install
    transaction's begin (before its first slot write) and completion
    (after its final barrier), both under the update lock.  A check that
    brackets its table reads with {!history_completed} before and
    {!history_began} after can only have observed installs in the window
    [[c0-1, b1-1]] — the oracle's justification set. *)
type history

val make_history : int -> history
(** [make_history capacity] — logs overflow (and stop recording) past
    [capacity] begins; see {!history_overflowed}. *)

val observer : history -> Idtables.Tables.observer
(** The observer to pass to {!Idtables.Tables.set_observer}. *)

val history_began : history -> int
val history_completed : history -> int
val history_overflowed : history -> bool

val window_justifies :
  history ->
  cfg array ->
  slot:int ->
  tidx:int ->
  c0:int ->
  b1:int ->
  pass:bool ->
  bool
(** [window_justifies h pool ~slot ~tidx ~c0 ~b1 ~pass]: does some
    install in the check's read window justify the outcome — a [Pass]
    by a pool CFG allowing the edge, a violation by one denying it?
    [false] means the mechanism itself misbehaved (a pass no live
    version explains is a CFI breach; an unexplained violation is a
    spurious halt). *)
