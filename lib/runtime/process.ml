module Instr = Vmisa.Instr
module Asm = Vmisa.Asm
module Abi = Vmisa.Abi
module Objfile = Mcfi_compiler.Objfile
module Tables = Idtables.Tables
module Tx = Idtables.Tx

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---- install-span telemetry ----

   Each phase of the dynamic-linking protocol is bracketed by
   Span_begin/Span_end trace events (balanced even when a phase dies on
   an injected fault — the end is emitted on the unwind) and feeds a
   per-phase duration histogram, so a slow install can be attributed to
   extraction, merge, journalling, table writes or the oracle. *)
let m_load_extract = Telemetry.Metrics.histogram "mcfi_load_extract_ns"
let m_load_merge = Telemetry.Metrics.histogram "mcfi_load_merge_ns"
let m_load_journal = Telemetry.Metrics.histogram "mcfi_load_journal_ns"
let m_load_table_write = Telemetry.Metrics.histogram "mcfi_load_table_write_ns"
let m_load_oracle = Telemetry.Metrics.histogram "mcfi_load_oracle_ns"
let m_load_total = Telemetry.Metrics.histogram "mcfi_load_total_ns"

let span phase hist ~load f =
  if not (Telemetry.enabled ()) then f ()
  else begin
    Telemetry.emit Telemetry.Event.Span_begin ~a:phase ~b:load ~c:0;
    let t0 = Telemetry.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let ns = Telemetry.now_ns () - t0 in
        Telemetry.Metrics.observe hist ns;
        Telemetry.emit Telemetry.Event.Span_end ~a:phase ~b:load ~c:ns)
      f
  end

type loaded = {
  lm_obj : Objfile.t;
  lm_prog : Asm.program;
  lm_slot_base : int;
  (* the module's CFG contribution, extracted once at load time — both
     the incremental merge and full regeneration (the differential
     oracle, the analyzers) consume this memo instead of re-walking the
     object file *)
  lm_input : Cfg.Cfggen.module_input;
}

type t = {
  instrumented : bool;
  sandbox : Abi.sandbox;
  verify : bool;
  incremental : bool;
  self_check : bool;
  registry : string -> Objfile.t option;
  mach : Machine.t;
  tables : Tables.t option;
  mutable loaded : loaded list; (* reverse load order *)
  code_symbols : (string, int) Hashtbl.t;
  data_symbols : (string, int) Hashtbl.t;
  mutable next_slot : int;
  mutable pending_got : (string * int) list; (* symbol, got data address *)
  mutable cfg_state : Cfg.Cfggen.state;
  mutable last_stats : Cfg.Cfggen.stats option;
  mutable cfg_ms : float;
  mutable n_updates : int;
}

let create ?(instrumented = true) ?(sandbox = Abi.Mask) ?verify
    ?(incremental = true) ?(self_check = false) ?(registry = fun _ -> None)
    ?(code_capacity = 1 lsl 22) ?(data_words = Abi.sandbox_words)
    ?(bary_slots = 8192) ?dispatch ?(seed = 1L) () =
  let tables =
    if instrumented then
      (* coverage starts empty and grows as modules load *)
      Some
        (Tables.create ~covered:0 ~code_base:Abi.code_base
           ~capacity:code_capacity ~bary_slots ())
    else None
  in
  let mach =
    Machine.create ?tables ?dispatch ~seed ~code_base:Abi.code_base
      ~code_capacity ~data_words ()
  in
  Machine.set_brk mach 1 (* word 0 is the unmapped NULL page *);
  let t =
    {
      instrumented;
      sandbox;
      verify = Option.value verify ~default:instrumented;
      incremental;
      self_check;
      registry;
      mach;
      tables;
      loaded = [];
      code_symbols = Hashtbl.create 128;
      data_symbols = Hashtbl.create 128;
      next_slot = 0;
      pending_got = [];
      cfg_state = Cfg.Cfggen.empty_state ();
      last_stats = None;
      cfg_ms = 0.0;
      n_updates = 0;
    }
  in
  t

let machine t = t.mach
let tables t = t.tables
let lookup_code t s = Hashtbl.find_opt t.code_symbols s
let lookup_data t s = Hashtbl.find_opt t.data_symbols s
let cfg_stats t = t.last_stats
let cfg_gen_time_ms t = t.cfg_ms
let updates t = t.n_updates

let bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let code_symbol_bindings t = bindings t.code_symbols
let data_symbol_bindings t = bindings t.data_symbols
let loaded_names t = List.rev_map (fun lm -> lm.lm_obj.Objfile.o_name) t.loaded

(* ---- the load journal (failure-atomic dynamic linking) ----

   Everything [load] mutates, captured before the protocol touches the
   process.  On any failure — verifier rejection, symbol clash, capacity
   overflow, injected fault, even one that strikes between the update
   transaction's two phases — [rollback] reinstates this record, so a
   failed load is observationally a no-op. *)
type load_journal = {
  pj_code_end : int;
  pj_brk : int;
  pj_next_slot : int;
  pj_loaded : loaded list;
  pj_code_symbols : (string, int) Hashtbl.t; (* full copies *)
  pj_data_symbols : (string, int) Hashtbl.t;
  pj_pending_got : (string * int) list;
  pj_got_words : (int * int) list; (* unresolved GOT slot -> word before *)
  (* Table rollback state.  The full-regeneration path snapshots both
     complete tables ([pj_tables], the historical behaviour).  The
     incremental path snapshots only what its delta install touches:
     [pj_base_slots] captures the scalar state (version, code size, ABA
     counter, journal) with no slots at load start, and the install's
     [pre_install] hook — under the update lock, after recovery and
     validation — fills [pj_touched] with the raw words of exactly the
     slots about to be written. *)
  pj_tables : Idtables.Tables.snapshot option;
  pj_base_slots : Idtables.Tables.slot_snapshot option;
  pj_touched : Idtables.Tables.slot_snapshot option ref;
  (* merge state is persistent (never mutated in place), so rollback is
     reinstating the old reference *)
  pj_cfg_state : Cfg.Cfggen.state;
  pj_n_updates : int;
  pj_last_stats : Cfg.Cfggen.stats option;
  pj_cfg_ms : float;
}

let capture_journal t =
  {
    pj_code_end = Machine.code_end t.mach;
    pj_brk = Machine.brk t.mach;
    pj_next_slot = t.next_slot;
    pj_loaded = t.loaded;
    pj_code_symbols = Hashtbl.copy t.code_symbols;
    pj_data_symbols = Hashtbl.copy t.data_symbols;
    pj_pending_got = t.pending_got;
    pj_got_words =
      List.map
        (fun (_, addr) -> (addr, Machine.read_data t.mach addr))
        t.pending_got;
    pj_tables =
      (if t.incremental then None
       else Option.map Idtables.Tables.snapshot t.tables);
    pj_base_slots =
      (if t.incremental then
         Option.map
           (fun tables -> Idtables.Tables.snapshot_slots tables ~tary:[] ~bary:[])
           t.tables
       else None);
    pj_touched = ref None;
    pj_cfg_state = t.cfg_state;
    pj_n_updates = t.n_updates;
    pj_last_stats = t.last_stats;
    pj_cfg_ms = t.cfg_ms;
  }

let restore_table dst src =
  Hashtbl.reset dst;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src

let rollback t j =
  Telemetry.emit Telemetry.Event.Update_rollback
    ~a:(List.length t.loaded - List.length j.pj_loaded)
    ~b:0 ~c:0;
  (* data words the failed load allocated revert to zero *)
  for a = j.pj_brk to Machine.brk t.mach - 1 do
    Machine.write_data t.mach a 0
  done;
  Machine.set_brk t.mach j.pj_brk;
  (* GOT slots the interrupted update transaction may have bound *)
  List.iter (fun (addr, v) -> Machine.write_data t.mach addr v) j.pj_got_words;
  Machine.truncate_code t.mach ~code_end:j.pj_code_end;
  (match (t.tables, j.pj_tables) with
  | Some tables, Some s -> Idtables.Tables.restore tables s
  | _ -> ());
  (match (t.tables, j.pj_base_slots) with
  | Some tables, Some base ->
    (* The touched-slot capture reflects the table just before the delta
       install's first write (post-recovery of any torn predecessor,
       which rollback must not undo); the code size must come from the
       load-start capture — the extend happened in between. *)
    let ss =
      match !(j.pj_touched) with
      | Some touched ->
        { touched with Idtables.Tables.ss_code_size = base.ss_code_size }
      | None -> base
    in
    Idtables.Tables.restore_slots tables ss
  | _ -> ());
  t.next_slot <- j.pj_next_slot;
  t.loaded <- j.pj_loaded;
  restore_table t.code_symbols j.pj_code_symbols;
  restore_table t.data_symbols j.pj_data_symbols;
  t.pending_got <- j.pj_pending_got;
  t.cfg_state <- j.pj_cfg_state;
  t.n_updates <- j.pj_n_updates;
  t.last_stats <- j.pj_last_stats;
  t.cfg_ms <- j.pj_cfg_ms;
  Faults.Stats.count_rollback ()

(* Extract one module's CFG contribution — the per-module memo cached in
   [loaded] at load time, consumed by both the incremental merge and the
   full-regeneration view below.  Needs the module's assembled labels and
   the (just published) global code symbols for function addresses. *)
let extract_module_input t (obj : Objfile.t) (prog : Asm.program) ~slot_base :
    Cfg.Cfggen.module_input =
  let label_addr l =
    match Hashtbl.find_opt prog.Asm.labels l with
    | Some a -> a
    | None -> fail "internal: missing label %s in module %s" l obj.Objfile.o_name
  in
  let functions =
    List.filter_map
      (fun (fi : Objfile.fn_info) ->
        if not fi.fi_defined then None
        else
          match Hashtbl.find_opt t.code_symbols fi.fi_name with
          | Some addr ->
            Some
              {
                Cfg.Cfggen.fname = fi.fi_name;
                fty = fi.fi_ty;
                faddr = addr;
                faddress_taken = fi.fi_address_taken;
              }
          | None -> None)
      obj.Objfile.o_functions
  in
  let extern_taken =
    List.filter_map
      (fun (fi : Objfile.fn_info) ->
        if fi.fi_address_taken && not fi.fi_defined then Some fi.fi_name
        else None)
      obj.Objfile.o_functions
  in
  let sites =
    Array.of_list
      (List.map
         (function
           | Objfile.Site_return { fn } -> Cfg.Cfggen.Sreturn { fn }
           | Objfile.Site_icall { fn; ty; ret_label } ->
             Cfg.Cfggen.Sicall { fn; ty; ret_addr = label_addr ret_label }
           | Objfile.Site_itail { fn; ty } -> Cfg.Cfggen.Sitail { fn; ty }
           | Objfile.Site_jumptable { fn; targets } ->
             Cfg.Cfggen.Sjumptable
               { fn; target_addrs = List.map label_addr targets }
           | Objfile.Site_longjmp { fn } -> Cfg.Cfggen.Slongjmp { fn }
           | Objfile.Site_plt { symbol } -> Cfg.Cfggen.Splt { symbol })
         obj.Objfile.o_sites)
  in
  {
    Cfg.Cfggen.m_env = obj.Objfile.o_tyenv;
    m_functions = functions;
    m_extern_taken = extern_taken;
    m_sites = sites;
    m_slot_base = slot_base;
    m_direct_calls =
      List.map
        (fun (dc : Objfile.direct_call) ->
          (dc.dc_caller, dc.dc_callee, label_addr dc.dc_ret))
        obj.Objfile.o_direct_calls;
    m_tail_calls = obj.Objfile.o_tail_calls;
    m_setjmp_addrs = List.map label_addr obj.Objfile.o_setjmp_sites;
  }

module SSet = Set.Make (String)

(* Build the whole-program CFG-generator view from the per-module memos.
   Address-taken is a union across modules (any taker flags the defining
   module's function), exactly what [Cfggen.merge] computes internally. *)
let cfg_input t : Cfg.Cfggen.input =
  let inputs = List.rev_map (fun lm -> lm.lm_input) t.loaded in
  let taken =
    List.fold_left
      (fun acc (m : Cfg.Cfggen.module_input) ->
        let acc =
          List.fold_left
            (fun acc (f : Cfg.Cfggen.fn) ->
              if f.faddress_taken then SSet.add f.fname acc else acc)
            acc m.m_functions
        in
        List.fold_left (fun acc n -> SSet.add n acc) acc m.m_extern_taken)
      SSet.empty inputs
  in
  {
    Cfg.Cfggen.env =
      Minic.Types.merge
        (List.map (fun (m : Cfg.Cfggen.module_input) -> m.m_env) inputs);
    functions =
      List.concat_map
        (fun (m : Cfg.Cfggen.module_input) ->
          List.map
            (fun (f : Cfg.Cfggen.fn) ->
              { f with Cfg.Cfggen.faddress_taken = SSet.mem f.fname taken })
            m.m_functions)
        inputs;
    sites =
      Array.concat
        (List.map (fun (m : Cfg.Cfggen.module_input) -> m.m_sites) inputs);
    direct_calls =
      List.concat_map
        (fun (m : Cfg.Cfggen.module_input) -> m.m_direct_calls)
        inputs;
    tail_calls =
      List.concat_map
        (fun (m : Cfg.Cfggen.module_input) -> m.m_tail_calls)
        inputs;
    setjmp_addrs =
      List.concat_map
        (fun (m : Cfg.Cfggen.module_input) -> m.m_setjmp_addrs)
        inputs;
  }

(* The differential oracle: a from-scratch [Cfggen.generate] over the
   union view must agree bit-for-bit with (a) the incrementally
   maintained assignment and (b) the ECNs actually installed in the live
   tables — and every equivalence class must be version-uniform (the
   carry rule's invariant: a class is readable iff all its slots agree
   on version). *)
let oracle_check t =
  match t.tables with
  | None -> Ok ()
  | Some tables ->
    let out = Cfg.Cfggen.generate (cfg_input t) in
    let inc_tary, inc_bary = Cfg.Cfggen.state_tables t.cfg_state in
    let live_tary =
      List.map
        (fun (a, id) -> (a, Idtables.Id.ecn id))
        (Tables.tary_entries tables)
    in
    let live_bary =
      List.map
        (fun (k, id) -> (k, Idtables.Id.ecn id))
        (Tables.bary_entries tables)
    in
    let versions = Hashtbl.create 64 in
    let uniform = ref true in
    List.iter
      (fun (_, id) ->
        let e = Idtables.Id.ecn id and v = Idtables.Id.version id in
        match Hashtbl.find_opt versions e with
        | Some v' when v' <> v -> uniform := false
        | Some _ -> ()
        | None -> Hashtbl.add versions e v)
      (Tables.tary_entries tables @ Tables.bary_entries tables);
    if t.incremental && inc_tary <> out.Cfg.Cfggen.tary then
      Error "incremental Tary assignment diverges from full regeneration"
    else if t.incremental && inc_bary <> out.Cfg.Cfggen.bary then
      Error "incremental Bary assignment diverges from full regeneration"
    else if
      t.incremental
      && Some (Cfg.Cfggen.state_stats t.cfg_state) <> t.last_stats
    then Error "incremental stats diverge"
    else if live_tary <> out.Cfg.Cfggen.tary then
      Error "live Tary table diverges from full regeneration"
    else if live_bary <> out.Cfg.Cfggen.bary then
      Error "live Bary table diverges from full regeneration"
    else if not !uniform then
      Error "an equivalence class is not version-uniform"
    else Ok ()

(* Install the new CFG with one update transaction, binding newly
   resolvable GOT entries between the two phases (paper §5.2).

   Full mode regenerates from scratch and rewrites both tables
   ([Tx.update]); incremental mode merges only the new module into the
   persistent state and installs the returned delta ([Tx.update_delta]),
   journalling the touched slots into the load journal's partial
   snapshot from the transaction's [pre_install] hook. *)
let update_cfg t j new_module =
  match t.tables with
  | None -> ()
  | Some tables ->
    let got_update () =
      Faults.hit Faults.Plan.During_got_update;
      t.pending_got <-
        List.filter
          (fun (symbol, got_addr) ->
            match Hashtbl.find_opt t.code_symbols symbol with
            | Some addr ->
              Machine.write_data t.mach got_addr addr;
              false
            | None -> true)
          t.pending_got
    in
    let load = t.n_updates in
    (if t.incremental then begin
       let t0 = Unix.gettimeofday () in
       let state, delta =
         span Telemetry.Event.phase_merge m_load_merge ~load (fun () ->
             Cfg.Cfggen.merge t.cfg_state new_module)
       in
       t.cfg_ms <- t.cfg_ms +. ((Unix.gettimeofday () -. t0) *. 1000.0);
       t.last_stats <- Some delta.Cfg.Cfggen.d_stats;
       let source = function
         | Cfg.Cfggen.Donor_tary a -> Tx.From_tary a
         | Cfg.Cfggen.Donor_bary k -> Tx.From_bary k
       in
       let tary_carry =
         List.map (fun (a, e, d) -> (a, e, source d)) delta.Cfg.Cfggen.d_tary_grow
       in
       let bary_carry =
         List.map (fun (k, e, d) -> (k, e, source d)) delta.Cfg.Cfggen.d_bary_grow
       in
       let pre_install () =
         span Telemetry.Event.phase_journal m_load_journal ~load (fun () ->
             j.pj_touched :=
               Some
                 (Tables.snapshot_slots tables
                    ~tary:
                      (List.map fst delta.Cfg.Cfggen.d_tary
                      @ List.map
                          (fun (a, _, _) -> a)
                          delta.Cfg.Cfggen.d_tary_grow)
                    ~bary:
                      (List.map fst delta.Cfg.Cfggen.d_bary
                      @ List.map
                          (fun (k, _, _) -> k)
                          delta.Cfg.Cfggen.d_bary_grow)))
       in
       span Telemetry.Event.phase_table_write m_load_table_write ~load
         (fun () ->
           ignore
             (Tx.update_delta ~got_update ~pre_install tables
                ~tary:delta.Cfg.Cfggen.d_tary ~bary:delta.Cfg.Cfggen.d_bary
                ~tary_carry ~bary_carry));
       t.cfg_state <- state;
       (* Hand the flight recorder human names for the classes the
          tables now hold, so a bundle says "ecn 7 (qsort_cmp+2)"
          instead of just the number.  Refreshed per merge; the
          regenerate path keeps the last namer and unknown classes fall
          back to "ecn-<n>". *)
       let names = Cfg.Cfggen.state_class_names state in
       let tbl = Hashtbl.create (1 + List.length names) in
       List.iter (fun (e, n) -> Hashtbl.replace tbl e n) names;
       Obs.Flightrec.set_ecn_namer (fun e -> Hashtbl.find_opt tbl e)
     end
     else begin
       let t0 = Unix.gettimeofday () in
       let out =
         span Telemetry.Event.phase_merge m_load_merge ~load (fun () ->
             Cfg.Cfggen.generate (cfg_input t))
       in
       t.cfg_ms <- t.cfg_ms +. ((Unix.gettimeofday () -. t0) *. 1000.0);
       t.last_stats <- Some out.Cfg.Cfggen.stats;
       span Telemetry.Event.phase_table_write m_load_table_write ~load
         (fun () ->
           ignore
             (Tx.update ~got_update tables ~tary:out.Cfg.Cfggen.tary
                ~bary:out.Cfg.Cfggen.bary))
     end);
    t.n_updates <- t.n_updates + 1;
    if t.self_check then
      match
        span Telemetry.Event.phase_oracle m_load_oracle ~load (fun () ->
            oracle_check t)
      with
      | Ok () -> ()
      | Error msg -> fail "differential oracle: %s" msg

(* The unprotected body of the dynamic-linking protocol.  Callers go
   through [load], which journals the process first; [j] is that journal
   (the delta install stashes its touched-slot snapshot there). *)
let load_protocol t j (obj : Objfile.t) =
  if obj.o_instrumented <> t.instrumented then
    fail "module %s is %sinstrumented but the process is %s" obj.o_name
      (if obj.o_instrumented then "" else "not ")
      (if t.instrumented then "MCFI" else "plain");
  (* 1. slot re-basing *)
  let slot_base = t.next_slot in
  let nsites = List.length obj.o_sites in
  let items =
    if slot_base = 0 then obj.o_items
    else
      List.map
        (function
          | Asm.I (Instr.Bary_load (r, k)) ->
            Asm.I (Instr.Bary_load (r, k + slot_base))
          | item -> item)
        obj.o_items
  in
  let obj = { obj with Objfile.o_items = items } in
  (* 2. data layout: globals (and GOT slots) go to fresh data words *)
  let new_data =
    List.map
      (fun (d : Objfile.data_def) ->
        if Hashtbl.mem t.data_symbols d.d_name then
          fail "duplicate global %s" d.d_name;
        let addr = Machine.sbrk t.mach (List.length d.d_words) in
        (d, addr))
      obj.o_data
  in
  List.iter
    (fun ((d : Objfile.data_def), addr) ->
      Hashtbl.replace t.data_symbols d.d_name addr)
    new_data;
  (* 3. code layout at the next free (16-aligned) code address *)
  let base =
    let e = Machine.code_end t.mach in
    (e + 15) land lnot 15
  in
  let resolve_code s = Hashtbl.find_opt t.code_symbols s in
  let resolve_data s = Hashtbl.find_opt t.data_symbols s in
  let prog =
    match Asm.assemble ~base ~resolve_code ~resolve_data obj.o_items with
    | Ok prog -> prog
    | Error e -> fail "module %s: %s" obj.o_name (Fmt.str "%a" Asm.pp_error e)
  in
  (* 4. verification before the code becomes executable *)
  if t.verify && t.instrumented then begin
    Faults.hit Faults.Plan.During_verification;
    match
      Verifier.verify ~sandbox:t.sandbox ~obj ~prog ~slot_base
        ~slot_count:nsites ()
    with
    | Ok () -> ()
    | Error issues ->
      fail "module %s failed verification: %s" obj.o_name
        (String.concat "; "
           (List.map (fun i -> Fmt.str "%a" Verifier.pp_issue i) issues))
  end;
  (* 5. publish symbols *)
  Hashtbl.iter
    (fun label addr ->
      if Hashtbl.mem t.code_symbols label then
        fail "duplicate code symbol %s" label;
      Hashtbl.replace t.code_symbols label addr)
    prog.Asm.labels;
  (* 6. initialize data (relocations resolve against the updated tables) *)
  List.iter
    (fun ((d : Objfile.data_def), addr) ->
      List.iteri
        (fun k word ->
          let v =
            match word with
            | Objfile.Dint v -> v
            | Objfile.Dsym_code s -> begin
              match Hashtbl.find_opt t.code_symbols s with
              | Some a -> a
              | None -> fail "module %s: unresolved code symbol %s" obj.o_name s
            end
            | Objfile.Dsym_data s -> begin
              match Hashtbl.find_opt t.data_symbols s with
              | Some a -> a
              | None -> fail "module %s: unresolved data symbol %s" obj.o_name s
            end
          in
          Machine.write_data t.mach (addr + k) v)
        d.d_words)
    new_data;
  (* 7. map the code: pad up to the module base, then the image *)
  let pad = base - Machine.code_end t.mach in
  if pad > 0 then ignore (Machine.append_code t.mach (String.make pad '\x01'));
  ignore (Machine.append_code t.mach prog.Asm.image);
  (match t.tables with
  | Some tables ->
    let covered = Tables.code_size tables in
    let need = Machine.code_end t.mach - Abi.code_base in
    if need > covered then Tables.extend tables (need - covered)
  | None -> ());
  (* 8. register GOT slots awaiting resolution *)
  List.iter
    (function
      | Objfile.Site_plt { symbol } -> begin
        match
          Hashtbl.find_opt t.data_symbols
            (Instrument.Rewriter.got_symbol symbol)
        with
        | Some got_addr -> t.pending_got <- (symbol, got_addr) :: t.pending_got
        | None -> fail "PLT entry for %s without a GOT slot" symbol
      end
      | _ -> ())
    obj.o_sites;
  t.next_slot <- slot_base + nsites;
  let lm_input =
    span Telemetry.Event.phase_extract m_load_extract ~load:t.n_updates
      (fun () -> extract_module_input t obj prog ~slot_base)
  in
  t.loaded <-
    { lm_obj = obj; lm_prog = prog; lm_slot_base = slot_base; lm_input }
    :: t.loaded;
  (* 9. generate and install the CFG (one update transaction): merge the
     new module into the persistent state, or regenerate from scratch *)
  update_cfg t j lm_input

let load t obj =
  let j = capture_journal t in
  try
    span Telemetry.Event.phase_load m_load_total ~load:t.n_updates (fun () ->
        load_protocol t j obj)
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    rollback t j;
    Printexc.raise_with_backtrace e bt

let start t =
  match Hashtbl.find_opt t.code_symbols "_start" with
  | Some entry ->
    Machine.set_pc t.mach entry;
    (* wire the dynamic linker *)
    Machine.set_dl_handler t.mach (fun _m num name ->
        if num = Abi.sys_dlopen then begin
          match
            Faults.hit Faults.Plan.Registry_lookup;
            t.registry name
          with
          | Some obj -> (
            (* [load] has already rolled the process back when any of
               these surface: dlopen reports failure, nothing changed *)
            match load t obj with
            | () -> 0
            | exception
                ( Error _ | Faults.Injected _ | Invalid_argument _
                | Idtables.Tx.Version_space_exhausted
                | Cfg.Cfggen.Too_many_classes _ ) ->
              -1)
          | None -> -1
          | exception Faults.Injected _ -> -1
        end
        else
          match Hashtbl.find_opt t.code_symbols name with
          | Some addr -> addr
          | None -> 0)
  | None -> fail "no _start symbol: link Linker.start_module"

let run ?fuel t =
  start t;
  Machine.run ?fuel t.mach

(* Crash-only teardown: release the epoch registration first (a corpse
   must never gate quiescence), then complete any install transaction
   this process died inside of — the journal redo takes the update lock,
   so a live peer updater is waited out, and a dead holder's lock was
   already released by [with_update_lock]'s unwind. *)
let teardown t =
  Machine.release t.mach;
  match t.tables with
  | None -> ()
  | Some tables -> ignore (Tx.recover tables)
