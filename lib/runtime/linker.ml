module Instr = Vmisa.Instr
module Asm = Vmisa.Asm
module Abi = Vmisa.Abi
module Objfile = Mcfi_compiler.Objfile

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Shift every embedded Bary slot by [delta] (slots are assigned by site
   order at instrumentation time and become process-global at load). *)
let rebase_slots delta items =
  if delta = 0 then items
  else
    List.map
      (function
        | Asm.I (Instr.Bary_load (r, k)) -> Asm.I (Instr.Bary_load (r, k + delta))
        | item -> item)
      items

let merge_functions objs =
  (* A function may be declared in several modules and defined in one; it
     is address-taken if any module takes its address. *)
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (obj : Objfile.t) ->
      List.iter
        (fun (fi : Objfile.fn_info) ->
          match Hashtbl.find_opt tbl fi.fi_name with
          | None ->
            Hashtbl.add tbl fi.fi_name fi;
            order := fi.fi_name :: !order
          | Some prev ->
            if prev.Objfile.fi_defined && fi.fi_defined then
              fail "duplicate definition of function %s" fi.fi_name;
            let merged =
              {
                fi with
                Objfile.fi_defined = prev.fi_defined || fi.fi_defined;
                fi_address_taken =
                  prev.fi_address_taken || fi.fi_address_taken;
                fi_ty = (if prev.fi_defined then prev.fi_ty else fi.fi_ty);
              }
            in
            Hashtbl.replace tbl fi.fi_name merged)
        obj.o_functions)
    objs;
  List.rev_map (Hashtbl.find tbl) !order

let link ~name objs =
  Faults.hit Faults.Plan.Link_merge;
  (match objs with [] -> fail "nothing to link" | _ -> ());
  let instrumented =
    match objs with
    | o :: rest ->
      List.iter
        (fun (o' : Objfile.t) ->
          if o'.o_instrumented <> o.Objfile.o_instrumented then
            fail "mixing instrumented and plain modules")
        rest;
      o.Objfile.o_instrumented
    | [] -> assert false
  in
  (* duplicate data symbols *)
  let seen_data = Hashtbl.create 64 in
  List.iter
    (fun (obj : Objfile.t) ->
      List.iter
        (fun (d : Objfile.data_def) ->
          if Hashtbl.mem seen_data d.d_name then
            fail "duplicate definition of global %s" d.d_name;
          Hashtbl.add seen_data d.d_name ())
        obj.o_data)
    objs;
  let items, _ =
    List.fold_left
      (fun (acc, slot) (obj : Objfile.t) ->
        ( acc @ rebase_slots slot obj.o_items,
          slot + List.length obj.o_sites ))
      ([], 0) objs
  in
  {
    Objfile.o_name = name;
    o_items = items;
    o_data = List.concat_map (fun (o : Objfile.t) -> o.o_data) objs;
    o_functions = merge_functions objs;
    o_sites = List.concat_map (fun (o : Objfile.t) -> o.o_sites) objs;
    o_direct_calls =
      List.concat_map (fun (o : Objfile.t) -> o.o_direct_calls) objs;
    o_tail_calls = List.concat_map (fun (o : Objfile.t) -> o.o_tail_calls) objs;
    o_setjmp_sites =
      List.concat_map (fun (o : Objfile.t) -> o.o_setjmp_sites) objs;
    o_tyenv =
      Minic.Types.merge (List.map (fun (o : Objfile.t) -> o.o_tyenv) objs);
    o_instrumented = instrumented;
  }

let add_plt (obj : Objfile.t) symbols =
  if symbols = [] then obj
  else begin
    Faults.hit Faults.Plan.Link_merge;
    if not obj.o_instrumented then
      fail "PLT entries require an instrumented module";
    let base_slot = List.length obj.o_sites in
    (* redirect references to the deferred symbols *)
    let module SS = Set.Make (String) in
    let deferred = SS.of_list symbols in
    let redirected =
      List.map
        (function
          | Asm.Call_sym s when SS.mem s deferred ->
            Asm.Call_sym (Instrument.Rewriter.plt_label s)
          | Asm.Jmp_sym s when SS.mem s deferred ->
            Asm.Jmp_sym (Instrument.Rewriter.plt_label s)
          | Asm.Mov_sym (_, s) when SS.mem s deferred ->
            fail
              "taking the address of dynamically deferred function %s is not \
               supported"
              s
          | item -> item)
        obj.o_items
    in
    let plt_items =
      List.concat
        (List.mapi
           (fun k s -> Instrument.Rewriter.plt_entry ~symbol:s ~slot:(base_slot + k))
           symbols)
    in
    let got_data =
      List.map
        (fun s ->
          {
            Objfile.d_name = Instrument.Rewriter.got_symbol s;
            d_words = [ Objfile.Dint 0 ];
          })
        symbols
    in
    {
      obj with
      o_items = redirected @ plt_items;
      o_data = obj.o_data @ got_data;
      o_sites =
        obj.o_sites
        @ List.map (fun s -> Objfile.Site_plt { symbol = s }) symbols;
    }
  end

let start_module () =
  let ret = "mcfi$start$ret" in
  {
    Objfile.o_name = "_start";
    o_items =
      [
        Asm.Label "_start";
        Asm.Call_sym "main";
        Asm.Label ret;
        Asm.I (Instr.Mov_rr (1, 0));
        Asm.I (Instr.Mov_ri (0, Abi.sys_exit));
        Asm.I Instr.Syscall;
        Asm.I Instr.Halt;
      ];
    o_data = [];
    o_functions =
      [
        {
          Objfile.fi_name = "_start";
          fi_ty = { Minic.Ast.params = []; varargs = false; ret = Minic.Ast.Tvoid };
          fi_address_taken = false;
          fi_defined = true;
        };
      ];
    o_sites = [];
    o_direct_calls =
      [ { Objfile.dc_caller = "_start"; dc_callee = "main"; dc_ret = ret } ];
    o_tail_calls = [];
    o_setjmp_sites = [];
    o_tyenv = Minic.Types.empty;
    o_instrumented = false;
  }
