module Instr = Vmisa.Instr
module Encode = Vmisa.Encode
module Abi = Vmisa.Abi
module Id = Idtables.Id

type exit_reason =
  | Exited of int
  | Cfi_halt
  | Fault of string
  | Out_of_fuel

let pp_exit_reason ppf = function
  | Exited n -> Fmt.pf ppf "exited(%d)" n
  | Cfi_halt -> Fmt.string ppf "cfi-halt"
  | Fault msg -> Fmt.pf ppf "fault(%s)" msg
  | Out_of_fuel -> Fmt.string ppf "out-of-fuel"

type dispatch = Byte | Threaded

let dispatch_name = function Byte -> "byte" | Threaded -> "threaded"

let dispatch_of_string = function
  | "byte" -> Ok Byte
  | "threaded" -> Ok Threaded
  | s -> Error (Printf.sprintf "unknown dispatch engine %S (byte|threaded)" s)

(* A version-hoisted CFI check site: one per fused check superinstruction
   (see the threaded engine below).  The static fields describe the
   decoded sequence — Bary slot, the three registers the rewriter chose,
   the check-block address the [Jcc] mismatch edge targets, alignment-nop
   padding, and the sequence's total byte size.  The mutable fields cache
   the (branch ID, target ID) pair together with the install sequence
   word it was read under; an unchanged even word proves the tables are
   bit-identical to the fill instant, so the cached pair replays without
   touching either table (the [Tx.check_hoisted] argument, inlined here
   because the handler must also replay the register writes and flags
   the interpreted sequence would have produced). *)
type hsite = {
  hs_slot : int;
  hs_rb : int;  (** branch-ID register ([Bary_load]'s destination) *)
  hs_rt : int;  (** target-ID register ([Tary_load]'s destination) *)
  hs_rtgt : int;  (** branch-target register ([Tary_load]'s source) *)
  hs_check : int;  (** check-block address (the [Jcc Ne] edge) *)
  hs_pad : int;  (** alignment [Nop]s between [Jcc] and the branch *)
  hs_size : int;  (** total bytes of the fused sequence *)
  mutable hs_seq : int;
  mutable hs_target : int;
  mutable hs_bid : int;
  mutable hs_tid : int;
}

type t = {
  code_base : int;
  image : Bytes.t; (* reserved capacity; [code_len] bytes are loaded *)
  mutable code_len : int;
  (* per-byte-offset decode memo, kept flat so fetch never allocates or
     matches an option: [decode_size.(off)] is the instruction size
     (0 = not decoded yet, -1 = bytes do not decode), and
     [decode_instr.(off)] is meaningful only when the size is positive *)
  decode_size : int array;
  decode_instr : Instr.t array;
  data : int array;
  regs : int array;
  mutable pc : int;
  mutable zf : bool;
  mutable lt : bool;
  tables : Idtables.Tables.t option;
  (* this machine's registration in the tables' epoch registry: bumped at
     syscalls, where the interpreted program is provably outside any
     check sequence; [release] clears it so a dead machine never gates
     quiescence *)
  mutable reader : Idtables.Tables.reader option;
  mutable nsteps : int;
  out : Buffer.t;
  mutable brk : int;
  prng : Mcfi_util.Prng.t;
  mutable dl_handler : (t -> int -> string -> int) option;
  mutable attacker : (t -> unit) option;
  (* execution profile, filled only while telemetry is enabled: retired
     instructions per class, and executions per Bary slot (i.e. per
     indirect-branch enforcement site).  Plain state — a machine is
     single-domain. *)
  profile : int array;
  branch_counts : (int, int) Hashtbl.t;
  mutable last_class : int; (* previous retired class, for the pair profile *)
  (* committed-transfer hook: called with (branch pc, target) for every
     executed Call_r/Jmp_r/Ret, by both engines — the differential
     dispatch oracle records traces through it *)
  mutable on_transfer : (int -> int -> unit) option;
  (* ---- threaded-code engine state ----
     A flat pre-decoded stream parallel to the byte image: [th_op.(off)]
     is a dense handler index (0 = not pre-decoded, 1 = the bytes do not
     decode) and [th_a/th_b/th_p/th_q] carry the operand words that
     handler reads.  Arrays are grown lazily to cover [code_len] (never
     the reserved capacity).  Entries are filled from the shared decode
     memo on first execution, so the any-byte-offset fetch semantics —
     including mid-instruction decodes — are preserved bit for bit. *)
  mutable dispatch : dispatch;
  mutable th_op : int array;
  mutable th_a : int array;
  mutable th_b : int array;
  mutable th_p : int array;
  mutable th_q : int array;
  mutable th_sites : hsite array;
  mutable th_nsites : int;
  (* threaded-dispatch internals, surfaced via [dispatch_stats]: fused
     superinstruction executions per kind (index = handler - 25),
     hoisted-check cache traffic, and pre-decode / invalidation churn.
     Plain state — a machine is single-domain. *)
  th_fused : int array;
  mutable th_hoist_hits : int;
  mutable th_hoist_misses : int;
  mutable th_hoist_refills : int;
  mutable th_predecodes : int;
  mutable th_invalidations : int;
}

(* instruction classes for the execution profile *)
let n_classes = 12

let class_names =
  [|
    "mov"; "alu"; "mem"; "stack"; "cmp"; "jump"; "call-direct";
    "call-indirect"; "ret"; "syscall"; "table"; "other";
  |]

let instr_class = function
  | Instr.Mov_ri _ | Instr.Mov_rr _ -> 0
  | Instr.Binop _ | Instr.Binop_i _ | Instr.Test_ri _ -> 1
  | Instr.Load _ | Instr.Store _ -> 2
  | Instr.Push _ | Instr.Pop _ -> 3
  | Instr.Cmp_rr _ | Instr.Cmp_ri _ | Instr.Cmp_lo _ -> 4
  | Instr.Jmp _ | Instr.Jcc _ -> 5
  | Instr.Call _ -> 6
  | Instr.Call_r _ | Instr.Jmp_r _ -> 7
  | Instr.Ret -> 8
  | Instr.Syscall -> 9
  | Instr.Tary_load _ | Instr.Bary_load _ -> 10
  | Instr.Nop | Instr.Halt -> 11

(* the VM's instruction classes double as the fusion-profile classes *)
let () = Array.iteri (fun k n -> Telemetry.Fusion.set_name k n) class_names

let create ?tables ?(dispatch = Byte) ?(seed = 1L) ~code_base ~code_capacity
    ~data_words () =
  {
    code_base;
    (* unoccupied code bytes hold the Halt opcode (0x01) *)
    image = Bytes.make code_capacity '\x01';
    code_len = 0;
    decode_size = Array.make code_capacity 0;
    decode_instr = Array.make code_capacity Instr.Halt;
    data = Array.make data_words 0;
    regs =
      (let r = Array.make Instr.num_regs 0 in
       r.(Instr.rsp) <- data_words;
       r);
    pc = 0;
    zf = false;
    lt = false;
    tables;
    reader = Option.map Idtables.Tables.register_reader tables;
    nsteps = 0;
    out = Buffer.create 256;
    brk = 1;
    prng = Mcfi_util.Prng.create seed;
    dl_handler = None;
    attacker = None;
    profile = Array.make n_classes 0;
    branch_counts = Hashtbl.create 64;
    last_class = -1;
    on_transfer = None;
    dispatch;
    th_op = [||];
    th_a = [||];
    th_b = [||];
    th_p = [||];
    th_q = [||];
    th_sites = [||];
    th_nsites = 0;
    th_fused = Array.make 6 0;
    th_hoist_hits = 0;
    th_hoist_misses = 0;
    th_hoist_refills = 0;
    th_predecodes = 0;
    th_invalidations = 0;
  }

let set_dispatch m d = m.dispatch <- d
let dispatch m = m.dispatch
let set_transfer_hook m h = m.on_transfer <- h

(* A fused superinstruction beginning up to this many bytes before an
   invalidated region may embed operands decoded from bytes that just
   changed; clearing the guard band forces it to re-pre-decode.  Bounds
   every fused sequence (the longest, the masked-store quad, is 32 B). *)
let max_fuse_span = 64

(* Drop pre-decodings at and after [from], plus the guard band before
   it.  Mirrors the decode-memo invalidation rule: the threaded stream
   is a cache over the same bytes. *)
let invalidate_th m ~from =
  let cover = Array.length m.th_op in
  if cover > 0 then begin
    let lo = max 0 (from - max_fuse_span) in
    if lo < cover then begin
      Array.fill m.th_op lo (cover - lo) 0;
      m.th_invalidations <- m.th_invalidations + 1
    end
  end

let append_code m img =
  let base = m.code_base + m.code_len in
  if m.code_len + String.length img > Bytes.length m.image then
    invalid_arg "Machine.append_code: code capacity exceeded";
  Bytes.blit_string img 0 m.image m.code_len (String.length img);
  (* loading code invalidates stale decodings of the region *)
  Array.fill m.decode_size m.code_len (String.length img) 0;
  invalidate_th m ~from:m.code_len;
  m.code_len <- m.code_len + String.length img;
  Faults.hit Faults.Plan.After_code_append;
  base

let code_end m = m.code_base + m.code_len
let code_base m = m.code_base
let code_image m = Bytes.sub_string m.image 0 m.code_len

let release m =
  match (m.tables, m.reader) with
  | Some t, Some r ->
    m.reader <- None;
    Idtables.Tables.unregister_reader t r
  | _ -> ()

let truncate_code m ~code_end =
  let len = code_end - m.code_base in
  if len < 0 || len > m.code_len then
    invalid_arg (Printf.sprintf "Machine.truncate_code: 0x%x" code_end);
  (* scrub back to the unoccupied-byte pattern (Halt) and drop decodings *)
  Bytes.fill m.image len (m.code_len - len) '\x01';
  Array.fill m.decode_size len (m.code_len - len) 0;
  invalidate_th m ~from:len;
  m.code_len <- len

let set_pc m addr = m.pc <- addr

let set_brk m addr = m.brk <- addr
let brk m = m.brk

(* word 0 is the unmapped NULL page: rejected here exactly as [load] and
   [store] reject it, so the loader/test/attacker interface cannot reach
   memory the interpreted program cannot *)
let read_data m addr =
  if addr <= 0 || addr >= Array.length m.data then
    invalid_arg (Printf.sprintf "Machine.read_data: address %d" addr);
  m.data.(addr)

let write_data m addr v =
  if addr <= 0 || addr >= Array.length m.data then
    invalid_arg (Printf.sprintf "Machine.write_data: address %d" addr);
  m.data.(addr) <- v

let data_size m = Array.length m.data
let reg m i = m.regs.(i)
let set_reg m i v = m.regs.(i) <- v
let pc m = m.pc
let steps m = m.nsteps
let output m = Buffer.contents m.out
let set_dl_handler m h = m.dl_handler <- Some h
let set_attacker m a = m.attacker <- Some a

let read_string m addr =
  let buf = Buffer.create 16 in
  let rec go a =
    if a <= 0 || a >= Array.length m.data then Buffer.contents buf
    else begin
      let c = m.data.(a) land 0xff in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (a + 1)
      end
    end
  in
  go addr

(* Fetch the instruction at an arbitrary code address — mid-instruction
   offsets decode whatever bytes are there, as on a real CISC. *)
let fetch m addr =
  let off = addr - m.code_base in
  if off < 0 || off >= m.code_len then None
  else begin
    let size = m.decode_size.(off) in
    if size > 0 then Some (m.decode_instr.(off), size)
    else if size < 0 then None
    else begin
      match Encode.decode (Bytes.unsafe_to_string m.image) off with
      | Ok (i, off') ->
        m.decode_instr.(off) <- i;
        m.decode_size.(off) <- off' - off;
        Some (i, off' - off)
      | Error _ ->
        m.decode_size.(off) <- -1;
        None
    end
  end

exception Trap of exit_reason

let trap r = raise (Trap r)

let load m addr =
  if addr <= 0 || addr >= Array.length m.data then
    trap (Fault (Printf.sprintf "load from 0x%x" addr))
  else m.data.(addr)

let store m addr v =
  if addr <= 0 || addr >= Array.length m.data then
    trap (Fault (Printf.sprintf "store to 0x%x" addr))
  else m.data.(addr) <- v

let push m v =
  let sp = m.regs.(Instr.rsp) - 1 in
  m.regs.(Instr.rsp) <- sp;
  store m sp v

let pop m =
  let sp = m.regs.(Instr.rsp) in
  let v = load m sp in
  m.regs.(Instr.rsp) <- sp + 1;
  v

let binop op a b =
  match op with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> if b = 0 then trap (Fault "division by zero") else a / b
  | Instr.Mod -> if b = 0 then trap (Fault "division by zero") else a mod b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 63)
  | Instr.Shr -> a asr (b land 63)

let set_flags m a b =
  m.zf <- a = b;
  m.lt <- a < b

let cond_holds m = function
  | Instr.Eq -> m.zf
  | Instr.Ne -> not m.zf
  | Instr.Lt -> m.lt
  | Instr.Le -> m.lt || m.zf
  | Instr.Gt -> not (m.lt || m.zf)
  | Instr.Ge -> not m.lt

let sbrk m words =
  if words < 0 then trap (Fault "sbrk with negative size");
  let base = m.brk in
  if base + words >= m.regs.(Instr.rsp) - 1024 then
    trap (Fault "out of heap memory");
  m.brk <- base + words;
  base

let tables m =
  match m.tables with
  | Some t -> t
  | None -> trap (Fault "table access without ID tables")

let syscall m =
  (* a thread at a system call is outside any check transaction: a
     per-reader quiescence point (paper §5.2).  Declaring global
     quiescence directly would be unsound with other checker domains on
     the same tables, so bump this machine's epoch and let the epoch
     machinery declare it when every registered reader agrees; the
     attempt is non-blocking, so a live updater never stalls the VM. *)
  (match (m.tables, m.reader) with
  | Some t, Some r ->
    Idtables.Tables.reader_quiescent r;
    if Idtables.Tables.updates_since_quiesce t > 0 then
      ignore (Idtables.Tables.quiesce_attempt t)
  | _ -> ());
  let num = m.regs.(0) in
  let arg k = m.regs.(k) in
  if num = Abi.sys_exit then trap (Exited (arg 1))
  else if num = Abi.sys_print_int then begin
    Buffer.add_string m.out (string_of_int (arg 1));
    m.regs.(0) <- 0
  end
  else if num = Abi.sys_print_str then begin
    Buffer.add_string m.out (read_string m (arg 1));
    m.regs.(0) <- 0
  end
  else if num = Abi.sys_sbrk then m.regs.(0) <- sbrk m (arg 1)
  else if num = Abi.sys_cycles then m.regs.(0) <- m.nsteps
  else if num = Abi.sys_rand then
    m.regs.(0) <- Mcfi_util.Prng.int m.prng 0x40000000
  else if num = Abi.sys_dlopen || num = Abi.sys_dlsym then begin
    match m.dl_handler with
    | Some h -> m.regs.(0) <- h m num (read_string m (arg 1))
    | None -> trap (Fault "dlopen/dlsym without a dynamic linker")
  end
  else trap (Fault (Printf.sprintf "unknown syscall %d" num))

let exec m i size =
  let next = m.pc + size in
  let r = m.regs in
  match i with
  | Instr.Nop -> m.pc <- next
  | Instr.Halt -> trap Cfi_halt
  | Instr.Mov_ri (rd, v) ->
    r.(rd) <- v;
    m.pc <- next
  | Instr.Mov_rr (rd, rs) ->
    r.(rd) <- r.(rs);
    m.pc <- next
  | Instr.Binop (op, rd, rs) ->
    r.(rd) <- binop op r.(rd) r.(rs);
    m.pc <- next
  | Instr.Binop_i (op, rd, v) ->
    r.(rd) <- binop op r.(rd) v;
    m.pc <- next
  | Instr.Load (rd, rs, off) ->
    r.(rd) <- load m (r.(rs) + off);
    m.pc <- next
  | Instr.Store (rb, off, rs) ->
    store m (r.(rb) + off) r.(rs);
    m.pc <- next
  | Instr.Push rs ->
    push m r.(rs);
    m.pc <- next
  | Instr.Pop rd ->
    r.(rd) <- pop m;
    m.pc <- next
  | Instr.Cmp_rr (a, b) ->
    set_flags m r.(a) r.(b);
    m.pc <- next
  | Instr.Cmp_ri (a, v) ->
    set_flags m r.(a) v;
    m.pc <- next
  | Instr.Cmp_lo (a, b) ->
    set_flags m (r.(a) land 0xffff) (r.(b) land 0xffff);
    m.pc <- next
  | Instr.Test_ri (a, v) ->
    m.zf <- r.(a) land v = 0;
    m.lt <- false;
    m.pc <- next
  | Instr.Jmp a -> m.pc <- a
  | Instr.Jcc (c, a) -> m.pc <- (if cond_holds m c then a else next)
  | Instr.Call a ->
    push m next;
    m.pc <- a
  | Instr.Call_r rs ->
    let pc0 = m.pc in
    push m next;
    let tgt = r.(rs) in
    (match m.on_transfer with Some f -> f pc0 tgt | None -> ());
    m.pc <- tgt
  | Instr.Jmp_r rs ->
    (match m.on_transfer with Some f -> f m.pc r.(rs) | None -> ());
    m.pc <- r.(rs)
  | Instr.Ret ->
    let pc0 = m.pc in
    let tgt = pop m in
    (match m.on_transfer with Some f -> f pc0 tgt | None -> ());
    m.pc <- tgt
  | Instr.Syscall ->
    syscall m;
    m.pc <- next
  | Instr.Tary_load (rd, rs) ->
    r.(rd) <- Idtables.Tables.tary_read (tables m) r.(rs);
    m.pc <- next
  | Instr.Bary_load (rd, idx) -> begin
    match Idtables.Tables.bary_read (tables m) idx with
    | id ->
      r.(rd) <- id;
      m.pc <- next
    | exception Invalid_argument _ ->
      trap (Fault (Printf.sprintf "Bary index %d out of range" idx))
  end

let current_instr m =
  match fetch m m.pc with Some (i, _) -> Some i | None -> None

let profile_count m i =
  let k = instr_class i in
  m.profile.(k) <- m.profile.(k) + 1;
  (* consecutive-class pairs feed the fusion-candidate profile *)
  if m.last_class >= 0 then Telemetry.Fusion.record ~prev:m.last_class ~cur:k;
  m.last_class <- k;
  match i with
  | Instr.Bary_load (_, idx) ->
    let cur = try Hashtbl.find m.branch_counts idx with Not_found -> 0 in
    Hashtbl.replace m.branch_counts idx (cur + 1)
  | _ -> ()

let profile m =
  Array.to_list (Array.mapi (fun k n -> (class_names.(k), n)) m.profile)

let branch_profile m =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.branch_counts [])

let step m =
  match
    (match m.attacker with Some a -> a m | None -> ());
    match fetch m m.pc with
    | None -> trap (Fault (Printf.sprintf "bad instruction fetch at 0x%x" m.pc))
    | Some (i, size) ->
      m.nsteps <- m.nsteps + 1;
      if Telemetry.enabled () then profile_count m i;
      exec m i size
  with
  | () -> None
  | exception Trap r -> Some r

let run_byte m fuel =
  let rec go remaining =
    if remaining = 0 then Out_of_fuel
    else begin
      match step m with
      | Some r -> r
      | None -> go (remaining - 1)
    end
  in
  go fuel

(* ---- the threaded-code engine ----

   The byte engine pays, per retired instruction: a fetch (bounds
   check, memo probe, an allocated [Some (instr, size)] pair), a
   23-way constructor match, and a per-step exception bracket.  The
   threaded engine pre-decodes each byte offset once into a dense
   handler index plus operand words in five parallel int arrays, so
   the steady-state loop is one array load and an integer-dispatch
   jump — no allocation, no re-decode — and the hottest sequence of
   all, the rewriter's CFI check + indirect branch, collapses into a
   single fused handler with a version-hoisted table cache.

   Handler index map (0/1 are sentinels, the rest mirror [exec]):
      0 not pre-decoded          1 bytes do not decode
      2 Nop        3 Halt        4 Mov_ri      5 Mov_rr
      6 Binop      7 Binop_i     8 Load        9 Store
     10 Push      11 Pop        12 Cmp_rr     13 Cmp_ri
     14 Cmp_lo    15 Test_ri    16 Jmp        17 Jcc
     18 Call     19 Call_r     20 Jmp_r      21 Ret
     22 Syscall  23 Tary_load  24 Bary_load
   Fused superinstructions (chosen from the telemetry pair profile —
   table+table/table+cmp/cmp+jump dominate instrumented runs):
     25 check+Jmp_r   26 check+Call_r   27 Pop+check+Jmp_r
     28 Cmp_rr+Jcc    29 Cmp_ri+Jcc     30 masked-store quad

   Operand layout per handler: [th_q] holds the decoded size for every
   base handler (2-24); immediates/addresses sit in [th_p], register
   numbers in [th_a]/[th_b].  Fused check handlers keep everything in
   an [hsite] record indexed by [th_a]. *)

let binop_code = function
  | Instr.Add -> 0 | Instr.Sub -> 1 | Instr.Mul -> 2 | Instr.Div -> 3
  | Instr.Mod -> 4 | Instr.And -> 5 | Instr.Or -> 6 | Instr.Xor -> 7
  | Instr.Shl -> 8 | Instr.Shr -> 9

let binop_of_code = function
  | 0 -> Instr.Add | 1 -> Instr.Sub | 2 -> Instr.Mul | 3 -> Instr.Div
  | 4 -> Instr.Mod | 5 -> Instr.And | 6 -> Instr.Or | 7 -> Instr.Xor
  | 8 -> Instr.Shl | _ -> Instr.Shr

let cond_code = function
  | Instr.Eq -> 0 | Instr.Ne -> 1 | Instr.Lt -> 2
  | Instr.Le -> 3 | Instr.Gt -> 4 | Instr.Ge -> 5

let cond_of_code = function
  | 0 -> Instr.Eq | 1 -> Instr.Ne | 2 -> Instr.Lt
  | 3 -> Instr.Le | 4 -> Instr.Gt | _ -> Instr.Ge

(* Grow the pre-decode arrays to cover the loaded code — never the
   reserved capacity (a default process reserves 4 MiB; five capacity-
   sized int arrays would be 160 MiB of dead weight). *)
let ensure_th m =
  let need = m.code_len in
  if Array.length m.th_op < need then begin
    let cap = max 256 (max need (2 * Array.length m.th_op)) in
    let grow old =
      let a = Array.make cap 0 in
      Array.blit old 0 a 0 (Array.length old);
      a
    in
    m.th_op <- grow m.th_op;
    m.th_a <- grow m.th_a;
    m.th_b <- grow m.th_b;
    m.th_p <- grow m.th_p;
    m.th_q <- grow m.th_q
  end

let new_site m s =
  if m.th_nsites >= Array.length m.th_sites then begin
    let cap = max 16 (2 * Array.length m.th_sites) in
    let a = Array.make cap s in
    Array.blit m.th_sites 0 a 0 m.th_nsites;
    m.th_sites <- a
  end;
  m.th_sites.(m.th_nsites) <- s;
  m.th_nsites <- m.th_nsites + 1;
  m.th_nsites - 1

(* Match the rewriter's check sequence starting at absolute [addr]:
     Bary_load (rb, slot); Tary_load (rt, rtgt); Cmp_rr (rb, rt);
     Jcc (Ne, check); Nop*pad; (Jmp_r rtgt | Call_r rtgt)
   (pad <= 3: the rewriter's [Align_end] pads so the call's return
   address is 4-aligned).  All components come from the shared decode
   memo, so a fused head replays exactly what the byte engine would
   decode at each offset. *)
let match_check m addr =
  match fetch m addr with
  | Some (Instr.Bary_load (rb, slot), s0) -> begin
    match fetch m (addr + s0) with
    | Some (Instr.Tary_load (rt, rtgt), s1) -> begin
      match fetch m (addr + s0 + s1) with
      | Some (Instr.Cmp_rr (x, y), s2) when x = rb && y = rt -> begin
        match fetch m (addr + s0 + s1 + s2) with
        | Some (Instr.Jcc (Instr.Ne, check), s3) ->
          let rec branch a pad =
            if pad > 3 then None
            else begin
              match fetch m a with
              | Some (Instr.Nop, s) -> branch (a + s) (pad + 1)
              | Some (Instr.Jmp_r r, s) when r = rtgt && pad = 0 ->
                Some (`Jmp, slot, rb, rt, rtgt, check, pad, a + s - addr)
              | Some (Instr.Call_r r, s) when r = rtgt ->
                Some (`Call, slot, rb, rt, rtgt, check, pad, a + s - addr)
              | _ -> None
            end
          in
          branch (addr + s0 + s1 + s2 + s3) 0
        | _ -> None
      end
      | _ -> None
    end
    | _ -> None
  end
  | _ -> None

let fuse_check_at m off ~pre_size ~rpop =
  match match_check m (m.code_base + off + pre_size) with
  | Some (kind, slot, rb, rt, rtgt, check, pad, size)
    when rpop < 0 || (rpop = rtgt && kind = `Jmp) ->
    let site =
      {
        hs_slot = slot;
        hs_rb = rb;
        hs_rt = rt;
        hs_rtgt = rtgt;
        hs_check = check;
        hs_pad = pad;
        hs_size = pre_size + size;
        hs_seq = -1;
        hs_target = min_int;
        hs_bid = Id.invalid;
        hs_tid = Id.invalid;
      }
    in
    let op =
      if rpop >= 0 then 27 (* Pop+check+Jmp_r *)
      else if kind = `Jmp then 25 (* check+Jmp_r *)
      else 26 (* check+Call_r *)
    in
    m.th_op.(off) <- op;
    m.th_a.(off) <- new_site m site;
    Some op
  | _ -> None

let install_base m off i size =
  let set op a b p =
    m.th_op.(off) <- op;
    m.th_a.(off) <- a;
    m.th_b.(off) <- b;
    m.th_p.(off) <- p;
    m.th_q.(off) <- size;
    op
  in
  match i with
  | Instr.Nop -> set 2 0 0 0
  | Instr.Halt -> set 3 0 0 0
  | Instr.Mov_ri (rd, v) -> set 4 rd 0 v
  | Instr.Mov_rr (rd, rs) -> set 5 rd rs 0
  | Instr.Binop (op, rd, rs) -> set 6 rd rs (binop_code op)
  | Instr.Binop_i (op, rd, v) -> set 7 rd (binop_code op) v
  | Instr.Load (rd, rs, o) -> set 8 rd rs o
  | Instr.Store (rb, o, rs) -> set 9 rb rs o
  | Instr.Push rs -> set 10 rs 0 0
  | Instr.Pop rd -> set 11 rd 0 0
  | Instr.Cmp_rr (a, b) -> set 12 a b 0
  | Instr.Cmp_ri (a, v) -> set 13 a 0 v
  | Instr.Cmp_lo (a, b) -> set 14 a b 0
  | Instr.Test_ri (a, v) -> set 15 a 0 v
  | Instr.Jmp a -> set 16 0 0 a
  | Instr.Jcc (c, a) -> set 17 (cond_code c) 0 a
  | Instr.Call a -> set 18 0 0 a
  | Instr.Call_r r -> set 19 r 0 0
  | Instr.Jmp_r r -> set 20 r 0 0
  | Instr.Ret -> set 21 0 0 0
  | Instr.Syscall -> set 22 0 0 0
  | Instr.Tary_load (rd, rs) -> set 23 rd rs 0
  | Instr.Bary_load (rd, idx) -> set 24 rd 0 idx

(* Fusions beyond the check sequence, justified by the pair profile:
   cmp+jcc (the VM's universal compare-and-branch idiom) and the
   sandbox masked-store quad the rewriter emits before every
   instrumented store. *)
let try_fuse m off i size =
  match i with
  | Instr.Bary_load _ -> fuse_check_at m off ~pre_size:0 ~rpop:(-1)
  | Instr.Pop rpop -> fuse_check_at m off ~pre_size:size ~rpop
  | Instr.Cmp_rr (a, b) -> begin
    match fetch m (m.code_base + off + size) with
    | Some (Instr.Jcc (c, addr), s1) ->
      m.th_op.(off) <- 28;
      m.th_a.(off) <- a;
      m.th_b.(off) <- b;
      (* cond and total size packed in one word: both are small *)
      m.th_p.(off) <- (cond_code c * 256) + size + s1;
      m.th_q.(off) <- addr;
      Some 28
    | _ -> None
  end
  | Instr.Cmp_ri (a, v) -> begin
    match fetch m (m.code_base + off + size) with
    | Some (Instr.Jcc (c, addr), s1) ->
      m.th_op.(off) <- 29;
      m.th_a.(off) <- a;
      m.th_b.(off) <- (cond_code c * 256) + size + s1;
      m.th_p.(off) <- v;
      m.th_q.(off) <- addr;
      Some 29
    | _ -> None
  end
  | Instr.Mov_rr (x, rb) -> begin
    match fetch m (m.code_base + off + size) with
    | Some (Instr.Binop_i (Instr.Add, x1, o), s1) when x1 = x -> begin
      match fetch m (m.code_base + off + size + s1) with
      | Some (Instr.Binop_i (Instr.And, x2, mask), s2) when x2 = x -> begin
        match fetch m (m.code_base + off + size + s1 + s2) with
        | Some (Instr.Store (x3, 0, rs), s3) when x3 = x ->
          m.th_op.(off) <- 30;
          m.th_a.(off) <- x lor (rb lsl 4) lor (rs lsl 8)
                          lor ((size + s1 + s2 + s3) lsl 12);
          m.th_p.(off) <- o;
          m.th_q.(off) <- mask;
          Some 30
        | _ -> None
      end
      | _ -> None
    end
    | _ -> None
  end
  | _ -> None

let predecode m off =
  m.th_predecodes <- m.th_predecodes + 1;
  match fetch m (m.code_base + off) with
  | None ->
    m.th_op.(off) <- 1;
    1
  | Some (i, size) -> begin
    match try_fuse m off i size with
    | Some op -> op
    | None -> install_base m off i size
  end

(* The fused check body, shared by handlers 25-27.  Retires the
   Bary_load/Tary_load/Cmp_rr/Jcc components with byte-exact register,
   flag, [nsteps] and trap behaviour; returns [true] when the compare
   passed (fall through to the branch component) and [false] when the
   mismatch edge was taken to the interpreted check block.

   Version hoisting: when the shard's install sequence word is even and
   unchanged since the cache was filled for the same target, the tables
   are provably bit-identical to the fill instant and the cached pair
   replays with no table reads at all.  A miss performs the two reads
   exactly as the byte engine would and refills only if the word stayed
   put across them and the pair is settled (never a version skew). *)
let exec_check m site =
  match m.tables with
  | None ->
    (* Bary_load: the byte engine counts the step before it traps *)
    m.nsteps <- m.nsteps + 1;
    trap (Fault "table access without ID tables")
  | Some t ->
    let tgt = m.regs.(site.hs_rtgt) in
    let s = Idtables.Tables.seq_read t in
    if s land 1 = 0 && s = site.hs_seq && tgt = site.hs_target then begin
      m.th_hoist_hits <- m.th_hoist_hits + 1;
      m.nsteps <- m.nsteps + 4;
      m.regs.(site.hs_rb) <- site.hs_bid;
      m.regs.(site.hs_rt) <- site.hs_tid;
      set_flags m site.hs_bid site.hs_tid;
      if m.zf then true
      else begin
        m.pc <- site.hs_check;
        false
      end
    end
    else begin
      m.th_hoist_misses <- m.th_hoist_misses + 1;
      m.nsteps <- m.nsteps + 1;
      (* Bary_load *)
      let bid =
        match Idtables.Tables.bary_read t site.hs_slot with
        | id -> id
        | exception Invalid_argument _ ->
          trap
            (Fault (Printf.sprintf "Bary index %d out of range" site.hs_slot))
      in
      m.regs.(site.hs_rb) <- bid;
      m.nsteps <- m.nsteps + 1;
      (* Tary_load *)
      let tid = Idtables.Tables.tary_read t tgt in
      m.regs.(site.hs_rt) <- tid;
      m.nsteps <- m.nsteps + 1;
      (* Cmp_rr *)
      set_flags m bid tid;
      m.nsteps <- m.nsteps + 1;
      (* Jcc *)
      if
        s land 1 = 0
        && Idtables.Tables.seq_read t = s
        && (bid = tid || (not (Id.valid tid)) || Id.same_version bid tid)
      then begin
        m.th_hoist_refills <- m.th_hoist_refills + 1;
        site.hs_seq <- s;
        site.hs_target <- tgt;
        site.hs_bid <- bid;
        site.hs_tid <- tid
      end;
      if m.zf then true
      else begin
        m.pc <- site.hs_check;
        false
      end
    end

let step_th m off op =
  let r = m.regs in
  match op with
  | 2 ->
    (* Nop *)
    m.nsteps <- m.nsteps + 1;
    m.pc <- m.pc + m.th_q.(off)
  | 3 ->
    (* Halt *)
    m.nsteps <- m.nsteps + 1;
    trap Cfi_halt
  | 4 ->
    (* Mov_ri *)
    m.nsteps <- m.nsteps + 1;
    r.(m.th_a.(off)) <- m.th_p.(off);
    m.pc <- m.pc + m.th_q.(off)
  | 5 ->
    (* Mov_rr *)
    m.nsteps <- m.nsteps + 1;
    r.(m.th_a.(off)) <- r.(m.th_b.(off));
    m.pc <- m.pc + m.th_q.(off)
  | 6 ->
    (* Binop *)
    m.nsteps <- m.nsteps + 1;
    let rd = m.th_a.(off) in
    r.(rd) <- binop (binop_of_code m.th_p.(off)) r.(rd) r.(m.th_b.(off));
    m.pc <- m.pc + m.th_q.(off)
  | 7 ->
    (* Binop_i *)
    m.nsteps <- m.nsteps + 1;
    let rd = m.th_a.(off) in
    r.(rd) <- binop (binop_of_code m.th_b.(off)) r.(rd) m.th_p.(off);
    m.pc <- m.pc + m.th_q.(off)
  | 8 ->
    (* Load *)
    m.nsteps <- m.nsteps + 1;
    r.(m.th_a.(off)) <- load m (r.(m.th_b.(off)) + m.th_p.(off));
    m.pc <- m.pc + m.th_q.(off)
  | 9 ->
    (* Store *)
    m.nsteps <- m.nsteps + 1;
    store m (r.(m.th_a.(off)) + m.th_p.(off)) r.(m.th_b.(off));
    m.pc <- m.pc + m.th_q.(off)
  | 10 ->
    (* Push *)
    m.nsteps <- m.nsteps + 1;
    push m r.(m.th_a.(off));
    m.pc <- m.pc + m.th_q.(off)
  | 11 ->
    (* Pop *)
    m.nsteps <- m.nsteps + 1;
    r.(m.th_a.(off)) <- pop m;
    m.pc <- m.pc + m.th_q.(off)
  | 12 ->
    (* Cmp_rr *)
    m.nsteps <- m.nsteps + 1;
    set_flags m r.(m.th_a.(off)) r.(m.th_b.(off));
    m.pc <- m.pc + m.th_q.(off)
  | 13 ->
    (* Cmp_ri *)
    m.nsteps <- m.nsteps + 1;
    set_flags m r.(m.th_a.(off)) m.th_p.(off);
    m.pc <- m.pc + m.th_q.(off)
  | 14 ->
    (* Cmp_lo *)
    m.nsteps <- m.nsteps + 1;
    set_flags m
      (r.(m.th_a.(off)) land 0xffff)
      (r.(m.th_b.(off)) land 0xffff);
    m.pc <- m.pc + m.th_q.(off)
  | 15 ->
    (* Test_ri *)
    m.nsteps <- m.nsteps + 1;
    m.zf <- r.(m.th_a.(off)) land m.th_p.(off) = 0;
    m.lt <- false;
    m.pc <- m.pc + m.th_q.(off)
  | 16 ->
    (* Jmp *)
    m.nsteps <- m.nsteps + 1;
    m.pc <- m.th_p.(off)
  | 17 ->
    (* Jcc *)
    m.nsteps <- m.nsteps + 1;
    m.pc <-
      (if cond_holds m (cond_of_code m.th_a.(off)) then m.th_p.(off)
       else m.pc + m.th_q.(off))
  | 18 ->
    (* Call *)
    m.nsteps <- m.nsteps + 1;
    push m (m.pc + m.th_q.(off));
    m.pc <- m.th_p.(off)
  | 19 ->
    (* Call_r *)
    m.nsteps <- m.nsteps + 1;
    let pc0 = m.pc in
    push m (pc0 + m.th_q.(off));
    let tgt = r.(m.th_a.(off)) in
    (match m.on_transfer with Some f -> f pc0 tgt | None -> ());
    m.pc <- tgt
  | 20 ->
    (* Jmp_r *)
    m.nsteps <- m.nsteps + 1;
    (match m.on_transfer with Some f -> f m.pc r.(m.th_a.(off)) | None -> ());
    m.pc <- r.(m.th_a.(off))
  | 21 ->
    (* Ret *)
    m.nsteps <- m.nsteps + 1;
    let pc0 = m.pc in
    let tgt = pop m in
    (match m.on_transfer with Some f -> f pc0 tgt | None -> ());
    m.pc <- tgt
  | 22 ->
    (* Syscall — may reach the dynamic linker, which appends code and
       invalidates pre-decodings; the size was captured at install *)
    m.nsteps <- m.nsteps + 1;
    let next = m.pc + m.th_q.(off) in
    syscall m;
    m.pc <- next
  | 23 ->
    (* Tary_load *)
    m.nsteps <- m.nsteps + 1;
    r.(m.th_a.(off)) <- Idtables.Tables.tary_read (tables m) r.(m.th_b.(off));
    m.pc <- m.pc + m.th_q.(off)
  | 24 ->
    (* Bary_load *)
    m.nsteps <- m.nsteps + 1;
    let idx = m.th_p.(off) in
    (match Idtables.Tables.bary_read (tables m) idx with
    | id ->
      r.(m.th_a.(off)) <- id;
      m.pc <- m.pc + m.th_q.(off)
    | exception Invalid_argument _ ->
      trap (Fault (Printf.sprintf "Bary index %d out of range" idx)))
  | 25 ->
    (* check + Jmp_r *)
    let site = m.th_sites.(m.th_a.(off)) in
    if exec_check m site then begin
      m.nsteps <- m.nsteps + 1;
      let pc0 = m.pc + site.hs_size - 2 in
      let tgt = r.(site.hs_rtgt) in
      (match m.on_transfer with Some f -> f pc0 tgt | None -> ());
      m.pc <- tgt
    end
  | 26 ->
    (* check + Call_r *)
    let site = m.th_sites.(m.th_a.(off)) in
    let base = m.pc in
    if exec_check m site then begin
      m.nsteps <- m.nsteps + site.hs_pad;
      (* alignment Nops *)
      m.nsteps <- m.nsteps + 1;
      (* a trapping push must leave [pc] at the Call_r, as byte would *)
      m.pc <- base + site.hs_size - 2;
      push m (base + site.hs_size);
      let tgt = r.(site.hs_rtgt) in
      (match m.on_transfer with
      | Some f -> f (base + site.hs_size - 2) tgt
      | None -> ());
      m.pc <- tgt
    end
  | 27 ->
    (* Pop + check + Jmp_r (the return sequence) *)
    let site = m.th_sites.(m.th_a.(off)) in
    let base = m.pc in
    m.nsteps <- m.nsteps + 1;
    r.(site.hs_rtgt) <- pop m;
    (* byte would have advanced past the Pop before the Bary_load can
       trap; keep trap-time [pc] identical *)
    m.pc <- base + 2;
    if exec_check m site then begin
      m.nsteps <- m.nsteps + 1;
      let pc0 = base + site.hs_size - 2 in
      let tgt = r.(site.hs_rtgt) in
      (match m.on_transfer with Some f -> f pc0 tgt | None -> ());
      m.pc <- tgt
    end
  | 28 ->
    (* Cmp_rr + Jcc *)
    m.nsteps <- m.nsteps + 2;
    set_flags m r.(m.th_a.(off)) r.(m.th_b.(off));
    let packed = m.th_p.(off) in
    m.pc <-
      (if cond_holds m (cond_of_code (packed / 256)) then m.th_q.(off)
       else m.pc + (packed land 255))
  | 29 ->
    (* Cmp_ri + Jcc *)
    m.nsteps <- m.nsteps + 2;
    set_flags m r.(m.th_a.(off)) m.th_p.(off);
    let packed = m.th_b.(off) in
    m.pc <-
      (if cond_holds m (cond_of_code (packed / 256)) then m.th_q.(off)
       else m.pc + (packed land 255))
  | 30 ->
    (* masked store: Mov_rr; Add; And; Store *)
    let packed = m.th_a.(off) in
    let x = packed land 15 in
    let rb = (packed lsr 4) land 15 in
    let rs = (packed lsr 8) land 15 in
    let size = packed lsr 12 in
    let base = m.pc in
    m.nsteps <- m.nsteps + 1;
    r.(x) <- r.(rb);
    m.nsteps <- m.nsteps + 1;
    r.(x) <- r.(x) + m.th_p.(off);
    m.nsteps <- m.nsteps + 1;
    r.(x) <- r.(x) land m.th_q.(off);
    m.nsteps <- m.nsteps + 1;
    (* a trapping store must leave [pc] at the Store, as byte would *)
    m.pc <- base + size - 7;
    store m r.(x) r.(rs);
    m.pc <- base + size
  | _ ->
    (* unreachable: callers hand only installed handler indices here *)
    trap (Fault (Printf.sprintf "bad instruction fetch at 0x%x" m.pc))

(* When exactness demands per-instruction granularity — an attacker hook
   must run between every two instructions, telemetry profiling counts
   every retired instruction, or fewer than [max-superinstruction]
   steps of fuel remain (a fused handler must not overshoot the fuel
   the byte engine would exhaust mid-sequence) — the loop defers to the
   byte-path [step].  Everything it computes stays valid because both
   engines share the decode memo and all machine state. *)
let run_threaded m fuel =
  (* fuel is retired instructions, so the budget is just a ceiling on
     [nsteps] — no per-iteration delta bookkeeping *)
  let limit = m.nsteps + fuel in
  try
    while true do
      let remaining = limit - m.nsteps in
      if remaining <= 0 then trap Out_of_fuel;
      if remaining < 8 || m.attacker <> None || Telemetry.enabled () then begin
        match step m with Some r -> raise (Trap r) | None -> ()
      end
      else begin
        let off = m.pc - m.code_base in
        if off < 0 || off >= m.code_len then
          trap (Fault (Printf.sprintf "bad instruction fetch at 0x%x" m.pc));
        if off >= Array.length m.th_op then ensure_th m;
        let op = m.th_op.(off) in
        let op = if op = 0 then predecode m off else op in
        if op = 1 then
          trap (Fault (Printf.sprintf "bad instruction fetch at 0x%x" m.pc));
        if op >= 25 then m.th_fused.(op - 25) <- m.th_fused.(op - 25) + 1;
        step_th m off op
      end
    done;
    assert false
  with Trap r -> r

let run ?(fuel = 100_000_000) m =
  match m.dispatch with Byte -> run_byte m fuel | Threaded -> run_threaded m fuel

(* ---- threaded-dispatch internals (observability) ---- *)

let fused_names =
  [|
    "check_jmp"; "check_call"; "pop_check_jmp"; "cmp_jcc"; "cmpi_jcc";
    "masked_store";
  |]

let dispatch_stats m =
  Array.to_list
    (Array.mapi (fun k n -> ("fused_" ^ fused_names.(k), n)) m.th_fused)
  @ [
      ("hoist_hits", m.th_hoist_hits);
      ("hoist_misses", m.th_hoist_misses);
      ("hoist_refills", m.th_hoist_refills);
      ("predecodes", m.th_predecodes);
      ("invalidations", m.th_invalidations);
    ]

let publish_dispatch_stats m =
  List.iter
    (fun (n, v) ->
      if v > 0 then
        Telemetry.Metrics.add (Telemetry.Metrics.counter ("mcfi_dispatch_" ^ n)) v)
    (dispatch_stats m)
