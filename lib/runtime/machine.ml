module Instr = Vmisa.Instr
module Encode = Vmisa.Encode
module Abi = Vmisa.Abi

type exit_reason =
  | Exited of int
  | Cfi_halt
  | Fault of string
  | Out_of_fuel

let pp_exit_reason ppf = function
  | Exited n -> Fmt.pf ppf "exited(%d)" n
  | Cfi_halt -> Fmt.string ppf "cfi-halt"
  | Fault msg -> Fmt.pf ppf "fault(%s)" msg
  | Out_of_fuel -> Fmt.string ppf "out-of-fuel"

type t = {
  code_base : int;
  image : Bytes.t; (* reserved capacity; [code_len] bytes are loaded *)
  mutable code_len : int;
  (* per-byte-offset decode memo, kept flat so fetch never allocates or
     matches an option: [decode_size.(off)] is the instruction size
     (0 = not decoded yet, -1 = bytes do not decode), and
     [decode_instr.(off)] is meaningful only when the size is positive *)
  decode_size : int array;
  decode_instr : Instr.t array;
  data : int array;
  regs : int array;
  mutable pc : int;
  mutable zf : bool;
  mutable lt : bool;
  tables : Idtables.Tables.t option;
  (* this machine's registration in the tables' epoch registry: bumped at
     syscalls, where the interpreted program is provably outside any
     check sequence; [release] clears it so a dead machine never gates
     quiescence *)
  mutable reader : Idtables.Tables.reader option;
  mutable nsteps : int;
  out : Buffer.t;
  mutable brk : int;
  prng : Mcfi_util.Prng.t;
  mutable dl_handler : (t -> int -> string -> int) option;
  mutable attacker : (t -> unit) option;
  (* execution profile, filled only while telemetry is enabled: retired
     instructions per class, and executions per Bary slot (i.e. per
     indirect-branch enforcement site).  Plain state — a machine is
     single-domain. *)
  profile : int array;
  branch_counts : (int, int) Hashtbl.t;
}

(* instruction classes for the execution profile *)
let n_classes = 12

let class_names =
  [|
    "mov"; "alu"; "mem"; "stack"; "cmp"; "jump"; "call-direct";
    "call-indirect"; "ret"; "syscall"; "table"; "other";
  |]

let instr_class = function
  | Instr.Mov_ri _ | Instr.Mov_rr _ -> 0
  | Instr.Binop _ | Instr.Binop_i _ | Instr.Test_ri _ -> 1
  | Instr.Load _ | Instr.Store _ -> 2
  | Instr.Push _ | Instr.Pop _ -> 3
  | Instr.Cmp_rr _ | Instr.Cmp_ri _ | Instr.Cmp_lo _ -> 4
  | Instr.Jmp _ | Instr.Jcc _ -> 5
  | Instr.Call _ -> 6
  | Instr.Call_r _ | Instr.Jmp_r _ -> 7
  | Instr.Ret -> 8
  | Instr.Syscall -> 9
  | Instr.Tary_load _ | Instr.Bary_load _ -> 10
  | Instr.Nop | Instr.Halt -> 11

let create ?tables ?(seed = 1L) ~code_base ~code_capacity ~data_words () =
  {
    code_base;
    (* unoccupied code bytes hold the Halt opcode (0x01) *)
    image = Bytes.make code_capacity '\x01';
    code_len = 0;
    decode_size = Array.make code_capacity 0;
    decode_instr = Array.make code_capacity Instr.Halt;
    data = Array.make data_words 0;
    regs =
      (let r = Array.make Instr.num_regs 0 in
       r.(Instr.rsp) <- data_words;
       r);
    pc = 0;
    zf = false;
    lt = false;
    tables;
    reader = Option.map Idtables.Tables.register_reader tables;
    nsteps = 0;
    out = Buffer.create 256;
    brk = 1;
    prng = Mcfi_util.Prng.create seed;
    dl_handler = None;
    attacker = None;
    profile = Array.make n_classes 0;
    branch_counts = Hashtbl.create 64;
  }

let append_code m img =
  let base = m.code_base + m.code_len in
  if m.code_len + String.length img > Bytes.length m.image then
    invalid_arg "Machine.append_code: code capacity exceeded";
  Bytes.blit_string img 0 m.image m.code_len (String.length img);
  (* loading code invalidates stale decodings of the region *)
  Array.fill m.decode_size m.code_len (String.length img) 0;
  m.code_len <- m.code_len + String.length img;
  Faults.hit Faults.Plan.After_code_append;
  base

let code_end m = m.code_base + m.code_len

let release m =
  match (m.tables, m.reader) with
  | Some t, Some r ->
    m.reader <- None;
    Idtables.Tables.unregister_reader t r
  | _ -> ()

let truncate_code m ~code_end =
  let len = code_end - m.code_base in
  if len < 0 || len > m.code_len then
    invalid_arg (Printf.sprintf "Machine.truncate_code: 0x%x" code_end);
  (* scrub back to the unoccupied-byte pattern (Halt) and drop decodings *)
  Bytes.fill m.image len (m.code_len - len) '\x01';
  Array.fill m.decode_size len (m.code_len - len) 0;
  m.code_len <- len

let set_pc m addr = m.pc <- addr

let set_brk m addr = m.brk <- addr
let brk m = m.brk

(* word 0 is the unmapped NULL page: rejected here exactly as [load] and
   [store] reject it, so the loader/test/attacker interface cannot reach
   memory the interpreted program cannot *)
let read_data m addr =
  if addr <= 0 || addr >= Array.length m.data then
    invalid_arg (Printf.sprintf "Machine.read_data: address %d" addr);
  m.data.(addr)

let write_data m addr v =
  if addr <= 0 || addr >= Array.length m.data then
    invalid_arg (Printf.sprintf "Machine.write_data: address %d" addr);
  m.data.(addr) <- v

let data_size m = Array.length m.data
let reg m i = m.regs.(i)
let set_reg m i v = m.regs.(i) <- v
let pc m = m.pc
let steps m = m.nsteps
let output m = Buffer.contents m.out
let set_dl_handler m h = m.dl_handler <- Some h
let set_attacker m a = m.attacker <- Some a

let read_string m addr =
  let buf = Buffer.create 16 in
  let rec go a =
    if a <= 0 || a >= Array.length m.data then Buffer.contents buf
    else begin
      let c = m.data.(a) land 0xff in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (a + 1)
      end
    end
  in
  go addr

(* Fetch the instruction at an arbitrary code address — mid-instruction
   offsets decode whatever bytes are there, as on a real CISC. *)
let fetch m addr =
  let off = addr - m.code_base in
  if off < 0 || off >= m.code_len then None
  else begin
    let size = m.decode_size.(off) in
    if size > 0 then Some (m.decode_instr.(off), size)
    else if size < 0 then None
    else begin
      match Encode.decode (Bytes.unsafe_to_string m.image) off with
      | Ok (i, off') ->
        m.decode_instr.(off) <- i;
        m.decode_size.(off) <- off' - off;
        Some (i, off' - off)
      | Error _ ->
        m.decode_size.(off) <- -1;
        None
    end
  end

exception Trap of exit_reason

let trap r = raise (Trap r)

let load m addr =
  if addr <= 0 || addr >= Array.length m.data then
    trap (Fault (Printf.sprintf "load from 0x%x" addr))
  else m.data.(addr)

let store m addr v =
  if addr <= 0 || addr >= Array.length m.data then
    trap (Fault (Printf.sprintf "store to 0x%x" addr))
  else m.data.(addr) <- v

let push m v =
  let sp = m.regs.(Instr.rsp) - 1 in
  m.regs.(Instr.rsp) <- sp;
  store m sp v

let pop m =
  let sp = m.regs.(Instr.rsp) in
  let v = load m sp in
  m.regs.(Instr.rsp) <- sp + 1;
  v

let binop op a b =
  match op with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> if b = 0 then trap (Fault "division by zero") else a / b
  | Instr.Mod -> if b = 0 then trap (Fault "division by zero") else a mod b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 63)
  | Instr.Shr -> a asr (b land 63)

let set_flags m a b =
  m.zf <- a = b;
  m.lt <- a < b

let cond_holds m = function
  | Instr.Eq -> m.zf
  | Instr.Ne -> not m.zf
  | Instr.Lt -> m.lt
  | Instr.Le -> m.lt || m.zf
  | Instr.Gt -> not (m.lt || m.zf)
  | Instr.Ge -> not m.lt

let sbrk m words =
  if words < 0 then trap (Fault "sbrk with negative size");
  let base = m.brk in
  if base + words >= m.regs.(Instr.rsp) - 1024 then
    trap (Fault "out of heap memory");
  m.brk <- base + words;
  base

let tables m =
  match m.tables with
  | Some t -> t
  | None -> trap (Fault "table access without ID tables")

let syscall m =
  (* a thread at a system call is outside any check transaction: a
     per-reader quiescence point (paper §5.2).  Declaring global
     quiescence directly would be unsound with other checker domains on
     the same tables, so bump this machine's epoch and let the epoch
     machinery declare it when every registered reader agrees; the
     attempt is non-blocking, so a live updater never stalls the VM. *)
  (match (m.tables, m.reader) with
  | Some t, Some r ->
    Idtables.Tables.reader_quiescent r;
    if Idtables.Tables.updates_since_quiesce t > 0 then
      ignore (Idtables.Tables.quiesce_attempt t)
  | _ -> ());
  let num = m.regs.(0) in
  let arg k = m.regs.(k) in
  if num = Abi.sys_exit then trap (Exited (arg 1))
  else if num = Abi.sys_print_int then begin
    Buffer.add_string m.out (string_of_int (arg 1));
    m.regs.(0) <- 0
  end
  else if num = Abi.sys_print_str then begin
    Buffer.add_string m.out (read_string m (arg 1));
    m.regs.(0) <- 0
  end
  else if num = Abi.sys_sbrk then m.regs.(0) <- sbrk m (arg 1)
  else if num = Abi.sys_cycles then m.regs.(0) <- m.nsteps
  else if num = Abi.sys_rand then
    m.regs.(0) <- Mcfi_util.Prng.int m.prng 0x40000000
  else if num = Abi.sys_dlopen || num = Abi.sys_dlsym then begin
    match m.dl_handler with
    | Some h -> m.regs.(0) <- h m num (read_string m (arg 1))
    | None -> trap (Fault "dlopen/dlsym without a dynamic linker")
  end
  else trap (Fault (Printf.sprintf "unknown syscall %d" num))

let exec m i size =
  let next = m.pc + size in
  let r = m.regs in
  match i with
  | Instr.Nop -> m.pc <- next
  | Instr.Halt -> trap Cfi_halt
  | Instr.Mov_ri (rd, v) ->
    r.(rd) <- v;
    m.pc <- next
  | Instr.Mov_rr (rd, rs) ->
    r.(rd) <- r.(rs);
    m.pc <- next
  | Instr.Binop (op, rd, rs) ->
    r.(rd) <- binop op r.(rd) r.(rs);
    m.pc <- next
  | Instr.Binop_i (op, rd, v) ->
    r.(rd) <- binop op r.(rd) v;
    m.pc <- next
  | Instr.Load (rd, rs, off) ->
    r.(rd) <- load m (r.(rs) + off);
    m.pc <- next
  | Instr.Store (rb, off, rs) ->
    store m (r.(rb) + off) r.(rs);
    m.pc <- next
  | Instr.Push rs ->
    push m r.(rs);
    m.pc <- next
  | Instr.Pop rd ->
    r.(rd) <- pop m;
    m.pc <- next
  | Instr.Cmp_rr (a, b) ->
    set_flags m r.(a) r.(b);
    m.pc <- next
  | Instr.Cmp_ri (a, v) ->
    set_flags m r.(a) v;
    m.pc <- next
  | Instr.Cmp_lo (a, b) ->
    set_flags m (r.(a) land 0xffff) (r.(b) land 0xffff);
    m.pc <- next
  | Instr.Test_ri (a, v) ->
    m.zf <- r.(a) land v = 0;
    m.lt <- false;
    m.pc <- next
  | Instr.Jmp a -> m.pc <- a
  | Instr.Jcc (c, a) -> m.pc <- (if cond_holds m c then a else next)
  | Instr.Call a ->
    push m next;
    m.pc <- a
  | Instr.Call_r rs ->
    push m next;
    m.pc <- r.(rs)
  | Instr.Jmp_r rs -> m.pc <- r.(rs)
  | Instr.Ret -> m.pc <- pop m
  | Instr.Syscall ->
    syscall m;
    m.pc <- next
  | Instr.Tary_load (rd, rs) ->
    r.(rd) <- Idtables.Tables.tary_read (tables m) r.(rs);
    m.pc <- next
  | Instr.Bary_load (rd, idx) -> begin
    match Idtables.Tables.bary_read (tables m) idx with
    | id ->
      r.(rd) <- id;
      m.pc <- next
    | exception Invalid_argument _ ->
      trap (Fault (Printf.sprintf "Bary index %d out of range" idx))
  end

let current_instr m =
  match fetch m m.pc with Some (i, _) -> Some i | None -> None

let profile_count m i =
  let k = instr_class i in
  m.profile.(k) <- m.profile.(k) + 1;
  match i with
  | Instr.Bary_load (_, idx) ->
    let cur = try Hashtbl.find m.branch_counts idx with Not_found -> 0 in
    Hashtbl.replace m.branch_counts idx (cur + 1)
  | _ -> ()

let profile m =
  Array.to_list (Array.mapi (fun k n -> (class_names.(k), n)) m.profile)

let branch_profile m =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.branch_counts [])

let step m =
  match
    (match m.attacker with Some a -> a m | None -> ());
    match fetch m m.pc with
    | None -> trap (Fault (Printf.sprintf "bad instruction fetch at 0x%x" m.pc))
    | Some (i, size) ->
      m.nsteps <- m.nsteps + 1;
      if Telemetry.enabled () then profile_count m i;
      exec m i size
  with
  | () -> None
  | exception Trap r -> Some r

let run ?(fuel = 100_000_000) m =
  let rec go remaining =
    if remaining = 0 then Out_of_fuel
    else begin
      match step m with
      | Some r -> r
      | None -> go (remaining - 1)
    end
  in
  go fuel
