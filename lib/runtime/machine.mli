(** The virtual machine: executes an encoded code image against a flat data
    region, the MCFI ID tables, and a syscall interface.

    Faithfulness notes:
    - The fetch path decodes from the raw byte image at {e any} byte
      offset (with a memo cache), so control transfers into the middle of
      an instruction execute whatever those bytes decode to — exactly the
      behaviour ROP gadgets rely on and MCFI's alignment+tables forbid.
    - Code is not writable (the loader owns the image: W^X); data is not
      executable (fetches only touch the code region).
    - [Tary_load]/[Bary_load] read the shared {!Idtables.Tables.t}, which
      may be concurrently updated by another thread's update transaction.
    - An attacker hook may corrupt any writable data between any two
      instructions, but not registers, code, or the tables — the paper's
      concurrent-attacker threat model (§4). *)

type exit_reason =
  | Exited of int        (** the program called the exit syscall *)
  | Cfi_halt             (** a [Halt] was executed — check-failure sink *)
  | Fault of string      (** decode error, wild memory access, … *)
  | Out_of_fuel          (** the step budget ran out *)

val pp_exit_reason : Format.formatter -> exit_reason -> unit

(** Which execution engine {!run} uses.  [Byte] is the reference
    interpreter: fetch/decode/execute per instruction from the raw byte
    image.  [Threaded] pre-decodes each executed byte offset once into a
    flat handler-index stream (plus fused superinstructions for the CFI
    check+branch sequence, compare+branch pairs and the sandbox
    masked-store quad, the hottest pairs in the telemetry fusion
    profile) and dispatches on integer handler indices — observationally
    identical to [Byte]: same traps, same [pc] at every trap, same
    retired-instruction counts, same committed transfers.  Pre-decodings
    are invalidated when the code region changes (dlopen append,
    rollback truncate), so any-byte-offset fetch semantics are
    preserved. *)
type dispatch = Byte | Threaded

val dispatch_name : dispatch -> string

(** Parses ["byte" | "threaded"]. *)
val dispatch_of_string : string -> (dispatch, string) result

type t

(** [create ~code_base ~code_capacity ~data_words] builds a machine with an
    empty code region (capacity reserved up front, like the paper's
    reserved code range). [tables] enables the table-read instructions.
    [dispatch] (default [Byte]) selects the execution engine.
    The stack pointer starts at [data_words] (the stack grows down).
    Unoccupied code bytes hold the [Halt] opcode. *)
val create :
  ?tables:Idtables.Tables.t ->
  ?dispatch:dispatch ->
  ?seed:int64 ->
  code_base:int ->
  code_capacity:int ->
  data_words:int ->
  unit ->
  t

val set_dispatch : t -> dispatch -> unit
val dispatch : t -> dispatch

(** [append_code m image] loads [image] at the next free code address and
    returns that base address — a loader/runtime-only operation (W^X: user
    code has no way to reach it). Raises [Invalid_argument] when the
    capacity is exceeded. Hosts the [After_code_append] fault-injection
    point (fires after the image is in place — rollback is the loader
    journal's job, via {!truncate_code}). *)
val append_code : t -> string -> int

(** Next free code address. *)
val code_end : t -> int

(** The base address code is loaded at (the [create] parameter). *)
val code_base : t -> int

(** A copy of the currently loaded code bytes (addresses
    [code_base, code_end)) — read-only by construction, so handing it to
    an analysis (the gadget scanner, the redteam reachability pass) never
    violates W^X. *)
val code_image : t -> string

(** [release m] unregisters the machine's reader from the tables' epoch
    registry, so a machine that will never run again stops gating
    {!Idtables.Tables.try_quiesce}.  Idempotent; a no-op for machines
    without tables.  Part of tenant teardown ({!Process.teardown}): a
    dead tenant left registered would wedge quiescence — and with it the
    version-space budget — for every other tenant on the tables. *)
val release : t -> unit

(** [truncate_code m ~code_end] rolls the code region back so that
    {!code_end} is [code_end] again: the dropped suffix reverts to the
    unoccupied-byte pattern and its decode cache is purged.  Loader-only
    (journal rollback of a failed load).  Raises [Invalid_argument] if
    [code_end] is outside the currently loaded region. *)
val truncate_code : t -> code_end:int -> unit

(** [set_pc m addr] places the program counter (process start, tests). *)
val set_pc : t -> int -> unit

(** [sbrk m words] allocates from the heap; also the syscall's backend.
    Used by the loader to place a dynamically loaded module's data. *)
val sbrk : t -> int -> int

(** [set_brk m addr] initializes the heap break (loader, after globals). *)
val set_brk : t -> int -> unit

(** The current heap break (loader journal, tests). *)
val brk : t -> int

(** Direct access used by the loader to initialize globals, and by tests
    and the attacker model. Addresses are word offsets in
    (0, data_words): word 0 is the unmapped NULL page, rejected exactly
    as the interpreted [Load]/[Store] instructions reject it.  Raises
    [Invalid_argument] out of range. *)
val read_data : t -> int -> int

val write_data : t -> int -> int -> unit

val data_size : t -> int

val reg : t -> int -> int
val set_reg : t -> int -> int -> unit
val pc : t -> int

(** Instructions retired so far. *)
val steps : t -> int

(** Everything the program printed so far. *)
val output : t -> string

(** Install a handler for the [dlopen]/[dlsym] syscalls ([r1] = address of
    a name string; must return the syscall result). Without one, those
    syscalls fault. *)
val set_dl_handler : t -> (t -> int -> string -> int) -> unit

(** Install an attacker: called before every instruction; may call
    [write_data] freely (and only that — the model's limits are enforced by
    the interface, which exposes no register or code mutation to it). *)
val set_attacker : t -> (t -> unit) -> unit

(** [read_string m addr] reads a NUL-terminated string from data memory.
    Running off the mapped range — including starting at the NULL
    page — terminates the string. *)
val read_string : t -> int -> string

(** The instruction the program counter currently points at, if it
    decodes — tests and tracers use this to observe committed transfers. *)
val current_instr : t -> Vmisa.Instr.t option

(** Execution profile, recorded only while [Telemetry.enabled]: retired
    instructions per class ([(class name, count)], all classes listed,
    fixed order). *)
val profile : t -> (string * int) list

(** Executions per Bary slot — i.e. per indirect-branch enforcement
    site — recorded only while [Telemetry.enabled]; sorted by slot. *)
val branch_profile : t -> (int * int) list

(** Install a committed-transfer hook: called with [(branch pc, target)]
    for every {e executed} [Call_r]/[Jmp_r]/[Ret], under both dispatch
    engines (fused handlers report the branch component's address) —
    the differential dispatch oracle records transfer traces through
    it.  [None] uninstalls. *)
val set_transfer_hook : t -> (int -> int -> unit) option -> unit

(** Threaded-dispatch internals, always on (plain per-machine counters):
    fused-superinstruction executions per kind ([fused_check_jmp],
    [fused_check_call], [fused_pop_check_jmp], [fused_cmp_jcc],
    [fused_cmpi_jcc], [fused_masked_store]), hoisted-check cache traffic
    ([hoist_hits]/[hoist_misses]/[hoist_refills]), and pre-decode churn
    ([predecodes]/[invalidations]). *)
val dispatch_stats : t -> (string * int) list

(** Fold {!dispatch_stats} into the telemetry metrics registry as
    [mcfi_dispatch_*] counters (no-op for zero counters, and while
    telemetry is disabled — [Metrics.add] is gated). *)
val publish_dispatch_stats : t -> unit

(** [step m] executes one instruction; [None] means the machine is still
    running. *)
val step : t -> exit_reason option

(** [run ~fuel m] steps until exit or until [fuel] instructions retired. *)
val run : ?fuel:int -> t -> exit_reason
