(** An MCFI process: the runtime + loader + dynamic linker of paper §6-7.

    A process owns a machine (code region, data region), the ID tables,
    the global symbol tables, and the list of loaded modules.  Loading a
    module — at startup or through the [dlopen] syscall — performs the
    paper's dynamic-linking protocol:

    + {e Module preparation}: re-base the module's Bary slots to the
      process-global slot space, lay out code at the next free code
      address and data in fresh data words (the module is writable,
      not executable, at this stage);
    + {e Verification}: the independent verifier checks the laid-out
      bytes (instrumented processes only); only then does the image
      become executable (appended to the machine's code region);
    + {e New CFG generation}: the type-matching CFG generator runs over
      the union of all loaded modules' auxiliary information;
    + {e ID-table update}: one update transaction installs the new
      Bary/Tary IDs; GOT slots of newly resolved symbols are written
      between the Tary and Bary phases, under the same barrier.

    A plain (uninstrumented) process skips verification, CFG generation
    and tables — that is the Fig. 5 baseline. *)

exception Error of string

type t

(** [create ()] builds an empty process.
    [instrumented] selects MCFI mode (default true).
    [sandbox] is the platform write-confinement scheme modules were
    instrumented for (default [Mask]; see {!Vmisa.Abi.sandbox}).
    [verify] runs the verifier on every loaded module (default: same as
    [instrumented]).
    [incremental] (default true) links incrementally: each load merges
    only the new module into a persistent CFG merge state
    ({!Cfg.Cfggen.merge}) and installs the resulting delta with
    {!Idtables.Tx.update_delta}, so dlopen cost scales with the module,
    not the program.  [~incremental:false] keeps the historical
    regenerate-everything path ({!Cfg.Cfggen.generate} + full
    {!Idtables.Tx.update}) — the baseline the benchmarks compare
    against.
    [self_check] (default false) runs {!oracle_check} after every
    install and fails the load on divergence.
    [registry] maps module names to objects for [dlopen].
    [bary_slots], [code_capacity], [data_words] size the reserved
    regions. *)
val create :
  ?instrumented:bool ->
  ?sandbox:Vmisa.Abi.sandbox ->
  ?verify:bool ->
  ?incremental:bool ->
  ?self_check:bool ->
  ?registry:(string -> Mcfi_compiler.Objfile.t option) ->
  ?code_capacity:int ->
  ?data_words:int ->
  ?bary_slots:int ->
  ?dispatch:Machine.dispatch ->
  ?seed:int64 ->
  unit ->
  t

(** [load t obj] loads a module (startup or dlopen path; same protocol).
    Raises {!Error} on symbol clashes, verification failure, or an
    instrumented/plain mismatch with the process mode.

    Failure-atomic: the process is journalled (code end, heap break, table
    snapshot, symbol maps, staged GOT words, module list) before the
    protocol starts, and {e any} exception — {!Error}, a capacity
    [Invalid_argument], an injected {!Faults.Injected} fault, even one
    striking between the update transaction's two phases — rolls the
    process back to the journal before re-raising, so a failed load is
    observationally a no-op. *)
val load : t -> Mcfi_compiler.Objfile.t -> unit

(** [machine t] gives access to the underlying machine (registers, data,
    output, attacker hooks). *)
val machine : t -> Machine.t

(** The shared ID tables (instrumented processes only). *)
val tables : t -> Idtables.Tables.t option

(** [lookup_code t symbol] is the code address of a loaded symbol. *)
val lookup_code : t -> string -> int option

(** [lookup_data t symbol] is the data address of a loaded global. *)
val lookup_data : t -> string -> int option

(** The full symbol maps as sorted association lists — the state-equality
    probes the fault-injection oracle compares. *)
val code_symbol_bindings : t -> (string * int) list

val data_symbol_bindings : t -> (string * int) list

(** Names of the loaded modules, in load order. *)
val loaded_names : t -> string list

(** Statistics of the last CFG generation (paper Table 3 columns). *)
val cfg_stats : t -> Cfg.Cfggen.stats option

(** The CFG input view of the currently loaded modules — used by the
    security-evaluation tools (AIR, gadget analysis) and the
    differential oracle.  Assembled from per-module memos extracted once
    at load time, not by re-walking the object files. *)
val cfg_input : t -> Cfg.Cfggen.input

(** The differential oracle: regenerate the CFG from scratch over
    {!cfg_input} and compare — bit for bit — against the incrementally
    maintained assignment and the ECNs installed in the live tables,
    and check that every equivalence class is version-uniform (the
    delta install's carry invariant).  [Ok ()] on an uninstrumented
    process.  [create ~self_check:true] runs this after every install. *)
val oracle_check : t -> (unit, string) result

(** [start t] sets the program counter at [_start].
    Raises {!Error} if no [_start] is loaded. *)
val start : t -> unit

(** [run t] = [start] + [Machine.run]. *)
val run : ?fuel:int -> t -> Machine.exit_reason

(** Milliseconds spent in CFG generation so far (paper §7 reports ~150ms
    for gcc; the CG experiment regenerates this number). *)
val cfg_gen_time_ms : t -> float

(** Number of update transactions executed (startup loads + dlopens). *)
val updates : t -> int

(** [teardown t] is the supervised, crash-only death of the process:
    unregister its machine's reader from the tables' epoch registry (so
    the corpse can never wedge {!Idtables.Tables.try_quiesce}), then
    redo any install transaction the process died inside of from the
    intent journal ({!Idtables.Tx.recover}).  Idempotent, and safe on a
    process in {e any} state — half-loaded, killed mid-install, or
    cleanly exited.  After teardown the process must not run again. *)
val teardown : t -> unit
