module Instr = Vmisa.Instr
module Asm = Vmisa.Asm
module Abi = Vmisa.Abi

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Scratch registers reserved by the code generator for check sequences. *)
let rtarget_id = Instr.rscratch0 (* r11, the paper's %esi *)
let rtarget = Instr.rscratch1 (* r12, the paper's %rcx *)
let rbranch_id = Instr.rscratch2 (* r13, the paper's %edi *)

let plt_label symbol = "__plt_" ^ symbol
let got_symbol symbol = "__got_" ^ symbol

(* The check transaction (paper Fig. 4), split into its two blocks.

   The {e read} block loads the branch ID ([Bary_load] with the
   module-local slot) and the target ID, compares them, and diverts to the
   check block on mismatch; on match it falls through to the committing
   control transfer.  The {e check} block distinguishes an invalid target
   (halt), a version mismatch during a concurrent update (retry), and an
   equivalence-class mismatch (halt). *)
let read_block ~slot ~check_lbl =
  [
    Asm.I (Instr.Bary_load (rbranch_id, slot));
    Asm.I (Instr.Tary_load (rtarget_id, rtarget));
    Asm.I (Instr.Cmp_rr (rbranch_id, rtarget_id));
    Asm.Jcc_sym (Instr.Ne, check_lbl);
  ]

let check_block ~try_lbl ~check_lbl ~halt_lbl =
  [
    Asm.Label check_lbl;
    Asm.I (Instr.Test_ri (rtarget_id, 1));
    Asm.Jcc_sym (Instr.Eq, halt_lbl);
    Asm.I (Instr.Cmp_lo (rbranch_id, rtarget_id));
    Asm.Jcc_sym (Instr.Ne, try_lbl);
    Asm.Label halt_lbl;
    Asm.I Instr.Halt;
  ]

(* Rewritten return (Fig. 4): pop once (so a concurrent attacker cannot
   swap the return address after the check), then check-and-jump. *)
let return_sequence ~prefix ~slot =
  let try_lbl = prefix ^ "$try" in
  let check_lbl = prefix ^ "$check" in
  let halt_lbl = prefix ^ "$halt" in
  [ Asm.I (Instr.Pop rtarget); Asm.Label try_lbl ]
  @ read_block ~slot ~check_lbl
  @ [ Asm.I (Instr.Jmp_r rtarget) ]
  @ check_block ~try_lbl ~check_lbl ~halt_lbl

(* Indirect call: the committing [Call_r] must be the {e last} instruction
   of the sequence because the original code places the (aligned) return
   site immediately after it, so the check/halt block is laid out before
   the read block and entered by a jump. *)
let icall_sequence ~prefix ~slot ~src =
  let try_lbl = prefix ^ "$try" in
  let check_lbl = prefix ^ "$check" in
  let halt_lbl = prefix ^ "$halt" in
  [ Asm.I (Instr.Mov_rr (rtarget, src)); Asm.Jmp_sym try_lbl ]
  @ check_block ~try_lbl ~check_lbl ~halt_lbl
  @ [ Asm.Label try_lbl ]
  @ read_block ~slot ~check_lbl
  @ [
      Asm.Align_end (4, Instr.size (Instr.Call_r rtarget));
      Asm.I (Instr.Call_r rtarget);
    ]

(* Indirect jump (switch tables, indirect tail calls, longjmp). *)
let ijmp_sequence ~prefix ~slot ~src =
  let try_lbl = prefix ^ "$try" in
  let check_lbl = prefix ^ "$check" in
  let halt_lbl = prefix ^ "$halt" in
  [ Asm.I (Instr.Mov_rr (rtarget, src)); Asm.Label try_lbl ]
  @ read_block ~slot ~check_lbl
  @ [ Asm.I (Instr.Jmp_r rtarget) ]
  @ check_block ~try_lbl ~check_lbl ~halt_lbl

(* PLT entry: a version-mismatch retry reloads the target from the GOT, so
   an in-flight GOT update is picked up (paper §5.2). *)
let plt_entry ~symbol ~slot =
  let prefix = "mcfi$plt$" ^ symbol in
  let try_lbl = prefix ^ "$try" in
  let check_lbl = prefix ^ "$check" in
  let halt_lbl = prefix ^ "$halt" in
  [
    Asm.Align 4;
    Asm.Label (plt_label symbol);
    Asm.Label try_lbl;
    Asm.Mov_dsym (rtarget, got_symbol symbol);
    Asm.I (Instr.Load (rtarget, rtarget, 0));
  ]
  @ read_block ~slot ~check_lbl
  @ [ Asm.I (Instr.Jmp_r rtarget) ]
  @ check_block ~try_lbl ~check_lbl ~halt_lbl

(* Masked store: effective address is recomputed into r11 and clipped to
   the sandbox. Stack-relative stores keep their base (the stack segment
   discipline the runtime enforces, as MIP does for %rsp). *)
let masked_store rb off rs =
  [
    Asm.I (Instr.Mov_rr (rtarget_id, rb));
    Asm.I (Instr.Binop_i (Instr.Add, rtarget_id, off));
    Asm.I (Instr.Binop_i (Instr.And, rtarget_id, Abi.sandbox_mask));
    Asm.I (Instr.Store (rtarget_id, 0, rs));
  ]

let size_of_items items =
  match Asm.assemble ~base:0
          ~resolve_code:(fun _ -> Some 0)
          ~resolve_data:(fun _ -> Some 0)
          items
  with
  | Ok prog -> String.length prog.Asm.image
  | Error e -> fail "size_of_items: %a" (fun () e -> Fmt.str "%a" Asm.pp_error e) e

let instrument ?(sandbox = Abi.Mask) ?(drop_check = -1)
    (obj : Mcfi_compiler.Objfile.t) =
  if obj.o_instrumented then fail "module %s is already instrumented" obj.o_name;
  let sites = Array.of_list obj.o_sites in
  let next_site = ref 0 in
  let take_site () =
    if !next_site >= Array.length sites then
      fail "module %s: more indirect branches than site records" obj.o_name;
    let k = !next_site in
    incr next_site;
    (k, sites.(k))
  in
  (* Labels that must be 4-byte aligned: function entries, jump-table
     targets, setjmp continuations. *)
  let align_labels = Hashtbl.create 64 in
  List.iter
    (fun (fi : Mcfi_compiler.Objfile.fn_info) ->
      if fi.fi_defined then Hashtbl.replace align_labels fi.fi_name ())
    obj.o_functions;
  List.iter
    (function
      | Mcfi_compiler.Objfile.Site_jumptable { targets; _ } ->
        List.iter (fun l -> Hashtbl.replace align_labels l ()) targets
      | _ -> ())
    obj.o_sites;
  List.iter (fun l -> Hashtbl.replace align_labels l ()) obj.o_setjmp_sites;
  let prefix k = Printf.sprintf "mcfi$%s$%d" obj.o_name k in
  let rewrite item =
    match item with
    | Asm.I Instr.Ret -> begin
      match take_site () with
      | k, Mcfi_compiler.Objfile.Site_return _ ->
        if k = drop_check then [ item ]
        else return_sequence ~prefix:(prefix k) ~slot:k
      | _, site ->
        fail "module %s: ret where %a expected" obj.o_name
          (fun () s -> Fmt.str "%a" Mcfi_compiler.Objfile.pp_site s)
          site
    end
    | Asm.I (Instr.Call_r src) -> begin
      match take_site () with
      | k, Mcfi_compiler.Objfile.Site_icall _ ->
        if k = drop_check then [ item ]
        else icall_sequence ~prefix:(prefix k) ~slot:k ~src
      | _, site ->
        fail "module %s: indirect call where %a expected" obj.o_name
          (fun () s -> Fmt.str "%a" Mcfi_compiler.Objfile.pp_site s)
          site
    end
    | Asm.I (Instr.Jmp_r src) -> begin
      match take_site () with
      | k, (Mcfi_compiler.Objfile.Site_jumptable _ | Mcfi_compiler.Objfile.Site_itail _
           | Mcfi_compiler.Objfile.Site_longjmp _) ->
        if k = drop_check then [ item ]
        else ijmp_sequence ~prefix:(prefix k) ~slot:k ~src
      | _, site ->
        fail "module %s: indirect jump where %a expected" obj.o_name
          (fun () s -> Fmt.str "%a" Mcfi_compiler.Objfile.pp_site s)
          site
    end
    | Asm.I (Instr.Store (rb, off, rs))
      when sandbox = Abi.Mask && rb <> Instr.rsp && rb <> Instr.rfp ->
      (* the Segment platform confines stores in hardware; Mask inserts
         the explicit address clip (paper §5.1) *)
      masked_store rb off rs
    | Asm.I (Instr.Call _) | Asm.Call_sym _ ->
      (* align the return address of direct calls *)
      [ Asm.Align_end (4, Instr.size (Instr.Call 0)); item ]
    | Asm.Label l when Hashtbl.mem align_labels l -> [ Asm.Align 4; item ]
    | Asm.I (Instr.Bary_load _ | Instr.Tary_load _) ->
      fail "module %s: table reads in uninstrumented code" obj.o_name
    | item -> [ item ]
  in
  let items = List.concat_map rewrite obj.o_items in
  if !next_site <> Array.length sites then
    fail "module %s: %d sites but %d indirect branches" obj.o_name
      (Array.length sites) !next_site;
  { obj with o_items = items; o_instrumented = true }
