(** The MCFI instrumentation pass (paper §5.2, Fig. 4, and §7).

    Rewrites a compiled module — {e separately}, without seeing any other
    module — so that:

    - every [Ret] becomes the pop/check/indirect-jump sequence of Fig. 4
      (the return address is popped first so a concurrent attacker cannot
      swap it between check and transfer);
    - every indirect call and indirect jump is preceded by the same check
      transaction, committing with the original branch;
    - the check sequence for site [k] reads its branch ID with
      [Bary_load (r13, k)] using the {e module-local} slot [k]; the loader
      re-bases slots when several modules share a process;
    - every indirect-branch target (function entries, jump-table targets,
      setjmp continuations) is 4-byte aligned by [Nop] padding, and call
      instructions are padded so that their return addresses are aligned —
      this is what keeps the Tary table at one slot per 4 bytes;
    - every store whose base is not the stack or frame pointer is rewritten
      to mask its effective address into the data sandbox
      ([Vmisa.Abi.sandbox_mask]), the MIP-style software fault isolation
      the paper adopts to protect the tables.

    Check sequences use only the reserved scratch registers r11-r13. *)

exception Error of string

(** [instrument ?sandbox obj] is the instrumented module.  [sandbox]
    (default [Mask], the x86-64 flavour) selects the write-confinement
    scheme: [Segment] omits the store masks because the platform's
    segmentation hardware bounds every access (the x86-32 flavour).
    Raises {!Error} if [obj] is already instrumented, or if its site list
    is inconsistent with its code (the codegen invariant is violated).

    [drop_check] is a sabotage hook for the fuzzing harness's self-test:
    the indirect branch at module-local site [k] is emitted {e raw},
    without its check transaction (the site record is kept, so slot
    numbering and counts are unchanged).  The verifier must reject the
    result — that rejection is what the harness asserts.  Never set it
    outside tests. *)
val instrument :
  ?sandbox:Vmisa.Abi.sandbox ->
  ?drop_check:int ->
  Mcfi_compiler.Objfile.t ->
  Mcfi_compiler.Objfile.t

(** The PLT entry for [symbol]: an already-instrumented item sequence whose
    check transaction reloads the branch target from the GOT slot on retry
    (paper §5.2, "Procedure Linkage Table").  The entry label is
    ["__plt_" ^ symbol], the GOT data symbol ["__got_" ^ symbol], and the
    embedded Bary slot is [slot] (module-local, re-based like the rest). *)
val plt_entry : symbol:string -> slot:int -> Vmisa.Asm.item list

(** [plt_label symbol] / [got_symbol symbol] naming helpers. *)
val plt_label : string -> string

val got_symbol : string -> string

(** Static code-size growth factor bookkeeping: [size_of_items items] is
    the layout size in bytes at base 0 (alignment included). *)
val size_of_items : Vmisa.Asm.item list -> int
