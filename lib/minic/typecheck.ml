open Ast

exception Error of string * Ast.loc

let fail loc msg = raise (Error (msg, loc))
let failf loc fmt = Printf.ksprintf (fail loc) fmt

type tinfo = {
  prog : Ast.program;
  env : Types.env;
  funcs : (string * Ast.func) list;
  protos : (string * Ast.fun_ty) list;
  globals : (string * Ast.ty * Ast.init option) list;
  address_taken : string list;
}

let intrinsics =
  [
    ("__syscall", { params = [ Tint ]; varargs = true; ret = Tint });
    ("__vararg", { params = [ Tint ]; varargs = false; ret = Tint });
    ("setjmp", { params = [ Tptr Tint ]; varargs = false; ret = Tint });
    ("longjmp", { params = [ Tptr Tint; Tint ]; varargs = false; ret = Tvoid });
  ]

type ctx = {
  env : Types.env;
  funcs : (string, func) Hashtbl.t;
  protos : (string, fun_ty) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;
  mutable scopes : (string, ty) Hashtbl.t list;
  mutable address_taken : string list;
  mutable in_loop : int;
  current_ret : ty;
}

let mark_address_taken ctx f =
  if not (List.mem f ctx.address_taken) then
    ctx.address_taken <- f :: ctx.address_taken

let find_var ctx name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some t -> Some t
      | None -> in_scopes rest)
  in
  match in_scopes ctx.scopes with
  | Some t -> Some t
  | None -> Hashtbl.find_opt ctx.globals name

let find_fun ctx name =
  match Hashtbl.find_opt ctx.funcs name with
  | Some f -> Some (fun_ty_of_func f)
  | None -> Hashtbl.find_opt ctx.protos name

let resolve ctx loc t =
  try Types.resolve ctx.env t
  with Types.Unknown_type name -> failf loc "unknown type %s" name

(* Layout check for a declared storage type.  [Types.resolve] only chases
   typedefs, so an undefined [struct s]/[union u] sails through it and
   [Types.sizeof] is where the missing definition surfaces — as an
   exception that must become a located type error, not a crash. *)
let sized ctx loc t =
  let t = resolve ctx loc t in
  (try ignore (Types.sizeof ctx.env t)
   with Types.Unknown_type name -> failf loc "unknown type %s" name);
  t

let is_scalar ctx loc t =
  match resolve ctx loc t with
  | Tint | Tchar | Tptr _ -> true
  | Tvoid | Tarray _ | Tfun _ | Tstruct _ | Tunion _ -> false
  | Tnamed _ -> assert false

(* Assignment compatibility: equal types, or any scalar-to-scalar pair (the
   C-with-warnings regime; Analyzer flags the function-pointer ones). *)
let assignable ctx loc ~dst ~src =
  Types.equal ctx.env dst src
  || (is_scalar ctx loc dst && is_scalar ctx loc src)

(* Decay arrays (and function designators) when used as rvalues. *)
let decay ctx loc t =
  match resolve ctx loc t with
  | Tarray (elt, _) -> Tptr elt
  | Tfun ft -> Tptr (Tfun ft)
  | t -> t

let composite_fields ctx loc t =
  match resolve ctx loc t with
  | Tstruct name -> (
    match Types.struct_fields ctx.env name with
    | Some fields -> fields
    | None -> failf loc "unknown struct %s" name)
  | Tunion name -> (
    match Types.union_fields ctx.env name with
    | Some fields -> fields
    | None -> failf loc "unknown union %s" name)
  | t -> failf loc "field access on non-struct type %s" (ty_to_string t)

(* [lv e] is the object type of an lvalue expression (no decay). *)
let rec lv ctx e =
  let loc = e.eloc in
  let t =
    match e.edesc with
    | Evar name -> begin
      match find_var ctx name with
      | Some t -> t
      | None -> failf loc "not an lvalue: %s" name
    end
    | Ederef inner -> begin
      match resolve ctx loc (rv ctx inner) with
      | Tptr t -> t
      | t -> failf loc "dereferencing non-pointer type %s" (ty_to_string t)
    end
    | Eindex (arr, idx) -> begin
      let ta = rv ctx arr in
      let ti = rv ctx idx in
      if not (is_scalar ctx loc ti) then fail loc "array index must be scalar";
      match resolve ctx loc ta with
      | Tptr t -> t
      | t -> failf loc "indexing non-pointer type %s" (ty_to_string t)
    end
    | Efield (inner, f) -> begin
      let tobj = lv ctx inner in
      match Types.field_offset ctx.env (composite_fields ctx loc tobj) f with
      | Some (_, ft) -> ft
      | None -> failf loc "no field %s" f
    end
    | Earrow (inner, f) -> begin
      let tp = rv ctx inner in
      match resolve ctx loc tp with
      | Tptr tobj -> begin
        match
          Types.field_offset ctx.env (composite_fields ctx loc tobj) f
        with
        | Some (_, ft) -> ft
        | None -> failf loc "no field %s" f
      end
      | t -> failf loc "-> on non-pointer type %s" (ty_to_string t)
    end
    | Eint _ | Echar _ | Estr _ | Eunop _ | Ebinop _ | Eassign _ | Econd _
    | Ecall _ | Ecast _ | Eaddr _ | Esizeof _ ->
      fail loc "expression is not an lvalue"
  in
  e.ety <- t;
  t

(* [rv e] is the rvalue type of [e]; fills [e.ety]. *)
and rv ctx e =
  let loc = e.eloc in
  let t =
    match e.edesc with
    | Eint _ -> Tint
    | Echar _ -> Tchar
    | Estr _ -> Tptr Tchar
    | Evar name -> begin
      match find_var ctx name with
      | Some t -> decay ctx loc t
      | None -> begin
        match find_fun ctx name with
        | Some ft ->
          (* function designator decays to a pointer: address taken *)
          mark_address_taken ctx name;
          Tptr (Tfun ft)
        | None -> failf loc "unbound identifier %s" name
      end
    end
    | Eunop ((Neg | Bitnot), inner) -> begin
      match resolve ctx loc (rv ctx inner) with
      | Tint | Tchar -> Tint
      | t -> failf loc "arithmetic on non-integer type %s" (ty_to_string t)
    end
    | Eunop (Lognot, inner) ->
      if not (is_scalar ctx loc (rv ctx inner)) then
        fail loc "! on non-scalar";
      Tint
    | Ebinop (op, a, b) -> binop_ty ctx loc op a b
    | Eassign (lhs, rhs) ->
      let tl = lv ctx lhs in
      let tr = rv ctx rhs in
      let tl_r = resolve ctx loc tl in
      (match tl_r with
      | Tarray _ | Tfun _ | Tstruct _ | Tunion _ | Tvoid ->
        failf loc "cannot assign to type %s" (ty_to_string tl)
      | _ -> ());
      if not (assignable ctx loc ~dst:tl_r ~src:tr) then
        failf loc "incompatible assignment: %s <- %s" (ty_to_string tl)
          (ty_to_string tr);
      tl_r
    | Econd (c, a, b) ->
      if not (is_scalar ctx loc (rv ctx c)) then
        fail loc "condition must be scalar";
      let ta = rv ctx a in
      let tb = rv ctx b in
      if not (assignable ctx loc ~dst:ta ~src:tb) then
        failf loc "mismatched ?: branches: %s vs %s" (ty_to_string ta)
          (ty_to_string tb);
      ta
    | Ecall (callee, args) -> call_ty ctx loc callee args
    | Ecast (t, inner) ->
      let tsrc = rv ctx inner in
      let tdst = resolve ctx loc t in
      (match tdst with
      | Tvoid -> () (* discarding cast *)
      | _ when is_scalar ctx loc tdst && is_scalar ctx loc tsrc -> ()
      | _ ->
        failf loc "invalid cast from %s to %s" (ty_to_string tsrc)
          (ty_to_string t));
      t
    | Eaddr inner -> begin
      match inner.edesc with
      | Evar name when find_var ctx name = None -> begin
        match find_fun ctx name with
        | Some ft ->
          mark_address_taken ctx name;
          inner.ety <- Tfun ft;
          Tptr (Tfun ft)
        | None -> failf loc "unbound identifier %s" name
      end
      | _ -> Tptr (lv ctx inner)
    end
    | Ederef _ | Efield _ | Earrow _ | Eindex _ -> decay ctx loc (lv ctx e)
    | Esizeof t ->
      ignore (sized ctx loc t);
      Tint
  in
  e.ety <- t;
  t

and binop_ty ctx loc op a b =
  let ta = resolve ctx loc (rv ctx a) in
  let tb = resolve ctx loc (rv ctx b) in
  let arith () =
    match (ta, tb) with
    | (Tint | Tchar), (Tint | Tchar) -> Tint
    | _ ->
      failf loc "arithmetic on %s and %s" (ty_to_string ta) (ty_to_string tb)
  in
  match op with
  | Add -> begin
    match (ta, tb) with
    | Tptr _, (Tint | Tchar) -> ta
    | (Tint | Tchar), Tptr _ -> tb
    | _ -> arith ()
  end
  | Sub -> begin
    match (ta, tb) with
    | Tptr _, (Tint | Tchar) -> ta
    | Tptr x, Tptr y when Types.equal ctx.env x y -> Tint
    | _ -> arith ()
  end
  | Mul | Div | Mod | Band | Bor | Bxor | Shl | Shr -> arith ()
  | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor ->
    if not (is_scalar ctx loc ta) then
      failf loc "comparison on non-scalar %s" (ty_to_string ta);
    if not (is_scalar ctx loc tb) then
      failf loc "comparison on non-scalar %s" (ty_to_string tb);
    Tint

and call_ty ctx loc callee args =
  let ft =
    match callee.edesc with
    | Evar name when find_var ctx name = None -> begin
      match find_fun ctx name with
      | Some ft ->
        callee.ety <- Tfun ft;
        ft
      | None -> failf loc "call to undeclared function %s" name
    end
    | _ -> begin
      match resolve ctx loc (rv ctx callee) with
      | Tptr inner -> begin
        match resolve ctx loc inner with
        | Tfun ft -> ft
        | t -> failf loc "call through non-function pointer %s" (ty_to_string t)
      end
      | Tfun ft -> ft
      | t -> failf loc "call of non-function type %s" (ty_to_string t)
    end
  in
  let nfixed = List.length ft.params in
  let nargs = List.length args in
  if nargs < nfixed then failf loc "too few arguments: %d < %d" nargs nfixed;
  if nargs > nfixed && not ft.varargs then
    failf loc "too many arguments: %d > %d" nargs nfixed;
  List.iteri
    (fun i arg ->
      let targ = rv ctx arg in
      if i < nfixed then begin
        let tparam = List.nth ft.params i in
        if not (assignable ctx loc ~dst:(resolve ctx loc tparam) ~src:targ)
        then
          failf loc "argument %d: expected %s, got %s" (i + 1)
            (ty_to_string tparam) (ty_to_string targ)
      end
      else if not (is_scalar ctx loc targ) then
        failf loc "variadic argument %d must be scalar" (i + 1))
    args;
  ft.ret

let rec check_stmt ctx s =
  let loc = s.sloc in
  match s.sdesc with
  | Sexpr e -> ignore (rv ctx e)
  | Sdecl (t, name, init) -> begin
    ignore (sized ctx loc t);
    (match init with
    | Some e ->
      let te = rv ctx e in
      if not (assignable ctx loc ~dst:(resolve ctx loc t) ~src:te) then
        failf loc "incompatible initializer for %s: %s" name (ty_to_string te)
    | None -> ());
    match ctx.scopes with
    | scope :: _ -> Hashtbl.replace scope name t
    | [] -> assert false
  end
  | Sif (cond, then_, else_) ->
    if not (is_scalar ctx loc (rv ctx cond)) then
      fail loc "if condition must be scalar";
    in_scope ctx (fun () -> check_stmt ctx then_);
    Option.iter (fun s -> in_scope ctx (fun () -> check_stmt ctx s)) else_
  | Swhile (cond, body) ->
    if not (is_scalar ctx loc (rv ctx cond)) then
      fail loc "while condition must be scalar";
    in_loop ctx (fun () -> in_scope ctx (fun () -> check_stmt ctx body))
  | Sfor (init, cond, step, body) ->
    in_scope ctx (fun () ->
        Option.iter (check_stmt ctx) init;
        Option.iter
          (fun c ->
            if not (is_scalar ctx loc (rv ctx c)) then
              fail loc "for condition must be scalar")
          cond;
        Option.iter (fun e -> ignore (rv ctx e)) step;
        in_loop ctx (fun () -> in_scope ctx (fun () -> check_stmt ctx body)))
  | Sreturn None ->
    if ctx.current_ret <> Tvoid then fail loc "return without a value"
  | Sreturn (Some e) ->
    let te = rv ctx e in
    if ctx.current_ret = Tvoid then fail loc "return with a value in void function";
    if not (assignable ctx loc ~dst:(resolve ctx loc ctx.current_ret) ~src:te)
    then
      failf loc "return type mismatch: expected %s, got %s"
        (ty_to_string ctx.current_ret) (ty_to_string te)
  | Sblock body -> in_scope ctx (fun () -> List.iter (check_stmt ctx) body)
  | Sbreak | Scontinue ->
    if ctx.in_loop = 0 then fail loc "break/continue outside a loop"
  | Sswitch (scrutinee, cases, default) ->
    (match resolve ctx loc (rv ctx scrutinee) with
    | Tint | Tchar -> ()
    | t -> failf loc "switch on non-integer type %s" (ty_to_string t));
    let seen = Hashtbl.create 8 in
    List.iter
      (fun { cvalues; cbody } ->
        List.iter
          (fun v ->
            if Hashtbl.mem seen v then failf loc "duplicate case %d" v;
            Hashtbl.add seen v ())
          cvalues;
        in_loop ctx (fun () ->
            in_scope ctx (fun () -> List.iter (check_stmt ctx) cbody)))
      cases;
    Option.iter
      (fun body ->
        in_loop ctx (fun () ->
            in_scope ctx (fun () -> List.iter (check_stmt ctx) body)))
      default

and in_scope ctx f =
  ctx.scopes <- Hashtbl.create 8 :: ctx.scopes;
  Fun.protect ~finally:(fun () -> ctx.scopes <- List.tl ctx.scopes) f

and in_loop ctx f =
  ctx.in_loop <- ctx.in_loop + 1;
  Fun.protect ~finally:(fun () -> ctx.in_loop <- ctx.in_loop - 1) f

let check ?(extra_programs = []) prog =
  let env = Types.of_programs (prog :: extra_programs) in
  let funcs = Hashtbl.create 16 in
  let protos = Hashtbl.create 16 in
  let globals = Hashtbl.create 16 in
  List.iter (fun (name, ft) -> Hashtbl.replace protos name ft) intrinsics;
  (* First pass: collect top-level names so forward references work. *)
  List.iter
    (function
      | Dfun f ->
        if Hashtbl.mem funcs f.fname then
          failf f.floc "duplicate definition of %s" f.fname;
        Hashtbl.replace funcs f.fname f
      | Dextern_fun (name, ft) -> Hashtbl.replace protos name ft
      | Dextern_var (name, t) | Dglobal (t, name, _) ->
        Hashtbl.replace globals name t
      | Dstruct _ | Dunion _ | Dtypedef _ -> ())
    prog.pdecls;
  let base_ctx current_ret =
    {
      env;
      funcs;
      protos;
      globals;
      scopes = [];
      address_taken = [];
      in_loop = 0;
      current_ret;
    }
  in
  let address_taken = ref [] in
  let global_inits = ref [] in
  (* Second pass: check bodies and global initializers. *)
  List.iter
    (function
      | Dfun f ->
        let ctx = base_ctx f.fret in
        let params = Hashtbl.create 8 in
        List.iter (fun (name, t) -> Hashtbl.replace params name t) f.fparams;
        ctx.scopes <- [ params ];
        in_scope ctx (fun () -> List.iter (check_stmt ctx) f.fbody);
        address_taken := ctx.address_taken @ !address_taken
      | Dglobal (t, name, init) ->
        let ctx = base_ctx Tvoid in
        ignore (sized ctx no_loc t);
        (match init with
        | Some (Iexpr e) ->
          let te = rv ctx e in
          if
            not
              (assignable ctx no_loc ~dst:(resolve ctx no_loc t) ~src:te)
          then
            failf no_loc "incompatible initializer for global %s" name
        | Some (Ilist es) -> List.iter (fun e -> ignore (rv ctx e)) es
        | None -> ());
        address_taken := ctx.address_taken @ !address_taken;
        global_inits := (name, t, init) :: !global_inits
      | Dextern_fun _ | Dextern_var _ | Dstruct _ | Dunion _ | Dtypedef _ ->
        ())
    prog.pdecls;
  let dedup xs =
    List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs
  in
  {
    prog;
    env;
    funcs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) funcs [];
    protos = Hashtbl.fold (fun k v acc -> (k, v) :: acc) protos [];
    globals = List.rev !global_inits;
    address_taken = dedup !address_taken;
  }

let fun_ty_of (info : tinfo) name =
  match List.assoc_opt name info.funcs with
  | Some f -> Some (fun_ty_of_func f)
  | None -> List.assoc_opt name info.protos
