(* The fuzzer's program representation.

   A spec is not an AST: it is a small recipe — module counts, feature
   switches, per-function seeds — from which [render] deterministically
   expands a well-typed-by-construction multi-module MiniC program.
   Mutations and the shrinker edit the recipe, never the AST, so every
   candidate the fuzzer builds stays well-formed: dropping a worker cannot
   leave a dangling call, because callees are re-chosen from the surviving
   pool when each body is re-expanded from its unchanged per-function seed.

   Determinism rules baked into the expansion (the observational-
   equivalence oracle compares an instrumented against an uninstrumented
   build, so outputs must not depend on code layout):
   - only integer arithmetic over parameters, constants and locals is ever
     printed — no pointer-derived values;
   - every memory cell is written before it is read;
   - loops run for bounded, spec-determined iteration counts;
   - an executed indirect call always goes through a pointer whose static
     type equals the target's definition type (cast corridors detour
     through [char *] but land back on the correct type);
   - division/modulus only by nonzero constants, array indexing only by
     masked loop counters. *)

open Minic.Ast
module Prng = Mcfi_util.Prng

(* ---------- the recipe ---------- *)

type fsig = Sii | Siii | Svar | Sci

type mloc = Mstatic of int | Mdyn of int

(* Workers are the leaf tier: no function-pointer parameters, no indirect
   calls, direct calls only to lower-indexed workers (a DAG, so the program
   terminates).  All workers live in static modules.  The list index is
   the worker's identity. *)
type worker = { w_sig : fsig; w_mod : int; w_seed : int }

(* Drivers build function-pointer locals over workers of their signature
   and call through them; they may live in dynamic modules. *)
type driver = {
  d_mod : mloc;
  d_sig : fsig;
  d_seed : int;
  d_cast : bool;    (* route one pointer through a char* cast corridor *)
  d_struct : bool;  (* call through a struct's function-pointer field *)
  d_switch : bool;  (* dense switch over the accumulator *)
}

type t = {
  sp_nstatic : int;  (* auxiliary static modules beyond "main" *)
  sp_ndyn : int;     (* dynamic (dlopen-loaded) modules *)
  sp_structs : bool;
  sp_union : bool;
  sp_typedef : bool;
  sp_setjmp : bool;
  sp_global_fp : bool;  (* global fptr array with a static initializer *)
  sp_body : int;        (* body-richness knob, 0..2 *)
  sp_prints : int;
  sp_main_seed : int;
  sp_workers : worker list;
  sp_drivers : driver list;
  sp_dyn_order : int list;  (* dlopen order: permutation of 0..sp_ndyn-1 *)
}

(* ---------- AST shorthand ---------- *)

let e d = mk_expr d
let ei n = e (Eint n)
let ev v = e (Evar v)
let ebin op a b = e (Ebinop (op, a, b))
let eassign l r = e (Eassign (l, r))
let ecall f args = e (Ecall (ev f, args))
let eidx a i = e (Eindex (a, i))
let stmt d = { sdesc = d; sloc = no_loc }
let sx ed = stmt (Sexpr ed)
let sdecl t n = stmt (Sdecl (t, n, None))
let sret ed = stmt (Sreturn (Some ed))
let sset v ed = sx (eassign (ev v) ed)
let sadd v ed = sset v (ebin Add (ev v) ed)

(* for (i = 0; i < bound; i = i + 1) { body } *)
let sfor i bound body =
  stmt
    (Sfor
       ( Some (sx (eassign (ev i) (ei 0))),
         Some (ebin Lt (ev i) bound),
         Some (eassign (ev i) (ebin Add (ev i) (ei 1))),
         stmt (Sblock body) ))

(* ---------- signatures ---------- *)

let fun_ty_of = function
  | Sii -> { params = [ Tint ]; varargs = false; ret = Tint }
  | Siii -> { params = [ Tint; Tint ]; varargs = false; ret = Tint }
  | Svar -> { params = [ Tint ]; varargs = true; ret = Tint }
  | Sci -> { params = [ Tchar ]; varargs = false; ret = Tint }

let fptr_ty s = Tptr (Tfun (fun_ty_of s))

let params_of = function
  | Sii -> [ ("a", Tint) ]
  | Siii -> [ ("a", Tint); ("b", Tint) ]
  | Svar -> [ ("n", Tint) ]
  | Sci -> [ ("c", Tchar) ]

let typedef_name = function
  | Sii -> "fpt_ii"
  | Siii -> "fpt_iii"
  | Svar -> "fpt_va"
  | Sci -> "fpt_ci"

let all_sigs = [ Sii; Siii; Svar; Sci ]
let worker_name k = Printf.sprintf "w%d" k
let driver_name k = Printf.sprintf "drv%d" k
let dyn_name j = Printf.sprintf "dyn%d" j

let aux_name i = Printf.sprintf "aux%d" i

(* ---------- random expressions ----------

   Every PRNG draw is let-bound before use so the draw order is the
   program order, not OCaml's (unspecified) argument-evaluation order. *)

let binops = [ Add; Sub; Mul; Band; Bxor; Bor ]

let ratom rng atoms =
  let use_const = atoms = [] || Prng.bool rng in
  if use_const then
    let c = Prng.int rng 60 - 9 in
    ei c
  else
    let v = Prng.choose rng atoms in
    ev v

let rec rexpr rng atoms depth =
  let leaf = depth <= 0 || Prng.int rng 5 < 2 in
  if leaf then ratom rng atoms
  else
    let op = Prng.choose rng binops in
    let a = rexpr rng atoms (depth - 1) in
    let b = rexpr rng atoms (depth - 1) in
    ebin op a b

(* Arguments for a call to a function of signature [s]; kept shallow so
   the whole call statement stays under the codegen register budget. *)
let args_for rng atoms s =
  match s with
  | Sii ->
    let a1 = rexpr rng atoms 1 in
    [ a1 ]
  | Siii ->
    let a1 = rexpr rng atoms 1 in
    let a2 = ratom rng atoms in
    [ a1; a2 ]
  | Sci ->
    let a1 = ratom rng atoms in
    [ e (Ecast (Tchar, a1)) ]
  | Svar ->
    let extra = 1 + Prng.int rng 2 in
    let rec build k acc =
      if k = 0 then List.rev acc
      else
        let a = ratom rng atoms in
        build (k - 1) (a :: acc)
    in
    ei extra :: build extra []

(* ---------- workers ---------- *)

(* [lower]: surviving workers with a smaller index, as (name, sig). *)
let worker_func sp k (w : worker) ~lower =
  let rng = Prng.create (Int64.of_int w.w_seed) in
  let refs = ref [] in
  let body =
    match w.w_sig with
    | Svar ->
      (* sum the varargs: the canonical promotion/offset exercise *)
      let c = 1 + Prng.int rng 9 in
      [
        sdecl Tint "s";
        sdecl Tint "i";
        sset "s" (ei 0);
        sfor "i" (ev "n") [ sadd "s" (ecall "__vararg" [ ev "i" ]) ];
        sret (ebin Add (ev "s") (ei c));
      ]
    | (Sii | Siii | Sci) as s ->
      let base_atoms = List.map fst (params_of s) in
      let decls = ref [ sdecl Tint "x"; sdecl Tint "i" ] in
      let stmts = ref [] in
      let push st = stmts := st :: !stmts in
      let init = rexpr rng base_atoms 2 in
      push (sset "x" init);
      let atoms = "x" :: base_atoms in
      let rich = sp.sp_body in
      let use_arr = rich > 0 && Prng.int rng 3 = 0 in
      if use_arr then decls := !decls @ [ sdecl (Tarray (Tint, 4)) "arr" ];
      let bound = if rich = 0 then 2 else 2 + Prng.int rng 4 in
      let loop_atoms = "i" :: atoms in
      let first = rexpr rng loop_atoms 2 in
      let loop_body = ref [ sadd "x" first ] in
      if use_arr then begin
        let c = Prng.int rng 9 in
        let slot () = eidx (ev "arr") (ebin Band (ev "i") (ei 3)) in
        loop_body :=
          !loop_body
          @ [
              sx (eassign (slot ()) (ebin Add (ev "x") (ei c)));
              sadd "x" (slot ());
            ]
      end;
      push (sfor "i" (ei bound) !loop_body);
      let use_addr = rich > 0 && Prng.int rng 3 = 0 in
      if use_addr then begin
        decls := !decls @ [ sdecl Tint "y"; sdecl (Tptr Tint) "p" ];
        let c1 = Prng.int rng 20 in
        let c2 = 1 + Prng.int rng 5 in
        push (sset "y" (ei c1));
        push (sx (eassign (ev "p") (e (Eaddr (ev "y")))));
        push
          (sx
             (eassign
                (e (Ederef (ev "p")))
                (ebin Add (e (Ederef (ev "p"))) (ei c2))));
        push (sadd "x" (ev "y"))
      end;
      let use_switch = rich > 1 && Prng.int rng 3 = 0 in
      if use_switch then begin
        let case v =
          let c = 1 + Prng.int rng 9 in
          { cvalues = [ v ]; cbody = [ sadd "x" (ei c) ] }
        in
        let c0 = case 0 in
        let c1 = case 1 in
        let c2 = case 2 in
        push
          (stmt
             (Sswitch
                ( ebin Band (ev "x") (ei 3),
                  [ c0; c1; c2 ],
                  Some [ sadd "x" (ei 1) ] )))
      end;
      let use_call = lower <> [] && Prng.int rng 2 = 0 in
      if use_call then begin
        let callee, csig = Prng.choose rng lower in
        refs := callee :: !refs;
        let args = args_for rng atoms csig in
        push (sadd "x" (ecall callee args))
      end;
      let c = Prng.int rng 50 in
      push (sret (ebin Bxor (ev "x") (ei c)));
      !decls @ List.rev !stmts
  in
  let f =
    {
      fname = worker_name k;
      fparams = params_of w.w_sig;
      fvarargs = w.w_sig = Svar;
      fret = Tint;
      fbody = body;
      floc = no_loc;
    }
  in
  (f, !refs)

(* ---------- drivers ---------- *)

type features = {
  f_structs : bool;
  f_union : bool;
  f_typedef : bool;
  f_sii : string option;  (* a worker of signature Sii, if any survives *)
}

let shuffle rng xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

let driver_func sp k (d : driver) ~workers ~features =
  let rng = Prng.create (Int64.of_int d.d_seed) in
  let refs = ref [] in
  let targets =
    List.filter_map
      (fun (i, w) -> if w.w_sig = d.d_sig then Some (worker_name i) else None)
      workers
  in
  let body =
    if targets = [] then
      let c = 1 + Prng.int rng 9 in
      [ sret (ebin Add (ev "a") (ei c)) ]
    else begin
      let chosen = take (1 + Prng.int rng 3) (shuffle rng targets) in
      let kk = List.length chosen in
      let fty = fptr_ty d.d_sig in
      let decls = ref [ sdecl (Tarray (fty, kk)) "fp"; sdecl Tint "s" ] in
      let stmts = ref [] in
      let push st = stmts := st :: !stmts in
      List.iteri
        (fun j wname ->
          refs := wname :: !refs;
          let rhs =
            if d.d_cast && j = 0 then
              (* the K1/K2 cast corridor: detour through char*, land back
                 on the exact type, so the executed call stays benign *)
              e
                (Ecast
                   ( Tnamed (typedef_name d.d_sig),
                     e (Ecast (Tptr Tchar, ev wname)) ))
            else ev wname
          in
          push (sx (eassign (eidx (ev "fp") (ei j)) rhs)))
        chosen;
      push (sset "s" (ev "a"));
      let bound = 3 + Prng.int rng 4 in
      let args = args_for rng [ "i"; "a" ] d.d_sig in
      decls := !decls @ [ sdecl Tint "i" ];
      push
        (sfor "i" (ei bound)
           [
             sadd "s"
               (e (Ecall (eidx (ev "fp") (ebin Mod (ev "i") (ei kk)), args)));
           ]);
      let use_typedef =
        let draw = Prng.bool rng in
        features.f_typedef && d.d_sig = Sii && draw
      in
      if use_typedef then begin
        decls := !decls @ [ sdecl (Tnamed "fpt_ii") "q" ];
        let w = Prng.choose rng targets in
        refs := w :: !refs;
        let c = Prng.int rng 20 in
        push (sx (eassign (ev "q") (ev w)));
        push (sadd "s" (ecall "q" [ ei c ]))
      end;
      (match features.f_sii with
      | Some w when d.d_struct && features.f_structs ->
        decls := !decls @ [ sdecl (Tstruct "s0") "v" ];
        refs := w :: !refs;
        let c = Prng.int rng 30 in
        push (sx (eassign (e (Efield (ev "v", "a"))) (ei c)));
        push (sx (eassign (e (Efield (ev "v", "fp"))) (ev w)));
        push
          (sadd "s"
             (e (Ecall (e (Efield (ev "v", "fp")), [ e (Efield (ev "v", "a")) ]))));
        let use_arrow = Prng.bool rng in
        if use_arrow then begin
          decls := !decls @ [ sdecl (Tptr (Tstruct "s0")) "pv" ];
          push (sx (eassign (ev "pv") (e (Eaddr (ev "v")))));
          push (sadd "s" (e (Earrow (ev "pv", "a"))))
        end;
        let use_nested = sp.sp_body > 0 && Prng.bool rng in
        if use_nested then begin
          decls := !decls @ [ sdecl (Tstruct "s1") "t1" ];
          let c = Prng.int rng 15 in
          push
            (sx
               (eassign (e (Efield (e (Efield (ev "t1", "inner")), "a"))) (ei c)));
          push (sadd "s" (e (Efield (e (Efield (ev "t1", "inner")), "a"))))
        end
      | _ -> ());
      let use_union =
        let draw = Prng.bool rng in
        features.f_union && draw
      in
      if use_union then begin
        decls := !decls @ [ sdecl (Tunion "u0") "u" ];
        let c = Prng.int rng 40 in
        push (sx (eassign (e (Efield (ev "u", "i"))) (ei c)));
        push (sadd "s" (e (Efield (ev "u", "i"))))
      end;
      let use_sizeof =
        let draw = Prng.bool rng in
        features.f_structs && draw
      in
      if use_sizeof then push (sadd "s" (e (Esizeof (Tstruct "s0"))));
      if d.d_switch then begin
        let case v =
          let c = 1 + Prng.int rng 9 in
          { cvalues = [ v ]; cbody = [ sadd "s" (ei c) ] }
        in
        let c0 = case 0 in
        let c1 = case 1 in
        let c2 = case 2 in
        push
          (stmt
             (Sswitch
                ( ebin Band (ev "s") (ei 3),
                  [ c0; c1; c2 ],
                  Some [ sadd "s" (ei 2) ] )))
      end;
      push (sret (ev "s"));
      !decls @ List.rev !stmts
    end
  in
  let f =
    {
      fname = driver_name k;
      fparams = [ ("a", Tint) ];
      fvarargs = false;
      fret = Tint;
      fbody = body;
      floc = no_loc;
    }
  in
  (f, !refs)

(* ---------- setjmp group (main module only) ---------- *)

let sj_deep_func =
  {
    fname = "sj_deep";
    fparams = [ ("x", Tint) ];
    fvarargs = false;
    fret = Tint;
    fbody =
      [
        stmt
          (Sif
             ( ebin Gt (ev "x") (ei 1),
               stmt (Sblock [ sx (ecall "longjmp" [ ev "jb"; ei 5 ]) ]),
               None ));
        sret (ev "x");
      ];
    floc = no_loc;
  }

let sj_entry_func =
  {
    fname = "sj_entry";
    fparams = [ ("x", Tint) ];
    fvarargs = false;
    fret = Tint;
    fbody =
      [
        sdecl Tint "r";
        stmt
          (Sif
             ( ecall "setjmp" [ ev "jb" ],
               stmt (Sblock [ sret (ebin Add (ei 40) (ev "x")) ]),
               None ));
        sx (eassign (ev "r") (ecall "sj_deep" [ ev "x" ]));
        sret (ebin Add (ev "r") (ei 1));
      ];
    floc = no_loc;
  }

(* ---------- main ---------- *)

let main_func sp ~dlopens ~driver_ids ~workers ~gops_ok =
  let rng = Prng.create (Int64.of_int sp.sp_main_seed) in
  let refs = ref [] in
  let stmts = ref [] in
  let push st = stmts := st :: !stmts in
  push (sset "s" (ei 0));
  List.iter (fun name -> push (sx (ecall "dlopen" [ e (Estr name) ]))) dlopens;
  if gops_ok then
    push
      (sfor "i" (ei 4)
         [
           sadd "s"
             (e (Ecall (eidx (ev "gops") (ebin Band (ev "i") (ei 1)), [ ev "i" ])));
         ]);
  if sp.sp_setjmp then begin
    refs := "sj_entry" :: !refs;
    push (sadd "s" (ecall "sj_entry" [ ei 0 ]));
    push (sadd "s" (ecall "sj_entry" [ ei 3 ]))
  end;
  List.iter
    (fun k ->
      refs := driver_name k :: !refs;
      let c = Prng.int rng 25 in
      push (sadd "s" (ecall (driver_name k) [ ei c ])))
    driver_ids;
  let ncalls = if workers = [] then 0 else 1 + Prng.int rng 2 in
  for _ = 1 to ncalls do
    let i, w = Prng.choose rng workers in
    refs := worker_name i :: !refs;
    let args = args_for rng [ "s" ] w.w_sig in
    push (sadd "s" (ecall (worker_name i) args))
  done;
  for p = 0 to sp.sp_prints - 1 do
    push (sx (ecall "printf" [ e (Estr "%d;"); ebin Add (ev "s") (ei p) ]))
  done;
  push (sret (ei 0));
  let f =
    {
      fname = "main";
      fparams = [];
      fvarargs = false;
      fret = Tint;
      fbody = [ sdecl Tint "s"; sdecl Tint "i" ] @ List.rev !stmts;
      floc = no_loc;
    }
  in
  (f, !refs)

(* ---------- module assembly ---------- *)

type rendered = {
  r_static : (string * string) list;   (* "main" first *)
  r_dynamic : (string * string) list;  (* in dlopen order *)
}

let libc_names = [ "dlopen"; "printf"; "puts"; "exit" ]

let static_slot sp j = if j >= 0 && j <= sp.sp_nstatic then j else 0

(* Where a driver actually lives after clamping against the current module
   counts (the shrinker lowers them without rewriting every driver). *)
let driver_slot sp d =
  match d.d_mod with
  | Mstatic j -> `Static (static_slot sp j)
  | Mdyn j when j >= 0 && j < sp.sp_ndyn -> `Dyn j
  | Mdyn _ -> `Static 0

let render (sp : t) : rendered =
  let workers = List.mapi (fun i w -> (i, w)) sp.sp_workers in
  let sii =
    List.find_map
      (fun (i, w) -> if w.w_sig = Sii then Some (worker_name i) else None)
      workers
  in
  let casts_used = List.exists (fun d -> d.d_cast) sp.sp_drivers in
  let typedefs_on = sp.sp_typedef || casts_used in
  let features =
    {
      f_structs = sp.sp_structs;
      f_union = sp.sp_union;
      f_typedef = typedefs_on;
      f_sii = sii;
    }
  in
  (* expand every function once, collecting its cross-references *)
  let worker_funcs =
    let rec go acc lower = function
      | [] -> List.rev acc
      | (i, w) :: rest ->
        let f, refs = worker_func sp i w ~lower in
        go ((i, w, f, refs) :: acc) (lower @ [ (worker_name i, w.w_sig) ]) rest
    in
    go [] [] workers
  in
  let driver_funcs =
    List.mapi
      (fun k d ->
        let f, refs = driver_func sp k d ~workers ~features in
        (k, d, f, refs))
      sp.sp_drivers
  in
  let gops_ok =
    sp.sp_global_fp
    && List.length (List.filter (fun (_, w) -> w.w_sig = Sii) workers) >= 2
  in
  (* dynamic modules that actually hold a driver, in dlopen order *)
  let dyn_live j =
    List.exists (fun (_, d, _, _) -> driver_slot sp d = `Dyn j) driver_funcs
  in
  let live_dyn = List.filter dyn_live sp.sp_dyn_order in
  let main_f, main_refs =
    main_func sp
      ~dlopens:(List.map dyn_name live_dyn)
      ~driver_ids:(List.map (fun (k, _, _, _) -> k) driver_funcs)
      ~workers ~gops_ok
  in
  (* name -> signature, for extern synthesis *)
  let fun_sigs =
    List.map (fun (i, w, _, _) -> (worker_name i, fun_ty_of w.w_sig)) worker_funcs
    @ List.map (fun (k, _, _, _) -> (driver_name k, fun_ty_of Sii)) driver_funcs
    @ [ ("sj_deep", fun_ty_of Sii); ("sj_entry", fun_ty_of Sii) ]
  in
  let prelude =
    (if sp.sp_structs then
       [
         Dstruct ("s0", [ ("a", Tint); ("b", Tint); ("fp", fptr_ty Sii) ]);
         Dstruct ("s1", [ ("x", Tint); ("inner", Tstruct "s0") ]);
       ]
     else [])
    @ (if sp.sp_union then [ Dunion ("u0", [ ("i", Tint); ("c", Tchar) ]) ]
       else [])
    @
    if typedefs_on then
      List.map (fun s -> Dtypedef (typedef_name s, fptr_ty s)) all_sigs
    else []
  in
  let module_of ~name ~funcs ~globals =
    let defined = List.map (fun (f, _) -> f.fname) funcs in
    let refs =
      List.concat_map snd funcs
      |> List.sort_uniq compare
      |> List.filter (fun r ->
             (not (List.mem r defined)) && not (List.mem r libc_names))
    in
    let externs =
      List.filter_map
        (fun r ->
          Option.map (fun ft -> Dextern_fun (r, ft)) (List.assoc_opt r fun_sigs))
        refs
    in
    let decls =
      prelude @ externs @ globals @ List.map (fun (f, _) -> Dfun f) funcs
    in
    (name, Minic.Pretty.to_string { pname = name; pdecls = decls })
  in
  let static_funcs i =
    List.filter_map
      (fun (_, w, f, refs) ->
        if static_slot sp w.w_mod = i then Some (f, refs) else None)
      worker_funcs
    @ List.filter_map
        (fun (_, d, f, refs) ->
          if driver_slot sp d = `Static i then Some (f, refs) else None)
        driver_funcs
  in
  (* the gops initializer takes function addresses, so its names count as
     refs of the main module for extern synthesis *)
  let gops_targets =
    if gops_ok then
      take 2
        (List.filter_map
           (fun (i, w) ->
             if w.w_sig = Sii then Some (worker_name i) else None)
           workers)
    else []
  in
  let main_globals =
    (if sp.sp_setjmp then [ Dglobal (Tarray (Tint, 4), "jb", None) ] else [])
    @
    if gops_ok then
      [
        Dglobal
          (Tarray (fptr_ty Sii, 2), "gops",
           Some (Ilist (List.map ev gops_targets)));
      ]
    else []
  in
  let main_funcs =
    static_funcs 0
    @ (if sp.sp_setjmp then
         [ (sj_deep_func, []); (sj_entry_func, [ "sj_deep" ]) ]
       else [])
    @ [ (main_f, main_refs @ gops_targets) ]
  in
  let statics =
    module_of ~name:"main" ~funcs:main_funcs ~globals:main_globals
    :: List.filter_map
         (fun i ->
           match static_funcs i with
           | [] -> None
           | funcs -> Some (module_of ~name:(aux_name i) ~funcs ~globals:[]))
         (List.init sp.sp_nstatic (fun i -> i + 1))
  in
  let dynamics =
    List.map
      (fun j ->
        let funcs =
          List.filter_map
            (fun (_, d, f, refs) ->
              if driver_slot sp d = `Dyn j then Some (f, refs) else None)
            driver_funcs
        in
        module_of ~name:(dyn_name j) ~funcs ~globals:[])
      live_dyn
  in
  { r_static = statics; r_dynamic = dynamics }

(* Total non-blank MiniC lines of a rendered program — the counterexample
   size metric the shrinker minimizes. *)
let line_count { r_static; r_dynamic } =
  List.fold_left
    (fun acc (_, src) ->
      List.fold_left
        (fun acc line -> if String.trim line = "" then acc else acc + 1)
        acc
        (String.split_on_char '\n' src))
    0
    (r_static @ r_dynamic)
