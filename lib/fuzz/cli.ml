(* The `mcfi fuzz` subcommand.

   Exposed as a [Cmdliner] term (plus the pure [mode_of] assembly) so the
   test suite can drive flag parsing through [Cmd.eval_value ~argv]
   without spawning a process. *)

open Cmdliner

type mode =
  | Fuzz of Driver.config
  | Replay of string list

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED"
         ~doc:"campaign seed; a failing run prints the iteration seed")

let iters_arg =
  Arg.(value & opt int 500 & info [ "iters"; "n" ] ~docv:"N"
         ~doc:"number of generated programs to run through the oracle bank")

let budget_arg =
  Arg.(value & opt float 0. & info [ "time-budget" ] ~docv:"SECONDS"
         ~doc:"stop after this much wall-clock time (0 = no budget)")

let corpus_arg =
  Arg.(value & opt string "corpus" & info [ "corpus" ] ~docv:"DIR"
         ~doc:"directory for shrunk counterexample files")

let drop_arg =
  Arg.(value & opt (some int) None & info [ "drop-check" ] ~docv:"K"
         ~doc:"self-test sabotage: the rewriter drops the check sequence at \
               module-local site K, which the oracle bank must catch")

let replay_arg =
  Arg.(value & opt_all string [] & info [ "replay" ] ~docv:"FILE"
         ~doc:"replay corpus $(docv) instead of fuzzing (repeatable)")

let mode_of seed iters budget corpus drop replay =
  match replay with
  | [] ->
    Fuzz
      {
        Driver.c_seed = seed;
        c_iters = iters;
        c_time_budget = budget;
        c_corpus_dir = Some corpus;
        c_drop_check = drop;
      }
  | files -> Replay files

let mode_term =
  Term.(const mode_of $ seed_arg $ iters_arg $ budget_arg $ corpus_arg
        $ drop_arg $ replay_arg)

let print_sources sources =
  List.iter
    (fun (name, src) ->
      Fmt.pr "--- %s ---@.%s" name src;
      if src = "" || src.[String.length src - 1] <> '\n' then Fmt.pr "@.")
    sources

let run_fuzz (cfg : Driver.config) =
  Fmt.pr "fuzz: seed=%Ld iters=%d%s@." cfg.Driver.c_seed cfg.Driver.c_iters
    (match cfg.Driver.c_drop_check with
    | Some k -> Printf.sprintf " drop-check=%d (sabotage self-test)" k
    | None -> "");
  let progress i =
    if (i + 1) mod 100 = 0 then Fmt.pr "  %d iterations...@." (i + 1)
  in
  let oc = Driver.run ~progress cfg in
  match oc.Driver.oc_failure with
  | None ->
    Fmt.pr "fuzz: %d iterations in %.1fs (%.1f/s), all oracles passed@."
      oc.Driver.oc_iters oc.Driver.oc_elapsed
      (float_of_int oc.Driver.oc_iters /. max 0.001 oc.Driver.oc_elapsed);
    0
  | Some rp ->
    let f = rp.Driver.rp_failure in
    Fmt.pr "fuzz: FAILURE at iteration %d (seed %Ld)@." rp.Driver.rp_iter
      rp.Driver.rp_seed;
    Fmt.pr "  oracle %d (%s): %s@." f.Oracle.f_oracle f.Oracle.f_name
      f.Oracle.f_msg;
    Fmt.pr "  shrunk counterexample: %d MiniC lines@." rp.Driver.rp_lines;
    (match rp.Driver.rp_file with
    | Some path -> Fmt.pr "  written to %s (replay: mcfi fuzz --replay %s)@." path path
    | None -> ());
    print_sources (rp.Driver.rp_static @ rp.Driver.rp_dynamic);
    1

let run_replay files =
  let bad = ref 0 in
  List.iter
    (fun path ->
      match Driver.replay_file path with
      | Ok Driver.Reproduced -> Fmt.pr "%s: reproduced@." path
      | Ok Driver.Fixed -> Fmt.pr "%s: fixed (bank passes now)@." path
      | Ok (Driver.Different f) ->
        incr bad;
        Fmt.pr "%s: DIFFERENT failure: oracle %d (%s): %s@." path
          f.Oracle.f_oracle f.Oracle.f_name f.Oracle.f_msg
      | Error msg ->
        incr bad;
        Fmt.pr "%s: unreadable: %s@." path msg)
    files;
  if !bad > 0 then 1 else 0

let main = function
  | Fuzz cfg -> run_fuzz cfg
  | Replay files -> run_replay files

let cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"property-based fuzzing of the whole pipeline against the \
             differential oracle bank (equivalence, verifier, incremental \
             CFG, precision, faults)")
    Term.(const main $ mode_term)
