(* Typed mutation passes over specs (ISSUE: "add a cast site, take an
   address, split a module boundary, reorder dlopen order").

   Mutations edit the recipe, so the result is still well-formed by
   construction; [apply] runs a small random number of them after
   generation, which is how the fuzzer reaches programs the plain
   generator's distribution would rarely produce. *)

module Prng = Mcfi_util.Prng
open Spec

let nth_map k f xs = List.mapi (fun i x -> if i = k then f x else x) xs

(* Turn one driver's first pointer assignment into a char* cast corridor. *)
let add_cast rng sp =
  match sp.sp_drivers with
  | [] -> sp
  | ds ->
    let k = Prng.int rng (List.length ds) in
    { sp with sp_drivers = nth_map k (fun d -> { d with d_cast = true }) ds }

(* Take more addresses: the global fptr array (a static-initializer
   address-taking) or a driver's struct-field corridor. *)
let take_address rng sp =
  if Prng.bool rng || sp.sp_drivers = [] then { sp with sp_global_fp = true }
  else
    let k = Prng.int rng (List.length sp.sp_drivers) in
    {
      sp with
      sp_structs = true;
      sp_drivers =
        nth_map k (fun d -> { d with d_struct = true }) sp.sp_drivers;
    }

(* Split a module boundary: move one main-module driver into a fresh
   auxiliary static module, so its indirect calls cross modules. *)
let split_module rng sp =
  let candidates =
    List.mapi (fun i d -> (i, d)) sp.sp_drivers
    |> List.filter (fun (_, d) -> d.d_mod = Mstatic 0)
  in
  match candidates with
  | [] -> sp
  | cs ->
    let k, _ = Prng.choose rng cs in
    let fresh = sp.sp_nstatic + 1 in
    {
      sp with
      sp_nstatic = fresh;
      sp_drivers =
        nth_map k (fun d -> { d with d_mod = Mstatic fresh }) sp.sp_drivers;
    }

let reorder_dlopen rng sp =
  if sp.sp_ndyn < 2 then sp
  else { sp with sp_dyn_order = shuffle rng sp.sp_dyn_order }

(* ---- corruptibility mutations (the redteam campaign's knobs) ----

   The attack surface the redteam search explores is made of sites
   whose branch operand transits attacker-writable memory; these
   mutations steer generation toward programs with more of them. *)

(* Materialize the writable function-pointer cell: the global fptr
   array (and the two same-typed workers its initializer needs), the
   one icall operand that lives in corruptible static data. *)
let widen_corruptible rng sp =
  let workers =
    let n_sii = List.length (List.filter (fun w -> w.w_sig = Sii) sp.sp_workers)
    in
    if n_sii >= 2 then sp.sp_workers
    else
      List.mapi
        (fun i w -> if i < 2 then { w with w_sig = Sii } else w)
        sp.sp_workers
  in
  ignore rng;
  { sp with sp_global_fp = true; sp_workers = workers }

(* More live return sites: deepen call structure so diverted returns
   have more in-class landing pads to chain through. *)
let deepen_returns rng sp =
  { sp with sp_body = 2; sp_prints = max sp.sp_prints (1 + Prng.int rng 2) }

let mutations =
  [ add_cast; take_address; split_module; reorder_dlopen; widen_corruptible;
    deepen_returns ]

(* [apply rng sp] runs 0-2 random mutations. *)
let apply rng sp =
  let n = Prng.int rng 3 in
  let rec go n sp =
    if n = 0 then sp
    else
      let m = Prng.choose rng mutations in
      go (n - 1) (m rng sp)
  in
  go n sp
