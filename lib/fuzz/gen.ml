(* Random spec generation.

   Everything is drawn from one [Prng.t]; equal seeds give equal specs.
   The first two workers are always of signature [Sii] so the global
   function-pointer array and the struct field corridor always have
   targets available. *)

module Prng = Mcfi_util.Prng
open Spec

let fresh_seed rng = Prng.int rng 0x3FFFFFFF

let random_sig rng =
  match Prng.int rng 10 with
  | 0 | 1 | 2 | 3 -> Sii
  | 4 | 5 -> Siii
  | 6 | 7 -> Svar
  | _ -> Sci

let permutation rng n = shuffle rng (List.init n (fun j -> j))

let generate rng : Spec.t =
  let nstatic = Prng.int rng 3 in
  let ndyn = Prng.int rng 3 in
  let nworkers = 3 + Prng.int rng 4 in
  let workers =
    let rec go k acc =
      if k = nworkers then List.rev acc
      else
        let s = if k < 2 then Sii else random_sig rng in
        let m = Prng.int rng (nstatic + 1) in
        let seed = fresh_seed rng in
        go (k + 1) ({ w_sig = s; w_mod = m; w_seed = seed } :: acc)
    in
    go 0 []
  in
  let worker_sigs = List.sort_uniq compare (List.map (fun w -> w.w_sig) workers) in
  let ndrivers = 1 + Prng.int rng 3 in
  let drivers =
    let rec go k acc =
      if k = ndrivers then List.rev acc
      else
        let s = Prng.choose rng worker_sigs in
        let m =
          let pick = Prng.int rng (1 + nstatic + ndyn) in
          if pick <= nstatic then Mstatic pick else Mdyn (pick - nstatic - 1)
        in
        let seed = fresh_seed rng in
        let cast = Prng.int rng 3 = 0 in
        let str = Prng.int rng 3 = 0 in
        let sw = Prng.int rng 3 = 0 in
        go (k + 1)
          ({
             d_mod = m;
             d_sig = s;
             d_seed = seed;
             d_cast = cast;
             d_struct = str;
             d_switch = sw;
           }
          :: acc)
    in
    go 0 []
  in
  let structs = Prng.int rng 3 > 0 in
  let union = Prng.bool rng in
  let typedef = Prng.bool rng in
  let setjmp = Prng.int rng 3 = 0 in
  let global_fp = Prng.int rng 3 = 0 in
  let body = Prng.int rng 3 in
  let prints = 1 + Prng.int rng 2 in
  let main_seed = fresh_seed rng in
  let order = permutation rng ndyn in
  {
    sp_nstatic = nstatic;
    sp_ndyn = ndyn;
    sp_structs = structs;
    sp_union = union;
    sp_typedef = typedef;
    sp_setjmp = setjmp;
    sp_global_fp = global_fp;
    sp_body = body;
    sp_prints = prints;
    sp_main_seed = main_seed;
    sp_workers = workers;
    sp_drivers = drivers;
    sp_dyn_order = order;
  }
