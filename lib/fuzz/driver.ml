(* The fuzzing loop: seed -> spec -> render -> oracle bank, with
   shrinking and corpus capture on failure.

   Iteration [i] of a campaign seeded with [S] uses the derived seed
   [S + (i+1) * golden], so any failing iteration replays from its own
   seed alone — the generator, the mutations and the oracle-side
   randomness (attack probes, fault plans) are all deterministic in it. *)

module Prng = Mcfi_util.Prng

type config = {
  c_seed : int64;
  c_iters : int;
  c_time_budget : float;  (* wall-clock seconds; 0 = unlimited *)
  c_corpus_dir : string option;
  c_drop_check : int option;  (* rewriter sabotage for the self-test *)
}

type report = {
  rp_iter : int;
  rp_seed : int64;
  rp_failure : Oracle.failure;
  rp_lines : int;  (* MiniC lines of the shrunk counterexample *)
  rp_file : string option;
  rp_static : (string * string) list;
  rp_dynamic : (string * string) list;
}

type outcome = {
  oc_iters : int;
  oc_elapsed : float;
  oc_failure : report option;
}

let golden = 0x9E3779B97F4A7C15L

let iter_seed base i = Int64.add base (Int64.mul golden (Int64.of_int (i + 1)))

let spec_of seed =
  let rng = Prng.create seed in
  let sp = Gen.generate rng in
  Mutate.apply rng sp

let bank_of ?drop_check ~seed sp =
  let r = Spec.render sp in
  Oracle.run_bank ?drop_check ~rng:(Oracle.rng_for seed)
    ~static:r.Spec.r_static ~dynamic:r.Spec.r_dynamic ()

let run_one ?drop_check seed = bank_of ?drop_check ~seed (spec_of seed)

let shrink ?drop_check ~seed ~oracle sp =
  let reproduces candidate =
    match bank_of ?drop_check ~seed candidate with
    | Error f -> f.Oracle.f_oracle = oracle
    | Ok () -> false
  in
  Shrink.minimize ~reproduces sp

let run ?(progress = fun _ -> ()) cfg =
  let t0 = Unix.gettimeofday () in
  let finish i failure =
    { oc_iters = i; oc_elapsed = Unix.gettimeofday () -. t0; oc_failure = failure }
  in
  let rec loop i =
    if i >= cfg.c_iters then finish i None
    else if
      cfg.c_time_budget > 0.
      && Unix.gettimeofday () -. t0 > cfg.c_time_budget
    then finish i None
    else begin
      let seed = iter_seed cfg.c_seed i in
      match run_one ?drop_check:cfg.c_drop_check seed with
      | Ok () ->
        progress i;
        loop (i + 1)
      | Error f ->
        let sp =
          shrink ?drop_check:cfg.c_drop_check ~seed ~oracle:f.Oracle.f_oracle
            (spec_of seed)
        in
        (* re-derive the message from the shrunk program *)
        let f =
          match bank_of ?drop_check:cfg.c_drop_check ~seed sp with
          | Error f' -> f'
          | Ok () -> f
        in
        let r = Spec.render sp in
        let file =
          Option.map
            (fun dir ->
              Corpus.write dir
                {
                  Corpus.c_seed = seed;
                  c_oracle = f.Oracle.f_oracle;
                  c_drop_check = cfg.c_drop_check;
                  c_msg = f.Oracle.f_msg;
                  c_static = r.Spec.r_static;
                  c_dynamic = r.Spec.r_dynamic;
                })
            cfg.c_corpus_dir
        in
        finish (i + 1)
          (Some
             {
               rp_iter = i;
               rp_seed = seed;
               rp_failure = f;
               rp_lines = Spec.line_count r;
               rp_file = file;
               rp_static = r.Spec.r_static;
               rp_dynamic = r.Spec.r_dynamic;
             })
    end
  in
  loop 0

(* ---------- corpus replay ---------- *)

type replay_status =
  | Reproduced  (* the recorded oracle fails again *)
  | Fixed       (* the bank passes now: the underlying bug is gone *)
  | Different of Oracle.failure  (* a distinct oracle fails: regression *)

let replay_entry (e : Corpus.entry) =
  match
    Oracle.run_bank ?drop_check:e.Corpus.c_drop_check
      ~rng:(Oracle.rng_for e.Corpus.c_seed) ~static:e.Corpus.c_static
      ~dynamic:e.Corpus.c_dynamic ()
  with
  | Error f when f.Oracle.f_oracle = e.Corpus.c_oracle -> Reproduced
  | Error f -> Different f
  | Ok () -> Fixed

let replay_file path = Result.map replay_entry (Corpus.read path)
