(* Replayable counterexample files.

   A corpus file is self-contained: `#` metadata lines (iteration seed,
   failing oracle, optional rewriter-sabotage setting, first line of the
   failure message) followed by the rendered MiniC sources, one
   `=== static|dynamic <name> ===` section per module.  Replay re-runs the
   oracle bank over the embedded sources with the recorded seed, so a
   corpus file keeps reproducing even if the generator's distribution
   changes later. *)

type entry = {
  c_seed : int64;
  c_oracle : int;
  c_drop_check : int option;
  c_msg : string;
  c_static : (string * string) list;
  c_dynamic : (string * string) list;
}

let first_line s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let to_string e =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "# mcfi-fuzz counterexample\n";
  pf "# seed: %Ld\n" e.c_seed;
  pf "# oracle: %d %s\n" e.c_oracle (Oracle.oracle_name e.c_oracle);
  (match e.c_drop_check with
  | Some k -> pf "# drop-check: %d\n" k
  | None -> ());
  pf "# msg: %s\n" (first_line e.c_msg);
  let section kind (name, src) =
    pf "=== %s %s ===\n" kind name;
    Buffer.add_string b src;
    if src = "" || src.[String.length src - 1] <> '\n' then
      Buffer.add_char b '\n'
  in
  List.iter (section "static") e.c_static;
  List.iter (section "dynamic") e.c_dynamic;
  Buffer.contents b

let parse_section line =
  if starts_with ~prefix:"=== " line && String.length line > 8 then
    let mid = String.sub line 4 (String.length line - 8) in
    match String.index_opt mid ' ' with
    | Some i -> begin
      let kind = String.sub mid 0 i in
      let name = String.sub mid (i + 1) (String.length mid - i - 1) in
      match kind with
      | "static" -> Some (`Static, name)
      | "dynamic" -> Some (`Dynamic, name)
      | _ -> None
    end
    | None -> None
  else None

let meta ~key line =
  let prefix = "# " ^ key ^ ": " in
  if starts_with ~prefix line then
    Some (String.sub line (String.length prefix)
            (String.length line - String.length prefix))
  else None

let of_string text =
  let lines = String.split_on_char '\n' text in
  let seed = ref None
  and oracle = ref None
  and drop = ref None
  and msg = ref "" in
  let statics = ref []
  and dynamics = ref [] in
  let current = ref None in
  let buf = Buffer.create 256 in
  let flush_section ?(at_eof = false) () =
    match !current with
    | None -> ()
    | Some (kind, name) ->
      let src = Buffer.contents buf in
      (* splitting on '\n' leaves an empty final fragment when the text
         ends with a newline; at EOF that fragment has added one
         spurious blank line — drop it *)
      let src =
        if at_eof && src <> "" && src.[String.length src - 1] = '\n' then
          String.sub src 0 (String.length src - 1)
        else src
      in
      Buffer.clear buf;
      (match kind with
      | `Static -> statics := (name, src) :: !statics
      | `Dynamic -> dynamics := (name, src) :: !dynamics)
  in
  List.iter
    (fun line ->
      match parse_section line with
      | Some s ->
        flush_section ();
        current := Some s
      | None ->
        if !current <> None then begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n'
        end
        else begin
          (match meta ~key:"seed" line with
          | Some v -> seed := Int64.of_string_opt v
          | None -> ());
          (match meta ~key:"oracle" line with
          | Some v ->
            oracle :=
              (match String.split_on_char ' ' v with
              | n :: _ -> int_of_string_opt n
              | [] -> None)
          | None -> ());
          (match meta ~key:"drop-check" line with
          | Some v -> drop := int_of_string_opt v
          | None -> ());
          match meta ~key:"msg" line with
          | Some v -> msg := v
          | None -> ()
        end)
    lines;
  flush_section ~at_eof:true ();
  match (!seed, !oracle) with
  | Some s, Some o ->
    (* A file with metadata but no module sections is truncated or
       corrupt, not a program: replaying it would "reproduce" whatever
       failure an empty build produces and mask the damage in CI. *)
    if !statics = [] && !dynamics = [] then
      Error "corpus file has no source sections"
    else
      Ok
        {
          c_seed = s;
          c_oracle = o;
          c_drop_check = !drop;
          c_msg = !msg;
          c_static = List.rev !statics;
          c_dynamic = List.rev !dynamics;
        }
  | None, _ -> Error "corpus file has no '# seed:' line"
  | _, None -> Error "corpus file has no '# oracle:' line"

let filename e =
  Printf.sprintf "cex_%s_seed%Ld.c" (Oracle.oracle_name e.c_oracle) e.c_seed

let write dir e =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (filename e) in
  let oc = open_out path in
  output_string oc (to_string e);
  close_out oc;
  path

let read path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else begin
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    of_string text
  end
