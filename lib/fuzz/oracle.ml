(* The differential oracle bank.

   A generated program is driven through the full pipeline and judged by
   seven oracles (0 is the implicit "toolchain accepts legal programs"):

   0 toolchain    — the front end and pipeline never crash or reject a
                    generated (legal-by-construction) program;
   1 equivalence  — the instrumented VM execution is observationally
                    equivalent (exit reason + output) to an uninstrumented
                    build with the dynamic modules folded in statically;
   2 verifier     — the verifier accepts everything the rewriter emits,
                    and every benign dynamic module loads;
   3 incremental  — [Process.oracle_check]: incremental [Cfggen.merge]
                    over the load sequence is bit-identical to a
                    from-scratch [generate], and the live tables agree;
   4 precision    — every source-justified indirect-branch target passes
                    [Tx.check]; everything the tables allow is justified
                    for some branch of the same equivalence class; probes
                    at foreign-class and misaligned addresses fail;
   5 faults       — under a random fault plan the build either aborts
                    cleanly (load rollback) or completes; a completed run
                    still satisfies oracles 3 and 4, and a disarmed
                    rebuild runs clean;
   6 dispatch     — the byte and threaded execution engines are
                    observationally identical on the same program: same
                    exit reason, same trap pc, same output, same
                    retired-instruction count, and the same committed
                    indirect-transfer trace.

   All randomness (attack probes, fault plans) comes from the caller's
   PRNG, so a failure replays from its iteration seed alone. *)

module Process = Mcfi_runtime.Process
module Machine = Mcfi_runtime.Machine
module Tables = Idtables.Tables
module Tx = Idtables.Tx
module Id = Idtables.Id
module Cfggen = Cfg.Cfggen
module Prng = Mcfi_util.Prng
module IS = Set.Make (Int)

type failure = { f_oracle : int; f_name : string; f_msg : string }

let oracle_name = function
  | 0 -> "toolchain"
  | 1 -> "equivalence"
  | 2 -> "verifier"
  | 3 -> "incremental"
  | 4 -> "precision"
  | 5 -> "faults"
  | 6 -> "dispatch"
  | 7 -> "redteam"  (* not in the bank: the redteam chain-search verdict *)
  | _ -> "unknown"

let fail k fmt =
  Printf.ksprintf
    (fun m -> Error { f_oracle = k; f_name = oracle_name k; f_msg = m })
    fmt

let ( let* ) = Result.bind

let fuel = 10_000_000

(* The oracle-side PRNG for an iteration: independent of the generator's
   stream (which [Driver] seeds with the iteration seed directly), but
   derived from the same seed so replay needs nothing else. *)
let rng_for seed = Prng.create (Int64.logxor seed 0x5DEECE66DL)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let pp_reason r = Fmt.str "%a" Machine.pp_exit_reason r

let build ?drop_check ?dispatch ~instrumented ~static ~dynamic () =
  Mcfi.Pipeline.build_process ~instrumented ?drop_check ?dispatch
    ~sources:static ~dynamic ()

let run proc =
  let r = Process.run ~fuel proc in
  (r, Machine.output (Process.machine proc))

(* ---------- oracle 4: CFG precision and attack probes ---------- *)

let rec result_iter f = function
  | [] -> Ok ()
  | x :: rest ->
    let* () = f x in
    result_iter f rest

let precision ~rng ~oracle proc =
  match Process.tables proc with
  | None -> Ok ()
  | Some tables ->
    let input = Process.cfg_input proc in
    let bary =
      List.map (fun (slot, id) -> (slot, Id.ecn id)) (Tables.bary_entries tables)
    in
    let tary = Tables.tary_entries tables in
    let justified slot =
      IS.of_list (Cfggen.targets_of_site input input.Cfggen.sites.(slot))
    in
    (* per-equivalence-class: union of justified targets, and the target
       addresses the live Tary actually allows *)
    let class_just = Hashtbl.create 16 in
    List.iter
      (fun (slot, ecn) ->
        let cur =
          Option.value (Hashtbl.find_opt class_just ecn) ~default:IS.empty
        in
        Hashtbl.replace class_just ecn (IS.union cur (justified slot)))
      bary;
    let tary_ecn = List.map (fun (addr, id) -> (addr, Id.ecn id)) tary in
    (* All checks are bounded: at rest, a justified target never skews
       (its class installed slot and targets at one version), while a
       foreign-class probe can skew *persistently* — after delta
       installs, distinct classes legitimately sit at distinct versions
       — and the unbounded default would spin on it forever waiting for
       an updater that does not exist. *)
    let check slot t = Tx.check ~max_retries:64 tables ~bary_index:slot ~target:t in
    (* (a) every source-justified target passes its slot's check *)
    let* () =
      result_iter
        (fun (slot, _) ->
          result_iter
            (fun t ->
              match check slot t with
              | Tx.Pass -> Ok ()
              | o ->
                fail oracle "slot %d: justified target %d rejected (%s)" slot t
                  (Fmt.str "%a" Tx.pp_outcome o))
            (IS.elements (justified slot)))
        bary
    in
    (* (b) precision: everything a class allows is justified for at least
       one branch of that class — the tables never over-approximate beyond
       classic-CFI class merging.  A class with no live branch (its only
       indirect-call sites lived in a module whose load rolled back) keeps
       its Tary entries but has no attack surface: skip it. *)
    let* () =
      result_iter
        (fun (addr, ecn) ->
          match Hashtbl.find_opt class_just ecn with
          | None -> Ok ()
          | Some just when IS.mem addr just -> Ok ()
          | Some _ ->
            fail oracle
              "Tary allows address %d (class %d) that no branch of the class \
               justifies"
              addr ecn)
        tary_ecn
    in
    (* (c) attack probes: foreign-class targets and misaligned addresses
       must be rejected *)
    result_iter
      (fun (slot, ecn) ->
        let foreign =
          List.filter_map
            (fun (addr, e) -> if e <> ecn then Some addr else None)
            tary_ecn
        in
        let probes =
          if foreign = [] then []
          else
            let p1 = Prng.choose rng foreign in
            let p2 = Prng.choose rng foreign in
            List.sort_uniq compare [ p1; p2 ]
        in
        (* a probe is rejected by Violation *or* Retries_exhausted (a
           persistent cross-class version skew also never lets the branch
           through); only Pass is an escape *)
        let* () =
          result_iter
            (fun t ->
              match check slot t with
              | Tx.Violation | Tx.Retries_exhausted -> Ok ()
              | Tx.Pass ->
                fail oracle "slot %d: foreign-class target %d not rejected"
                  slot t)
            probes
        in
        match IS.choose_opt (justified slot) with
        | None -> Ok ()
        | Some t -> begin
          let off = 1 + Prng.int rng 3 in
          match check slot (t + off) with
          | Tx.Violation | Tx.Retries_exhausted -> Ok ()
          | Tx.Pass ->
            fail oracle "slot %d: misaligned target %d+%d not rejected" slot t
              off
        end)
      bary

(* ---------- oracle 5: random faults with recovery ---------- *)

let random_plan rng =
  let use_random = Prng.int rng 4 = 0 in
  if use_random then
    let seed = Int64.of_int (Prng.int rng 0x3FFFFFFF) in
    let one_in = 64 + Prng.int rng 192 in
    Faults.Plan.Random { seed; one_in }
  else
    let point = Prng.choose rng Faults.Plan.all_points in
    let hit = 1 + Prng.int rng 3 in
    Faults.Plan.At { point; hit }

let faults_oracle ~rng ~static ~dynamic () =
  let plan = random_plan rng in
  let pp_plan = Fmt.str "%a" Faults.Plan.pp plan in
  let* () =
    Faults.with_plan plan @@ fun () ->
    match build ~instrumented:true ~static ~dynamic () with
    | exception Faults.Injected _ -> Ok () (* aborted at startup load *)
    | exception Mcfi.Pipeline.Error _ ->
      Ok () (* fault surfaced as a load error; the journal rolled back *)
    | exception ex ->
      fail 5 "build under %s crashed: %s" pp_plan (Printexc.to_string ex)
    | proc -> begin
      match run proc with
      | (Machine.Exited _ | Machine.Cfi_halt), _ ->
        (* whatever subset of modules survived the faulted dlopens must
           still satisfy the incremental and precision oracles *)
        let* () =
          match Process.oracle_check proc with
          | Ok () -> Ok ()
          | Error m -> fail 5 "state diverges after %s: %s" pp_plan m
        in
        precision ~rng ~oracle:5 proc
      | r, out ->
        fail 5 "run under %s ended with %s (output %S)" pp_plan (pp_reason r)
          out
    end
  in
  (* recovery: with the plan disarmed, the same program is healthy again *)
  match build ~instrumented:true ~static ~dynamic () with
  | exception ex ->
    fail 5 "rebuild after %s failed: %s" pp_plan (Printexc.to_string ex)
  | proc -> begin
    match run proc with
    | Machine.Exited _, _ -> Ok ()
    | r, out ->
      fail 5 "rebuild after %s ended with %s (output %S)" pp_plan
        (pp_reason r) out
  end

(* ---------- oracle 6: differential dispatch ---------- *)

(* Committed-transfer traces can be long on loop-heavy programs; keep a
   bounded prefix for the comparison message but compare the full count
   and a running hash so a divergence anywhere in the run is caught. *)
let trace_cap = 4096

type dispatch_obs = {
  d_reason : Machine.exit_reason;
  d_pc : int;
  d_out : string;
  d_steps : int;
  d_transfers : int;
  d_hash : int;
  d_trace : string;
}

let dispatch_run ~static ~dynamic engine =
  match build ~instrumented:true ~static ~dynamic () with
  | exception ex ->
    Error
      (Printf.sprintf "%s build crashed: %s"
         (Machine.dispatch_name engine)
         (Printexc.to_string ex))
  | proc ->
    let m = Process.machine proc in
    Machine.set_dispatch m engine;
    let transfers = ref 0 in
    let hash = ref 0 in
    let buf = Buffer.create 256 in
    Machine.set_transfer_hook m
      (Some
         (fun src dst ->
           incr transfers;
           hash := (!hash * 31) + (src lxor (dst * 65599));
           if !transfers <= trace_cap then
             Buffer.add_string buf (Printf.sprintf "%x>%x;" src dst)));
    let reason = Process.run ~fuel proc in
    Machine.set_transfer_hook m None;
    Ok
      {
        d_reason = reason;
        d_pc = Machine.pc m;
        d_out = Machine.output m;
        d_steps = Machine.steps m;
        d_transfers = !transfers;
        d_hash = !hash;
        d_trace = Buffer.contents buf;
      }

let dispatch_oracle ~static ~dynamic () =
  let* b =
    Result.map_error (fun m -> { f_oracle = 6; f_name = "dispatch"; f_msg = m })
      (dispatch_run ~static ~dynamic Machine.Byte)
  in
  let* t =
    Result.map_error (fun m -> { f_oracle = 6; f_name = "dispatch"; f_msg = m })
      (dispatch_run ~static ~dynamic Machine.Threaded)
  in
  let* () =
    if b.d_reason = t.d_reason then Ok ()
    else
      fail 6 "exit reason: byte %s <> threaded %s" (pp_reason b.d_reason)
        (pp_reason t.d_reason)
  in
  let* () =
    if b.d_pc = t.d_pc then Ok ()
    else fail 6 "final pc: byte 0x%x <> threaded 0x%x" b.d_pc t.d_pc
  in
  let* () =
    if b.d_out = t.d_out then Ok ()
    else fail 6 "output: byte %S <> threaded %S" b.d_out t.d_out
  in
  let* () =
    if b.d_steps = t.d_steps then Ok ()
    else fail 6 "retired steps: byte %d <> threaded %d" b.d_steps t.d_steps
  in
  if b.d_transfers = t.d_transfers && b.d_hash = t.d_hash
     && b.d_trace = t.d_trace
  then Ok ()
  else
    fail 6
      "committed-transfer trace: byte %d transfers (hash %d) <> threaded %d \
       (hash %d); first divergence around %S vs %S"
      b.d_transfers b.d_hash t.d_transfers t.d_hash
      (String.sub b.d_trace 0 (min 160 (String.length b.d_trace)))
      (String.sub t.d_trace 0 (min 160 (String.length t.d_trace)))

(* ---------- the bank ---------- *)

let run_bank ?drop_check ~rng ~static ~dynamic () =
  match build ?drop_check ~instrumented:true ~static ~dynamic () with
  | exception Mcfi.Pipeline.Error msg ->
    if contains ~sub:"failed verification" msg then
      fail 2 "verifier rejected the rewriter's output: %s" msg
    else fail 0 "toolchain rejected a legal program: %s" msg
  | exception ex -> fail 0 "toolchain crash: %s" (Printexc.to_string ex)
  | proc ->
    let r_i, out_i = run proc in
    let missing =
      List.filter
        (fun (n, _) -> not (List.mem n (Process.loaded_names proc)))
        dynamic
    in
    let* () =
      if missing = [] then Ok ()
      else
        fail 2 "benign dynamic modules failed to load: %s"
          (String.concat ", " (List.map fst missing))
    in
    let* () =
      match r_i with
      | Machine.Exited _ -> Ok ()
      | r -> fail 1 "instrumented run ended with %s (output %S)" (pp_reason r) out_i
    in
    let* () =
      match
        build ~instrumented:false ~static:(static @ dynamic) ~dynamic:[] ()
      with
      | exception ex ->
        fail 0 "uninstrumented build: %s" (Printexc.to_string ex)
      | plain ->
        let r_u, out_u = run plain in
        if r_i = r_u && out_i = out_u then Ok ()
        else
          fail 1 "instrumented (%s, %S) <> uninstrumented (%s, %S)"
            (pp_reason r_i) out_i (pp_reason r_u) out_u
    in
    let* () =
      match Process.oracle_check proc with
      | Ok () -> Ok ()
      | Error m -> fail 3 "%s" m
    in
    let* () = precision ~rng ~oracle:4 proc in
    let* () = dispatch_oracle ~static ~dynamic () in
    faults_oracle ~rng ~static ~dynamic ()
