(* Minimizing shrinker.

   Greedy fixpoint over spec-level cuts, ordered biggest first.  A cut is
   accepted iff [reproduces] says the candidate still fails the same
   oracle; because cuts edit the recipe, every candidate is well-formed,
   and per-function seeds keep unrelated bodies stable across cuts (a
   removal cannot perturb the functions it did not touch). *)

open Spec

let drop_nth k xs = List.filteri (fun i _ -> i <> k) xs

let is_dyn d =
  match d.d_mod with
  | Mdyn _ -> true
  | Mstatic _ -> false

let candidates sp =
  (* whole dynamic tier *)
  (if List.exists is_dyn sp.sp_drivers || sp.sp_ndyn > 0 then
     [
       {
         sp with
         sp_drivers = List.filter (fun d -> not (is_dyn d)) sp.sp_drivers;
         sp_ndyn = 0;
         sp_dyn_order = [];
       };
     ]
   else [])
  (* individual drivers *)
  @ List.init (List.length sp.sp_drivers) (fun k ->
        { sp with sp_drivers = drop_nth k sp.sp_drivers })
  (* individual workers, highest index first *)
  @ List.rev
      (List.init (List.length sp.sp_workers) (fun k ->
           { sp with sp_workers = drop_nth k sp.sp_workers }))
  (* feature switches *)
  @ (if sp.sp_setjmp then [ { sp with sp_setjmp = false } ] else [])
  @ (if sp.sp_global_fp then [ { sp with sp_global_fp = false } ] else [])
  @ (if sp.sp_structs then
       [
         {
           sp with
           sp_structs = false;
           sp_drivers =
             List.map (fun d -> { d with d_struct = false }) sp.sp_drivers;
         };
       ]
     else [])
  @ (if sp.sp_union then [ { sp with sp_union = false } ] else [])
  @ (if sp.sp_typedef then [ { sp with sp_typedef = false } ] else [])
  @ (if sp.sp_nstatic > 0 then
       [
         {
           sp with
           sp_nstatic = 0;
           sp_workers = List.map (fun w -> { w with w_mod = 0 }) sp.sp_workers;
           sp_drivers =
             List.map
               (fun d ->
                 match d.d_mod with
                 | Mstatic _ -> { d with d_mod = Mstatic 0 }
                 | Mdyn _ -> d)
               sp.sp_drivers;
         };
       ]
     else [])
  @ (if sp.sp_body > 0 then [ { sp with sp_body = 0 } ] else [])
  @ (if sp.sp_prints > 1 then [ { sp with sp_prints = 1 } ] else [])
  (* per-driver flags *)
  @ List.concat
      (List.mapi
         (fun k d ->
           let set f = { sp with sp_drivers = Mutate.nth_map k f sp.sp_drivers } in
           (if d.d_cast then [ set (fun d -> { d with d_cast = false }) ] else [])
           @ (if d.d_struct then
                [ set (fun d -> { d with d_struct = false }) ]
              else [])
           @
           if d.d_switch then [ set (fun d -> { d with d_switch = false }) ]
           else [])
         sp.sp_drivers)

(* [minimize ~reproduces sp] greedily applies accepted cuts until no
   candidate reproduces or the attempt budget runs out. *)
let minimize ?(budget = 250) ~reproduces sp =
  let budget = ref budget in
  let rec fix sp =
    let rec try_cands = function
      | [] -> sp
      | c :: rest ->
        if !budget <= 0 then sp
        else begin
          decr budget;
          if reproduces c then fix c else try_cands rest
        end
    in
    try_cands (candidates sp)
  in
  fix sp
