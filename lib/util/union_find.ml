type t = {
  parent : int array;
  rank : int array;
  mutable sets : int;
}

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; sets = n }

let size t = Array.length t.parent

let check t x =
  if x < 0 || x >= size t then
    invalid_arg (Printf.sprintf "Union_find: key %d out of range [0,%d)" x (size t))

let rec find t x =
  check t x;
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then rx
  else begin
    t.sets <- t.sets - 1;
    if t.rank.(rx) < t.rank.(ry) then begin
      t.parent.(rx) <- ry; ry
    end else if t.rank.(rx) > t.rank.(ry) then begin
      t.parent.(ry) <- rx; rx
    end else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1;
      rx
    end
  end

let same t x y = find t x = find t y

let count t = t.sets

let groups t =
  let n = size t in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let members = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: members)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

(* ---- growable variant (the incremental CFG generator's merge state:
   keys arrive one module at a time and the structure must be cheap to
   copy for the loader's rollback journal) ---- *)

module Dynamic = struct
  type t = {
    mutable parent : int array;
    mutable rank : int array;
    mutable len : int;
    mutable sets : int;
  }

  let create () = { parent = Array.make 16 0; rank = Array.make 16 0; len = 0; sets = 0 }

  let copy t =
    {
      parent = Array.copy t.parent;
      rank = Array.copy t.rank;
      len = t.len;
      sets = t.sets;
    }

  let size t = t.len
  let count t = t.sets

  let add t =
    if t.len = Array.length t.parent then begin
      let grow a fill =
        let a' = Array.make (2 * Array.length a) fill in
        Array.blit a 0 a' 0 t.len;
        a'
      in
      t.parent <- grow t.parent 0;
      t.rank <- grow t.rank 0
    end;
    let k = t.len in
    t.parent.(k) <- k;
    t.rank.(k) <- 0;
    t.len <- t.len + 1;
    t.sets <- t.sets + 1;
    k

  let check t x =
    if x < 0 || x >= t.len then
      invalid_arg
        (Printf.sprintf "Union_find.Dynamic: key %d out of range [0,%d)" x t.len)

  let rec find t x =
    check t x;
    let p = t.parent.(x) in
    if p = x then x
    else begin
      let root = find t p in
      t.parent.(x) <- root;
      root
    end

  let union t x y =
    let rx = find t x and ry = find t y in
    if rx = ry then rx
    else begin
      t.sets <- t.sets - 1;
      if t.rank.(rx) < t.rank.(ry) then begin
        t.parent.(rx) <- ry;
        ry
      end
      else if t.rank.(rx) > t.rank.(ry) then begin
        t.parent.(ry) <- rx;
        rx
      end
      else begin
        t.parent.(ry) <- rx;
        t.rank.(rx) <- t.rank.(rx) + 1;
        rx
      end
    end

  let same t x y = find t x = find t y
end
