(** Imperative union-find (disjoint sets) over dense integer keys.

    Used by the equivalence-class computation of the CFG generator: indirect
    branches whose target sets overlap have their targets merged into one
    equivalence class, exactly as in classic CFI. *)

type t

(** [create n] is a fresh structure over keys [0 .. n-1], each in its own
    singleton set. *)
val create : int -> t

(** Number of keys the structure was created with. *)
val size : t -> int

(** [find t x] is the canonical representative of [x]'s set.
    Raises [Invalid_argument] if [x] is out of range. *)
val find : t -> int -> int

(** [union t x y] merges the sets of [x] and [y]; returns the representative
    of the merged set. *)
val union : t -> int -> int -> int

(** [same t x y] is [true] iff [x] and [y] are in the same set. *)
val same : t -> int -> int -> bool

(** Number of distinct sets currently represented. *)
val count : t -> int

(** [groups t] lists the sets, each as a (sorted) list of members, ordered by
    representative. *)
val groups : t -> int list list

(** Growable union-find: keys are allocated one at a time ([add]) instead
    of up front, and the whole structure can be copied in O(n) — the shape
    the incremental CFG generator's merge state needs (new modules bring
    new equivalence-class keys; the loader's rollback journal keeps the
    pre-merge copy). *)
module Dynamic : sig
  type t

  (** An empty structure with no keys. *)
  val create : unit -> t

  (** An independent O(n) copy: mutations of either side do not affect
      the other. *)
  val copy : t -> t

  (** Number of keys allocated so far. *)
  val size : t -> int

  (** Allocate the next key (= [size] before the call) as a singleton. *)
  val add : t -> int

  (** As {!Union_find.find}/[union]/[same], over allocated keys.
      Raise [Invalid_argument] on unallocated keys. *)
  val find : t -> int -> int

  val union : t -> int -> int -> int
  val same : t -> int -> int -> bool

  (** Number of distinct sets. *)
  val count : t -> int
end
