(* Sharded ID tables: one full Bary/Tary pair — version word, update
   lock, intent journal, sequence word, reader registry, observer — per
   shard, so each shard is a complete, independently recoverable fault
   domain.  A mid-install kill, torn update, or wedged reader is
   confined to the shard it struck; every other shard keeps serving
   checks and accepting installs with no shared state in the way.

   Routing is by equivalence class home: a class's branch slots and its
   target addresses must live in the {e same} shard (the check protocol
   compares a branch ID against a target ID bit for bit, which is only
   meaningful inside one version domain), so the unit of placement is
   the module: all classes a module anchors share its home shard.  A
   module with no explicit home falls back to a hash of its id.  A
   check reads both tables from the branch slot's shard; a target
   address the shard does not cover reads [Id.invalid] and fails closed,
   exactly as a wild target inside one shard would. *)

type t = {
  count : int;
  stm : Stm.variant;
  tables : Tables.t array;
  homes : (int, int) Hashtbl.t; (* module id -> pinned home shard *)
  hlock : Mutex.t;
  installs : Telemetry.Metrics.counter array; (* per-shard install tally *)
}

let create ?(stm = Stm.Tml) ?(shards = 1) ?covered ~code_base ~capacity
    ~bary_slots () =
  let count = max shards 1 in
  {
    count;
    stm;
    tables =
      Array.init count (fun i ->
          Tables.create ~shard:i ?covered ~code_base ~capacity ~bary_slots ());
    homes = Hashtbl.create 16;
    hlock = Mutex.create ();
    installs =
      Array.init count (fun i ->
          Telemetry.Metrics.counter (Printf.sprintf "mcfi_shard%d_installs" i));
  }

let count t = t.count
let stm t = t.stm

let tables t i =
  if i < 0 || i >= t.count then
    invalid_arg (Printf.sprintf "Shards.tables: shard %d out of range" i);
  t.tables.(i)

(* splitmix64-style finalizer over the module id: the hashed fallback
   spreads unpinned modules evenly and deterministically. *)
let hash_home count m =
  let h = Int64.mul (Int64.of_int (m + 1)) 0x9E3779B97F4A7C15L in
  let h = Int64.logxor h (Int64.shift_right_logical h 29) in
  let h = Int64.mul h 0xBF58476D1CE4E5B9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 32) in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int count))

let set_home t ~m ~shard =
  if shard < 0 || shard >= t.count then
    invalid_arg (Printf.sprintf "Shards.set_home: shard %d out of range" shard);
  Mutex.lock t.hlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.hlock)
    (fun () -> Hashtbl.replace t.homes m shard)

let home t ~m =
  Mutex.lock t.hlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.hlock)
    (fun () ->
      match Hashtbl.find_opt t.homes m with
      | Some s -> s
      | None -> hash_home t.count m)

(* ---- per-shard transactions: thin dispatch over the STM variant ---- *)

let check ?max_retries ?escalation ?watchdog ?jitter ?on_retry t ~shard
    ~bary_index ~target =
  Stm.check t.stm ?max_retries ?escalation ?watchdog ?jitter ?on_retry
    (tables t shard) ~bary_index ~target

let check_fast ?on_retry t ~shard ~bary_index ~target =
  Tx.check_fast ?on_retry (tables t shard) ~bary_index ~target

let check_hoisted ?max_retries ?escalation ?watchdog ?jitter ?on_retry t
    ~shard site ~bary_index ~target =
  Stm.check_hoisted t.stm ?max_retries ?escalation ?watchdog ?jitter
    ?on_retry (tables t shard) site ~bary_index ~target

let update ?tag ?got_update t ~shard ~tary ~bary =
  let v = Stm.update t.stm ?tag ?got_update (tables t shard) ~tary ~bary in
  Telemetry.Metrics.incr t.installs.(shard);
  v

let update_delta ?tag ?got_update ?pre_install t ~shard ~tary ~bary
    ~tary_carry ~bary_carry =
  let v =
    Stm.update_delta t.stm ?tag ?got_update ?pre_install (tables t shard)
      ~tary ~bary ~tary_carry ~bary_carry
  in
  Telemetry.Metrics.incr t.installs.(shard);
  v

let refresh t ~shard =
  let v = Stm.refresh t.stm (tables t shard) in
  Telemetry.Metrics.incr t.installs.(shard);
  v

let recover t ~shard = Stm.recover t.stm (tables t shard)

let recover_all t =
  let n = ref 0 in
  for i = 0 to t.count - 1 do
    if recover t ~shard:i then incr n
  done;
  !n

let torn t ~shard = Tables.journal (tables t shard) <> None

(* ---- cross-shard commits ----

   A delta touching several shards commits shard by shard, in ascending
   shard order, each shard's slice as an ordinary single-shard
   transaction (own version bump, own journal, own recovery).  There is
   deliberately {e no} cross-shard atomicity: the recovery rule is that
   a death anywhere in the sequence is indistinguishable from a crash
   just before the remaining shards — shards already committed stay
   committed (their journals are clear), the shard that was mid-install
   is torn and redone by its own next lock holder, and shards not yet
   reached are untouched, exactly as if their updates were never
   submitted.  Checks never compare IDs across shards, so there is no
   state in which partial commitment is observable as a table anomaly;
   the caller re-submits the unreached suffix (or abandons it) the same
   way it would after a whole-process crash.

   The [Between_shard_commits] hook fires before each shard's commit
   except the first, reporting the shard {e about to} commit: a plan
   scoped [At_shard {shard = s; ...}] kills the sequence with every
   shard before [s] committed and [s] plus the rest untouched. *)

type part = {
  p_tary : (int * int) list;
  p_bary : (int * int) list;
  p_tary_carry : (int * int * Tx.carry_source) list;
  p_bary_carry : (int * int * Tx.carry_source) list;
}

let part ?(tary = []) ?(bary = []) ?(tary_carry = []) ?(bary_carry = []) () =
  { p_tary = tary; p_bary = bary; p_tary_carry = tary_carry;
    p_bary_carry = bary_carry }

let sort_parts t parts =
  let parts = List.sort (fun (a, _) (b, _) -> compare a b) parts in
  List.iteri
    (fun i (shard, _) ->
      if shard < 0 || shard >= t.count then
        invalid_arg
          (Printf.sprintf "Shards.update_multi: shard %d out of range" shard);
      if i > 0 && fst (List.nth parts (i - 1)) = shard then
        invalid_arg
          (Printf.sprintf "Shards.update_multi: duplicate shard %d" shard))
    parts;
  parts

let update_multi ?tag t parts =
  let parts = sort_parts t parts in
  List.mapi
    (fun i (shard, p) ->
      if i > 0 then Faults.hit ~shard Faults.Plan.Between_shard_commits;
      let v =
        update_delta ?tag t ~shard ~tary:p.p_tary ~bary:p.p_bary
          ~tary_carry:p.p_tary_carry ~bary_carry:p.p_bary_carry
      in
      (shard, v))
    parts

let update_multi_full ?tag t parts =
  let parts = sort_parts t parts in
  List.mapi
    (fun i (shard, (tary, bary)) ->
      if i > 0 then Faults.hit ~shard Faults.Plan.Between_shard_commits;
      let v = update ?tag t ~shard ~tary ~bary in
      (shard, v))
    parts

(* ---- per-shard readers, observers, quiescence ---- *)

let register_reader t ~shard = Tables.register_reader (tables t shard)
let unregister_reader t ~shard r = Tables.unregister_reader (tables t shard) r
let set_observer t ~shard o = Tables.set_observer (tables t shard) o
let quiesce_attempt t ~shard = Tables.quiesce_attempt (tables t shard)

let quiescent_shards t =
  Array.init t.count (fun i -> quiesce_attempt t ~shard:i)

let version t ~shard = Tables.version (tables t shard)

(* ---- shard state snapshots (forensics) ---- *)

let state t ~shard = Tables.state (tables t shard)

let states t = List.init t.count (fun i -> state t ~shard:i)

let states_json t =
  Obs.Json.Arr (List.init t.count (fun i -> Tables.state_json (tables t i)))
