(** MCFI's table-access transactions (paper §5.2, Figs. 3 and 4).

    [check] is the reference implementation of the check transaction: read
    branch ID, read target ID, one equality compare in the common case; on
    mismatch, distinguish (a) invalid target ID — CFI violation, (b) version
    mismatch — an update transaction is in flight, retry, (c) same version
    but different ECN — CFI violation.  The VM executes the same logic as an
    inlined instruction sequence (see {!Instrument.Rewriter}); this
    function is used by the micro-benchmarks and the concurrency tests.

    [update] is the update transaction: serialized by the global update
    lock, it bumps the version, rewrites the whole Tary table, issues a
    write barrier (every [Tables.tary_set] is sequentially consistent),
    runs the GOT-update hook, then rewrites the Bary table.  Tary-first
    ordering guarantees a check that observes a new-version branch ID also
    observes new-version target IDs. *)

type outcome =
  | Pass
  | Violation
  | Retries_exhausted
      (** only with [~max_retries] and [Fail_check] escalation; the
          unbounded transaction spins until the concurrent update
          completes *)

val pp_outcome : Format.formatter -> outcome -> unit

(** What a bounded check does when its retry budget runs out with the
    tables still version-skewed (an update transaction stuck or dead
    mid-flight):
    - [Fail_check] surfaces {!Retries_exhausted} to the caller (default;
      the VM maps it to a fault);
    - [Halt_process] treats exhaustion as a {!Violation} — the
      fail-closed posture: never keep running on tables of unprovable
      consistency;
    - [Wait_for_updater] takes the update lock (waiting out a live
      updater, redoing a dead one's journalled install — {!recover}) and
      re-attempts once with a fresh budget. *)
type escalation = Halt_process | Wait_for_updater | Fail_check

val pp_escalation : Format.formatter -> escalation -> unit

(** The update watchdog: a deadline, measured in backoff rounds of the
    retry loop, after which a still-version-skewed check concludes the
    update-lock holder is stalled (or died mid-install, leaving torn
    tables) and escalates.  [Wait_for_updater] as the expiry action is
    journal-assisted recovery: take the lock — waiting out a live holder,
    redoing a dead one's journal — and re-attempt.  Every expiry bumps
    [Faults.Stats.watchdog_fires]. *)
type watchdog = {
  wd_deadline : int;  (** backoff rounds before the watchdog fires *)
  wd_on_expire : escalation;
}

val pp_watchdog : Format.formatter -> watchdog -> unit

(** [backoff round] is the bounded exponential backoff used by the retry
    loops: [2^min(round,6)] [Domain.cpu_relax] pause hints.  With
    [jitter], the spin count is drawn uniformly from [base, 2*base) —
    N checkers backing off from the same contended install desynchronize
    instead of retrying in lockstep, and the schedule is deterministic
    per PRNG seed. *)
val backoff : ?jitter:Mcfi_util.Prng.t -> int -> unit

(** [backoff_spins round] is the spin count {!backoff} would use — the
    deterministic jitter schedule, exposed for tests and for callers
    that pace something other than [cpu_relax] (the fleet supervisor's
    restart delays). *)
val backoff_spins : ?jitter:Mcfi_util.Prng.t -> int -> int

(** The calling domain's own jitter stream, derived lazily from the
    process-wide base seed and the domain id.  A [Prng.t] is mutable and
    unsynchronized, so handing one stream to checkers on several domains
    both races its state and correlates their backoff draws; pass
    [~jitter:(Tx.domain_jitter ())] instead and every domain gets an
    independent, deterministic schedule.  Repeated calls on one domain
    return the same stream. *)
val domain_jitter : unit -> Mcfi_util.Prng.t

(** [seed_domain_jitter seed] sets the base seed the per-domain streams
    derive from (harness replay).  Each domain re-derives its stream on
    its next {!domain_jitter} call, including domains that already hold
    one from the previous seed. *)
val seed_domain_jitter : int64 -> unit

(** {2 Flight-recorder failure capture}

    Gated on {!Obs.Flightrec.recording} alone — never on telemetry
    sampling — so the black box still has answers when tracing was off.
    [check] (and the STM variants, which share these helpers) call them
    on every non-[Pass] outcome and on watchdog expiry; they are exposed
    so other check implementations can report through the same
    taxonomy. *)

(** Record a violating / exhausted transfer: a breadcrumb in the calling
    domain's black-box ring plus (cap permitting) a forensic bundle
    whose [site] carries the slot, target, both ID words with ECN class
    names, and [shard] the table's structural state. *)
val capture_failure :
  Tables.t -> bary_index:int -> target:int -> outcome:outcome -> retries:int ->
  unit

(** Record a watchdog expiry ([rounds] = backoff rounds waited). *)
val capture_watchdog :
  Tables.t -> bary_index:int -> target:int -> rounds:int -> unit

(** [check t ~bary_index ~target] runs one check transaction.
    [max_retries] bounds the retry loop (tests and the VM use a fuel
    bound; production semantics is unbounded): [~max_retries:n] allows the
    initial attempt plus at most [n] retries, so [~max_retries:0] means
    "no retries" — the first version skew already exhausts the budget.
    Every retry backs off ([Domain.cpu_relax], bounded exponential).
    [on_retry] is called once per actual retry — test instrumentation.
    [escalation] picks the budget-exhaustion policy (default
    [Fail_check]); [watchdog] independently bounds how long the loop will
    chase a stalled updater.  [jitter] randomizes each retry's backoff
    (see {!backoff}); the PRNG is owned by the calling domain. *)
val check :
  ?max_retries:int ->
  ?escalation:escalation ->
  ?watchdog:watchdog ->
  ?jitter:Mcfi_util.Prng.t ->
  ?on_retry:(unit -> unit) ->
  Tables.t ->
  bary_index:int ->
  target:int ->
  outcome

(** The production fast path: the same transaction without the test
    instrumentation hooks (no allocation; one load per table and one
    equality compare in the common case — the shape the paper's inline
    sequence has). [true] = the transfer is allowed.  On version skew it
    pauses the core ([Domain.cpu_relax]) and retries; [on_retry], given
    the retry round, lets a caller layer extra backoff without touching
    the common path. *)
val check_fast :
  ?on_retry:(int -> unit) -> Tables.t -> bary_index:int -> target:int -> bool

(** {2 Version-hoisted check sites}

    TML-style read hoisting for a branch site that keeps transferring to
    the same target: cache the (branch ID, target ID) pair together with
    the install sequence word ({!Tables.seq_read}) it was read under,
    and re-validate each check on that word alone.  Every install-like
    mutation — full and delta updates, journal redo, loader rollback —
    makes the word odd before its first slot write and advances it to a
    {e fresh} even value after the final barrier, so an unchanged even
    word proves the slot arrays are bit-identical to the fill instant:
    replaying the cached pair is linearizable to both loads happening
    now.  A moved or odd word (an install completed or is in flight)
    falls back to the full transaction and refills.  Only {e settled}
    pairs are cached — equal IDs, an invalid target, or an ECN mismatch
    at equal versions; a version-skewed pair is never replayed, so the
    retry/escalation ladder lives entirely on the fallback path and a
    hoisted hit can never mask an in-flight update. *)

(** One branch site's hoisted-read cache.  Owned by a single checker
    domain (plain mutable state, not shared). *)
type site

(** A fresh, empty site (the first check through it always misses). *)
val site : unit -> site

(** [(hits, misses)] — how often the site validated on the sequence word
    alone vs fell back to the full transaction. *)
val site_stats : site -> int * int

(** [check_hoisted t site ~bary_index ~target] — one check transaction
    through [site]'s cache: a hit costs one atomic load of the sequence
    word plus two compares; a miss runs {!check} with the given options
    and refills.  Outcomes are identical to {!check} against the same
    table state. *)
val check_hoisted :
  ?max_retries:int ->
  ?escalation:escalation ->
  ?watchdog:watchdog ->
  ?jitter:Mcfi_util.Prng.t ->
  ?on_retry:(unit -> unit) ->
  Tables.t ->
  site ->
  bary_index:int ->
  target:int ->
  outcome

(** [check_hoisted_with ~full t site ~bary_index ~target] — the same
    hit path, with the fallback transaction supplied by the caller
    ({!Stm.check} under a non-default variant, a sharded check, …).
    [full] must decide against [t]'s current tables. *)
val check_hoisted_with :
  full:(unit -> outcome) ->
  Tables.t ->
  site ->
  bary_index:int ->
  target:int ->
  outcome

(** [update t ~tary ~bary] installs a new CFG: [tary] maps each valid
    indirect-branch target address to its ECN, [bary] maps each branch slot
    to its branch ECN.  Slots not mentioned become invalid.  [got_update]
    runs between the Tary and Bary phases (paper: GOT entries are updated
    there, serialized by the same barrier).  [tag] (default [-1]) labels
    the install for the table's {!Tables.observer} and travels with the
    journal, so a redo reports the original tag.  Returns the new
    version. *)
val update :
  ?tag:int ->
  ?got_update:(unit -> unit) ->
  Tables.t ->
  tary:(int * int) list ->
  bary:(int * int) list ->
  int

(** Where a grow entry's version comes from: an existing slot of the
    class it is joining.  Resolved by [update_delta] itself, under the
    update lock and after torn-predecessor recovery, so the carried
    version can never be stale. *)
type carry_source = From_tary of int | From_bary of int

(** [update_delta t ~tary ~bary ~tary_carry ~bary_carry] installs a CFG
    {e delta}: only the listed slots are written, every other slot keeps
    its current ID.  [tary]/[bary] are rewrites, packed at the bumped
    version — every slot of every class whose shape changed, so classes
    stay version-uniform.  [tary_carry]/[bary_carry] are
    [(slot, ecn, source)] grow entries: new slots joining an otherwise
    untouched class at the version that class already carries (read off
    the donor [source], which must still hold the entry's ECN), which is
    what keeps untouched classes readable (no version skew, no check
    retries) for the whole install window.  The transaction follows the
    full protocol — torn-predecessor recovery, ABA budget, version bump,
    intent journal ({!Tables.Jdelta}, with carries resolved so a redo is
    deterministic), Tary phase, barrier, [got_update], Bary phase — and
    a death mid-install is redone by the next lock holder exactly like a
    full update.  [pre_install] runs under the update lock after
    recovery and validation, before the journal is set: the loader
    captures its rollback {!Tables.slot_snapshot} there.  Returns the
    new version. *)
val update_delta :
  ?tag:int ->
  ?got_update:(unit -> unit) ->
  ?pre_install:(unit -> unit) ->
  Tables.t ->
  tary:(int * int) list ->
  bary:(int * int) list ->
  tary_carry:(int * int * carry_source) list ->
  bary_carry:(int * int * carry_source) list ->
  int

(** [refresh t] re-installs the current tables under a fresh version,
    preserving every ECN — the paper's §8.1 update-transaction stress
    experiment does exactly this at 50 Hz. Returns the new version. *)
val refresh : Tables.t -> int

(** [recover t] redoes a torn update transaction from the journal a dead
    updater left behind ({!Tables.journal}), under the update lock.
    Returns [true] if there was one to redo.  [update] performs the same
    recovery implicitly before installing its own CFG, so an explicit call
    is only needed to repair tables without changing the CFG.  The torn
    transaction's GOT hook is {e not} re-run — binding GOT slots again is
    the loader journal's job (see {!Mcfi_runtime.Process}). *)
val recover : Tables.t -> bool

(** Raised by [update]/[refresh] when 2^14 - 1 update transactions have
    executed with no intervening quiescence point — the ABA hazard of
    paper §5.2.  Before giving up, the update transaction tries to infer
    quiescence from the epoch registry ({!Tables.try_quiesce}): it waits,
    bounded, for every registered checker to cross a branch boundary, so
    a sustained update storm against live epoch-registered checkers never
    exhausts the version space.  With no registered readers the historical
    behaviour stands: the wall is hit at 2^14 - 1 unquiesced updates. *)
exception Version_space_exhausted
