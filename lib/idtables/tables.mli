(** Runtime representation of the Bary and Tary ID tables (paper §5.1).

    The Tary table is an array of IDs with one slot per 4-byte-aligned code
    address (so its size equals the code size); a code address that is not a
    possible indirect-branch target holds the all-zero (invalid) word.  The
    Bary table is a dense array indexed by small constants that the loader
    patches into [Bary_load] instructions.

    Slots are plain word-sized cells: OCaml immediates never tear, exactly
    as the paper's aligned 4-byte accesses never tear on x86, and that is
    the only per-access guarantee the transaction protocol needs — a check
    only {e passes} on bit-identical branch/target IDs, so any stale or
    mixed-version view fails the comparison and retries (or halts on an
    invalid ID); it can never pass wrongly.  [publish] is the update
    transaction's write barrier.  A read at a {e misaligned} address is
    modelled faithfully: it composes the word from the bytes of the two
    neighbouring slots, which cannot produce a valid ID when the slots hold
    valid IDs or zeros (the reserved bits clash) — this is what forces
    indirect-branch targets to be aligned.

    The table region is reserved at creation time ([capacity] bytes of code
    addresses); dynamically linking a library grows the in-use part
    ([extend]) without reallocating, like the paper's reserved 4GB region. *)

type t

(** [create ~code_base ~capacity ~bary_slots] reserves tables covering code
    addresses [code_base, code_base + capacity). [capacity] is rounded up to
    a multiple of 4.  [covered] is the initially in-use prefix (default: the
    whole capacity; the process loader starts at 0 and [extend]s as modules
    load, so update transactions only rewrite the covered prefix — the
    paper's reserved-but-unmapped 4GB region).  [shard] (default 0) is the
    fault-domain id these tables belong to when they are one shard of a
    {!Shards.t}: it labels fault-hook crossings and the [c] field of the
    update-lifecycle telemetry events. *)
val create :
  ?shard:int ->
  ?covered:int ->
  code_base:int ->
  capacity:int ->
  bary_slots:int ->
  unit ->
  t

(** The fault-domain id given at creation (0 for standalone tables). *)
val shard : t -> int

val code_base : t -> int
val capacity : t -> int

(** Bytes of code currently covered (grows with [extend]). *)
val code_size : t -> int

(** [extend t bytes] grows the in-use code size.
    Raises [Invalid_argument] beyond capacity. *)
val extend : t -> int -> unit

val bary_slots : t -> int

(** Current global version number (bumped by each update transaction).
    An [Atomic] read: safe from any domain. *)
val version : t -> int

val set_version : t -> int -> unit

(** The ABA mitigation of paper §5.2: the ID encoding has 2^14 versions,
    so an attacker forcing that many update transactions {e during one
    check transaction} could replay an old ID.  The runtime therefore
    counts update transactions and resets the counter at quiescence
    points (moments when every thread has been observed outside a check
    transaction); the count approaching [Id.max_version] is the signal to
    force quiescence first. *)
val updates_since_quiesce : t -> int

(** Bump the update counter (called by the update transaction). *)
val count_update : t -> unit

(** Declare a quiescence point directly.  The caller asserts that every
    thread has been observed outside a check transaction since the last
    update — only sound when it can actually know that (single-domain
    runtimes, tests).  Concurrent runtimes use the epoch machinery below
    instead. *)
val quiesce : t -> unit

(** How many quiescence points have been declared (directly or via
    {!try_quiesce}) over the table's lifetime. *)
val quiesce_events : t -> int

(** The update-transaction serialization lock (paper: the global update
    lock; it never blocks check transactions). *)
val with_update_lock : t -> (unit -> 'a) -> 'a

(** Whether some domain currently holds the update lock — a diagnostic
    for the update watchdog; racy by nature. *)
val update_in_progress : t -> bool

(** {2 Epoch-based quiescence}

    A checker domain {!register_reader}s itself and calls
    {!reader_quiescent} at branch boundaries — points where it is provably
    outside any check transaction.  Each completed install snapshots every
    reader's epoch ({!observe_readers}); {!try_quiesce} declares
    quiescence once every online reader has advanced past its snapshot,
    because then any check still in flight began {e after} the last
    install completed and cannot span a version-space wrap.  With no
    registered readers there is no evidence and [try_quiesce] never
    declares (the direct {!quiesce} remains for callers that know
    better). *)

type reader

(** Register the calling domain as a checker; the handle is not shared. *)
val register_reader : t -> reader

(** Remove a reader from the registry (it stops gating quiescence). *)
val unregister_reader : t -> reader -> unit

(** The branch-boundary hook: the owning domain is outside any check
    transaction right now.  One atomic increment. *)
val reader_quiescent : reader -> unit

(** The reader's current epoch — an atomic load, safe from any domain.
    A supervisor samples this to tell a live checker (epoch advancing)
    from a wedged one (epoch stalled while still registered). *)
val reader_epoch : reader -> int

(** An offline reader does not gate quiescence (e.g. blocked in a long
    syscall); mark it online again before its next check. *)
val set_reader_online : reader -> bool -> unit

val reader_online : reader -> bool

val registered_readers : t -> int

(** Snapshot every reader's epoch; update-lock holders call this when an
    install completes (done by {!Tx.install_locked}'s callers). *)
val observe_readers : t -> unit

(** [try_quiesce t] — caller holds the update lock — declares quiescence
    and returns [true] iff every online registered reader has crossed a
    branch boundary since the last completed install (or the counter is
    already zero). *)
val try_quiesce : t -> bool

(** Non-blocking [try_quiesce]: takes the update lock only if free
    ([Mutex.try_lock]), so a checker-side quiescent point never stalls
    behind a live updater. *)
val quiesce_attempt : t -> bool

(** {2 Install observer}

    Commit hooks for an external oracle (the torture harness): called
    under the update lock when an install transaction begins (before its
    first slot write) and when it completes (after the final barrier).  A
    torn install's completion is reported by the journal redo that
    finishes it, with the tag the original updater passed to
    {!Tx.update}.  Set before any concurrent use; [None] (the default)
    costs one field load per update. *)

type observer = {
  obs_begin : version:int -> tag:int -> unit;
  obs_complete : version:int -> tag:int -> unit;
}

val set_observer : t -> observer option -> unit

(**/**)

(* update-lock holders only; used by Tx *)
val notify_begin : t -> version:int -> tag:int -> unit
val notify_complete : t -> version:int -> tag:int -> unit

(**/**)

(** The write barrier between (and after) the update transaction's two
    phases: a sequentially consistent operation that publishes the
    preceding plain slot writes to other domains. *)
val publish : t -> unit

(** {2 Install sequence word}

    A seqlock word over the slot arrays, maintained by {e every}
    install-like mutation (updates, journal redo, loader rollback):
    odd exactly while slot writes are in flight, advanced to a fresh
    even value once they are published.  The MCFI check protocol never
    needs it — a check only passes on bit-identical IDs — but the
    alternative commit protocols in {!Stm} ([Norec]'s value-validated
    snapshots, [Seqlock]'s parity-waiting readers) read it, and because
    all writers maintain it those readers stay correct against any mix
    of writer paths.  A torn install leaves the word odd; recovery (or
    rollback) forces it even. *)

(** The current sequence value — an atomic load, safe from any domain. *)
val seq_read : t -> int

(** Make the word odd (idempotent on an already-odd word: a journal redo
    re-entering a torn install keeps the value readers sampled).
    Update-lock holders only, before the first slot write. *)
val seq_enter : t -> unit

(** Advance to a new even value — also from an already-even word, so a
    reader that sampled before the install always observes movement.
    Update-lock holders only, after the final barrier. *)
val seq_exit : t -> unit

(** {2 Ticket lock words}

    FIFO writer admission for {!Stm.Seqlock}: a writer draws a ticket
    and spins until the serving counter reaches it, so contended
    installs commit in arrival order.  The ticket wraps the ordinary
    update mutex (drawn before, advanced after), which keeps
    ticket-ordered writers safe against mutex-only lock holders
    (recovery, rollback, quiescence probes). *)

val ticket_draw : t -> int
val ticket_serving : t -> int
val ticket_advance : t -> unit

(** [tary_read t addr] is the 4-byte word at code address [addr] in the
    Tary region — atomic for aligned [addr], byte-composed for misaligned
    ones, and [Id.invalid] outside the in-use code range. *)
val tary_read : t -> int -> Id.t

(** [bary_read t idx] is the branch ID at slot [idx].
    Raises [Invalid_argument] on out-of-range slots (the loader guarantees
    embedded indexes are in range). *)
val bary_read : t -> int -> Id.t

(** [tary_set t addr id] writes a slot in one non-tearing store (the
    [movnti] analog); [publish] provides the phase barrier.
    Raises [Invalid_argument] when [addr] is misaligned or out of range. *)
val tary_set : t -> int -> Id.t -> unit

val bary_set : t -> int -> Id.t -> unit

(** [tary_entries t] lists [(addr, id)] for every non-invalid slot. *)
val tary_entries : t -> (int * Id.t) list

val bary_entries : t -> (int * Id.t) list

(** The redo log of an in-flight update transaction: the intended version
    and ECN maps.  {!Tx.update} sets it (under the update lock) before the
    first slot write and clears it after the final barrier, so a non-[None]
    journal observed by the next lock holder means the previous updater
    died mid-transaction and the install must be redone ({!Tx.recover}). *)
type journal_body =
  | Jfull of {
      jf_tary : (int * int) list;  (** target address -> ECN *)
      jf_bary : (int * int) list;  (** branch slot -> ECN *)
    }  (** a full install: slots not listed become invalid *)
  | Jdelta of {
      jd_tary : (int * int) list;  (** rewrites, packed at [j_version] *)
      jd_bary : (int * int) list;
      jd_tary_carry : (int * int * int) list;
          (** address, ECN, carried version: a slot joining an existing
              class at the class's already-installed version *)
      jd_bary_carry : (int * int * int) list;
    }  (** a delta install: only the listed slots are written *)

type journal = {
  j_version : int;
  j_body : journal_body;
  j_tag : int;  (** the updater's observer tag, replayed on redo *)
}

val set_journal : t -> journal option -> unit
val journal : t -> journal option

(** {2 Shard state snapshot (forensics)}

    A cheap view of one shard's control words for a forensic bundle:
    version, install-sequence word, quiescence accounting, reader
    registry size, in-flight-update flag, and the intent journal's
    identity (version/tag/kind/write count — not its slot values).
    Reads are the same racy-but-safe atomics the checkers use; a
    snapshot taken mid-install may straddle it, which an odd sequence
    word makes self-describing. *)

type journal_state = {
  js_version : int;
  js_tag : int;
  js_kind : string;  (** ["full"] or ["delta"] *)
  js_writes : int;  (** table-slot writes the redo would replay *)
}

type state = {
  st_shard : int;
  st_version : int;
  st_seq : int;
  st_updates_since_quiesce : int;
  st_quiesce_events : int;
  st_readers : int;
  st_update_in_progress : bool;
  st_code_size : int;
  st_bary_slots : int;
  st_journal : journal_state option;
}

val state : t -> state

val state_json : t -> Obs.Json.t
(** {!state} as the ["shard"] object of the forensic-bundle schema. *)

(** An opaque copy of the full table state — version, covered code size,
    ABA counter, both ECN maps, and the update journal.  The loader
    captures one before a dynamic-link protocol and {!restore}s it when the
    protocol fails, making a failed load observationally a no-op even when
    the failure struck between the two update phases. *)
type snapshot

val snapshot : t -> snapshot

(** [restore t s] reinstates [s] under the update lock and publishes the
    result with the write barrier. *)
val restore : t -> snapshot -> unit

(** {2 Partial snapshots}

    A delta install touches a known, small set of slots; the loader's
    rollback journal for an incremental dlopen captures only those
    (plus the scalar state), instead of both full tables.  The record
    is exposed so the loader can pin [ss_code_size] to the value it saw
    {e before} it extended the covered region. *)

type slot_snapshot = {
  ss_version : int;
  ss_code_size : int;
  ss_updates_since_quiesce : int;
  ss_journal : journal option;
  ss_tary : (int * Id.t) list;  (** address -> raw word (may be invalid) *)
  ss_bary : (int * Id.t) list;  (** slot -> raw word *)
}

(** [snapshot_slots t ~tary ~bary] captures the raw words of the given
    Tary addresses and Bary slots, with the scalar state.  Addresses may
    lie beyond the covered prefix (but within capacity): the extend
    happens before the install whose effects are being journalled.
    Raises [Invalid_argument] on a misaligned or out-of-capacity
    address.  Call under the update lock (e.g. from [Tx.update_delta]'s
    [pre_install] hook) so the capture is not torn by a concurrent
    update. *)
val snapshot_slots : t -> tary:int list -> bary:int list -> slot_snapshot

(** [restore_slots t s] writes the captured words back, restores the
    scalar state, and publishes — under the update lock.  Slots beyond
    the restored code size end up holding their captured (invalid)
    values, keeping the uncovered suffix clean. *)
val restore_slots : t -> slot_snapshot -> unit
