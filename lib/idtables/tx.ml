type outcome = Pass | Violation | Retries_exhausted

let pp_outcome ppf = function
  | Pass -> Fmt.string ppf "pass"
  | Violation -> Fmt.string ppf "violation"
  | Retries_exhausted -> Fmt.string ppf "retries-exhausted"

type escalation = Halt_process | Wait_for_updater | Fail_check

let pp_escalation ppf = function
  | Halt_process -> Fmt.string ppf "halt-process"
  | Wait_for_updater -> Fmt.string ppf "wait-for-updater"
  | Fail_check -> Fmt.string ppf "fail-check"

type watchdog = { wd_deadline : int; wd_on_expire : escalation }

let pp_watchdog ppf w =
  Fmt.pf ppf "watchdog(deadline=%d, %a)" w.wd_deadline pp_escalation
    w.wd_on_expire

(* Bounded exponential backoff: 2^round pause hints, capped at 64, so a
   checker spinning against a long update yields the core without ever
   sleeping (checks must stay syscall-free). *)
let backoff round =
  let spins = 1 lsl min round 6 in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let check_fast ?on_retry t ~bary_index ~target =
  let rec go round =
    let bid = Tables.bary_read t bary_index in
    let tid = Tables.tary_read t target in
    if bid = tid then true
    else if not (Id.valid tid) then false
    else if not (Id.same_version bid tid) then begin
      (* version skew: an update transaction is in flight *)
      Domain.cpu_relax ();
      (match on_retry with None -> () | Some f -> f round);
      go (round + 1)
    end
    else false
  in
  go 0

exception Version_space_exhausted

(* Build the full Tary/Bary images up front so every parameter error is
   raised before the first slot write: an [invalid_arg] never leaves the
   tables half-rewritten. *)
let build_images t ~version ~tary ~bary =
  let base = Tables.code_base t and size = Tables.code_size t in
  let slots = size / 4 in
  let new_tary = Array.make slots Id.invalid in
  List.iter
    (fun (addr, ecn) ->
      let off = addr - base in
      if off < 0 || off >= size || off mod 4 <> 0 then
        invalid_arg
          (Printf.sprintf "Tx.update: bad Tary target address 0x%x" addr);
      new_tary.(off / 4) <- Id.pack ~ecn ~version)
    tary;
  let new_bary = Array.make (Tables.bary_slots t) Id.invalid in
  List.iter
    (fun (idx, ecn) ->
      if idx < 0 || idx >= Array.length new_bary then
        invalid_arg (Printf.sprintf "Tx.update: bad Bary slot %d" idx);
      new_bary.(idx) <- Id.pack ~ecn ~version)
    bary;
  (new_tary, new_bary)

(* Publish a pre-validated image pair; caller holds the update lock.
   [faults] gates the injection hooks — a journal redo runs with them off
   so recovery cannot re-fail at the point that killed the original. *)
let install_locked ~faults ~got_update t ~version ~new_tary ~new_bary =
  Tables.set_version t version;
  let base = Tables.code_base t in
  (* Phase 1: publish the new Tary image slot by slot (each publish is an
     atomic, sequentially consistent write — the movnti-with-barrier
     analog). *)
  Array.iteri
    (fun k id ->
      if faults then Faults.hit Faults.Plan.Nth_tary_write;
      Tables.tary_set t (base + (4 * k)) id)
    new_tary;
  (* the write barrier between the two phases (paper Fig. 3 line 5) *)
  Tables.publish t;
  if faults then Faults.hit Faults.Plan.Between_tary_and_bary;
  got_update ();
  (* Phase 2: publish the new Bary table. *)
  Array.iteri (fun idx id -> Tables.bary_set t idx id) new_bary;
  Tables.publish t;
  (* the install is complete: snapshot reader epochs, so quiescence can
     later be declared once every checker has moved past this point *)
  Tables.observe_readers t

(* Redo a predecessor's torn install from its journal; caller holds the
   update lock.  The journaled GOT hook is gone with its updater — GOT
   redo belongs to the loader's own journal (see Process.load). *)
let recover_locked t =
  match Tables.journal t with
  | None -> false
  | Some { Tables.j_version; j_tary; j_bary; j_tag } ->
    let new_tary, new_bary =
      build_images t ~version:j_version ~tary:j_tary ~bary:j_bary
    in
    install_locked ~faults:false
      ~got_update:(fun () -> ())
      t ~version:j_version ~new_tary ~new_bary;
    Tables.set_journal t None;
    Faults.Stats.count_recovery ();
    Tables.notify_complete t ~version:j_version ~tag:j_tag;
    true

let recover t = Tables.with_update_lock t (fun () -> recover_locked t)

let check ?max_retries ?(escalation = Fail_check) ?watchdog
    ?(on_retry = fun () -> ()) t ~bary_index ~target =
  let rec attempt ~recovered budget round =
    let bid = Tables.bary_read t bary_index in
    let tid = Tables.tary_read t target in
    if bid = tid then Pass
    else if not (Id.valid tid) then Violation
    else if not (Id.same_version bid tid) then begin
      match budget with
      | Some 0 -> escalate escalation ~recovered
      | _ -> begin
        match watchdog with
        | Some w when round >= w.wd_deadline ->
          (* the skew outlived the deadline: the update-lock holder is
             stalled, or a dead updater left the tables torn *)
          Faults.Stats.count_watchdog ();
          escalate w.wd_on_expire ~recovered
        | _ ->
          retry round;
          attempt ~recovered
            (Option.map (fun n -> n - 1) budget)
            (round + 1)
      end
    end
    else Violation
  and retry round =
    Faults.Stats.count_retry ();
    on_retry ();
    backoff round
  and escalate esc ~recovered =
    match esc with
    | Fail_check -> Retries_exhausted
    | Halt_process -> Violation
    | Wait_for_updater ->
      if recovered then Retries_exhausted
      else begin
        (* Taking the update lock waits out a live updater; a dead one
           left its journal, which the redo completes.  Either way the
           skew is resolved — re-attempt once with a fresh budget. *)
        ignore (recover t);
        attempt ~recovered:true max_retries 0
      end
  in
  attempt ~recovered:false max_retries 0

(* The hard ABA wall: at [Id.max_version - 1] updates with no declared
   quiescence the next update could wrap the version space under a
   still-running check.  With registered readers, wait (bounded) for each
   of them to cross a branch boundary — busy checkers advance within a
   few backoff rounds; with no readers there can be no evidence, so
   refuse immediately, exactly as before the epoch machinery existed. *)
let quiesce_wall_rounds = 10_000

let ensure_version_budget t =
  if Tables.updates_since_quiesce t > 0 then ignore (Tables.try_quiesce t);
  if Tables.updates_since_quiesce t >= Id.max_version - 1 then begin
    if Tables.registered_readers t > 0 then begin
      let rec wait round =
        if round >= quiesce_wall_rounds then raise Version_space_exhausted
        else if not (Tables.try_quiesce t) then begin
          backoff round;
          wait (round + 1)
        end
      in
      wait 0
    end
    else raise Version_space_exhausted
  end

(* The body of an update transaction; caller holds the update lock. *)
let update_locked ?(tag = -1) ~got_update t ~tary ~bary =
  (* a torn predecessor must be redone before its tables are built on *)
  ignore (recover_locked t);
  (* The ABA guard (paper §5.2): 2^14 updates with no intervening
     quiescence point could wrap the version space during a still-running
     check transaction; refuse rather than risk it. *)
  ensure_version_budget t;
  Tables.count_update t;
  let version = (Tables.version t + 1) mod Id.max_version in
  let new_tary, new_bary = build_images t ~version ~tary ~bary in
  (* Journal the intent: from here until the final barrier, a death leaves
     enough state for the next lock holder to redo the install. *)
  Tables.set_journal t
    (Some { Tables.j_version = version; j_tary = tary; j_bary = bary; j_tag = tag });
  Tables.notify_begin t ~version ~tag;
  install_locked ~faults:true ~got_update t ~version ~new_tary ~new_bary;
  Tables.set_journal t None;
  Tables.notify_complete t ~version ~tag;
  version

let update ?tag ?(got_update = fun () -> ()) t ~tary ~bary =
  Tables.with_update_lock t (fun () -> update_locked ?tag ~got_update t ~tary ~bary)

let refresh t =
  Tables.with_update_lock t (fun () ->
      (* Snapshot under the lock so concurrent refreshes serialize. *)
      let tary =
        List.map (fun (addr, id) -> (addr, Id.ecn id)) (Tables.tary_entries t)
      in
      let bary =
        List.map (fun (idx, id) -> (idx, Id.ecn id)) (Tables.bary_entries t)
      in
      update_locked ~got_update:(fun () -> ()) t ~tary ~bary)
