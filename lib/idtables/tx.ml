type outcome = Pass | Violation | Retries_exhausted

let pp_outcome ppf = function
  | Pass -> Fmt.string ppf "pass"
  | Violation -> Fmt.string ppf "violation"
  | Retries_exhausted -> Fmt.string ppf "retries-exhausted"

type escalation = Halt_process | Wait_for_updater | Fail_check

let pp_escalation ppf = function
  | Halt_process -> Fmt.string ppf "halt-process"
  | Wait_for_updater -> Fmt.string ppf "wait-for-updater"
  | Fail_check -> Fmt.string ppf "fail-check"

type watchdog = { wd_deadline : int; wd_on_expire : escalation }

let pp_watchdog ppf w =
  Fmt.pf ppf "watchdog(deadline=%d, %a)" w.wd_deadline pp_escalation
    w.wd_on_expire

(* Telemetry metrics for the transaction layer.  Registration is
   module-init-time; the observe calls are no-ops while telemetry is
   disabled.  (Check latency and retries-per-check are recorded by
   [Telemetry.check_end] itself.) *)
let m_watchdog_wait = Telemetry.Metrics.histogram "mcfi_watchdog_wait_rounds"
let m_install_ns = Telemetry.Metrics.histogram "mcfi_install_ns"
let m_delta_writes = Telemetry.Metrics.histogram "mcfi_delta_writes"

(* Bounded exponential backoff: 2^round pause hints, capped at 64, so a
   checker spinning against a long update yields the core without ever
   sleeping (checks must stay syscall-free).  With [jitter], the spin
   count is drawn uniformly from [base, 2*base): N tenants backing off
   from the same contended install fan out instead of retrying in
   lockstep (thundering herd), and the draw is deterministic per PRNG
   seed so test failures replay exactly. *)
let backoff_spins ?jitter round =
  let base = 1 lsl min round 6 in
  match jitter with
  | None -> base
  | Some prng -> base + Mcfi_util.Prng.int prng base

let backoff ?jitter round =
  let spins = backoff_spins ?jitter round in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

(* ---- per-domain jitter streams ----

   A [Prng.t] is a mutable, unsynchronized stream: handing one PRNG to
   checkers on several domains races its state word and — worse —
   correlates their backoff draws, which is exactly the lockstep the
   jitter exists to break.  Each domain therefore derives its own stream
   lazily, from a process-wide base seed folded with the domain id
   (splitmix64's odd constant, as [Faults.Tenant.tenant_stream]).  The
   schedule is still deterministic per (base seed, domain id), so seeded
   harness runs replay; re-seeding bumps a generation counter and each
   domain re-derives on its next draw. *)
let jitter_base : int64 Atomic.t = Atomic.make 0x6A177E12D00DL
let jitter_gen : int Atomic.t = Atomic.make 0

let jitter_key : (int * Mcfi_util.Prng.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let seed_domain_jitter seed =
  Atomic.set jitter_base seed;
  Atomic.incr jitter_gen

let domain_jitter () =
  let cell = Domain.DLS.get jitter_key in
  let gen = Atomic.get jitter_gen in
  match !cell with
  | Some (g, prng) when g = gen -> prng
  | _ ->
    let did = (Domain.self () :> int) in
    let prng =
      Mcfi_util.Prng.create
        (Int64.logxor (Atomic.get jitter_base)
           (Int64.mul (Int64.of_int (did + 1)) 0x9E3779B97F4A7C15L))
    in
    cell := Some (gen, prng);
    prng

let check_fast ?on_retry t ~bary_index ~target =
  (* The production path stays event-free: a scalar per-domain tally is
     all the observability it gets, so the enabled cost is two plain
     increments and the disabled cost one atomic load. *)
  Telemetry.fast_check ();
  let rec go round =
    let bid = Tables.bary_read t bary_index in
    let tid = Tables.tary_read t target in
    if bid = tid then true
    else if not (Id.valid tid) then false
    else if not (Id.same_version bid tid) then begin
      (* version skew: an update transaction is in flight *)
      Telemetry.fast_retry ();
      Domain.cpu_relax ();
      (match on_retry with None -> () | Some f -> f round);
      go (round + 1)
    end
    else false
  in
  go 0

exception Version_space_exhausted

(* Build the full Tary/Bary images up front so every parameter error is
   raised before the first slot write: an [invalid_arg] never leaves the
   tables half-rewritten. *)
let build_images t ~version ~tary ~bary =
  let base = Tables.code_base t and size = Tables.code_size t in
  let slots = size / 4 in
  let new_tary = Array.make slots Id.invalid in
  List.iter
    (fun (addr, ecn) ->
      let off = addr - base in
      if off < 0 || off >= size || off mod 4 <> 0 then
        invalid_arg
          (Printf.sprintf "Tx.update: bad Tary target address 0x%x" addr);
      new_tary.(off / 4) <- Id.pack ~ecn ~version)
    tary;
  let new_bary = Array.make (Tables.bary_slots t) Id.invalid in
  List.iter
    (fun (idx, ecn) ->
      if idx < 0 || idx >= Array.length new_bary then
        invalid_arg (Printf.sprintf "Tx.update: bad Bary slot %d" idx);
      new_bary.(idx) <- Id.pack ~ecn ~version)
    bary;
  (new_tary, new_bary)

(* Publish a pre-validated image pair; caller holds the update lock.
   [faults] gates the injection hooks — a journal redo runs with them off
   so recovery cannot re-fail at the point that killed the original. *)
let install_locked ~faults ~got_update t ~version ~new_tary ~new_bary =
  let shard = Tables.shard t in
  Tables.seq_enter t;
  Tables.set_version t version;
  let base = Tables.code_base t in
  (* Phase 1: publish the new Tary image slot by slot (each publish is an
     atomic, sequentially consistent write — the movnti-with-barrier
     analog). *)
  Array.iteri
    (fun k id ->
      if faults then Faults.hit ~shard Faults.Plan.Nth_tary_write;
      Tables.tary_set t (base + (4 * k)) id)
    new_tary;
  (* the write barrier between the two phases (paper Fig. 3 line 5) *)
  Tables.publish t;
  if faults then Faults.hit ~shard Faults.Plan.Between_tary_and_bary;
  got_update ();
  (* Phase 2: publish the new Bary table. *)
  Array.iteri (fun idx id -> Tables.bary_set t idx id) new_bary;
  Tables.publish t;
  Tables.seq_exit t;
  (* the install is complete: snapshot reader epochs, so quiescence can
     later be declared once every checker has moved past this point *)
  Tables.observe_readers t

(* Validate and pack a delta's writes up front (failure atomicity, as
   [build_images]): rewrites at [version], carries at their recorded
   class version. *)
let build_delta_writes t ~version ~tary ~bary ~tary_carry ~bary_carry =
  let base = Tables.code_base t and size = Tables.code_size t in
  let check_addr addr =
    let off = addr - base in
    if off < 0 || off >= size || off mod 4 <> 0 then
      invalid_arg
        (Printf.sprintf "Tx.update_delta: bad Tary target address 0x%x" addr)
  in
  let check_slot idx =
    if idx < 0 || idx >= Tables.bary_slots t then
      invalid_arg (Printf.sprintf "Tx.update_delta: bad Bary slot %d" idx)
  in
  let check_version v =
    if v < 0 || v >= Id.max_version then
      invalid_arg (Printf.sprintf "Tx.update_delta: bad carried version %d" v)
  in
  let tary_writes =
    List.map
      (fun (addr, ecn) ->
        check_addr addr;
        (addr, Id.pack ~ecn ~version))
      tary
    @ List.map
        (fun (addr, ecn, v) ->
          check_addr addr;
          check_version v;
          (addr, Id.pack ~ecn ~version:v))
        tary_carry
  in
  let bary_writes =
    List.map
      (fun (idx, ecn) ->
        check_slot idx;
        (idx, Id.pack ~ecn ~version))
      bary
    @ List.map
        (fun (idx, ecn, v) ->
          check_slot idx;
          check_version v;
          (idx, Id.pack ~ecn ~version:v))
        bary_carry
  in
  (tary_writes, bary_writes)

(* Publish a pre-validated write list — the delta analog of
   [install_locked], same Tary-first / barrier / Bary order, same fault
   points; caller holds the update lock.  Slots not listed keep their
   current IDs (clean classes stay readable at their old version
   throughout). *)
let install_delta_locked ~faults ~got_update t ~version ~tary_writes
    ~bary_writes =
  let shard = Tables.shard t in
  Tables.seq_enter t;
  Tables.set_version t version;
  List.iter
    (fun (addr, id) ->
      if faults then Faults.hit ~shard Faults.Plan.Nth_tary_write;
      Tables.tary_set t addr id)
    tary_writes;
  Tables.publish t;
  if faults then Faults.hit ~shard Faults.Plan.Between_tary_and_bary;
  got_update ();
  List.iter (fun (idx, id) -> Tables.bary_set t idx id) bary_writes;
  Tables.publish t;
  Tables.seq_exit t;
  Tables.observe_readers t

(* Redo a predecessor's torn install from its journal; caller holds the
   update lock.  The journaled GOT hook is gone with its updater — GOT
   redo belongs to the loader's own journal (see Process.load). *)
let recover_locked t =
  match Tables.journal t with
  | None -> false
  | Some { Tables.j_version; j_body; j_tag } ->
    (match j_body with
    | Tables.Jfull { jf_tary; jf_bary } ->
      let new_tary, new_bary =
        build_images t ~version:j_version ~tary:jf_tary ~bary:jf_bary
      in
      install_locked ~faults:false
        ~got_update:(fun () -> ())
        t ~version:j_version ~new_tary ~new_bary
    | Tables.Jdelta { jd_tary; jd_bary; jd_tary_carry; jd_bary_carry } ->
      let tary_writes, bary_writes =
        build_delta_writes t ~version:j_version ~tary:jd_tary ~bary:jd_bary
          ~tary_carry:jd_tary_carry ~bary_carry:jd_bary_carry
      in
      install_delta_locked ~faults:false
        ~got_update:(fun () -> ())
        t ~version:j_version ~tary_writes ~bary_writes);
    Tables.set_journal t None;
    Faults.Stats.count_recovery ();
    Telemetry.emit Telemetry.Event.Update_recover ~a:j_version ~b:j_tag ~c:0
      ~x:(Telemetry.Event.make_ctx ~shard:(Tables.shard t) ());
    Tables.notify_complete t ~version:j_version ~tag:j_tag;
    true

let recover t = Tables.with_update_lock t (fun () -> recover_locked t)

(* ---- failure-context capture (flight recorder) ----

   Gated on the recorder alone, never on [Telemetry.enabled]: the black
   box is the thing that must still have answers when sampling was off.
   Only failing outcomes reach here, so the pass path pays nothing; an
   over-cap trigger costs two atomic loads ([trigger_armed]) before any
   string or JSON is built. *)

let id_json id =
  if Id.valid id then
    Obs.Json.Obj
      [
        ("word", Obs.Json.num id);
        ("ecn", Obs.Json.num (Id.ecn id));
        ("ecn_class", Obs.Json.Str (Obs.Flightrec.ecn_name (Id.ecn id)));
        ("version", Obs.Json.num (Id.version id));
      ]
  else
    Obs.Json.Obj
      [ ("word", Obs.Json.num id); ("valid", Obs.Json.Bool false) ]

let site_json t ~bary_index ~target ~retries =
  let bid = Tables.bary_read t bary_index in
  let tid = Tables.tary_read t target in
  Obs.Json.Obj
    [
      ("slot", Obs.Json.num bary_index);
      ("target", Obs.Json.num target);
      ("bary_id", id_json bid);
      ("tary_id", id_json tid);
      ("retries", Obs.Json.num retries);
    ]

let capture_failure t ~bary_index ~target ~outcome ~retries =
  let shard = Tables.shard t in
  let ctx = Telemetry.Event.make_ctx ~shard () in
  let kind, tr =
    match outcome with
    | Retries_exhausted ->
      ( Telemetry.Event.(kind_code Check_exhausted),
        Obs.Flightrec.Tx_escalation )
    | _ ->
      (Telemetry.Event.(kind_code Check_violation), Obs.Flightrec.Failed_check)
  in
  Obs.Flightrec.note ~kind ~ctx ~a:bary_index ~b:target ~c:retries;
  if Obs.Flightrec.trigger_armed tr then begin
    let reason =
      Fmt.str "%a at slot %d target 0x%x (shard %d, %d retries)" pp_outcome
        outcome bary_index target shard retries
    in
    ignore
      (Obs.Flightrec.record_trigger tr ~reason
         ~extra:
           [
             ("site", site_json t ~bary_index ~target ~retries);
             ("shard", Tables.state_json t);
           ]
         ())
  end

let capture_watchdog t ~bary_index ~target ~rounds =
  let shard = Tables.shard t in
  let ctx = Telemetry.Event.make_ctx ~shard () in
  Obs.Flightrec.note
    ~kind:Telemetry.Event.(kind_code Watchdog_fire)
    ~ctx ~a:(Tables.version t) ~b:bary_index ~c:rounds;
  if Obs.Flightrec.trigger_armed Obs.Flightrec.Watchdog then begin
    let reason =
      Fmt.str "watchdog fired after %d rounds at slot %d (shard %d)" rounds
        bary_index shard
    in
    ignore
      (Obs.Flightrec.record_trigger Obs.Flightrec.Watchdog ~reason
         ~extra:
           [
             ("site", site_json t ~bary_index ~target ~retries:rounds);
             ("shard", Tables.state_json t);
           ]
         ())
  end

let check ?max_retries ?(escalation = Fail_check) ?watchdog ?jitter
    ?(on_retry = fun () -> ()) t ~bary_index ~target =
  let ctx = Telemetry.check_begin () in
  let telemetry_on = ctx <> 0 in
  let xw () = Telemetry.Event.make_ctx ~shard:(Tables.shard t) () in
  let nretries = ref 0 in
  let rec attempt ~recovered budget round =
    let bid = Tables.bary_read t bary_index in
    let tid = Tables.tary_read t target in
    if bid = tid then Pass
    else if not (Id.valid tid) then Violation
    else if not (Id.same_version bid tid) then begin
      match budget with
      | Some 0 -> escalate escalation ~recovered
      | _ -> begin
        match watchdog with
        | Some w when round >= w.wd_deadline ->
          (* the skew outlived the deadline: the update-lock holder is
             stalled, or a dead updater left the tables torn *)
          Faults.Stats.count_watchdog ();
          if telemetry_on then begin
            (* [a] is the table version the skew was observed against:
               the install responsible published its Update_begin for
               this (or a later) version at a smaller sequence number,
               which is what makes the fire attributable from the
               merged trace. *)
            Telemetry.emit Telemetry.Event.Watchdog_fire
              ~a:(Tables.version t) ~b:bary_index ~c:round ~x:(xw ());
            Telemetry.Metrics.observe m_watchdog_wait round
          end;
          if Obs.Flightrec.recording () then
            capture_watchdog t ~bary_index ~target ~rounds:round;
          escalate w.wd_on_expire ~recovered
        | _ ->
          retry round;
          attempt ~recovered
            (Option.map (fun n -> n - 1) budget)
            (round + 1)
      end
    end
    else Violation
  and retry round =
    Faults.Stats.count_retry ();
    (* counted unconditionally: a forensic bundle reports the retry
       ladder even when telemetry sampling was off *)
    incr nretries;
    if telemetry_on then begin
      (* A sampled check traces its whole retry loop; unsampled checks
         only tally.  During an install every checker retries at once, so
         an unconditional per-retry event would contend the global trace
         sequence across domains. *)
      if Telemetry.ctx_sampled ctx then
        Telemetry.emit Telemetry.Event.Check_retry ~a:bary_index ~b:target
          ~c:round ~x:(xw ())
    end;
    on_retry ();
    backoff ?jitter round
  and escalate esc ~recovered =
    match esc with
    | Fail_check ->
      Faults.Stats.count_failed_check ();
      Retries_exhausted
    | Halt_process ->
      Faults.Stats.count_halt ();
      Violation
    | Wait_for_updater ->
      if recovered then begin
        (* waited once already and the skew persists: give up *)
        Faults.Stats.count_failed_check ();
        Retries_exhausted
      end
      else begin
        (* Taking the update lock waits out a live updater; a dead one
           left its journal, which the redo completes.  Either way the
           skew is resolved — re-attempt once with a fresh budget. *)
        Faults.Stats.count_wait ();
        ignore (recover t);
        attempt ~recovered:true max_retries 0
      end
  in
  let outcome = attempt ~recovered:false max_retries 0 in
  (match outcome with
  | Pass -> ()
  | (Violation | Retries_exhausted) as o ->
    if Obs.Flightrec.recording () then
      capture_failure t ~bary_index ~target ~outcome:o ~retries:!nretries);
  (* Only a sampled or detail-mode check has exit work; the common
     enabled check ends on this single inlined bit test.  Per-check
     events or shared counters here would make every checker domain
     fight over the same cache lines, which measures as tens of percent
     of check throughput — rare structural events (watchdog fires,
     update lifecycle, faults) are the only always-on emissions. *)
  if Telemetry.ctx_active ctx then begin
    let code =
      match outcome with Pass -> 0 | Violation -> 1 | Retries_exhausted -> 2
    in
    Telemetry.check_end ctx ~outcome:code ~slot:bary_index ~target
      ~retries:!nretries ~x:(xw ())
  end;
  outcome

(* ---- version-hoisted check sites (TML-style read hoisting) ----

   A branch site that keeps transferring to the same target re-reads two
   table slots per check only to recompute an answer the tables have not
   changed since.  The hoisted site caches the (branch ID, target ID)
   pair together with the install sequence word it was read under and
   re-validates on that word alone: every install-like mutation
   (updates, journal redo, loader rollback) makes the word odd before
   its first slot write and advances it to a fresh even value after the
   final barrier, so an unchanged even word proves the slot arrays are
   bit-identical to the fill instant and replaying the cached pair is
   linearizable to both loads happening now.  A moved (or odd) word
   falls back to the full transaction and refills.  Only settled states
   are cached — a version-skewed pair observed mid-install is never
   replayed, so the retry/escalation ladder stays entirely on the full
   path. *)

type site = {
  mutable s_seq : int;  (** even sequence word the cache was filled under *)
  mutable s_target : int;
  mutable s_bid : Id.t;
  mutable s_tid : Id.t;
  mutable s_hits : int;
  mutable s_misses : int;
}

let site () =
  {
    s_seq = -1;
    s_target = min_int;
    s_bid = Id.invalid;
    s_tid = Id.invalid;
    s_hits = 0;
    s_misses = 0;
  }

let site_stats s = (s.s_hits, s.s_misses)

(* A settled pair decides the check without retrying: equal IDs (pass),
   an invalid target, or an ECN mismatch at equal versions (violation).
   The remaining state — valid IDs at different versions — means an
   install was in flight and must never be cached. *)
let settled ~bid ~tid =
  bid = tid || (not (Id.valid tid)) || Id.same_version bid tid

let refill t site ~bary_index ~target =
  let s0 = Tables.seq_read t in
  if s0 land 1 = 0 then begin
    let bid = Tables.bary_read t bary_index in
    let tid = Tables.tary_read t target in
    if Tables.seq_read t = s0 && settled ~bid ~tid then begin
      site.s_seq <- s0;
      site.s_target <- target;
      site.s_bid <- bid;
      site.s_tid <- tid
    end
  end

let check_hoisted_with ~full t site ~bary_index ~target =
  let s = Tables.seq_read t in
  if s land 1 = 0 && s = site.s_seq && target = site.s_target then begin
    site.s_hits <- site.s_hits + 1;
    Telemetry.fast_check ();
    if site.s_bid = site.s_tid then Pass
    else begin
      (* a cached violation is still a violation: the black box must
         account for it even though the full transaction never ran *)
      if Obs.Flightrec.recording () then
        capture_failure t ~bary_index ~target ~outcome:Violation ~retries:0;
      Violation
    end
  end
  else begin
    site.s_misses <- site.s_misses + 1;
    let outcome = full () in
    refill t site ~bary_index ~target;
    outcome
  end

let check_hoisted ?max_retries ?escalation ?watchdog ?jitter ?on_retry t site
    ~bary_index ~target =
  check_hoisted_with
    ~full:(fun () ->
      check ?max_retries ?escalation ?watchdog ?jitter ?on_retry t ~bary_index
        ~target)
    t site ~bary_index ~target

(* The hard ABA wall: at [Id.max_version - 1] updates with no declared
   quiescence the next update could wrap the version space under a
   still-running check.  With registered readers, wait (bounded) for each
   of them to cross a branch boundary — busy checkers advance within a
   few backoff rounds; with no readers there can be no evidence, so
   refuse immediately, exactly as before the epoch machinery existed. *)
let quiesce_wall_rounds = 10_000

let ensure_version_budget t =
  if Tables.updates_since_quiesce t > 0 then ignore (Tables.try_quiesce t);
  if Tables.updates_since_quiesce t >= Id.max_version - 1 then begin
    if Tables.registered_readers t > 0 then begin
      let rec wait round =
        if round >= quiesce_wall_rounds then raise Version_space_exhausted
        else if not (Tables.try_quiesce t) then begin
          backoff round;
          wait (round + 1)
        end
      in
      wait 0
    end
    else raise Version_space_exhausted
  end

(* The body of an update transaction; caller holds the update lock. *)
let update_locked ?(tag = -1) ~got_update t ~tary ~bary =
  (* a torn predecessor must be redone before its tables are built on *)
  ignore (recover_locked t);
  (* The ABA guard (paper §5.2): 2^14 updates with no intervening
     quiescence point could wrap the version space during a still-running
     check transaction; refuse rather than risk it. *)
  ensure_version_budget t;
  Tables.count_update t;
  let version = (Tables.version t + 1) mod Id.max_version in
  let new_tary, new_bary = build_images t ~version ~tary ~bary in
  (* Journal the intent: from here until the final barrier, a death leaves
     enough state for the next lock holder to redo the install. *)
  Tables.set_journal t
    (Some
       {
         Tables.j_version = version;
         j_body = Tables.Jfull { jf_tary = tary; jf_bary = bary };
         j_tag = tag;
       });
  Tables.notify_begin t ~version ~tag;
  let t_install = if Telemetry.enabled () then Telemetry.now_ns () else 0 in
  install_locked ~faults:true ~got_update t ~version ~new_tary ~new_bary;
  if t_install > 0 then
    Telemetry.Metrics.observe m_install_ns (Telemetry.now_ns () - t_install);
  Tables.set_journal t None;
  Tables.notify_complete t ~version ~tag;
  version

let update ?tag ?(got_update = fun () -> ()) t ~tary ~bary =
  Tables.with_update_lock t (fun () -> update_locked ?tag ~got_update t ~tary ~bary)

type carry_source = From_tary of int | From_bary of int

(* Read the donor's live ID and keep its version for the new slot.
   Resolved under the update lock, after a torn predecessor has been
   redone — anything earlier could capture a version a concurrent
   refresh or a journal redo is about to replace.  The donor must still
   carry the class's ECN: a mismatch means the caller's delta was
   computed against tables that have since changed shape. *)
let resolve_carry t (key, ecn, src) =
  let donor_id =
    match src with
    | From_tary addr -> Tables.tary_read t addr
    | From_bary idx -> Tables.bary_read t idx
  in
  if (not (Id.valid donor_id)) || Id.ecn donor_id <> ecn then
    invalid_arg
      (Printf.sprintf "Tx.update_delta: carry donor does not hold ECN %d" ecn);
  (key, ecn, Id.version donor_id)

(* The delta update transaction: same skeleton as [update_locked] —
   recover a torn predecessor, respect the ABA budget, bump the version,
   journal the intent, install with the same phase order — but only the
   listed slots are written.  Rewrites get the new version; carry
   entries join an existing class at its current version, so the rest
   of that class (and every untouched class) is never version-skewed
   and concurrent checks on it do not retry during the install. *)
let update_delta_locked ?(tag = -1) ~got_update ~pre_install t ~tary ~bary
    ~tary_carry ~bary_carry =
  ignore (recover_locked t);
  ensure_version_budget t;
  Tables.count_update t;
  let version = (Tables.version t + 1) mod Id.max_version in
  let tary_carry = List.map (resolve_carry t) tary_carry in
  let bary_carry = List.map (resolve_carry t) bary_carry in
  let tary_writes, bary_writes =
    build_delta_writes t ~version ~tary ~bary ~tary_carry ~bary_carry
  in
  pre_install ();
  Tables.set_journal t
    (Some
       {
         Tables.j_version = version;
         j_body =
           Tables.Jdelta
             {
               jd_tary = tary;
               jd_bary = bary;
               jd_tary_carry = tary_carry;
               jd_bary_carry = bary_carry;
             };
         j_tag = tag;
       });
  Tables.notify_begin t ~version ~tag;
  let t_install = if Telemetry.enabled () then Telemetry.now_ns () else 0 in
  install_delta_locked ~faults:true ~got_update t ~version ~tary_writes
    ~bary_writes;
  if t_install > 0 then begin
    Telemetry.Metrics.observe m_install_ns (Telemetry.now_ns () - t_install);
    Telemetry.Metrics.observe m_delta_writes
      (List.length tary_writes + List.length bary_writes)
  end;
  Tables.set_journal t None;
  Tables.notify_complete t ~version ~tag;
  version

let update_delta ?tag ?(got_update = fun () -> ())
    ?(pre_install = fun () -> ()) t ~tary ~bary ~tary_carry ~bary_carry =
  Tables.with_update_lock t (fun () ->
      update_delta_locked ?tag ~got_update ~pre_install t ~tary ~bary
        ~tary_carry ~bary_carry)

let refresh t =
  Tables.with_update_lock t (fun () ->
      (* Snapshot under the lock so concurrent refreshes serialize. *)
      let tary =
        List.map (fun (addr, id) -> (addr, Id.ecn id)) (Tables.tary_entries t)
      in
      let bary =
        List.map (fun (idx, id) -> (idx, Id.ecn id)) (Tables.bary_entries t)
      in
      update_locked ~got_update:(fun () -> ()) t ~tary ~bary)
