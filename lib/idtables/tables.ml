(* Table storage: plain int arrays, one word per slot.

   This mirrors the hardware the paper relies on: an aligned 4-byte read
   or write ([movl]/[movnti]) is atomic, and that is all the transaction
   protocol needs.  In OCaml 5 terms, immediate-valued array cells never
   tear, and racy reads simply return a current-or-stale value; the
   protocol is safe under that relaxed visibility because a check
   transaction only PASSES when the branch ID and target ID are
   bit-identical — any mixed-version view fails the comparison and
   retries (or halts on an invalid ID), never passes.  The [sync] atomic
   is bumped between the Tary and Bary phases and at the end of an update
   (the paper's write barrier): it publishes the plain writes to other
   domains at a well-defined point. *)

type journal = {
  j_version : int;
  j_tary : (int * int) list; (* target address -> ECN *)
  j_bary : (int * int) list; (* branch slot -> ECN *)
}

type t = {
  code_base : int;
  capacity : int;
  mutable code_size : int;
  tary : int array; (* slot k covers code address base + 4k *)
  bary : int array;
  mutable version : int;
  mutable updates_since_quiesce : int;
  sync : int Atomic.t;
  update_lock : Mutex.t;
  (* The redo log of the in-flight update transaction: set (under the
     update lock) before the first slot write, cleared after the final
     barrier.  A non-[None] value outside the lock means the updater died
     mid-transaction; the next updater (or [Tx.recover]) redoes it. *)
  mutable journal : journal option;
}

let round4 n = (n + 3) land lnot 3

let create ?covered ~code_base ~capacity ~bary_slots () =
  let capacity = round4 (max capacity 4) in
  {
    code_base;
    capacity;
    code_size = round4 (min capacity (Option.value covered ~default:capacity));
    tary = Array.make (capacity / 4) Id.invalid;
    bary = Array.make (max bary_slots 1) Id.invalid;
    version = 0;
    updates_since_quiesce = 0;
    sync = Atomic.make 0;
    update_lock = Mutex.create ();
    journal = None;
  }

let code_base t = t.code_base
let capacity t = t.capacity
let code_size t = t.code_size

let extend t bytes =
  let size = round4 (t.code_size + bytes) in
  if size > t.capacity then
    invalid_arg "Tables.extend: beyond reserved capacity";
  t.code_size <- size

let bary_slots t = Array.length t.bary

let version t = t.version
let set_version t v = t.version <- v

let updates_since_quiesce t = t.updates_since_quiesce
let count_update t = t.updates_since_quiesce <- t.updates_since_quiesce + 1
let quiesce t = t.updates_since_quiesce <- 0

let publish t = Atomic.incr t.sync

let with_update_lock t f =
  Mutex.lock t.update_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.update_lock) f

let slot_value t k =
  if k < 0 || k >= t.code_size / 4 then Id.invalid
  else Array.unsafe_get t.tary k

(* The misaligned/out-of-range slow path, kept out of line so the aligned
   read below stays small enough for cross-module inlining. *)
let tary_read_slow t addr =
  let off = addr - t.code_base in
  if off < 0 || off >= t.code_size then Id.invalid
  else begin
    let k = off lsr 2 and r = off land 3 in
    (* Misaligned: the word spans slots k and k+1 (little-endian bytes). *)
    let lo = slot_value t k and hi = slot_value t (k + 1) in
    let b i = if i < 4 then Id.byte lo i else Id.byte hi (i - 4) in
    Id.of_bytes (b r) (b (r + 1)) (b (r + 2)) (b (r + 3))
  end

let[@inline] tary_read t addr =
  let off = addr - t.code_base in
  if off < 0 || off >= t.code_size || off land 3 <> 0 then
    tary_read_slow t addr
  else Array.unsafe_get t.tary (off lsr 2)

let[@inline] bary_read t idx =
  if idx < 0 || idx >= Array.length t.bary then
    invalid_arg (Printf.sprintf "Tables.bary_read: slot %d out of range" idx);
  Array.unsafe_get t.bary idx

let tary_set t addr id =
  let off = addr - t.code_base in
  if off < 0 || off >= t.code_size then
    invalid_arg (Printf.sprintf "Tables.tary_set: address 0x%x out of range" addr);
  if off mod 4 <> 0 then
    invalid_arg (Printf.sprintf "Tables.tary_set: address 0x%x misaligned" addr);
  t.tary.(off / 4) <- id

let bary_set t idx id =
  if idx < 0 || idx >= Array.length t.bary then
    invalid_arg (Printf.sprintf "Tables.bary_set: slot %d out of range" idx);
  t.bary.(idx) <- id

let tary_entries t =
  let acc = ref [] in
  for k = (t.code_size / 4) - 1 downto 0 do
    let v = t.tary.(k) in
    if v <> Id.invalid then acc := (t.code_base + (4 * k), v) :: !acc
  done;
  !acc

let bary_entries t =
  let acc = ref [] in
  for k = Array.length t.bary - 1 downto 0 do
    let v = t.bary.(k) in
    if v <> Id.invalid then acc := (k, v) :: !acc
  done;
  !acc

let set_journal t j = t.journal <- j
let journal t = t.journal

(* ---- whole-table snapshot / restore (loader rollback) ---- *)

type snapshot = {
  s_version : int;
  s_code_size : int;
  s_updates_since_quiesce : int;
  s_tary : (int * Id.t) list;
  s_bary : (int * Id.t) list;
  s_journal : journal option;
}

let snapshot t =
  {
    s_version = t.version;
    s_code_size = t.code_size;
    s_updates_since_quiesce = t.updates_since_quiesce;
    s_tary = tary_entries t;
    s_bary = bary_entries t;
    s_journal = t.journal;
  }

let restore t s =
  with_update_lock t (fun () ->
      (* clear the current in-use prefix — it is at least as large as the
         snapshot's, since [extend] only grows *)
      Array.fill t.tary 0 (t.code_size / 4) Id.invalid;
      Array.fill t.bary 0 (Array.length t.bary) Id.invalid;
      t.code_size <- s.s_code_size;
      t.version <- s.s_version;
      t.updates_since_quiesce <- s.s_updates_since_quiesce;
      t.journal <- s.s_journal;
      List.iter
        (fun (addr, id) -> t.tary.((addr - t.code_base) / 4) <- id)
        s.s_tary;
      List.iter (fun (k, id) -> t.bary.(k) <- id) s.s_bary;
      publish t)
