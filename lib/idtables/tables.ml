(* Table storage: plain int arrays, one word per slot.

   This mirrors the hardware the paper relies on: an aligned 4-byte read
   or write ([movl]/[movnti]) is atomic, and that is all the transaction
   protocol needs.  In OCaml 5 terms, immediate-valued array cells never
   tear, and racy reads simply return a current-or-stale value; the
   protocol is safe under that relaxed visibility because a check
   transaction only PASSES when the branch ID and target ID are
   bit-identical — any mixed-version view fails the comparison and
   retries (or halts on an invalid ID), never passes.  The [sync] atomic
   is bumped between the Tary and Bary phases and at the end of an update
   (the paper's write barrier): it publishes the plain writes to other
   domains at a well-defined point.

   Which fields are [Atomic] and why (the OCaml 5 memory-model audit):
   [version], [updates_since_quiesce] and [journal] are written by
   update-lock holders but read from other domains without the lock
   (checkers probing for a live update, the watchdog, the quiescence
   machinery), so their reads are load-bearing and must be publication
   points.  [code_size] stays a plain field: it only grows, under the
   loader (serialized with updates), and a checker reading a stale,
   smaller value classifies the target as out-of-range — [Id.invalid] —
   which fails closed.  The table slots themselves stay plain cells per
   the argument above. *)

(* A full-install journal carries the complete intended ECN maps; a
   delta journal carries only the slots the install writes — rewrites
   (packed at [j_version]) plus grow entries that join an existing class
   and carry its already-installed version.  Both are redone the same
   way: replay every listed write, Tary first. *)
type journal_body =
  | Jfull of {
      jf_tary : (int * int) list; (* target address -> ECN *)
      jf_bary : (int * int) list; (* branch slot -> ECN *)
    }
  | Jdelta of {
      jd_tary : (int * int) list; (* rewrites, packed at j_version *)
      jd_bary : (int * int) list;
      jd_tary_carry : (int * int * int) list; (* addr, ECN, carried version *)
      jd_bary_carry : (int * int * int) list; (* slot, ECN, carried version *)
    }

type journal = {
  j_version : int;
  j_body : journal_body;
  j_tag : int; (* caller's tag, reported to the observer on redo *)
}

(* One registered checker: a per-domain epoch counter for quiescence
   inference.  [rd_epoch] is bumped by the owning domain at branch
   boundaries (outside any check transaction); [rd_seen] is the epoch
   snapshot taken by the last completed install, written and read only
   under the update lock. *)
type reader = {
  rd_epoch : int Atomic.t;
  rd_online : bool Atomic.t;
  mutable rd_seen : int;
}

type observer = {
  obs_begin : version:int -> tag:int -> unit;
  obs_complete : version:int -> tag:int -> unit;
}

type t = {
  shard_id : int; (* which fault domain these tables are; 0 standalone *)
  code_base : int;
  capacity : int;
  mutable code_size : int;
  tary : int array; (* slot k covers code address base + 4k *)
  bary : int array;
  version : int Atomic.t;
  updates_since_quiesce : int Atomic.t;
  quiesce_events : int Atomic.t;
  sync : int Atomic.t;
  (* The install sequence word for the seqlock-family STM variants
     ([Stm.Norec] / [Stm.Seqlock]): odd exactly while slot writes are in
     flight, bumped to the next even value when they are published.  The
     MCFI protocol itself never reads it (a check passes only on
     bit-identical IDs, so it needs no snapshot validation), but every
     install path maintains it so the alternative readers can coexist
     with any writer — including journal redo and loader rollback.  A
     torn install leaves it odd; recovery forces it even. *)
  seq : int Atomic.t;
  (* FIFO writer admission for the ticket-seqlock variant: a writer draws
     [ticket_next] and spins until [ticket_serving] reaches its draw, so
     contended installs commit in arrival order instead of by mutex
     luck. *)
  ticket_next : int Atomic.t;
  ticket_serving : int Atomic.t;
  update_lock : Mutex.t;
  update_busy : bool Atomic.t; (* diagnostic: is the lock held? *)
  readers : reader list Atomic.t;
  mutable observer : observer option; (* set before domains spawn *)
  (* The redo log of the in-flight update transaction: set (under the
     update lock) before the first slot write, cleared after the final
     barrier.  A non-[None] value outside the lock means the updater died
     mid-transaction; the next updater (or [Tx.recover]) redoes it. *)
  journal : journal option Atomic.t;
}

let round4 n = (n + 3) land lnot 3

let create ?(shard = 0) ?covered ~code_base ~capacity ~bary_slots () =
  let capacity = round4 (max capacity 4) in
  {
    shard_id = shard;
    code_base;
    capacity;
    code_size = round4 (min capacity (Option.value covered ~default:capacity));
    tary = Array.make (capacity / 4) Id.invalid;
    bary = Array.make (max bary_slots 1) Id.invalid;
    version = Atomic.make 0;
    updates_since_quiesce = Atomic.make 0;
    quiesce_events = Atomic.make 0;
    sync = Atomic.make 0;
    seq = Atomic.make 0;
    ticket_next = Atomic.make 0;
    ticket_serving = Atomic.make 0;
    update_lock = Mutex.create ();
    update_busy = Atomic.make false;
    readers = Atomic.make [];
    observer = None;
    journal = Atomic.make None;
  }

let shard t = t.shard_id
let code_base t = t.code_base
let capacity t = t.capacity
let code_size t = t.code_size

let extend t bytes =
  let size = round4 (t.code_size + bytes) in
  if size > t.capacity then
    invalid_arg "Tables.extend: beyond reserved capacity";
  t.code_size <- size

let bary_slots t = Array.length t.bary

let version t = Atomic.get t.version
let set_version t v = Atomic.set t.version v

let updates_since_quiesce t = Atomic.get t.updates_since_quiesce

let quiesce t =
  Atomic.set t.updates_since_quiesce 0;
  Atomic.incr t.quiesce_events

let quiesce_events t = Atomic.get t.quiesce_events

let publish t = Atomic.incr t.sync

(* ---- install sequence word (seqlock-family STM readers) ----

   [seq_enter] before the first slot write of any install-like mutation,
   [seq_exit] after its final barrier.  Enter is idempotent on an
   already-odd word (a journal redo re-entering a torn install keeps the
   same odd value — readers that sampled it still see a writer in
   flight); exit always lands on a {e new} even value, so a reader that
   sampled the pre-install even value detects movement. *)
let seq_read t = Atomic.get t.seq
let seq_enter t = Atomic.set t.seq (Atomic.get t.seq lor 1)
let seq_exit t = Atomic.set t.seq ((Atomic.get t.seq lor 1) + 1)

(* Ticket words for the FIFO writer lock ([Stm.Seqlock]). *)
let ticket_draw t = Atomic.fetch_and_add t.ticket_next 1
let ticket_serving t = Atomic.get t.ticket_serving
let ticket_advance t = Atomic.incr t.ticket_serving

let with_update_lock t f =
  Mutex.lock t.update_lock;
  Atomic.set t.update_busy true;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.update_busy false;
      Mutex.unlock t.update_lock)
    f

let update_in_progress t = Atomic.get t.update_busy

(* ---- epoch-based quiescence (paper §5.2's ABA guard, made concurrent)

   The ABA hazard needs a check transaction that stays in flight across
   2^14 update transactions.  Instead of trusting a caller to declare
   quiescence, checker domains register an epoch counter and bump it at
   branch boundaries; each completed install snapshots every reader's
   epoch ([observe_readers]), and quiescence may be declared once every
   online reader has moved past its snapshot — then any check still in
   flight began after the last install completed, so the counter of
   wrap-hazard updates it spans restarts at zero. *)

let rec cas_readers t f =
  let old = Atomic.get t.readers in
  if not (Atomic.compare_and_set t.readers old (f old)) then cas_readers t f

let register_reader t =
  let r =
    (* [rd_seen <> epoch] from the start: a reader registered after the
       last install cannot have a check in flight that predates it *)
    { rd_epoch = Atomic.make 0; rd_online = Atomic.make true; rd_seen = -1 }
  in
  cas_readers t (fun rs -> r :: rs);
  r

let unregister_reader t r =
  Atomic.set r.rd_online false;
  cas_readers t (List.filter (fun r' -> r' != r))

let reader_quiescent r = Atomic.incr r.rd_epoch
let reader_epoch r = Atomic.get r.rd_epoch
let set_reader_online r b = Atomic.set r.rd_online b
let reader_online r = Atomic.get r.rd_online

let registered_readers t = List.length (Atomic.get t.readers)

(* Caller holds the update lock (install completion). *)
let observe_readers t =
  List.iter
    (fun r -> r.rd_seen <- Atomic.get r.rd_epoch)
    (Atomic.get t.readers)

(* Caller holds the update lock.  True iff quiescence is (now) declared:
   either nothing to declare, or every online reader crossed a branch
   boundary since the last completed install.  An empty registry is never
   evidence — someone may be checking without having registered. *)
let try_quiesce t =
  if Atomic.get t.updates_since_quiesce = 0 then true
  else begin
    match Atomic.get t.readers with
    | [] -> false
    | rs ->
      if
        List.for_all
          (fun r ->
            (not (Atomic.get r.rd_online))
            || Atomic.get r.rd_epoch <> r.rd_seen)
          rs
      then begin
        quiesce t;
        true
      end
      else false
  end

(* Non-blocking: used from checker-side quiescent points (e.g. the VM's
   syscall path) so a held update lock never stalls a checker. *)
let quiesce_attempt t =
  if Atomic.get t.updates_since_quiesce = 0 then true
  else if Mutex.try_lock t.update_lock then begin
    Atomic.set t.update_busy true;
    Fun.protect
      ~finally:(fun () ->
        Atomic.set t.update_busy false;
        Mutex.unlock t.update_lock)
      (fun () -> try_quiesce t)
  end
  else false

let count_update t = Atomic.incr t.updates_since_quiesce

(* ---- observer (commit hooks for the torture harness's oracle) ---- *)

let set_observer t o = t.observer <- o

(* The notify hooks also feed the trace: begin is emitted by whichever
   domain starts the install, complete by whichever finishes it — the
   original updater, or the lock holder that redid a dead updater's
   journal — so begins and completes stay balanced per version across
   kills and recoveries. *)
let notify_begin t ~version ~tag =
  Telemetry.emit Telemetry.Event.Update_begin ~a:version ~b:tag ~c:t.shard_id
    ~x:(Telemetry.Event.make_ctx ~shard:t.shard_id ());
  match t.observer with
  | None -> ()
  | Some o -> o.obs_begin ~version ~tag

let notify_complete t ~version ~tag =
  Telemetry.emit Telemetry.Event.Update_commit ~a:version ~b:tag ~c:t.shard_id
    ~x:(Telemetry.Event.make_ctx ~shard:t.shard_id ());
  match t.observer with
  | None -> ()
  | Some o -> o.obs_complete ~version ~tag

let slot_value t k =
  if k < 0 || k >= t.code_size / 4 then Id.invalid
  else Array.unsafe_get t.tary k

(* The misaligned/out-of-range slow path, kept out of line so the aligned
   read below stays small enough for cross-module inlining. *)
let tary_read_slow t addr =
  let off = addr - t.code_base in
  if off < 0 || off >= t.code_size then Id.invalid
  else begin
    let k = off lsr 2 and r = off land 3 in
    (* Misaligned: the word spans slots k and k+1 (little-endian bytes). *)
    let lo = slot_value t k and hi = slot_value t (k + 1) in
    let b i = if i < 4 then Id.byte lo i else Id.byte hi (i - 4) in
    Id.of_bytes (b r) (b (r + 1)) (b (r + 2)) (b (r + 3))
  end

let[@inline] tary_read t addr =
  let off = addr - t.code_base in
  if off < 0 || off >= t.code_size || off land 3 <> 0 then
    tary_read_slow t addr
  else Array.unsafe_get t.tary (off lsr 2)

let[@inline] bary_read t idx =
  if idx < 0 || idx >= Array.length t.bary then
    invalid_arg (Printf.sprintf "Tables.bary_read: slot %d out of range" idx);
  Array.unsafe_get t.bary idx

let tary_set t addr id =
  let off = addr - t.code_base in
  if off < 0 || off >= t.code_size then
    invalid_arg (Printf.sprintf "Tables.tary_set: address 0x%x out of range" addr);
  if off mod 4 <> 0 then
    invalid_arg (Printf.sprintf "Tables.tary_set: address 0x%x misaligned" addr);
  t.tary.(off / 4) <- id

let bary_set t idx id =
  if idx < 0 || idx >= Array.length t.bary then
    invalid_arg (Printf.sprintf "Tables.bary_set: slot %d out of range" idx);
  t.bary.(idx) <- id

let tary_entries t =
  let acc = ref [] in
  for k = (t.code_size / 4) - 1 downto 0 do
    let v = t.tary.(k) in
    if v <> Id.invalid then acc := (t.code_base + (4 * k), v) :: !acc
  done;
  !acc

let bary_entries t =
  let acc = ref [] in
  for k = Array.length t.bary - 1 downto 0 do
    let v = t.bary.(k) in
    if v <> Id.invalid then acc := (k, v) :: !acc
  done;
  !acc

let set_journal t j = Atomic.set t.journal j
let journal t = Atomic.get t.journal

(* ---- shard state snapshot (forensics) ----

   A cheap, consistent-enough view of one shard's control words for a
   forensic bundle: version, install-sequence word, quiescence
   accounting, reader registry size, and the intent journal's identity
   (not its writes — a bundle wants "a delta install at version 17 with
   9 writes was in flight", not the slot values).  Reads are the same
   racy-but-safe atomics the checkers use; a snapshot taken mid-install
   may straddle it, which forensics tolerates (the sequence word being
   odd says exactly that). *)

type journal_state = {
  js_version : int;
  js_tag : int;
  js_kind : string; (* "full" | "delta" *)
  js_writes : int; (* table-slot writes the redo would replay *)
}

type state = {
  st_shard : int;
  st_version : int;
  st_seq : int;
  st_updates_since_quiesce : int;
  st_quiesce_events : int;
  st_readers : int;
  st_update_in_progress : bool;
  st_code_size : int;
  st_bary_slots : int;
  st_journal : journal_state option;
}

let journal_state j =
  let kind, writes =
    match j.j_body with
    | Jfull { jf_tary; jf_bary } ->
      ("full", List.length jf_tary + List.length jf_bary)
    | Jdelta { jd_tary; jd_bary; jd_tary_carry; jd_bary_carry } ->
      ( "delta",
        List.length jd_tary + List.length jd_bary
        + List.length jd_tary_carry + List.length jd_bary_carry )
  in
  { js_version = j.j_version; js_tag = j.j_tag; js_kind = kind;
    js_writes = writes }

let state t =
  {
    st_shard = t.shard_id;
    st_version = version t;
    st_seq = seq_read t;
    st_updates_since_quiesce = updates_since_quiesce t;
    st_quiesce_events = quiesce_events t;
    st_readers = registered_readers t;
    st_update_in_progress = update_in_progress t;
    st_code_size = t.code_size;
    st_bary_slots = Array.length t.bary;
    st_journal = Option.map journal_state (journal t);
  }

let state_json t =
  let s = state t in
  Obs.Json.Obj
    [
      ("shard", Obs.Json.num s.st_shard);
      ("version", Obs.Json.num s.st_version);
      ("seq", Obs.Json.num s.st_seq);
      ("updates_since_quiesce", Obs.Json.num s.st_updates_since_quiesce);
      ("quiesce_events", Obs.Json.num s.st_quiesce_events);
      ("readers", Obs.Json.num s.st_readers);
      ("update_in_progress", Obs.Json.Bool s.st_update_in_progress);
      ("code_size", Obs.Json.num s.st_code_size);
      ("bary_slots", Obs.Json.num s.st_bary_slots);
      ( "journal",
        match s.st_journal with
        | None -> Obs.Json.Null
        | Some j ->
          Obs.Json.Obj
            [
              ("version", Obs.Json.num j.js_version);
              ("tag", Obs.Json.num j.js_tag);
              ("kind", Obs.Json.Str j.js_kind);
              ("writes", Obs.Json.num j.js_writes);
            ] );
    ]

(* ---- whole-table snapshot / restore (loader rollback) ---- *)

type snapshot = {
  s_version : int;
  s_code_size : int;
  s_updates_since_quiesce : int;
  s_tary : (int * Id.t) list;
  s_bary : (int * Id.t) list;
  s_journal : journal option;
}

let snapshot t =
  {
    s_version = version t;
    s_code_size = t.code_size;
    s_updates_since_quiesce = updates_since_quiesce t;
    s_tary = tary_entries t;
    s_bary = bary_entries t;
    s_journal = journal t;
  }

let restore t s =
  with_update_lock t (fun () ->
      seq_enter t;
      (* clear the current in-use prefix — it is at least as large as the
         snapshot's, since [extend] only grows *)
      Array.fill t.tary 0 (t.code_size / 4) Id.invalid;
      Array.fill t.bary 0 (Array.length t.bary) Id.invalid;
      t.code_size <- s.s_code_size;
      set_version t s.s_version;
      Atomic.set t.updates_since_quiesce s.s_updates_since_quiesce;
      set_journal t s.s_journal;
      List.iter
        (fun (addr, id) -> t.tary.((addr - t.code_base) / 4) <- id)
        s.s_tary;
      List.iter (fun (k, id) -> t.bary.(k) <- id) s.s_bary;
      publish t;
      seq_exit t)

(* ---- partial snapshot / restore (loader rollback, delta installs)

   A delta install touches a known, small set of slots; the loader's
   rollback journal only needs those.  Values are captured raw — a slot
   that was [Id.invalid] before the install (the common case: the new
   module's own addresses) restores to invalid.  Slots beyond the
   restored code size therefore restore to invalid too, keeping the
   not-yet-covered suffix clean for the next [extend]. *)

type slot_snapshot = {
  ss_version : int;
  ss_code_size : int;
  ss_updates_since_quiesce : int;
  ss_journal : journal option;
  ss_tary : (int * Id.t) list; (* address -> raw word *)
  ss_bary : (int * Id.t) list; (* slot -> raw word *)
}

let snapshot_slots t ~tary ~bary =
  let word addr =
    let off = addr - t.code_base in
    if off < 0 || off >= t.capacity || off mod 4 <> 0 then
      invalid_arg
        (Printf.sprintf "Tables.snapshot_slots: bad address 0x%x" addr);
    t.tary.(off / 4)
  in
  {
    ss_version = version t;
    ss_code_size = t.code_size;
    ss_updates_since_quiesce = updates_since_quiesce t;
    ss_journal = journal t;
    ss_tary = List.map (fun addr -> (addr, word addr)) tary;
    ss_bary = List.map (fun k -> (k, bary_read t k)) bary;
  }

let restore_slots t s =
  with_update_lock t (fun () ->
      seq_enter t;
      List.iter
        (fun (addr, id) -> t.tary.((addr - t.code_base) / 4) <- id)
        s.ss_tary;
      List.iter (fun (k, id) -> t.bary.(k) <- id) s.ss_bary;
      t.code_size <- s.ss_code_size;
      set_version t s.ss_version;
      Atomic.set t.updates_since_quiesce s.ss_updates_since_quiesce;
      set_journal t s.ss_journal;
      publish t;
      seq_exit t)
