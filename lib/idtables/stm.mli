(** The STM zoo: alternative commit protocols behind the {!Tx} interface.

    The paper compares its update transaction against a small family of
    software-transactional-memory designs (§8); this module widens the
    comparison with two protocols from the Manticore lineage, selectable
    at run time so the torture harness and the fleet supervisor can
    drive any of them against the same oracle:

    - [Tml] — the MCFI baseline itself ({!Tx.check} / {!Tx.update}):
      no reader-side snapshot validation, the version bits packed into
      every ID arbitrate, version skew retries.  TML-like in that the
      global version word doubles as the writer indicator.
    - [Norec] — NOrec-style value validation: readers sample the
      install sequence word ({!Tables.seq_read}), back off while it is
      odd, and on movement {e re-read and compare the values} instead
      of retrying unconditionally — validation cost scales with the
      read set, not with writer traffic.
    - [Seqlock] — a ticket-lock seqlock: readers are the classic
      parity-wait/re-validate loop; writers queue FIFO through a ticket
      ({!Tables.ticket_draw}) wrapped around the update mutex, so
      contended installs commit in arrival order.

    All three share the {e same} locked transaction body — torn-update
    journal, recovery by the next lock holder, ABA budget, two-phase
    install — so the recovery guarantee ("a mid-install death is redone
    by whoever takes the lock next") holds identically, and all three
    produce identical outcomes for identical table states: [Pass] only
    on bit-identical IDs, so a mis-validated snapshot can never pass
    wrongly.  The epoch-history oracle validates all variants
    unchanged. *)

type variant = Tml | Norec | Seqlock

val all : variant list
val name : variant -> string
val of_string : string -> (variant, string) result
val pp : Format.formatter -> variant -> unit

(** [check v t ~bary_index ~target] runs one check transaction under
    variant [v]'s read protocol.  Same optional parameters, retry
    accounting, watchdog, escalation ladder and telemetry bracket as
    {!Tx.check} (which is exactly what [v = Tml] delegates to). *)
val check :
  variant ->
  ?max_retries:int ->
  ?escalation:Tx.escalation ->
  ?watchdog:Tx.watchdog ->
  ?jitter:Mcfi_util.Prng.t ->
  ?on_retry:(unit -> unit) ->
  Tables.t ->
  bary_index:int ->
  target:int ->
  Tx.outcome

(** [check_hoisted v t site ~bary_index ~target] — {!check} through a
    version-hoisted {!Tx.site}: the hit path validates on the install
    sequence word alone (which every writer path maintains, so the
    justification is variant-agnostic); a miss runs [v]'s full read
    protocol and refills.  See {!Tx.check_hoisted}. *)
val check_hoisted :
  variant ->
  ?max_retries:int ->
  ?escalation:Tx.escalation ->
  ?watchdog:Tx.watchdog ->
  ?jitter:Mcfi_util.Prng.t ->
  ?on_retry:(unit -> unit) ->
  Tables.t ->
  Tx.site ->
  bary_index:int ->
  target:int ->
  Tx.outcome

(** [update v t ~tary ~bary] — {!Tx.update} under [v]'s writer
    admission ([Seqlock] queues through the ticket first). *)
val update :
  variant ->
  ?tag:int ->
  ?got_update:(unit -> unit) ->
  Tables.t ->
  tary:(int * int) list ->
  bary:(int * int) list ->
  int

val update_delta :
  variant ->
  ?tag:int ->
  ?got_update:(unit -> unit) ->
  ?pre_install:(unit -> unit) ->
  Tables.t ->
  tary:(int * int) list ->
  bary:(int * int) list ->
  tary_carry:(int * int * Tx.carry_source) list ->
  bary_carry:(int * int * Tx.carry_source) list ->
  int

val refresh : variant -> Tables.t -> int

(** [recover v t] is {!Tx.recover}: recovery deliberately bypasses any
    ticket queue — a reader escalating [Wait_for_updater] must not wait
    behind a convoy of writers to repair tables it needs now. *)
val recover : variant -> Tables.t -> bool
