(** Sharded ID tables: per-shard fault domains with independent recovery.

    The single-table design serializes every install on one update lock
    and one global version word, so a stuck updater or a torn install
    wedges the whole process.  A {!t} splits the Bary/Tary pair into
    [count] independently versioned shards — each a complete
    {!Tables.t} with its own update lock, intent journal, install
    sequence word, reader registry (quiescence epoch) and observer — so
    a mid-install kill, torn update or wedged reader is confined to one
    shard while every other shard keeps serving checks and accepting
    installs.

    {b Placement.}  A check compares a branch ID against a target ID
    bit for bit, which is only meaningful inside one version domain, so
    an equivalence class — its branch slots {e and} its targets — lives
    wholly in one shard.  The placement unit is the module: classes
    anchored by module [m] live in [m]'s {e home shard} (pinned with
    {!set_home}, otherwise a deterministic hash of [m] — the hashed
    fallback).  A check reads both tables from the branch slot's shard;
    a target the shard does not cover reads [Id.invalid] and fails
    closed.

    {b Commit protocol.}  Every shard transaction runs under the STM
    variant the shards were created with (see {!Stm}); all variants
    share the journal-based torn-update guarantee, per shard. *)

type t

(** [create ~code_base ~capacity ~bary_slots ()] builds [shards]
    (default 1) table pairs of identical geometry, shard [i] carrying
    fault-domain id [i].  [stm] (default [Tml]) selects the commit
    protocol used by {!check}/{!update}/{!update_delta}. *)
val create :
  ?stm:Stm.variant ->
  ?shards:int ->
  ?covered:int ->
  code_base:int ->
  capacity:int ->
  bary_slots:int ->
  unit ->
  t

val count : t -> int
val stm : t -> Stm.variant

(** The shard's underlying tables (for direct [Tables] access: epoch
    machinery, snapshots, diagnostics).  Raises [Invalid_argument] out
    of range. *)
val tables : t -> int -> Tables.t

(** Pin module [m]'s home shard. *)
val set_home : t -> m:int -> shard:int -> unit

(** [home t ~m] is [m]'s home shard: the pinned one, or the hashed
    fallback — deterministic, uniform over [count t]. *)
val home : t -> m:int -> int

(** {2 Per-shard transactions} *)

(** One check transaction against shard [shard]'s tables, under the
    configured STM variant's read protocol; parameters as
    {!Tx.check}. *)
val check :
  ?max_retries:int ->
  ?escalation:Tx.escalation ->
  ?watchdog:Tx.watchdog ->
  ?jitter:Mcfi_util.Prng.t ->
  ?on_retry:(unit -> unit) ->
  t ->
  shard:int ->
  bary_index:int ->
  target:int ->
  Tx.outcome

val check_fast :
  ?on_retry:(int -> unit) ->
  t ->
  shard:int ->
  bary_index:int ->
  target:int ->
  bool

(** One check transaction through a version-hoisted {!Tx.site} against
    shard [shard]'s tables: the hit path validates on that shard's
    install sequence word alone; a miss runs the configured STM
    variant's full read protocol and refills.  The site caches state
    from one shard's tables — use one site per (checker, shard, branch
    slot). *)
val check_hoisted :
  ?max_retries:int ->
  ?escalation:Tx.escalation ->
  ?watchdog:Tx.watchdog ->
  ?jitter:Mcfi_util.Prng.t ->
  ?on_retry:(unit -> unit) ->
  t ->
  shard:int ->
  Tx.site ->
  bary_index:int ->
  target:int ->
  Tx.outcome

val update :
  ?tag:int ->
  ?got_update:(unit -> unit) ->
  t ->
  shard:int ->
  tary:(int * int) list ->
  bary:(int * int) list ->
  int

val update_delta :
  ?tag:int ->
  ?got_update:(unit -> unit) ->
  ?pre_install:(unit -> unit) ->
  t ->
  shard:int ->
  tary:(int * int) list ->
  bary:(int * int) list ->
  tary_carry:(int * int * Tx.carry_source) list ->
  bary_carry:(int * int * Tx.carry_source) list ->
  int

val refresh : t -> shard:int -> int

(** Redo shard [shard]'s torn install, if its journal holds one. *)
val recover : t -> shard:int -> bool

(** Sweep every shard; returns how many had a torn install to redo. *)
val recover_all : t -> int

(** Whether shard [shard] currently holds an unredone intent journal —
    a torn install awaiting recovery.  Racy diagnostic. *)
val torn : t -> shard:int -> bool

(** {2 Cross-shard commits}

    A delta spanning shards commits shard by shard in ascending shard
    order, each slice an ordinary single-shard transaction.  There is
    deliberately no cross-shard atomicity: the recovery rule is that a
    death anywhere in the sequence is {e indistinguishable from a crash
    just before the remaining shards} — committed shards stay
    committed, the mid-install shard is torn and redone by its own next
    lock holder ({!recover}, or any later updater on that shard), and
    unreached shards are untouched.  Checks never compare IDs across
    shards, so partial commitment is never observable as a table
    anomaly; the caller re-submits the unreached suffix as it would
    after a process crash. *)

type part = {
  p_tary : (int * int) list;
  p_bary : (int * int) list;
  p_tary_carry : (int * int * Tx.carry_source) list;
  p_bary_carry : (int * int * Tx.carry_source) list;
}

(** [part ()] builds a shard's slice of a cross-shard delta; all fields
    default empty. *)
val part :
  ?tary:(int * int) list ->
  ?bary:(int * int) list ->
  ?tary_carry:(int * int * Tx.carry_source) list ->
  ?bary_carry:(int * int * Tx.carry_source) list ->
  unit ->
  part

(** [update_multi t parts] commits each [(shard, part)] in ascending
    shard order and returns the per-shard new versions in that order.
    The {!Faults.Plan.Between_shard_commits} hook fires before each
    commit except the first, reporting the shard {e about to} commit —
    an [At_shard {shard = s; _}] plan kills the sequence with every
    shard before [s] committed and [s] plus the rest untouched.
    Raises [Invalid_argument] on an out-of-range or duplicate shard
    (before any commit). *)
val update_multi : ?tag:int -> t -> (int * part) list -> (int * int) list

(** [update_multi_full t parts] — the same ascending shard-by-shard
    commit sequence and fault hook, but each [(shard, (tary, bary))]
    slice is a {e full} install ({!update}): slots not listed become
    invalid.  Used by harnesses whose oracles rely on full-rewrite
    semantics. *)
val update_multi_full :
  ?tag:int ->
  t ->
  (int * ((int * int) list * (int * int) list)) list ->
  (int * int) list

(** {2 Per-shard readers, observers, quiescence} *)

val register_reader : t -> shard:int -> Tables.reader
val unregister_reader : t -> shard:int -> Tables.reader -> unit
val set_observer : t -> shard:int -> Tables.observer option -> unit

(** Non-blocking quiescence probe on one shard ({!Tables.quiesce_attempt}):
    a wedged reader on shard [k] blocks only shard [k]'s declaration. *)
val quiesce_attempt : t -> shard:int -> bool

(** Probe every shard; element [i] is shard [i]'s verdict. *)
val quiescent_shards : t -> bool array

val version : t -> shard:int -> int

(** {2 Shard state snapshots (forensics)} *)

val state : t -> shard:int -> Tables.state
(** One shard's {!Tables.state} snapshot. *)

val states : t -> Tables.state list
(** Every shard's state, in shard order. *)

val states_json : t -> Obs.Json.t
(** {!states} as the ["shards"] array of the forensic-bundle schema. *)
