type variant = Tml | Norec | Seqlock

let all = [ Tml; Norec; Seqlock ]
let name = function Tml -> "tml" | Norec -> "norec" | Seqlock -> "seqlock"

let of_string = function
  | "tml" -> Ok Tml
  | "norec" -> Ok Norec
  | "seqlock" -> Ok Seqlock
  | s -> Error (Printf.sprintf "unknown STM variant %S (tml|norec|seqlock)" s)

let pp ppf v = Fmt.string ppf (name v)

(* ---- writer admission ----

   All three variants commit through the same locked transaction body
   (recovery of a torn predecessor, ABA budget, version bump, intent
   journal, two-phase install, sequence-word parity) — the torn-update
   guarantee is the transaction's, not the admission policy's.  What
   differs is how writers queue: TML and NOrec writers take the mutex
   directly; seqlock writers first draw a ticket and enter in FIFO
   order.  The ticket wraps the mutex rather than replacing it, so
   mutex-only lock holders (recovery, loader rollback, quiescence
   probes) stay safe against ticket-ordered installs, and a writer
   killed mid-install still releases its ticket on unwind — the next
   ticket holder finds the journal and redoes the torn install. *)

let with_ticket t f =
  let my = Tables.ticket_draw t in
  let rec wait round =
    if Tables.ticket_serving t <> my then begin
      Tx.backoff round;
      wait (round + 1)
    end
  in
  wait 0;
  Fun.protect ~finally:(fun () -> Tables.ticket_advance t) f

let with_writer v t f =
  match v with Tml | Norec -> f () | Seqlock -> with_ticket t f

let update v ?tag ?got_update t ~tary ~bary =
  with_writer v t (fun () -> Tx.update ?tag ?got_update t ~tary ~bary)

let update_delta v ?tag ?got_update ?pre_install t ~tary ~bary ~tary_carry
    ~bary_carry =
  with_writer v t (fun () ->
      Tx.update_delta ?tag ?got_update ?pre_install t ~tary ~bary ~tary_carry
        ~bary_carry)

let refresh v t = with_writer v t (fun () -> Tx.refresh t)

(* Recovery deliberately bypasses the ticket queue: it is not a new
   install (no version bump of its own) and a reader escalating
   [Wait_for_updater] must not queue behind a convoy of writers to
   repair tables it needs now. *)
let recover (_ : variant) t = Tx.recover t

(* ---- readers ----

   One attempt of each variant's read protocol.  All three agree on
   outcomes — [Pass] requires bit-identical IDs, an invalid target or an
   ECN mismatch at equal versions is a [Violation], version skew means
   an install is (or was) in flight and the attempt is retried — because
   that is what the epoch-history oracle validates.  They differ in how
   an attempt decides its reads are worth trusting:

   - [Tml] (the MCFI baseline, [Tx.check]): no snapshot validation at
     all; the ID encoding itself arbitrates, version skew retries.
   - [Norec]: sample the install sequence word; an odd word means a
     writer is mid-install, so back off without touching the tables.
     After reading, a moved word does not immediately retry — the reads
     are {e value-validated} (re-read, compare), and an unchanged pair
     is as good as an untorn snapshot.  This is NOrec's signature: the
     validation cost scales with the read set, not with a global clock.
   - [Seqlock]: classic parity protocol — wait for an even word, read,
     retry if the word moved at all.

   Snapshot validation here is advisory, not load-bearing: even if the
   sequence word races ahead of the slot writes it brackets, a wrong
   "consistent" verdict cannot make a check pass wrongly, because [Pass]
   still requires the two IDs bit-identical (the same argument that
   makes the plain-cell tables safe). *)

type attempt = A_pass | A_violation | A_skew

let norec_attempt t ~bary_index ~target =
  let s0 = Tables.seq_read t in
  if s0 land 1 = 1 then A_skew
  else begin
    let bid = Tables.bary_read t bary_index in
    let tid = Tables.tary_read t target in
    let consistent =
      Tables.seq_read t = s0
      || (Tables.bary_read t bary_index = bid
         && Tables.tary_read t target = tid)
    in
    if not consistent then A_skew
    else if bid = tid then A_pass
    else if not (Id.valid tid) then A_violation
    else if not (Id.same_version bid tid) then A_skew
    else A_violation
  end

let seqlock_attempt t ~bary_index ~target =
  let s0 = Tables.seq_read t in
  if s0 land 1 = 1 then A_skew
  else begin
    let bid = Tables.bary_read t bary_index in
    let tid = Tables.tary_read t target in
    if Tables.seq_read t <> s0 then A_skew
    else if bid = tid then A_pass
    else if not (Id.valid tid) then A_violation
    else if not (Id.same_version bid tid) then A_skew
    else A_violation
  end

(* The retry engine around one attempt function: the same loop shape,
   budget accounting, watchdog, escalation ladder and telemetry bracket
   as [Tx.check], so harnesses can swap variants without changing how
   outcomes are produced or observed. *)
let engine attempt ?max_retries ?(escalation = Tx.Fail_check) ?watchdog
    ?jitter ?(on_retry = fun () -> ()) t ~bary_index ~target =
  let ctx = Telemetry.check_begin () in
  let telemetry_on = ctx <> 0 in
  let xw () = Telemetry.Event.make_ctx ~shard:(Tables.shard t) () in
  let nretries = ref 0 in
  let rec go ~recovered budget round =
    match attempt t ~bary_index ~target with
    | A_pass -> Tx.Pass
    | A_violation -> Tx.Violation
    | A_skew -> begin
      match budget with
      | Some 0 -> escalate escalation ~recovered
      | _ -> begin
        match watchdog with
        | Some w when round >= w.Tx.wd_deadline ->
          Faults.Stats.count_watchdog ();
          if telemetry_on then
            Telemetry.emit Telemetry.Event.Watchdog_fire
              ~a:(Tables.version t) ~b:bary_index ~c:round ~x:(xw ());
          if Obs.Flightrec.recording () then
            Tx.capture_watchdog t ~bary_index ~target ~rounds:round;
          escalate w.Tx.wd_on_expire ~recovered
        | _ ->
          retry round;
          go ~recovered (Option.map (fun n -> n - 1) budget) (round + 1)
      end
    end
  and retry round =
    Faults.Stats.count_retry ();
    incr nretries;
    if telemetry_on && Telemetry.ctx_sampled ctx then
      Telemetry.emit Telemetry.Event.Check_retry ~a:bary_index ~b:target
        ~c:round ~x:(xw ());
    on_retry ();
    Tx.backoff ?jitter round
  and escalate esc ~recovered =
    match esc with
    | Tx.Fail_check ->
      Faults.Stats.count_failed_check ();
      Tx.Retries_exhausted
    | Tx.Halt_process ->
      Faults.Stats.count_halt ();
      Tx.Violation
    | Tx.Wait_for_updater ->
      if recovered then begin
        Faults.Stats.count_failed_check ();
        Tx.Retries_exhausted
      end
      else begin
        Faults.Stats.count_wait ();
        ignore (Tx.recover t);
        go ~recovered:true max_retries 0
      end
  in
  let outcome = go ~recovered:false max_retries 0 in
  (match outcome with
  | Tx.Pass -> ()
  | (Tx.Violation | Tx.Retries_exhausted) as o ->
    if Obs.Flightrec.recording () then
      Tx.capture_failure t ~bary_index ~target ~outcome:o ~retries:!nretries);
  if Telemetry.ctx_active ctx then begin
    let code =
      match outcome with
      | Tx.Pass -> 0
      | Tx.Violation -> 1
      | Tx.Retries_exhausted -> 2
    in
    Telemetry.check_end ctx ~outcome:code ~slot:bary_index ~target
      ~retries:!nretries ~x:(xw ())
  end;
  outcome

let check v ?max_retries ?escalation ?watchdog ?jitter ?on_retry t
    ~bary_index ~target =
  match v with
  | Tml ->
    Tx.check ?max_retries ?escalation ?watchdog ?jitter ?on_retry t
      ~bary_index ~target
  | Norec ->
    engine norec_attempt ?max_retries ?escalation ?watchdog ?jitter
      ?on_retry t ~bary_index ~target
  | Seqlock ->
    engine seqlock_attempt ?max_retries ?escalation ?watchdog ?jitter
      ?on_retry t ~bary_index ~target

(* Version hoisting is variant-agnostic: the hit path validates on the
   install sequence word, which every writer path maintains (see
   [Tables.seq_enter]/[seq_exit]), and all three read protocols produce
   identical outcomes for identical table states — so an unchanged even
   word justifies replaying the cached pair under any variant.  Only
   the miss path goes through the variant's own read protocol. *)
let check_hoisted v ?max_retries ?escalation ?watchdog ?jitter ?on_retry t
    site ~bary_index ~target =
  Tx.check_hoisted_with
    ~full:(fun () ->
      check v ?max_retries ?escalation ?watchdog ?jitter ?on_retry t
        ~bary_index ~target)
    t site ~bary_index ~target
