(** Type-matching CFG generation (paper §6) and the classic-CFI
    equivalence-class construction (paper §2).

    The generator consumes a {!input} view of all currently linked modules
    — function entries with their source types and address-taken flags,
    one record per indirect-branch site in global Bary-slot order, the
    direct-call and tail-call edges, jump-table targets and setjmp
    continuations, all with their final code addresses — and produces the
    new Bary/Tary ECN assignments for an update transaction.

    Per the paper:
    - an indirect call through a pointer of type [t*] may target any
      address-taken function whose type structurally matches [t] (with the
      varargs prefix rule);
    - returns may target the return sites of every call that can reach the
      returning function in the call graph, where tail-call chains are
      collapsed ([f] calls [g], [g] tail-calls [h] ⇒ [h]'s return may
      return to [f]'s call site);
    - jump-table jumps target exactly their statically known entries;
    - [longjmp] may target every [setjmp] continuation;
    - a PLT jump targets the entry of the symbol its GOT slot names;
    - overlapping target sets are merged into equivalence classes
      (union-find), as in classic CFI. *)

type fn = {
  fname : string;
  fty : Minic.Ast.fun_ty;
  faddr : int;
  faddress_taken : bool;
}

type site =
  | Sreturn of { fn : string }
  | Sicall of { fn : string; ty : Minic.Ast.fun_ty; ret_addr : int }
  | Sitail of { fn : string; ty : Minic.Ast.fun_ty }
  | Sjumptable of { fn : string; target_addrs : int list }
  | Slongjmp of { fn : string }
  | Splt of { symbol : string }

type input = {
  env : Minic.Types.env;          (** merged over all modules *)
  functions : fn list;            (** defined functions, all modules *)
  sites : site array;             (** global Bary slot order *)
  direct_calls : (string * string * int) list;
      (** caller, callee symbol, return-site address *)
  tail_calls : (string * string) list;  (** direct tail-call edges *)
  setjmp_addrs : int list;
}

type output = {
  tary : (int * int) list;  (** target code address -> ECN *)
  bary : (int * int) list;  (** Bary slot -> branch ECN *)
  stats : stats;
}

and stats = {
  n_ibs : int;   (** indirect branches (Table 3 "IBs") *)
  n_ibts : int;  (** possible indirect-branch targets (Table 3 "IBTs") *)
  n_eqcs : int;  (** equivalence classes of target addresses ("EQCs") *)
}

exception Too_many_classes of int

(** [generate input] computes the CFG and its table encoding.
    Raises {!Too_many_classes} if the program needs more than 2^14
    equivalence classes (the ID encoding limit). *)
val generate : input -> output

(** [targets_of_site input site] is the raw allowed-target set of one
    site, before equivalence-class merging — the precise CFG edge set,
    used by the AIR metric and by tests. *)
val targets_of_site : input -> site -> int list

(** {1 Incremental generation}

    [merge] folds one module at a time into a persistent merge state and
    returns the {e delta} against the previously returned assignment:
    only the table slots whose IDs must change.  The resulting ECN maps
    are bit-identical to running {!generate} over the union of every
    merged module — [merge] maintains the equivalence-class partition
    incrementally (memoized type classes, grow-only tail-closure /
    return-site propagation, a growable union-find) and then reapplies
    {!generate}'s canonical numbering rule, so a from-scratch run is a
    differential oracle for the incremental path. *)

(** One module's contribution, in the shape [Process] extracts once per
    load (fields mirror {!input}, restricted to the module). *)
type module_input = {
  m_env : Minic.Types.env;
  m_functions : fn list;        (** functions the module defines;
                                    [faddress_taken] = taken {e by} it *)
  m_extern_taken : string list; (** names it takes the address of but
                                    does not define *)
  m_sites : site array;         (** module-local order *)
  m_slot_base : int;            (** global slot of [m_sites.(0)]; must
                                    equal the state's current site count *)
  m_direct_calls : (string * string * int) list;
  m_tail_calls : (string * string) list;
  m_setjmp_addrs : int list;
}

(** For a grow entry, the existing slot whose (already installed) version
    the new slot must carry so its class stays version-uniform. *)
type donor = Donor_tary of int | Donor_bary of int

(** The slots an install must write.  [d_tary]/[d_bary] are rewritten at
    the transaction's new version: every slot of every class that
    changed shape (classes must stay version-uniform, so a class is
    rewritten whole).  [d_*_grow] are brand-new slots joining an
    otherwise untouched class; they carry the donor's current version,
    so the rest of the class is left alone. *)
type delta = {
  d_tary : (int * int) list;             (** addr, ECN *)
  d_bary : (int * int) list;             (** slot, ECN *)
  d_tary_grow : (int * int * donor) list;
  d_bary_grow : (int * int * donor) list;
  d_stats : stats;
}

type state

(** State with no modules merged; tables empty. *)
val empty_state : unit -> state

(** [merge state m] is [(state', delta)].  [state] itself is not
    mutated — the caller can keep it for rollback.  Raises
    {!Too_many_classes} on ECN exhaustion and [Invalid_argument] on a
    slot-base mismatch or duplicate definition. *)
val merge : state -> module_input -> state * delta

(** The full ECN maps of the last assignment, in {!generate}'s output
    order — what the live tables must contain. *)
val state_tables : state -> (int * int) list * (int * int) list

(** Stats of the last assignment (equals [generate].stats). *)
val state_stats : state -> stats

(** Total branch sites merged so far. *)
val state_sites : state -> int

(** Human names for the current ECN assignment: [(ecn, name)] pairs,
    ascending, where [name] is the class's lexicographically smallest
    live member with a [+N] suffix for the other N members.  Memberless
    classes are omitted — forensic consumers fall back to ["ecn-<n>"]. *)
val state_class_names : state -> (int * string) list

(** {1 Delta → shard mapping}

    [shard_delta ~shards ~route d] splits a {!merge} delta into
    per-shard slices for {!Idtables.Shards.update_multi}.  The routing
    unit is the equivalence class: [route ecn] places every entry of
    that class — rewrites and grow entries alike — on one shard, and a
    grow entry's donor carries the same ECN by construction, so donor
    resolution never crosses a shard boundary.  Returns only non-empty
    slices, in ascending shard order, entry order preserved within each;
    every slice carries [d]'s (global) [d_stats] unchanged.  Raises
    [Invalid_argument] if [route] sends an ECN outside [0, shards). *)
val shard_delta : shards:int -> route:(int -> int) -> delta -> (int * delta) list
