type fn = {
  fname : string;
  fty : Minic.Ast.fun_ty;
  faddr : int;
  faddress_taken : bool;
}

type site =
  | Sreturn of { fn : string }
  | Sicall of { fn : string; ty : Minic.Ast.fun_ty; ret_addr : int }
  | Sitail of { fn : string; ty : Minic.Ast.fun_ty }
  | Sjumptable of { fn : string; target_addrs : int list }
  | Slongjmp of { fn : string }
  | Splt of { symbol : string }

type input = {
  env : Minic.Types.env;
  functions : fn list;
  sites : site array;
  direct_calls : (string * string * int) list;
  tail_calls : (string * string) list;
  setjmp_addrs : int list;
}

type output = {
  tary : (int * int) list;
  bary : (int * int) list;
  stats : stats;
}

and stats = { n_ibs : int; n_ibts : int; n_eqcs : int }

exception Too_many_classes of int

module SS = Set.Make (String)
module IS = Set.Make (Int)

(* Address-taken functions whose type matches an indirect-call site. *)
let matched_functions input ty =
  List.filter
    (fun fn ->
      fn.faddress_taken && Minic.Types.callable input.env ~site:ty ~fn:fn.fty)
    input.functions

(* Tail-call closure: TC(g) = functions reachable from g through tail
   calls (including g itself).  A call that lands in g may eventually
   return from any member of TC(g). *)
let tail_closure input =
  (* direct tail edges, plus indirect tail edges resolved by type *)
  let edges = Hashtbl.create 16 in
  let add_edge a b =
    let old = Option.value ~default:SS.empty (Hashtbl.find_opt edges a) in
    Hashtbl.replace edges a (SS.add b old)
  in
  List.iter (fun (a, b) -> add_edge a b) input.tail_calls;
  Array.iter
    (function
      | Sitail { fn; ty } ->
        List.iter (fun g -> add_edge fn g.fname) (matched_functions input ty)
      | Sreturn _ | Sicall _ | Sjumptable _ | Slongjmp _ | Splt _ -> ())
    input.sites;
  fun g ->
    let rec go visited frontier =
      match frontier with
      | [] -> visited
      | x :: rest ->
        if SS.mem x visited then go visited rest
        else begin
          let next =
            Option.value ~default:SS.empty (Hashtbl.find_opt edges x)
          in
          go (SS.add x visited) (SS.elements next @ rest)
        end
    in
    go SS.empty [ g ]

(* Return sites of each function: for every call that can invoke g (by
   symbol or by type matching), every member of TC(g) may return to the
   call's return site. *)
let return_sites input =
  let tc = tail_closure input in
  let sites = Hashtbl.create 16 in
  let add fn addr =
    let old = Option.value ~default:IS.empty (Hashtbl.find_opt sites fn) in
    Hashtbl.replace sites fn (IS.add addr old)
  in
  let add_call callee ret_addr =
    SS.iter (fun h -> add h ret_addr) (tc callee)
  in
  List.iter (fun (_, callee, ret) -> add_call callee ret) input.direct_calls;
  Array.iter
    (function
      | Sicall { ty; ret_addr; _ } ->
        List.iter
          (fun g -> add_call g.fname ret_addr)
          (matched_functions input ty)
      | Sreturn _ | Sitail _ | Sjumptable _ | Slongjmp _ | Splt _ -> ())
    input.sites;
  fun fn -> Option.value ~default:IS.empty (Hashtbl.find_opt sites fn)

let targets_of_site input site =
  let rs = return_sites input in
  match site with
  | Sreturn { fn } -> IS.elements (rs fn)
  | Sicall { ty; _ } | Sitail { ty; _ } ->
    List.map (fun f -> f.faddr) (matched_functions input ty)
  | Sjumptable { target_addrs; _ } -> target_addrs
  | Slongjmp _ -> input.setjmp_addrs
  | Splt { symbol } ->
    List.filter_map
      (fun f -> if f.fname = symbol then Some f.faddr else None)
      input.functions

(* ------------------------------------------------------------------ *)
(* Incremental generation.

   The merge state maintains, across dlopen boundaries, everything
   [generate] recomputes from scratch: the type-equivalence classes
   (memoized per structural site type), the tail-call closure and
   return-site sets (as grow-only relations with event propagation),
   and a growable union-find over the target universe plus one node
   per branch site.  All facts are monotone — functions, sites, edges
   and target sets only grow — so [merge] only has to propagate the
   new module's contributions.

   ECNs are *not* stored: they are recomputed after every merge by the
   same canonical rule [generate] uses (targets in ascending address
   order, first encounter of a class root gets the next ECN; then Bary
   slots in ascending order, empty sites get fresh ECNs).  Because new
   code is appended at higher addresses, class ranks — hence ECNs — are
   stable for untouched classes, and the delta computed against the
   last installed assignment stays proportional to the new module. *)

module UFD = Mcfi_util.Union_find.Dynamic

type module_input = {
  m_env : Minic.Types.env;
  m_functions : fn list;
  m_extern_taken : string list;
  m_sites : site array;
  m_slot_base : int;
  m_direct_calls : (string * string * int) list;
  m_tail_calls : (string * string) list;
  m_setjmp_addrs : int list;
}

type donor = Donor_tary of int | Donor_bary of int

type delta = {
  d_tary : (int * int) list;
  d_bary : (int * int) list;
  d_tary_grow : (int * int * donor) list;
  d_bary_grow : (int * int * donor) list;
  d_stats : stats;
}

type tyclass = {
  tc_ty : Minic.Ast.fun_ty;
  mutable tc_members : (string * int) list;  (* live AT matches: name, addr *)
  mutable tc_slots : int list;               (* icall + itail slots *)
  mutable tc_icall_rets : IS.t;
  mutable tc_itail_fns : SS.t;
  (* The class's anchor node in the union-find.  [generate] unions every
     slot of a class with every member, which connects {slots} ∪
     {members} whenever the class has at least one member (every class
     has at least one slot — classes are only created by sites).  The
     anchor realizes the same component in O(1) unions per arrival:
     slots and members union with the anchor instead of with each other.
     While the class has no members its slots stay singletons, exactly
     as [generate]'s per-slot unions over an empty member list leave
     them; the first member to arrive anchors the accumulated slots. *)
  tc_node : int;
  (* Anchor for the class's *return-site* component.  [generate] puts
     the class's icall return addresses into rs(h) for every h in the
     tail closure of every member, and unions each of h's return slots
     with each of those addresses — a clique over {rets} ∪ {return
     slots of inflow fns}.  The anchor realizes the same component with
     one union per arriving ret and per inflow return slot.  The
     component only exists in [generate] once the class has a member,
     a ret AND an actual return slot on some inflow fn: rets
     interconnect only *through* slots (no member ⇒ the rets never
     enter any rs set; no slot ⇒ they stay singleton targets; no ret ⇒
     there is nothing connecting the slots).  Anchoring is deferred
     until all three are present and the accumulated facts are
     replayed at that activation point. *)
  tc_ret_node : int;
  (* fns whose return slots receive this class's icall rets: the union
     of members' forward tail closures, extended as edges arrive *)
  mutable tc_inflow_fns : SS.t;
  (* some inflow fn has a return slot (monotone) *)
  mutable tc_has_ret_slot : bool;
}

type state = {
  mutable st_env : Minic.Types.env;
  st_defined : (string, fn) Hashtbl.t;
  st_taken : (string, unit) Hashtbl.t;       (* names ever address-taken *)
  mutable st_classes : tyclass list;
  st_tail_succ : (string, SS.t) Hashtbl.t;
  st_call_rets : (string, IS.t) Hashtbl.t;   (* callee -> direct-call rets *)
  st_rs : (string, IS.t) Hashtbl.t;   (* fn -> direct-call-derived rs;
                                         icall rets ride the ret anchors *)
  st_fn_inflow : (string, IS.t) Hashtbl.t;   (* fn -> tc_ret_node anchors *)
  st_return_slots : (string, int list) Hashtbl.t;
  st_plt_slots : (string, int list) Hashtbl.t;
  mutable st_longjmp_slots : int list;
  mutable st_setjmps : IS.t;
  mutable st_nsites : int;
  st_uf : UFD.t;
  st_addr_node : (int, int) Hashtbl.t;
  mutable st_targets : IS.t;
  st_site_node : (int, int) Hashtbl.t;
  (* ECN maps as last handed out in a delta, i.e. what the caller has
     installed in the live tables. *)
  mutable st_installed_tary : (int, int) Hashtbl.t;
  mutable st_installed_bary : (int, int) Hashtbl.t;
  mutable st_stats : stats;
}

let empty_state () =
  {
    st_env = Minic.Types.empty;
    st_defined = Hashtbl.create 64;
    st_taken = Hashtbl.create 64;
    st_classes = [];
    st_tail_succ = Hashtbl.create 16;
    st_call_rets = Hashtbl.create 64;
    st_rs = Hashtbl.create 64;
    st_fn_inflow = Hashtbl.create 64;
    st_return_slots = Hashtbl.create 64;
    st_plt_slots = Hashtbl.create 16;
    st_longjmp_slots = [];
    st_setjmps = IS.empty;
    st_nsites = 0;
    st_uf = UFD.create ();
    st_addr_node = Hashtbl.create 256;
    st_targets = IS.empty;
    st_site_node = Hashtbl.create 64;
    st_installed_tary = Hashtbl.create 256;
    st_installed_bary = Hashtbl.create 64;
    st_stats = { n_ibs = 0; n_ibts = 0; n_eqcs = 0 };
  }

(* An independent copy: [merge] mutates a copy so the caller can keep
   the pre-merge state in a rollback journal for free. *)
let copy_state s =
  {
    st_env = s.st_env;
    st_defined = Hashtbl.copy s.st_defined;
    st_taken = Hashtbl.copy s.st_taken;
    st_classes =
      List.map
        (fun c ->
          {
            tc_ty = c.tc_ty;
            tc_members = c.tc_members;
            tc_slots = c.tc_slots;
            tc_icall_rets = c.tc_icall_rets;
            tc_itail_fns = c.tc_itail_fns;
            tc_node = c.tc_node;
            tc_ret_node = c.tc_ret_node;
            tc_inflow_fns = c.tc_inflow_fns;
            tc_has_ret_slot = c.tc_has_ret_slot;
          })
        s.st_classes;
    st_tail_succ = Hashtbl.copy s.st_tail_succ;
    st_call_rets = Hashtbl.copy s.st_call_rets;
    st_rs = Hashtbl.copy s.st_rs;
    st_fn_inflow = Hashtbl.copy s.st_fn_inflow;
    st_return_slots = Hashtbl.copy s.st_return_slots;
    st_plt_slots = Hashtbl.copy s.st_plt_slots;
    st_longjmp_slots = s.st_longjmp_slots;
    st_setjmps = s.st_setjmps;
    st_nsites = s.st_nsites;
    st_uf = UFD.copy s.st_uf;
    st_addr_node = Hashtbl.copy s.st_addr_node;
    st_targets = s.st_targets;
    st_site_node = Hashtbl.copy s.st_site_node;
    (* replaced wholesale by [merge]'s phase 5 and never mutated in
       place, so the copy can share them *)
    st_installed_tary = s.st_installed_tary;
    st_installed_bary = s.st_installed_bary;
    st_stats = s.st_stats;
  }

let state_stats s = s.st_stats
let state_sites s = s.st_nsites

(* Current ECN maps, in [generate]'s output order. *)
let state_tables s =
  let tary =
    IS.fold
      (fun addr acc -> (addr, Hashtbl.find s.st_installed_tary addr) :: acc)
      s.st_targets []
    |> List.rev
  in
  let bary =
    List.init s.st_nsites (fun slot ->
        (slot, Hashtbl.find s.st_installed_bary slot))
  in
  (tary, bary)

(* Canonical ECN assignment over the current partition — the same rule
   [generate] applies, so the result is bit-identical to a from-scratch
   run over the union of all merged modules. *)
let assign s =
  let ecn_of_root = Hashtbl.create 256 in
  let next_ecn = ref 0 in
  let fresh_ecn () =
    let e = !next_ecn in
    incr next_ecn;
    if e >= Idtables.Id.max_ecn then raise (Too_many_classes e);
    e
  in
  let new_tary = Hashtbl.create (Hashtbl.length s.st_addr_node) in
  IS.iter
    (fun addr ->
      let root = UFD.find s.st_uf (Hashtbl.find s.st_addr_node addr) in
      let e =
        match Hashtbl.find_opt ecn_of_root root with
        | Some e -> e
        | None ->
          let e = fresh_ecn () in
          Hashtbl.add ecn_of_root root e;
          e
      in
      Hashtbl.add new_tary addr e)
    s.st_targets;
  let n_eqcs = Hashtbl.length ecn_of_root in
  let new_bary = Hashtbl.create (s.st_nsites * 2) in
  for slot = 0 to s.st_nsites - 1 do
    let root = UFD.find s.st_uf (Hashtbl.find s.st_site_node slot) in
    let e =
      match Hashtbl.find_opt ecn_of_root root with
      | Some e -> e
      | None -> fresh_ecn () (* empty class, as in [generate]'s bary scan *)
    in
    Hashtbl.add new_bary slot e
  done;
  (new_tary, new_bary, { n_ibs = s.st_nsites; n_ibts = IS.cardinal s.st_targets; n_eqcs })

(* Human names for the current ECN assignment: a class with live members
   names its ECN after its lexicographically smallest member (with a +N
   cardinality suffix), so a forensic bundle can say which
   type-equivalence class a violating transfer crossed rather than just
   its number.  Memberless classes (empty sites, anonymous return
   components) stay unnamed — consumers fall back to "ecn-<n>". *)
let state_class_names s =
  let new_tary, _, _ = assign s in
  let names = Hashtbl.create 16 in
  List.iter
    (fun c ->
      match c.tc_members with
      | [] -> ()
      | (n0, a0) :: rest ->
        let rep =
          List.fold_left (fun acc (n, _) -> if n < acc then n else acc) n0 rest
        in
        (match Hashtbl.find_opt new_tary a0 with
        | Some e when not (Hashtbl.mem names e) ->
          let k = List.length rest in
          Hashtbl.replace names e
            (if k = 0 then rep else Printf.sprintf "%s+%d" rep k)
        | _ -> ()))
    s.st_classes;
  Hashtbl.fold (fun e n acc -> (e, n) :: acc) names []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Diff the fresh assignment against the installed one and close the
   result over equivalence classes.

   A class is *clean-grown* when every slot it had before still maps to
   the same ECN and no slot left it: then only its new slots need
   writing, and they can carry the class's current version (read off a
   donor slot) — concurrent checks on that class never see version
   skew, so nothing else must be rewritten.  Any other change (a slot
   changing class, classes merging, renumbering) dirties the ECNs
   involved, and every slot of a dirty class is rewritten at the new
   version so the class stays version-uniform.  The leaving side is
   dirtied too: without it an ECN abandoned by one class and re-assigned
   to another could carry a stale version and let an old Bary id pair
   with a new Tary id. *)
let compute_delta s new_tary new_bary stats =
  let dirty = Hashtbl.create 64 in
  let mark e = Hashtbl.replace dirty e () in
  Hashtbl.iter
    (fun addr e ->
      match Hashtbl.find_opt s.st_installed_tary addr with
      | Some e0 when e0 = e -> ()
      | Some e0 ->
        mark e;
        mark e0
      | None -> ())
    new_tary;
  Hashtbl.iter
    (fun slot e ->
      match Hashtbl.find_opt s.st_installed_bary slot with
      | Some e0 when e0 = e -> ()
      | Some e0 ->
        mark e;
        mark e0
      | None -> ())
    new_bary;
  let donor = Hashtbl.create 64 in
  Hashtbl.iter
    (fun addr e ->
      if not (Hashtbl.mem donor e) then Hashtbl.add donor e (Donor_tary addr))
    s.st_installed_tary;
  Hashtbl.iter
    (fun slot e ->
      if not (Hashtbl.mem donor e) then Hashtbl.add donor e (Donor_bary slot))
    s.st_installed_bary;
  let tary_rw = ref [] and bary_rw = ref [] in
  let tary_gr = ref [] and bary_gr = ref [] in
  let classify installed rw gr key e =
    let changed =
      match Hashtbl.find_opt installed key with
      | Some e0 -> e0 <> e
      | None -> true
    in
    if Hashtbl.mem dirty e then rw := (key, e) :: !rw
    else if changed then begin
      match Hashtbl.find_opt donor e with
      | Some d -> gr := (key, e, d) :: !gr
      | None -> rw := (key, e) :: !rw (* brand-new class *)
    end
  in
  Hashtbl.iter (classify s.st_installed_tary tary_rw tary_gr) new_tary;
  Hashtbl.iter (classify s.st_installed_bary bary_rw bary_gr) new_bary;
  let by_key (a, _) (b, _) = compare a b in
  let by_key3 (a, _, _) (b, _, _) = compare a b in
  {
    d_tary = List.sort by_key !tary_rw;
    d_bary = List.sort by_key !bary_rw;
    d_tary_grow = List.sort by_key3 !tary_gr;
    d_bary_grow = List.sort by_key3 !bary_gr;
    d_stats = stats;
  }

(* Split a delta into per-shard slices for sharded tables.  The routing
   unit is the equivalence class: every entry of a class — rewrites and
   grow entries alike — lands on [route ecn], and a grow entry's donor
   holds the same ECN by construction ([compute_delta] picks donors from
   the class's installed slots), so donor resolution never crosses a
   shard boundary.  Entry order within each slice preserves the delta's
   sorted order; slices come out in ascending shard order, ready for
   [Shards.update_multi]. *)
let shard_delta ~shards ~route d =
  let shards = max shards 1 in
  let clamp e =
    let s = route e in
    if s < 0 || s >= shards then
      invalid_arg
        (Printf.sprintf "Cfggen.shard_delta: route sent ECN %d to shard %d" e s)
    else s
  in
  let parts = Array.make shards None in
  let slice s =
    match parts.(s) with
    | Some p -> p
    | None ->
      let p = (ref [], ref [], ref [], ref []) in
      parts.(s) <- Some p;
      p
  in
  let add2 pick (key, e) =
    let cell = pick (slice (clamp e)) in
    cell := (key, e) :: !cell
  in
  let add3 pick (key, e, don) =
    let cell = pick (slice (clamp e)) in
    cell := (key, e, don) :: !cell
  in
  List.iter (add2 (fun (t, _, _, _) -> t)) d.d_tary;
  List.iter (add2 (fun (_, b, _, _) -> b)) d.d_bary;
  List.iter (add3 (fun (_, _, tg, _) -> tg)) d.d_tary_grow;
  List.iter (add3 (fun (_, _, _, bg) -> bg)) d.d_bary_grow;
  let out = ref [] in
  for s = shards - 1 downto 0 do
    match parts.(s) with
    | None -> ()
    | Some (t, b, tg, bg) ->
      out :=
        ( s,
          {
            d_tary = List.rev !t;
            d_bary = List.rev !b;
            d_tary_grow = List.rev !tg;
            d_bary_grow = List.rev !bg;
            d_stats = d.d_stats;
          } )
        :: !out
  done;
  !out

let fun_ty_equal env a b =
  Minic.Types.equal env (Minic.Ast.Tfun a) (Minic.Ast.Tfun b)

let merge s0 m =
  let s = copy_state s0 in
  let class_by_ret_node = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.add class_by_ret_node c.tc_ret_node c) s.st_classes;
  if m.m_slot_base <> s.st_nsites then
    invalid_arg
      (Printf.sprintf "Cfggen.merge: slot base %d, expected %d" m.m_slot_base
         s.st_nsites);
  s.st_env <- Minic.Types.merge [ s.st_env; m.m_env ];
  let node_of_addr a =
    match Hashtbl.find_opt s.st_addr_node a with
    | Some n -> n
    | None ->
      let n = UFD.add s.st_uf in
      Hashtbl.add s.st_addr_node a n;
      s.st_targets <- IS.add a s.st_targets;
      n
  in
  let union_site_target slot addr =
    ignore (UFD.union s.st_uf (Hashtbl.find s.st_site_node slot) (node_of_addr addr))
  in
  let tc_forward g =
    (* forward tail closure of g in the current edge set, incl. g *)
    let rec go visited frontier =
      match frontier with
      | [] -> visited
      | x :: rest ->
        if SS.mem x visited then go visited rest
        else
          let next =
            Option.value ~default:SS.empty (Hashtbl.find_opt s.st_tail_succ x)
          in
          go (SS.add x visited) (SS.elements next @ rest)
    in
    go SS.empty [ g ]
  in
  let return_slots n =
    Option.value ~default:[] (Hashtbl.find_opt s.st_return_slots n)
  in
  let rs n = Option.value ~default:IS.empty (Hashtbl.find_opt s.st_rs n) in
  let call_rets n =
    Option.value ~default:IS.empty (Hashtbl.find_opt s.st_call_rets n)
  in
  (* --- class return-site anchors --- *)
  let fn_inflow n =
    Option.value ~default:IS.empty (Hashtbl.find_opt s.st_fn_inflow n)
  in
  (* inflow fns only exist once the class has members, so the member
     condition is implied *)
  let ret_active c = c.tc_has_ret_slot && not (IS.is_empty c.tc_icall_rets) in
  let union_ret_slots_with c n =
    List.iter
      (fun slot ->
        ignore
          (UFD.union s.st_uf (Hashtbl.find s.st_site_node slot) c.tc_ret_node))
      (return_slots n)
  in
  (* first time the class has a member, a ret and an inflow return
     slot: connect the facts accumulated while the component didn't
     exist yet *)
  let activate_ret c =
    IS.iter
      (fun r -> ignore (UFD.union s.st_uf (node_of_addr r) c.tc_ret_node))
      c.tc_icall_rets;
    SS.iter (fun n -> union_ret_slots_with c n) c.tc_inflow_fns
  in
  let add_inflow c n =
    if not (SS.mem n c.tc_inflow_fns) then begin
      c.tc_inflow_fns <- SS.add n c.tc_inflow_fns;
      Hashtbl.replace s.st_fn_inflow n (IS.add c.tc_ret_node (fn_inflow n));
      if c.tc_has_ret_slot then begin
        if ret_active c then union_ret_slots_with c n
      end
      else if return_slots n <> [] then begin
        c.tc_has_ret_slot <- true;
        if ret_active c then activate_ret c
      end
    end
  in
  (* the class's rets flow into every fn of g's forward tail closure *)
  let add_inflow_closure c g =
    if Hashtbl.mem s.st_tail_succ g then
      SS.iter (fun h -> add_inflow c h) (tc_forward g)
    else add_inflow c g
  in
  let add_rs n addrs =
    let old = rs n in
    let fresh = IS.diff addrs old in
    if not (IS.is_empty fresh) then begin
      Hashtbl.replace s.st_rs n (IS.union old fresh);
      List.iter
        (fun slot -> IS.iter (fun a -> union_site_target slot a) fresh)
        (return_slots n)
    end
  in
  (* Direct-call rets arrive one address at a time: skip the set
     arithmetic, and the closure walk for tail-call-free callees. *)
  let add_rs1 h addr =
    let old = rs h in
    if not (IS.mem addr old) then begin
      Hashtbl.replace s.st_rs h (IS.add addr old);
      List.iter (fun slot -> union_site_target slot addr) (return_slots h)
    end
  in
  let add_call_rets1 g addr =
    let old = call_rets g in
    if not (IS.mem addr old) then begin
      Hashtbl.replace s.st_call_rets g (IS.add addr old);
      if Hashtbl.mem s.st_tail_succ g then
        SS.iter (fun h -> add_rs1 h addr) (tc_forward g)
      else add_rs1 g addr
    end
  in
  let add_tail_edge a b =
    let succ =
      Option.value ~default:SS.empty (Hashtbl.find_opt s.st_tail_succ a)
    in
    if not (SS.mem b succ) then begin
      Hashtbl.replace s.st_tail_succ a (SS.add b succ);
      (* everything now reachable from b inherits the return addrs that
         could land in a (rs a already folds in a's reverse closure) *)
      let contrib = IS.union (rs a) (call_rets a) in
      let anchors = fn_inflow a in
      if not (IS.is_empty contrib && IS.is_empty anchors) then begin
        let closure = tc_forward b in
        if not (IS.is_empty contrib) then
          SS.iter (fun h -> add_rs h contrib) closure;
        (* class rets flowing into a now flow into b's closure too *)
        IS.iter
          (fun anchor ->
            let c = Hashtbl.find class_by_ret_node anchor in
            SS.iter (fun h -> add_inflow c h) closure)
          anchors
      end
    end
  in
  let on_newly_at (f : fn) =
    ignore (node_of_addr f.faddr);
    List.iter
      (fun c ->
        if Minic.Types.callable s.st_env ~site:c.tc_ty ~fn:f.fty then begin
          let first_member = c.tc_members = [] in
          c.tc_members <- (f.fname, f.faddr) :: c.tc_members;
          (* the first member connects the slots accumulated while the
             class was empty; later slots/members anchor in O(1) *)
          if first_member then
            List.iter
              (fun slot ->
                ignore
                  (UFD.union s.st_uf (Hashtbl.find s.st_site_node slot) c.tc_node))
              c.tc_slots;
          ignore (UFD.union s.st_uf (node_of_addr f.faddr) c.tc_node);
          add_inflow_closure c f.fname;
          SS.iter (fun sfn -> add_tail_edge sfn f.fname) c.tc_itail_fns
        end)
      s.st_classes
  in
  let on_taken n =
    if not (Hashtbl.mem s.st_taken n) then begin
      Hashtbl.add s.st_taken n ();
      match Hashtbl.find_opt s.st_defined n with
      | Some f -> on_newly_at f
      | None -> ()
    end
  in
  let on_defined (f : fn) =
    if Hashtbl.mem s.st_defined f.fname then
      invalid_arg ("Cfggen.merge: duplicate definition of " ^ f.fname);
    Hashtbl.add s.st_defined f.fname f;
    (match Hashtbl.find_opt s.st_plt_slots f.fname with
    | Some slots -> List.iter (fun slot -> union_site_target slot f.faddr) slots
    | None -> ());
    if Hashtbl.mem s.st_taken f.fname then on_newly_at f
  in
  let live_at n =
    Hashtbl.mem s.st_taken n
    &&
    match Hashtbl.find_opt s.st_defined n with Some _ -> true | None -> false
  in
  let find_or_create_class ty =
    match
      List.find_opt (fun c -> fun_ty_equal s.st_env c.tc_ty ty) s.st_classes
    with
    | Some c -> c
    | None ->
      let members =
        Hashtbl.fold
          (fun n f acc ->
            if live_at n && Minic.Types.callable s.st_env ~site:ty ~fn:f.fty
            then (f.fname, f.faddr) :: acc
            else acc)
          s.st_defined []
      in
      let c =
        {
          tc_ty = ty;
          tc_members = members;
          tc_slots = [];
          tc_icall_rets = IS.empty;
          tc_itail_fns = SS.empty;
          tc_node = UFD.add s.st_uf;
          tc_ret_node = UFD.add s.st_uf;
          tc_inflow_fns = SS.empty;
          tc_has_ret_slot = false;
        }
      in
      Hashtbl.add class_by_ret_node c.tc_ret_node c;
      List.iter
        (fun (_, addr) -> ignore (UFD.union s.st_uf (node_of_addr addr) c.tc_node))
        members;
      (* no rets yet, so this only records where they will flow *)
      List.iter (fun (g, _) -> add_inflow_closure c g) members;
      s.st_classes <- c :: s.st_classes;
      c
  in
  (* 1. functions (definitions, then address-taken transitions) *)
  List.iter
    (fun (f : fn) ->
      on_defined f;
      if f.faddress_taken then on_taken f.fname)
    m.m_functions;
  List.iter on_taken m.m_extern_taken;
  (* 2. setjmp continuations feed all existing longjmp sites *)
  List.iter
    (fun a ->
      if not (IS.mem a s.st_setjmps) then begin
        s.st_setjmps <- IS.add a s.st_setjmps;
        ignore (node_of_addr a);
        List.iter (fun slot -> union_site_target slot a) s.st_longjmp_slots
      end)
    m.m_setjmp_addrs;
  (* 3. sites, in global slot order *)
  Array.iteri
    (fun i site ->
      let slot = m.m_slot_base + i in
      let n = UFD.add s.st_uf in
      Hashtbl.add s.st_site_node slot n;
      match site with
      | Sreturn { fn } ->
        Hashtbl.replace s.st_return_slots fn (slot :: return_slots fn);
        IS.iter (fun a -> union_site_target slot a) (rs fn);
        IS.iter
          (fun anchor ->
            let c = Hashtbl.find class_by_ret_node anchor in
            if c.tc_has_ret_slot then begin
              if ret_active c then ignore (UFD.union s.st_uf n c.tc_ret_node)
            end
            else begin
              (* first return slot on this class's inflow *)
              c.tc_has_ret_slot <- true;
              if ret_active c then activate_ret c
            end)
          (fn_inflow fn)
      | Sicall { ty; ret_addr; _ } ->
        ignore (node_of_addr ret_addr);
        let c = find_or_create_class ty in
        c.tc_slots <- slot :: c.tc_slots;
        if c.tc_members <> [] then ignore (UFD.union s.st_uf n c.tc_node);
        let was_active = ret_active c in
        c.tc_icall_rets <- IS.add ret_addr c.tc_icall_rets;
        if ret_active c then
          if was_active then
            ignore (UFD.union s.st_uf (node_of_addr ret_addr) c.tc_ret_node)
          else activate_ret c
      | Sitail { fn; ty } ->
        let c = find_or_create_class ty in
        c.tc_slots <- slot :: c.tc_slots;
        c.tc_itail_fns <- SS.add fn c.tc_itail_fns;
        if c.tc_members <> [] then ignore (UFD.union s.st_uf n c.tc_node);
        List.iter (fun (g, _) -> add_tail_edge fn g) c.tc_members
      | Sjumptable { target_addrs; _ } ->
        List.iter (fun a -> union_site_target slot a) target_addrs
      | Slongjmp _ ->
        s.st_longjmp_slots <- slot :: s.st_longjmp_slots;
        IS.iter (fun a -> union_site_target slot a) s.st_setjmps
      | Splt { symbol } ->
        Hashtbl.replace s.st_plt_slots symbol
          (slot
          :: Option.value ~default:[] (Hashtbl.find_opt s.st_plt_slots symbol));
        (match Hashtbl.find_opt s.st_defined symbol with
        | Some f -> union_site_target slot f.faddr
        | None -> ()))
    m.m_sites;
  s.st_nsites <- s.st_nsites + Array.length m.m_sites;
  (* 4. direct call and tail-call edges *)
  List.iter
    (fun (_caller, callee, ret) ->
      ignore (node_of_addr ret);
      add_call_rets1 callee ret)
    m.m_direct_calls;
  List.iter (fun (a, b) -> add_tail_edge a b) m.m_tail_calls;
  (* 5. fresh canonical assignment, delta vs installed, commit *)
  let new_tary, new_bary, stats = assign s in
  let delta = compute_delta s new_tary new_bary stats in
  s.st_installed_tary <- new_tary;
  s.st_installed_bary <- new_bary;
  s.st_stats <- stats;
  (s, delta)

let generate input =
  let rs = return_sites input in
  let site_targets =
    Array.map
      (function
        | Sreturn { fn } -> IS.elements (rs fn)
        | Sicall { ty; _ } | Sitail { ty; _ } ->
          List.map (fun f -> f.faddr) (matched_functions input ty)
        | Sjumptable { target_addrs; _ } -> target_addrs
        | Slongjmp _ -> input.setjmp_addrs
        | Splt { symbol } ->
          List.filter_map
            (fun f -> if f.fname = symbol then Some f.faddr else None)
            input.functions)
      input.sites
  in
  (* The universe of possible indirect-branch targets (the paper's IBTs):
     address-taken function entries, return sites, jump-table targets and
     setjmp continuations — whether or not some branch currently reaches
     them. *)
  let ibts = ref IS.empty in
  List.iter
    (fun f -> if f.faddress_taken then ibts := IS.add f.faddr !ibts)
    input.functions;
  List.iter (fun (_, _, ret) -> ibts := IS.add ret !ibts) input.direct_calls;
  Array.iter
    (function
      | Sicall { ret_addr; _ } -> ibts := IS.add ret_addr !ibts
      | Sjumptable { target_addrs; _ } ->
        List.iter (fun a -> ibts := IS.add a !ibts) target_addrs
      | Sreturn _ | Sitail _ | Slongjmp _ | Splt _ -> ())
    input.sites;
  List.iter (fun a -> ibts := IS.add a !ibts) input.setjmp_addrs;
  Array.iter
    (fun targets -> List.iter (fun a -> ibts := IS.add a !ibts) targets)
    site_targets;
  let target_list = IS.elements !ibts in
  let index_of =
    let tbl = Hashtbl.create (List.length target_list) in
    List.iteri (fun i a -> Hashtbl.add tbl a i) target_list;
    fun a -> Hashtbl.find tbl a
  in
  (* Classic-CFI equivalence classes: merge each site's target set. *)
  let uf = Mcfi_util.Union_find.create (List.length target_list) in
  Array.iter
    (fun targets ->
      match targets with
      | [] -> ()
      | anchor :: rest ->
        List.iter
          (fun t ->
            ignore
              (Mcfi_util.Union_find.union uf (index_of anchor) (index_of t)))
          rest)
    site_targets;
  (* ECN per union-find root. *)
  let ecn_of_root = Hashtbl.create 64 in
  let next_ecn = ref 0 in
  let fresh_ecn () =
    let e = !next_ecn in
    incr next_ecn;
    if e >= Idtables.Id.max_ecn then raise (Too_many_classes e);
    e
  in
  let ecn_of_target addr =
    let root = Mcfi_util.Union_find.find uf (index_of addr) in
    match Hashtbl.find_opt ecn_of_root root with
    | Some e -> e
    | None ->
      let e = fresh_ecn () in
      Hashtbl.add ecn_of_root root e;
      e
  in
  let tary = List.map (fun addr -> (addr, ecn_of_target addr)) target_list in
  let bary =
    Array.to_list
      (Array.mapi
         (fun slot targets ->
           match targets with
           | anchor :: _ -> (slot, ecn_of_target anchor)
           | [] ->
             (* no allowed target: a class no address belongs to, so the
                check always fails (the paper's broken-by-missing-edges
                case, kind K1, surfaces exactly like this) *)
             (slot, fresh_ecn ()))
         site_targets)
  in
  let n_eqcs = Hashtbl.length ecn_of_root in
  {
    tary;
    bary;
    stats =
      {
        n_ibs = Array.length input.sites;
        n_ibts = List.length target_list;
        n_eqcs;
      };
  }
