(** The attack-surface (reachability) map of a loaded, instrumented
    process: for every live indirect-branch enforcement site, the set of
    targets the installed Bary/Tary pair actually admits.

    This is the quantitative side of the red-team evaluation (Burow et
    al.'s equivalence-class metrics): per-site class sizes, the
    class-size histogram, and forward/backward-edge target counts over
    the {e corruptible} sites — the sites whose branch operand an
    in-model attacker can influence through memory (everything except
    jump tables, whose operands never transit attacker-writable data).

    The map is computed from the live tables plus the process's CFG
    input view, {e after} the program ran, so dynamically loaded
    modules are included. *)

type kind = Kreturn | Kicall | Kitail | Kjumptable | Klongjmp | Kplt

val kind_name : kind -> string

(** Whether an attacker in the paper's concurrent-writer model can
    steer this site: its branch operand is loaded from writable data
    (return address, function-pointer cell, GOT slot, jmp_buf).  False
    only for [Kjumptable]. *)
val corruptible : kind -> bool

(** Backward edge = return; everything else corruptible is forward. *)
val backward : kind -> bool

type site = {
  s_slot : int;  (** global Bary slot *)
  s_kind : kind;
  s_owner : string;  (** owning function, or ["plt:<symbol>"] *)
  s_ecn : int;  (** installed equivalence-class number *)
  s_admitted : int array;  (** target addresses the tables admit, sorted *)
  s_justified : int;  (** raw CFG edge count before class merging *)
}

type t = {
  r_sites : site list;  (** ascending slot *)
  r_histogram : (int * int) list;  (** class size -> number of classes *)
  r_corruptible : int;  (** corruptible site count *)
  r_forward_edges : int;  (** admitted edges from corruptible forward sites *)
  r_backward_edges : int;  (** admitted edges from corruptible return sites *)
}

(** [None] on an uninstrumented process. *)
val compute : Mcfi_runtime.Process.t -> t option

val site : t -> int -> site option

(** [admits t ~slot ~target]: the tables admit [target] at [slot] —
    agreement with the live {!Idtables.Tx.check} is the cross-oracle
    property [test_redteam] checks. *)
val admits : t -> slot:int -> target:int -> bool

(** Total admitted edges over corruptible sites. *)
val attack_edges : t -> int

(** The attack-surface table [mcfi stats --redteam] renders. *)
val pp_table : Format.formatter -> t -> unit

val to_json : t -> Obs.Json.t
