(** In-policy attack synthesis: search for chains of indirect transfers
    that an in-model concurrent attacker (memory writes only, between
    instruction retirements) can steer from a corruptible site to a
    dangerous primitive {e without failing any MCFI check}.

    The search is three-staged:
    + a benign reference run records which sites execute and where each
      committed transfer actually went;
    + a static walk over the decoded code image explores, per admitted
      {e diverted} target (admitted by the tables, validated against the
      live {!Idtables.Tx.check}, never taken benignly), whether
      straight-line execution from that target reaches a dangerous
      syscall or an unmasked sandbox write — or another corruptible site
      to chain through;
    + a found chain's first hop is compiled into a concrete, seeded
      attacker plan (return-address or function-pointer/GOT corruption)
      and re-executed for confirmation. *)

(** What a chain reaches.  [Gsyscall (Some n)]: a syscall whose number
    resolves to the dangerous set (sbrk / dlopen / dlsym — the
    sandbox-escape and code-loading primitives; exit and the I/O
    syscalls are benign).  [Gsyscall None]: a syscall whose number the
    walker cannot resolve (treated as dangerous).  [Gwrite pc]: a store
    outside the sandbox-mask idiom at [pc]. *)
type goal = Gsyscall of int option | Gwrite of int

val goal_name : goal -> string

(** A concrete attacker plan for a chain's first hop — replayable: it
    names stable symbols/addresses, not run-specific state. *)
type plan =
  | Corrupt_global of { sym : string; words : int; value : int }
      (** overwrite [words] cells of data symbol [sym] with [value]
          before the first instruction (function-pointer array, GOT
          slot) *)
  | Corrupt_return of { pop_pc : int; hit : int; value : int }
      (** on the [hit]-th arrival at [pop_pc] (the [Pop] of a return
          site's check sequence), overwrite the stack top — the saved
          return address — with [value] *)

val pp_plan : Format.formatter -> plan -> unit

type hop = { h_slot : int; h_target : int; h_diverted : bool }

type chain = {
  c_start : int;  (** the corruptible slot the attack enters at *)
  c_hops : hop list;  (** in execution order; head enters at [c_start] *)
  c_goal : goal;
  c_goal_pc : int;
  c_plan : plan option;  (** [None]: no write primitive derivable *)
  c_confirmed : bool;  (** the plan re-executed and the diverted first
                           hop was observed committing *)
  c_exit : string;  (** confirmation run's exit reason ("" if no plan) *)
}

val chain_json : chain -> Obs.Json.t

type result = {
  sr_reach : Reach.t;
  sr_exit : Mcfi_runtime.Machine.exit_reason;  (** benign run's exit *)
  sr_chains : chain list;
  sr_sites_scanned : int;
  sr_edges_checked : int;  (** candidate edges validated via [Tx.check] *)
  sr_walks : int;
}

(** [run ~build ()] searches the program [build] constructs.  [build] is
    called once for the benign reference run and once per confirmation;
    it must be deterministic (same sources, same seed) so code addresses
    agree across calls.  [Error] when the process is uninstrumented.
    [max_targets] caps admitted targets explored per site per hop;
    [max_depth] caps chain length; [confirm_chains:false] skips the
    per-chain confirmation runs (the shrinker's fast path — the final
    artifact is re-confirmed). *)
val run :
  ?max_depth:int ->
  ?max_targets:int ->
  ?fuel:int ->
  ?confirm_chains:bool ->
  build:(unit -> Mcfi_runtime.Process.t) ->
  unit ->
  (result, string) Stdlib.result

(** Fold search counters into the telemetry metrics registry as the
    [mcfi_redteam_*] counter family (gated like every metric). *)
val publish : result -> unit

(** {1 Sabotage exemplar}

    [render_sabotaged sp] renders [sp] with the in-policy attack target
    grafted in: [sp_global_fp] forced on (so the corruptible [gops]
    function-pointer array exists) and a static decoy module appended
    whose decoy function is address-taken with the same type as the
    [gops] workers — in-class for the tables, never called benignly,
    and its body reaches a dangerous syscall.  The rendered sources are
    self-contained: a corpus artifact embedding them replays without
    this function. *)

val decoy_src : string
val sabotage : Fuzz.Spec.t -> Fuzz.Spec.t
val render_sabotaged : Fuzz.Spec.t -> Fuzz.Spec.rendered
