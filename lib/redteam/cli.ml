(* The `mcfi redteam` subcommand: the attack-synthesis campaign.

   Three modes, mirroring `mcfi fuzz`:
   - campaign (default): generate programs from the fuzz generator
     (optionally sabotaged with the in-class decoy), search each for
     in-policy chains, shrink the first find with the spec-level
     shrinker, and write a replayable corpus artifact.  Exit 1 when a
     chain was found (the campaign's job is to find attacks; CI runs
     the clean campaign expecting 0 and the sabotaged one expecting 1).
   - file mode (positional sources): search one concrete program,
     render the attack-surface table, optionally write a JSON report.
   - --replay: re-run the search over a committed chain artifact's
     embedded sources; exit 0 if the chain reproduces, 1 if it
     vanished, 2 if the file is unreadable. *)

open Cmdliner
module Driver = Fuzz.Driver
module Oracle = Fuzz.Oracle
module Spec = Fuzz.Spec
module Corpus = Fuzz.Corpus
module Shrink = Fuzz.Shrink
module Json = Obs.Json
module Flightrec = Obs.Flightrec

type mode =
  | Campaign of {
      seed : int64;
      iters : int;
      budget : float;
      corpus : string;
      sabotage : bool;
      report : string option;
    }
  | File of { files : string list; dynamic : string list; report : string option }
  | Replay of string list

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED"
         ~doc:"campaign seed; a found chain prints its iteration seed")

let iters_arg =
  Arg.(value & opt int 50 & info [ "iters"; "n" ] ~docv:"N"
         ~doc:"number of generated programs to search")

let budget_arg =
  Arg.(value & opt float 0. & info [ "time-budget" ] ~docv:"SECONDS"
         ~doc:"stop after this much wall-clock time (0 = no budget)")

let corpus_arg =
  Arg.(value & opt string "corpus" & info [ "corpus" ] ~docv:"DIR"
         ~doc:"directory for shrunk chain artifacts")

let sabotage_arg =
  Arg.(value & flag & info [ "sabotage" ]
         ~doc:"graft the in-class decoy module into every generated \
               program (self-test: the search must find its chain)")

let report_arg =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE"
         ~doc:"write a JSON report of the search results to $(docv)")

let replay_arg =
  Arg.(value & opt_all string [] & info [ "replay" ] ~docv:"FILE"
         ~doc:"replay chain artifact $(docv) instead of searching \
               (repeatable)")

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"MiniC source modules to search (instead of a campaign)")

let dynamic_arg =
  Arg.(value & opt_all file [] & info [ "dl" ] ~docv:"FILE"
         ~doc:"module to make available for dlopen (repeatable)")

let mode_of seed iters budget corpus sabotage report replay files dynamic =
  match (replay, files) with
  | (_ :: _ as r), _ -> Replay r
  | [], (_ :: _ as f) -> File { files = f; dynamic; report }
  | [], [] -> Campaign { seed; iters; budget; corpus; sabotage; report }

let mode_term =
  Term.(const mode_of $ seed_arg $ iters_arg $ budget_arg $ corpus_arg
        $ sabotage_arg $ report_arg $ replay_arg $ files_arg $ dynamic_arg)

(* ---------- shared reporting ---------- *)

let pp_chain ppf (c : Search.chain) =
  Fmt.pf ppf "chain from slot %d (%d hop%s) -> %s@." c.Search.c_start
    (List.length c.Search.c_hops)
    (if List.length c.Search.c_hops = 1 then "" else "s")
    (Search.goal_name c.Search.c_goal);
  List.iter
    (fun (h : Search.hop) ->
      Fmt.pf ppf "  slot %d -> 0x%x%s@." h.Search.h_slot h.Search.h_target
        (if h.Search.h_diverted then "  (diverted)" else ""))
    c.Search.c_hops;
  (match c.Search.c_plan with
  | Some p -> Fmt.pf ppf "  plan: %a@." Search.pp_plan p
  | None -> Fmt.pf ppf "  plan: none derivable@.");
  if c.Search.c_exit <> "" then
    Fmt.pf ppf "  confirmation: %s (exit: %s)@."
      (if c.Search.c_confirmed then "diverted hop committed" else "NOT observed")
      c.Search.c_exit

let result_json ?seed (r : Search.result) =
  Json.Obj
    ([
       ("reach", Reach.to_json r.Search.sr_reach);
       ("chains", Json.Arr (List.map Search.chain_json r.Search.sr_chains));
       ("sites_scanned", Json.num r.Search.sr_sites_scanned);
       ("edges_checked", Json.num r.Search.sr_edges_checked);
       ("walks", Json.num r.Search.sr_walks);
     ]
    @
    match seed with
    | None -> []
    | Some s -> [ ("seed", Json.Str (Int64.to_string s)) ])

let write_report path json =
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "report written to %s@." path

let chain_msg seed (c : Search.chain) =
  Printf.sprintf
    "redteam: in-policy chain seed=%Ld start-slot=%d hops=%d goal=%s%s"
    seed c.Search.c_start
    (List.length c.Search.c_hops)
    (Search.goal_name c.Search.c_goal)
    (if c.Search.c_confirmed then " (confirmed)" else "")

let record_bundle seed chain =
  ignore
    (Flightrec.record_trigger Flightrec.Redteam_chain
       ~reason:(chain_msg seed chain)
       ~extra:
         [
           ("redteam_chain", Search.chain_json chain);
           ("seed", Json.Str (Int64.to_string seed));
         ]
       ())

(* ---------- campaign mode ---------- *)

let build_of (r : Spec.rendered) () =
  Oracle.build ~instrumented:true ~static:r.Spec.r_static
    ~dynamic:r.Spec.r_dynamic ()

let render ~sabotage sp =
  if sabotage then Search.render_sabotaged sp else Spec.render sp

let search_rendered ?confirm_chains r =
  Search.run ?confirm_chains ~build:(build_of r) ()

let artifact_path ~corpus ~seed entry =
  (try Unix.mkdir corpus 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path =
    Filename.concat corpus (Printf.sprintf "chain_redteam_seed%Ld.c" seed)
  in
  let oc = open_out path in
  output_string oc (Corpus.to_string entry);
  close_out oc;
  path

let run_campaign ~seed ~iters ~budget ~corpus ~sabotage ~report =
  Fmt.pr "redteam: seed=%Ld iters=%d%s@." seed iters
    (if sabotage then " sabotage (decoy grafted: the search must find it)"
     else "");
  let t0 = Unix.gettimeofday () in
  let over_budget () = budget > 0. && Unix.gettimeofday () -. t0 > budget in
  let rec loop i =
    if i >= iters || over_budget () then begin
      Fmt.pr "redteam: %d program%s searched, no in-policy chain found@." i
        (if i = 1 then "" else "s");
      0
    end
    else begin
      let iseed = Driver.iter_seed seed i in
      let sp = Driver.spec_of iseed in
      match search_rendered (render ~sabotage sp) with
      | Error e ->
        Fmt.pr "  seed %Ld: skipped (%s)@." iseed e;
        loop (i + 1)
      | Ok r when r.Search.sr_chains = [] ->
        Search.publish r;
        loop (i + 1)
      | Ok r ->
        Search.publish r;
        Fmt.pr "redteam: FOUND at iteration %d (seed %Ld): %d chain%s, first \
                reaches %s@."
          i iseed
          (List.length r.Search.sr_chains)
          (if List.length r.Search.sr_chains = 1 then "" else "s")
          (Search.goal_name (List.hd r.Search.sr_chains).Search.c_goal);
        (* shrink the recipe while the search still finds a chain; the
           final render is re-searched with confirmation on *)
        let reproduces sp' =
          match search_rendered ~confirm_chains:false (render ~sabotage sp')
          with
          | Ok r' -> r'.Search.sr_chains <> []
          | Error _ -> false
        in
        let shrunk = Shrink.minimize ~budget:80 ~reproduces sp in
        let rendered = render ~sabotage shrunk in
        let final =
          match search_rendered rendered with
          | Ok r' when r'.Search.sr_chains <> [] -> r'
          | _ -> r
        in
        let chain = List.hd final.Search.sr_chains in
        Fmt.pr "%a" pp_chain chain;
        let msg = chain_msg iseed chain in
        let entry =
          {
            Corpus.c_seed = iseed;
            c_oracle = 7;
            c_drop_check = None;
            c_msg = msg;
            c_static = rendered.Spec.r_static;
            c_dynamic = rendered.Spec.r_dynamic;
          }
        in
        let path = artifact_path ~corpus ~seed:iseed entry in
        record_bundle iseed chain;
        Fmt.pr "  shrunk to %d MiniC lines@." (Spec.line_count rendered);
        Fmt.pr "  written to %s (replay: mcfi redteam --replay %s)@." path path;
        Option.iter
          (fun p -> write_report p (result_json ~seed:iseed final))
          report;
        1
    end
  in
  loop 0

(* ---------- file mode ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let module_name path = Filename.remove_extension (Filename.basename path)

let run_file ~files ~dynamic ~report =
  let static = List.map (fun p -> (module_name p, read_file p)) files in
  let dyn = List.map (fun p -> (module_name p, read_file p)) dynamic in
  let build () = Oracle.build ~instrumented:true ~static ~dynamic:dyn () in
  match Search.run ~build () with
  | Error e ->
    Fmt.epr "redteam: %s@." e;
    2
  | Ok r ->
    Search.publish r;
    Fmt.pr "%a" Reach.pp_table r.Search.sr_reach;
    Option.iter (fun p -> write_report p (result_json r)) report;
    if r.Search.sr_chains = [] then begin
      Fmt.pr "no in-policy chain found (%d sites scanned, %d edges checked)@."
        r.Search.sr_sites_scanned r.Search.sr_edges_checked;
      0
    end
    else begin
      List.iter (fun c -> Fmt.pr "%a" pp_chain c) r.Search.sr_chains;
      1
    end

(* ---------- replay mode ---------- *)

let replay_one path =
  match Corpus.read path with
  | Error msg ->
    Fmt.pr "%s: unreadable: %s@." path msg;
    2
  | Ok e ->
    let build () =
      Oracle.build ~instrumented:true ~static:e.Corpus.c_static
        ~dynamic:e.Corpus.c_dynamic ()
    in
    (match Search.run ~build () with
    | Error msg ->
      Fmt.pr "%s: unreadable: %s@." path msg;
      2
    | Ok r when r.Search.sr_chains <> [] ->
      let c = List.hd r.Search.sr_chains in
      Fmt.pr "%s: reproduced (%a)@." path
        (fun ppf c ->
          Fmt.pf ppf "start slot %d, %d hop%s, %s%s" c.Search.c_start
            (List.length c.Search.c_hops)
            (if List.length c.Search.c_hops = 1 then "" else "s")
            (Search.goal_name c.Search.c_goal)
            (if c.Search.c_confirmed then ", confirmed" else ""))
        c;
      0
    | Ok _ ->
      Fmt.pr "%s: chain vanished (policy closed it?)@." path;
      1)

let run_replay files =
  List.fold_left (fun acc p -> max acc (replay_one p)) 0 files

let main = function
  | Campaign { seed; iters; budget; corpus; sabotage; report } ->
    run_campaign ~seed ~iters ~budget ~corpus ~sabotage ~report
  | File { files; dynamic; report } -> run_file ~files ~dynamic ~report
  | Replay files -> run_replay files

let cmd =
  Cmd.v
    (Cmd.info "redteam"
       ~doc:"in-policy attack synthesis: enumerate the admitted attack \
             surface and search for attacker-steerable chains from \
             corruptible sites to dangerous primitives that pass every \
             MCFI check")
    Term.(const main $ mode_term)
