(* In-policy attack synthesis.

   Threat model (paper §4): the attacker runs between any two retired
   instructions and may write any writable data — but not registers,
   code, or the tables.  So the only control it has over an indirect
   branch is through the memory the branch operand transits (saved
   return address, function-pointer cell, GOT slot), and the branch
   still goes through the full Bary/Tary check: the attack surface is
   exactly the admitted in-class target sets Reach computes.

   The search asks: does any *diverted* admitted edge (in-class, passes
   the live Tx.check, never taken benignly) lead — by straight-line
   execution from the landing address — to a dangerous primitive, or to
   another corruptible site to chain through?  The walk is a small
   abstract interpreter over the decoded image: it tracks
   constant-vs-unknown register values and an abstract value stack
   (enough to resolve syscall numbers through the codegen's
   push-all/pop-all syscall sequence), forks at conditional branches,
   stops at Halt / instrumented sites / unresolvable indirect flow, and
   flags dangerous syscalls (sbrk, dlopen, dlsym, or an unresolved
   number) and stores outside the sandbox-mask idiom.

   A found chain is compiled into a concrete attacker plan for its
   first hop and re-executed for confirmation: the plan is installed as
   a Machine attacker hook (identical under both dispatch engines — the
   threaded engine defers to the byte path while an attacker is
   installed) and the diverted transfer must be observed committing. *)

module Process = Mcfi_runtime.Process
module Machine = Mcfi_runtime.Machine
module Tables = Idtables.Tables
module Tx = Idtables.Tx
module Disasm = Vmisa.Disasm
module Instr = Vmisa.Instr
module Abi = Vmisa.Abi
module Json = Obs.Json
module Spec = Fuzz.Spec
module IS = Set.Make (Int)

type goal = Gsyscall of int option | Gwrite of int

let goal_name = function
  | Gsyscall (Some n) ->
    Printf.sprintf "syscall-%s"
      (Option.value (Abi.name_of_syscall n) ~default:(string_of_int n))
  | Gsyscall None -> "syscall-unresolved"
  | Gwrite pc -> Printf.sprintf "unmasked-store@0x%x" pc

type plan =
  | Corrupt_global of { sym : string; words : int; value : int }
  | Corrupt_return of { pop_pc : int; hit : int; value : int }

let pp_plan ppf = function
  | Corrupt_global { sym; words; value } ->
    Fmt.pf ppf "corrupt-global %s[0..%d] <- 0x%x" sym (words - 1) value
  | Corrupt_return { pop_pc; hit; value } ->
    Fmt.pf ppf "corrupt-return @0x%x hit %d <- 0x%x" pop_pc hit value

let plan_json = function
  | Corrupt_global { sym; words; value } ->
    Json.Obj
      [
        ("kind", Json.str "corrupt-global");
        ("sym", Json.str sym);
        ("words", Json.num words);
        ("value", Json.num value);
      ]
  | Corrupt_return { pop_pc; hit; value } ->
    Json.Obj
      [
        ("kind", Json.str "corrupt-return");
        ("pop_pc", Json.num pop_pc);
        ("hit", Json.num hit);
        ("value", Json.num value);
      ]

type hop = { h_slot : int; h_target : int; h_diverted : bool }

type chain = {
  c_start : int;
  c_hops : hop list;
  c_goal : goal;
  c_goal_pc : int;
  c_plan : plan option;
  c_confirmed : bool;
  c_exit : string;
}

let chain_json c =
  Json.Obj
    [
      ("start_slot", Json.num c.c_start);
      ( "hops",
        Json.Arr
          (List.map
             (fun h ->
               Json.Obj
                 [
                   ("slot", Json.num h.h_slot);
                   ("target", Json.num h.h_target);
                   ("diverted", Json.Bool h.h_diverted);
                 ])
             c.c_hops) );
      ("goal", Json.str (goal_name c.c_goal));
      ("goal_pc", Json.num c.c_goal_pc);
      ( "plan",
        match c.c_plan with None -> Json.Null | Some p -> plan_json p );
      ("confirmed", Json.Bool c.c_confirmed);
      ("exit", Json.str c.c_exit);
    ]

type result = {
  sr_reach : Reach.t;
  sr_exit : Machine.exit_reason;
  sr_chains : chain list;
  sr_sites_scanned : int;
  sr_edges_checked : int;
  sr_walks : int;
}

(* ---------- site metadata from the decoded image ---------- *)

(* The rewriter's shapes are fixed (rewriter.ml): a return site is
   [Pop r12] directly before its [Bary_load], and every read block's
   committing [Call_r]/[Jmp_r] follows its [Bary_load] within a few
   instructions (Tary_load, compare, branch-to-check, alignment Nops). *)
type sitemeta = {
  sm_slot : int;
  sm_commit_pc : int option;
  sm_pop_pc : int option;
}

let decode m =
  let listing, _err =
    Disasm.disassemble ~base:(Machine.code_base m) (Machine.code_image m)
  in
  let arr = Array.of_list listing in
  let index = Hashtbl.create (Array.length arr) in
  Array.iteri (fun i (addr, _) -> Hashtbl.replace index addr i) arr;
  (arr, index)

let sitemap arr =
  let metas = Hashtbl.create 32 in
  let commits = Hashtbl.create 32 in
  Array.iteri
    (fun i (_, ins) ->
      match ins with
      | Instr.Bary_load (_, slot) ->
        let pop_pc =
          if i > 0 then
            match arr.(i - 1) with
            | pa, Instr.Pop r when r = Instr.rscratch1 -> Some pa
            | _ -> None
          else None
        in
        let commit = ref None in
        (try
           for j = i + 1 to min (i + 12) (Array.length arr - 1) do
             match arr.(j) with
             | ca, (Instr.Call_r _ | Instr.Jmp_r _) ->
               commit := Some ca;
               raise Exit
             | _, Instr.Bary_load _ -> raise Exit
             | _ -> ()
           done
         with Exit -> ());
        Hashtbl.replace metas slot
          { sm_slot = slot; sm_commit_pc = !commit; sm_pop_pc = pop_pc };
        Option.iter (fun ca -> Hashtbl.replace commits ca slot) !commit
      | _ -> ())
    arr;
  (metas, commits)

(* ---------- the abstract walker ---------- *)

type value = Const of int | Unknown

let dangerous n = n = Abi.sys_sbrk || n = Abi.sys_dlopen || n = Abi.sys_dlsym

type walk = { w_goals : (int * goal) list; w_sites : IS.t }

let walk_steps = 4000
let walk_revisits = 4

(* [walk arr index addr] explores every path from [addr].  Register
   state starts fully unknown (the attacker diverts mid-execution);
   [masked] holds the destination register of an immediately preceding
   sandbox-mask [And], which blesses the next store through it.  A
   direct [Call] is not inlined: the callee returns through its own
   instrumented epilogue, so execution resumes after the call with all
   caller-visible registers (and the abstract stack) unknown —
   conservative toward reporting, never toward missing a benign
   resolution that matters (no generated or libc code calls between a
   syscall number's push and its pop). *)
let walk arr index addr =
  let goals = ref [] and sites = ref IS.empty in
  let steps = ref 0 in
  let visits = Hashtbl.create 128 in
  let rec go i regs stack masked =
    if !steps < walk_steps && i < Array.length arr then begin
      incr steps;
      let seen = Option.value (Hashtbl.find_opt visits i) ~default:0 in
      if seen < walk_revisits then begin
        Hashtbl.replace visits i (seen + 1);
        let pc, ins = arr.(i) in
        let next () = go (i + 1) regs stack None in
        match ins with
        | Instr.Nop -> next ()
        | Instr.Halt -> ()
        | Instr.Mov_ri (r, n) ->
          regs.(r) <- Const n;
          next ()
        | Instr.Mov_rr (d, s) ->
          regs.(d) <- regs.(s);
          next ()
        | Instr.Binop (_, d, _) ->
          regs.(d) <- Unknown;
          next ()
        | Instr.Binop_i (Instr.And, d, m) when m = Abi.sandbox_mask ->
          regs.(d) <- Unknown;
          go (i + 1) regs stack (Some d)
        | Instr.Binop_i (op, d, n) ->
          (regs.(d) <-
             (match (regs.(d), op) with
             | Const v, Instr.Add -> Const (v + n)
             | Const v, Instr.Sub -> Const (v - n)
             | _ -> Unknown));
          next ()
        | Instr.Load (d, _, _) | Instr.Tary_load (d, _) ->
          regs.(d) <- Unknown;
          next ()
        | Instr.Store (rb, _, _) ->
          if rb = Instr.rsp || rb = Instr.rfp || masked = Some rb then next ()
          else goals := (pc, Gwrite pc) :: !goals
        | Instr.Push r -> go (i + 1) regs (regs.(r) :: stack) None
        | Instr.Pop r -> begin
          match stack with
          | v :: rest ->
            regs.(r) <- v;
            go (i + 1) regs rest None
          | [] ->
            regs.(r) <- Unknown;
            next ()
        end
        | Instr.Cmp_rr _ | Instr.Cmp_ri _ | Instr.Cmp_lo _ | Instr.Test_ri _
          ->
          next ()
        | Instr.Jmp a -> begin
          match Hashtbl.find_opt index a with
          | Some j -> go j regs stack None
          | None -> ()
        end
        | Instr.Jcc (_, a) ->
          (match Hashtbl.find_opt index a with
          | Some j -> go j (Array.copy regs) stack None
          | None -> ());
          next ()
        | Instr.Call _ ->
          for r = 0 to Instr.num_regs - 3 do
            regs.(r) <- Unknown
          done;
          go (i + 1) regs [] None
        | Instr.Call_r _ | Instr.Jmp_r _ | Instr.Ret -> ()
        | Instr.Syscall -> begin
          match regs.(0) with
          | Const n when n = Abi.sys_exit -> ()
          | Const n when dangerous n -> goals := (pc, Gsyscall (Some n)) :: !goals
          | Const _ ->
            regs.(0) <- Unknown;
            next ()
          | Unknown -> goals := (pc, Gsyscall None) :: !goals
        end
        | Instr.Bary_load (_, slot) -> sites := IS.add slot !sites
      end
    end
  in
  (match Hashtbl.find_opt index addr with
  | None -> ()
  | Some i -> go i (Array.make Instr.num_regs Unknown) [] None);
  { w_goals = List.rev !goals; w_sites = !sites }

(* ---------- the benign reference run ---------- *)

type built = {
  b_proc : Process.t;
  b_tables : Tables.t;
  b_exit : Machine.exit_reason;
  b_reach : Reach.t;
  b_metas : (int, sitemeta) Hashtbl.t;
  b_observed : (int, IS.t) Hashtbl.t;
  b_executed : IS.t;
  b_arr : (int * Instr.t) array;
  b_index : (int, int) Hashtbl.t;
}

let transfer_cap = 200_000

let record_transfers m =
  let transfers = ref [] and n = ref 0 in
  Machine.set_transfer_hook m
    (Some
       (fun src dst ->
         if !n < transfer_cap then begin
           incr n;
           transfers := (src, dst) :: !transfers
         end));
  transfers

let prepare ~fuel build =
  let proc = build () in
  match Process.tables proc with
  | None -> Error "redteam requires an instrumented process"
  | Some tables ->
    let m = Process.machine proc in
    let transfers = record_transfers m in
    let exit = Process.run ~fuel proc in
    Machine.set_transfer_hook m None;
    (* decode and map *after* the run, so dlopened modules are in the
       image, the tables, and the CFG view *)
    let arr, index = decode m in
    let metas, commits = sitemap arr in
    let reach =
      match Reach.compute proc with
      | Some r -> r
      | None -> assert false
    in
    let observed = Hashtbl.create 32 in
    List.iter
      (fun (src, dst) ->
        match Hashtbl.find_opt commits src with
        | None -> ()
        | Some slot ->
          let cur =
            Option.value (Hashtbl.find_opt observed slot) ~default:IS.empty
          in
          Hashtbl.replace observed slot (IS.add dst cur))
      !transfers;
    let executed =
      Hashtbl.fold (fun slot _ acc -> IS.add slot acc) observed IS.empty
    in
    Ok
      {
        b_proc = proc;
        b_tables = tables;
        b_exit = exit;
        b_reach = reach;
        b_metas = metas;
        b_observed = observed;
        b_executed = executed;
        b_arr = arr;
        b_index = index;
      }

(* ---------- plan derivation and confirmation ---------- *)

(* The write primitive behind each corruptible site kind.  An
   icall/itail operand may flow from anywhere; the one memory cell the
   generated programs materialize for it is the [gops] global
   function-pointer array, so that is what the plan corrupts (both
   entries, before the first instruction).  A return site's primitive
   is exact: overwrite the stack top at the site's [Pop].  A PLT site's
   is its GOT slot. *)
let derive_plan b slot target =
  match Reach.site b.b_reach slot with
  | None -> None
  | Some s -> begin
    match s.Reach.s_kind with
    | Reach.Kreturn -> begin
      match Hashtbl.find_opt b.b_metas slot with
      | Some { sm_pop_pc = Some pc; _ } ->
        Some (Corrupt_return { pop_pc = pc; hit = 1; value = target })
      | _ -> None
    end
    | Reach.Kicall | Reach.Kitail -> begin
      match Process.lookup_data b.b_proc "gops" with
      | Some _ -> Some (Corrupt_global { sym = "gops"; words = 2; value = target })
      | None -> None
    end
    | Reach.Kplt -> begin
      let sym =
        let o = s.Reach.s_owner in
        if String.length o > 4 && String.sub o 0 4 = "plt:" then
          String.sub o 4 (String.length o - 4)
        else o
      in
      let got = Instrument.Rewriter.got_symbol sym in
      match Process.lookup_data b.b_proc got with
      | Some _ -> Some (Corrupt_global { sym = got; words = 1; value = target })
      | None -> None
    end
    | Reach.Klongjmp | Reach.Kjumptable -> None
  end

let install_attacker proc plan =
  let m = Process.machine proc in
  match plan with
  | Corrupt_global { sym; words; value } ->
    let fired = ref false in
    Machine.set_attacker m (fun m ->
        if not !fired then
          match Process.lookup_data proc sym with
          | None -> ()
          | Some addr ->
            fired := true;
            for k = 0 to words - 1 do
              Machine.write_data m (addr + k) value
            done)
  | Corrupt_return { pop_pc; hit; value } ->
    let seen = ref 0 in
    Machine.set_attacker m (fun m ->
        if Machine.pc m = pop_pc then begin
          incr seen;
          if !seen = hit then
            Machine.write_data m (Machine.reg m Instr.rsp) value
        end)

(* Replay the plan on a fresh build and watch for a diverted transfer to
   the first hop's target actually committing.  Layout is deterministic
   across builds, so the benign run's site addresses remain valid.
   Exact-slot commit is the strong form; a global-cell plan (gops, GOT)
   may equally divert a *different* site of the same class first — any
   commit to the target along an edge the benign run never took is
   still the synthesized in-policy diversion, so it also confirms. *)
let confirm ~fuel ~observed build plan ~slot ~target =
  let proc = build () in
  let m = Process.machine proc in
  install_attacker proc plan;
  let transfers = record_transfers m in
  let exit = Process.run ~fuel proc in
  Machine.set_transfer_hook m None;
  let arr, _ = decode m in
  let _, commits = sitemap arr in
  let hit =
    List.exists
      (fun (src, dst) ->
        dst = target
        &&
        match Hashtbl.find_opt commits src with
        | Some s -> s = slot || not (IS.mem dst (observed s))
        | None -> false)
      !transfers
  in
  Process.teardown proc;
  (hit, Fmt.str "%a" Machine.pp_exit_reason exit)

(* ---------- the chain search ---------- *)

let run ?(max_depth = 4) ?(max_targets = 48) ?(fuel = 10_000_000)
    ?(confirm_chains = true) ~build () =
  match prepare ~fuel build with
  | Error e -> Error e
  | Ok b ->
    let edges_checked = ref 0 and walks = ref 0 in
    let walk_cache = Hashtbl.create 64 in
    let walk_to addr =
      match Hashtbl.find_opt walk_cache addr with
      | Some w -> w
      | None ->
        incr walks;
        let w = walk b.b_arr b.b_index addr in
        Hashtbl.replace walk_cache addr w;
        w
    in
    let passes slot target =
      incr edges_checked;
      Tx.check ~max_retries:64 b.b_tables ~bary_index:slot ~target = Tx.Pass
    in
    let observed slot =
      Option.value (Hashtbl.find_opt b.b_observed slot) ~default:IS.empty
    in
    let cap l = List.filteri (fun i _ -> i < max_targets) l in
    let corruptible_site slot =
      match Reach.site b.b_reach slot with
      | Some s when Reach.corruptible s.Reach.s_kind -> Some s
      | _ -> None
    in
    (* One BFS per corruptible executed start site; the first hop must
       be diverted, later hops may ride edges the program also takes
       benignly (the attacker has already seized control). *)
    let search_from s0 =
      let queue = Queue.create () in
      let visited = ref (IS.singleton s0.Reach.s_slot) in
      let found = ref None in
      let expand slot ~require_divert hops_rev depth =
        match corruptible_site slot with
        | None -> ()
        | Some s ->
          let obs = observed slot in
          let candidates =
            Array.to_list s.Reach.s_admitted
            |> List.filter (fun t -> not (require_divert && IS.mem t obs))
            |> cap
          in
          List.iter
            (fun t ->
              if !found = None && passes slot t then begin
                let diverted = not (IS.mem t obs) in
                let hop = { h_slot = slot; h_target = t; h_diverted = diverted }
                in
                if (not require_divert) || diverted then begin
                  let w = walk_to t in
                  match w.w_goals with
                  | (pc, g) :: _ ->
                    found := Some (List.rev (hop :: hops_rev), g, pc)
                  | [] ->
                    if depth < max_depth then
                      IS.iter
                        (fun s1 ->
                          if not (IS.mem s1 !visited) then begin
                            visited := IS.add s1 !visited;
                            Queue.add (s1, hop :: hops_rev, depth + 1) queue
                          end)
                        w.w_sites
                end
              end)
            candidates
      in
      expand s0.Reach.s_slot ~require_divert:true [] 1;
      while !found = None && not (Queue.is_empty queue) do
        let slot, hops_rev, depth = Queue.pop queue in
        expand slot ~require_divert:false hops_rev depth
      done;
      !found
    in
    let starts =
      List.filter
        (fun s ->
          Reach.corruptible s.Reach.s_kind
          && IS.mem s.Reach.s_slot b.b_executed)
        b.b_reach.Reach.r_sites
    in
    let chains =
      List.filter_map
        (fun s0 ->
          match search_from s0 with
          | None -> None
          | Some (hops, g, pc) ->
            let first = List.hd hops in
            let plan = derive_plan b first.h_slot first.h_target in
            let confirmed, exit =
              match plan with
              | Some p when confirm_chains ->
                confirm ~fuel ~observed build p ~slot:first.h_slot
                  ~target:first.h_target
              | _ -> (false, "")
            in
            Some
              {
                c_start = s0.Reach.s_slot;
                c_hops = hops;
                c_goal = g;
                c_goal_pc = pc;
                c_plan = plan;
                c_confirmed = confirmed;
                c_exit = exit;
              })
        starts
    in
    let r =
      {
        sr_reach = b.b_reach;
        sr_exit = b.b_exit;
        sr_chains = chains;
        sr_sites_scanned = List.length starts;
        sr_edges_checked = !edges_checked;
        sr_walks = !walks;
      }
    in
    Process.teardown b.b_proc;
    Ok r

let publish r =
  let add n v = Telemetry.Metrics.add (Telemetry.Metrics.counter n) v in
  add "mcfi_redteam_sites_scanned" r.sr_sites_scanned;
  add "mcfi_redteam_edges_checked" r.sr_edges_checked;
  add "mcfi_redteam_walks" r.sr_walks;
  add "mcfi_redteam_chains_found" (List.length r.sr_chains);
  add "mcfi_redteam_chains_confirmed"
    (List.length (List.filter (fun c -> c.c_confirmed) r.sr_chains))

(* ---------- the sabotage exemplar ---------- *)

(* A decoy that is in-policy by construction: address-taken with the
   same type as the [gops] workers, so type-matching CFG generation
   puts it in their equivalence class — yet never called benignly, and
   its body reaches the dlopen syscall (the code-loading primitive; the
   handler rejects the garbage name, then the decoy exits with an
   observable 70..77 code).  Appended as a static module so it is in
   the tables from startup; the rendered sources stay self-contained
   for corpus replay. *)
let decoy_src =
  "int redteam_decoy(int x) {\n\
  \  __syscall(4, x);\n\
  \  __syscall(0, 70 + (x & 7));\n\
  \  return x;\n\
   }\n\
   int (*redteam_ops[2])(int) = { redteam_decoy, redteam_decoy };\n"

let sabotage sp = { sp with Spec.sp_global_fp = true }

let render_sabotaged sp =
  let r = Spec.render (sabotage sp) in
  { r with Spec.r_static = r.Spec.r_static @ [ ("redteam0", decoy_src) ] }
