(* The attack-surface map: what the installed tables let an in-policy
   attacker aim at, per corruptible site.

   Sources of truth: the live tables give the admitted sets (a target is
   admitted at a slot iff its Tary ID and the slot's Bary ID share an
   ECN — exactly the comparison Tx.check performs), and the CFG input
   view gives each slot's kind and its raw, pre-merge edge count, so
   the table also shows how much each class over-approximates the
   precise CFG ("justified" vs "admitted"). *)

module Process = Mcfi_runtime.Process
module Tables = Idtables.Tables
module Id = Idtables.Id
module Cfggen = Cfg.Cfggen
module Json = Obs.Json
module IS = Set.Make (Int)

type kind = Kreturn | Kicall | Kitail | Kjumptable | Klongjmp | Kplt

let kind_name = function
  | Kreturn -> "return"
  | Kicall -> "icall"
  | Kitail -> "itail"
  | Kjumptable -> "jumptable"
  | Klongjmp -> "longjmp"
  | Kplt -> "plt"

let corruptible = function Kjumptable -> false | _ -> true
let backward = function Kreturn -> true | _ -> false

type site = {
  s_slot : int;
  s_kind : kind;
  s_owner : string;
  s_ecn : int;
  s_admitted : int array;
  s_justified : int;
}

type t = {
  r_sites : site list;
  r_histogram : (int * int) list;
  r_corruptible : int;
  r_forward_edges : int;
  r_backward_edges : int;
}

let kind_of_site = function
  | Cfggen.Sreturn _ -> Kreturn
  | Cfggen.Sicall _ -> Kicall
  | Cfggen.Sitail _ -> Kitail
  | Cfggen.Sjumptable _ -> Kjumptable
  | Cfggen.Slongjmp _ -> Klongjmp
  | Cfggen.Splt _ -> Kplt

let owner_of_site = function
  | Cfggen.Sreturn { fn }
  | Cfggen.Sicall { fn; _ }
  | Cfggen.Sitail { fn; _ }
  | Cfggen.Sjumptable { fn; _ }
  | Cfggen.Slongjmp { fn } ->
    fn
  | Cfggen.Splt { symbol } -> "plt:" ^ symbol

let compute proc =
  match Process.tables proc with
  | None -> None
  | Some tables ->
    let input = Process.cfg_input proc in
    (* class ECN -> sorted admitted target set, from the live Tary *)
    let by_ecn = Hashtbl.create 16 in
    List.iter
      (fun (addr, id) ->
        let ecn = Id.ecn id in
        let cur = Option.value (Hashtbl.find_opt by_ecn ecn) ~default:IS.empty in
        Hashtbl.replace by_ecn ecn (IS.add addr cur))
      (Tables.tary_entries tables);
    let admitted_of ecn =
      Array.of_list
        (IS.elements (Option.value (Hashtbl.find_opt by_ecn ecn) ~default:IS.empty))
    in
    let sites =
      List.map
        (fun (slot, id) ->
          let ecn = Id.ecn id in
          let kind, owner, justified =
            if slot < Array.length input.Cfggen.sites then begin
              let s = input.Cfggen.sites.(slot) in
              ( kind_of_site s,
                owner_of_site s,
                List.length
                  (List.sort_uniq compare (Cfggen.targets_of_site input s)) )
            end
            else (Kicall, "?", 0)
          in
          {
            s_slot = slot;
            s_kind = kind;
            s_owner = owner;
            s_ecn = ecn;
            s_admitted = admitted_of ecn;
            s_justified = justified;
          })
        (List.sort compare (Tables.bary_entries tables))
    in
    let hist = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ecn targets ->
        let n = IS.cardinal targets in
        Hashtbl.replace hist n (1 + Option.value (Hashtbl.find_opt hist n) ~default:0))
      by_ecn;
    let histogram =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist [])
    in
    let corr = List.filter (fun s -> corruptible s.s_kind) sites in
    let edges p =
      List.fold_left
        (fun acc s -> if p s then acc + Array.length s.s_admitted else acc)
        0 corr
    in
    Some
      {
        r_sites = sites;
        r_histogram = histogram;
        r_corruptible = List.length corr;
        r_forward_edges = edges (fun s -> not (backward s.s_kind));
        r_backward_edges = edges (fun s -> backward s.s_kind);
      }

let site t slot = List.find_opt (fun s -> s.s_slot = slot) t.r_sites

let admits t ~slot ~target =
  match site t slot with
  | None -> false
  | Some s -> Array.exists (fun a -> a = target) s.s_admitted

let attack_edges t = t.r_forward_edges + t.r_backward_edges

let pp_table ppf t =
  Fmt.pf ppf "attack surface: %d sites, %d corruptible (%d forward / %d backward admitted edges)@."
    (List.length t.r_sites) t.r_corruptible t.r_forward_edges t.r_backward_edges;
  Fmt.pf ppf "%-5s %-10s %-14s %6s %9s %9s@." "slot" "kind" "owner" "ecn"
    "admitted" "justified";
  List.iter
    (fun s ->
      Fmt.pf ppf "%-5d %-10s %-14s %6d %9d %9d%s@." s.s_slot
        (kind_name s.s_kind) s.s_owner s.s_ecn (Array.length s.s_admitted)
        s.s_justified
        (if corruptible s.s_kind then "" else "  (not corruptible)"))
    t.r_sites;
  Fmt.pf ppf "class-size histogram (size: classes):";
  List.iter (fun (size, n) -> Fmt.pf ppf " %d:%d" size n) t.r_histogram;
  Fmt.pf ppf "@."

let to_json t =
  Json.Obj
    [
      ("sites", Json.num (List.length t.r_sites));
      ("corruptible_sites", Json.num t.r_corruptible);
      ("forward_edges", Json.num t.r_forward_edges);
      ("backward_edges", Json.num t.r_backward_edges);
      ( "class_histogram",
        Json.Arr
          (List.map
             (fun (size, n) -> Json.Arr [ Json.num size; Json.num n ])
             t.r_histogram) );
      ( "per_site",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("slot", Json.num s.s_slot);
                   ("kind", Json.str (kind_name s.s_kind));
                   ("owner", Json.str s.s_owner);
                   ("ecn", Json.num s.s_ecn);
                   ("admitted", Json.num (Array.length s.s_admitted));
                   ("justified", Json.num s.s_justified);
                 ])
             t.r_sites) );
    ]
