(* Fixed-size time-series rings for the SLO engine and the dashboard.

   A series is a named ring of (timestamp, value) samples with a
   single writer — the supervisor tick, a bench harness — and relaxed
   readers on the same or another domain (the dashboard).  Torn floats
   are impossible in OCaml (boxed float arrays store immediates of the
   unboxed representation), and a reader racing the writer at worst
   sees a sample from the previous lap, which a chart tolerates.  The
   registry is find-or-create under a mutex, like the metrics
   registry. *)

type series = {
  ts_name : string;
  ts_cap : int;
  ts_t : float array;
  ts_v : float array;
  mutable ts_pushes : int; (* total samples ever pushed *)
}

let default_capacity = 240

let lock = Mutex.create ()
let registry : series list ref = ref []

let series ?(cap = default_capacity) name =
  if cap < 2 then invalid_arg "Timeseries.series: cap < 2";
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match List.find_opt (fun s -> s.ts_name = name) !registry with
      | Some s -> s
      | None ->
        let s =
          {
            ts_name = name;
            ts_cap = cap;
            ts_t = Array.make cap 0.0;
            ts_v = Array.make cap 0.0;
            ts_pushes = 0;
          }
        in
        registry := s :: !registry;
        s)

let name s = s.ts_name
let length s = min s.ts_pushes s.ts_cap

let push_at s ~t v =
  let i = s.ts_pushes mod s.ts_cap in
  s.ts_t.(i) <- t;
  s.ts_v.(i) <- v;
  s.ts_pushes <- s.ts_pushes + 1

let push s v = push_at s ~t:(Unix.gettimeofday ()) v

(* oldest-first window of the last [n] samples *)
let recent s n =
  let len = length s in
  let n = min n len in
  let acc = ref [] in
  for k = 0 to n - 1 do
    let idx = s.ts_pushes - 1 - k in
    let i = idx mod s.ts_cap in
    acc := (s.ts_t.(i), s.ts_v.(i)) :: !acc
  done;
  !acc

let last s =
  if s.ts_pushes = 0 then None
  else begin
    let i = (s.ts_pushes - 1) mod s.ts_cap in
    Some (s.ts_t.(i), s.ts_v.(i))
  end

let sum_recent s n =
  List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (recent s n)

let all () =
  Mutex.lock lock;
  let l = !registry in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.ts_name b.ts_name) l

let reset () =
  Mutex.lock lock;
  registry := [];
  Mutex.unlock lock
