(** The flight recorder: an always-on per-domain black box, separate
    from the sampled telemetry trace and gated independently of it, plus
    forensic-bundle snapshots taken when something goes wrong.

    Breadcrumbs ({!note}) and per-check tallies ({!bump}) are cheap
    enough to stay on in production (no global sequence word, plain
    stores into per-domain strides); a {e trigger} snapshots the event
    tails, tallies and caller-supplied context into a {!bundle}
    serialized as self-contained JSON, replayable by
    [mcfi forensics]. *)

(** {1 Trigger taxonomy} *)

type trigger =
  | Failed_check  (** a check transaction returned Violation *)
  | Tx_escalation  (** retries exhausted / escalation ladder taken *)
  | Supervisor_transition  (** a tenant entered Degraded / Quarantined *)
  | Oracle_anomaly  (** the torture / fleet epoch-history oracle flagged *)
  | Watchdog  (** the update watchdog fired *)
  | Injected_kill  (** a fault plan killed an updater mid-install *)
  | Redteam_chain  (** the attack synthesizer found an in-policy chain *)

val trigger_code : trigger -> int
val trigger_of_code : int -> trigger
val trigger_name : trigger -> string
val trigger_of_name : string -> trigger option
val all_triggers : trigger list

(** {1 The gate} *)

val recording : unit -> bool
(** The recorder's own gate — independent of [Telemetry.enabled], so the
    black box never changes dispatch behavior.  Defaults to on. *)

val set_recording : bool -> unit

val set_ring_capacity : int -> unit
(** Events retained per domain ring (min 8, default 128).  Applies to
    rings minted after the call. *)

(** {1 Breadcrumbs and tallies} *)

val note : kind:int -> ctx:int -> a:int -> b:int -> c:int -> unit
(** Record one black-box event in the calling domain's ring: a
    [Telemetry.Event] kind code plus a [Telemetry.Event.make_ctx]
    context word.  One gate load, one cursor read, five plain stores,
    one publish — no global sequence, no allocation. *)

type tally
(** A per-domain tally handle: resolve once per slice with {!tally},
    then {!bump} is plain array stores per check. *)

val tally : unit -> tally
val bump : tally -> outcome:int -> retries:int -> unit
(** [outcome]: 0 = pass, 1 = violation, else retries-exhausted. *)

val tally_totals : unit -> int * int * int * int * int
(** [(checks, passes, violations, exhausted, retries)] over all
    domains. *)

(** {1 Events} *)

type event = {
  ev_domain : int;
  ev_seq : int;  (** per-domain ordinal (the ring's publish index) *)
  ev_kind : int;  (** [Telemetry.Event] kind code *)
  ev_ctx : int;  (** [Telemetry.Event] context word *)
  ev_a : int;
  ev_b : int;
  ev_c : int;
}

val drain : unit -> event list
(** All rings' retained events, (domain, seq)-ordered.  Safe under
    concurrent writers: possibly-torn slots are discarded. *)

val notes_emitted : unit -> int

(** {1 Triggers and bundles} *)

type bundle = {
  bu_id : int;
  bu_trigger : trigger;
  bu_reason : string;
  bu_at_ns : int;
  bu_extra : (string * Json.t) list;
  bu_events : event list;
  bu_tallies : (int * int * int * int * int) list;
}

val set_cap : trigger -> int -> unit
(** Cap bundles per trigger kind ([-1] = unlimited).  Defaults: the
    noisy check-path triggers keep the first few (failed-check 4,
    escalation 8, watchdog 4, transition 32); oracle anomalies,
    injected kills and red-team chains are unlimited — the harness
    accounting demands exactly one bundle each. *)

val cap : trigger -> int

val trigger_armed : trigger -> bool
(** Whether a {!record_trigger} for this kind would currently produce a
    bundle — callers use it to skip building reason/context strings on
    capped paths. *)

val record_trigger :
  trigger ->
  reason:string ->
  ?extra:(string * Json.t) list ->
  unit ->
  bundle option
(** Snapshot a forensic bundle.  [None] when recording is off or the
    trigger kind is over its cap (counted in {!dropped}).  When a
    directory is set ({!set_dir}) the bundle is also written to
    [forensics-<id>-<trigger>.json] there. *)

val set_ecn_namer : (int -> string option) -> unit
(** Install the equivalence-class namer (the runtime wires this to
    [Cfggen.state_class_names] after each merge).  The recorder cannot
    depend on the CFG layer itself. *)

val ecn_name : int -> string
(** The installed namer's answer, or the synthetic ["ecn-<n>"]. *)

val bundle_json : bundle -> Json.t
val schema : string
val schema_version : int

val bundles : unit -> bundle list
(** Bundles kept in memory (bounded; oldest first). *)

val counts : unit -> (trigger * int) list
(** Trigger requests per kind (capped requests included). *)

val trigger_requests : trigger -> int
val emitted : unit -> int
val dropped : unit -> int

val set_dir : string option -> unit
(** Where bundles are written as they are emitted ([None] keeps them in
    memory only).  The directory is created, parents included, if it
    does not exist. *)

val dir : unit -> string option
val files_written : unit -> string list

val reset : unit -> unit
(** Rewind rings, zero tallies and counters, drop kept bundles and the
    written-files log.  Caps and the output directory persist; see
    {!reset_caps}. *)

val reset_caps : unit -> unit
