(* The `mcfi top` renderer: one ANSI frame over whatever the registries
   currently hold — time-series rings, SLO trackers and their burn
   rates, the alert log, and the flight recorder's accounting.  The
   renderer owns no state and takes no locks beyond the registries'
   own, so it can run on the main domain while a fleet runs on
   workers. *)

let esc = "\027["
let bold s = esc ^ "1m" ^ s ^ esc ^ "0m"
let dim s = esc ^ "2m" ^ s ^ esc ^ "0m"
let red s = esc ^ "31m" ^ s ^ esc ^ "0m"
let green s = esc ^ "32m" ^ s ^ esc ^ "0m"
let yellow s = esc ^ "33m" ^ s ^ esc ^ "0m"

let plain s = s

let sparks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

(* a sparkline over the raw values, self-scaled to their min/max *)
let spark values =
  match values with
  | [] -> ""
  | vs ->
    let lo = List.fold_left Float.min infinity vs in
    let hi = List.fold_left Float.max neg_infinity vs in
    let span = if hi -. lo < 1e-9 then 1.0 else hi -. lo in
    String.concat ""
      (List.map
         (fun v ->
           let k =
             int_of_float ((v -. lo) /. span *. 7.0 +. 0.5)
             |> max 0 |> min 7
           in
           sparks.(k))
         vs)

let render ?(color = true) ?(width = 30) () =
  let c f s = if color then f s else plain s in
  let b = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "%s\n"
    (c bold
       (Printf.sprintf "mcfi top — %s"
          (let t = Unix.gettimeofday () in
           let tm = Unix.localtime t in
           Printf.sprintf "%02d:%02d:%02d" tm.Unix.tm_hour tm.Unix.tm_min
             tm.Unix.tm_sec)));
  (* flight recorder *)
  let checks, passes, violations, exhausted, retries =
    Flightrec.tally_totals ()
  in
  p "%s recording=%s bundles=%d dropped=%d notes=%d\n"
    (c bold "flight recorder:")
    (if Flightrec.recording () then c green "on" else c red "OFF")
    (Flightrec.emitted ()) (Flightrec.dropped ())
    (Flightrec.notes_emitted ());
  if checks > 0 then
    p "  checks=%d pass=%d violation=%d exhausted=%d retries=%d\n" checks
      passes violations exhausted retries;
  List.iter
    (fun (tr, n) ->
      if n > 0 then p "  %-22s %6d\n" (Flightrec.trigger_name tr) n)
    (Flightrec.counts ());
  (* time series *)
  let series = Timeseries.all () in
  if series <> [] then begin
    p "%s\n" (c bold "series:");
    List.iter
      (fun s ->
        let window = Timeseries.recent s width in
        let values = List.map snd window in
        let last = match Timeseries.last s with
          | Some (_, v) -> v
          | None -> 0.0
        in
        p "  %-28s %10.1f %s\n" (Timeseries.name s) last
          (c dim (spark values)))
      series
  end;
  (* SLO trackers *)
  let trackers = Slo.trackers () in
  if trackers <> [] then begin
    p "%s\n" (c bold "slo burn (fast/slow):");
    List.iter
      (fun tk ->
        let fast, slow = Slo.burns tk in
        let line =
          Printf.sprintf "  %-20s %-12s %6.2f / %-6.2f%s"
            (Slo.objective_of tk).Slo.o_name (Slo.entity tk) fast slow
            (if Slo.alerting tk then "  BURNING" else "")
        in
        p "%s\n"
          (if Slo.alerting tk then c red line
           else if fast >= 1.0 then c yellow line
           else line))
      trackers
  end;
  (* recent alerts *)
  let alerts = Slo.alerts () in
  if alerts <> [] then begin
    p "%s\n" (c bold "recent alerts:");
    let tail =
      let n = List.length alerts in
      List.filteri (fun i _ -> i >= n - 8) alerts
    in
    List.iter (fun al -> p "  %s\n" (Fmt.str "%a" Slo.pp_alert al)) tail
  end;
  Buffer.contents b

let frame ?color ?width () =
  (* home + clear-to-end keeps the frame flicker-free vs a full clear *)
  esc ^ "H" ^ esc ^ "J" ^ render ?color ?width ()
