(* The flight recorder: an always-on black box for the MCFI runtime.

   The sampled telemetry trace answers "what is the system doing?" when
   an operator has turned it on; the flight recorder answers "what just
   happened?" after something went wrong, and it must already have been
   running.  Two consequences shape the design:

   - Its gate is its own atomic, independent of [Telemetry.enabled].
     Telemetry changes behavior elsewhere (the threaded dispatcher
     falls back to the byte engine while telemetry is on, so it can
     profile), and the black box must not.  Recording defaults to ON.

   - The write paths are strictly cheaper than the telemetry ring's:
     breadcrumbs ([note]) touch no global sequence word — each
     per-domain ring numbers its own events with its publish cursor —
     and the per-check tallies ([bump]) are plain stores into a
     per-domain slab stride whose base the caller resolves once per
     slice, not per check.

   Rings follow the telemetry pool's single-writer protocol: plain
   stores of the event words, one atomic store of the publish cursor,
   and a torn-slot-discarding drain, so a snapshot taken while every
   domain is emitting contains no torn events.

   A *trigger* (failed check, Tx escalation, supervisor transition,
   oracle anomaly, watchdog fire, injected kill) snapshots everything
   into a forensic bundle: the per-domain event tails, the tallies, the
   caller's structured context (violating site, shard state, tenant
   health), and the recorder's own accounting.  Bundles serialize to
   self-contained JSON replayable by `mcfi forensics`.  Noisy triggers
   are capped per kind — the first few bundles carry the story, the
   rest are counted as dropped — while oracle anomalies and injected
   kills are never capped: the harnesses' accounting demands exactly
   one bundle per event. *)

(* ---- trigger taxonomy ---- *)

type trigger =
  | Failed_check
  | Tx_escalation
  | Supervisor_transition
  | Oracle_anomaly
  | Watchdog
  | Injected_kill
  | Redteam_chain

let n_triggers = 7

let trigger_code = function
  | Failed_check -> 0
  | Tx_escalation -> 1
  | Supervisor_transition -> 2
  | Oracle_anomaly -> 3
  | Watchdog -> 4
  | Injected_kill -> 5
  | Redteam_chain -> 6

let trigger_of_code = function
  | 0 -> Failed_check
  | 1 -> Tx_escalation
  | 2 -> Supervisor_transition
  | 3 -> Oracle_anomaly
  | 4 -> Watchdog
  | 5 -> Injected_kill
  | 6 -> Redteam_chain
  | n -> invalid_arg (Printf.sprintf "Flightrec.trigger_of_code %d" n)

let trigger_name = function
  | Failed_check -> "failed-check"
  | Tx_escalation -> "tx-escalation"
  | Supervisor_transition -> "supervisor-transition"
  | Oracle_anomaly -> "oracle-anomaly"
  | Watchdog -> "watchdog-fire"
  | Injected_kill -> "injected-kill"
  | Redteam_chain -> "redteam-chain"

let trigger_of_name = function
  | "failed-check" -> Some Failed_check
  | "tx-escalation" -> Some Tx_escalation
  | "supervisor-transition" -> Some Supervisor_transition
  | "oracle-anomaly" -> Some Oracle_anomaly
  | "watchdog-fire" -> Some Watchdog
  | "injected-kill" -> Some Injected_kill
  | "redteam-chain" -> Some Redteam_chain
  | _ -> None

let all_triggers =
  [
    Failed_check;
    Tx_escalation;
    Supervisor_transition;
    Oracle_anomaly;
    Watchdog;
    Injected_kill;
    Redteam_chain;
  ]

(* ---- the gate (padded like the telemetry gates) ---- *)

let armed = Atomic.make true
let _pad_gate = Array.make 15 0

let recording () = Atomic.get armed
let set_recording b = Atomic.set armed b

(* ---- per-domain black-box rings ---- *)

type ring = {
  r_cap : int;
  r_dom : int array;
  r_kind : int array; (* kind code in bits 0-3, context word above *)
  r_a : int array;
  r_b : int array;
  r_c : int array;
  r_published : int Atomic.t;
}

let ring_slots = 64
let default_capacity = 128
let capacity = Atomic.make default_capacity

let set_ring_capacity n =
  if n < 8 then invalid_arg "Flightrec.set_ring_capacity: capacity < 8";
  Atomic.set capacity n

let pool : ring option Atomic.t array =
  Array.init ring_slots (fun _ -> Atomic.make None)

let make_ring () =
  let cap = Atomic.get capacity in
  {
    r_cap = cap;
    r_dom = Array.make cap 0;
    r_kind = Array.make cap 0;
    r_a = Array.make cap 0;
    r_b = Array.make cap 0;
    r_c = Array.make cap 0;
    r_published = Atomic.make 0;
  }

let ring_for slot =
  match Atomic.get pool.(slot) with
  | Some r when r.r_cap = Atomic.get capacity -> r
  | _ ->
    let r = make_ring () in
    Atomic.set pool.(slot) (Some r);
    r

(* The breadcrumb path.  No global sequence word: the ring's own publish
   cursor is the per-domain sequence, so concurrent noters never share a
   cache line.  [kind] is a [Telemetry.Event] kind code; [ctx] a
   [Telemetry.Event.make_ctx] context word. *)
let note ~kind ~ctx ~a ~b ~c =
  if Atomic.get armed then begin
    let d = (Domain.self () :> int) in
    let r = ring_for (d land (ring_slots - 1)) in
    let p = Atomic.get r.r_published in
    let i = p mod r.r_cap in
    r.r_dom.(i) <- d;
    r.r_kind.(i) <- (kind land 15) lor (ctx lsl 4);
    r.r_a.(i) <- a;
    r.r_b.(i) <- b;
    r.r_c.(i) <- c;
    Atomic.set r.r_published (p + 1)
  end

(* ---- per-check tallies ----

   One padded stride per domain; the caller resolves its stride base
   once per slice ([tally]) and then [bump] is a handful of plain array
   stores per check — the whole reason the recorder can stay on at
   ratio >= 0.95.  Colliding domains (ids equal mod 64) may undercount;
   the diagnostics contract tolerates that, as with the telemetry
   slab. *)

let tally_domains = 64
let tally_stride = 16
let tslab = Array.make (tally_domains * tally_stride) 0
let off_checks = 0
let off_passes = 1
let off_violations = 2
let off_exhausted = 3
let off_retries = 4

type tally = int

let tally () =
  ((Domain.self () :> int) land (tally_domains - 1)) * tally_stride

let bump base ~outcome ~retries =
  Array.unsafe_set tslab (base + off_checks)
    (Array.unsafe_get tslab (base + off_checks) + 1);
  let o =
    if outcome = 0 then off_passes
    else if outcome = 1 then off_violations
    else off_exhausted
  in
  Array.unsafe_set tslab (base + o) (Array.unsafe_get tslab (base + o) + 1);
  if retries > 0 then
    Array.unsafe_set tslab (base + off_retries)
      (Array.unsafe_get tslab (base + off_retries) + retries)

let tally_totals () =
  let sum off =
    let t = ref 0 in
    for d = 0 to tally_domains - 1 do
      t := !t + tslab.((d * tally_stride) + off)
    done;
    !t
  in
  (sum off_checks, sum off_passes, sum off_violations, sum off_exhausted,
   sum off_retries)

(* ---- drain (torn-slot-safe, as in the telemetry ring) ---- *)

type event = {
  ev_domain : int;
  ev_seq : int; (* per-domain: the ring's publish ordinal *)
  ev_kind : int;
  ev_ctx : int;
  ev_a : int;
  ev_b : int;
  ev_c : int;
}

let drain_ring r =
  let p1 = Atomic.get r.r_published in
  let lo = max 0 (p1 - r.r_cap) in
  let acc = ref [] in
  for idx = p1 - 1 downto lo do
    let i = idx mod r.r_cap in
    let kw = r.r_kind.(i) in
    acc :=
      {
        ev_domain = r.r_dom.(i);
        ev_seq = idx;
        ev_kind = kw land 15;
        ev_ctx = kw lsr 4;
        ev_a = r.r_a.(i);
        ev_b = r.r_b.(i);
        ev_c = r.r_c.(i);
      }
      :: !acc
  done;
  let events = !acc in
  (* discard whatever a writer may have been overwriting while we read:
     the unpublished event [p2] occupies the slot of event [p2 - cap] *)
  let p2 = Atomic.get r.r_published in
  let safe_from = p2 - r.r_cap + 1 in
  List.filteri (fun k _ -> lo + k >= safe_from) events

let drain () =
  Array.to_list pool
  |> List.filter_map Atomic.get
  |> List.concat_map drain_ring
  |> List.sort (fun a b ->
         compare (a.ev_domain, a.ev_seq) (b.ev_domain, b.ev_seq))

let notes_emitted () =
  Array.to_list pool
  |> List.filter_map Atomic.get
  |> List.fold_left (fun acc r -> acc + Atomic.get r.r_published) 0

(* ---- triggers and bundles ---- *)

type bundle = {
  bu_id : int;
  bu_trigger : trigger;
  bu_reason : string;
  bu_at_ns : int;
  bu_extra : (string * Json.t) list;
  bu_events : event list;
  bu_tallies : (int * int * int * int * int) list;
      (* checks, passes, violations, exhausted, retries — totals *)
}

(* Per-trigger caps: -1 = unlimited.  Oracle anomalies and injected
   kills must map 1:1 to bundles (the harness accounting checks it);
   the check-path triggers are noisy by design and keep only the first
   few stories. *)
let default_caps = [| 4; 8; 32; -1; 4; -1; -1 |]
let caps = Array.copy default_caps

let set_cap tr n = caps.(trigger_code tr) <- n
let cap tr = caps.(trigger_code tr)

let requests = Array.init n_triggers (fun _ -> Atomic.make 0)
let bundle_ids = Atomic.make 0
let total_dropped = Atomic.make 0

let lock = Mutex.create ()
let kept : bundle list ref = ref [] (* newest first *)
let kept_limit = 64
let files : string list ref = ref [] (* newest first *)
let out_dir : string option ref = ref None

(* mkdir -p: bundles go missing silently otherwise (write_bundle must
   swallow filesystem errors — the recorder never crashes its host) *)
let rec ensure_dir d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then ensure_dir parent;
    match Sys.mkdir d 0o755 with
    | () -> ()
    | exception Sys_error _ -> ()
  end

let set_dir d =
  (match d with Some d -> ensure_dir d | None -> ());
  Mutex.lock lock;
  out_dir := d;
  Mutex.unlock lock

let dir () = !out_dir

let trigger_armed tr =
  Atomic.get armed
  &&
  let c = caps.(trigger_code tr) in
  c < 0 || Atomic.get requests.(trigger_code tr) < c

let trigger_requests tr = Atomic.get requests.(trigger_code tr)

let emitted () = Atomic.get bundle_ids
let dropped () = Atomic.get total_dropped

let counts () =
  List.map (fun tr -> (tr, Atomic.get requests.(trigger_code tr))) all_triggers

let bundles () = List.rev !kept

(* ---- ECN naming hook ----

   The recorder cannot depend on the CFG layer, so the layer that owns
   the equivalence-class names (the runtime, via Cfggen) installs a
   namer here.  Bundles then carry "which class" in human terms; with no
   namer installed (or for ECNs it does not know) the synthetic
   "ecn-<n>" keeps bundles self-contained. *)
let ecn_namer : (int -> string option) ref = ref (fun _ -> None)
let set_ecn_namer f = ecn_namer := f

let ecn_name e =
  match !ecn_namer e with
  | Some n -> n
  | None | (exception _) -> Printf.sprintf "ecn-%d" e

let event_json e =
  let base =
    [
      ("domain", Json.num e.ev_domain);
      ("seq", Json.num e.ev_seq);
      ( "kind",
        Json.Str
          (match Telemetry.Event.kind_of_code e.ev_kind with
          | k -> Telemetry.Event.kind_name k
          | exception _ -> Printf.sprintf "kind-%d" e.ev_kind) );
      ("a", Json.num e.ev_a);
      ("b", Json.num e.ev_b);
      ("c", Json.num e.ev_c);
    ]
  in
  let ctx =
    let s = Telemetry.Event.ctx_shard e.ev_ctx in
    let d = Telemetry.Event.ctx_dispatch e.ev_ctx in
    let al = Telemetry.Event.ctx_alert e.ev_ctx in
    (if s >= 0 then [ ("shard", Json.num s) ] else [])
    @ (if d <> 0 then
         [ ("dispatch", Json.Str (Telemetry.Event.dispatch_ctx_name d)) ]
       else [])
    @ if al >= 0 then [ ("alert", Json.num al) ] else []
  in
  Json.Obj (base @ ctx)

let schema = "mcfi-forensics"
let schema_version = 1

let bundle_json b =
  let checks, passes, violations, exhausted, retries =
    match b.bu_tallies with
    | [ t ] -> t
    | _ -> (0, 0, 0, 0, 0)
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("schema_version", Json.num schema_version);
      ("id", Json.num b.bu_id);
      ("trigger", Json.Str (trigger_name b.bu_trigger));
      ("reason", Json.Str b.bu_reason);
      ("at_ns", Json.num b.bu_at_ns);
      ("extra", Json.Obj b.bu_extra);
      ("events", Json.Arr (List.map event_json b.bu_events));
      ( "tallies",
        Json.Obj
          [
            ("checks", Json.num checks);
            ("passes", Json.num passes);
            ("violations", Json.num violations);
            ("exhausted", Json.num exhausted);
            ("retries", Json.num retries);
          ] );
      ( "counters",
        Json.Obj
          ([
             ("bundles", Json.num (emitted ()));
             ("dropped", Json.num (dropped ()));
             ("notes", Json.num (notes_emitted ()));
           ]
          @ List.map
              (fun tr ->
                ("trigger_" ^ trigger_name tr, Json.num (trigger_requests tr)))
              all_triggers) );
    ]

let write_bundle dir b =
  let path =
    Filename.concat dir
      (Printf.sprintf "forensics-%04d-%s.json" b.bu_id
         (trigger_name b.bu_trigger))
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (bundle_json b) ^ "\n"));
  path

let files_written () = List.rev !files

let record_trigger tr ~reason ?(extra = []) () =
  if not (Atomic.get armed) then None
  else begin
    let code = trigger_code tr in
    let n = Atomic.fetch_and_add requests.(code) 1 in
    let c = caps.(code) in
    if c >= 0 && n >= c then begin
      Atomic.incr total_dropped;
      None
    end
    else begin
      let b =
        {
          bu_id = Atomic.fetch_and_add bundle_ids 1;
          bu_trigger = tr;
          bu_reason = reason;
          bu_at_ns = Telemetry.now_ns ();
          bu_extra = extra;
          bu_events = drain ();
          bu_tallies = [ tally_totals () ];
        }
      in
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          if List.length !kept < kept_limit then kept := b :: !kept;
          match !out_dir with
          | Some d -> (
            match write_bundle d b with
            | path -> files := path :: !files
            | exception Sys_error _ -> ())
          | None -> ());
      Some b
    end
  end

let reset () =
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | Some r -> Atomic.set r.r_published 0
      | None -> ())
    pool;
  Array.fill tslab 0 (Array.length tslab) 0;
  Array.iter (fun r -> Atomic.set r 0) requests;
  Atomic.set bundle_ids 0;
  Atomic.set total_dropped 0;
  Mutex.lock lock;
  kept := [];
  files := [];
  Mutex.unlock lock

let reset_caps () = Array.blit default_caps 0 caps 0 n_triggers
