(** The [mcfi top] frame renderer: flight-recorder accounting,
    sparkline charts of every registered time series, SLO burn rates
    and the recent-alert tail, as one ANSI-colored string.  Stateless —
    safe to call from the main domain while a fleet runs on workers. *)

val render : ?color:bool -> ?width:int -> unit -> string
(** One frame without cursor control ([width] = sparkline samples,
    default 30). *)

val frame : ?color:bool -> ?width:int -> unit -> string
(** {!render} prefixed with home-and-clear ANSI control, for live
    redraw loops. *)

val spark : float list -> string
(** The raw sparkline helper (exposed for tests). *)
