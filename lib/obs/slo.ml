(* Multi-window burn-rate SLOs.

   An objective names a success-ratio target (e.g. 99% of check slices
   crash-free) and two evaluation windows in supervisor ticks.  Each
   tick the tracker receives one (good, total) sample; the burn rate of
   a window is

       (bad / total over the window) / (1 - target)

   i.e. how many times faster than budget the error budget is burning —
   1.0 means exactly on budget.  An alert fires only when BOTH windows
   burn above the threshold: the fast window makes detection prompt,
   the slow window keeps a single bad tick from paging.  Alerts are
   edge-triggered — one alert per excursion above the threshold, not
   one per tick — so a breaker trip maps to exactly one alert id, and
   the id is small enough to travel in a trace-event context word. *)

type objective = {
  o_name : string;
  o_target : float; (* success objective in (0, 1) *)
  o_fast_window : int; (* ticks *)
  o_slow_window : int;
  o_burn : float; (* burn-rate threshold for both windows *)
}

let objective ?(target = 0.99) ?(fast_window = 5) ?(slow_window = 30)
    ?(burn = 2.0) name =
  if target <= 0.0 || target >= 1.0 then
    invalid_arg "Slo.objective: target outside (0, 1)";
  if fast_window < 1 || slow_window < fast_window then
    invalid_arg "Slo.objective: bad windows";
  { o_name = name; o_target = target; o_fast_window = fast_window;
    o_slow_window = slow_window; o_burn = burn }

type alert = {
  al_id : int;
  al_objective : string;
  al_entity : string;
  al_fast_burn : float;
  al_slow_burn : float;
  al_tick : int;
}

type tracker = {
  tk_obj : objective;
  tk_entity : string;
  tk_good : int array; (* rings of o_slow_window samples *)
  tk_total : int array;
  mutable tk_ticks : int;
  mutable tk_alerting : bool; (* above threshold right now? *)
  mutable tk_last_alert : int; (* last alert id raised, -1 none *)
}

let next_alert_id = Atomic.make 0

let alerts_lock = Mutex.create ()
let alert_log : alert list ref = ref [] (* newest first *)
let alert_log_limit = 256

let trackers_lock = Mutex.create ()
let registry : tracker list ref = ref []

let tracker obj ~entity =
  let tk =
    {
      tk_obj = obj;
      tk_entity = entity;
      tk_good = Array.make obj.o_slow_window 0;
      tk_total = Array.make obj.o_slow_window 0;
      tk_ticks = 0;
      tk_alerting = false;
      tk_last_alert = -1;
    }
  in
  Mutex.lock trackers_lock;
  registry := tk :: !registry;
  Mutex.unlock trackers_lock;
  tk

let objective_of tk = tk.tk_obj
let entity tk = tk.tk_entity
let last_alert tk = if tk.tk_last_alert < 0 then None else Some tk.tk_last_alert

let observe tk ~good ~total =
  let i = tk.tk_ticks mod tk.tk_obj.o_slow_window in
  tk.tk_good.(i) <- good;
  tk.tk_total.(i) <- total;
  tk.tk_ticks <- tk.tk_ticks + 1

let window_burn tk window =
  let n = min window (min tk.tk_ticks tk.tk_obj.o_slow_window) in
  if n = 0 then 0.0
  else begin
    let good = ref 0 and total = ref 0 in
    for k = 0 to n - 1 do
      let i = (tk.tk_ticks - 1 - k) mod tk.tk_obj.o_slow_window in
      good := !good + tk.tk_good.(i);
      total := !total + tk.tk_total.(i)
    done;
    if !total = 0 then 0.0
    else begin
      let bad_ratio = float_of_int (!total - !good) /. float_of_int !total in
      bad_ratio /. (1.0 -. tk.tk_obj.o_target)
    end
  end

let burns tk =
  (window_burn tk tk.tk_obj.o_fast_window, window_burn tk tk.tk_obj.o_slow_window)

let log_alert al =
  Mutex.lock alerts_lock;
  alert_log := al :: !alert_log;
  (match !alert_log with
  | l when List.length l > alert_log_limit ->
    alert_log := List.filteri (fun i _ -> i < alert_log_limit) l
  | _ -> ());
  Mutex.unlock alerts_lock

let evaluate tk ~tick =
  let fast, slow = burns tk in
  let burning = fast >= tk.tk_obj.o_burn && slow >= tk.tk_obj.o_burn in
  if burning && not tk.tk_alerting then begin
    tk.tk_alerting <- true;
    let al =
      {
        al_id = Atomic.fetch_and_add next_alert_id 1;
        al_objective = tk.tk_obj.o_name;
        al_entity = tk.tk_entity;
        al_fast_burn = fast;
        al_slow_burn = slow;
        al_tick = tick;
      }
    in
    tk.tk_last_alert <- al.al_id;
    log_alert al;
    Some al
  end
  else begin
    if not burning then tk.tk_alerting <- false;
    None
  end

let alerting tk = tk.tk_alerting
let alerts () = List.rev !alert_log
let alert_count () = Atomic.get next_alert_id
let trackers () = List.rev !registry

let pp_alert ppf al =
  Fmt.pf ppf "alert #%d %s/%s burn fast=%.1f slow=%.1f tick=%d" al.al_id
    al.al_objective al.al_entity al.al_fast_burn al.al_slow_burn al.al_tick

let reset () =
  Mutex.lock alerts_lock;
  alert_log := [];
  Mutex.unlock alerts_lock;
  Mutex.lock trackers_lock;
  registry := [];
  Mutex.unlock trackers_lock;
  Atomic.set next_alert_id 0
