(** Multi-window burn-rate SLOs over per-tick (good, total) samples.

    A window's burn rate is [(bad/total) / (1 - target)] — how many
    times faster than budget the error budget is burning.  An alert
    fires when {e both} the fast and slow windows exceed the threshold,
    and only on the rising edge of the excursion, so one degradation
    episode raises exactly one alert (whose id can travel in a
    trace-event context word and a breaker transition record). *)

type objective = {
  o_name : string;
  o_target : float;
  o_fast_window : int;
  o_slow_window : int;
  o_burn : float;
}

val objective :
  ?target:float ->
  ?fast_window:int ->
  ?slow_window:int ->
  ?burn:float ->
  string ->
  objective
(** Defaults: target 0.99, windows 5/30 ticks, burn threshold 2.0. *)

type alert = {
  al_id : int;
  al_objective : string;
  al_entity : string;
  al_fast_burn : float;
  al_slow_burn : float;
  al_tick : int;
}

type tracker

val tracker : objective -> entity:string -> tracker
(** One tracker per (objective, entity) — e.g. install success on
    shard 3.  Registered globally for the dashboard; see {!trackers}. *)

val objective_of : tracker -> objective
val entity : tracker -> string

val observe : tracker -> good:int -> total:int -> unit
(** Record one tick's sample.  Single writer (the supervisor tick). *)

val evaluate : tracker -> tick:int -> alert option
(** Evaluate both windows; [Some alert] only on the rising edge. *)

val burns : tracker -> float * float
(** Current (fast, slow) burn rates. *)

val alerting : tracker -> bool
val last_alert : tracker -> int option

val alerts : unit -> alert list
(** The global alert log, oldest first (bounded). *)

val alert_count : unit -> int
val trackers : unit -> tracker list
val pp_alert : Format.formatter -> alert -> unit

val reset : unit -> unit
