(** Named fixed-size rings of (timestamp, value) samples — the storage
    under the SLO engine and the [mcfi top] dashboard.

    One writer per series (the supervisor tick or a bench harness);
    readers may race it and at worst see a stale sample, which charts
    and burn windows tolerate. *)

type series

val series : ?cap:int -> string -> series
(** Find or create a named series (default capacity 240 samples). *)

val name : series -> string
val length : series -> int

val push : series -> float -> unit
(** Append one sample stamped with the current wall clock. *)

val push_at : series -> t:float -> float -> unit

val recent : series -> int -> (float * float) list
(** The last [n] samples, oldest first. *)

val last : series -> (float * float) option
val sum_recent : series -> int -> float

val all : unit -> series list
(** Every registered series, name-sorted. *)

val reset : unit -> unit
(** Drop the whole registry. *)
