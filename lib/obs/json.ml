(* A minimal JSON value and emitter for forensic bundles.

   The obs library sits below everything that could parse JSON for it
   (Benchjson lives in the core library, which depends transitively on
   the runtime), so it carries its own dependency-free emitter.  The
   output is plain RFC-8259 JSON, parseable by [Mcfi.Benchjson.parse] —
   that round trip is what the forensics subcommand and the bundle
   schema test rely on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let num i = Num (float_of_int i)
let str s = Str s

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v ->
    if Float.is_finite v then
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" v)
      else Buffer.add_string b (Printf.sprintf "%.6g" v)
    else Buffer.add_string b "null"
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ", ";
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\": ";
        emit b v)
      kvs;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 1024 in
  emit b j;
  Buffer.contents b
