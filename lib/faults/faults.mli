(** Deterministic fault injection for the runtime's failure paths.

    MCFI's correctness story is not just the happy path: the update
    transaction (paper §5.2, Figs. 3–4) and the dynamic-linking protocol
    (§6–7) must never expose a half-installed CFG or a half-loaded module,
    even when the protocol dies in the middle.  This module provides the
    probe: a {e plan} names a trigger point inside one of those protocols,
    and while the plan is armed, the corresponding hook raises {!Injected}
    exactly there.  The differential oracle in [test/test_faults.ml] then
    asserts that the victim operation either rolled back to the
    pre-operation state or completed as if no fault had fired — never a
    third outcome.

    Hooks are compiled into {!Idtables.Tx}, {!Mcfi_runtime.Process},
    {!Mcfi_runtime.Linker} and {!Mcfi_runtime.Machine} permanently; when no
    plan is armed a hook is a single load of [None], kept off the
    check-transaction hot path entirely (the [bench] §txmicro numbers are
    the regression guard).

    The armed plan is a process-global: tests arm, run one victim
    operation, and disarm ({!with_plan} scopes this).  [At] plans are
    one-shot — after firing they disarm themselves, so a recovery retry of
    the same protocol does not re-fail at the same point.  Arming, the
    countdown and the random draw are all domain-safe: hooks may be
    crossed concurrently from many domains (the torture harness does
    exactly that), and an [At] plan still fires exactly once. *)

module Plan : sig
  (** A trigger point: a named program location inside a protocol. *)
  type point =
    | Nth_tary_write
        (** each Tary slot publish in an update transaction's phase 1 *)
    | Between_tary_and_bary
        (** after the phase-1 write barrier, before any Bary write *)
    | After_code_append
        (** after {!Mcfi_runtime.Machine.append_code} grew the image *)
    | During_verification
        (** inside the loader's verification step, before publication *)
    | During_got_update
        (** inside the GOT-binding hook between the two update phases *)
    | Registry_lookup  (** during the [dlopen] registry consultation *)
    | Link_merge  (** inside the static linker's merge / PLT synthesis *)
    | Between_shard_commits
        (** in a cross-shard delta, after one shard's transaction
            committed and before the next shard's begins
            ({!Idtables.Shards.update_multi}) *)

  val all_points : point list
  val point_code : point -> int
  (** Stable ordinal, carried in {!Telemetry.Event.Fault_injected}. *)

  val point_name : point -> string
  val pp_point : Format.formatter -> point -> unit

  type t =
    | At of { point : point; hit : int }
        (** fire on the [hit]-th crossing (1-based) of [point]; one-shot *)
    | At_shard of { shard : int; point : point; hit : int }
        (** fire on the [hit]-th crossing of [point] {e reported by shard}
            [shard]; crossings from other shards (or from code outside any
            shard) do not count.  One-shot, like [At]. *)
    | Random of { seed : int64; one_in : int }
        (** fire any hook crossing with probability 1/[one_in], drawn from
            a PRNG seeded with [seed] — deterministic per seed *)

  val pp : Format.formatter -> t -> unit
end

(** Raised by a hook when the armed plan fires at that point. *)
exception Injected of Plan.point

(** Robustness counters, bumped by the runtime whether or not a plan is
    armed (all off the check fast path). *)
module Stats : sig
  type t = {
    injected : int;  (** faults fired by armed plans *)
    rollbacks : int;  (** {!Mcfi_runtime.Process.load} journal rollbacks *)
    recoveries : int;  (** torn update transactions redone from the journal *)
    retries : int;  (** check-transaction retries on version skew *)
    watchdog_fires : int;
        (** update watchdogs that expired: a check transaction's retry
            deadline passed with the tables still version-skewed *)
    halts : int;
        (** expired watchdogs escalated as [Halt_process] (check returns
            [Violation]) *)
    waits : int;
        (** expired watchdogs escalated as [Wait_for_updater] that took
            the update lock to redo a torn install *)
    failed_checks : int;
        (** checks abandoned as [Retries_exhausted] — the [Fail_check]
            escalation, or a wait whose recovery still left skew *)
  }

  val snapshot : unit -> t
  val reset : unit -> unit
  val pp : Format.formatter -> t -> unit

  (**/**)

  (* runtime-internal counter bumps *)
  val count_rollback : unit -> unit
  val count_recovery : unit -> unit
  val count_retry : unit -> unit
  val count_watchdog : unit -> unit
  val count_halt : unit -> unit
  val count_wait : unit -> unit
  val count_failed_check : unit -> unit
end

(** [arm plan] installs [plan]; it replaces any previously armed plan. *)
val arm : Plan.t -> unit

(** [disarm ()] removes the armed plan, if any. *)
val disarm : unit -> unit

(** The currently armed plan. [At] plans disappear once they fire. *)
val armed : unit -> Plan.t option

(** [with_plan plan f] arms [plan], runs [f], and disarms on the way out
    (including on exception). *)
val with_plan : Plan.t -> (unit -> 'a) -> 'a

(** [hit point] is the injection hook: no-op without an armed plan, raises
    {!Injected} when the armed plan fires here.  [shard] identifies the
    fault domain crossing the hook: shard-scoped ([At_shard]) plans only
    count crossings that report their shard, and the id travels in the
    [Fault_injected] event's [c] field. *)
val hit : ?shard:int -> Plan.point -> unit

(** {2 Tenant-scoped plans}

    Chaos plans for a {e fleet} of tenants: where the global plan names
    a protocol point, a tenant plan names a victim tenant (or draws one)
    and an action the fleet driver applies at that tenant's next
    crossing — killing its in-flight install, wedging its epoch reader,
    or slowing it down.  Deterministic exactly like the global
    machinery: [At] plans count only the named tenant's crossings and
    fire exactly once even under racing workers; [Random] plans derive
    one independent PRNG stream per tenant from the single campaign
    seed, so a whole chaos scenario replays from that seed alone.
    Tenant plans are a value (not process-global): each fleet run owns
    its armed set. *)
module Tenant : sig
  type action =
    | Kill_install
        (** arm a one-shot mid-install kill for the tenant's next update
            transaction (the driver translates this into a global
            [At { Nth_tary_write | Between_tary_and_bary; _ }] plan) *)
    | Wedge_reader
        (** the tenant stops crossing branch boundaries while staying
            registered — the corpse that gates quiescence until the
            supervisor tears it down *)
    | Slow_tenant  (** the tenant pauses between slices *)

  val action_name : action -> string
  val pp_action : Format.formatter -> action -> unit

  type plan =
    | At of { tenant : int; action : action; hit : int }
        (** fire on the [hit]-th crossing (1-based) of tenant [tenant];
            one-shot *)
    | Random of { seed : int64; one_in : int; action : action }
        (** each tenant crossing fires with probability 1/[one_in],
            drawn from that tenant's own seed-derived stream *)

  val pp_plan : Format.formatter -> plan -> unit

  (** An armed set of tenant plans (one fleet run's chaos schedule). *)
  type armed

  val arm : plan list -> armed

  (** [crossing armed ~tenant] is the hook the fleet driver calls once
      per tenant slice: the first plan that fires decides the action
      ([None] = run the slice normally).  Domain-safe. *)
  val crossing : armed -> tenant:int -> action option
end
