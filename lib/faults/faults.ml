module Plan = struct
  type point =
    | Nth_tary_write
    | Between_tary_and_bary
    | After_code_append
    | During_verification
    | During_got_update
    | Registry_lookup
    | Link_merge
    | Between_shard_commits

  let all_points =
    [
      Nth_tary_write;
      Between_tary_and_bary;
      After_code_append;
      During_verification;
      During_got_update;
      Registry_lookup;
      Link_merge;
      Between_shard_commits;
    ]

  let point_code = function
    | Nth_tary_write -> 0
    | Between_tary_and_bary -> 1
    | After_code_append -> 2
    | During_verification -> 3
    | During_got_update -> 4
    | Registry_lookup -> 5
    | Link_merge -> 6
    | Between_shard_commits -> 7

  let point_name = function
    | Nth_tary_write -> "nth-tary-write"
    | Between_tary_and_bary -> "between-tary-and-bary"
    | After_code_append -> "after-code-append"
    | During_verification -> "during-verification"
    | During_got_update -> "during-got-update"
    | Registry_lookup -> "registry-lookup"
    | Link_merge -> "link-merge"
    | Between_shard_commits -> "between-shard-commits"

  let pp_point ppf p = Fmt.string ppf (point_name p)

  type t =
    | At of { point : point; hit : int }
    | At_shard of { shard : int; point : point; hit : int }
    | Random of { seed : int64; one_in : int }

  let pp ppf = function
    | At { point; hit } -> Fmt.pf ppf "at(%a, hit=%d)" pp_point point hit
    | At_shard { shard; point; hit } ->
      Fmt.pf ppf "at(shard=%d, %a, hit=%d)" shard pp_point point hit
    | Random { seed; one_in } ->
      Fmt.pf ppf "random(seed=%Ld, 1/%d)" seed one_in
end

exception Injected of Plan.point

let () =
  Printexc.register_printer (function
    | Injected p -> Some (Printf.sprintf "Faults.Injected(%s)" (Plan.point_name p))
    | _ -> None)

module Stats = struct
  type t = {
    injected : int;
    rollbacks : int;
    recoveries : int;
    retries : int;
    watchdog_fires : int;
    halts : int;
    waits : int;
    failed_checks : int;
  }

  (* Atomics: the retry, watchdog and escalation counters are bumped from
     checker domains. *)
  let injected = Atomic.make 0
  let rollbacks = Atomic.make 0
  let recoveries = Atomic.make 0
  let retries = Atomic.make 0
  let watchdog_fires = Atomic.make 0
  let halts = Atomic.make 0
  let waits = Atomic.make 0
  let failed_checks = Atomic.make 0

  let snapshot () =
    {
      injected = Atomic.get injected;
      rollbacks = Atomic.get rollbacks;
      recoveries = Atomic.get recoveries;
      retries = Atomic.get retries;
      watchdog_fires = Atomic.get watchdog_fires;
      halts = Atomic.get halts;
      waits = Atomic.get waits;
      failed_checks = Atomic.get failed_checks;
    }

  let reset () =
    Atomic.set injected 0;
    Atomic.set rollbacks 0;
    Atomic.set recoveries 0;
    Atomic.set retries 0;
    Atomic.set watchdog_fires 0;
    Atomic.set halts 0;
    Atomic.set waits 0;
    Atomic.set failed_checks 0

  let pp ppf s =
    Fmt.pf ppf
      "injected=%d rollbacks=%d recoveries=%d retries=%d watchdog=%d \
       halts=%d waits=%d failed-checks=%d"
      s.injected s.rollbacks s.recoveries s.retries s.watchdog_fires s.halts
      s.waits s.failed_checks

  let count_rollback () = Atomic.incr rollbacks
  let count_recovery () = Atomic.incr recoveries
  let count_retry () = Atomic.incr retries
  let count_watchdog () = Atomic.incr watchdog_fires
  let count_halt () = Atomic.incr halts
  let count_wait () = Atomic.incr waits
  let count_failed_check () = Atomic.incr failed_checks
end

(* Hooks are crossed by every domain running a protocol, so the armed
   state and its counters are shared mutable state: the state cell is an
   [Atomic] (plans armed on one domain must be visible to the domain that
   crosses the trigger point), the [At] countdown is an atomic
   fetch-and-add so exactly one crossing fires even when several domains
   race through the same point, and the [Random] PRNG — a mutable stream
   — draws under a mutex (armed plans are off the fast path; an unarmed
   hook is still a single atomic load). *)
type mode =
  | At_countdown of Plan.point * int Atomic.t (* crossings left *)
  | At_shard_countdown of int * Plan.point * int Atomic.t
      (* shard-scoped: only crossings reporting this shard id count *)
  | Random_draw of { prng : Mcfi_util.Prng.t; one_in : int; lock : Mutex.t }

type armed_state = { plan : Plan.t; mode : mode }

let state : armed_state option Atomic.t = Atomic.make None

let arm plan =
  let mode =
    match plan with
    | Plan.At { point; hit } -> At_countdown (point, Atomic.make (max 1 hit))
    | Plan.At_shard { shard; point; hit } ->
      At_shard_countdown (shard, point, Atomic.make (max 1 hit))
    | Plan.Random { seed; one_in } ->
      Random_draw
        {
          prng = Mcfi_util.Prng.create seed;
          one_in = max 1 one_in;
          lock = Mutex.create ();
        }
  in
  Atomic.set state (Some { plan; mode })

let disarm () = Atomic.set state None

let armed () =
  match Atomic.get state with None -> None | Some { plan; _ } -> Some plan

let fire ?(shard = 0) point =
  Atomic.incr Stats.injected;
  Telemetry.emit Telemetry.Event.Fault_injected ~a:(Plan.point_code point)
    ~b:0 ~c:shard;
  raise (Injected point)

let hit ?shard point =
  match Atomic.get state with
  | None -> ()
  | Some { mode = At_countdown (p, left); _ } ->
    if p = point then begin
      (* the crossing that takes the counter from 1 to 0 fires, exactly
         once across all racing domains *)
      if Atomic.fetch_and_add left (-1) = 1 then begin
        (* one-shot: a recovery retry must not re-fail here *)
        disarm ();
        fire ?shard point
      end
    end
  | Some { mode = At_shard_countdown (s, p, left); _ } ->
    (* a crossing that does not report a shard is outside any shard's
       fault domain and never satisfies a shard-scoped plan *)
    if p = point && shard = Some s then begin
      if Atomic.fetch_and_add left (-1) = 1 then begin
        disarm ();
        fire ?shard point
      end
    end
  | Some { mode = Random_draw { prng; one_in; lock }; _ } ->
    let fires =
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () -> Mcfi_util.Prng.int prng one_in = 0)
    in
    if fires then fire ?shard point

let with_plan plan f =
  arm plan;
  Fun.protect ~finally:disarm f

(* ---- tenant-scoped plans ----

   The fleet supervisor's chaos machinery: where the global plan above
   names a protocol point, a tenant plan names a {e victim} (or draws
   one) and an {e action} the fleet driver applies at that tenant's next
   crossing.  The same determinism story as the global [At]/[Random]
   modes: [At] counts only the named tenant's crossings with an atomic
   countdown (exactly one crossing fires, even under racing workers),
   and [Random] derives one independent splitmix64 stream per tenant
   from the single campaign seed, so an entire chaos scenario replays
   from that seed alone. *)
module Tenant = struct
  type action = Kill_install | Wedge_reader | Slow_tenant

  let action_name = function
    | Kill_install -> "kill-install"
    | Wedge_reader -> "wedge-reader"
    | Slow_tenant -> "slow-tenant"

  let pp_action ppf a = Fmt.string ppf (action_name a)

  type plan =
    | At of { tenant : int; action : action; hit : int }
    | Random of { seed : int64; one_in : int; action : action }

  let pp_plan ppf = function
    | At { tenant; action; hit } ->
      Fmt.pf ppf "at(tenant=%d, %a, hit=%d)" tenant pp_action action hit
    | Random { seed; one_in; action } ->
      Fmt.pf ppf "random(seed=%Ld, 1/%d, %a)" seed one_in pp_action action

  type armed_plan =
    | Acountdown of { tenant : int; action : action; left : int Atomic.t }
    | Adraw of {
        seed : int64;
        one_in : int;
        action : action;
        (* per-tenant streams, minted lazily under the lock *)
        streams : (int, Mcfi_util.Prng.t) Hashtbl.t;
        lock : Mutex.t;
      }

  type armed = armed_plan list

  (* Fold the tenant id into the campaign seed (splitmix64's odd
     multiplicative constant): equal (seed, tenant) pairs always yield
     the same stream, distinct tenants get independent ones. *)
  let tenant_stream seed tenant =
    Mcfi_util.Prng.create
      (Int64.logxor seed
         (Int64.mul (Int64.of_int (tenant + 1)) 0x9E3779B97F4A7C15L))

  let arm plans =
    List.map
      (function
        | At { tenant; action; hit } ->
          Acountdown { tenant; action; left = Atomic.make (max 1 hit) }
        | Random { seed; one_in; action } ->
          Adraw
            {
              seed;
              one_in = max 1 one_in;
              action;
              streams = Hashtbl.create 16;
              lock = Mutex.create ();
            })
      plans

  let crossing armed ~tenant =
    List.find_map
      (function
        | Acountdown { tenant = t; action; left } ->
          if t = tenant && Atomic.get left > 0
             && Atomic.fetch_and_add left (-1) = 1
          then Some action
          else None
        | Adraw { seed; one_in; action; streams; lock } ->
          let fires =
            Mutex.lock lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock lock)
              (fun () ->
                let prng =
                  match Hashtbl.find_opt streams tenant with
                  | Some p -> p
                  | None ->
                    let p = tenant_stream seed tenant in
                    Hashtbl.add streams tenant p;
                    p
                in
                Mcfi_util.Prng.int prng one_in = 0)
          in
          if fires then Some action else None)
      armed
end
