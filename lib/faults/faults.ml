module Plan = struct
  type point =
    | Nth_tary_write
    | Between_tary_and_bary
    | After_code_append
    | During_verification
    | During_got_update
    | Registry_lookup
    | Link_merge

  let all_points =
    [
      Nth_tary_write;
      Between_tary_and_bary;
      After_code_append;
      During_verification;
      During_got_update;
      Registry_lookup;
      Link_merge;
    ]

  let point_name = function
    | Nth_tary_write -> "nth-tary-write"
    | Between_tary_and_bary -> "between-tary-and-bary"
    | After_code_append -> "after-code-append"
    | During_verification -> "during-verification"
    | During_got_update -> "during-got-update"
    | Registry_lookup -> "registry-lookup"
    | Link_merge -> "link-merge"

  let pp_point ppf p = Fmt.string ppf (point_name p)

  type t =
    | At of { point : point; hit : int }
    | Random of { seed : int64; one_in : int }

  let pp ppf = function
    | At { point; hit } -> Fmt.pf ppf "at(%a, hit=%d)" pp_point point hit
    | Random { seed; one_in } ->
      Fmt.pf ppf "random(seed=%Ld, 1/%d)" seed one_in
end

exception Injected of Plan.point

let () =
  Printexc.register_printer (function
    | Injected p -> Some (Printf.sprintf "Faults.Injected(%s)" (Plan.point_name p))
    | _ -> None)

module Stats = struct
  type t = { injected : int; rollbacks : int; recoveries : int; retries : int }

  (* Atomics: the retry counter is bumped from checker domains. *)
  let injected = Atomic.make 0
  let rollbacks = Atomic.make 0
  let recoveries = Atomic.make 0
  let retries = Atomic.make 0

  let snapshot () =
    {
      injected = Atomic.get injected;
      rollbacks = Atomic.get rollbacks;
      recoveries = Atomic.get recoveries;
      retries = Atomic.get retries;
    }

  let reset () =
    Atomic.set injected 0;
    Atomic.set rollbacks 0;
    Atomic.set recoveries 0;
    Atomic.set retries 0

  let pp ppf s =
    Fmt.pf ppf "injected=%d rollbacks=%d recoveries=%d retries=%d" s.injected
      s.rollbacks s.recoveries s.retries

  let count_rollback () = Atomic.incr rollbacks
  let count_recovery () = Atomic.incr recoveries
  let count_retry () = Atomic.incr retries
end

type mode =
  | At_countdown of Plan.point * int ref (* crossings left before firing *)
  | Random_draw of Mcfi_util.Prng.t * int

type armed_state = { plan : Plan.t; mode : mode }

let state : armed_state option ref = ref None

let arm plan =
  let mode =
    match plan with
    | Plan.At { point; hit } -> At_countdown (point, ref (max 1 hit))
    | Plan.Random { seed; one_in } ->
      Random_draw (Mcfi_util.Prng.create seed, max 1 one_in)
  in
  state := Some { plan; mode }

let disarm () = state := None

let armed () =
  match !state with None -> None | Some { plan; _ } -> Some plan

let fire point =
  Atomic.incr Stats.injected;
  raise (Injected point)

let hit point =
  match !state with
  | None -> ()
  | Some { mode = At_countdown (p, left); _ } ->
    if p = point then begin
      decr left;
      if !left <= 0 then begin
        (* one-shot: a recovery retry must not re-fail here *)
        disarm ();
        fire point
      end
    end
  | Some { mode = Random_draw (prng, one_in); _ } ->
    if Mcfi_util.Prng.int prng one_in = 0 then fire point

let with_plan plan f =
  arm plan;
  Fun.protect ~finally:disarm f
