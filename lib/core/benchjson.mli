(** Machine-readable benchmark reports ({!output_file}).

    A dependency-free JSON value type with an emitter and a small parser
    (the tier-1 smoke test re-parses what the bench emits), plus the
    incremental-linking measurement itself: an N-module dlopen chain run
    twice — once against the historical regenerate-everything linker,
    once against the incremental one — with the differential oracle
    checked after every incremental install (outside the timed window).

    The measurement lives here rather than in [bench/] so the tier-1
    suite can run a scaled-down chain and validate the report shape
    without executing the benchmark binary. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Serialize; numbers print in a [float_of_string]-compatible form.
    Non-finite numbers serialize as [null] (and fail {!validate}). *)
val to_string : t -> string

(** Parse the subset {!to_string} emits (standard JSON; [\u] escapes
    outside ASCII decode to ['?']). *)
val parse : string -> (t, string) result

(** [member k j] is field [k] of object [j]. *)
val member : string -> t -> t option

(** [path ks j] follows a chain of object fields. *)
val path : string list -> t -> t option

(** The numeric value, if [j] is a finite number. *)
val num : t -> float option

(** {2 The dlopen-chain scaling measurement} *)

type link_sample = {
  ls_module : int;  (** position in the chain, 1-based *)
  ls_full_ms : float;  (** [Process.load] under full regeneration *)
  ls_incr_ms : float;  (** the same load under incremental linking *)
}

(** [dlopen_chain ()] builds [modules] synthetic MiniC modules whose
    function-pointer types overlap (so equivalence classes span the whole
    chain and every load grows existing classes), loads them in order
    into a full-regeneration process and an incremental one, and returns
    the per-load wall times — the minimum over [rounds] fresh chains.
    After every incremental load the differential oracle
    ({!Mcfi_runtime.Process.oracle_check}) runs outside the timed
    window; a divergence raises [Failure]. *)
val dlopen_chain :
  ?modules:int -> ?fns:int -> ?rounds:int -> unit -> link_sample list

(** {2 Schema identity} *)

(** The schema name stamped into every report ("mcfi-bench"). *)
val schema : string

(** The report schema version; {!validate} requires an exact match. *)
val schema_version : int

(** The file name the emitting bench writes, derived from
    {!schema_version} ("BENCH_<version>.json"). *)
val output_file : string

(** Assemble the report document.  [torture] is the
    check-throughput-during-install section, [telemetry] the
    instrumentation-overhead section, [fuzz] the fuzzing-throughput
    section, [fleet] the tenant-supervision section, [shards] the
    sharded-installs scaling section and [dispatch] the byte-vs-threaded
    execution-engine section (all built by the caller from
    [Stress]/[Fuzz]/[Supervisor] data — those libraries sit above this
    one).  [samples] must be non-empty. *)
val report :
  samples:link_sample list ->
  torture:t ->
  telemetry:t ->
  fuzz:t ->
  fleet:t ->
  shards:t ->
  dispatch:t ->
  obs:t ->
  redteam:t ->
  t

(** Check the report shape the smoke test relies on: the schema
    name/version match this build, the chain is non-empty with finite
    timings, the last-link summary and speedup are finite, the torture
    section carries finite [checks_per_s], [installs_per_s] and
    [checks_during_install_per_s], the telemetry section carries
    finite [disabled_checks_per_s], [enabled_checks_per_s],
    [throughput_ratio] and [overhead_pct], the fuzz section carries
    finite [iterations] and [iters_per_s], the fleet section
    carries finite [survival_rate], [recovery_ms_p50],
    [recovery_ms_p99], [installs_served] and [installs_shed], the
    shards section carries a finite [wedged_confinement] plus a
    non-empty [rows] array of finite
    [shards]/[installs_per_s]/[wedged_installs] rows, and the dispatch
    section carries finite [tight_check_byte_ns],
    [tight_check_threaded_ns] and [tight_check_speedup] plus a
    non-empty [rows] array of finite
    [shards]/[byte_checks_per_s]/[threaded_checks_per_s] rows, and the
    obs section carries finite [flightrec_off_checks_per_s],
    [flightrec_on_checks_per_s], [flightrec_ratio], [snapshot_p99_ns]
    and [alert_lag_ticks], and the redteam section carries finite
    [sites], [corruptible_sites], [forward_edges], [backward_edges],
    [sabotage_chains], [sabotage_confirmed] and [clean_chains] plus a
    non-empty [class_histogram] array of finite [class_size]/[classes]
    rows. *)
val validate : t -> (unit, string) result
