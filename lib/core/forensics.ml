(* Consumer side of the flight recorder's forensic bundles: parse the
   self-contained JSON back, check the shape the emitter guarantees, and
   replay it for a human.  Lives in the core library (next to the
   Benchjson parser it reuses) so both the CLI subcommand and the tier-1
   suite can drive it without the bench binary. *)

module J = Benchjson

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> J.parse s
  | exception Sys_error e -> Error e

(* ---- validation ---- *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> err "missing field %S" name

let number name j =
  let* v = field name j in
  match J.num v with
  | Some f when Float.is_finite f -> Ok f
  | _ -> err "field %S is not a finite number" name

let string_field name j =
  let* v = field name j in
  match v with J.Str s -> Ok s | _ -> err "field %S is not a string" name

let obj_field name j =
  let* v = field name j in
  match v with J.Obj _ -> Ok v | _ -> err "field %S is not an object" name

let validate_event i j =
  match j with
  | J.Obj _ ->
    let* _ = number "domain" j in
    let* _ = number "seq" j in
    let* _ = string_field "kind" j in
    let* _ = number "a" j in
    let* _ = number "b" j in
    let* _ = number "c" j in
    Ok ()
  | _ -> err "events[%d] is not an object" i

(* The drain orders events (domain, seq) and discards torn slots, so
   within one domain the sequence numbers of a well-formed bundle are
   strictly increasing — a duplicate or regression means the snapshot
   was corrupted (or hand-edited). *)
let validate_event_order events =
  let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let rec go i = function
    | [] -> Ok ()
    | e :: rest ->
      let* d = number "domain" e in
      let* s = number "seq" e in
      let d = int_of_float d and s = int_of_float s in
      (match Hashtbl.find_opt last d with
      | Some prev when s <= prev ->
        err "events[%d]: domain %d sequence went %d -> %d (not increasing)" i
          d prev s
      | _ ->
        Hashtbl.replace last d s;
        go (i + 1) rest)
  in
  go 0 events

let validate j =
  let* schema = string_field "schema" j in
  if schema <> Obs.Flightrec.schema then
    err "schema %S, expected %S" schema Obs.Flightrec.schema
  else
    let* v = number "schema_version" j in
    if int_of_float v <> Obs.Flightrec.schema_version then
      err "schema_version %g, this build reads %d" v
        Obs.Flightrec.schema_version
    else
      let* trigger = string_field "trigger" j in
      match Obs.Flightrec.trigger_of_name trigger with
      | None -> err "unknown trigger %S" trigger
      | Some _ ->
        let* _ = number "id" j in
        let* _ = string_field "reason" j in
        let* _ = number "at_ns" j in
        let* _ = obj_field "extra" j in
        let* events = field "events" j in
        let* events =
          match events with
          | J.Arr l -> Ok l
          | _ -> err "field \"events\" is not an array"
        in
        let* () =
          List.fold_left
            (fun acc (i, e) ->
              let* () = acc in
              validate_event i e)
            (Ok ())
            (List.mapi (fun i e -> (i, e)) events)
        in
        let* () = validate_event_order events in
        let* tallies = obj_field "tallies" j in
        let* () =
          List.fold_left
            (fun acc k ->
              let* () = acc in
              let* _ = number k tallies in
              Ok ())
            (Ok ())
            [ "checks"; "passes"; "violations"; "exhausted"; "retries" ]
        in
        let* counters = obj_field "counters" j in
        List.fold_left
          (fun acc k ->
            let* () = acc in
            let* _ = number k counters in
            Ok ())
          (Ok ())
          ([ "bundles"; "dropped"; "notes" ]
          @ List.map
              (fun tr -> "trigger_" ^ Obs.Flightrec.trigger_name tr)
              Obs.Flightrec.all_triggers)

(* ---- replay ---- *)

let geti name j =
  match J.member name j with
  | Some v -> ( match J.num v with Some f -> int_of_float f | None -> 0)
  | None -> 0

let gets name j =
  match J.member name j with Some (J.Str s) -> s | _ -> ""

let rec pp_json ppf = function
  | J.Null -> Fmt.string ppf "null"
  | J.Bool b -> Fmt.bool ppf b
  | J.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Fmt.pf ppf "%d" (int_of_float f)
    else Fmt.float ppf f
  | J.Str s -> Fmt.pf ppf "%s" s
  | J.Arr l -> Fmt.pf ppf "[@[<hov>%a@]]" (Fmt.list ~sep:Fmt.comma pp_json) l
  | J.Obj kvs ->
    Fmt.pf ppf "@[<v>%a@]"
      (Fmt.list ~sep:Fmt.cut (fun ppf (k, v) ->
           match v with
           | J.Obj _ -> Fmt.pf ppf "%s:@;<1 2>@[<v>%a@]" k pp_json v
           | _ -> Fmt.pf ppf "%s: %a" k pp_json v))
      kvs

let pp_event ppf e =
  let ctx =
    (match J.member "shard" e with
    | Some v -> Fmt.str " shard=%g" (Option.value ~default:0. (J.num v))
    | None -> "")
    ^ (match J.member "dispatch" e with
      | Some (J.Str s) -> " dispatch=" ^ s
      | _ -> "")
    ^
    match J.member "alert" e with
    | Some v -> Fmt.str " alert=#%g" (Option.value ~default:0. (J.num v))
    | None -> ""
  in
  Fmt.pf ppf "[d%d #%d] %-16s a=%-6d b=%-8d c=%-6d%s" (geti "domain" e)
    (geti "seq" e) (gets "kind" e) (geti "a" e) (geti "b" e) (geti "c" e) ctx

let pp ppf j =
  let events = match J.member "events" j with Some (J.Arr l) -> l | _ -> [] in
  let tallies =
    Option.value ~default:(J.Obj []) (J.member "tallies" j)
  in
  let counters =
    Option.value ~default:(J.Obj []) (J.member "counters" j)
  in
  Fmt.pf ppf
    "@[<v>forensic bundle #%d: %s@,\
     reason: %s@,\
     at: %d ns@,\
     tallies: %d checks (%d pass / %d violation / %d exhausted), %d \
     retries@,\
     recorder: %d bundle(s), %d dropped, %d note(s)@,"
    (geti "id" j) (gets "trigger" j) (gets "reason" j) (geti "at_ns" j)
    (geti "checks" tallies) (geti "passes" tallies)
    (geti "violations" tallies)
    (geti "exhausted" tallies)
    (geti "retries" tallies) (geti "bundles" counters)
    (geti "dropped" counters) (geti "notes" counters);
  (match J.member "extra" j with
  | Some (J.Obj (_ :: _ as kvs)) ->
    Fmt.pf ppf "context:@;<0 2>@[<v>%a@]@," pp_json (J.Obj kvs)
  | _ -> ());
  Fmt.pf ppf "events (%d, oldest first):@,  @[<v>%a@]@]"
    (List.length events)
    (Fmt.list ~sep:Fmt.cut pp_event)
    events
