(** Validation and replay of flight-recorder forensic bundles.

    A bundle ({!Obs.Flightrec.bundle_json}) is a self-contained JSON
    document: the trigger, the per-domain black-box event tails, the
    always-on check tallies and the caller's structured context.  This
    module is the consumer side — the [mcfi forensics] subcommand and
    the CI smoke job parse a bundle file back with {!Benchjson.parse},
    check its shape with {!validate}, and render it with {!pp}. *)

val of_file : string -> (Benchjson.t, string) result
(** Read and parse one bundle file. *)

val validate : Benchjson.t -> (unit, string) result
(** Check the bundle shape end to end: schema name and version match
    this build, the trigger is a known kind, the event list is
    well-formed with per-domain sequence numbers strictly increasing
    (the drain's ordering guarantee — a torn or duplicated slot would
    break it), the tallies and recorder counters are present and
    finite, and the [extra] context is an object. *)

val pp : Format.formatter -> Benchjson.t -> unit
(** Replay a validated bundle for a human: trigger and reason, the
    tally line, the structured context, and the event tail decoded with
    the same kind/context names the live trace uses. *)
