module Objfile = Mcfi_compiler.Objfile
module Rewriter = Instrument.Rewriter
module Linker = Mcfi_runtime.Linker
module Process = Mcfi_runtime.Process

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let compile_module ?(line_offset = 0) ?tco ~name source =
  (* [line_offset] rebases error locations when a header was prepended,
     so messages point into the user's own source *)
  let render (loc : Minic.Ast.loc) =
    Fmt.str "%a" Minic.Ast.pp_loc { loc with line = loc.line - line_offset }
  in
  match Mcfi_compiler.Codegen.compile_source ?tco ~name source with
  | obj -> obj
  | exception Minic.Lexer.Error (msg, loc) ->
    fail "%s:%s: lexical error: %s" name (render loc) msg
  | exception Minic.Parser.Error (msg, loc) ->
    fail "%s:%s: parse error: %s" name (render loc) msg
  | exception Minic.Typecheck.Error (msg, loc) ->
    fail "%s:%s: type error: %s" name (render loc) msg
  | exception Mcfi_compiler.Codegen.Unsupported (msg, loc) ->
    fail "%s:%s: unsupported: %s" name (render loc) msg

let instrument ?sandbox ?drop_check obj =
  try Rewriter.instrument ?sandbox ?drop_check obj
  with Rewriter.Error msg -> fail "instrumentation: %s" msg

(* With libc in the build, user modules see its prototypes (the header
   plays the role of an #include). *)
let with_header ~with_libc src =
  if with_libc then Suite.Libc.header ^ src else src

let header_lines =
  List.length (String.split_on_char '\n' Suite.Libc.header) - 1

let module_set ?tco ?sandbox ?drop_check ?(with_libc = true) ~instrumented
    sources =
  let line_offset = if with_libc then header_lines else 0 in
  let objs =
    (if with_libc then
       [ compile_module ?tco ~name:"libc" Suite.Libc.source ]
     else [])
    @ List.map
        (fun (name, src) ->
          compile_module ~line_offset ?tco ~name (with_header ~with_libc src))
        sources
  in
  let objs = Linker.start_module () :: objs in
  if instrumented then List.map (instrument ?sandbox ?drop_check) objs
  else objs

let link_executable ?(instrumented = true) ?tco ?sandbox ?drop_check
    ?with_libc ~sources ?(dynamic = []) () =
  let objs =
    module_set ?tco ?sandbox ?drop_check ?with_libc ~instrumented sources
  in
  let linked =
    try Linker.link ~name:"a.out" objs
    with Linker.Error msg -> fail "link: %s" msg
  in
  (* Symbols that remain undefined are deferred to dynamic modules. *)
  let undefined = Objfile.undefined_symbols linked in
  let dynamic_provides =
    List.concat_map
      (fun (name, src) ->
        let with_libc = Option.value with_libc ~default:true in
        let line_offset = if with_libc then header_lines else 0 in
        let obj =
          compile_module ~line_offset ?tco ~name (with_header ~with_libc src)
        in
        List.filter_map
          (fun (fi : Objfile.fn_info) ->
            if fi.fi_defined then Some fi.fi_name else None)
          obj.o_functions)
      dynamic
  in
  let deferred =
    List.filter (fun s -> List.mem s dynamic_provides) undefined
  in
  (match List.filter (fun s -> not (List.mem s dynamic_provides)) undefined with
  | [] -> ()
  | missing -> fail "undefined symbols: %s" (String.concat ", " missing));
  if deferred = [] then linked
  else if not instrumented then
    fail "dynamic linking requires an instrumented build"
  else
    try Linker.add_plt linked deferred
    with Linker.Error msg -> fail "plt: %s" msg

let build_process ?(instrumented = true) ?tco ?sandbox ?drop_check ?verify
    ?with_libc ?seed ?dispatch ~sources ?(dynamic = []) () =
  let exe =
    link_executable ~instrumented ?tco ?sandbox ?drop_check ?with_libc
      ~sources ~dynamic ()
  in
  let compiled_dynamic =
    List.map
      (fun (name, src) ->
        let with_libc = Option.value with_libc ~default:true in
        let line_offset = if with_libc then header_lines else 0 in
        let obj =
          compile_module ~line_offset ?tco ~name (with_header ~with_libc src)
        in
        ( name,
          if instrumented then instrument ?sandbox ?drop_check obj else obj ))
      dynamic
  in
  let registry name = List.assoc_opt name compiled_dynamic in
  let proc =
    Process.create ~instrumented ?sandbox ?verify ~registry ?seed ?dispatch ()
  in
  (try Process.load proc exe
   with Process.Error msg -> fail "load: %s" msg);
  proc

let run_source ?instrumented ?tco ?fuel ?dynamic src =
  let proc =
    build_process ?instrumented ?tco ~sources:[ ("main", src) ] ?dynamic ()
  in
  let reason = Process.run ?fuel proc in
  (reason, Mcfi_runtime.Machine.output (Process.machine proc))
