module Process = Mcfi_runtime.Process

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- emitter ---- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v ->
    if Float.is_finite v then
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" v)
      else Buffer.add_string b (Printf.sprintf "%.6g" v)
    else Buffer.add_string b "null" (* JSON has no inf/nan *)
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ", ";
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\": ";
        emit b v)
      kvs;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 1024 in
  emit b j;
  Buffer.contents b

(* ---- parser (recursive descent over the string) ---- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else error "expected '%c'" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error "bad literal"
  in
  let number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numchar s.[!pos] do incr pos done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> error "bad number"
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; incr pos
             | '\\' -> Buffer.add_char b '\\'; incr pos
             | '/' -> Buffer.add_char b '/'; incr pos
             | 'b' -> Buffer.add_char b '\b'; incr pos
             | 'f' -> Buffer.add_char b '\012'; incr pos
             | 'n' -> Buffer.add_char b '\n'; incr pos
             | 'r' -> Buffer.add_char b '\r'; incr pos
             | 't' -> Buffer.add_char b '\t'; incr pos
             | 'u' ->
               if !pos + 4 >= n then error "truncated \\u";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some cp when cp < 0x80 -> Buffer.add_char b (Char.chr cp)
               | Some _ -> Buffer.add_char b '?'
               | None -> error "bad \\u escape");
               pos := !pos + 5
             | c -> error "bad escape '\\%c'" c);
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin incr pos; Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; fields ((k, v) :: acc)
          | Some '}' -> incr pos; Obj (List.rev ((k, v) :: acc))
          | _ -> error "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin incr pos; Arr [] end
      else begin
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; elems (v :: acc)
          | Some ']' -> incr pos; Arr (List.rev (v :: acc))
          | _ -> error "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ---- accessors ---- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let path ks j =
  List.fold_left (fun j k -> Option.bind j (member k)) (Some j) ks

let num = function Num v when Float.is_finite v -> Some v | _ -> None

(* ---- the dlopen-chain measurement ---- *)

type link_sample = {
  ls_module : int;
  ls_full_ms : float;
  ls_incr_ms : float;
}

(* One synthetic module: [fns] int(int) functions and [fns/2]
   int(int,int) functions, all address-taken through local
   function-pointer arrays and called indirectly.  The two
   function-pointer types are the same in every module, so each load
   grows equivalence classes the earlier modules created — the carry
   (grow-entry) path of the delta install — while the module's own
   return sites add fresh slots. *)
let module_source ~fns k =
  let b = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  for i = 0 to fns - 1 do
    p "int m%d_u%d(int x) { return x + %d; }\n" k i ((i + k + 1) * 3)
  done;
  for i = 0 to (fns / 2) - 1 do
    p "int m%d_v%d(int x, int y) { return x * %d + y; }\n" k i (i + 2)
  done;
  p "int m%d_go(int n) {\n" k;
  p "  int (*fu[%d])(int);\n" fns;
  p "  int (*fv[%d])(int, int);\n" (fns / 2);
  p "  int s;\n  int i;\n";
  for i = 0 to fns - 1 do p "  fu[%d] = m%d_u%d;\n" i k i done;
  for i = 0 to (fns / 2) - 1 do p "  fv[%d] = m%d_v%d;\n" i k i done;
  p "  s = 0;\n";
  p "  for (i = 0; i < n; i = i + 1) {\n";
  p "    s = s + fu[i %% %d](i);\n" fns;
  p "    s = s + fv[i %% %d](s, i);\n" (fns / 2);
  p "  }\n  return s;\n}\n";
  Buffer.contents b

let dlopen_chain ?(modules = 16) ?(fns = 8) ?(rounds = 3) () =
  if modules < 1 then invalid_arg "Benchjson.dlopen_chain: modules < 1";
  let exe =
    Pipeline.link_executable ~sources:[ ("main", "int main() { return 0; }") ] ()
  in
  let objs =
    List.init modules (fun k ->
        Pipeline.instrument
          (Pipeline.compile_module
             ~name:(Printf.sprintf "m%d" k)
             (module_source ~fns k)))
  in
  (* verification cost is identical on both paths and dominates small
     loads; it is not what this curve measures *)
  let fresh ~incremental =
    let proc = Process.create ~incremental ~verify:false () in
    Process.load proc exe;
    proc
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  let run_round () =
    let full = fresh ~incremental:false in
    let inc = fresh ~incremental:true in
    List.map
      (fun obj ->
        let f = time (fun () -> Process.load full obj) in
        let g = time (fun () -> Process.load inc obj) in
        (* the oracle runs after every incremental install, outside the
           timed window *)
        (match Process.oracle_check inc with
        | Ok () -> ()
        | Error m -> failwith ("Benchjson.dlopen_chain: oracle: " ^ m));
        (f, g))
      objs
  in
  let best =
    List.init rounds (fun _ -> run_round ())
    |> List.fold_left
         (fun acc round ->
           List.map2 (fun (f, g) (f', g') -> (Float.min f f', Float.min g g')) acc round)
         (List.init modules (fun _ -> (infinity, infinity)))
  in
  List.mapi
    (fun i (f, g) -> { ls_module = i + 1; ls_full_ms = f; ls_incr_ms = g })
    best

(* ---- report assembly and validation ---- *)

(* The schema identity.  The emitting bench derives its output file name
   from these, so bumping [schema_version] is the single change that
   moves the artifact to BENCH_<n+1>.json — no hard-coded file names. *)
let schema = "mcfi-bench"
let schema_version = 10
let output_file = Printf.sprintf "BENCH_%d.json" schema_version

let report ~samples ~torture ~telemetry ~fuzz ~fleet ~shards ~dispatch ~obs
    ~redteam =
  match List.rev samples with
  | [] -> invalid_arg "Benchjson.report: empty chain"
  | last :: _ ->
    Obj
      [
        ("schema", Str schema);
        ("schema_version", Num (float_of_int schema_version));
        ("bench", Str "incremental-linking");
        ("modules", Num (float_of_int (List.length samples)));
        ( "cfggen",
          Obj
            [
              ( "chain",
                Arr
                  (List.map
                     (fun s ->
                       Obj
                         [
                           ("module", Num (float_of_int s.ls_module));
                           ("full_ms", Num s.ls_full_ms);
                           ("incr_ms", Num s.ls_incr_ms);
                         ])
                     samples) );
              ("last_full_ms", Num last.ls_full_ms);
              ("last_incr_ms", Num last.ls_incr_ms);
              ("last_speedup", Num (last.ls_full_ms /. last.ls_incr_ms));
            ] );
        ("torture", torture);
        ("telemetry", telemetry);
        ("fuzz", fuzz);
        ("fleet", fleet);
        ("shards", shards);
        ("dispatch", dispatch);
        ("obs", obs);
        ("redteam", redteam);
      ]

let validate j =
  let check_num where p =
    match Option.bind (path p j) num with
    | Some _ -> Ok ()
    | None ->
      Error (Printf.sprintf "%s: missing or non-finite %s" where (String.concat "." p))
  in
  let ( let* ) = Result.bind in
  let* () =
    match member "schema" j with
    | Some (Str s) when s = schema -> Ok ()
    | Some (Str s) -> Error (Printf.sprintf "schema: %S, expected %S" s schema)
    | _ -> Error "schema: missing or not a string"
  in
  let* () =
    match Option.bind (member "schema_version" j) num with
    | Some v when v = float_of_int schema_version -> Ok ()
    | Some v ->
      Error
        (Printf.sprintf "schema_version: %g, expected %d" v schema_version)
    | None -> Error "schema_version: missing or not a number"
  in
  let* () = check_num "cfggen" [ "modules" ] in
  let* () = check_num "cfggen" [ "cfggen"; "last_full_ms" ] in
  let* () = check_num "cfggen" [ "cfggen"; "last_incr_ms" ] in
  let* () = check_num "cfggen" [ "cfggen"; "last_speedup" ] in
  let* () =
    match path [ "cfggen"; "chain" ] j with
    | Some (Arr (_ :: _ as rows)) ->
      List.fold_left
        (fun acc row ->
          let* () = acc in
          match
            ( Option.bind (member "module" row) num,
              Option.bind (member "full_ms" row) num,
              Option.bind (member "incr_ms" row) num )
          with
          | Some _, Some _, Some _ -> Ok ()
          | _ -> Error "cfggen.chain: row with missing or non-finite field")
        (Ok ()) rows
    | Some (Arr []) -> Error "cfggen.chain: empty"
    | _ -> Error "cfggen.chain: missing or not an array"
  in
  let* () = check_num "torture" [ "torture"; "checks_per_s" ] in
  let* () = check_num "torture" [ "torture"; "installs_per_s" ] in
  let* () = check_num "torture" [ "torture"; "checks_during_install_per_s" ] in
  let* () = check_num "telemetry" [ "telemetry"; "disabled_checks_per_s" ] in
  let* () = check_num "telemetry" [ "telemetry"; "enabled_checks_per_s" ] in
  let* () = check_num "telemetry" [ "telemetry"; "throughput_ratio" ] in
  let* () = check_num "telemetry" [ "telemetry"; "overhead_pct" ] in
  let* () = check_num "fuzz" [ "fuzz"; "iterations" ] in
  let* () = check_num "fuzz" [ "fuzz"; "iters_per_s" ] in
  let* () = check_num "fleet" [ "fleet"; "survival_rate" ] in
  let* () = check_num "fleet" [ "fleet"; "recovery_ms_p50" ] in
  let* () = check_num "fleet" [ "fleet"; "recovery_ms_p99" ] in
  let* () = check_num "fleet" [ "fleet"; "installs_served" ] in
  let* () = check_num "fleet" [ "fleet"; "installs_shed" ] in
  let* () = check_num "shards" [ "shards"; "wedged_confinement" ] in
  let* () =
    match path [ "shards"; "rows" ] j with
    | Some (Arr (_ :: _ as rows)) ->
      List.fold_left
        (fun acc row ->
          let* () = acc in
          match
            ( Option.bind (member "shards" row) num,
              Option.bind (member "installs_per_s" row) num,
              Option.bind (member "wedged_installs" row) num )
          with
          | Some _, Some _, Some _ -> Ok ()
          | _ -> Error "shards.rows: row with missing or non-finite field")
        (Ok ()) rows
    | Some (Arr []) -> Error "shards.rows: empty"
    | _ -> Error "shards.rows: missing or not an array"
  in
  let* () = check_num "dispatch" [ "dispatch"; "tight_check_byte_ns" ] in
  let* () = check_num "dispatch" [ "dispatch"; "tight_check_threaded_ns" ] in
  let* () = check_num "dispatch" [ "dispatch"; "tight_check_speedup" ] in
  let* () =
    match path [ "dispatch"; "rows" ] j with
    | Some (Arr (_ :: _ as rows)) ->
      List.fold_left
        (fun acc row ->
          let* () = acc in
          match
            ( Option.bind (member "shards" row) num,
              Option.bind (member "byte_checks_per_s" row) num,
              Option.bind (member "threaded_checks_per_s" row) num )
          with
          | Some _, Some _, Some _ -> Ok ()
          | _ -> Error "dispatch.rows: row with missing or non-finite field")
        (Ok ()) rows
    | Some (Arr []) -> Error "dispatch.rows: empty"
    | _ -> Error "dispatch.rows: missing or not an array"
  in
  let* () = check_num "obs" [ "obs"; "flightrec_off_checks_per_s" ] in
  let* () = check_num "obs" [ "obs"; "flightrec_on_checks_per_s" ] in
  let* () = check_num "obs" [ "obs"; "flightrec_ratio" ] in
  let* () = check_num "obs" [ "obs"; "snapshot_p99_ns" ] in
  let* () = check_num "obs" [ "obs"; "alert_lag_ticks" ] in
  (* redteam: the attack-surface metrics of the sabotaged exemplar (which
     must yield a chain) and the clean exemplar (which must not) *)
  let* () = check_num "redteam" [ "redteam"; "sites" ] in
  let* () = check_num "redteam" [ "redteam"; "corruptible_sites" ] in
  let* () = check_num "redteam" [ "redteam"; "forward_edges" ] in
  let* () = check_num "redteam" [ "redteam"; "backward_edges" ] in
  let* () = check_num "redteam" [ "redteam"; "sabotage_chains" ] in
  let* () = check_num "redteam" [ "redteam"; "sabotage_confirmed" ] in
  let* () = check_num "redteam" [ "redteam"; "clean_chains" ] in
  let* () =
    match path [ "redteam"; "class_histogram" ] j with
    | Some (Arr (_ :: _ as rows)) ->
      List.fold_left
        (fun acc row ->
          let* () = acc in
          match
            ( Option.bind (member "class_size" row) num,
              Option.bind (member "classes" row) num )
          with
          | Some _, Some _ -> Ok ()
          | _ ->
            Error "redteam.class_histogram: row with missing or non-finite field")
        (Ok ()) rows
    | Some (Arr []) -> Error "redteam.class_histogram: empty"
    | _ -> Error "redteam.class_histogram: missing or not an array"
  in
  Ok ()
