(** The MCFI toolchain pipeline — the library's front door.

    Mirrors the paper's toolchain (§7): compile each module separately
    (rewriter = compiler + instrumentation), statically link the modules
    that are available (emitting instrumented PLT entries for symbols
    deferred to dynamic linking), and build a process whose runtime loads,
    verifies and executes the result; [dlopen] from inside the program
    reaches the registry of dynamically loadable modules.

    Every module is compiled and instrumented {e without seeing the
    others} — separate compilation is the point of the paper — and only
    the link and load steps combine their auxiliary information. *)

exception Error of string

(** [compile_module ?tco ~name source] parses, type-checks and compiles
    one MiniC translation unit (no instrumentation).
    Raises {!Error} with a rendered message on any front-end failure;
    [line_offset] lines are subtracted from reported locations (used when
    a header was prepended to the user's source). *)
val compile_module :
  ?line_offset:int -> ?tco:bool -> name:string -> string -> Mcfi_compiler.Objfile.t

(** [instrument] re-export: {!Instrument.Rewriter.instrument}.
    [drop_check] is the rewriter's sabotage hook (fuzzing self-test
    only): the indirect branch at that module-local site index is left
    uninstrumented, which the verifier must catch. *)
val instrument :
  ?sandbox:Vmisa.Abi.sandbox ->
  ?drop_check:int ->
  Mcfi_compiler.Objfile.t ->
  Mcfi_compiler.Objfile.t

(** [link_executable ?instrumented ?tco ~sources ~dynamic ()] compiles all
    [sources] (name, MiniC source) plus the mini libc and the [_start]
    stub, instruments each separately when [instrumented] (default true),
    statically links them, and emits PLT entries for every symbol that
    only a [dynamic] module will provide. Returns the linked module. *)
val link_executable :
  ?instrumented:bool ->
  ?tco:bool ->
  ?sandbox:Vmisa.Abi.sandbox ->
  ?drop_check:int ->
  ?with_libc:bool ->
  sources:(string * string) list ->
  ?dynamic:(string * string) list ->
  unit ->
  Mcfi_compiler.Objfile.t

(** [build_process ?instrumented ?tco ~sources ?dynamic ()] is
    [link_executable] + a process with the dynamic modules registered for
    [dlopen], loaded and ready to [run].  [dispatch] selects the
    execution engine ({!Mcfi_runtime.Machine.dispatch}). *)
val build_process :
  ?instrumented:bool ->
  ?tco:bool ->
  ?sandbox:Vmisa.Abi.sandbox ->
  ?drop_check:int ->
  ?verify:bool ->
  ?with_libc:bool ->
  ?seed:int64 ->
  ?dispatch:Mcfi_runtime.Machine.dispatch ->
  sources:(string * string) list ->
  ?dynamic:(string * string) list ->
  unit ->
  Mcfi_runtime.Process.t

(** [run_source ?instrumented src] compiles and runs a single-module
    program (plus libc); returns the exit reason and captured output. *)
val run_source :
  ?instrumented:bool ->
  ?tco:bool ->
  ?fuel:int ->
  ?dynamic:(string * string) list ->
  string ->
  Mcfi_runtime.Machine.exit_reason * string
