lib/instrument/rewriter.ml: Array Fmt Hashtbl List Mcfi_compiler Printf String Vmisa
