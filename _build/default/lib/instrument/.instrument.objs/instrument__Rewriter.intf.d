lib/instrument/rewriter.mli: Mcfi_compiler Vmisa
