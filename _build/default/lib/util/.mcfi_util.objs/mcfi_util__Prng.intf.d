lib/util/prng.mli:
