type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64: fast, well-distributed, and trivially seedable. *)
let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let choose t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let split t = create (next t)
