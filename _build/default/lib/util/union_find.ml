type t = {
  parent : int array;
  rank : int array;
  mutable sets : int;
}

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; sets = n }

let size t = Array.length t.parent

let check t x =
  if x < 0 || x >= size t then
    invalid_arg (Printf.sprintf "Union_find: key %d out of range [0,%d)" x (size t))

let rec find t x =
  check t x;
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then rx
  else begin
    t.sets <- t.sets - 1;
    if t.rank.(rx) < t.rank.(ry) then begin
      t.parent.(rx) <- ry; ry
    end else if t.rank.(rx) > t.rank.(ry) then begin
      t.parent.(ry) <- rx; rx
    end else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1;
      rx
    end
  end

let same t x y = find t x = find t y

let count t = t.sets

let groups t =
  let n = size t in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let members = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: members)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
