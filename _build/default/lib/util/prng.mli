(** Deterministic pseudo-random number generator (splitmix64).

    The VM scheduler, the attacker model and the workload generators all need
    reproducible randomness that does not depend on [Random]'s global state,
    so that test failures replay exactly. *)

type t

(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)
val create : int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] when
    [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] is a uniform coin flip. *)
val bool : t -> bool

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [choose t xs] picks a uniform element. Raises [Invalid_argument] on []. *)
val choose : t -> 'a list -> 'a

(** [split t] derives an independent generator (for per-thread streams). *)
val split : t -> t
