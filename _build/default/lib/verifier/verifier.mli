(** Modular verification of instrumented modules (paper §7).

    The verifier removes the rewriter from the trusted computing base: it
    re-disassembles the {e laid-out byte image} of a module (never trusting
    the instruction stream the assembler reports) and checks that

    - the whole image decodes linearly (the auxiliary information makes
      complete disassembly possible);
    - direct branches with in-module targets land on instruction
      boundaries (the paper's static check of direct branches, §2);
    - no naked [Ret] remains;
    - every [Call_r]/[Jmp_r] is the commit point of a well-formed check
      transaction over the reserved scratch registers, whose retry edge
      re-enters the transaction (and re-loads the GOT slot for PLT
      entries), whose failure edges reach [Halt], and whose embedded Bary
      slot lies in the module's assigned slot range;
    - the number of committing indirect branches equals the number of site
      records (no un-checked branch, no stray check);
    - every store is stack-relative or masked into the data sandbox;
    - every declared indirect-branch target — function entries,
      return-site labels, jump-table targets, setjmp continuations — is
      4-byte aligned. *)

type issue = { at : int; what : string }

val pp_issue : Format.formatter -> issue -> unit

(** [verify ?sandbox ~obj ~prog ~slot_base ~slot_count ()] checks the
    module [obj] as laid out in [prog].  [slot_base, slot_base +
    slot_count) is the global Bary slot range the loader assigned to this
    module.  [sandbox] is the platform's write-confinement scheme (default
    [Mask]): under [Segment] (the x86-32 flavour) stores need no masks
    because segmentation hardware bounds them. *)
val verify :
  ?sandbox:Vmisa.Abi.sandbox ->
  obj:Mcfi_compiler.Objfile.t ->
  prog:Vmisa.Asm.program ->
  slot_base:int ->
  slot_count:int ->
  unit ->
  (unit, issue list) result
