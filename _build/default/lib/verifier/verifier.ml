module Instr = Vmisa.Instr
module Asm = Vmisa.Asm
module Abi = Vmisa.Abi
module Objfile = Mcfi_compiler.Objfile

type issue = { at : int; what : string }

let pp_issue ppf { at; what } = Fmt.pf ppf "0x%x: %s" at what

let r11 = Instr.rscratch0
let r12 = Instr.rscratch1
let r13 = Instr.rscratch2

(* A decoded stream with position/address cross-references. *)
type stream = {
  instrs : (int * Instr.t) array; (* (address, instruction) *)
  pos_of_addr : (int, int) Hashtbl.t;
}

let decode_stream ~base image =
  let decoded, err = Vmisa.Disasm.disassemble ~base image in
  match err with
  | Some (e, at) ->
    Error { at; what = Fmt.str "undecodable byte: %a" Vmisa.Encode.pp_decode_error e }
  | None ->
    let instrs = Array.of_list decoded in
    let pos_of_addr = Hashtbl.create (Array.length instrs) in
    Array.iteri (fun i (addr, _) -> Hashtbl.add pos_of_addr addr i) instrs;
    Ok { instrs; pos_of_addr }

let instr_at s pos =
  if pos >= 0 && pos < Array.length s.instrs then Some s.instrs.(pos) else None

let pos_of s addr = Hashtbl.find_opt s.pos_of_addr addr

(* Step backward over alignment nops. *)
let rec skip_nops_back s pos =
  match instr_at s pos with
  | Some (_, Instr.Nop) -> skip_nops_back s (pos - 1)
  | _ -> pos

(* Verify the check/halt block at [check_addr]:
     Test_ri r11, 1; Jcc Eq halt; Cmp_lo r13, r11; Jcc Ne try; Halt
   Returns the retry target address. *)
let verify_check_block s ~check_addr =
  let ( let* ) = Result.bind in
  let err at what = Error { at; what } in
  let* p0 =
    match pos_of s check_addr with
    | Some p -> Ok p
    | None -> err check_addr "check block entry is mid-instruction"
  in
  let at pos =
    match instr_at s pos with
    | Some ai -> Ok ai
    | None -> err check_addr "check block runs off the module"
  in
  let* a0, i0 = at p0 in
  let* () =
    match i0 with
    | Instr.Test_ri (r, 1) when r = r11 -> Ok ()
    | _ -> err a0 "check block does not test target-ID validity"
  in
  let* a1, i1 = at (p0 + 1) in
  let* halt_addr =
    match i1 with
    | Instr.Jcc (Instr.Eq, halt) -> Ok halt
    | _ -> err a1 "invalid-target edge does not branch to halt"
  in
  let* a2, i2 = at (p0 + 2) in
  let* () =
    match i2 with
    | Instr.Cmp_lo (a, b) when a = r13 && b = r11 -> Ok ()
    | _ -> err a2 "check block does not compare versions"
  in
  let* a3, i3 = at (p0 + 3) in
  let* retry_addr =
    match i3 with
    | Instr.Jcc (Instr.Ne, retry) -> Ok retry
    | _ -> err a3 "version mismatch does not retry"
  in
  let* a4, i4 = at (p0 + 4) in
  let* () =
    match i4 with
    | Instr.Halt when a4 = halt_addr -> Ok ()
    | Instr.Halt -> err a4 "halt label does not point at the halt"
    | _ -> err a4 "ECN mismatch does not halt"
  in
  Ok retry_addr

(* Verify the read block ending (via optional alignment nops) at the commit
   branch at position [commit_pos]:
     Bary_load r13 slot; Tary_load r11 r12; Cmp_rr r13 r11; Jcc Ne check
   Returns (bary-load address, slot, check block address). *)
let verify_read_block s ~commit_pos =
  let ( let* ) = Result.bind in
  let err at what = Error { at; what } in
  let commit_addr = fst s.instrs.(commit_pos) in
  let p_jcc = skip_nops_back s (commit_pos - 1) in
  let* check_addr =
    match instr_at s p_jcc with
    | Some (_, Instr.Jcc (Instr.Ne, check)) -> Ok check
    | _ -> err commit_addr "commit is not guarded by an ID comparison branch"
  in
  let* () =
    match instr_at s (p_jcc - 1) with
    | Some (_, Instr.Cmp_rr (a, b)) when a = r13 && b = r11 -> Ok ()
    | _ -> err commit_addr "missing branch-ID/target-ID comparison"
  in
  let* () =
    match instr_at s (p_jcc - 2) with
    | Some (_, Instr.Tary_load (rd, rs)) when rd = r11 && rs = r12 -> Ok ()
    | _ -> err commit_addr "missing Tary read of the branch target"
  in
  let* bary_addr, slot =
    match instr_at s (p_jcc - 3) with
    | Some (addr, Instr.Bary_load (rd, slot)) when rd = r13 -> Ok (addr, slot)
    | _ -> err commit_addr "missing Bary read of the branch ID"
  in
  Ok (bary_addr, slot, check_addr, p_jcc - 3)

let verify ?(sandbox = Abi.Mask) ~obj ~(prog : Asm.program) ~slot_base
    ~slot_count () =
  let issues = ref [] in
  let problem at fmt = Printf.ksprintf (fun what -> issues := { at; what } :: !issues) fmt in
  (match decode_stream ~base:prog.Asm.base prog.Asm.image with
  | Error issue -> issues := [ issue ]
  | Ok s ->
    let n = Array.length s.instrs in
    let commits = ref 0 in
    (* Direct branches are checked statically (paper §2): a target inside
       the module must be an instruction boundary; targets outside are
       cross-module references the linker resolved (calls/jumps to other
       verified modules). *)
    let module_start = prog.Asm.base in
    let module_end = prog.Asm.base + String.length prog.Asm.image in
    let check_direct_target addr target =
      if target >= module_start && target < module_end
         && pos_of s target = None
      then
        problem addr "direct branch into the middle of an instruction (0x%x)"
          target
    in
    for pos = 0 to n - 1 do
      let addr, i = s.instrs.(pos) in
      match i with
      | Instr.Jmp target | Instr.Jcc (_, target) | Instr.Call target ->
        check_direct_target addr target
      | Instr.Ret -> problem addr "naked ret in instrumented code"
      | Instr.Call_r r | Instr.Jmp_r r -> begin
        incr commits;
        if r <> r12 then
          problem addr "indirect branch does not use the checked register"
        else begin
          match verify_read_block s ~commit_pos:pos with
          | Error issue -> issues := issue :: !issues
          | Ok (bary_addr, slot, check_addr, bary_pos) -> begin
            if slot < slot_base || slot >= slot_base + slot_count then
              problem addr "Bary slot %d outside module range [%d,%d)" slot
                slot_base (slot_base + slot_count);
            match verify_check_block s ~check_addr with
            | Error issue -> issues := issue :: !issues
            | Ok retry_addr ->
              if retry_addr = bary_addr then ()
              else begin
                (* PLT flavour: the retry re-enters through the GOT reload
                   two instructions before the Bary load. *)
                let ok_plt =
                  match
                    (instr_at s (bary_pos - 2), instr_at s (bary_pos - 1))
                  with
                  | ( Some (mov_addr, Instr.Mov_ri (rd1, _)),
                      Some (_, Instr.Load (rd2, rs2, 0)) ) ->
                    rd1 = r12 && rd2 = r12 && rs2 = r12
                    && retry_addr = mov_addr
                  | _ -> false
                in
                if not ok_plt then
                  problem addr
                    "retry edge does not re-enter the transaction (0x%x)"
                    retry_addr
              end
          end
        end
      end
      | Instr.Store (rb, off, _) ->
        if sandbox = Abi.Segment then
          (* segmentation hardware confines every store *)
          ()
        else if rb = Instr.rsp || rb = Instr.rfp then ()
        else if rb = r11 && off = 0 then begin
          (* must be the masked-store pattern *)
          let ok =
            match
              (instr_at s (pos - 3), instr_at s (pos - 2), instr_at s (pos - 1))
            with
            | ( Some (_, Instr.Mov_rr (a, _)),
                Some (_, Instr.Binop_i (Instr.Add, b, _)),
                Some (_, Instr.Binop_i (Instr.And, c, mask)) ) ->
              a = r11 && b = r11 && c = r11 && mask = Abi.sandbox_mask
            | _ -> false
          in
          if not ok then problem addr "store is not sandbox-masked"
        end
        else problem addr "store with an unsandboxed base register"
      | _ -> ()
    done;
    let nsites = List.length obj.Objfile.o_sites in
    if !commits <> nsites then
      problem prog.Asm.base
        "%d committing indirect branches but %d site records" !commits nsites;
    (* Alignment of declared indirect-branch targets. *)
    let check_aligned what label =
      match Hashtbl.find_opt prog.Asm.labels label with
      | Some a when a mod 4 <> 0 -> problem a "misaligned %s %s" what label
      | Some _ -> ()
      | None -> problem prog.Asm.base "missing %s label %s" what label
    in
    List.iter
      (fun (fi : Objfile.fn_info) ->
        if fi.fi_defined then check_aligned "function entry" fi.fi_name)
      obj.Objfile.o_functions;
    List.iter
      (function
        | Objfile.Site_jumptable { targets; _ } ->
          List.iter (check_aligned "jump-table target") targets
        | Objfile.Site_icall { ret_label; _ } ->
          check_aligned "return site" ret_label
        | Objfile.Site_return _ | Objfile.Site_itail _ | Objfile.Site_longjmp _
        | Objfile.Site_plt _ -> ())
      obj.Objfile.o_sites;
    List.iter
      (fun (dc : Objfile.direct_call) ->
        check_aligned "return site" dc.dc_ret)
      obj.Objfile.o_direct_calls;
    List.iter (check_aligned "setjmp continuation") obj.Objfile.o_setjmp_sites);
  match !issues with [] -> Ok () | issues -> Error (List.rev issues)
