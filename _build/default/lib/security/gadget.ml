module Instr = Vmisa.Instr
module Encode = Vmisa.Encode

type t = { g_start : int; g_instrs : Vmisa.Instr.t list }

let pp ppf g =
  Fmt.pf ppf "0x%x: %a" g.g_start
    Fmt.(list ~sep:(any "; ") Instr.pp)
    g.g_instrs

let scan ?(max_len = 8) ~base image =
  let n = String.length image in
  let gadgets = ref [] in
  for off = 0 to n - 1 do
    (* decode forward until an indirect branch, a bad byte, or max_len *)
    let rec go acc o k =
      if k = 0 || o >= n then ()
      else begin
        match Encode.decode image o with
        | Error _ -> ()
        | Ok (i, o') ->
          if Instr.is_indirect_branch i then
            gadgets :=
              { g_start = base + off; g_instrs = List.rev (i :: acc) }
              :: !gadgets
          else if Instr.equal i Instr.Halt then ()
          else go (i :: acc) o' (k - 1)
      end
    in
    go [] off max_len
  done;
  List.rev !gadgets

let count_unique gadgets =
  let module S = Set.Make (struct
    type nonrec t = Vmisa.Instr.t list

    let compare = compare
  end) in
  S.cardinal (S.of_list (List.map (fun g -> g.g_instrs) gadgets))

let survivors ~valid_targets gadgets =
  List.filter
    (fun g -> g.g_start mod 4 = 0 && valid_targets g.g_start)
    gadgets

let elimination_rate ~total ~surviving =
  if total = 0 then 0.0
  else 100.0 *. float_of_int (total - surviving) /. float_of_int total
