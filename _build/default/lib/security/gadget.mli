(** ROP-gadget scanning over the virtual ISA's byte encoding — the rp++
    stand-in for the paper's §8.3 gadget-elimination measurement.

    A gadget is a short instruction sequence, decodable starting at {e any}
    byte offset (including the middle of intended instructions), that ends
    in an indirect branch ([Ret], [Call_r], [Jmp_r]).  MCFI eliminates a
    gadget when its start address can never be reached: under MCFI, every
    indirect branch lands on a 4-byte-aligned address with a valid Tary
    entry, so only gadgets starting at such addresses survive. *)

type t = {
  g_start : int;                 (** absolute code address *)
  g_instrs : Vmisa.Instr.t list; (** ends with the indirect branch *)
}

val pp : Format.formatter -> t -> unit

(** [scan ?max_len ~base image] finds gadgets at every byte offset.
    [max_len] bounds the instruction count (default 8, rp++-like). *)
val scan : ?max_len:int -> base:int -> string -> t list

(** Unique gadgets by instruction sequence (the paper counts unique
    gadgets). *)
val count_unique : t list -> int

(** [survivors ~valid_targets gadgets] keeps gadgets whose start address
    is 4-byte aligned and present in [valid_targets] (the Tary domain) —
    the only gadgets reachable through MCFI-checked branches. *)
val survivors : valid_targets:(int -> bool) -> t list -> t list

(** [elimination_rate ~total ~surviving] in percent. *)
val elimination_rate : total:int -> surviving:int -> float
