module Cfggen = Cfg.Cfggen

type t = No_protection | Chunk of int | Bincfi | Classic_cfi | Mcfi

let name = function
  | No_protection -> "none"
  | Chunk n -> Printf.sprintf "chunk%d" n
  | Bincfi -> "binCFI"
  | Classic_cfi -> "classic-CFI"
  | Mcfi -> "MCFI"

let all = [ No_protection; Chunk 16; Chunk 32; Bincfi; Classic_cfi; Mcfi ]

module IS = Set.Make (Int)

(* The coarse target universes shared by several policies. *)
let at_function_addrs (input : Cfggen.input) =
  List.filter_map
    (fun (f : Cfggen.fn) -> if f.faddress_taken then Some f.faddr else None)
    input.functions
  |> IS.of_list

let return_site_addrs (input : Cfggen.input) =
  let s = ref IS.empty in
  List.iter (fun (_, _, ret) -> s := IS.add ret !s) input.direct_calls;
  Array.iter
    (function
      | Cfggen.Sicall { ret_addr; _ } -> s := IS.add ret_addr !s
      | Cfggen.Sjumptable { target_addrs; _ } ->
        List.iter (fun a -> s := IS.add a !s) target_addrs
      | Cfggen.Sreturn _ | Cfggen.Sitail _ | Cfggen.Slongjmp _ | Cfggen.Splt _
        -> ())
    input.sites;
  List.iter (fun a -> s := IS.add a !s) input.setjmp_addrs;
  !s

let is_call_like = function
  | Cfggen.Sicall _ | Cfggen.Sitail _ | Cfggen.Splt _ -> true
  | Cfggen.Sreturn _ | Cfggen.Sjumptable _ | Cfggen.Slongjmp _ -> false

let enforced_target_counts policy ~(input : Cfggen.input) ~code_bytes =
  match policy with
  | No_protection ->
    Array.map (fun _ -> code_bytes) input.sites
  | Chunk n ->
    (* an indirect branch may reach any n-aligned code address *)
    Array.map (fun _ -> (code_bytes + n - 1) / n) input.sites
  | Bincfi ->
    let fns = IS.cardinal (at_function_addrs input) in
    let rets = IS.cardinal (return_site_addrs input) in
    Array.map
      (fun site -> if is_call_like site then fns else rets)
      input.sites
  | Classic_cfi ->
    (* indirect calls all share the address-taken-function class (the
       paper notes the classic implementation does this for convenience);
       returns and jumps keep their precise sets, but overlapping sets
       collapse — approximated here by their raw CFG sets *)
    let fns = IS.cardinal (at_function_addrs input) in
    Array.map
      (fun site ->
        if is_call_like site then fns
        else List.length (Cfggen.targets_of_site input site))
      input.sites
  | Mcfi ->
    (* enforced sets are the equivalence classes *)
    let out = Cfggen.generate input in
    let class_size = Hashtbl.create 16 in
    List.iter
      (fun (_, ecn) ->
        Hashtbl.replace class_size ecn
          (1 + Option.value ~default:0 (Hashtbl.find_opt class_size ecn)))
      out.Cfggen.tary;
    Array.of_list
      (List.map
         (fun (_, ecn) ->
           Option.value ~default:0 (Hashtbl.find_opt class_size ecn))
         out.Cfggen.bary)

let coarse_tables (input : Cfggen.input) =
  let fns = at_function_addrs input in
  let rets = return_site_addrs input in
  let tary =
    List.map (fun a -> (a, 0)) (IS.elements fns)
    @ List.map (fun a -> (a, 1)) (IS.elements (IS.diff rets fns))
  in
  let bary =
    Array.to_list
      (Array.mapi
         (fun slot site -> (slot, if is_call_like site then 0 else 1))
         input.sites)
  in
  (tary, bary)
