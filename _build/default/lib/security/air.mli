(** The Average Indirect-target Reduction metric (binCFI; paper §8.3).

    AIR = 1 - (1/n) Σ_j |T_j| / S, where n is the number of indirect
    branches, T_j the target set the policy enforces for branch j, and S
    the number of possible target addresses without protection (the code
    size in bytes).  0 means unprotected; values approach 1 as the policy
    tightens.  The paper's table has MCFI highest (≈0.996/0.999), above
    binCFI (≈0.987/0.988) and chunk-based CFI. *)

(** [compute policy ~input ~code_bytes] is the AIR value in [0, 1). *)
val compute :
  Policies.t -> input:Cfg.Cfggen.input -> code_bytes:int -> float

(** AIR for every policy in {!Policies.all}, as (name, value) rows. *)
val table : input:Cfg.Cfggen.input -> code_bytes:int -> (string * float) list
