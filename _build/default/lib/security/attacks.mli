(** Attack scenarios under the paper's concurrent-attacker model (§4): the
    attacker may overwrite any writable data between any two instructions —
    registers, code, and the ID tables are out of reach.

    Each scenario builds the same program under different protection
    regimes and reports what the hijack achieves.  [fptr_hijack] is the
    CVE-2006-6235 analog from §8.3: a corrupted function pointer aimed at
    an [execve]-like function of a different type is let through by
    coarse-grained CFI (both addresses sit in the one
    "address-taken-function" class) but stopped by MCFI's type-matched
    classes. *)

type outcome = {
  regime : string;  (** "plain", "coarse-CFI" or "MCFI" *)
  reason : Mcfi_runtime.Machine.exit_reason;
  output : string;
}

val pp_outcome : Format.formatter -> outcome -> unit

(** Replace a loaded MCFI process's table contents with the binCFI-style
    two-class policy (one update transaction). The process keeps running
    its unchanged check sequences — only the policy weakens. *)
val install_coarse_policy : Mcfi_runtime.Process.t -> unit

(** Return-address smash via a stack buffer overflow, aimed at an
    unreachable function: ["plain"] is hijacked, ["MCFI"] halts. *)
val stack_smash : unit -> outcome list

(** Function-pointer hijack to the [execve] analog: ["coarse-CFI"] is
    hijacked, ["MCFI"] halts. *)
val fptr_hijack : unit -> outcome list

(** [random_corruption ~seed ~writes] runs a pointer-heavy workload under
    MCFI while an attacker clobbers [writes] random writable words per
    step window; the result must never be a control transfer outside the
    CFG.  Returns the exit reason and whether every committed indirect
    transfer hit a valid, 4-byte-aligned Tary target (checked by stepping
    the machine and watching commit instructions). *)
val random_corruption :
  seed:int64 -> writes:int -> Mcfi_runtime.Machine.exit_reason * bool
