let compute policy ~input ~code_bytes =
  let counts = Policies.enforced_target_counts policy ~input ~code_bytes in
  let n = Array.length counts in
  if n = 0 || code_bytes = 0 then 0.0
  else begin
    let s = float_of_int code_bytes in
    let sum =
      Array.fold_left (fun acc c -> acc +. (float_of_int c /. s)) 0.0 counts
    in
    1.0 -. (sum /. float_of_int n)
  end

let table ~input ~code_bytes =
  List.map
    (fun p -> (Policies.name p, compute p ~input ~code_bytes))
    Policies.all
