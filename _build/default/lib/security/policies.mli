(** CFI policies of increasing precision, over the same program view.

    These are the comparison points of the paper's §8.3 AIR table:
    no protection, chunk-aligned CFI (NaCl/PittSFIeld at 16 or 32 bytes),
    coarse-grained binCFI/CCFIR-style (two classes: address-taken function
    entries, and return sites), classic CFI as deployed (indirect calls
    share one class of all address-taken functions; returns follow the
    call graph), and MCFI's type-matching policy.

    [enforced_target_count] gives |T_j| — the number of addresses an
    indirect branch at site [j] may reach {e as enforced} (after
    equivalence-class merging where applicable), which is what the AIR
    metric averages. [coarse_tables] additionally renders the binCFI-style
    policy into Bary/Tary ECN assignments so a process can actually run
    under it (the attack-demo comparison). *)

type t =
  | No_protection
  | Chunk of int      (** aligned chunks of the given size in bytes *)
  | Bincfi            (** two classes: AT functions / return sites *)
  | Classic_cfi       (** one class for calls; call-graph returns *)
  | Mcfi

val name : t -> string

val all : t list

(** [enforced_target_counts policy ~input ~code_bytes] is |T_j| for every
    site of [input], in site order. *)
val enforced_target_counts :
  t -> input:Cfg.Cfggen.input -> code_bytes:int -> int array

(** [coarse_tables input] renders the binCFI-style two-class policy as
    table contents [(tary, bary)]: every AT function entry in class 0,
    every return site/jump-table target/setjmp continuation in class 1;
    call-like sites get branch class 0, return-like sites class 1.
    Installing these with an update transaction makes a process {e run}
    under coarse-grained CFI — the attack-demo comparison. *)
val coarse_tables : Cfg.Cfggen.input -> (int * int) list * (int * int) list
