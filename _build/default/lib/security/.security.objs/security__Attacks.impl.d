lib/security/attacks.ml: Fmt Idtables Mcfi Mcfi_runtime Mcfi_util Option Policies Vmisa
