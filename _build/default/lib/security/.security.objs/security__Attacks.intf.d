lib/security/attacks.mli: Format Mcfi_runtime
