lib/security/policies.ml: Array Cfg Hashtbl Int List Option Printf Set
