lib/security/policies.mli: Cfg
