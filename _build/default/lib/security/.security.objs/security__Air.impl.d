lib/security/air.ml: Array List Policies
