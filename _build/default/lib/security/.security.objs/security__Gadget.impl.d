lib/security/gadget.ml: Fmt List Set String Vmisa
