lib/security/air.mli: Cfg Policies
