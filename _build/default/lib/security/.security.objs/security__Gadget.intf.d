lib/security/gadget.mli: Format Vmisa
