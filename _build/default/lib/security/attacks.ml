module Machine = Mcfi_runtime.Machine
module Process = Mcfi_runtime.Process
module Tx = Idtables.Tx

type outcome = {
  regime : string;
  reason : Machine.exit_reason;
  output : string;
}

let pp_outcome ppf o =
  Fmt.pf ppf "%-10s -> %a, output %S" o.regime Machine.pp_exit_reason o.reason
    o.output

let install_coarse_policy proc =
  match Process.tables proc with
  | None -> invalid_arg "install_coarse_policy: not an MCFI process"
  | Some tables ->
    let tary, bary = Policies.coarse_tables (Process.cfg_input proc) in
    ignore (Tx.update tables ~tary ~bary)

(* ---------- return-address smash ---------- *)

let smash_src =
  {|
void secret(void) { print_str("HIJACKED"); exit(99); }
void victim(int target) {
  int buf[2];
  buf[3] = target;   /* out of bounds: aliases the return address */
}
int main() {
  victim(__syscall(5, "secret"));
  print_str("survived");
  return 0;
}
|}

let run_build ~regime ?(coarse = false) ~instrumented ?attacker src =
  let proc =
    Mcfi.Pipeline.build_process ~instrumented ~sources:[ ("victim", src) ] ()
  in
  if coarse then install_coarse_policy proc;
  Process.start proc;
  (match attacker with
  | Some a -> Machine.set_attacker (Process.machine proc) (a proc)
  | None -> ());
  let reason = Machine.run ~fuel:10_000_000 (Process.machine proc) in
  { regime; reason; output = Machine.output (Process.machine proc) }

let stack_smash () =
  [
    run_build ~regime:"plain" ~instrumented:false smash_src;
    run_build ~regime:"MCFI" ~instrumented:true smash_src;
  ]

(* ---------- function-pointer hijack to execve (CVE-2006-6235 analog) --- *)

let hijack_src =
  {|
void benign(int x) { print_int(x); print_char(' '); }
int execve(char *prog, int unused) {
  print_str("EXEC:");
  print_str(prog);
  exit(66);
  return 0;
}
void (*handler)(int) = benign;
/* execve's address is taken, as it is when libc is linked in */
int (*execve_ref)(char *, int) = execve;
int main() {
  int i;
  for (i = 0; i < 32; i = i + 1) { handler(i); }
  print_str("done");
  return 0;
}
|}

(* The concurrent attacker: once the run is underway, overwrite the
   handler function pointer (writable data!) with execve's address. *)
let hijack_attacker proc =
  let handler_addr =
    match Process.lookup_data proc "handler" with
    | Some a -> a
    | None -> invalid_arg "no handler global"
  in
  let execve_addr =
    match Process.lookup_code proc "execve" with
    | Some a -> a
    | None -> invalid_arg "no execve symbol"
  in
  let fired = ref false in
  fun m ->
    if (not !fired) && Machine.steps m > 2000 then begin
      fired := true;
      Machine.write_data m handler_addr execve_addr
    end

let fptr_hijack () =
  [
    run_build ~regime:"plain" ~instrumented:false
      ~attacker:(fun proc -> hijack_attacker proc)
      hijack_src;
    run_build ~regime:"coarse-CFI" ~instrumented:true ~coarse:true
      ~attacker:(fun proc -> hijack_attacker proc)
      hijack_src;
    run_build ~regime:"MCFI" ~instrumented:true
      ~attacker:(fun proc -> hijack_attacker proc)
      hijack_src;
  ]

(* ---------- randomized corruption ---------- *)

let corruption_src =
  {|
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }
int (*ops[3])(int, int) = { add, sub, mul };
int main() {
  int i;
  int acc = 1;
  for (i = 0; i < 5000; i = i + 1) {
    acc = ops[i % 3](acc, i) % 100003;
  }
  print_int(acc);
  return 0;
}
|}

let random_corruption ~seed ~writes =
  let proc =
    Mcfi.Pipeline.build_process ~instrumented:true ~seed
      ~sources:[ ("workload", corruption_src) ]
      ()
  in
  Process.start proc;
  let m = Process.machine proc in
  let tables = Option.get (Process.tables proc) in
  let prng = Mcfi_util.Prng.create seed in
  Machine.set_attacker m (fun m ->
      for _ = 1 to writes do
        (* clobber a random writable word (the model forbids registers,
           code and tables; the interface offers only data writes) *)
        let addr = 1 + Mcfi_util.Prng.int prng (Machine.data_size m - 1) in
        Machine.write_data m addr (Mcfi_util.Prng.int prng 0x3fffffff)
      done);
  (* Step manually: at every committed indirect transfer (a Jmp_r/Call_r
     reached with a passing check), the target must be a valid aligned
     Tary entry. *)
  let sound = ref true in
  let rec go fuel =
    if fuel = 0 then Machine.Out_of_fuel
    else begin
      (match Machine.current_instr m with
      | Some (Vmisa.Instr.Jmp_r r) | Some (Vmisa.Instr.Call_r r) ->
        let target = Machine.reg m r in
        let id = Idtables.Tables.tary_read tables target in
        if target mod 4 <> 0 || not (Idtables.Id.valid id) then sound := false
      | _ -> ());
      match Machine.step m with Some reason -> reason | None -> go (fuel - 1)
    end
  in
  let reason = go 3_000_000 in
  (reason, !sound)
