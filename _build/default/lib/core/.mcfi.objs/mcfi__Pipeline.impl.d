lib/core/pipeline.ml: Fmt Instrument List Mcfi_compiler Mcfi_runtime Minic Option Printf String Suite
