lib/core/pipeline.mli: Mcfi_compiler Mcfi_runtime Vmisa
