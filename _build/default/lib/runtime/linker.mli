(** MCFI's static linker (paper §6, "Static and dynamic linking").

    Combines separately compiled (and separately instrumented) modules into
    one module: code and data are concatenated, the auxiliary type
    information is merged (a union), embedded Bary slots of later modules
    are re-based past the earlier modules' slot ranges, and duplicate
    symbol definitions are reported.

    Symbols that remain undefined after combination are resolved through
    generated {e PLT entries} backed by GOT data slots ([add_plt]): direct
    calls and address-takings of the symbol are redirected to the PLT
    entry, whose already-instrumented indirect jump is checked like any
    other (with the GOT reload on retry).  The GOT slots start at 0 — an
    unresolved jump reads target 0, whose Tary entry is invalid, and
    halts; [dlopen] later binds them inside an update transaction. *)

exception Error of string

(** [link ~name objs] statically links instrumented or plain modules (all
    must agree). Raises {!Error} on duplicate or conflicting symbols. *)
val link : name:string -> Mcfi_compiler.Objfile.t list -> Mcfi_compiler.Objfile.t

(** [add_plt obj symbols] appends an instrumented PLT entry and a GOT slot
    for each symbol and redirects the module's references.  The module
    must already be instrumented (PLT entries contain check sequences).
    Raises {!Error} if a symbol is address-taken via [Mov_sym] (taking the
    address of a dynamically deferred function is not supported). *)
val add_plt : Mcfi_compiler.Objfile.t -> string list -> Mcfi_compiler.Objfile.t

(** The process entry stub: [_start] calls [main] and exits with its
    return value. Link it like any other module. *)
val start_module : unit -> Mcfi_compiler.Objfile.t
