lib/runtime/machine.ml: Array Buffer Bytes Char Fmt Idtables Mcfi_util Printf String Vmisa
