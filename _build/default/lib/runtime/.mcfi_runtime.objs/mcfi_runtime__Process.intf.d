lib/runtime/process.mli: Cfg Idtables Machine Mcfi_compiler Vmisa
