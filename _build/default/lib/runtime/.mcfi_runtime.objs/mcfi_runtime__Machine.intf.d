lib/runtime/machine.mli: Format Idtables Vmisa
