lib/runtime/linker.ml: Hashtbl Instrument List Mcfi_compiler Minic Printf Set String Vmisa
