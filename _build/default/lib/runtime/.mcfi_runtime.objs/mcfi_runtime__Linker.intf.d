lib/runtime/linker.mli: Mcfi_compiler
