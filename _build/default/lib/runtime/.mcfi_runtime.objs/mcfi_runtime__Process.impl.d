lib/runtime/process.ml: Array Cfg Fmt Hashtbl Idtables Instrument List Machine Mcfi_compiler Minic Option Printf String Unix Verifier Vmisa
