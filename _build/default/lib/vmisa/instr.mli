(** The virtual instruction set.

    This ISA plays the role x86 plays in the paper: it has direct and
    indirect calls, indirect jumps, returns, pushes/pops, and loads/stores,
    and it has a variable-length byte encoding (see {!Encode}) so that
    "a gadget starting in the middle of an instruction" is a meaningful
    notion.  Code addresses are byte offsets into the code region; data
    addresses are word offsets into the (disjoint) data region.

    Registers [r11]-[r13] are reserved scratch registers for MCFI check
    sequences (the paper reserves registers with an LLVM backend pass); the
    code generator never allocates them.  [r14] is the frame pointer and
    [r15] the stack pointer. *)

type reg = int
(** Register index in [0, 15]. *)

val num_regs : int

val rscratch0 : reg (** [r11]: target-ID scratch (paper's [%esi]). *)

val rscratch1 : reg (** [r12]: popped branch-target scratch (paper's [%rcx]). *)

val rscratch2 : reg (** [r13]: branch-ID scratch (paper's [%edi]). *)

val rfp : reg (** [r14]: frame pointer. *)

val rsp : reg (** [r15]: stack pointer. *)

type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

type cond = Eq | Ne | Lt | Le | Gt | Ge

(** One machine instruction.  Jump/call targets are absolute byte addresses
    in the code region (the assembler resolves labels to these). *)
type t =
  | Nop
  | Halt                        (** terminate; also the CFI-violation sink *)
  | Mov_ri of reg * int         (** [rd <- imm] *)
  | Mov_rr of reg * reg         (** [rd <- rs] *)
  | Binop of binop * reg * reg  (** [rd <- rd op rs] *)
  | Binop_i of binop * reg * int(** [rd <- rd op imm] *)
  | Load of reg * reg * int     (** [rd <- data[rs + off]] *)
  | Store of reg * int * reg    (** [data[rb + off] <- rs] *)
  | Push of reg                 (** [sp <- sp-1; data[sp] <- rs] *)
  | Pop of reg                  (** [rd <- data[sp]; sp <- sp+1] *)
  | Cmp_rr of reg * reg         (** set flags from [rd - rs] *)
  | Cmp_ri of reg * int         (** set flags from [rd - imm] *)
  | Cmp_lo of reg * reg         (** set flags from low 16 bits (paper's
                                    [cmpw]: the version comparison) *)
  | Test_ri of reg * int        (** set ZF from [rd land imm] (paper's
                                    [testb $1]: the validity check) *)
  | Jmp of int                  (** direct jump *)
  | Jcc of cond * int           (** conditional direct jump *)
  | Call of int                 (** direct call: pushes return address *)
  | Call_r of reg               (** indirect call *)
  | Jmp_r of reg                (** indirect jump *)
  | Ret                         (** return (absent from instrumented code) *)
  | Syscall                     (** runtime API trap; number in [r0] *)
  | Tary_load of reg * reg      (** [rd <- Tary[rs]]: target-ID table read *)
  | Bary_load of reg * int      (** [rd <- Bary[idx]]: branch-ID table read;
                                    [idx] is patched by the loader *)

val equal : t -> t -> bool

(** Encoded size in bytes of an instruction (1 for [Nop], up to 11). *)
val size : t -> int

(** [is_indirect_branch i] is true for [Call_r], [Jmp_r] and [Ret]. *)
val is_indirect_branch : t -> bool

val pp_reg : Format.formatter -> reg -> unit
val pp_binop : Format.formatter -> binop -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
