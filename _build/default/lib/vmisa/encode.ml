open Instr

type decode_error =
  | Bad_opcode of int
  | Bad_register of int
  | Bad_binop of int
  | Bad_cond of int
  | Truncated

let pp_decode_error ppf = function
  | Bad_opcode b -> Fmt.pf ppf "bad opcode 0x%02x" b
  | Bad_register r -> Fmt.pf ppf "bad register %d" r
  | Bad_binop b -> Fmt.pf ppf "bad binop code %d" b
  | Bad_cond c -> Fmt.pf ppf "bad cond code %d" c
  | Truncated -> Fmt.string ppf "truncated instruction"

let binop_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Mod -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9

let binop_of_code = function
  | 0 -> Some Add | 1 -> Some Sub | 2 -> Some Mul | 3 -> Some Div
  | 4 -> Some Mod | 5 -> Some And | 6 -> Some Or | 7 -> Some Xor
  | 8 -> Some Shl | 9 -> Some Shr | _ -> None

let cond_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

let cond_of_code = function
  | 0 -> Some Eq | 1 -> Some Ne | 2 -> Some Lt | 3 -> Some Le
  | 4 -> Some Gt | 5 -> Some Ge | _ -> None

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_i32 buf v =
  put_u8 buf v;
  put_u8 buf (v asr 8);
  put_u8 buf (v asr 16);
  put_u8 buf (v asr 24)

let put_i64 buf v =
  let v64 = Int64.of_int v in
  for k = 0 to 7 do
    put_u8 buf (Int64.to_int (Int64.shift_right_logical v64 (8 * k)))
  done

let encode buf = function
  | Nop -> put_u8 buf 0x00
  | Halt -> put_u8 buf 0x01
  | Ret -> put_u8 buf 0x02
  | Syscall -> put_u8 buf 0x03
  | Push r -> put_u8 buf 0x10; put_u8 buf r
  | Pop r -> put_u8 buf 0x11; put_u8 buf r
  | Call_r r -> put_u8 buf 0x12; put_u8 buf r
  | Jmp_r r -> put_u8 buf 0x13; put_u8 buf r
  | Mov_rr (rd, rs) -> put_u8 buf 0x20; put_u8 buf rd; put_u8 buf rs
  | Cmp_rr (a, b) -> put_u8 buf 0x21; put_u8 buf a; put_u8 buf b
  | Cmp_lo (a, b) -> put_u8 buf 0x22; put_u8 buf a; put_u8 buf b
  | Tary_load (rd, rs) -> put_u8 buf 0x23; put_u8 buf rd; put_u8 buf rs
  | Binop (op, rd, rs) ->
    put_u8 buf 0x30; put_u8 buf (binop_code op); put_u8 buf rd; put_u8 buf rs
  | Jmp a -> put_u8 buf 0x40; put_i32 buf a
  | Call a -> put_u8 buf 0x41; put_i32 buf a
  | Jcc (c, a) -> put_u8 buf 0x50; put_u8 buf (cond_code c); put_i32 buf a
  | Bary_load (rd, i) -> put_u8 buf 0x51; put_u8 buf rd; put_i32 buf i
  | Load (rd, rs, off) ->
    put_u8 buf 0x60; put_u8 buf rd; put_u8 buf rs; put_i32 buf off
  | Store (rb, off, rs) ->
    put_u8 buf 0x61; put_u8 buf rb; put_u8 buf rs; put_i32 buf off
  | Mov_ri (rd, i) -> put_u8 buf 0x70; put_u8 buf rd; put_i64 buf i
  | Cmp_ri (rd, i) -> put_u8 buf 0x71; put_u8 buf rd; put_i64 buf i
  | Test_ri (rd, i) -> put_u8 buf 0x72; put_u8 buf rd; put_i64 buf i
  | Binop_i (op, rd, i) ->
    put_u8 buf 0x80; put_u8 buf (binop_code op); put_u8 buf rd; put_i64 buf i

let encode_all instrs =
  let buf = Buffer.create 1024 in
  List.iter (encode buf) instrs;
  Buffer.contents buf

(* Decoding: a tiny byte-cursor monad over [result]. *)
let ( let* ) = Result.bind

let u8 code off =
  if off >= String.length code then Error Truncated
  else Ok (Char.code code.[off], off + 1)

let reg code off =
  let* r, off = u8 code off in
  if r >= num_regs then Error (Bad_register r) else Ok (r, off)

let i32 code off =
  if off + 4 > String.length code then Error Truncated
  else begin
    let b k = Char.code code.[off + k] in
    let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    (* sign-extend from 32 bits *)
    let v = (v lxor 0x80000000) - 0x80000000 in
    Ok (v, off + 4)
  end

let i64 code off =
  if off + 8 > String.length code then Error Truncated
  else begin
    let v = ref 0L in
    for k = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code code.[off + k]))
    done;
    Ok (Int64.to_int !v, off + 8)
  end

let binop code off =
  let* b, off = u8 code off in
  match binop_of_code b with Some op -> Ok (op, off) | None -> Error (Bad_binop b)

let cond code off =
  let* c, off = u8 code off in
  match cond_of_code c with Some cc -> Ok (cc, off) | None -> Error (Bad_cond c)

let decode code off =
  let* opc, off = u8 code off in
  match opc with
  | 0x00 -> Ok (Nop, off)
  | 0x01 -> Ok (Halt, off)
  | 0x02 -> Ok (Ret, off)
  | 0x03 -> Ok (Syscall, off)
  | 0x10 -> let* r, off = reg code off in Ok (Push r, off)
  | 0x11 -> let* r, off = reg code off in Ok (Pop r, off)
  | 0x12 -> let* r, off = reg code off in Ok (Call_r r, off)
  | 0x13 -> let* r, off = reg code off in Ok (Jmp_r r, off)
  | 0x20 ->
    let* rd, off = reg code off in
    let* rs, off = reg code off in
    Ok (Mov_rr (rd, rs), off)
  | 0x21 ->
    let* a, off = reg code off in
    let* b, off = reg code off in
    Ok (Cmp_rr (a, b), off)
  | 0x22 ->
    let* a, off = reg code off in
    let* b, off = reg code off in
    Ok (Cmp_lo (a, b), off)
  | 0x23 ->
    let* rd, off = reg code off in
    let* rs, off = reg code off in
    Ok (Tary_load (rd, rs), off)
  | 0x30 ->
    let* op, off = binop code off in
    let* rd, off = reg code off in
    let* rs, off = reg code off in
    Ok (Binop (op, rd, rs), off)
  | 0x40 -> let* a, off = i32 code off in Ok (Jmp a, off)
  | 0x41 -> let* a, off = i32 code off in Ok (Call a, off)
  | 0x50 ->
    let* c, off = cond code off in
    let* a, off = i32 code off in
    Ok (Jcc (c, a), off)
  | 0x51 ->
    let* rd, off = reg code off in
    let* i, off = i32 code off in
    Ok (Bary_load (rd, i), off)
  | 0x60 ->
    let* rd, off = reg code off in
    let* rs, off = reg code off in
    let* o, off = i32 code off in
    Ok (Load (rd, rs, o), off)
  | 0x61 ->
    let* rb, off = reg code off in
    let* rs, off = reg code off in
    let* o, off = i32 code off in
    Ok (Store (rb, o, rs), off)
  | 0x70 ->
    let* rd, off = reg code off in
    let* i, off = i64 code off in
    Ok (Mov_ri (rd, i), off)
  | 0x71 ->
    let* rd, off = reg code off in
    let* i, off = i64 code off in
    Ok (Cmp_ri (rd, i), off)
  | 0x72 ->
    let* rd, off = reg code off in
    let* i, off = i64 code off in
    Ok (Test_ri (rd, i), off)
  | 0x80 ->
    let* op, off = binop code off in
    let* rd, off = reg code off in
    let* i, off = i64 code off in
    Ok (Binop_i (op, rd, i), off)
  | b -> Error (Bad_opcode b)

let decode_all code =
  let n = String.length code in
  let rec go acc off =
    if off >= n then Ok (List.rev acc)
    else
      match decode code off with
      | Ok (i, off') -> go ((i, off) :: acc) off'
      | Error e -> Error (e, off)
  in
  go [] 0
