type item =
  | I of Instr.t
  | Mov_sym of Instr.reg * string
  | Mov_dsym of Instr.reg * string
  | Jmp_sym of string
  | Jcc_sym of Instr.cond * string
  | Call_sym of string
  | Label of string
  | Align of int
  | Align_end of int * int

let pp_item ppf = function
  | I i -> Instr.pp ppf i
  | Mov_sym (r, s) -> Fmt.pf ppf "mov %a, &%s" Instr.pp_reg r s
  | Mov_dsym (r, s) -> Fmt.pf ppf "mov %a, @%s" Instr.pp_reg r s
  | Jmp_sym s -> Fmt.pf ppf "jmp %s" s
  | Jcc_sym (c, s) -> Fmt.pf ppf "j%a %s" Instr.pp_cond c s
  | Call_sym s -> Fmt.pf ppf "call %s" s
  | Label s -> Fmt.pf ppf "%s:" s
  | Align n -> Fmt.pf ppf ".align %d" n
  | Align_end (n, s) -> Fmt.pf ppf ".align_end %d %d" n s

type program = {
  base : int;
  instrs : (int * Instr.t) array;
  labels : (string, int) Hashtbl.t;
  image : string;
}

type error =
  | Undefined_label of string
  | Undefined_data_symbol of string
  | Duplicate_label of string
  | Bad_alignment of int

let pp_error ppf = function
  | Undefined_label s -> Fmt.pf ppf "undefined label %s" s
  | Undefined_data_symbol s -> Fmt.pf ppf "undefined data symbol %s" s
  | Duplicate_label s -> Fmt.pf ppf "duplicate label %s" s
  | Bad_alignment n -> Fmt.pf ppf "bad alignment %d" n

let pad_to at n = if at mod n = 0 then 0 else n - (at mod n)

let item_size at = function
  | I i -> Instr.size i
  | Mov_sym _ | Mov_dsym _ -> Instr.size (Instr.Mov_ri (0, 0))
  | Jmp_sym _ -> Instr.size (Instr.Jmp 0)
  | Jcc_sym _ -> Instr.size (Instr.Jcc (Instr.Eq, 0))
  | Call_sym _ -> Instr.size (Instr.Call 0)
  | Label _ -> 0
  | Align n -> pad_to at n
  | Align_end (n, s) -> pad_to (at + s) n

let ( let* ) = Result.bind

let no_resolve (_ : string) : int option = None

let assemble ?(base = 0) ?(resolve_code = no_resolve)
    ?(resolve_data = no_resolve) items =
  (* Pass 1: lay out sizes and record label addresses. *)
  let labels = Hashtbl.create 64 in
  let rec layout at = function
    | [] -> Ok ()
    | Label s :: rest ->
      if Hashtbl.mem labels s then Error (Duplicate_label s)
      else begin
        Hashtbl.add labels s at;
        layout at rest
      end
    | (Align n | Align_end (n, _)) :: _ when n <= 0 -> Error (Bad_alignment n)
    | item :: rest -> layout (at + item_size at item) rest
  in
  let* () = layout base items in
  (* Pass 2: emit concrete instructions. *)
  let lookup s =
    match Hashtbl.find_opt labels s with
    | Some a -> Ok a
    | None -> (
      match resolve_code s with
      | Some a -> Ok a
      | None -> Error (Undefined_label s))
  in
  let lookup_data s =
    match resolve_data s with
    | Some a -> Ok a
    | None -> Error (Undefined_data_symbol s)
  in
  let rec emit acc at = function
    | [] -> Ok (List.rev acc)
    | Label _ :: rest -> emit acc at rest
    | (Align _ | Align_end _) as a :: rest ->
      let rec pads acc at k =
        if k = 0 then (acc, at)
        else pads ((at, Instr.Nop) :: acc) (at + 1) (k - 1)
      in
      let acc, at = pads acc at (item_size at a) in
      emit acc at rest
    | I i :: rest -> emit ((at, i) :: acc) (at + Instr.size i) rest
    | Mov_sym (r, s) :: rest ->
      let* a = lookup s in
      let i = Instr.Mov_ri (r, a) in
      emit ((at, i) :: acc) (at + Instr.size i) rest
    | Mov_dsym (r, s) :: rest ->
      let* a = lookup_data s in
      let i = Instr.Mov_ri (r, a) in
      emit ((at, i) :: acc) (at + Instr.size i) rest
    | Jmp_sym s :: rest ->
      let* a = lookup s in
      let i = Instr.Jmp a in
      emit ((at, i) :: acc) (at + Instr.size i) rest
    | Jcc_sym (c, s) :: rest ->
      let* a = lookup s in
      let i = Instr.Jcc (c, a) in
      emit ((at, i) :: acc) (at + Instr.size i) rest
    | Call_sym s :: rest ->
      let* a = lookup s in
      let i = Instr.Call a in
      emit ((at, i) :: acc) (at + Instr.size i) rest
  in
  let* stream = emit [] base items in
  let buf = Buffer.create 4096 in
  List.iter (fun (_, i) -> Encode.encode buf i) stream;
  Ok { base; instrs = Array.of_list stream; labels; image = Buffer.contents buf }

let referenced_labels items =
  List.filter_map
    (function
      | Mov_sym (_, s) | Jmp_sym s | Jcc_sym (_, s) | Call_sym s -> Some s
      | I _ | Label _ | Align _ | Align_end _ | Mov_dsym _ -> None)
    items

let defined_labels items =
  List.filter_map (function Label s -> Some s | _ -> None) items

module S = Set.Make (String)

let undefined_labels items =
  let dset = S.of_list (defined_labels items) in
  referenced_labels items
  |> List.filter (fun s -> not (S.mem s dset))
  |> S.of_list |> S.elements

let data_symbols items =
  List.filter_map (function Mov_dsym (_, s) -> Some s | _ -> None) items
  |> S.of_list |> S.elements
