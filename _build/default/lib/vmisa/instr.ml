type reg = int

let num_regs = 16
let rscratch0 = 11
let rscratch1 = 12
let rscratch2 = 13
let rfp = 14
let rsp = 15

type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

type cond = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Nop
  | Halt
  | Mov_ri of reg * int
  | Mov_rr of reg * reg
  | Binop of binop * reg * reg
  | Binop_i of binop * reg * int
  | Load of reg * reg * int
  | Store of reg * int * reg
  | Push of reg
  | Pop of reg
  | Cmp_rr of reg * reg
  | Cmp_ri of reg * int
  | Cmp_lo of reg * reg
  | Test_ri of reg * int
  | Jmp of int
  | Jcc of cond * int
  | Call of int
  | Call_r of reg
  | Jmp_r of reg
  | Ret
  | Syscall
  | Tary_load of reg * reg
  | Bary_load of reg * int

let equal (a : t) (b : t) = a = b

let size = function
  | Nop | Halt | Ret | Syscall -> 1
  | Push _ | Pop _ | Call_r _ | Jmp_r _ -> 2
  | Mov_rr _ | Cmp_rr _ | Cmp_lo _ | Tary_load _ -> 3
  | Binop _ -> 4
  | Jmp _ | Call _ -> 5
  | Jcc _ | Bary_load _ -> 6
  | Load _ | Store _ -> 7
  | Mov_ri _ | Cmp_ri _ | Test_ri _ -> 10
  | Binop_i _ -> 11

let is_indirect_branch = function
  | Call_r _ | Jmp_r _ | Ret -> true
  | _ -> false

let pp_reg ppf r =
  if r = rsp then Fmt.string ppf "sp"
  else if r = rfp then Fmt.string ppf "fp"
  else Fmt.pf ppf "r%d" r

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_binop ppf b = Fmt.string ppf (binop_name b)
let pp_cond ppf c = Fmt.string ppf (cond_name c)

let pp ppf = function
  | Nop -> Fmt.string ppf "nop"
  | Halt -> Fmt.string ppf "halt"
  | Mov_ri (rd, i) -> Fmt.pf ppf "mov %a, %d" pp_reg rd i
  | Mov_rr (rd, rs) -> Fmt.pf ppf "mov %a, %a" pp_reg rd pp_reg rs
  | Binop (op, rd, rs) ->
    Fmt.pf ppf "%s %a, %a" (binop_name op) pp_reg rd pp_reg rs
  | Binop_i (op, rd, i) -> Fmt.pf ppf "%s %a, %d" (binop_name op) pp_reg rd i
  | Load (rd, rs, off) -> Fmt.pf ppf "load %a, [%a+%d]" pp_reg rd pp_reg rs off
  | Store (rb, off, rs) ->
    Fmt.pf ppf "store [%a+%d], %a" pp_reg rb off pp_reg rs
  | Push r -> Fmt.pf ppf "push %a" pp_reg r
  | Pop r -> Fmt.pf ppf "pop %a" pp_reg r
  | Cmp_rr (a, b) -> Fmt.pf ppf "cmp %a, %a" pp_reg a pp_reg b
  | Cmp_ri (a, i) -> Fmt.pf ppf "cmp %a, %d" pp_reg a i
  | Cmp_lo (a, b) -> Fmt.pf ppf "cmplo %a, %a" pp_reg a pp_reg b
  | Test_ri (a, i) -> Fmt.pf ppf "test %a, %d" pp_reg a i
  | Jmp a -> Fmt.pf ppf "jmp 0x%x" a
  | Jcc (c, a) -> Fmt.pf ppf "j%s 0x%x" (cond_name c) a
  | Call a -> Fmt.pf ppf "call 0x%x" a
  | Call_r r -> Fmt.pf ppf "call *%a" pp_reg r
  | Jmp_r r -> Fmt.pf ppf "jmp *%a" pp_reg r
  | Ret -> Fmt.string ppf "ret"
  | Syscall -> Fmt.string ppf "syscall"
  | Tary_load (rd, rs) -> Fmt.pf ppf "taryld %a, [%a]" pp_reg rd pp_reg rs
  | Bary_load (rd, i) -> Fmt.pf ppf "baryld %a, #%d" pp_reg rd i

let to_string i = Fmt.str "%a" pp i
