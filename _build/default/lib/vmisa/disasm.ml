let disassemble ?(base = 0) image =
  let n = String.length image in
  let rec go acc off =
    if off >= n then (List.rev acc, None)
    else
      match Encode.decode image off with
      | Ok (i, off') -> go ((base + off, i) :: acc) off'
      | Error e -> (List.rev acc, Some (e, base + off))
  in
  go [] 0

let pp_listing ppf items =
  List.iter (fun (addr, i) -> Fmt.pf ppf "%08x:  %a@." addr Instr.pp i) items
