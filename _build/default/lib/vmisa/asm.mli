(** Two-pass assembler: symbolic items to laid-out machine code.

    Modules are compiled and instrumented as lists of {!item}s; labels keep
    code position-independent until link/load time, when [assemble] lays the
    stream out at a base address and resolves every label.  [Align] items
    become [Nop] padding — this is how indirect-branch targets get the
    4-byte alignment that keeps the Tary table small (paper §5.1), and
    [Align_end] aligns the {e end} of the next instruction, which is how
    return addresses (the byte after a call) get aligned. *)

type item =
  | I of Instr.t                     (** concrete instruction *)
  | Mov_sym of Instr.reg * string    (** load the address of a code label
                                         (address-taken functions) *)
  | Mov_dsym of Instr.reg * string   (** load the address of a data symbol
                                         (globals, jump tables, GOT slots) *)
  | Jmp_sym of string
  | Jcc_sym of Instr.cond * string
  | Call_sym of string
  | Label of string                  (** define a code label here *)
  | Align of int                     (** pad with [Nop] to a multiple *)
  | Align_end of int * int           (** [Align_end (n, s)]: pad so that the
                                         position [s] bytes further on is a
                                         multiple of [n] *)

val pp_item : Format.formatter -> item -> unit

type program = {
  base : int;                        (** base byte address of the layout *)
  instrs : (int * Instr.t) array;    (** address-sorted concrete stream *)
  labels : (string, int) Hashtbl.t;  (** label -> absolute byte address *)
  image : string;                    (** encoded bytes *)
}

type error =
  | Undefined_label of string
  | Undefined_data_symbol of string
  | Duplicate_label of string
  | Bad_alignment of int

val pp_error : Format.formatter -> error -> unit

(** [assemble ~base ~resolve_code ~resolve_data items] lays out and encodes
    the stream.  Labels defined in [items] take precedence; [resolve_code]
    supplies addresses of code symbols defined elsewhere (cross-module
    references at dynamic-link time) and [resolve_data] addresses of data
    symbols (always external: the assembler only knows code). *)
val assemble :
  ?base:int ->
  ?resolve_code:(string -> int option) ->
  ?resolve_data:(string -> int option) ->
  item list ->
  (program, error) result

(** Code labels referenced but not defined by the item list (candidates for
    PLT entries at static-link time). *)
val undefined_labels : item list -> string list

(** Data symbols referenced by the item list. *)
val data_symbols : item list -> string list

(** [defined_labels items] in definition order. *)
val defined_labels : item list -> string list
