lib/vmisa/asm.mli: Format Hashtbl Instr
