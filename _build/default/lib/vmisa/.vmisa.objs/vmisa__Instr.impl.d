lib/vmisa/instr.ml: Fmt
