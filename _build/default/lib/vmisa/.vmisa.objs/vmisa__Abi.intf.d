lib/vmisa/abi.mli:
