lib/vmisa/abi.ml:
