lib/vmisa/encode.mli: Buffer Format Instr
