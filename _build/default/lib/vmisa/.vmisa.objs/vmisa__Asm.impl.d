lib/vmisa/asm.ml: Array Buffer Encode Fmt Hashtbl Instr List Result Set String
