lib/vmisa/disasm.mli: Encode Format Instr
