lib/vmisa/encode.ml: Buffer Char Fmt Instr Int64 List Result String
