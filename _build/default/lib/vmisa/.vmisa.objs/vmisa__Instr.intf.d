lib/vmisa/instr.mli: Format
