lib/vmisa/disasm.ml: Encode Fmt Instr List String
