(** The ABI shared by the code generator, the runtime and the mini libc.

    Calling convention: arguments are pushed right-to-left by the caller
    (who also pops them), the return value travels in [r0], and all of
    [r0]-[r10] are caller-saved.  On entry a function sees

    {v
      fp+2+i : argument i        (argument 0 closest to the frame)
      fp+1   : return address
      fp+0   : caller's frame pointer
      fp-1-k : local slot k
    v}

    Syscalls take the number in [r0] and arguments in [r1]-[r3], and return
    in [r0]; they are the runtime-API traps of paper §7 (the runtime wraps
    and checks them — user code never reaches the host directly). *)

val sandbox_words : int
(** Size of the data sandbox in words (a power of two, the analog of the
    paper's [0, 4GB) write region on x86-64). *)

val sandbox_mask : int
(** [sandbox_words - 1]: the AND-mask the instrumentation applies to every
    non-stack effective store address. *)

val code_base : int
(** Base byte address of the code region (disjoint from data addresses). *)

(** How the platform confines memory writes (paper §5.1, following MIP):
    [Segment] is the x86-32 design — hardware memory segmentation bounds
    every access, so stores need no extra instructions (the VM's bounds
    checks play the segment hardware); [Mask] is the x86-64 design —
    no segmentation, so the instrumentation masks every non-stack store
    address into the sandbox with an explicit AND. *)
type sandbox = Mask | Segment

val sandbox_name : sandbox -> string

val sys_exit : int (** [r1] = status *)

val sys_print_int : int (** [r1] = value *)

val sys_print_str : int (** [r1] = data address of NUL-terminated string *)

val sys_sbrk : int (** [r1] = words; returns base data address *)

val sys_dlopen : int
(** [r1] = address of the module-name string; dynamically links the named
    registered module, returns 0 on success *)

val sys_dlsym : int
(** [r1] = address of a symbol-name string; returns the code address of the
    symbol or 0 *)

val sys_cycles : int (** returns instructions retired so far *)

val sys_rand : int (** returns the next deterministic pseudo-random word *)

val name_of_syscall : int -> string option
