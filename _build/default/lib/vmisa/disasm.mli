(** Linear-sweep disassembler over an encoded byte image. *)

(** [disassemble ?base image] decodes the image sequentially, returning
    [(address, instruction)] pairs. Addresses are absolute (offset + base).
    Stops at the first undecodable byte, returning what was decoded and the
    faulting address. *)
val disassemble :
  ?base:int -> string -> (int * Instr.t) list * (Encode.decode_error * int) option

(** Render a listing with addresses, for diagnostics. *)
val pp_listing : Format.formatter -> (int * Instr.t) list -> unit
