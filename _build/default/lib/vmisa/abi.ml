let sandbox_words = 1 lsl 20
let sandbox_mask = sandbox_words - 1
let code_base = 0x10000

type sandbox = Mask | Segment

let sandbox_name = function Mask -> "mask" | Segment -> "segment"

let sys_exit = 0
let sys_print_int = 1
let sys_print_str = 2
let sys_sbrk = 3
let sys_dlopen = 4
let sys_dlsym = 5
let sys_cycles = 6
let sys_rand = 7

let name_of_syscall = function
  | 0 -> Some "exit"
  | 1 -> Some "print_int"
  | 2 -> Some "print_str"
  | 3 -> Some "sbrk"
  | 4 -> Some "dlopen"
  | 5 -> Some "dlsym"
  | 6 -> Some "cycles"
  | 7 -> Some "rand"
  | _ -> None
