(** Byte-level encoding and decoding of {!Instr.t}.

    The encoding is variable-length (1 to 11 bytes).  Decoding can be
    attempted at any byte offset, which is exactly what the ROP-gadget
    scanner and the verifier's disassembler need. *)

(** [encode buf i] appends [i]'s encoding to [buf]. *)
val encode : Buffer.t -> Instr.t -> unit

(** [encode_all instrs] is the byte image of the instruction sequence. *)
val encode_all : Instr.t list -> string

type decode_error =
  | Bad_opcode of int
  | Bad_register of int
  | Bad_binop of int
  | Bad_cond of int
  | Truncated

val pp_decode_error : Format.formatter -> decode_error -> unit

(** [decode code off] decodes one instruction at byte offset [off];
    on success, returns the instruction and the offset just past it. *)
val decode : string -> int -> (Instr.t * int, decode_error) result

(** [decode_all code] decodes the whole image sequentially from offset 0.
    Returns the instructions paired with their byte offsets, or the error
    and the offset at which it occurred. *)
val decode_all : string -> ((Instr.t * int) list, decode_error * int) result
