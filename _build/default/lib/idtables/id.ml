type t = int

let max_ecn = 1 lsl 14
let max_version = 1 lsl 14

let invalid = 0

(* Bit layout (LSB = bit 0):
   bit 0        reserved, = 1
   bits 1-7     version low 7 bits
   bit 8        reserved, = 0
   bits 9-15    version high 7 bits
   bit 16       reserved, = 0
   bits 17-23   ECN low 7 bits
   bit 24       reserved, = 0
   bits 25-31   ECN high 7 bits *)

let pack ~ecn ~version =
  if ecn < 0 || ecn >= max_ecn then
    invalid_arg (Printf.sprintf "Id.pack: ECN %d out of range" ecn);
  if version < 0 || version >= max_version then
    invalid_arg (Printf.sprintf "Id.pack: version %d out of range" version);
  1
  lor ((version land 0x7f) lsl 1)
  lor (((version lsr 7) land 0x7f) lsl 9)
  lor ((ecn land 0x7f) lsl 17)
  lor (((ecn lsr 7) land 0x7f) lsl 25)

let reserved_mask = 0x01010101
let reserved_value = 0x00000001

let valid id = id land reserved_mask = reserved_value

let ecn id = ((id lsr 17) land 0x7f) lor (((id lsr 25) land 0x7f) lsl 7)

let version id = ((id lsr 1) land 0x7f) lor (((id lsr 9) land 0x7f) lsl 7)

let same_version a b = a land 0xffff = b land 0xffff

let byte id k = (id lsr (8 * k)) land 0xff

let of_bytes b0 b1 b2 b3 =
  (b0 land 0xff) lor ((b1 land 0xff) lsl 8) lor ((b2 land 0xff) lsl 16)
  lor ((b3 land 0xff) lsl 24)

let pp ppf id =
  if valid id then Fmt.pf ppf "ID(ecn=%d, ver=%d)" (ecn id) (version id)
  else Fmt.pf ppf "ID(invalid 0x%08x)" (id land 0xffffffff)
