module type S = sig
  type t

  val name : string
  val create : code_base:int -> capacity:int -> bary_slots:int -> t
  val check : t -> bary_index:int -> target:int -> bool
  val update : t -> tary:(int * int) list -> bary:(int * int) list -> unit
end

(* Shared plain-array table storage for the lock-based baselines: Tary slot
   per 4-byte-aligned code address, holding [ecn + 1] ([0] = not a target);
   Bary slot holding [ecn + 1]. Synchronization is the module's business. *)
module Plain = struct
  type t = {
    code_base : int;
    tary : int array;
    bary : int array;
  }

  let create ~code_base ~capacity ~bary_slots =
    {
      code_base;
      tary = Array.make (max ((capacity + 3) / 4) 1) 0;
      bary = Array.make (max bary_slots 1) 0;
    }

  let tary_get t addr =
    let off = addr - t.code_base in
    if off < 0 || off mod 4 <> 0 then 0
    else begin
      let k = off / 4 in
      if k >= Array.length t.tary then 0 else t.tary.(k)
    end

  let bary_get t idx =
    if idx < 0 || idx >= Array.length t.bary then 0 else t.bary.(idx)

  let install t ~tary ~bary =
    Array.fill t.tary 0 (Array.length t.tary) 0;
    Array.fill t.bary 0 (Array.length t.bary) 0;
    List.iter
      (fun (addr, ecn) ->
        let off = addr - t.code_base in
        if off >= 0 && off mod 4 = 0 && off / 4 < Array.length t.tary then
          t.tary.(off / 4) <- ecn + 1)
      tary;
    List.iter
      (fun (idx, ecn) ->
        if idx >= 0 && idx < Array.length t.bary then t.bary.(idx) <- ecn + 1)
      bary

  (* The unsynchronized check logic all lock-based baselines share. *)
  let plain_check t ~bary_index ~target =
    let bid = bary_get t bary_index in
    let tid = tary_get t target in
    tid <> 0 && bid = tid
end

module Tml = struct
  type t = { glb : int Atomic.t; tables : Plain.t }

  let name = "tml"

  let create ~code_base ~capacity ~bary_slots =
    { glb = Atomic.make 0; tables = Plain.create ~code_base ~capacity ~bary_slots }

  (* TML reader: sample the sequence lock (must be even), run the reads,
     then validate that the lock did not move; otherwise retry. *)
  let check t ~bary_index ~target =
    let rec attempt () =
      let s = Atomic.get t.glb in
      if s land 1 = 1 then attempt ()
      else begin
        let ok = Plain.plain_check t.tables ~bary_index ~target in
        if Atomic.get t.glb = s then ok else attempt ()
      end
    in
    attempt ()

  (* TML writer: CAS the lock to odd, write, bump to the next even value. *)
  let update t ~tary ~bary =
    let rec acquire () =
      let s = Atomic.get t.glb in
      if s land 1 = 1 || not (Atomic.compare_and_set t.glb s (s + 1)) then begin
        Domain.cpu_relax ();
        acquire ()
      end
      else s + 1
    in
    let odd = acquire () in
    Plain.install t.tables ~tary ~bary;
    Atomic.set t.glb (odd + 1)
end

module Rwlock = struct
  (* One atomic word: -1 = writer holds it, n >= 0 = n active readers. *)
  type t = { state : int Atomic.t; tables : Plain.t }

  let name = "rwlock"

  let create ~code_base ~capacity ~bary_slots =
    { state = Atomic.make 0; tables = Plain.create ~code_base ~capacity ~bary_slots }

  let rec read_acquire t =
    let s = Atomic.get t.state in
    if s < 0 || not (Atomic.compare_and_set t.state s (s + 1)) then begin
      Domain.cpu_relax ();
      read_acquire t
    end

  let read_release t = ignore (Atomic.fetch_and_add t.state (-1))

  let rec write_acquire t =
    if not (Atomic.compare_and_set t.state 0 (-1)) then begin
      Domain.cpu_relax ();
      write_acquire t
    end

  let write_release t = Atomic.set t.state 0

  let check t ~bary_index ~target =
    read_acquire t;
    let ok = Plain.plain_check t.tables ~bary_index ~target in
    read_release t;
    ok

  let update t ~tary ~bary =
    write_acquire t;
    Plain.install t.tables ~tary ~bary;
    write_release t
end

module Cas_mutex = struct
  type t = { lock : int Atomic.t; tables : Plain.t }

  let name = "mutex"

  let create ~code_base ~capacity ~bary_slots =
    { lock = Atomic.make 0; tables = Plain.create ~code_base ~capacity ~bary_slots }

  let rec acquire t =
    if not (Atomic.compare_and_set t.lock 0 1) then begin
      Domain.cpu_relax ();
      acquire t
    end

  let release t = Atomic.set t.lock 0

  let check t ~bary_index ~target =
    acquire t;
    let ok = Plain.plain_check t.tables ~bary_index ~target in
    release t;
    ok

  let update t ~tary ~bary =
    acquire t;
    Plain.install t.tables ~tary ~bary;
    release t
end

module Mcfi = struct
  type t = Tables.t

  let name = "mcfi"

  let create ~code_base ~capacity ~bary_slots =
    Tables.create ~code_base ~capacity ~bary_slots ()

  let check t ~bary_index ~target = Tx.check_fast t ~bary_index ~target

  let update t ~tary ~bary = ignore (Tx.update t ~tary ~bary)
end
