(** MCFI's 32-bit ID encoding (paper Fig. 2).

    An ID packs, into one 4-byte word:
    - four {e reserved bits}: the least-significant bit of each byte, with
      values 0,0,0,1 from high to low byte — so a read at an address that is
      not 4-byte aligned yields a word whose bit 0 is (almost surely) not 1
      and fails the validity test;
    - a 14-bit {e equivalence-class number} (ECN) in the upper two bytes;
    - a 14-bit {e version number} in the lower two bytes, used by the
      transaction protocol to detect in-flight CFG updates.

    Keeping metadata (version) and data (ECN) in a single word is precisely
    what lets a check transaction be one load + one compare — the design
    decision the TML micro-benchmark (§8.1) evaluates. *)

type t = int
(** A packed ID. Only the low 32 bits are meaningful. *)

val max_ecn : int
(** [16384]: the number of expressible equivalence classes, 2^14. *)

val max_version : int
(** [16384]: the number of expressible versions, 2^14. *)

val invalid : t
(** The all-zero word: what an unused Tary slot holds. Not [valid]. *)

(** [pack ~ecn ~version] builds a valid ID.
    Raises [Invalid_argument] if either field is out of range. *)
val pack : ecn:int -> version:int -> t

(** [valid id] checks the four reserved bits (0,0,0,1 from high to low
    byte). Every ID built by [pack] is valid; words assembled from
    misaligned reads are rejected with probability 15/16 per the paper's
    argument, and always rejected when neighbouring slots hold valid IDs or
    zeros (bit 0 of the composed word is then a reserved-0 bit). *)
val valid : t -> bool

(** [ecn id] extracts the equivalence-class number of a valid ID. *)
val ecn : t -> int

(** [version id] extracts the version number of a valid ID. *)
val version : t -> int

(** [same_version a b] compares the low 16 bits — the single-instruction
    version check ([cmpw %di, %si]) of the check transaction. *)
val same_version : t -> t -> bool

(** [byte id k] is byte [k] (0 = least significant) of the word. *)
val byte : t -> int -> int

(** [of_bytes b0 b1 b2 b3] reassembles a word from bytes (little-endian) —
    used to model misaligned table reads. *)
val of_bytes : int -> int -> int -> int -> t

val pp : Format.formatter -> t -> unit
