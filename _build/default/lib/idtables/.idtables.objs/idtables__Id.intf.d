lib/idtables/id.mli: Format
