lib/idtables/tx_baselines.mli:
