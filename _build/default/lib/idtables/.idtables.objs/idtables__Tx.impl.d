lib/idtables/tx.ml: Array Fmt Id List Printf Tables
