lib/idtables/tables.mli: Id
