lib/idtables/tables.ml: Array Atomic Fun Id Mutex Option Printf
