lib/idtables/tx.mli: Format Tables
