lib/idtables/id.ml: Fmt Printf
