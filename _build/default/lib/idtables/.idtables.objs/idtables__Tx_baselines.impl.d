lib/idtables/tx_baselines.ml: Array Atomic Domain List Tables Tx
