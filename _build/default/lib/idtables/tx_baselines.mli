(** Baseline synchronization schemes for table accesses (paper §8.1).

    The paper micro-benchmarks its custom transaction against three
    alternatives and reports normalized check-transaction times of
    MCFI = 1, TML ≈ 2, RW-lock ≈ 29, mutex ≈ 22.  Each baseline here
    implements the same abstract behaviour — check a (branch slot, target
    address) pair against the current CFG, atomically install a new CFG —
    with its own synchronization:

    - {!Tml}: Transactional Mutex Locks (Dalessandro et al.): a global
      sequence lock; readers re-read it around the table reads, so metadata
      (the sequence word) is separate from data — two extra loads per check,
      the cost MCFI's packed IDs avoid.
    - {!Rwlock}: a reader-preference readers–writer lock; every check does
      two atomic read-modify-writes (the LOCK-prefixed instructions the
      paper blames for the 29x).
    - {!Cas_mutex}: a compare-and-swap spinlock held for the whole check.

    All four (including {!Tx}) decide Pass/Violation identically on
    quiescent tables — property-tested in [test_tx]. *)

module type S = sig
  type t

  val name : string
  val create : code_base:int -> capacity:int -> bary_slots:int -> t

  (** [check t ~bary_index ~target] is [true] iff the transfer is allowed
      by the currently installed CFG. *)
  val check : t -> bary_index:int -> target:int -> bool

  (** Atomically install a new CFG. [tary]: target address -> ECN;
      [bary]: branch slot -> ECN. *)
  val update : t -> tary:(int * int) list -> bary:(int * int) list -> unit
end

module Tml : S
module Rwlock : S
module Cas_mutex : S

(** MCFI's own transactions, wrapped in the same signature for the
    micro-benchmark harness. *)
module Mcfi : S
