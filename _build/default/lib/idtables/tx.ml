type outcome = Pass | Violation | Retries_exhausted

let pp_outcome ppf = function
  | Pass -> Fmt.string ppf "pass"
  | Violation -> Fmt.string ppf "violation"
  | Retries_exhausted -> Fmt.string ppf "retries-exhausted"

let rec check_fast t ~bary_index ~target =
  let bid = Tables.bary_read t bary_index in
  let tid = Tables.tary_read t target in
  if bid = tid then true
  else if not (Id.valid tid) then false
  else if not (Id.same_version bid tid) then check_fast t ~bary_index ~target
  else false

let check ?max_retries ?(on_retry = fun () -> ()) t ~bary_index ~target =
  let rec attempt budget =
    let bid = Tables.bary_read t bary_index in
    let tid = Tables.tary_read t target in
    if bid = tid then Pass
    else if not (Id.valid tid) then Violation
    else if not (Id.same_version bid tid) then begin
      on_retry ();
      match budget with
      | Some 0 -> Retries_exhausted
      | Some n -> attempt (Some (n - 1))
      | None -> attempt None
    end
    else Violation
  in
  attempt max_retries

exception Version_space_exhausted

(* The body of an update transaction; caller holds the update lock. *)
let update_locked ~got_update t ~tary ~bary =
  (* The ABA guard (paper §5.2): 2^14 updates with no intervening
     quiescence point could wrap the version space during a still-running
     check transaction; refuse rather than risk it. *)
  if Tables.updates_since_quiesce t >= Id.max_version - 1 then
    raise Version_space_exhausted;
  Tables.count_update t;
  let version = (Tables.version t + 1) mod Id.max_version in
  Tables.set_version t version;
  (* Phase 1: construct the new Tary image, then publish it slot by slot
     (each publish is an atomic, sequentially consistent write — the
     movnti-with-barrier analog). *)
  let base = Tables.code_base t and size = Tables.code_size t in
  let slots = size / 4 in
  let new_tary = Array.make slots Id.invalid in
  List.iter
    (fun (addr, ecn) ->
      let off = addr - base in
      if off < 0 || off >= size || off mod 4 <> 0 then
        invalid_arg
          (Printf.sprintf "Tx.update: bad Tary target address 0x%x" addr);
      new_tary.(off / 4) <- Id.pack ~ecn ~version)
    tary;
  for k = 0 to slots - 1 do
    Tables.tary_set t (base + (4 * k)) new_tary.(k)
  done;
  (* the write barrier between the two phases (paper Fig. 3 line 5) *)
  Tables.publish t;
  got_update ();
  (* Phase 2: publish the new Bary table. *)
  let new_bary = Array.make (Tables.bary_slots t) Id.invalid in
  List.iter
    (fun (idx, ecn) ->
      if idx < 0 || idx >= Array.length new_bary then
        invalid_arg (Printf.sprintf "Tx.update: bad Bary slot %d" idx);
      new_bary.(idx) <- Id.pack ~ecn ~version)
    bary;
  Array.iteri (fun idx id -> Tables.bary_set t idx id) new_bary;
  Tables.publish t;
  version

let update ?(got_update = fun () -> ()) t ~tary ~bary =
  Tables.with_update_lock t (fun () -> update_locked ~got_update t ~tary ~bary)

let refresh t =
  Tables.with_update_lock t (fun () ->
      (* Snapshot under the lock so concurrent refreshes serialize. *)
      let tary =
        List.map (fun (addr, id) -> (addr, Id.ecn id)) (Tables.tary_entries t)
      in
      let bary =
        List.map (fun (idx, id) -> (idx, Id.ecn id)) (Tables.bary_entries t)
      in
      update_locked ~got_update:(fun () -> ()) t ~tary ~bary)
