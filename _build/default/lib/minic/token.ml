(* Lexical tokens of MiniC. *)

type t =
  | INT_LIT of int
  | CHAR_LIT of char
  | STR_LIT of string
  | IDENT of string
  (* keywords *)
  | KINT | KCHAR | KVOID | KSTRUCT | KUNION | KTYPEDEF | KEXTERN
  | KIF | KELSE | KWHILE | KFOR | KRETURN | KBREAK | KCONTINUE
  | KSWITCH | KCASE | KDEFAULT | KSIZEOF
  (* punctuation and operators *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON | DOT | ARROW | ELLIPSIS | QUESTION
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LT | LE | GT | GE | EQEQ | NE | ASSIGN
  | ANDAND | OROR | SHL | SHR
  | EOF

let keyword_of_string = function
  | "int" -> Some KINT
  | "char" -> Some KCHAR
  | "void" -> Some KVOID
  | "struct" -> Some KSTRUCT
  | "union" -> Some KUNION
  | "typedef" -> Some KTYPEDEF
  | "extern" -> Some KEXTERN
  | "if" -> Some KIF
  | "else" -> Some KELSE
  | "while" -> Some KWHILE
  | "for" -> Some KFOR
  | "return" -> Some KRETURN
  | "break" -> Some KBREAK
  | "continue" -> Some KCONTINUE
  | "switch" -> Some KSWITCH
  | "case" -> Some KCASE
  | "default" -> Some KDEFAULT
  | "sizeof" -> Some KSIZEOF
  | _ -> None

let to_string = function
  | INT_LIT n -> string_of_int n
  | CHAR_LIT c -> Printf.sprintf "'%c'" c
  | STR_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KINT -> "int" | KCHAR -> "char" | KVOID -> "void"
  | KSTRUCT -> "struct" | KUNION -> "union" | KTYPEDEF -> "typedef"
  | KEXTERN -> "extern" | KIF -> "if" | KELSE -> "else"
  | KWHILE -> "while" | KFOR -> "for" | KRETURN -> "return"
  | KBREAK -> "break" | KCONTINUE -> "continue" | KSWITCH -> "switch"
  | KCASE -> "case" | KDEFAULT -> "default" | KSIZEOF -> "sizeof"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | COLON -> ":" | DOT -> "." | ARROW -> "->" | ELLIPSIS -> "..."
  | QUESTION -> "?" | PLUS -> "+" | MINUS -> "-" | STAR -> "*"
  | SLASH -> "/" | PERCENT -> "%" | AMP -> "&" | PIPE -> "|"
  | CARET -> "^" | TILDE -> "~" | BANG -> "!" | LT -> "<" | LE -> "<="
  | GT -> ">" | GE -> ">=" | EQEQ -> "==" | NE -> "!=" | ASSIGN -> "="
  | ANDAND -> "&&" | OROR -> "||" | SHL -> "<<" | SHR -> ">>"
  | EOF -> "<eof>"

let pp ppf t = Fmt.string ppf (to_string t)
