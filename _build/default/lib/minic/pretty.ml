open Ast

(* Declarators print inside-out; [pp_declarator ty name] renders "ty name"
   with C's pointer/array/function syntax. *)
let rec pp_declarator ppf (t, name) =
  match t with
  | Tptr (Tfun ft) ->
    (* the common case gets the familiar "ret ( *name)(params)" syntax *)
    Fmt.pf ppf "%a (*%s)(%a)" pp_base ft.ret name pp_params ft
  | Tarray (Tptr (Tfun ft), n) ->
    Fmt.pf ppf "%a (*%s[%d])(%a)" pp_base ft.ret name n pp_params ft
  | Tarray (elt, n) -> Fmt.pf ppf "%a[%d]" pp_declarator (elt, name) n
  | Tptr inner -> pp_declarator ppf (inner, "*" ^ name)
  | t -> Fmt.pf ppf "%a %s" pp_base t name

and pp_base ppf = function
  | Tvoid -> Fmt.string ppf "void"
  | Tint -> Fmt.string ppf "int"
  | Tchar -> Fmt.string ppf "char"
  | Tstruct s -> Fmt.pf ppf "struct %s" s
  | Tunion s -> Fmt.pf ppf "union %s" s
  | Tnamed s -> Fmt.string ppf s
  | Tptr (Tfun ft) -> Fmt.pf ppf "%a (*)(%a)" pp_base ft.ret pp_params ft
  | Tptr inner -> Fmt.pf ppf "%a*" pp_base inner
  | Tfun ft -> Fmt.pf ppf "%a (*)(%a)" pp_base ft.ret pp_params ft
  | Tarray (t, n) -> Fmt.pf ppf "%a[%d]" pp_base t n

and pp_params ppf (ft : fun_ty) =
  if ft.params = [] && not ft.varargs then Fmt.string ppf "void"
  else begin
    Fmt.(list ~sep:(any ", ") pp_base) ppf ft.params;
    if ft.varargs then
      Fmt.pf ppf "%s..." (if ft.params = [] then "" else ", ")
  end

let binop_token = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"

let escape_char c =
  match c with
  | '\n' -> "\\n" | '\t' -> "\\t" | '\r' -> "\\r" | '\000' -> "\\0"
  | '\\' -> "\\\\" | '\'' -> "\\'" | c -> String.make 1 c

let escape_string s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\'' -> "'"
         | c -> escape_char c)
       (List.init (String.length s) (String.get s)))

(* Fully parenthesized expressions: correct by construction, and the
   parser normalizes the parentheses away on the round trip. *)
let rec pp_expr ppf e =
  match e.edesc with
  | Eint n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.pf ppf "%d" n
  | Echar c -> Fmt.pf ppf "'%s'" (escape_char c)
  | Estr s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | Evar v -> Fmt.string ppf v
  | Eunop (Neg, a) -> Fmt.pf ppf "(-%a)" pp_expr a
  | Eunop (Lognot, a) -> Fmt.pf ppf "(!%a)" pp_expr a
  | Eunop (Bitnot, a) -> Fmt.pf ppf "(~%a)" pp_expr a
  | Ebinop (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_token op) pp_expr b
  | Eassign (l, r) -> Fmt.pf ppf "(%a = %a)" pp_expr l pp_expr r
  | Econd (c, a, b) ->
    Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Ecall (f, args) ->
    Fmt.pf ppf "%a(%a)" pp_callee f Fmt.(list ~sep:(any ", ") pp_expr) args
  | Ecast (t, a) -> Fmt.pf ppf "((%a) %a)" pp_base t pp_expr a
  | Eaddr a -> Fmt.pf ppf "(&%a)" pp_expr a
  | Ederef a -> Fmt.pf ppf "(*%a)" pp_expr a
  | Efield (a, f) -> Fmt.pf ppf "%a.%s" pp_postfix a f
  | Earrow (a, f) -> Fmt.pf ppf "%a->%s" pp_postfix a f
  | Eindex (a, i) -> Fmt.pf ppf "%a[%a]" pp_postfix a pp_expr i
  | Esizeof t -> Fmt.pf ppf "sizeof(%a)" pp_base t

and pp_callee ppf e =
  match e.edesc with
  | Evar v -> Fmt.string ppf v
  | _ -> Fmt.pf ppf "(%a)" pp_expr e

and pp_postfix ppf e =
  match e.edesc with
  | Evar v -> Fmt.string ppf v
  | Efield _ | Earrow _ | Eindex _ | Ecall _ -> pp_expr ppf e
  | _ -> Fmt.pf ppf "(%a)" pp_expr e

let rec pp_stmt ppf s =
  match s.sdesc with
  | Sexpr e -> Fmt.pf ppf "@[%a;@]" pp_expr e
  | Sdecl (t, name, init) -> begin
    match init with
    | Some e -> Fmt.pf ppf "@[%a = %a;@]" pp_declarator (t, name) pp_expr e
    | None -> Fmt.pf ppf "@[%a;@]" pp_declarator (t, name)
  end
  | Sif (c, a, b) -> begin
    match b with
    | Some ({ sdesc = Sif _; _ } as elif) ->
      (* keep else-if chains flat, so the round trip does not introduce a
         wrapping block *)
      Fmt.pf ppf "@[<v>if (%a) %a else %a@]" pp_expr c pp_block_like a
        pp_stmt elif
    | Some b ->
      Fmt.pf ppf "@[<v>if (%a) %a else %a@]" pp_expr c pp_block_like a
        pp_block_like b
    | None -> Fmt.pf ppf "@[<v>if (%a) %a@]" pp_expr c pp_block_like a
  end
  | Swhile (c, body) ->
    Fmt.pf ppf "@[<v>while (%a) %a@]" pp_expr c pp_block_like body
  | Sfor (init, cond, step, body) ->
    Fmt.pf ppf "@[<v>for (%a %a; %a) %a@]"
      (fun ppf -> function
        | Some ({ sdesc = Sexpr e; _ } : stmt) -> Fmt.pf ppf "%a;" pp_expr e
        | Some s -> pp_stmt ppf s
        | None -> Fmt.string ppf ";")
      init
      Fmt.(option pp_expr)
      cond
      Fmt.(option pp_expr)
      step pp_block_like body
  | Sreturn (Some e) -> Fmt.pf ppf "return %a;" pp_expr e
  | Sreturn None -> Fmt.string ppf "return;"
  | Sblock body ->
    Fmt.pf ppf "@[<v>{@;<0 2>@[<v>%a@]@,}@]"
      Fmt.(list ~sep:(any "@,") pp_stmt)
      body
  | Sbreak -> Fmt.string ppf "break;"
  | Scontinue -> Fmt.string ppf "continue;"
  | Sswitch (e, cases, default) ->
    let pp_case ppf c =
      Fmt.pf ppf "@[<v>%a@;<0 2>@[<v>%a@]@]"
        Fmt.(list ~sep:(any " ") (fun ppf v -> Fmt.pf ppf "case %d:" v))
        c.cvalues
        Fmt.(list ~sep:(any "@,") pp_stmt)
        c.cbody
    in
    Fmt.pf ppf "@[<v>switch (%a) {@,%a%a@,}@]" pp_expr e
      Fmt.(list ~sep:(any "@,") pp_case)
      cases
      (fun ppf -> function
        | Some body ->
          Fmt.pf ppf "@,@[<v>default:@;<0 2>@[<v>%a@]@]"
            Fmt.(list ~sep:(any "@,") pp_stmt)
            body
        | None -> ())
      default

and pp_block_like ppf s =
  match s.sdesc with
  | Sblock _ -> pp_stmt ppf s
  | _ -> Fmt.pf ppf "@[<v>{@;<0 2>@[<v>%a@]@,}@]" pp_stmt s

let pp_fields ppf fields =
  Fmt.(list ~sep:(any "@,") (fun ppf (name, t) ->
           Fmt.pf ppf "@[%a;@]" pp_declarator (t, name)))
    ppf fields

let pp_decl ppf = function
  | Dstruct (name, fields) ->
    Fmt.pf ppf "@[<v>struct %s {@;<0 2>@[<v>%a@]@,};@]" name pp_fields fields
  | Dunion (name, fields) ->
    Fmt.pf ppf "@[<v>union %s {@;<0 2>@[<v>%a@]@,};@]" name pp_fields fields
  | Dtypedef (name, t) -> Fmt.pf ppf "@[typedef %a;@]" pp_declarator (t, name)
  | Dglobal (t, name, init) -> begin
    match init with
    | None -> Fmt.pf ppf "@[%a;@]" pp_declarator (t, name)
    | Some (Iexpr e) ->
      Fmt.pf ppf "@[%a = %a;@]" pp_declarator (t, name) pp_expr e
    | Some (Ilist es) ->
      Fmt.pf ppf "@[%a = { %a };@]" pp_declarator (t, name)
        Fmt.(list ~sep:(any ", ") pp_expr)
        es
  end
  | Dextern_fun (name, ft) ->
    Fmt.pf ppf "@[extern %a %s(%a);@]" pp_base ft.ret name pp_params ft
  | Dextern_var (name, t) ->
    Fmt.pf ppf "@[extern %a;@]" pp_declarator (t, name)
  | Dfun f ->
    let pp_param ppf (name, t) = pp_declarator ppf (t, name) in
    Fmt.pf ppf "@[<v>%a %s(%a%s) {@;<0 2>@[<v>%a@]@,}@]" pp_base f.fret
      f.fname
      Fmt.(list ~sep:(any ", ") pp_param)
      f.fparams
      (if f.fvarargs then ", ..." else "")
      Fmt.(list ~sep:(any "@,") pp_stmt)
      f.fbody

let pp_program ppf prog =
  Fmt.pf ppf "@[<v>%a@]@."
    Fmt.(list ~sep:(any "@,@,") pp_decl)
    prog.pdecls

let to_string prog = Fmt.str "%a" pp_program prog
