(** Hand-written lexer for MiniC.

    Handles [//] and [/* */] comments, decimal and hexadecimal integer
    literals, character literals with the usual escapes, and string
    literals. *)

exception Error of string * Ast.loc

(** [tokenize src] is the token stream with source locations, ending with
    [Token.EOF]. Raises {!Error} on malformed input. *)
val tokenize : string -> (Token.t * Ast.loc) list
