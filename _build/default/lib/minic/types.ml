open Ast

exception Unknown_type of string

type env = {
  structs : (string, (string * ty) list) Hashtbl.t;
  unions : (string, (string * ty) list) Hashtbl.t;
  typedefs : (string, ty) Hashtbl.t;
}

let empty =
  { structs = Hashtbl.create 1; unions = Hashtbl.create 1;
    typedefs = Hashtbl.create 1 }

let create () =
  { structs = Hashtbl.create 16; unions = Hashtbl.create 16;
    typedefs = Hashtbl.create 16 }

let rec resolve env = function
  | Tnamed name -> begin
    match Hashtbl.find_opt env.typedefs name with
    | Some t -> resolve env t
    | None -> raise (Unknown_type name)
  end
  | t -> t

let struct_fields env name = Hashtbl.find_opt env.structs name
let union_fields env name = Hashtbl.find_opt env.unions name

let add_def kind tbl name body =
  match Hashtbl.find_opt tbl name with
  | Some existing when existing <> body ->
    invalid_arg (Printf.sprintf "conflicting definitions of %s %s" kind name)
  | _ -> Hashtbl.replace tbl name body

let merge envs =
  let out = create () in
  List.iter
    (fun e ->
      Hashtbl.iter (fun name body -> add_def "struct" out.structs name body) e.structs;
      Hashtbl.iter (fun name body -> add_def "union" out.unions name body) e.unions;
      Hashtbl.iter (fun name body -> add_def "typedef" out.typedefs name body) e.typedefs)
    envs;
  out

let of_programs programs =
  let env = create () in
  List.iter
    (fun { pdecls; _ } ->
      List.iter
        (function
          | Dstruct (name, fields) -> add_def "struct" env.structs name fields
          | Dunion (name, fields) -> add_def "union" env.unions name fields
          | Dtypedef (name, t) -> add_def "typedef" env.typedefs name t
          | Dglobal _ | Dextern_fun _ | Dextern_var _ | Dfun _ -> ())
        pdecls)
    programs;
  env

let rec sizeof env t =
  match resolve env t with
  | Tvoid -> 0
  | Tint | Tchar | Tptr _ | Tfun _ -> 1
  | Tarray (elt, n) -> n * sizeof env elt
  | Tstruct name -> begin
    match struct_fields env name with
    | Some fields ->
      List.fold_left (fun acc (_, ft) -> acc + sizeof env ft) 0 fields
    | None -> raise (Unknown_type ("struct " ^ name))
  end
  | Tunion name -> begin
    match union_fields env name with
    | Some fields ->
      List.fold_left (fun acc (_, ft) -> max acc (sizeof env ft)) 0 fields
    | None -> raise (Unknown_type ("union " ^ name))
  end
  | Tnamed _ -> assert false

let field_offset env fields f =
  let rec go off = function
    | [] -> None
    | (name, ft) :: rest ->
      if name = f then Some (off, ft) else go (off + sizeof env ft) rest
  in
  go 0 fields

(* Structural equivalence, coinductive in struct/union names: a pair under
   assumption is taken to be equal (recursive types through pointers). *)
let equal env t1 t2 =
  let assumed = Hashtbl.create 8 in
  let rec eq t1 t2 =
    let t1 = resolve env t1 and t2 = resolve env t2 in
    match (t1, t2) with
    | Tvoid, Tvoid | Tint, Tint | Tchar, Tchar -> true
    | Tptr a, Tptr b -> eq a b
    | Tarray (a, n), Tarray (b, m) -> n = m && eq a b
    | Tfun a, Tfun b -> eq_fun a b
    | Tstruct a, Tstruct b -> eq_composite `Struct a b
    | Tunion a, Tunion b -> eq_composite `Union a b
    | (Tvoid | Tint | Tchar | Tptr _ | Tarray _ | Tfun _ | Tstruct _
      | Tunion _ | Tnamed _), _ -> false
  and eq_fun a b =
    a.varargs = b.varargs
    && List.length a.params = List.length b.params
    && eq a.ret b.ret
    && List.for_all2 eq a.params b.params
  and eq_composite kind a b =
    if a = b then true
    else begin
      let key = (kind, a, b) in
      if Hashtbl.mem assumed key then true
      else begin
        let fields k name =
          match k with
          | `Struct -> struct_fields env name
          | `Union -> union_fields env name
        in
        match (fields kind a, fields kind b) with
        | Some fa, Some fb ->
          List.length fa = List.length fb
          && begin
            Hashtbl.add assumed key ();
            let result =
              List.for_all2
                (fun (na, ta) (nb, tb) -> na = nb && eq ta tb)
                fa fb
            in
            Hashtbl.remove assumed key;
            result
          end
        | _ -> false
      end
    end
  in
  eq t1 t2

let callable env ~site ~fn =
  if not site.varargs then equal env (Tfun site) (Tfun fn)
  else begin
    (* Paper §6: a varargs pointer type may invoke any address-taken
       function with an equivalent return type whose leading parameter
       types match the pointer's fixed parameter types. *)
    let fixed = List.length site.params in
    equal env site.ret fn.ret
    && List.length fn.params >= fixed
    && List.for_all2 (equal env)
         site.params
         (List.filteri (fun i _ -> i < fixed) fn.params)
  end

let contains_fptr env t =
  let visiting = Hashtbl.create 8 in
  let rec go t =
    match resolve env t with
    | Tptr (Tfun _) -> true
    | Tptr inner -> begin
      (* one level deep through pointers: int(**)(void) involves fptrs,
         but struct node* linked through itself terminates *)
      match resolve env inner with Tfun _ -> true | _ -> false
    end
    | Tfun _ -> true
    | Tarray (elt, _) -> go elt
    | Tstruct name -> composite `Struct name
    | Tunion name -> composite `Union name
    | Tvoid | Tint | Tchar -> false
    | Tnamed _ -> assert false
  and composite kind name =
    let key = (kind, name) in
    if Hashtbl.mem visiting key then false
    else begin
      Hashtbl.add visiting key ();
      let fields =
        match kind with
        | `Struct -> struct_fields env name
        | `Union -> union_fields env name
      in
      let result =
        match fields with
        | Some fs -> List.exists (fun (_, ft) -> go ft) fs
        | None -> false
      in
      Hashtbl.remove visiting key;
      result
    end
  in
  go t

let is_fptr env t =
  match resolve env t with
  | Tptr inner -> (match resolve env inner with Tfun _ -> true | _ -> false)
  | _ -> false

let prefix_struct env ~sub ~sup =
  match (struct_fields env sub, struct_fields env sup) with
  | Some sub_fields, Some sup_fields ->
    let rec prefix = function
      | [], _ -> true
      | _ :: _, [] -> false
      | (na, ta) :: ra, (nb, tb) :: rb ->
        na = nb && equal env ta tb && prefix (ra, rb)
    in
    List.length sup_fields <= List.length sub_fields
    && prefix (sup_fields, sub_fields)
  | _ -> false

let has_tag_field env name =
  match struct_fields env name with
  | Some ((field, ty) :: _) ->
    (match resolve env ty with
    | Tint | Tchar ->
      List.mem field [ "tag"; "type"; "kind" ]
    | _ -> false)
  | Some [] | None -> false
