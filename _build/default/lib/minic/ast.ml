(* Abstract syntax of MiniC, the C subset the reproduction compiles.

   MiniC has exactly the constructs the paper's CFG generation and C1/C2
   analysis discuss: function pointers, structs/unions (including
   function-pointer fields), typedefs, explicit casts, varargs, switch
   (compiled to jump tables), address-of, and setjmp/longjmp intrinsics.

   The [ety] field of expressions is filled in by {!Typecheck}; it is
   [Tvoid] until then. *)

type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }

let pp_loc ppf { line; col } = Fmt.pf ppf "%d:%d" line col

type ty =
  | Tvoid
  | Tint                       (* one machine word *)
  | Tchar                      (* stored in a full word; distinct type *)
  | Tptr of ty
  | Tarray of ty * int
  | Tfun of fun_ty
  | Tstruct of string          (* nominal; fields live in the environment *)
  | Tunion of string
  | Tnamed of string           (* typedef name, resolved via environment *)

and fun_ty = { params : ty list; varargs : bool; ret : ty }

type unop = Neg | Lognot | Bitnot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type expr = { edesc : edesc; eloc : loc; mutable ety : ty }

and edesc =
  | Eint of int
  | Echar of char
  | Estr of string
  | Evar of string
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eassign of expr * expr
  | Econd of expr * expr * expr
  | Ecall of expr * expr list
  | Ecast of ty * expr
  | Eaddr of expr
  | Ederef of expr
  | Efield of expr * string
  | Earrow of expr * string
  | Eindex of expr * expr
  | Esizeof of ty

type case = { cvalues : int list; cbody : stmt list }
(* MiniC switch cases do not fall through: each case body has an implicit
   break at its end (an explicit [break] is still allowed).  Dense value
   sets still compile to jump tables, which is what the CFG generator's
   indirect-jump handling needs. *)

and stmt = { sdesc : sdesc; sloc : loc }

and sdesc =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sfor of stmt option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sblock of stmt list
  | Sbreak
  | Scontinue
  | Sswitch of expr * case list * stmt list option  (* cases, default *)

type func = {
  fname : string;
  fparams : (string * ty) list;
  fvarargs : bool;
  fret : ty;
  fbody : stmt list;
  floc : loc;
}

type init = Iexpr of expr | Ilist of expr list

type decl =
  | Dstruct of string * (string * ty) list
  | Dunion of string * (string * ty) list
  | Dtypedef of string * ty
  | Dglobal of ty * string * init option
  | Dextern_fun of string * fun_ty
  | Dextern_var of string * ty
  | Dfun of func

type program = { pname : string; pdecls : decl list }

let fun_ty_of_func f =
  { params = List.map snd f.fparams; varargs = f.fvarargs; ret = f.fret }

let mk_expr ?(loc = no_loc) edesc = { edesc; eloc = loc; ety = Tvoid }

let rec pp_ty ppf = function
  | Tvoid -> Fmt.string ppf "void"
  | Tint -> Fmt.string ppf "int"
  | Tchar -> Fmt.string ppf "char"
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t
  | Tarray (t, n) -> Fmt.pf ppf "%a[%d]" pp_ty t n
  | Tfun ft -> pp_fun_ty ppf ft
  | Tstruct s -> Fmt.pf ppf "struct %s" s
  | Tunion s -> Fmt.pf ppf "union %s" s
  | Tnamed s -> Fmt.string ppf s

and pp_fun_ty ppf { params; varargs; ret } =
  let pp_params ppf () =
    Fmt.(list ~sep:(any ", ") pp_ty) ppf params;
    if varargs then
      Fmt.pf ppf "%s..." (if params = [] then "" else ", ")
  in
  Fmt.pf ppf "%a(*)(%a)" pp_ty ret pp_params ()

let ty_to_string t = Fmt.str "%a" pp_ty t
