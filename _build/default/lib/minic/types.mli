(** Type environment and structural type equivalence (paper §6).

    The CFG generator allows an indirect call through a pointer of type
    [t*] to target any address-taken function of a type [t'] that is
    {e structurally equivalent} to [t], where named types (typedefs) are
    replaced by their definitions.  Struct and union types are nominal
    (as in C); recursion through pointers is handled coinductively. *)

type env

exception Unknown_type of string

(** Build an environment from the struct/union/typedef declarations of one
    or more translation units (linking merges module environments; a
    duplicate definition must be structurally identical). *)
val of_programs : Ast.program list -> env

val empty : env

(** [merge envs] combines module environments at link time (the paper's
    "combining type information of multiple modules during linking is a
    simple union operation").  Raises [Invalid_argument] on structurally
    conflicting duplicate definitions. *)
val merge : env list -> env

(** [resolve env t] unfolds typedef names until the head is not [Tnamed].
    Raises {!Unknown_type} on an unbound name. *)
val resolve : env -> Ast.ty -> Ast.ty

val struct_fields : env -> string -> (string * Ast.ty) list option
val union_fields : env -> string -> (string * Ast.ty) list option

(** Size in machine words (MiniC stores every scalar in one word). *)
val sizeof : env -> Ast.ty -> int

(** [field_offset env fields f] is the word offset and type of field [f]. *)
val field_offset : env -> (string * Ast.ty) list -> string -> (int * Ast.ty) option

(** Structural equivalence with named types unfolded. *)
val equal : env -> Ast.ty -> Ast.ty -> bool

(** [callable env ~site ~fn] decides whether an indirect call through a
    pointer of function type [site] may invoke a function of type [fn]:
    plain structural equivalence, except that a varargs [site] matches any
    function with an equivalent return type whose leading parameters match
    [site]'s fixed parameters (paper §6, variable-argument rule). *)
val callable : env -> site:Ast.fun_ty -> fn:Ast.fun_ty -> bool

(** Does the type transitively contain a function-pointer type (through
    struct/union fields and array elements, but not through pointers'
    pointees beyond the first level)?  This is what makes a cast "involve
    function pointer types" for condition C1. *)
val contains_fptr : env -> Ast.ty -> bool

(** [is_fptr env t] is true when [t] resolves to a pointer to function. *)
val is_fptr : env -> Ast.ty -> bool

(** [prefix_struct env ~sub ~sup]: every field of [sup] appears, same name,
    same type, as a prefix of [sub]'s fields — the physical-subtyping
    relation behind the paper's upcast (UC) false-positive elimination. *)
val prefix_struct : env -> sub:string -> sup:string -> bool

(** [has_tag_field env s]: the struct's first field is an [int] named
    "tag", "type" or "kind" — the runtime-type-tag convention behind the
    safe-downcast (DC) elimination. *)
val has_tag_field : env -> string -> bool
