(** Recursive-descent parser for MiniC.

    Uses the classic typedef-name feedback: the set of typedef names seen so
    far disambiguates declarations from expressions, and casts from
    parenthesized expressions.  Declarators follow C's inside-out reading,
    so [int ( *f)(int)], [int *x[3]] and [int ( *table[4])(int)] all parse. *)

exception Error of string * Ast.loc

(** [parse ~name src] parses a full translation unit.
    Raises {!Error} (or {!Lexer.Error}) on malformed input. *)
val parse : name:string -> string -> Ast.program

(** [parse_expr src] parses a single expression — handy in tests. *)
val parse_expr : string -> Ast.expr
