(** The condition-C1/C2 analyzer (paper §6, Tables 1 and 2).

    Type-matching CFG generation is sound for programs satisfying:
    - {b C1}: no explicit or implicit cast to or from function-pointer
      types (including casts of structs/unions containing function-pointer
      fields);
    - {b C2}: no inline assembly (MiniC has none except the compiler
      intrinsics, which are typed — C2 reports are always empty, matching
      the paper's finding of zero C2 violations in SPEC).

    Like the paper's Clang-StaticChecker-based analyzer, this one
    over-approximates violations and then eliminates recognizable
    false-positive patterns:

    - {b UC} upcast: concrete-struct* to prefix-abstract-struct*;
    - {b DC} safe downcast: abstract* to concrete* where the abstract
      struct carries a leading runtime type-tag field;
    - {b MF} malloc/free: [void*] results of [malloc] cast to a
      struct-with-fptrs, and arguments of [free];
    - {b SU} safe update: initializing/assigning a function pointer with
      an integer literal (NULL);
    - {b NF} non-function-pointer access: a cast immediately used to read
      a non-fptr field.

    Remaining cases are classified:
    - {b K1}: a function pointer receives the address of a function of an
      incompatible type (these can break the generated CFG and require
      source fixes — wrappers or type adjustments);
    - {b K2}: a function pointer value is cast to another type (to be cast
      back later); these do not require fixes. *)

type category = UC | DC | MF | SU | NF

val category_name : category -> string

type kind = K1 | K2

val kind_name : kind -> string

type violation = {
  v_loc : Ast.loc;
  v_fun : string option;  (** enclosing function, [None] at top level *)
  v_from : Ast.ty;
  v_to : Ast.ty;
  v_explicit : bool;
  v_verdict : verdict;
}

and verdict =
  | Eliminated of category  (** recognized false positive *)
  | Remaining of kind

type report = {
  violations : violation list;
  sloc : int;  (** non-blank source lines, for the Table 1 SLOC column *)
  vbe : int;   (** violations before elimination *)
  uc : int;
  dc : int;
  mf : int;
  su : int;
  nf : int;
  vae : int;   (** violations after elimination *)
  k1 : int;
  k2 : int;
}

val pp_violation : Format.formatter -> violation -> unit

(** [analyze ?source info] runs the C1 analysis over a type-checked
    translation unit ([source] is used only for the SLOC count). *)
val analyze : ?source:string -> Typecheck.tinfo -> report
