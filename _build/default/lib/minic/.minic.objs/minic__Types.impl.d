lib/minic/types.ml: Ast Hashtbl List Printf
