lib/minic/typecheck.ml: Ast Fun Hashtbl List Option Printf Types
