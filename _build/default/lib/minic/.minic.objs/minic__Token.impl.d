lib/minic/token.ml: Fmt Printf
