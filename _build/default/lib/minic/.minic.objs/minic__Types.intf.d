lib/minic/types.mli: Ast
