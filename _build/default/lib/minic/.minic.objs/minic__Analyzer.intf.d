lib/minic/analyzer.mli: Ast Format Typecheck
