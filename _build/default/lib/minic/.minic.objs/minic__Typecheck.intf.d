lib/minic/typecheck.mli: Ast Types
