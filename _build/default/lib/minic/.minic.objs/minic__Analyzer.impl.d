lib/minic/analyzer.ml: Ast Fmt Hashtbl List Obj Option String Typecheck Types
