exception Error of string * Ast.loc

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let loc st = { Ast.line = st.line; col = st.col }

let fail st msg = raise (Error (msg, loc st))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_ws st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec to_close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> fail st "unterminated comment"
      | Some _, _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_ws st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    let hstart = st.pos in
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    if st.pos = hstart then fail st "malformed hex literal";
    int_of_string ("0x" ^ String.sub st.src hstart (st.pos - hstart))
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    int_of_string (String.sub st.src start (st.pos - start))
  end

let lex_escape st =
  advance st;
  (* past the backslash *)
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> fail st (Printf.sprintf "unknown escape \\%c" c)
  | None -> fail st "unterminated escape"

let lex_char st =
  advance st;
  (* past the opening quote *)
  let c =
    match peek st with
    | Some '\\' -> lex_escape st
    | Some '\'' -> fail st "empty character literal"
    | Some c ->
      advance st;
      c
    | None -> fail st "unterminated character literal"
  in
  (match peek st with
  | Some '\'' -> advance st
  | _ -> fail st "unterminated character literal");
  c

let lex_string st =
  advance st;
  (* past the opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      Buffer.add_char buf (lex_escape st);
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
    | None -> fail st "unterminated string literal"
  in
  go ();
  Buffer.contents buf

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let next_token st =
  skip_ws st;
  let l = loc st in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_digit c -> Token.INT_LIT (lex_number st)
    | Some c when is_ident_start c -> begin
      let name = lex_ident st in
      match Token.keyword_of_string name with
      | Some kw -> kw
      | None -> Token.IDENT name
    end
    | Some '\'' -> Token.CHAR_LIT (lex_char st)
    | Some '"' -> Token.STR_LIT (lex_string st)
    | Some c ->
      advance st;
      let two tok_long tok_short expect =
        if peek st = Some expect then begin
          advance st;
          tok_long
        end
        else tok_short
      in
      (match c with
      | '(' -> Token.LPAREN
      | ')' -> Token.RPAREN
      | '{' -> Token.LBRACE
      | '}' -> Token.RBRACE
      | '[' -> Token.LBRACKET
      | ']' -> Token.RBRACKET
      | ';' -> Token.SEMI
      | ',' -> Token.COMMA
      | ':' -> Token.COLON
      | '?' -> Token.QUESTION
      | '~' -> Token.TILDE
      | '^' -> Token.CARET
      | '+' -> Token.PLUS
      | '*' -> Token.STAR
      | '/' -> Token.SLASH
      | '%' -> Token.PERCENT
      | '.' ->
        if peek st = Some '.' && peek2 st = Some '.' then begin
          advance st;
          advance st;
          Token.ELLIPSIS
        end
        else Token.DOT
      | '-' -> two Token.ARROW Token.MINUS '>'
      | '&' -> two Token.ANDAND Token.AMP '&'
      | '|' -> two Token.OROR Token.PIPE '|'
      | '!' -> two Token.NE Token.BANG '='
      | '=' -> two Token.EQEQ Token.ASSIGN '='
      | '<' ->
        if peek st = Some '<' then begin
          advance st;
          Token.SHL
        end
        else two Token.LE Token.LT '='
      | '>' ->
        if peek st = Some '>' then begin
          advance st;
          Token.SHR
        end
        else two Token.GE Token.GT '='
      | c -> fail st (Printf.sprintf "unexpected character %C" c))
  in
  (tok, l)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let (tok, _) as t = next_token st in
    if tok = Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
