(** Pretty-printer: MiniC ASTs back to concrete syntax.

    The output re-parses to a structurally equal AST (locations and
    [ety] annotations aside) — property-tested in the test suite, and
    the backbone of the random-program differential tests. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit
val pp_program : Format.formatter -> Ast.program -> unit

(** [to_string prog] renders a full translation unit. *)
val to_string : Ast.program -> string
