(** Type checking and annotation for MiniC.

    Fills in every expression's [ety] field (in place), validates the usual
    C-like rules, and collects the per-module facts the rest of the
    pipeline consumes: defined functions, prototypes, globals, and the set
    of address-taken functions (only those can be indirect-call targets —
    paper §6, condition C1's consequence).

    MiniC is deliberately permissive exactly where C-with-warnings is:
    casts and assignments between scalars (including function pointers)
    type-check here, and {!Analyzer} is the tool that reports the
    C1-violating ones. *)

exception Error of string * Ast.loc

type tinfo = {
  prog : Ast.program;  (** the input, with [ety] fields filled *)
  env : Types.env;
  funcs : (string * Ast.func) list;  (** functions defined in this module *)
  protos : (string * Ast.fun_ty) list;
      (** extern/prototype functions, including the intrinsics *)
  globals : (string * Ast.ty * Ast.init option) list;
  address_taken : string list;  (** functions whose address is taken *)
}

(** The compiler intrinsics every module knows: [__syscall] (variadic),
    [setjmp] and [longjmp]. *)
val intrinsics : (string * Ast.fun_ty) list

(** [check prog] type-checks a translation unit.
    [extra_env] supplies struct/union/typedef definitions from other
    modules (used when checking a module against headers). *)
val check : ?extra_programs:Ast.program list -> Ast.program -> tinfo

(** [fun_ty_of info name] looks up a function's type among definitions and
    prototypes. *)
val fun_ty_of : tinfo -> string -> Ast.fun_ty option
