open Ast

exception Error of string * Ast.loc

module S = Set.Make (String)

type st = {
  toks : (Token.t * loc) array;
  mutable pos : int;
  mutable typedefs : S.t;
}

let cur st = fst st.toks.(st.pos)
let cur_loc st = snd st.toks.(st.pos)

let peek_at st k =
  let i = st.pos + k in
  if i < Array.length st.toks then fst st.toks.(i) else Token.EOF

let fail st msg = raise (Error (msg, cur_loc st))

let failf st fmt = Printf.ksprintf (fail st) fmt

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let accept st tok =
  if cur st = tok then begin
    advance st;
    true
  end
  else false

let expect st tok =
  if not (accept st tok) then
    failf st "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (cur st))

let expect_ident st =
  match cur st with
  | Token.IDENT s ->
    advance st;
    s
  | t -> failf st "expected identifier but found %s" (Token.to_string t)

(* ---------- types and declarators ---------- *)

let starts_type st =
  match cur st with
  | Token.KINT | Token.KCHAR | Token.KVOID | Token.KSTRUCT | Token.KUNION ->
    true
  | Token.IDENT s -> S.mem s st.typedefs
  | _ -> false

let parse_type_spec st =
  match cur st with
  | Token.KINT -> advance st; Tint
  | Token.KCHAR -> advance st; Tchar
  | Token.KVOID -> advance st; Tvoid
  | Token.KSTRUCT ->
    advance st;
    Tstruct (expect_ident st)
  | Token.KUNION ->
    advance st;
    Tunion (expect_ident st)
  | Token.IDENT s when S.mem s st.typedefs ->
    advance st;
    Tnamed s
  | t -> failf st "expected a type but found %s" (Token.to_string t)

(* A parsed declarator: the declared name (empty for abstract declarators),
   a function from base type to declared type, and — when the declarator is
   a direct function declarator — the parameter names for a definition. *)
type declarator = {
  dname : string;
  dwrap : ty -> ty;
  dparams : (string * ty) list option; (* direct f(params) only *)
  dvarargs : bool;
}

type suffix = Sarr of int | Sfun of (string * ty) list * bool

(* Arrays and functions decay in parameter position, as in C. *)
let decay_param = function
  | Tarray (t, _) -> Tptr t
  | Tfun ft -> Tptr (Tfun ft)
  | t -> t

(* Constant integer expressions, for array sizes: literals with + - * /
   and parentheses, evaluated at parse time. *)
let rec parse_const_int st = parse_const_add st

and parse_const_add st =
  let rec go acc =
    if accept st Token.PLUS then go (acc + parse_const_mul st)
    else if accept st Token.MINUS then go (acc - parse_const_mul st)
    else acc
  in
  go (parse_const_mul st)

and parse_const_mul st =
  let rec go acc =
    if accept st Token.STAR then go (acc * parse_const_atom st)
    else if accept st Token.SLASH then begin
      let d = parse_const_atom st in
      if d = 0 then fail st "division by zero in constant expression";
      go (acc / d)
    end
    else acc
  in
  go (parse_const_atom st)

and parse_const_atom st =
  match cur st with
  | Token.INT_LIT n ->
    advance st;
    n
  | Token.CHAR_LIT c ->
    advance st;
    Char.code c
  | Token.MINUS ->
    advance st;
    -parse_const_atom st
  | Token.LPAREN ->
    advance st;
    let v = parse_const_int st in
    expect st Token.RPAREN;
    v
  | t -> failf st "expected a constant expression but found %s" (Token.to_string t)

let rec parse_declarator st : declarator =
  if accept st Token.STAR then begin
    (* the star binds to the base type: in [void *malloc(int)] the direct
       function declarator (and its parameter names) survives *)
    let d = parse_declarator st in
    { d with dwrap = (fun base -> d.dwrap (Tptr base)) }
  end
  else parse_direct st

and parse_direct st : declarator =
  let name, inner_wrap, direct_name =
    match cur st with
    | Token.LPAREN ->
      advance st;
      let d = parse_declarator st in
      expect st Token.RPAREN;
      (d.dname, d.dwrap, false)
    | Token.IDENT s ->
      advance st;
      (s, (fun base -> base), true)
    | _ -> ("", (fun base -> base), true) (* abstract declarator *)
  in
  let rec parse_suffixes acc =
    match cur st with
    | Token.LBRACKET ->
      advance st;
      let n = parse_const_int st in
      expect st Token.RBRACKET;
      parse_suffixes (Sarr n :: acc)
    | Token.LPAREN ->
      advance st;
      let params, varargs = parse_params st in
      expect st Token.RPAREN;
      parse_suffixes (Sfun (params, varargs) :: acc)
    | _ -> List.rev acc
  in
  let suffixes = parse_suffixes [] in
  let rec apply sufs base =
    match sufs with
    | [] -> base
    | Sarr n :: rest -> Tarray (apply rest base, n)
    | Sfun (params, varargs) :: rest ->
      Tfun { params = List.map snd params; varargs; ret = apply rest base }
  in
  let dparams, dvarargs =
    match (direct_name, suffixes) with
    | true, [ Sfun (params, varargs) ] -> (Some params, varargs)
    | _ -> (None, false)
  in
  { dname = name; dwrap = (fun base -> inner_wrap (apply suffixes base));
    dparams; dvarargs }

and parse_params st : (string * ty) list * bool =
  if cur st = Token.RPAREN then ([], false)
  else if cur st = Token.KVOID && peek_at st 1 = Token.RPAREN then begin
    advance st;
    ([], false)
  end
  else begin
    let rec go acc =
      if accept st Token.ELLIPSIS then (List.rev acc, true)
      else begin
        let base = parse_type_spec st in
        let d = parse_declarator st in
        let param = (d.dname, decay_param (d.dwrap base)) in
        if accept st Token.COMMA then go (param :: acc)
        else (List.rev (param :: acc), false)
      end
    in
    go []
  end

(* [parse_type] parses a full type (for casts and sizeof): a type specifier
   followed by an abstract declarator. *)
and parse_type st =
  let base = parse_type_spec st in
  let d = parse_declarator st in
  if d.dname <> "" then failf st "unexpected name %s in type" d.dname;
  d.dwrap base

(* ---------- expressions ---------- *)

and parse_expr_st st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  if accept st Token.ASSIGN then begin
    let rhs = parse_assign st in
    { edesc = Eassign (lhs, rhs); eloc = lhs.eloc; ety = Tvoid }
  end
  else lhs

and parse_cond st =
  let c = parse_lor st in
  if accept st Token.QUESTION then begin
    let t = parse_assign st in
    expect st Token.COLON;
    let f = parse_cond st in
    { edesc = Econd (c, t, f); eloc = c.eloc; ety = Tvoid }
  end
  else c

and binop_level ops next st =
  let rec go lhs =
    match List.assoc_opt (cur st) ops with
    | Some op ->
      advance st;
      let rhs = next st in
      go { edesc = Ebinop (op, lhs, rhs); eloc = lhs.eloc; ety = Tvoid }
    | None -> lhs
  in
  go (next st)

and parse_lor st = binop_level [ (Token.OROR, Lor) ] parse_land st
and parse_land st = binop_level [ (Token.ANDAND, Land) ] parse_bor st
and parse_bor st = binop_level [ (Token.PIPE, Bor) ] parse_bxor st
and parse_bxor st = binop_level [ (Token.CARET, Bxor) ] parse_band st
and parse_band st = binop_level [ (Token.AMP, Band) ] parse_eq st

and parse_eq st =
  binop_level [ (Token.EQEQ, Eq); (Token.NE, Ne) ] parse_rel st

and parse_rel st =
  binop_level
    [ (Token.LT, Lt); (Token.LE, Le); (Token.GT, Gt); (Token.GE, Ge) ]
    parse_shift st

and parse_shift st =
  binop_level [ (Token.SHL, Shl); (Token.SHR, Shr) ] parse_additive st

and parse_additive st =
  binop_level [ (Token.PLUS, Add); (Token.MINUS, Sub) ] parse_mult st

and parse_mult st =
  binop_level
    [ (Token.STAR, Mul); (Token.SLASH, Div); (Token.PERCENT, Mod) ]
    parse_unary st

and parse_unary st =
  let loc = cur_loc st in
  match cur st with
  | Token.MINUS ->
    advance st;
    { edesc = Eunop (Neg, parse_unary st); eloc = loc; ety = Tvoid }
  | Token.BANG ->
    advance st;
    { edesc = Eunop (Lognot, parse_unary st); eloc = loc; ety = Tvoid }
  | Token.TILDE ->
    advance st;
    { edesc = Eunop (Bitnot, parse_unary st); eloc = loc; ety = Tvoid }
  | Token.STAR ->
    advance st;
    { edesc = Ederef (parse_unary st); eloc = loc; ety = Tvoid }
  | Token.AMP ->
    advance st;
    { edesc = Eaddr (parse_unary st); eloc = loc; ety = Tvoid }
  | Token.KSIZEOF ->
    advance st;
    expect st Token.LPAREN;
    let t = parse_type st in
    expect st Token.RPAREN;
    { edesc = Esizeof t; eloc = loc; ety = Tvoid }
  | Token.LPAREN when starts_type_at st 1 ->
    (* a cast: "(" type ")" unary *)
    advance st;
    let t = parse_type st in
    expect st Token.RPAREN;
    { edesc = Ecast (t, parse_unary st); eloc = loc; ety = Tvoid }
  | _ -> parse_postfix st

and starts_type_at st k =
  match peek_at st k with
  | Token.KINT | Token.KCHAR | Token.KVOID | Token.KSTRUCT | Token.KUNION ->
    true
  | Token.IDENT s -> S.mem s st.typedefs
  | _ -> false

and parse_postfix st =
  let rec go e =
    let loc = cur_loc st in
    match cur st with
    | Token.LPAREN ->
      advance st;
      let args = parse_args st in
      expect st Token.RPAREN;
      go { edesc = Ecall (e, args); eloc = loc; ety = Tvoid }
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr_st st in
      expect st Token.RBRACKET;
      go { edesc = Eindex (e, idx); eloc = loc; ety = Tvoid }
    | Token.DOT ->
      advance st;
      go { edesc = Efield (e, expect_ident st); eloc = loc; ety = Tvoid }
    | Token.ARROW ->
      advance st;
      go { edesc = Earrow (e, expect_ident st); eloc = loc; ety = Tvoid }
    | _ -> e
  in
  go (parse_primary st)

and parse_args st =
  if cur st = Token.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_assign st in
      if accept st Token.COMMA then go (e :: acc) else List.rev (e :: acc)
    in
    go []
  end

and parse_primary st =
  let loc = cur_loc st in
  match cur st with
  | Token.INT_LIT n ->
    advance st;
    { edesc = Eint n; eloc = loc; ety = Tvoid }
  | Token.CHAR_LIT c ->
    advance st;
    { edesc = Echar c; eloc = loc; ety = Tvoid }
  | Token.STR_LIT s ->
    advance st;
    { edesc = Estr s; eloc = loc; ety = Tvoid }
  | Token.IDENT s ->
    advance st;
    { edesc = Evar s; eloc = loc; ety = Tvoid }
  | Token.LPAREN ->
    advance st;
    let e = parse_expr_st st in
    expect st Token.RPAREN;
    e
  | t -> failf st "expected an expression but found %s" (Token.to_string t)

(* ---------- statements ---------- *)

let parse_case_value st =
  match cur st with
  | Token.INT_LIT n ->
    advance st;
    n
  | Token.CHAR_LIT c ->
    advance st;
    Char.code c
  | Token.MINUS ->
    advance st;
    (match cur st with
    | Token.INT_LIT n ->
      advance st;
      -n
    | t -> failf st "expected integer after - but found %s" (Token.to_string t))
  | t -> failf st "expected case value but found %s" (Token.to_string t)

let rec parse_stmt st : stmt =
  let loc = cur_loc st in
  match cur st with
  | Token.LBRACE ->
    advance st;
    let body = parse_block st in
    { sdesc = Sblock body; sloc = loc }
  | Token.KIF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr_st st in
    expect st Token.RPAREN;
    let then_ = parse_stmt st in
    let else_ = if accept st Token.KELSE then Some (parse_stmt st) else None in
    { sdesc = Sif (cond, then_, else_); sloc = loc }
  | Token.KWHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr_st st in
    expect st Token.RPAREN;
    let body = parse_stmt st in
    { sdesc = Swhile (cond, body); sloc = loc }
  | Token.KFOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if cur st = Token.SEMI then None
      else if starts_type st then Some (parse_local_decl st)
      else Some { sdesc = Sexpr (parse_expr_st st); sloc = loc }
    in
    expect st Token.SEMI;
    let cond = if cur st = Token.SEMI then None else Some (parse_expr_st st) in
    expect st Token.SEMI;
    let step =
      if cur st = Token.RPAREN then None else Some (parse_expr_st st)
    in
    expect st Token.RPAREN;
    let body = parse_stmt st in
    { sdesc = Sfor (init, cond, step, body); sloc = loc }
  | Token.KRETURN ->
    advance st;
    let e = if cur st = Token.SEMI then None else Some (parse_expr_st st) in
    expect st Token.SEMI;
    { sdesc = Sreturn e; sloc = loc }
  | Token.KBREAK ->
    advance st;
    expect st Token.SEMI;
    { sdesc = Sbreak; sloc = loc }
  | Token.KCONTINUE ->
    advance st;
    expect st Token.SEMI;
    { sdesc = Scontinue; sloc = loc }
  | Token.KSWITCH -> parse_switch st
  | _ when starts_type st ->
    let s = parse_local_decl st in
    expect st Token.SEMI;
    s
  | _ ->
    let e = parse_expr_st st in
    expect st Token.SEMI;
    { sdesc = Sexpr e; sloc = loc }

(* A local declaration, without the trailing semicolon (shared with [for]
   initializers). Multi-declarator lines become a block. *)
and parse_local_decl st : stmt =
  let loc = cur_loc st in
  let base = parse_type_spec st in
  let one () =
    let d = parse_declarator st in
    if d.dname = "" then fail st "expected a name in declaration";
    let init = if accept st Token.ASSIGN then Some (parse_assign st) else None in
    { sdesc = Sdecl (d.dwrap base, d.dname, init); sloc = loc }
  in
  let first = one () in
  if cur st <> Token.COMMA then first
  else begin
    let rec go acc =
      if accept st Token.COMMA then go (one () :: acc) else List.rev acc
    in
    { sdesc = Sblock (go [ first ]); sloc = loc }
  end

and parse_block st : stmt list =
  let rec go acc =
    if accept st Token.RBRACE then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_switch st : stmt =
  let loc = cur_loc st in
  expect st Token.KSWITCH;
  expect st Token.LPAREN;
  let scrutinee = parse_expr_st st in
  expect st Token.RPAREN;
  expect st Token.LBRACE;
  let parse_case_body () =
    let rec go acc =
      match cur st with
      | Token.KCASE | Token.KDEFAULT | Token.RBRACE -> List.rev acc
      | Token.KBREAK ->
        advance st;
        expect st Token.SEMI;
        (* an explicit break ends the case body (MiniC has no fallthrough) *)
        List.rev acc
      | _ -> go (parse_stmt st :: acc)
    in
    go []
  in
  let rec parse_cases cases default =
    match cur st with
    | Token.RBRACE ->
      advance st;
      (List.rev cases, default)
    | Token.KCASE ->
      let rec labels acc =
        if accept st Token.KCASE then begin
          let v = parse_case_value st in
          expect st Token.COLON;
          labels (v :: acc)
        end
        else List.rev acc
      in
      let cvalues = labels [] in
      let cbody = parse_case_body () in
      parse_cases ({ cvalues; cbody } :: cases) default
    | Token.KDEFAULT ->
      advance st;
      expect st Token.COLON;
      if default <> None then fail st "duplicate default case";
      parse_cases cases (Some (parse_case_body ()))
    | t -> failf st "expected case or default but found %s" (Token.to_string t)
  in
  let cases, default = parse_cases [] None in
  { sdesc = Sswitch (scrutinee, cases, default); sloc = loc }

(* ---------- top-level declarations ---------- *)

let parse_fields st =
  expect st Token.LBRACE;
  let rec go acc =
    if accept st Token.RBRACE then List.rev acc
    else begin
      let base = parse_type_spec st in
      let d = parse_declarator st in
      if d.dname = "" then fail st "expected a field name";
      expect st Token.SEMI;
      go ((d.dname, d.dwrap base) :: acc)
    end
  in
  go []

let parse_init st =
  if accept st Token.LBRACE then begin
    let rec go acc =
      let e = parse_assign st in
      if accept st Token.COMMA then go (e :: acc)
      else begin
        expect st Token.RBRACE;
        List.rev (e :: acc)
      end
    in
    Ilist (go [])
  end
  else Iexpr (parse_assign st)

let parse_decl st : decl =
  match cur st with
  | Token.KTYPEDEF ->
    advance st;
    let base = parse_type_spec st in
    let d = parse_declarator st in
    if d.dname = "" then fail st "expected a name in typedef";
    expect st Token.SEMI;
    st.typedefs <- S.add d.dname st.typedefs;
    Dtypedef (d.dname, d.dwrap base)
  | Token.KSTRUCT when peek_at st 2 = Token.LBRACE ->
    advance st;
    let name = expect_ident st in
    let fields = parse_fields st in
    expect st Token.SEMI;
    Dstruct (name, fields)
  | Token.KUNION when peek_at st 2 = Token.LBRACE ->
    advance st;
    let name = expect_ident st in
    let fields = parse_fields st in
    expect st Token.SEMI;
    Dunion (name, fields)
  | Token.KEXTERN ->
    advance st;
    let base = parse_type_spec st in
    let d = parse_declarator st in
    if d.dname = "" then fail st "expected a name in extern declaration";
    expect st Token.SEMI;
    (match d.dwrap base with
    | Tfun ft -> Dextern_fun (d.dname, ft)
    | t -> Dextern_var (d.dname, t))
  | _ ->
    let base = parse_type_spec st in
    let d = parse_declarator st in
    if d.dname = "" then fail st "expected a name in declaration";
    let floc = cur_loc st in
    (match (d.dwrap base, cur st) with
    | Tfun ft, Token.LBRACE -> begin
      match d.dparams with
      | Some params ->
        advance st;
        let body = parse_block st in
        List.iter
          (fun (name, _) ->
            if name = "" then fail st "parameter name required in definition")
          params;
        Dfun
          {
            fname = d.dname;
            fparams = params;
            fvarargs = d.dvarargs;
            fret = ft.ret;
            fbody = body;
            floc;
          }
      | None -> fail st "function body on a non-function declarator"
    end
    | Tfun ft, _ ->
      expect st Token.SEMI;
      Dextern_fun (d.dname, ft) (* prototype *)
    | ty, _ ->
      let init = if accept st Token.ASSIGN then Some (parse_init st) else None in
      expect st Token.SEMI;
      Dglobal (ty, d.dname, init))

let parse ~name src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; typedefs = S.empty } in
  let rec go acc =
    if cur st = Token.EOF then List.rev acc else go (parse_decl st :: acc)
  in
  { pname = name; pdecls = go [] }

let parse_expr src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; typedefs = S.empty } in
  let e = parse_expr_st st in
  if cur st <> Token.EOF then fail st "trailing tokens after expression";
  e
