open Ast

type category = UC | DC | MF | SU | NF

let category_name = function
  | UC -> "UC" | DC -> "DC" | MF -> "MF" | SU -> "SU" | NF -> "NF"

type kind = K1 | K2

let kind_name = function K1 -> "K1" | K2 -> "K2"

type violation = {
  v_loc : Ast.loc;
  v_fun : string option;
  v_from : Ast.ty;
  v_to : Ast.ty;
  v_explicit : bool;
  v_verdict : verdict;
}

and verdict = Eliminated of category | Remaining of kind

type report = {
  violations : violation list;
  sloc : int;
  vbe : int;
  uc : int;
  dc : int;
  mf : int;
  su : int;
  nf : int;
  vae : int;
  k1 : int;
  k2 : int;
}

let pp_violation ppf v =
  Fmt.pf ppf "%a%s: cast %a -> %a (%s): %s" Ast.pp_loc v.v_loc
    (match v.v_fun with Some f -> " in " ^ f | None -> "")
    Ast.pp_ty v.v_from Ast.pp_ty v.v_to
    (if v.v_explicit then "explicit" else "implicit")
    (match v.v_verdict with
    | Eliminated c -> "false positive (" ^ category_name c ^ ")"
    | Remaining k -> kind_name k)

(* A cast event, before classification. *)
type event = {
  e_loc : loc;
  e_fun : string option;
  e_from : ty;
  e_to : ty;
  e_explicit : bool;
  e_src : expr;             (* the expression being cast / assigned *)
  e_nf_context : bool;      (* cast used only for a non-fptr field access *)
  e_free_arg : bool;        (* argument position of free() *)
}

type st = {
  info : Typecheck.tinfo;
  mutable events : event list;
  mutable current_fun : string option;
  (* physical identities of cast expressions appearing as receivers of a
     field access that reads a non-fptr field (the NF pattern) *)
  nf_casts : (Obj.t, unit) Hashtbl.t;
  (* physical identities of casts in argument position of free() *)
  free_casts : (Obj.t, unit) Hashtbl.t;
}

let env st = st.info.Typecheck.env

(* Does a type "involve function pointer types" in the sense of C1?  The
   type itself contains one, or it is a pointer whose pointee does. *)
let involves st t =
  match Types.resolve (env st) t with
  | exception Types.Unknown_type _ -> false
  | rt -> (
    Types.contains_fptr (env st) rt
    ||
    match rt with
    | Tptr p -> (
      match Types.resolve (env st) p with
      | exception Types.Unknown_type _ -> false
      | rp -> Types.contains_fptr (env st) rp)
    | _ -> false)

let record st ?(explicit = false) ?(free_arg = false) ~loc ~src ~from_ ~to_ () =
  let e = env st in
  if (involves st from_ || involves st to_) && not (Types.equal e from_ to_)
  then
    st.events <-
      {
        e_loc = loc;
        e_fun = st.current_fun;
        e_from = from_;
        e_to = to_;
        e_explicit = explicit;
        e_src = src;
        e_nf_context = Hashtbl.mem st.nf_casts (Obj.repr src);
        e_free_arg = free_arg || Hashtbl.mem st.free_casts (Obj.repr src);
      }
      :: st.events

(* Strip casts to find what an initializer really denotes. *)
let rec strip_casts e =
  match e.edesc with Ecast (_, inner) -> strip_casts inner | _ -> e

let denotes_function st e =
  match (strip_casts e).edesc with
  | Evar f | Eaddr { edesc = Evar f; _ } ->
    Typecheck.fun_ty_of st.info f <> None
  | _ -> false

let is_int_literal e =
  match (strip_casts e).edesc with Eint _ | Echar _ -> true | _ -> false

let is_malloc_call e =
  match e.edesc with
  | Ecall ({ edesc = Evar "malloc"; _ }, _) -> true
  | _ -> false

(* ---------- the walk ---------- *)

let rec walk_expr st e =
  (match e.edesc with
  | Efield (({ edesc = Ecast _; _ } as recv), field)
  | Earrow (({ edesc = Ecast _; _ } as recv), field) ->
    (* a cast receiver whose accessed field does not involve function
       pointers: the NF pattern from perlbench in the paper *)
    let field_involves =
      let owner =
        match e.edesc with
        | Earrow _ -> (
          match Types.resolve (env st) recv.ety with
          | Tptr t -> t
          | t -> t
          | exception Types.Unknown_type _ -> Tvoid)
        | _ -> recv.ety
      in
      match Types.resolve (env st) owner with
      | Tstruct name | Tunion name -> (
        let fields =
          match Types.resolve (env st) owner with
          | Tstruct _ -> Types.struct_fields (env st) name
          | _ -> Types.union_fields (env st) name
        in
        match fields with
        | Some fs -> (
          match List.assoc_opt field fs with
          | Some ft -> involves st ft
          | None -> true)
        | None -> true)
      | _ -> true
      | exception Types.Unknown_type _ -> true
    in
    if not field_involves then Hashtbl.replace st.nf_casts (Obj.repr recv) ()
  | _ -> ());
  match e.edesc with
  | Eint _ | Echar _ | Estr _ | Evar _ | Esizeof _ -> ()
  | Eunop (_, a) | Eaddr a | Ederef a -> walk_expr st a
  | Ebinop (_, a, b) | Eindex (a, b) ->
    walk_expr st a;
    walk_expr st b
  | Efield (a, _) | Earrow (a, _) -> walk_expr st a
  | Econd (a, b, c) ->
    walk_expr st a;
    walk_expr st b;
    walk_expr st c
  | Ecast (to_, inner) ->
    walk_expr st inner;
    record st ~explicit:true ~loc:e.eloc ~src:e ~from_:inner.ety ~to_ ()
  | Eassign (lhs, rhs) ->
    walk_expr st lhs;
    walk_expr st rhs;
    record st ~loc:e.eloc ~src:rhs ~from_:rhs.ety ~to_:lhs.ety ()
  | Ecall (callee, args) -> begin
    (match callee.edesc with
    | Evar name when Typecheck.fun_ty_of st.info name <> None -> ()
    | _ -> walk_expr st callee);
    (* casts in free()'s argument position belong to the MF pattern *)
    (match callee.edesc with
    | Evar "free" ->
      List.iter
        (fun arg ->
          match arg.edesc with
          | Ecast _ -> Hashtbl.replace st.free_casts (Obj.repr arg) ()
          | _ -> ())
        args
    | _ -> ());
    List.iter (walk_expr st) args;
    (* implicit casts at argument positions *)
    match callee.edesc with
    | Evar name -> begin
      match Typecheck.fun_ty_of st.info name with
      | Some ft ->
        let is_free = name = "free" in
        List.iteri
          (fun i arg ->
            match List.nth_opt ft.params i with
            | Some pty ->
              record st ~free_arg:is_free ~loc:arg.eloc ~src:arg
                ~from_:arg.ety ~to_:pty ()
            | None -> ())
          args
      | None -> ()
    end
    | _ -> begin
      match Types.resolve (env st) callee.ety with
      | Tptr (Tfun ft) | Tfun ft ->
        List.iteri
          (fun i arg ->
            match List.nth_opt ft.params i with
            | Some pty ->
              record st ~loc:arg.eloc ~src:arg ~from_:arg.ety ~to_:pty ()
            | None -> ())
          args
      | _ | (exception Types.Unknown_type _) -> ()
    end
  end

let rec walk_stmt st ret_ty s =
  match s.sdesc with
  | Sexpr e -> walk_expr st e
  | Sdecl (t, _, init) -> begin
    match init with
    | Some e ->
      walk_expr st e;
      record st ~loc:s.sloc ~src:e ~from_:e.ety ~to_:t ()
    | None -> ()
  end
  | Sif (c, a, b) ->
    walk_expr st c;
    walk_stmt st ret_ty a;
    Option.iter (walk_stmt st ret_ty) b
  | Swhile (c, body) ->
    walk_expr st c;
    walk_stmt st ret_ty body
  | Sfor (init, c, step, body) ->
    Option.iter (walk_stmt st ret_ty) init;
    Option.iter (walk_expr st) c;
    Option.iter (walk_expr st) step;
    walk_stmt st ret_ty body
  | Sreturn (Some e) ->
    walk_expr st e;
    record st ~loc:s.sloc ~src:e ~from_:e.ety ~to_:ret_ty ()
  | Sreturn None -> ()
  | Sblock body -> List.iter (walk_stmt st ret_ty) body
  | Sbreak | Scontinue -> ()
  | Sswitch (c, cases, default) ->
    walk_expr st c;
    List.iter (fun cs -> List.iter (walk_stmt st ret_ty) cs.cbody) cases;
    Option.iter (List.iter (walk_stmt st ret_ty)) default

(* ---------- classification ---------- *)

let struct_ptr st t =
  match Types.resolve (env st) t with
  | Tptr p -> (
    match Types.resolve (env st) p with
    | Tstruct name -> Some name
    | _ -> None
    | exception Types.Unknown_type _ -> None)
  | _ -> None
  | exception Types.Unknown_type _ -> None

let classify st (e : event) : verdict =
  let env = env st in
  let upcast =
    match (struct_ptr st e.e_from, struct_ptr st e.e_to) with
    | Some sub, Some sup -> Types.prefix_struct env ~sub ~sup
    | _ -> false
  in
  let downcast_tagged =
    match (struct_ptr st e.e_from, struct_ptr st e.e_to) with
    | Some sup, Some sub ->
      Types.prefix_struct env ~sub ~sup && Types.has_tag_field env sup
    | _ -> false
  in
  if upcast then Eliminated UC
  else if downcast_tagged then Eliminated DC
  else if is_malloc_call (strip_casts e.e_src) || e.e_free_arg then
    Eliminated MF
  else if is_int_literal e.e_src && Types.is_fptr env e.e_to then Eliminated SU
  else if e.e_nf_context then Eliminated NF
  else if denotes_function st e.e_src && Types.is_fptr env e.e_to then
    Remaining K1
  else Remaining K2

let count_sloc source =
  String.split_on_char '\n' source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let analyze ?(source = "") (info : Typecheck.tinfo) =
  let st =
    {
      info;
      events = [];
      current_fun = None;
      nf_casts = Hashtbl.create 16;
      free_casts = Hashtbl.create 16;
    }
  in
  List.iter
    (function
      | Dfun f ->
        st.current_fun <- Some f.fname;
        List.iter (walk_stmt st f.fret) f.fbody;
        st.current_fun <- None
      | Dglobal (t, _, Some (Iexpr e)) ->
        walk_expr st e;
        record st ~loc:e.eloc ~src:e ~from_:e.ety ~to_:t ()
      | Dglobal (t, _, Some (Ilist es)) ->
        let elem =
          match Types.resolve info.env t with
          | Tarray (el, _) -> el
          | _ -> t
          | exception Types.Unknown_type _ -> t
        in
        List.iter
          (fun e ->
            walk_expr st e;
            record st ~loc:e.eloc ~src:e ~from_:e.ety ~to_:elem ())
          es
      | Dglobal (_, _, None)
      | Dstruct _ | Dunion _ | Dtypedef _ | Dextern_fun _ | Dextern_var _ ->
        ())
    info.prog.pdecls;
  let violations =
    List.rev_map
      (fun e ->
        {
          v_loc = e.e_loc;
          v_fun = e.e_fun;
          v_from = e.e_from;
          v_to = e.e_to;
          v_explicit = e.e_explicit;
          v_verdict = classify st e;
        })
      st.events
  in
  let count p = List.length (List.filter p violations) in
  let cat c = count (fun v -> v.v_verdict = Eliminated c) in
  {
    violations;
    sloc = count_sloc source;
    vbe = List.length violations;
    uc = cat UC;
    dc = cat DC;
    mf = cat MF;
    su = cat SU;
    nf = cat NF;
    vae = count (fun v -> match v.v_verdict with Remaining _ -> true | _ -> false);
    k1 = count (fun v -> v.v_verdict = Remaining K1);
    k2 = count (fun v -> v.v_verdict = Remaining K2);
  }
