lib/cfg/cfggen.mli: Minic
