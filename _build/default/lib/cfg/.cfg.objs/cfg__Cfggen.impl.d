lib/cfg/cfggen.ml: Array Hashtbl Idtables Int List Mcfi_util Minic Option Set String
