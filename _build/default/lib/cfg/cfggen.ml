type fn = {
  fname : string;
  fty : Minic.Ast.fun_ty;
  faddr : int;
  faddress_taken : bool;
}

type site =
  | Sreturn of { fn : string }
  | Sicall of { fn : string; ty : Minic.Ast.fun_ty; ret_addr : int }
  | Sitail of { fn : string; ty : Minic.Ast.fun_ty }
  | Sjumptable of { fn : string; target_addrs : int list }
  | Slongjmp of { fn : string }
  | Splt of { symbol : string }

type input = {
  env : Minic.Types.env;
  functions : fn list;
  sites : site array;
  direct_calls : (string * string * int) list;
  tail_calls : (string * string) list;
  setjmp_addrs : int list;
}

type output = {
  tary : (int * int) list;
  bary : (int * int) list;
  stats : stats;
}

and stats = { n_ibs : int; n_ibts : int; n_eqcs : int }

exception Too_many_classes of int

module SS = Set.Make (String)
module IS = Set.Make (Int)

(* Address-taken functions whose type matches an indirect-call site. *)
let matched_functions input ty =
  List.filter
    (fun fn ->
      fn.faddress_taken && Minic.Types.callable input.env ~site:ty ~fn:fn.fty)
    input.functions

(* Tail-call closure: TC(g) = functions reachable from g through tail
   calls (including g itself).  A call that lands in g may eventually
   return from any member of TC(g). *)
let tail_closure input =
  (* direct tail edges, plus indirect tail edges resolved by type *)
  let edges = Hashtbl.create 16 in
  let add_edge a b =
    let old = Option.value ~default:SS.empty (Hashtbl.find_opt edges a) in
    Hashtbl.replace edges a (SS.add b old)
  in
  List.iter (fun (a, b) -> add_edge a b) input.tail_calls;
  Array.iter
    (function
      | Sitail { fn; ty } ->
        List.iter (fun g -> add_edge fn g.fname) (matched_functions input ty)
      | Sreturn _ | Sicall _ | Sjumptable _ | Slongjmp _ | Splt _ -> ())
    input.sites;
  fun g ->
    let rec go visited frontier =
      match frontier with
      | [] -> visited
      | x :: rest ->
        if SS.mem x visited then go visited rest
        else begin
          let next =
            Option.value ~default:SS.empty (Hashtbl.find_opt edges x)
          in
          go (SS.add x visited) (SS.elements next @ rest)
        end
    in
    go SS.empty [ g ]

(* Return sites of each function: for every call that can invoke g (by
   symbol or by type matching), every member of TC(g) may return to the
   call's return site. *)
let return_sites input =
  let tc = tail_closure input in
  let sites = Hashtbl.create 16 in
  let add fn addr =
    let old = Option.value ~default:IS.empty (Hashtbl.find_opt sites fn) in
    Hashtbl.replace sites fn (IS.add addr old)
  in
  let add_call callee ret_addr =
    SS.iter (fun h -> add h ret_addr) (tc callee)
  in
  List.iter (fun (_, callee, ret) -> add_call callee ret) input.direct_calls;
  Array.iter
    (function
      | Sicall { ty; ret_addr; _ } ->
        List.iter
          (fun g -> add_call g.fname ret_addr)
          (matched_functions input ty)
      | Sreturn _ | Sitail _ | Sjumptable _ | Slongjmp _ | Splt _ -> ())
    input.sites;
  fun fn -> Option.value ~default:IS.empty (Hashtbl.find_opt sites fn)

let targets_of_site input site =
  let rs = return_sites input in
  match site with
  | Sreturn { fn } -> IS.elements (rs fn)
  | Sicall { ty; _ } | Sitail { ty; _ } ->
    List.map (fun f -> f.faddr) (matched_functions input ty)
  | Sjumptable { target_addrs; _ } -> target_addrs
  | Slongjmp _ -> input.setjmp_addrs
  | Splt { symbol } ->
    List.filter_map
      (fun f -> if f.fname = symbol then Some f.faddr else None)
      input.functions

let generate input =
  let rs = return_sites input in
  let site_targets =
    Array.map
      (function
        | Sreturn { fn } -> IS.elements (rs fn)
        | Sicall { ty; _ } | Sitail { ty; _ } ->
          List.map (fun f -> f.faddr) (matched_functions input ty)
        | Sjumptable { target_addrs; _ } -> target_addrs
        | Slongjmp _ -> input.setjmp_addrs
        | Splt { symbol } ->
          List.filter_map
            (fun f -> if f.fname = symbol then Some f.faddr else None)
            input.functions)
      input.sites
  in
  (* The universe of possible indirect-branch targets (the paper's IBTs):
     address-taken function entries, return sites, jump-table targets and
     setjmp continuations — whether or not some branch currently reaches
     them. *)
  let ibts = ref IS.empty in
  List.iter
    (fun f -> if f.faddress_taken then ibts := IS.add f.faddr !ibts)
    input.functions;
  List.iter (fun (_, _, ret) -> ibts := IS.add ret !ibts) input.direct_calls;
  Array.iter
    (function
      | Sicall { ret_addr; _ } -> ibts := IS.add ret_addr !ibts
      | Sjumptable { target_addrs; _ } ->
        List.iter (fun a -> ibts := IS.add a !ibts) target_addrs
      | Sreturn _ | Sitail _ | Slongjmp _ | Splt _ -> ())
    input.sites;
  List.iter (fun a -> ibts := IS.add a !ibts) input.setjmp_addrs;
  Array.iter
    (fun targets -> List.iter (fun a -> ibts := IS.add a !ibts) targets)
    site_targets;
  let target_list = IS.elements !ibts in
  let index_of =
    let tbl = Hashtbl.create (List.length target_list) in
    List.iteri (fun i a -> Hashtbl.add tbl a i) target_list;
    fun a -> Hashtbl.find tbl a
  in
  (* Classic-CFI equivalence classes: merge each site's target set. *)
  let uf = Mcfi_util.Union_find.create (List.length target_list) in
  Array.iter
    (fun targets ->
      match targets with
      | [] -> ()
      | anchor :: rest ->
        List.iter
          (fun t ->
            ignore
              (Mcfi_util.Union_find.union uf (index_of anchor) (index_of t)))
          rest)
    site_targets;
  (* ECN per union-find root. *)
  let ecn_of_root = Hashtbl.create 64 in
  let next_ecn = ref 0 in
  let fresh_ecn () =
    let e = !next_ecn in
    incr next_ecn;
    if e >= Idtables.Id.max_ecn then raise (Too_many_classes e);
    e
  in
  let ecn_of_target addr =
    let root = Mcfi_util.Union_find.find uf (index_of addr) in
    match Hashtbl.find_opt ecn_of_root root with
    | Some e -> e
    | None ->
      let e = fresh_ecn () in
      Hashtbl.add ecn_of_root root e;
      e
  in
  let tary = List.map (fun addr -> (addr, ecn_of_target addr)) target_list in
  let bary =
    Array.to_list
      (Array.mapi
         (fun slot targets ->
           match targets with
           | anchor :: _ -> (slot, ecn_of_target anchor)
           | [] ->
             (* no allowed target: a class no address belongs to, so the
                check always fails (the paper's broken-by-missing-edges
                case, kind K1, surfaces exactly like this) *)
             (slot, fresh_ecn ()))
         site_targets)
  in
  let n_eqcs = Hashtbl.length ecn_of_root in
  {
    tary;
    bary;
    stats =
      {
        n_ibs = Array.length input.sites;
        n_ibts = List.length target_list;
        n_eqcs;
      };
  }
