(** Type-matching CFG generation (paper §6) and the classic-CFI
    equivalence-class construction (paper §2).

    The generator consumes a {!input} view of all currently linked modules
    — function entries with their source types and address-taken flags,
    one record per indirect-branch site in global Bary-slot order, the
    direct-call and tail-call edges, jump-table targets and setjmp
    continuations, all with their final code addresses — and produces the
    new Bary/Tary ECN assignments for an update transaction.

    Per the paper:
    - an indirect call through a pointer of type [t*] may target any
      address-taken function whose type structurally matches [t] (with the
      varargs prefix rule);
    - returns may target the return sites of every call that can reach the
      returning function in the call graph, where tail-call chains are
      collapsed ([f] calls [g], [g] tail-calls [h] ⇒ [h]'s return may
      return to [f]'s call site);
    - jump-table jumps target exactly their statically known entries;
    - [longjmp] may target every [setjmp] continuation;
    - a PLT jump targets the entry of the symbol its GOT slot names;
    - overlapping target sets are merged into equivalence classes
      (union-find), as in classic CFI. *)

type fn = {
  fname : string;
  fty : Minic.Ast.fun_ty;
  faddr : int;
  faddress_taken : bool;
}

type site =
  | Sreturn of { fn : string }
  | Sicall of { fn : string; ty : Minic.Ast.fun_ty; ret_addr : int }
  | Sitail of { fn : string; ty : Minic.Ast.fun_ty }
  | Sjumptable of { fn : string; target_addrs : int list }
  | Slongjmp of { fn : string }
  | Splt of { symbol : string }

type input = {
  env : Minic.Types.env;          (** merged over all modules *)
  functions : fn list;            (** defined functions, all modules *)
  sites : site array;             (** global Bary slot order *)
  direct_calls : (string * string * int) list;
      (** caller, callee symbol, return-site address *)
  tail_calls : (string * string) list;  (** direct tail-call edges *)
  setjmp_addrs : int list;
}

type output = {
  tary : (int * int) list;  (** target code address -> ECN *)
  bary : (int * int) list;  (** Bary slot -> branch ECN *)
  stats : stats;
}

and stats = {
  n_ibs : int;   (** indirect branches (Table 3 "IBs") *)
  n_ibts : int;  (** possible indirect-branch targets (Table 3 "IBTs") *)
  n_eqcs : int;  (** equivalence classes of target addresses ("EQCs") *)
}

exception Too_many_classes of int

(** [generate input] computes the CFG and its table encoding.
    Raises {!Too_many_classes} if the program needs more than 2^14
    equivalence classes (the ID encoding limit). *)
val generate : input -> output

(** [targets_of_site input site] is the raw allowed-target set of one
    site, before equivalence-class merging — the precise CFG edge set,
    used by the AIR metric and by tests. *)
val targets_of_site : input -> site -> int list
