lib/compiler/objfile.ml: Fmt Fun List Marshal Minic Printf String Vmisa
