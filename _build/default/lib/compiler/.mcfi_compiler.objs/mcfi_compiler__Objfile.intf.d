lib/compiler/objfile.mli: Format Minic Vmisa
