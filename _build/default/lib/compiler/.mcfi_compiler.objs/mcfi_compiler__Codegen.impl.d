lib/compiler/codegen.ml: Array Bool Char Fun Hashtbl List Minic Objfile Option Printf String Vmisa
