lib/compiler/codegen.mli: Minic Objfile
