(** MCFI object files: code, data, symbols, and the auxiliary information
    that makes separate compilation work (paper §4, "Module linking").

    An MCFI module carries, beyond its code and data:
    - the types of its functions and whether each is address-taken,
    - one record per indirect-branch site in {e Bary-slot order}: after
      instrumentation, the check sequence for site [k] embeds
      [Bary_load (_, k)], and the loader re-bases [k] into the
      process-wide slot space,
    - the direct-call and tail-call edges the CFG generator needs to give
      return instructions their allowed return sites,
    - setjmp continuation labels (targets of longjmp's indirect jump),
    - its struct/union/typedef environment, merged at link time.

    Everything is label-based and position-independent; the loader lays
    the module out at its final base address. *)

type fn_info = {
  fi_name : string;  (** also the entry label *)
  fi_ty : Minic.Ast.fun_ty;
  fi_address_taken : bool;
  fi_defined : bool;  (** defined here, vs extern reference *)
}

(** One indirect-branch site; list order = module-local Bary slot order.
    [ret_label] fields name the (4-byte aligned) return site following a
    call. *)
type site =
  | Site_return of { fn : string }
  | Site_icall of { fn : string; ty : Minic.Ast.fun_ty; ret_label : string }
  | Site_itail of { fn : string; ty : Minic.Ast.fun_ty }
  | Site_jumptable of { fn : string; targets : string list }
  | Site_longjmp of { fn : string }
  | Site_plt of { symbol : string }

(** A word of initialized data; code and data live in disjoint address
    spaces, and relocations stay symbolic until load time. *)
type data_word =
  | Dint of int
  | Dsym_code of string  (** address of a code label *)
  | Dsym_data of string  (** address of another data symbol *)

type data_def = { d_name : string; d_words : data_word list }

(** A direct call edge: caller, callee symbol, return-site label. *)
type direct_call = { dc_caller : string; dc_callee : string; dc_ret : string }

type t = {
  o_name : string;
  o_items : Vmisa.Asm.item list;
  o_data : data_def list;
  o_functions : fn_info list;
  o_sites : site list;
  o_direct_calls : direct_call list;
  o_tail_calls : (string * string) list;  (** caller, callee direct jumps *)
  o_setjmp_sites : string list;  (** aligned continuation labels *)
  o_tyenv : Minic.Types.env;
  o_instrumented : bool;
}

val site_fn : site -> string option

val pp_site : Format.formatter -> site -> unit

(** Function records defined by the module (not extern references). *)
val defined_functions : t -> fn_info list

(** Code symbols this module needs from elsewhere. *)
val undefined_symbols : t -> string list

(** Total initialized-data size in words. *)
val data_size : t -> int

(** [save]/[load] persist modules to disk — "instrument once, reuse
    across programs". The container format is keyed so that stale or
    foreign files fail loudly ([Invalid_argument]). *)
val save : string -> t -> unit

val load : string -> t
