(* MCFI object files: code, data, symbols, and the auxiliary information
   that makes separate compilation work (paper §4, "Module linking").

   An MCFI module carries, beyond its code and data:
   - the types of its functions and whether each is address-taken,
   - one record per indirect-branch site (returns, indirect calls and
     tail calls, jump-table jumps, longjmps, PLT jumps), in Bary-slot
     order: after instrumentation, the check sequence for site [k] embeds
     [Bary_load (_, k)], and the loader re-bases [k] into the process-wide
     Bary index space,
   - the direct-call and tail-call edges needed to build the call graph
     that gives return instructions their allowed return sites,
   - setjmp continuation labels (targets of longjmp's indirect jump).

   Everything is label-based and position-independent; the loader lays the
   module out at its final base address. *)

type fn_info = {
  fi_name : string;            (* also the entry label *)
  fi_ty : Minic.Ast.fun_ty;
  fi_address_taken : bool;
  fi_defined : bool;           (* defined here, vs extern reference *)
}

(* One indirect-branch site. The order of the [o_sites] list is the
   module-local Bary slot order. [ret_label] fields name the (4-byte
   aligned) return site following a call. *)
type site =
  | Site_return of { fn : string }
      (* the rewritten return of function [fn] *)
  | Site_icall of { fn : string; ty : Minic.Ast.fun_ty; ret_label : string }
      (* indirect call through a pointer of type [ty], inside [fn] *)
  | Site_itail of { fn : string; ty : Minic.Ast.fun_ty }
      (* indirect tail call (jump) through a pointer of type [ty] *)
  | Site_jumptable of { fn : string; targets : string list }
      (* switch jump through a read-only table; targets statically known *)
  | Site_longjmp of { fn : string }
      (* longjmp's indirect jump: may target any setjmp continuation *)
  | Site_plt of { symbol : string }
      (* PLT entry: indirect jump through the GOT slot of [symbol] *)

(* A word of initialized data. Code and data live in disjoint address
   spaces; relocations are symbolic until load time. *)
type data_word =
  | Dint of int
  | Dsym_code of string   (* address of a code label (fptr, jump table) *)
  | Dsym_data of string   (* address of another data symbol *)

type data_def = { d_name : string; d_words : data_word list }

(* A direct call edge: caller, callee symbol, return-site label. *)
type direct_call = { dc_caller : string; dc_callee : string; dc_ret : string }

type t = {
  o_name : string;
  o_items : Vmisa.Asm.item list;
  o_data : data_def list;
  o_functions : fn_info list;
  o_sites : site list;
  o_direct_calls : direct_call list;
  o_tail_calls : (string * string) list; (* caller, callee: direct jumps *)
  o_setjmp_sites : string list;          (* aligned continuation labels *)
  o_tyenv : Minic.Types.env;
      (* the struct/union/typedef definitions the fun_tys above refer to;
         linking merges these (a simple union, paper §6) *)
  o_instrumented : bool;
}

let site_fn = function
  | Site_return { fn }
  | Site_icall { fn; _ }
  | Site_itail { fn; _ }
  | Site_jumptable { fn; _ }
  | Site_longjmp { fn } -> Some fn
  | Site_plt _ -> None

let pp_site ppf = function
  | Site_return { fn } -> Fmt.pf ppf "return@%s" fn
  | Site_icall { fn; ty; _ } ->
    Fmt.pf ppf "icall@%s:%a" fn Minic.Ast.pp_fun_ty ty
  | Site_itail { fn; ty } ->
    Fmt.pf ppf "itail@%s:%a" fn Minic.Ast.pp_fun_ty ty
  | Site_jumptable { fn; targets } ->
    Fmt.pf ppf "jumptable@%s(%d targets)" fn (List.length targets)
  | Site_longjmp { fn } -> Fmt.pf ppf "longjmp@%s" fn
  | Site_plt { symbol } -> Fmt.pf ppf "plt:%s" symbol

(* Defined code symbols of the module. *)
let defined_functions t =
  List.filter (fun fi -> fi.fi_defined) t.o_functions

(* Symbols this module needs from elsewhere. *)
let undefined_symbols t = Vmisa.Asm.undefined_labels t.o_items

let data_size t =
  List.fold_left (fun acc d -> acc + List.length d.d_words) 0 t.o_data

(* Serialization: modules can be written to disk and reloaded, which is
   what "instrument once, reuse across programs" needs.  [Marshal] stands
   in for an ELF-like container; the format is keyed so that stale files
   fail loudly. *)
let magic = "MCFI-OBJ-1"

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc t [])

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then
        invalid_arg (Printf.sprintf "%s: not an MCFI object file" path);
      (Marshal.from_channel ic : t))
