(** Code generation: typed MiniC to a (not yet instrumented) MCFI module.

    The emitted module contains raw [Ret], [Call_r] and [Jmp_r]
    instructions; {!Instrument.Rewriter} later replaces/wraps them with
    check transactions.  The generator maintains the central invariant the
    instrumenter and the CFG generator rely on:

    {e the n-th indirect-branch instruction in the item stream corresponds
       to the n-th entry of [o_sites]} (module-local Bary slot order).

    Calling convention and frame layout are documented in {!Vmisa.Abi}.
    Intrinsics ([__syscall], [__vararg], [setjmp], [longjmp]) are expanded
    inline.  [tco] enables direct and indirect tail-call optimization for
    calls in return position with matching arity — the paper's x86-64
    builds have LLVM's tail-call optimization on, which is why they show
    fewer equivalence classes than x86-32 (Table 3); [tco] reproduces that
    knob. *)

exception Unsupported of string * Minic.Ast.loc

(** [compile ?tco info] compiles a type-checked translation unit. *)
val compile : ?tco:bool -> Minic.Typecheck.tinfo -> Objfile.t

(** [compile_source ?tco ~name src] is parse + typecheck + compile. *)
val compile_source : ?tco:bool -> name:string -> string -> Objfile.t
