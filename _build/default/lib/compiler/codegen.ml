open Minic.Ast
module Instr = Vmisa.Instr
module Asm = Vmisa.Asm
module Abi = Vmisa.Abi

exception Unsupported of string * loc

let fail loc msg = raise (Unsupported (msg, loc))
let failf loc fmt = Printf.ksprintf (fail loc) fmt

(* Expression results live in registers r0..r9 indexed by depth; r10 is the
   spill partner; r11-r13 are reserved for check sequences (Instr doc). *)
let max_depth = 9
let rspill = 10

type gctx = {
  info : Minic.Typecheck.tinfo;
  tco : bool;
  mutable items : Asm.item list; (* reversed *)
  mutable data : Objfile.data_def list; (* reversed *)
  mutable sites : Objfile.site list; (* reversed *)
  mutable dcalls : Objfile.direct_call list;
  mutable tcalls : (string * string) list;
  mutable setjmps : string list;
  mutable label_count : int;
  strings : (string, string) Hashtbl.t;
  global_names : (string, ty) Hashtbl.t;
      (* globals defined here plus extern variables from other modules *)
}

type storage =
  | Slocal of int (* word offset below fp: address fp - off *)
  | Sparam of int (* address fp + 2 + index *)

type fctx = {
  g : gctx;
  fn : func;
  mutable scopes : (string * (storage * ty)) list list;
  mutable frame_used : int;
  mutable break_lbl : string list;
  mutable continue_lbl : string list;
}

let emit f item = f.g.items <- item :: f.g.items
let ins f i = emit f (Asm.I i)

let fresh_label f base =
  f.g.label_count <- f.g.label_count + 1;
  Printf.sprintf "%s$%s$%s%d" f.g.info.Minic.Typecheck.prog.pname f.fn.fname
    base f.g.label_count

let add_site f site = f.g.sites <- site :: f.g.sites

let env f = f.g.info.Minic.Typecheck.env

let resolve f t = Minic.Types.resolve (env f) t

let sizeof f t = Minic.Types.sizeof (env f) t

let intern_string g name_hint s =
  match Hashtbl.find_opt g.strings s with
  | Some sym -> sym
  | None ->
    let sym = Printf.sprintf "%s$str%d" name_hint (Hashtbl.length g.strings) in
    Hashtbl.add g.strings s sym;
    let words =
      List.init (String.length s) (fun i -> Objfile.Dint (Char.code s.[i]))
      @ [ Objfile.Dint 0 ]
    in
    g.data <- { Objfile.d_name = sym; d_words = words } :: g.data;
    sym

let lookup_var f name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some binding -> Some binding
      | None -> go rest)
  in
  go f.scopes

let is_function f name =
  lookup_var f name = None
  && Minic.Typecheck.fun_ty_of f.g.info name <> None

let declare_local f name t =
  let s = sizeof f (resolve f t) in
  let s = max s 1 in
  f.frame_used <- f.frame_used + s;
  let storage = Slocal f.frame_used in
  (match f.scopes with
  | scope :: rest -> f.scopes <- ((name, (storage, t)) :: scope) :: rest
  | [] -> assert false);
  storage

(* Total frame words a function body needs: one slot group per declaration
   (no reuse between sibling scopes — simple and correct). *)
let rec frame_words env stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s.sdesc with
      | Sdecl (t, _, _) -> max (Minic.Types.sizeof env (Minic.Types.resolve env t)) 1
      | Sblock body -> frame_words env body
      | Sif (_, a, b) ->
        frame_words env [ a ]
        + (match b with Some b -> frame_words env [ b ] | None -> 0)
      | Swhile (_, body) -> frame_words env [ body ]
      | Sfor (init, _, _, body) ->
        (match init with Some i -> frame_words env [ i ] | None -> 0)
        + frame_words env [ body ]
      | Sswitch (_, cases, default) ->
        List.fold_left (fun acc c -> acc + frame_words env c.cbody) 0 cases
        + (match default with Some b -> frame_words env b | None -> 0)
      | Sexpr _ | Sreturn _ | Sbreak | Scontinue -> 0)
    0 stmts

let reg d = d (* depth d lives in register d *)

(* ---------- addresses ---------- *)

(* Emit code leaving the address of lvalue [e] in register [d].
   For data objects the address is a data-region word address. *)
let rec gen_addr f d e =
  let loc = e.eloc in
  if d > max_depth then fail loc "expression too deep";
  match e.edesc with
  | Evar name -> begin
    match lookup_var f name with
    | Some (Slocal off, _) ->
      ins f (Instr.Mov_rr (reg d, Instr.rfp));
      ins f (Instr.Binop_i (Instr.Sub, reg d, off))
    | Some (Sparam idx, _) ->
      ins f (Instr.Mov_rr (reg d, Instr.rfp));
      ins f (Instr.Binop_i (Instr.Add, reg d, 2 + idx))
    | None ->
      if Hashtbl.mem f.g.global_names name then
        emit f (Asm.Mov_dsym (reg d, name))
      else failf loc "no address for %s" name
  end
  | Ederef inner -> gen_expr f d inner
  | Eindex (arr, idx) ->
    let elem =
      match resolve f arr.ety with
      | Tptr t -> t
      | t -> failf loc "indexing non-pointer %s" (ty_to_string t)
    in
    let scale = sizeof f elem in
    let rhs = gen_pair f d (fun d -> gen_expr f d arr) (fun d -> gen_expr f d idx) in
    if scale <> 1 then ins f (Instr.Binop_i (Instr.Mul, rhs, scale));
    ins f (Instr.Binop (Instr.Add, reg d, rhs))
  | Efield (inner, field) ->
    gen_addr f d inner;
    add_field_offset f d loc inner.ety field
  | Earrow (inner, field) ->
    gen_expr f d inner;
    let pointee =
      match resolve f inner.ety with
      | Tptr t -> t
      | t -> failf loc "-> on %s" (ty_to_string t)
    in
    add_field_offset_ty f d loc pointee field
  | Eint _ | Echar _ | Estr _ | Eunop _ | Ebinop _ | Eassign _ | Econd _
  | Ecall _ | Ecast _ | Eaddr _ | Esizeof _ ->
    fail loc "not an lvalue"

and add_field_offset f d loc owner_ty field =
  (* [owner_ty] here is the lvalue type recorded by the type checker, which
     for Efield receivers is the struct/union type itself *)
  add_field_offset_ty f d loc owner_ty field

and add_field_offset_ty f d loc owner_ty field =
  let fields =
    match resolve f owner_ty with
    | Tstruct name -> begin
      match Minic.Types.struct_fields (env f) name with
      | Some fs -> fs
      | None -> failf loc "unknown struct %s" name
    end
    | Tunion name -> begin
      match Minic.Types.union_fields (env f) name with
      | Some fs -> List.map (fun (n, t) -> (n, t)) fs
      | None -> failf loc "unknown union %s" name
    end
    | t -> failf loc "field access on %s" (ty_to_string t)
  in
  let off =
    match resolve f owner_ty with
    | Tunion _ -> 0 (* all union members share the base address *)
    | _ -> (
      match Minic.Types.field_offset (env f) fields field with
      | Some (off, _) -> off
      | None -> failf loc "no field %s" field)
  in
  if off <> 0 then ins f (Instr.Binop_i (Instr.Add, reg d, off))

(* Evaluate two sub-expressions: the first into register [d], the second
   into the returned register (r(d+1), or r10 after a spill round-trip). *)
and gen_pair f d gen1 gen2 =
  if d + 1 <= max_depth then begin
    gen1 d;
    gen2 (d + 1);
    reg (d + 1)
  end
  else begin
    gen1 d;
    ins f (Instr.Push (reg d));
    gen2 d;
    ins f (Instr.Mov_rr (rspill, reg d));
    ins f (Instr.Pop (reg d));
    rspill
  end

(* ---------- expressions ---------- *)

(* Emit code leaving the rvalue of [e] in register [d]. *)
and gen_expr f d e =
  let loc = e.eloc in
  if d > max_depth then fail loc "expression too deep";
  match e.edesc with
  | Eint n -> ins f (Instr.Mov_ri (reg d, n))
  | Echar c -> ins f (Instr.Mov_ri (reg d, Char.code c))
  | Estr s ->
    let sym = intern_string f.g f.g.info.prog.pname s in
    emit f (Asm.Mov_dsym (reg d, sym))
  | Evar name -> begin
    match lookup_var f name with
    | Some (storage, t) -> begin
      match resolve f t with
      | Tarray _ | Tstruct _ | Tunion _ ->
        gen_addr f d e (* decay to the object's address *)
      | _ -> begin
        match storage with
        | Slocal off -> ins f (Instr.Load (reg d, Instr.rfp, -off))
        | Sparam idx -> ins f (Instr.Load (reg d, Instr.rfp, 2 + idx))
      end
    end
    | None ->
      if is_function f name then emit f (Asm.Mov_sym (reg d, name))
      else begin
        match Hashtbl.find_opt f.g.global_names name with
        | Some t -> begin
          match resolve f t with
          | Tarray _ | Tstruct _ | Tunion _ -> emit f (Asm.Mov_dsym (reg d, name))
          | _ ->
            emit f (Asm.Mov_dsym (reg d, name));
            ins f (Instr.Load (reg d, reg d, 0))
        end
        | None -> failf loc "unbound %s" name
      end
  end
  | Eunop (Neg, inner) ->
    gen_expr f d inner;
    ins f (Instr.Binop_i (Instr.Mul, reg d, -1))
  | Eunop (Bitnot, inner) ->
    gen_expr f d inner;
    ins f (Instr.Binop_i (Instr.Xor, reg d, -1))
  | Eunop (Lognot, inner) ->
    gen_expr f d inner;
    gen_bool_of_flags f d (fun () -> ins f (Instr.Cmp_ri (reg d, 0))) Instr.Eq
  | Ebinop ((Land | Lor) as op, a, b) -> gen_shortcircuit f d op a b
  | Ebinop ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
    let rhs = gen_pair f d (fun d -> gen_expr f d a) (fun d -> gen_expr f d b) in
    gen_bool_of_flags f d
      (fun () -> ins f (Instr.Cmp_rr (reg d, rhs)))
      (cond_of_binop op)
  | Ebinop (op, a, b) ->
    let scaled_ptr_arith =
      (* pointer +/- integer scales by the pointee size *)
      match (op, resolve f a.ety, resolve f b.ety) with
      | (Add | Sub), Tptr t, (Tint | Tchar) -> Some (`Right, sizeof f t)
      | Add, (Tint | Tchar), Tptr t -> Some (`Left, sizeof f t)
      | Sub, Tptr t, Tptr _ -> Some (`Divide, sizeof f t)
      | _ -> None
    in
    let rhs = gen_pair f d (fun d -> gen_expr f d a) (fun d -> gen_expr f d b) in
    (match scaled_ptr_arith with
    | Some (`Right, s) when s <> 1 -> ins f (Instr.Binop_i (Instr.Mul, rhs, s))
    | Some (`Left, s) when s <> 1 ->
      ins f (Instr.Binop_i (Instr.Mul, reg d, s))
    | _ -> ());
    ins f (Instr.Binop (vm_binop op, reg d, rhs));
    (match scaled_ptr_arith with
    | Some (`Divide, s) when s <> 1 ->
      ins f (Instr.Binop_i (Instr.Div, reg d, s))
    | _ -> ())
  | Eassign (lhs, rhs) -> gen_assign f d lhs rhs
  | Econd (c, a, b) ->
    let lbl_else = fresh_label f "else" in
    let lbl_end = fresh_label f "end" in
    gen_branch_if_false f d c lbl_else;
    gen_expr f d a;
    emit f (Asm.Jmp_sym lbl_end);
    emit f (Asm.Label lbl_else);
    gen_expr f d b;
    emit f (Asm.Label lbl_end)
  | Ecall (callee, args) -> gen_call f d loc callee args
  | Ecast (_, inner) -> gen_expr f d inner (* all scalars are words *)
  | Eaddr inner -> begin
    match inner.edesc with
    | Evar name when is_function f name && lookup_var f name = None ->
      emit f (Asm.Mov_sym (reg d, name))
    | _ -> gen_addr f d inner
  end
  | Ederef _ | Efield _ | Earrow _ | Eindex _ -> begin
    (* the node's [ety] is already decayed by the type checker, so the
       load-vs-address decision needs the object (lvalue) type *)
    gen_addr f d e;
    match resolve f (object_ty f loc e) with
    | Tarray _ | Tstruct _ | Tunion _ -> () (* decayed: address is the value *)
    | _ -> ins f (Instr.Load (reg d, reg d, 0))
  end
  | Esizeof t -> ins f (Instr.Mov_ri (reg d, sizeof f t))

(* The object (lvalue) type of a memory-designating expression. *)
and object_ty f loc e =
  match e.edesc with
  | Ederef inner | Eindex (inner, _) -> begin
    match resolve f inner.ety with
    | Tptr t -> t
    | t -> failf loc "dereferencing %s" (ty_to_string t)
  end
  | Efield (inner, field) -> field_ty f loc inner.ety field
  | Earrow (inner, field) -> begin
    match resolve f inner.ety with
    | Tptr owner -> field_ty f loc owner field
    | t -> failf loc "-> on %s" (ty_to_string t)
  end
  | _ -> e.ety

and field_ty f loc owner field =
  let fields =
    match resolve f owner with
    | Tstruct name -> Minic.Types.struct_fields (env f) name
    | Tunion name -> Minic.Types.union_fields (env f) name
    | t -> failf loc "field access on %s" (ty_to_string t)
  in
  match fields with
  | Some fs -> begin
    match List.assoc_opt field fs with
    | Some t -> t
    | None -> failf loc "no field %s" field
  end
  | None -> failf loc "unknown composite type"

and vm_binop = function
  | Add -> Instr.Add | Sub -> Instr.Sub | Mul -> Instr.Mul
  | Div -> Instr.Div | Mod -> Instr.Mod | Band -> Instr.And
  | Bor -> Instr.Or | Bxor -> Instr.Xor | Shl -> Instr.Shl | Shr -> Instr.Shr
  | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> assert false

and cond_of_binop = function
  | Eq -> Instr.Eq | Ne -> Instr.Ne | Lt -> Instr.Lt
  | Le -> Instr.Le | Gt -> Instr.Gt | Ge -> Instr.Ge
  | _ -> assert false

(* Materialize a 0/1 from a comparison: [set_flags (); Jcc cond true]. *)
and gen_bool_of_flags f d set_flags cond =
  let lbl_true = fresh_label f "true" in
  let lbl_end = fresh_label f "bend" in
  set_flags ();
  emit f (Asm.Jcc_sym (cond, lbl_true));
  ins f (Instr.Mov_ri (reg d, 0));
  emit f (Asm.Jmp_sym lbl_end);
  emit f (Asm.Label lbl_true);
  ins f (Instr.Mov_ri (reg d, 1));
  emit f (Asm.Label lbl_end)

and gen_shortcircuit f d op a b =
  let lbl_out = fresh_label f "sc" in
  let lbl_end = fresh_label f "scend" in
  gen_expr f d a;
  ins f (Instr.Cmp_ri (reg d, 0));
  (match op with
  | Land -> emit f (Asm.Jcc_sym (Instr.Eq, lbl_out)) (* 0 && _ = 0 *)
  | Lor -> emit f (Asm.Jcc_sym (Instr.Ne, lbl_out)) (* 1 || _ = 1 *)
  | _ -> assert false);
  gen_expr f d b;
  ins f (Instr.Cmp_ri (reg d, 0));
  gen_bool_of_flags f d (fun () -> ()) Instr.Ne;
  emit f (Asm.Jmp_sym lbl_end);
  emit f (Asm.Label lbl_out);
  ins f (Instr.Mov_ri (reg d, (match op with Land -> 0 | _ -> 1)));
  emit f (Asm.Label lbl_end)

(* Conditional branch on falsity of [c], used by if/while/for/?: . *)
and gen_branch_if_false f d c lbl =
  match c.edesc with
  | Ebinop ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
    let rhs = gen_pair f d (fun d -> gen_expr f d a) (fun d -> gen_expr f d b) in
    ins f (Instr.Cmp_rr (reg d, rhs));
    emit f (Asm.Jcc_sym (negate (cond_of_binop op), lbl))
  | _ ->
    gen_expr f d c;
    ins f (Instr.Cmp_ri (reg d, 0));
    emit f (Asm.Jcc_sym (Instr.Eq, lbl))

and negate = function
  | Instr.Eq -> Instr.Ne | Instr.Ne -> Instr.Eq | Instr.Lt -> Instr.Ge
  | Instr.Le -> Instr.Gt | Instr.Gt -> Instr.Le | Instr.Ge -> Instr.Lt

and gen_assign f d lhs rhs =
  (* Value of the assignment = the stored value, left in reg d. *)
  match lhs.edesc with
  | Evar name when lookup_var f name <> None -> begin
    gen_expr f d rhs;
    match lookup_var f name with
    | Some (Slocal off, _) -> ins f (Instr.Store (Instr.rfp, -off, reg d))
    | Some (Sparam idx, _) -> ins f (Instr.Store (Instr.rfp, 2 + idx, reg d))
    | None -> assert false
  end
  | _ ->
    let rhs_reg =
      gen_pair f d (fun d -> gen_expr f d rhs) (fun d -> gen_addr f d lhs)
    in
    (* rhs value in reg d, address in rhs_reg *)
    ins f (Instr.Store (rhs_reg, 0, reg d))

(* ---------- calls ---------- *)

and gen_call f d loc callee args =
  match callee.edesc with
  | Evar "__syscall" -> gen_syscall f d loc args
  | Evar "__vararg" -> gen_vararg f d loc args
  | Evar "setjmp" when lookup_var f "setjmp" = None -> gen_setjmp f d loc args
  | Evar "longjmp" when lookup_var f "longjmp" = None ->
    gen_longjmp f d loc args
  | Evar name when is_function f name ->
    gen_direct_call f d loc name args
  | _ -> gen_indirect_call f d loc callee args

and with_saved f d k =
  (* Caller-saved discipline around a call at expression depth [d]: stash
     live temporaries r0..r(d-1), run the call, move the result from r0 to
     reg d, restore. *)
  for i = 0 to d - 1 do
    ins f (Instr.Push (reg i))
  done;
  k ();
  if d > 0 then ins f (Instr.Mov_rr (reg d, 0));
  for i = d - 1 downto 0 do
    ins f (Instr.Pop (reg i))
  done

and push_args f args =
  (* right-to-left, each evaluated at depth 0 (temporaries are saved) *)
  List.iter
    (fun arg ->
      gen_expr f 0 arg;
      ins f (Instr.Push (reg 0)))
    (List.rev args)

and gen_direct_call f d _loc name args =
  (* Tail-call opportunity is handled at the statement level; this is the
     plain call. *)
  with_saved f d (fun () ->
      push_args f args;
      let ret_lbl = fresh_label f "ret" in
      emit f (Asm.Call_sym name);
      emit f (Asm.Label ret_lbl);
      if args <> [] then
        ins f (Instr.Binop_i (Instr.Add, Instr.rsp, List.length args));
      f.g.dcalls <-
        { Objfile.dc_caller = f.fn.fname; dc_callee = name; dc_ret = ret_lbl }
        :: f.g.dcalls)

and site_fun_ty f loc callee =
  match resolve f callee.ety with
  | Tptr t -> begin
    match resolve f t with
    | Tfun ft -> ft
    | t -> failf loc "indirect call through %s" (ty_to_string t)
  end
  | Tfun ft -> ft
  | t -> failf loc "indirect call through %s" (ty_to_string t)

and gen_indirect_call f d loc callee args =
  let ft = site_fun_ty f loc callee in
  with_saved f d (fun () ->
      (* the function pointer is evaluated before the arguments and parked
         on the stack, below the pushed arguments (argument evaluation may
         itself spill through the scratch register) *)
      gen_expr f 0 callee;
      ins f (Instr.Push (reg 0));
      push_args f args;
      ins f (Instr.Load (rspill, Instr.rsp, List.length args));
      let ret_lbl = fresh_label f "ret" in
      ins f (Instr.Call_r rspill);
      emit f (Asm.Label ret_lbl);
      ins f (Instr.Binop_i (Instr.Add, Instr.rsp, List.length args + 1));
      add_site f
        (Objfile.Site_icall { fn = f.fn.fname; ty = ft; ret_label = ret_lbl }))

and gen_syscall f d loc args =
  if List.length args > 4 then fail loc "__syscall takes at most 4 arguments";
  with_saved f d (fun () ->
      (* evaluate arguments left to right into r0..r3 via the stack *)
      List.iter
        (fun arg ->
          gen_expr f 0 arg;
          ins f (Instr.Push (reg 0)))
        args;
      for i = List.length args - 1 downto 0 do
        ins f (Instr.Pop (reg i))
      done;
      ins f Instr.Syscall)

and gen_vararg f d loc args =
  match args with
  | [ k ] ->
    let nfixed = List.length f.fn.fparams in
    gen_expr f d k;
    ins f (Instr.Binop_i (Instr.Add, reg d, 2 + nfixed));
    ins f (Instr.Binop (Instr.Add, reg d, Instr.rfp));
    ins f (Instr.Load (reg d, reg d, 0))
  | _ -> fail loc "__vararg takes exactly one argument"

and gen_setjmp f d loc args =
  if d <> 0 then
    fail loc "setjmp is only supported at statement depth (e.g. if (setjmp(b)))";
  match args with
  | [ buf ] ->
    let cont = fresh_label f "setjmp" in
    gen_expr f 0 buf;
    emit f (Asm.Mov_sym (reg 1, cont));
    ins f (Instr.Store (reg 0, 0, Instr.rsp));
    ins f (Instr.Store (reg 0, 1, Instr.rfp));
    ins f (Instr.Store (reg 0, 2, reg 1));
    ins f (Instr.Mov_ri (reg 0, 0));
    emit f (Asm.Label cont);
    (* on both the direct path and the longjmp path, r0 holds the result *)
    f.g.setjmps <- cont :: f.g.setjmps
  | _ -> fail loc "setjmp takes exactly one argument"

and gen_longjmp f _d loc args =
  match args with
  | [ buf; v ] ->
    gen_expr f 0 buf;
    gen_expr f 1 v;
    ins f (Instr.Load (Instr.rsp, reg 0, 0));
    ins f (Instr.Load (Instr.rfp, reg 0, 1));
    ins f (Instr.Load (rspill, reg 0, 2));
    ins f (Instr.Mov_rr (reg 0, reg 1));
    ins f (Instr.Jmp_r rspill);
    add_site f (Objfile.Site_longjmp { fn = f.fn.fname })
  | _ -> fail loc "longjmp takes exactly two arguments"

(* ---------- statements ---------- *)

let gen_epilogue f =
  ins f (Instr.Mov_rr (Instr.rsp, Instr.rfp));
  ins f (Instr.Pop Instr.rfp)

let gen_return_instr f =
  gen_epilogue f;
  ins f Instr.Ret;
  add_site f (Objfile.Site_return { fn = f.fn.fname })

(* Direct/indirect tail call in return position: overwrite the incoming
   argument slots, tear the frame down, and jump. Only applies when the
   arities match (the frame is reused in place). Evaluation order matches
   the regular call path exactly — callee first, then arguments pushed
   right-to-left — so optimized and unoptimized builds execute side
   effects in the same order. *)
let try_tailcall f e =
  if not f.g.tco then false
  else
    match e.edesc with
    | Ecall (callee, args) when List.length args = List.length f.fn.fparams
      -> begin
      let pop_args_into_slots () =
        List.iteri
          (fun i _ ->
            ins f (Instr.Pop (reg 0));
            ins f (Instr.Store (Instr.rfp, 2 + i, reg 0)))
          args
      in
      match callee.edesc with
      | Evar name
        when (name = "__syscall" || name = "__vararg" || name = "setjmp"
             || name = "longjmp")
             && lookup_var f name = None ->
        false
      | Evar name when is_function f name ->
        push_args f args;
        pop_args_into_slots ();
        gen_epilogue f;
        emit f (Asm.Jmp_sym name);
        f.g.tcalls <- (f.fn.fname, name) :: f.g.tcalls;
        true
      | _ ->
        let ft = site_fun_ty f e.eloc callee in
        (* the pointer is evaluated before the arguments (as in the
           regular path) and parked on the stack below them *)
        gen_expr f 0 callee;
        ins f (Instr.Push (reg 0));
        push_args f args;
        pop_args_into_slots ();
        ins f (Instr.Pop rspill);
        gen_epilogue f;
        ins f (Instr.Jmp_r rspill);
        add_site f (Objfile.Site_itail { fn = f.fn.fname; ty = ft });
        true
    end
    | _ -> false

let in_scope f k =
  f.scopes <- [] :: f.scopes;
  Fun.protect ~finally:(fun () -> f.scopes <- List.tl f.scopes) k

let rec gen_stmt f s =
  match s.sdesc with
  | Sexpr e -> gen_expr f 0 e
  | Sdecl (t, name, init) -> begin
    let storage = declare_local f name t in
    match init with
    | Some e -> begin
      if sizeof f (resolve f t) > 1 then
        fail s.sloc "aggregate initialization of locals is not supported";
      gen_expr f 0 e;
      match storage with
      | Slocal off -> ins f (Instr.Store (Instr.rfp, -off, reg 0))
      | Sparam _ -> assert false
    end
    | None -> ()
  end
  | Sif (c, then_, else_) -> begin
    let lbl_else = fresh_label f "ifelse" in
    let lbl_end = fresh_label f "ifend" in
    gen_branch_if_false f 0 c lbl_else;
    in_scope f (fun () -> gen_stmt f then_);
    match else_ with
    | Some else_ ->
      emit f (Asm.Jmp_sym lbl_end);
      emit f (Asm.Label lbl_else);
      in_scope f (fun () -> gen_stmt f else_);
      emit f (Asm.Label lbl_end)
    | None -> emit f (Asm.Label lbl_else)
  end
  | Swhile (c, body) ->
    let lbl_head = fresh_label f "while" in
    let lbl_end = fresh_label f "wend" in
    emit f (Asm.Label lbl_head);
    gen_branch_if_false f 0 c lbl_end;
    with_loop f ~break_:lbl_end ~continue_:lbl_head (fun () ->
        in_scope f (fun () -> gen_stmt f body));
    emit f (Asm.Jmp_sym lbl_head);
    emit f (Asm.Label lbl_end)
  | Sfor (init, cond, step, body) ->
    in_scope f (fun () ->
        Option.iter (gen_stmt f) init;
        let lbl_head = fresh_label f "for" in
        let lbl_step = fresh_label f "fstep" in
        let lbl_end = fresh_label f "fend" in
        emit f (Asm.Label lbl_head);
        Option.iter (fun c -> gen_branch_if_false f 0 c lbl_end) cond;
        with_loop f ~break_:lbl_end ~continue_:lbl_step (fun () ->
            in_scope f (fun () -> gen_stmt f body));
        emit f (Asm.Label lbl_step);
        Option.iter (fun e -> gen_expr f 0 e) step;
        emit f (Asm.Jmp_sym lbl_head);
        emit f (Asm.Label lbl_end))
  | Sreturn None ->
    gen_return_instr f
  | Sreturn (Some e) ->
    if not (try_tailcall f e) then begin
      gen_expr f 0 e;
      gen_return_instr f
    end
  | Sblock body -> in_scope f (fun () -> List.iter (gen_stmt f) body)
  | Sbreak -> begin
    match f.break_lbl with
    | lbl :: _ -> emit f (Asm.Jmp_sym lbl)
    | [] -> fail s.sloc "break outside a loop"
  end
  | Scontinue -> begin
    match f.continue_lbl with
    | lbl :: _ -> emit f (Asm.Jmp_sym lbl)
    | [] -> fail s.sloc "continue outside a loop"
  end
  | Sswitch (scrutinee, cases, default) ->
    gen_switch f scrutinee cases default

and with_loop f ~break_ ~continue_ k =
  f.break_lbl <- break_ :: f.break_lbl;
  f.continue_lbl <- continue_ :: f.continue_lbl;
  Fun.protect
    ~finally:(fun () ->
      f.break_lbl <- List.tl f.break_lbl;
      f.continue_lbl <- List.tl f.continue_lbl)
    k

and gen_switch f scrutinee cases default =
  let lbl_end = fresh_label f "swend" in
  let lbl_default = fresh_label f "swdef" in
  let case_labels =
    List.map (fun c -> (c, fresh_label f "case")) cases
  in
  let values = List.concat_map (fun c -> c.cvalues) cases in
  gen_expr f 0 scrutinee;
  (match values with
  | [] -> emit f (Asm.Jmp_sym lbl_default)
  | _ ->
    let lo = List.fold_left min max_int values in
    let hi = List.fold_left max min_int values in
    let dense =
      List.length values >= 4 && hi - lo < 4 * List.length values
    in
    if dense then begin
      (* jump table: the indirect jump whose targets are statically known
         (paper §6: intraprocedural indirect jumps are resolved from the
         read-only jump table, not by type matching) *)
      let table = Array.make (hi - lo + 1) lbl_default in
      List.iter
        (fun (c, lbl) ->
          List.iter (fun v -> table.(v - lo) <- lbl) c.cvalues)
        case_labels;
      let jt_sym = fresh_label f "jt" in
      f.g.data <-
        {
          Objfile.d_name = jt_sym;
          d_words =
            Array.to_list (Array.map (fun l -> Objfile.Dsym_code l) table);
        }
        :: f.g.data;
      ins f (Instr.Cmp_ri (reg 0, lo));
      emit f (Asm.Jcc_sym (Instr.Lt, lbl_default));
      ins f (Instr.Cmp_ri (reg 0, hi));
      emit f (Asm.Jcc_sym (Instr.Gt, lbl_default));
      if lo <> 0 then ins f (Instr.Binop_i (Instr.Sub, reg 0, lo));
      emit f (Asm.Mov_dsym (reg 1, jt_sym));
      ins f (Instr.Binop (Instr.Add, reg 1, reg 0));
      ins f (Instr.Load (reg 1, reg 1, 0));
      ins f (Instr.Jmp_r (reg 1));
      add_site f
        (Objfile.Site_jumptable
           {
             fn = f.fn.fname;
             targets =
               lbl_default
               :: List.map snd case_labels;
           })
    end
    else begin
      List.iter
        (fun (c, lbl) ->
          List.iter
            (fun v ->
              ins f (Instr.Cmp_ri (reg 0, v));
              emit f (Asm.Jcc_sym (Instr.Eq, lbl)))
            c.cvalues)
        case_labels;
      emit f (Asm.Jmp_sym lbl_default)
    end);
  with_loop f ~break_:lbl_end ~continue_:lbl_end (fun () ->
      List.iter
        (fun (c, lbl) ->
          emit f (Asm.Label lbl);
          in_scope f (fun () -> List.iter (gen_stmt f) c.cbody);
          emit f (Asm.Jmp_sym lbl_end))
        case_labels;
      emit f (Asm.Label lbl_default);
      (match default with
      | Some body -> in_scope f (fun () -> List.iter (gen_stmt f) body)
      | None -> ());
      emit f (Asm.Label lbl_end))

(* ---------- functions, globals, module assembly ---------- *)

let gen_function g fn =
  let env = g.info.Minic.Typecheck.env in
  let f =
    {
      g;
      fn;
      scopes = [ List.mapi (fun i (name, t) -> (name, (Sparam i, t))) fn.fparams ];
      frame_used = 0;
      break_lbl = [];
      continue_lbl = [];
    }
  in
  List.iter
    (fun (name, t) ->
      match Minic.Types.resolve env t with
      | Tstruct _ | Tunion _ | Tarray _ ->
        failf fn.floc "aggregate parameter %s is not supported" name
      | _ -> ())
    fn.fparams;
  let frame = frame_words env fn.fbody in
  emit f (Asm.Label fn.fname);
  ins f (Instr.Push Instr.rfp);
  ins f (Instr.Mov_rr (Instr.rfp, Instr.rsp));
  if frame > 0 then ins f (Instr.Binop_i (Instr.Sub, Instr.rsp, frame));
  in_scope f (fun () -> List.iter (gen_stmt f) fn.fbody);
  (* implicit return for functions that fall off the end *)
  ins f (Instr.Mov_ri (reg 0, 0));
  gen_return_instr f

(* Constant evaluation for global initializers. *)
let rec const_word g loc (e : expr) : Objfile.data_word =
  match e.edesc with
  | Eint n -> Objfile.Dint n
  | Echar c -> Objfile.Dint (Char.code c)
  | Estr s -> Objfile.Dsym_data (intern_string g g.info.prog.pname s)
  | Ecast (_, inner) -> const_word g loc inner
  | Eunop (Neg, { edesc = Eint n; _ }) -> Objfile.Dint (-n)
  | Evar name when Minic.Typecheck.fun_ty_of g.info name <> None ->
    Objfile.Dsym_code name
  | Eaddr { edesc = Evar name; _ } ->
    if Minic.Typecheck.fun_ty_of g.info name <> None then
      Objfile.Dsym_code name
    else Objfile.Dsym_data name
  | Ebinop (op, a, b) -> begin
    match (const_word g loc a, const_word g loc b) with
    | Objfile.Dint x, Objfile.Dint y -> begin
      let i =
        match op with
        | Add -> x + y | Sub -> x - y | Mul -> x * y
        | Div -> x / y | Mod -> x mod y | Band -> x land y
        | Bor -> x lor y | Bxor -> x lxor y | Shl -> x lsl y
        | Shr -> x asr y
        | Eq -> Bool.to_int (x = y) | Ne -> Bool.to_int (x <> y)
        | Lt -> Bool.to_int (x < y) | Le -> Bool.to_int (x <= y)
        | Gt -> Bool.to_int (x > y) | Ge -> Bool.to_int (x >= y)
        | Land -> Bool.to_int (x <> 0 && y <> 0)
        | Lor -> Bool.to_int (x <> 0 || y <> 0)
      in
      Objfile.Dint i
    end
    | _ -> fail loc "global initializer is not a constant"
  end
  | _ -> fail loc "global initializer is not a constant"

let gen_global g (name, t, init) =
  let env = g.info.Minic.Typecheck.env in
  let size = max (Minic.Types.sizeof env (Minic.Types.resolve env t)) 1 in
  let words =
    match init with
    | None -> List.init size (fun _ -> Objfile.Dint 0)
    | Some (Iexpr e) ->
      if size <> 1 then fail no_loc "scalar initializer on aggregate global";
      [ const_word g no_loc e ]
    | Some (Ilist es) ->
      let given = List.map (const_word g no_loc) es in
      if List.length given > size then
        failf no_loc "too many initializers for %s" name;
      given @ List.init (size - List.length given) (fun _ -> Objfile.Dint 0)
  in
  g.data <- { Objfile.d_name = name; d_words = words } :: g.data

let compile ?(tco = false) (info : Minic.Typecheck.tinfo) =
  let g =
    {
      info;
      tco;
      items = [];
      data = [];
      sites = [];
      dcalls = [];
      tcalls = [];
      setjmps = [];
      label_count = 0;
      strings = Hashtbl.create 16;
      global_names = Hashtbl.create 16;
    }
  in
  List.iter
    (function
      | Dglobal (t, name, _) | Dextern_var (name, t) ->
        Hashtbl.replace g.global_names name t
      | Dstruct _ | Dunion _ | Dtypedef _ | Dextern_fun _ | Dfun _ -> ())
    info.prog.pdecls;
  List.iter (gen_global g) info.globals;
  (* Compile functions in declaration order. *)
  List.iter
    (function
      | Dfun fn -> gen_function g fn
      | Dstruct _ | Dunion _ | Dtypedef _ | Dglobal _ | Dextern_fun _
      | Dextern_var _ -> ())
    info.prog.pdecls;
  let functions =
    List.map
      (fun (name, fn) ->
        {
          Objfile.fi_name = name;
          fi_ty = fun_ty_of_func fn;
          fi_address_taken = List.mem name info.address_taken;
          fi_defined = true;
        })
      info.funcs
    @ List.filter_map
        (fun (name, ft) ->
          if List.mem_assoc name info.funcs then None
          else if List.mem_assoc name Minic.Typecheck.intrinsics then None
          else
            Some
              {
                Objfile.fi_name = name;
                fi_ty = ft;
                fi_address_taken = List.mem name info.address_taken;
                fi_defined = false;
              })
        info.protos
  in
  {
    Objfile.o_name = info.prog.pname;
    o_items = List.rev g.items;
    o_data = List.rev g.data;
    o_functions = functions;
    o_sites = List.rev g.sites;
    o_direct_calls = List.rev g.dcalls;
    o_tail_calls = List.rev g.tcalls;
    o_setjmp_sites = List.rev g.setjmps;
    o_tyenv = info.env;
    o_instrumented = false;
  }

let compile_source ?tco ~name src =
  compile ?tco (Minic.Typecheck.check (Minic.Parser.parse ~name src))
