lib/suite/programs.mli:
