lib/suite/libc.ml:
