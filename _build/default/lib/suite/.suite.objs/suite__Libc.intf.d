lib/suite/libc.mli:
