(* The mini libc, written in MiniC — the analog of the paper's ported MUSL
   (§7: system calls are rewritten into MCFI runtime API invocations; libc
   is built as an ordinary MCFI module and instrumented like any other).

   [header] declares the prototypes programs include; [source] is the
   implementation module.  printf is variadic and exercises the paper's
   special varargs rule for type-matching CFG generation. *)

let header =
  {|
extern void exit(int code);
extern void print_int(int v);
extern void print_str(char *s);
extern void print_char(int c);
extern void *malloc(int words);
extern void free(void *p);
extern int dlopen(char *name);
extern int cycles(void);
extern int rand_int(int bound);
extern int strlen(char *s);
extern int strcmp(char *a, char *b);
extern void strcpy(char *dst, char *src);
extern void memset(int *p, int v, int n);
extern void memcpy(int *dst, int *src, int n);
extern int abs_int(int x);
extern int printf(char *fmt, ...);
|}

let source =
  {|
void exit(int code) { __syscall(0, code); }
void print_int(int v) { __syscall(1, v); }
void print_str(char *s) { __syscall(2, s); }

void print_char(int c) {
  char buf[2];
  buf[0] = (char) c;
  buf[1] = (char) 0;
  print_str(buf);
}

void *malloc(int words) {
  /* the runtime's sbrk is a bump allocator */
  if (words < 1) { words = 1; }
  return (void *) __syscall(3, words);
}

void free(void *p) {
  /* bump allocation: free is a no-op, as in many embedded allocators */
}

int dlopen(char *name) { return __syscall(4, name); }

int cycles(void) { return __syscall(6); }

int rand_int(int bound) {
  int r = __syscall(7);
  if (bound < 1) { return 0; }
  return r % bound;
}

int strlen(char *s) {
  int n = 0;
  while (s[n] != (char) 0) { n = n + 1; }
  return n;
}

int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] != (char) 0 && b[i] != (char) 0) {
    if (a[i] < b[i]) { return -1; }
    if (a[i] > b[i]) { return 1; }
    i = i + 1;
  }
  if (a[i] < b[i]) { return -1; }
  if (a[i] > b[i]) { return 1; }
  return 0;
}

void strcpy(char *dst, char *src) {
  int i = 0;
  while (src[i] != (char) 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = (char) 0;
}

void memset(int *p, int v, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { p[i] = v; }
}

void memcpy(int *dst, int *src, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { dst[i] = src[i]; }
}

int abs_int(int x) {
  if (x < 0) { return -x; }
  return x;
}

int print_decimal(int v) {
  char buf[24];
  int i = 0;
  int j;
  int neg = 0;
  if (v < 0) { neg = 1; v = -v; }
  if (v == 0) { buf[0] = '0'; i = 1; }
  while (v > 0) {
    buf[i] = (char) ('0' + (v % 10));
    v = v / 10;
    i = i + 1;
  }
  if (neg) { print_char('-'); }
  for (j = i - 1; j >= 0; j = j - 1) { print_char((int) buf[j]); }
  return i;
}

int printf(char *fmt, ...) {
  int i = 0;
  int next = 0;
  int printed = 0;
  while (fmt[i] != (char) 0) {
    if (fmt[i] == '%') {
      i = i + 1;
      if (fmt[i] == 'd') {
        printed = printed + print_decimal(__vararg(next));
        next = next + 1;
      } else if (fmt[i] == 's') {
        print_str((char *) __vararg(next));
        next = next + 1;
      } else if (fmt[i] == 'c') {
        print_char(__vararg(next));
        next = next + 1;
        printed = printed + 1;
      } else if (fmt[i] == '%') {
        print_char('%');
        printed = printed + 1;
      } else {
        print_char('%');
        print_char((int) fmt[i]);
      }
    } else {
      print_char((int) fmt[i]);
      printed = printed + 1;
    }
    i = i + 1;
  }
  return printed;
}
|}
