(** The mini libc, written in MiniC (paper §7: MUSL, ported to the MCFI
    runtime API and instrumented like any other module). *)

(** Prototypes for programs to include (the pipeline prepends this to
    every user module, playing the role of the libc headers). *)
val header : string

(** The implementation translation unit: syscall wrappers, strings,
    memory, and a variadic [printf]. *)
val source : string
