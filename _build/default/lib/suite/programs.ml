(* The benchmark suite: twelve MiniC programs shaped after the
   SPECCPU2006 C benchmarks the paper evaluates (§8).  Each is a real
   workload (interpreter, compressor, game search, …) with the
   function-pointer and cast patterns the paper's Table 1/2 analysis
   found in its counterpart: perlite and cc_mini carry many C1 cast
   sites (like perlbench/gcc), mcf/gomoku/sjeng/lbm are cast-clean, the
   numeric kernels use fixed-point integer arithmetic (MiniC has no
   floats; documented in DESIGN.md).

   Every program prints a deterministic checksum, so plain and
   instrumented builds can be compared output-for-output. *)

type benchmark = {
  name : string;
  spec_name : string;  (* the SPECCPU2006 benchmark it is shaped after *)
  description : string;
  source : string;
  expected_exit : int;
}

(* --------------------------------------------------------------- *)
(* perlite — perlbench: a stack-bytecode interpreter with an opcode
   dispatch table, generic void* cells (K2 casts), polymorphic handler
   structs (UC/DC), malloc'd interpreter state (MF), NULL'd trace hooks
   (SU) and one dead incompatible pointer (an unfixed K1, like gcc's). *)

let perlite =
  {|
typedef int (*op_fn)(int, int);

int op_add(int a, int b) { return a + b; }
int op_sub(int a, int b) { return a - b; }
int op_mul(int a, int b) { return a * b; }
int op_mod(int a, int b) { if (b == 0) { return 0; } return a % b; }

op_fn arith[4] = { op_add, op_sub, op_mul, op_mod };

struct interp {
  int sp;
  int pc;
  int *stack;
  int (*trace)(int);
};

struct handler {
  int tag;
  int (*run)(struct handler *h, int x);
};

struct scale_handler {
  int tag;
  int (*run)(struct handler *h, int x);
  int factor;
};

int run_scale(struct handler *h, int x) {
  struct scale_handler *s = (struct scale_handler *) h; /* DC: tagged */
  return x * s->factor;
}

struct handler *the_handler;

void install_handler(struct handler *h) { the_handler = h; }

int interp_alive(void *p) {
  return ((struct interp *) p)->sp >= 0; /* NF: non-fptr field access */
}

int run_program(struct interp *it, int *code, int n, int seedv) {
  int acc = seedv;
  it->pc = 0;
  it->sp = 0;
  while (it->pc < n) {
    int op = code[it->pc];
    if (op == 0) {
      it->pc = it->pc + 1;
      it->stack[it->sp] = code[it->pc];
      it->sp = it->sp + 1;
    } else if (op <= 4) {
      int b = it->stack[it->sp - 1];
      it->sp = it->sp - 1;
      /* dispatch through a generic cell, as the real interpreter stores
         handlers in untyped slots: a K2 cast pair */
      void *saved = (void *) arith[op - 1];
      op_fn back = (op_fn) saved;
      acc = back(acc, b);
    } else if (op == 5) {
      acc = the_handler->run(the_handler, acc);
    }
    it->pc = it->pc + 1;
  }
  return acc;
}

/* a dead, incompatibly typed pointer: an unfixed (never used) K1 */
int (*dead_hook)(char *) = (int (*)(char *)) op_add;

int main() {
  struct interp *it = (struct interp *) malloc(4); /* MF */
  struct scale_handler sh;
  int code[12];
  int rounds;
  int acc = 0;
  it->stack = (int *) malloc(64);
  it->trace = 0; /* SU: NULL'd function pointer */
  sh.tag = 7;
  sh.factor = 3;
  sh.run = run_scale;
  install_handler((struct handler *) &sh); /* UC: prefix upcast */
  code[0] = 0; code[1] = 21;    /* push 21 */
  code[2] = 1;                  /* add */
  code[3] = 0; code[4] = 3;     /* push 3 */
  code[5] = 3;                  /* mul */
  code[6] = 5;                  /* handler */
  code[7] = 0; code[8] = 97;    /* push 97 */
  code[9] = 4;                  /* mod */
  code[10] = 6;                 /* halt pad */
  code[11] = 6;
  if (!interp_alive((void *) it)) { return 1; }
  for (rounds = 0; rounds < 4000; rounds = rounds + 1) {
    acc = acc + run_program(it, code, 12, rounds % 17);
  }
  printf("perlite:%d\n", acc);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* bzip_mini — bzip2: run-length + move-to-front compression with
   callback-driven output sinks; verifies a round trip. *)

let bzip_mini =
  {|
typedef void (*sink_fn)(int b);

int out_buf[4096];
int out_len = 0;
int checksum = 0;

void sink_store(int b) {
  out_buf[out_len] = b;
  out_len = out_len + 1;
}

void sink_hash(int b) { checksum = ((checksum * 33) + b) % 1000003; }

sink_fn current_sink;

void emit(int b) { current_sink(b); }

/* move-to-front transform state */
int mtf[256];

void mtf_init() {
  int i;
  for (i = 0; i < 256; i = i + 1) { mtf[i] = i; }
}

int mtf_encode(int b) {
  int i = 0;
  int j;
  while (mtf[i] != b) { i = i + 1; }
  for (j = i; j > 0; j = j - 1) { mtf[j] = mtf[j - 1]; }
  mtf[0] = b;
  return i;
}

int mtf_decode(int idx) {
  int b = mtf[idx];
  int j;
  for (j = idx; j > 0; j = j - 1) { mtf[j] = mtf[j - 1]; }
  mtf[0] = b;
  return b;
}

/* run-length encode data through the MTF and the current sink */
void compress(int *data, int n) {
  int i = 0;
  while (i < n) {
    int b = data[i];
    int run = 1;
    while (i + run < n && data[i + run] == b && run < 255) { run = run + 1; }
    emit(run);
    emit(mtf_encode(b % 256));
    i = i + run;
  }
}

int decompress(int *packed, int plen, int *outv) {
  int i = 0;
  int n = 0;
  while (i < plen) {
    int run = packed[i];
    int b = mtf_decode(packed[i + 1]);
    int k;
    for (k = 0; k < run; k = k + 1) {
      outv[n] = b;
      n = n + 1;
    }
    i = i + 2;
  }
  return n;
}

int data[2048];

int main() {
  int round;
  int total = 0;
  for (round = 0; round < 30; round = round + 1) {
    int i;
    int n = 1500;
    int m;
    int restored[2048];
    for (i = 0; i < n; i = i + 1) {
      /* runs of varying length, deterministic */
      data[i] = ((i * i + round) / 7) % 51;
    }
    mtf_init();
    out_len = 0;
    current_sink = sink_store;
    compress(data, n);
    mtf_init();
    m = decompress(out_buf, out_len, restored);
    if (m != n) { print_str("bzip_mini: length mismatch\n"); return 1; }
    for (i = 0; i < n; i = i + 1) {
      if (restored[i] != data[i]) { print_str("bzip_mini: corrupt\n"); return 1; }
    }
    current_sink = sink_hash;
    for (i = 0; i < out_len; i = i + 1) { emit(out_buf[i]); }
    total = total + out_len;
  }
  printf("bzip_mini:%d:%d\n", total, checksum);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* cc_mini — gcc: an expression compiler with a lexer, a recursive
   parser over tagged nodes (DC downcasts), constant folding through an
   operator table, and a splay-ish symbol tree with a comparison
   callback — including the paper's strcmp case, fixed by a wrapper
   function exactly as §6 describes. *)

let cc_mini =
  {|
struct node {
  int tag;          /* 0 = num, 1 = binop, 2 = var */
  int value;        /* num: value, binop: operator index, var: name id */
  struct node *lhs;
  struct node *rhs;
};

typedef int (*fold_fn)(int, int);

int fold_add(int a, int b) { return a + b; }
int fold_sub(int a, int b) { return a - b; }
int fold_mul(int a, int b) { return a * b; }
int fold_div(int a, int b) { if (b == 0) { return 0; } return a / b; }

fold_fn fold_table[4] = { fold_add, fold_sub, fold_mul, fold_div };

struct node *new_node(int tag, int value) {
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->tag = tag;
  n->value = value;
  n->lhs = (struct node *) 0;
  n->rhs = (struct node *) 0;
  return n;
}

/* symbol table: binary search tree keyed by strings via a callback —
   the gcc splay-tree pattern; the comparator takes ints in the tree's
   interface, so strcmp needs a wrapper (the paper's K1 fix) */
typedef int (*cmp_fn)(int, int);

struct sym {
  int key;          /* string address smuggled through an int */
  int value;
  struct sym *left;
  struct sym *right;
};

int strcmp_wrapper(int a, int b) { return strcmp((char *) a, (char *) b); }

cmp_fn tree_cmp = strcmp_wrapper;

struct sym *sym_root;

struct sym *sym_insert(struct sym *t, int key, int value) {
  if (t == (struct sym *) 0) {
    struct sym *n = (struct sym *) malloc(sizeof(struct sym));
    n->key = key;
    n->value = value;
    n->left = (struct sym *) 0;
    n->right = (struct sym *) 0;
    return n;
  }
  if (tree_cmp(key, t->key) < 0) { t->left = sym_insert(t->left, key, value); }
  else if (tree_cmp(key, t->key) > 0) { t->right = sym_insert(t->right, key, value); }
  else { t->value = value; }
  return t;
}

int sym_lookup(struct sym *t, int key) {
  while (t != (struct sym *) 0) {
    int c = tree_cmp(key, t->key);
    if (c == 0) { return t->value; }
    if (c < 0) { t = t->left; }
    else { t = t->right; }
  }
  return -1;
}

/* expression source: a token stream of ints
   tok >= 0: number; -1..-4: + - * /; -5: variable x; -6: end */
int toks[64];
int tpos;

struct node *parse_expr(void);

struct node *parse_atom() {
  int t = toks[tpos];
  tpos = tpos + 1;
  if (t == -5) { return new_node(2, 0); }
  return new_node(0, t);
}

/* left-associative chain, precedence-free (the workload, not the point) */
struct node *parse_expr(void) {
  struct node *lhs = parse_atom();
  while (toks[tpos] <= -1 && toks[tpos] >= -4) {
    int op = -toks[tpos] - 1;
    struct node *n;
    tpos = tpos + 1;
    n = new_node(1, op);
    n->lhs = lhs;
    n->rhs = parse_atom();
    lhs = n;
  }
  tpos = tpos + 1; /* consume end */
  return lhs;
}

int eval(struct node *n, int xval) {
  if (n->tag == 0) { return n->value; }
  if (n->tag == 2) { return xval; }
  return fold_table[n->value](eval(n->lhs, xval), eval(n->rhs, xval));
}

/* constant folding: rewrite binop nodes with constant children */
int fold(struct node *n) {
  int folded = 0;
  if (n->tag == 1) {
    folded = fold(n->lhs) + fold(n->rhs);
    if (n->lhs->tag == 0 && n->rhs->tag == 0) {
      n->value = fold_table[n->value](n->lhs->value, n->rhs->value);
      n->tag = 0;
      folded = folded + 1;
    }
  }
  return folded;
}

/* A second, vtable-flavoured AST: variants share a tagged prefix with a
   print callback, and code moves between the abstract and concrete views
   (gcc's most common cast pattern; all these involve a function-pointer
   field, so the C1 analyzer sees every one of them). */
struct ast {
  int tag; /* 0 = num, 1 = neg */
  int (*print)(int v);
};

struct ast_num {
  int tag;
  int (*print)(int v);
  int value;
};

struct ast_neg {
  int tag;
  int (*print)(int v);
  struct ast *sub;
};

int print_plain(int v) { return v; }

struct ast *mk_num(int v) {
  struct ast_num *n = (struct ast_num *) malloc(sizeof(struct ast_num)); /* MF */
  n->tag = 0;
  n->print = print_plain;
  n->value = v;
  return (struct ast *) n; /* UC */
}

struct ast *mk_neg(struct ast *sub) {
  struct ast_neg *n = (struct ast_neg *) malloc(sizeof(struct ast_neg)); /* MF */
  n->tag = 1;
  n->print = print_plain;
  n->sub = sub;
  return (struct ast *) n; /* UC */
}

int ast_eval(struct ast *a) {
  if (a->tag == 0) { return ((struct ast_num *) a)->value; } /* DC */
  return -ast_eval(((struct ast_neg *) a)->sub); /* DC */
}

int ast_tag_of(void *p) {
  return ((struct ast *) p)->tag; /* NF */
}

int ast_check(struct ast *a) {
  /* park the node in a generic slot and come back: K2 pair */
  void *g = (void *) a;
  struct ast *back = (struct ast *) g;
  return back->print(ast_eval(back));
}

int main() {
  int round;
  int acc = 0;
  int folds = 0;
  struct ast *deep;
  sym_root = (struct sym *) 0;
  deep = mk_neg(mk_neg(mk_num(17)));
  acc = ast_check(deep) + ast_tag_of((void *) deep);
  sym_root = sym_insert(sym_root, (int) "alpha", 11);
  sym_root = sym_insert(sym_root, (int) "beta", 22);
  sym_root = sym_insert(sym_root, (int) "gamma", 33);
  for (round = 0; round < 2500; round = round + 1) {
    struct node *e;
    int i = 0;
    /* build: 5 * 7 * x + round - (round % 7) * 2 ... as a flat chain;
       the constant 5*7 prefix gives the folder something to fold */
    toks[i] = 5; i = i + 1;
    toks[i] = -3; i = i + 1;
    toks[i] = 7; i = i + 1;
    toks[i] = -3; i = i + 1;
    toks[i] = -5; i = i + 1;
    toks[i] = -1; i = i + 1;
    toks[i] = round % 97; i = i + 1;
    toks[i] = -2; i = i + 1;
    toks[i] = round % 7; i = i + 1;
    toks[i] = -3; i = i + 1;
    toks[i] = 2; i = i + 1;
    toks[i] = -6; i = i + 1;
    tpos = 0;
    e = parse_expr();
    folds = folds + fold(e);
    acc = (acc + eval(e, round % 13)) % 1000003;
  }
  acc = acc + sym_lookup(sym_root, (int) "beta");
  printf("cc_mini:%d:%d\n", acc, folds);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* mcf_mini — mcf: successive-shortest-path flow routing on a grid
   network; pointer-and-array heavy, no function-pointer casts (the
   paper reports zero violations for mcf). *)

let mcf_mini =
  {|
int nnodes;
int dist[144];
int visited[144];
int flow_cost;

/* grid neighbors: 12x12 grid with weights derived from coordinates */
int edge_cost(int a, int b) {
  int w = (a * 31 + b * 17) % 19 + 1;
  return w;
}

int neighbor(int v, int k) {
  int x = v % 12;
  int y = v / 12;
  if (k == 0) { if (x + 1 < 12) { return v + 1; } return -1; }
  if (k == 1) { if (x > 0) { return v - 1; } return -1; }
  if (k == 2) { if (y + 1 < 12) { return v + 12; } return -1; }
  if (y > 0) { return v - 12; }
  return -1;
}

/* Dijkstra-style relaxation with a linear scan (small graphs) */
int shortest(int src, int dst) {
  int i;
  for (i = 0; i < nnodes; i = i + 1) {
    dist[i] = 1000000000;
    visited[i] = 0;
  }
  dist[src] = 0;
  for (i = 0; i < nnodes; i = i + 1) {
    int best = -1;
    int bestd = 1000000000;
    int u;
    int k;
    for (u = 0; u < nnodes; u = u + 1) {
      if (!visited[u] && dist[u] < bestd) { best = u; bestd = dist[u]; }
    }
    if (best < 0) { break; }
    u = best;
    visited[u] = 1;
    if (u == dst) { return dist[u]; }
    for (k = 0; k < 4; k = k + 1) {
      int v = neighbor(u, k);
      if (v >= 0 && !visited[v]) {
        int nd = dist[u] + edge_cost(u, v);
        if (nd < dist[v]) { dist[v] = nd; }
      }
    }
  }
  return dist[dst];
}

int main() {
  int q;
  nnodes = 144;
  flow_cost = 0;
  for (q = 0; q < 25; q = q + 1) {
    int src = (q * 37) % 144;
    int dst = (q * 151 + 13) % 144;
    flow_cost = (flow_cost + shortest(src, dst)) % 1000003;
  }
  printf("mcf_mini:%d\n", flow_cost);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* gomoku — gobmk: five-in-a-row position evaluation with a small
   minimax search; typed pattern-scoring callbacks, no casts. *)

let gomoku =
  {|
int board[81]; /* 9x9: 0 empty, 1 us, 2 them */

typedef int (*score_fn)(int line[9], int who);

int score_pairs(int line[9], int who) {
  int s = 0;
  int i;
  for (i = 0; i + 1 < 9; i = i + 1) {
    if (line[i] == who && line[i + 1] == who) { s = s + 10; }
  }
  return s;
}

int score_triples(int line[9], int who) {
  int s = 0;
  int i;
  for (i = 0; i + 2 < 9; i = i + 1) {
    if (line[i] == who && line[i + 1] == who && line[i + 2] == who) {
      s = s + 100;
    }
  }
  return s;
}

int score_open_ends(int line[9], int who) {
  int s = 0;
  int i;
  for (i = 1; i + 1 < 9; i = i + 1) {
    if (line[i] == who && line[i - 1] == 0 && line[i + 1] == 0) { s = s + 3; }
  }
  return s;
}

score_fn scorers[3] = { score_pairs, score_triples, score_open_ends };

int line_buf[9];

int eval_board(int who) {
  int total = 0;
  int r;
  int c;
  int k;
  for (r = 0; r < 9; r = r + 1) {
    for (c = 0; c < 9; c = c + 1) { line_buf[c] = board[r * 9 + c]; }
    for (k = 0; k < 3; k = k + 1) { total = total + scorers[k](line_buf, who); }
  }
  for (c = 0; c < 9; c = c + 1) {
    for (r = 0; r < 9; r = r + 1) { line_buf[r] = board[r * 9 + c]; }
    for (k = 0; k < 3; k = k + 1) { total = total + scorers[k](line_buf, who); }
  }
  return total;
}

int search(int depth, int who) {
  int best = -1000000;
  int moves = 0;
  int i;
  if (depth == 0) { return eval_board(1) - eval_board(2); }
  for (i = 0; i < 81 && moves < 6; i = i + 1) {
    if (board[i] == 0) {
      int v;
      board[i] = who;
      v = -search(depth - 1, 3 - who);
      board[i] = 0;
      if (v > best) { best = v; }
      moves = moves + 1;
    }
  }
  if (moves == 0) { return 0; }
  return best;
}

int main() {
  int g;
  int acc = 0;
  for (g = 0; g < 6; g = g + 1) {
    int i;
    for (i = 0; i < 81; i = i + 1) {
      board[i] = ((i * 7 + g * 13) % 11) % 3;
    }
    acc = (acc + search(2, 1) + eval_board(1)) % 1000003;
  }
  printf("gomoku:%d\n", acc);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* hmm_mini — hmmer: Viterbi decoding over a profile-HMM-like chain in
   fixed-point log space; models are malloc'd structs carrying their
   emission callbacks (the paper's hmmer violations are all MF). *)

let hmm_mini =
  {|
struct hmm {
  int nstates;
  int (*emit)(int state, int symbol);  /* fptr field: malloc casts are MF */
  int trans[16];
};

int emit_profile(int state, int symbol) {
  return -((state * 7 + symbol * 3) % 23) - 1;
}

int emit_background(int state, int symbol) {
  return -((symbol * 5) % 11) - 2;
}

struct hmm *new_hmm(int n, int which) {
  struct hmm *h = (struct hmm *) malloc(sizeof(struct hmm)); /* MF */
  int i;
  h->nstates = n;
  if (which == 0) { h->emit = emit_profile; }
  else { h->emit = emit_background; }
  for (i = 0; i < 16; i = i + 1) { h->trans[i] = -((i * 13) % 7) - 1; }
  return h;
}

int vit_prev[16];
int vit_cur[16];

int viterbi(struct hmm *h, int *seq, int len) {
  int i;
  int t;
  for (i = 0; i < h->nstates; i = i + 1) { vit_prev[i] = 0; }
  for (t = 0; t < len; t = t + 1) {
    for (i = 0; i < h->nstates; i = i + 1) {
      int best = -1000000000;
      int j;
      for (j = 0; j < h->nstates; j = j + 1) {
        int cand = vit_prev[j] + h->trans[(j * h->nstates + i) % 16];
        if (cand > best) { best = cand; }
      }
      vit_cur[i] = best + h->emit(i, seq[t]);
    }
    for (i = 0; i < h->nstates; i = i + 1) { vit_prev[i] = vit_cur[i]; }
  }
  {
    int best = -1000000000;
    for (i = 0; i < h->nstates; i = i + 1) {
      if (vit_prev[i] > best) { best = vit_prev[i]; }
    }
    return best;
  }
}

int seq[256];

int main() {
  struct hmm *profile = new_hmm(8, 0);
  struct hmm *background = new_hmm(8, 1);
  int round;
  int acc = 0;
  for (round = 0; round < 20; round = round + 1) {
    int i;
    int lp;
    int lb;
    for (i = 0; i < 120; i = i + 1) { seq[i] = (i * i + round) % 4; }
    lp = viterbi(profile, seq, 120);
    lb = viterbi(background, seq, 120);
    if (lp > lb) { acc = acc + 1; }
    acc = (acc + lp - lb) % 1000003;
    if (acc < 0) { acc = acc + 1000003; }
  }
  printf("hmm_mini:%d\n", acc);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* sjeng_mini — sjeng: alpha-beta game-tree search on a toy board with
   incremental evaluation; cast-clean like the original. *)

let sjeng_mini =
  {|
int squares[36]; /* 6x6: 0 empty, 1/2 pieces */

int material(int who) {
  int s = 0;
  int i;
  for (i = 0; i < 36; i = i + 1) {
    if (squares[i] == who) { s = s + 10 + (i % 6); }
  }
  return s;
}

int alphabeta(int depth, int alpha, int beta, int who) {
  int i;
  int moves = 0;
  if (depth == 0) { return material(1) - material(2); }
  for (i = 0; i < 36; i = i + 1) {
    if (squares[i] == who) {
      int j;
      for (j = 0; j < 36 && moves < 8; j = j + 1) {
        if (squares[j] == 0 && abs_int(i - j) < 8) {
          int v;
          squares[i] = 0;
          squares[j] = who;
          v = -alphabeta(depth - 1, -beta, -alpha, 3 - who);
          squares[j] = 0;
          squares[i] = who;
          moves = moves + 1;
          if (v > alpha) { alpha = v; }
          if (alpha >= beta) { return alpha; }
        }
      }
    }
  }
  if (moves == 0) { return material(1) - material(2); }
  return alpha;
}

int main() {
  int g;
  int acc = 0;
  for (g = 0; g < 10; g = g + 1) {
    int i;
    for (i = 0; i < 36; i = i + 1) { squares[i] = ((i * 5 + g * 11) % 13) % 3; }
    acc = (acc + alphabeta(3, -1000000, 1000000, 1)) % 1000003;
    if (acc < 0) { acc = acc + 1000003; }
  }
  printf("sjeng_mini:%d\n", acc);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* qsim — libquantum: a quantum register simulator over fixed-point
   amplitudes (Hadamard, phase and CNOT gates; Grover-ish iteration).
   One pointer-vs-function type mismatch fixed by a wrapper: the
   paper's libquantum needed exactly one such line. *)

let qsim =
  {|
/* amplitudes in fixed point, scaled by 10000: re/im interleaved */
int amp[512]; /* 8 qubits: 256 basis states */
int tmp[512];
int nstates;

/* gate callbacks take the basis-state index */
typedef void (*gate_fn)(int target);

void gate_hadamard(int target) {
  int mask = 1 << target;
  int s;
  for (s = 0; s < nstates; s = s + 1) { tmp[2 * s] = amp[2 * s]; tmp[2 * s + 1] = amp[2 * s + 1]; }
  for (s = 0; s < nstates; s = s + 1) {
    int partner = s ^ mask;
    int sign;
    if ((s & mask) == 0) { sign = 1; } else { sign = -1; }
    /* 7071/10000 ~ 1/sqrt(2) */
    amp[2 * s] = (7071 * (tmp[2 * partner] + sign * tmp[2 * s])) / 10000;
    amp[2 * s + 1] = (7071 * (tmp[2 * partner + 1] + sign * tmp[2 * s + 1])) / 10000;
  }
}

void gate_phase_flip(int target) {
  int mask = 1 << target;
  int s;
  for (s = 0; s < nstates; s = s + 1) {
    if (s & mask) {
      amp[2 * s] = -amp[2 * s];
      amp[2 * s + 1] = -amp[2 * s + 1];
    }
  }
}

/* cnot takes two arguments: incompatible with gate_fn, so the circuit
   table stores a wrapper (the paper's one-line libquantum fix) */
void gate_cnot(int control, int target) {
  int cmask = 1 << control;
  int tmask = 1 << target;
  int s;
  for (s = 0; s < nstates; s = s + 1) {
    if ((s & cmask) && (s & tmask) == 0) {
      int p = s | tmask;
      int re = amp[2 * s];
      int im = amp[2 * s + 1];
      amp[2 * s] = amp[2 * p];
      amp[2 * s + 1] = amp[2 * p + 1];
      amp[2 * p] = re;
      amp[2 * p + 1] = im;
    }
  }
}

void gate_cnot01(int target) { gate_cnot(0, target); }

gate_fn circuit[3] = { gate_hadamard, gate_phase_flip, gate_cnot01 };

int main() {
  int round;
  int acc = 0;
  nstates = 256;
  for (round = 0; round < 12; round = round + 1) {
    int s;
    int g;
    int norm = 0;
    for (s = 0; s < nstates; s = s + 1) { amp[2 * s] = 0; amp[2 * s + 1] = 0; }
    amp[0] = 10000; /* |00000000> */
    for (g = 0; g < 24; g = g + 1) {
      circuit[g % 3]((g + round) % 8);
    }
    for (s = 0; s < nstates; s = s + 1) {
      norm = norm + (amp[2 * s] / 100) * (amp[2 * s] / 100)
                  + (amp[2 * s + 1] / 100) * (amp[2 * s + 1] / 100);
    }
    acc = (acc + norm) % 1000003;
  }
  printf("qsim:%d\n", acc);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* h264_mini — h264ref: 4x4 integer transform + quantization over
   synthetic macroblocks, mode decision via cost callbacks allocated
   with the coder context (MF casts, like the original's 8). *)

let h264_mini =
  {|
struct coder {
  int qp;
  int (*mode_cost)(int *block, int mode);  /* fptr: malloc cast is MF */
};

int cost_sad(int *block, int mode) {
  int s = 0;
  int i;
  for (i = 0; i < 16; i = i + 1) { s = s + abs_int(block[i] - mode); }
  return s;
}

struct coder *new_coder(int qp) {
  struct coder *c = (struct coder *) malloc(sizeof(struct coder)); /* MF */
  c->qp = qp;
  c->mode_cost = cost_sad;
  return c;
}

int block[16];
int coef[16];

/* H.264's 4x4 integer DCT core (butterfly form) */
void dct4x4(int *b, int *out) {
  int i;
  for (i = 0; i < 4; i = i + 1) {
    int s0 = b[4 * i] + b[4 * i + 3];
    int s1 = b[4 * i + 1] + b[4 * i + 2];
    int d0 = b[4 * i] - b[4 * i + 3];
    int d1 = b[4 * i + 1] - b[4 * i + 2];
    out[4 * i] = s0 + s1;
    out[4 * i + 1] = 2 * d0 + d1;
    out[4 * i + 2] = s0 - s1;
    out[4 * i + 3] = d0 - 2 * d1;
  }
  for (i = 0; i < 4; i = i + 1) {
    int s0 = out[i] + out[12 + i];
    int s1 = out[4 + i] + out[8 + i];
    int d0 = out[i] - out[12 + i];
    int d1 = out[4 + i] - out[8 + i];
    out[i] = s0 + s1;
    out[4 + i] = 2 * d0 + d1;
    out[8 + i] = s0 - s1;
    out[12 + i] = d0 - 2 * d1;
  }
}

int quantize(int *c, int qp) {
  int nz = 0;
  int i;
  for (i = 0; i < 16; i = i + 1) {
    c[i] = c[i] / (qp + 1);
    if (c[i] != 0) { nz = nz + 1; }
  }
  return nz;
}

int main() {
  struct coder *c = new_coder(11);
  int mb;
  int acc = 0;
  for (mb = 0; mb < 3000; mb = mb + 1) {
    int i;
    int nz;
    int best;
    for (i = 0; i < 16; i = i + 1) { block[i] = ((mb * 31 + i * i * 7) % 255) - 128; }
    dct4x4(block, coef);
    nz = quantize(coef, c->qp);
    best = c->mode_cost(block, mb % 4);
    acc = (acc + nz * 1000 + best) % 1000003;
  }
  printf("h264_mini:%d\n", acc);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* milc_mini — milc: SU(3)-flavoured 3x3 integer matrix multiplies over
   a 4D lattice with staple sums; a couple of generic-buffer casts kept
   as K2 (milc reports a handful of post-elimination cases). *)

let milc_mini =
  {|
/* lattice of 3x3 matrices, 4^4 sites x 4 directions, fixed point */
int lat[4096 * 9];

struct site_ops {
  int scale;
  int (*reduce)(int *m);  /* fptr field */
};

int reduce_trace(int *m) { return m[0] + m[4] + m[8]; }

struct site_ops *ops;

void mat_mul(int *a, int *b, int *out) {
  int i;
  int j;
  int k;
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 3; j = j + 1) {
      int s = 0;
      for (k = 0; k < 3; k = k + 1) { s = s + a[3 * i + k] * b[3 * k + j]; }
      out[3 * i + j] = s / 1024;
    }
  }
}

int site_index(int x, int y, int z, int t, int dir) {
  return (((x * 4 + y) * 4 + z) * 4 + t) * 4 + dir;
}

int staple[9];
int accum[9];

int main() {
  int sweep;
  int acc = 0;
  int i;
  void *generic;
  ops = (struct site_ops *) malloc(sizeof(struct site_ops)); /* MF */
  ops->scale = 3;
  ops->reduce = reduce_trace;
  /* stash ops in a generic pointer and recover it: K2 pair */
  generic = (void *) ops;
  ops = (struct site_ops *) generic;
  for (i = 0; i < 4096 * 9; i = i + 1) { lat[i] = ((i * 37) % 2048) - 1024; }
  for (sweep = 0; sweep < 2; sweep = sweep + 1) {
    int x; int y; int z; int t; int dir;
    for (x = 0; x < 4; x = x + 1) {
    for (y = 0; y < 4; y = y + 1) {
    for (z = 0; z < 4; z = z + 1) {
    for (t = 0; t < 4; t = t + 1) {
      for (dir = 0; dir < 4; dir = dir + 1) {
        int s = site_index(x, y, z, t, dir);
        int s2 = site_index((x + 1) % 4, y, z, t, (dir + 1) % 4);
        int s3 = site_index(x, (y + 1) % 4, z, t, (dir + 2) % 4);
        mat_mul(lat + s * 9 - s * 9 + s * 9, lat + s2 * 9, staple);
        mat_mul(staple, lat + s3 * 9, accum);
        acc = (acc + ops->reduce(accum)) % 1000003;
        if (acc < 0) { acc = acc + 1000003; }
      }
    } } } }
  }
  printf("milc_mini:%d\n", acc);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* lbm_mini — lbm: a D2Q5 lattice-Boltzmann stream-and-collide kernel
   in fixed point; cast-clean like the original. *)

let lbm_mini =
  {|
/* 32x32 grid, 5 directions (rest, E, W, N, S), fixed point x1000 */
int f0[1024 * 5];
int f1[1024 * 5];

int idx(int x, int y, int d) { return (y * 32 + x) * 5 + d; }

void collide_stream(int *src, int *dst) {
  int x;
  int y;
  for (y = 0; y < 32; y = y + 1) {
    for (x = 0; x < 32; x = x + 1) {
      int rho = 0;
      int d;
      int ux;
      int uy;
      for (d = 0; d < 5; d = d + 1) { rho = rho + src[idx(x, y, d)]; }
      ux = src[idx(x, y, 1)] - src[idx(x, y, 2)];
      uy = src[idx(x, y, 3)] - src[idx(x, y, 4)];
      for (d = 0; d < 5; d = d + 1) {
        int cu;
        int eq;
        int relaxed;
        int tx;
        int ty;
        if (d == 0) { cu = 0; tx = x; ty = y; }
        else if (d == 1) { cu = ux; tx = (x + 1) % 32; ty = y; }
        else if (d == 2) { cu = -ux; tx = (x + 31) % 32; ty = y; }
        else if (d == 3) { cu = uy; tx = x; ty = (y + 1) % 32; }
        else { cu = -uy; tx = x; ty = (y + 31) % 32; }
        eq = rho / 5 + cu / 3;
        relaxed = src[idx(x, y, d)] + (eq - src[idx(x, y, d)]) / 2;
        dst[idx(tx, ty, d)] = relaxed;
      }
    }
  }
}

int main() {
  int step;
  int acc = 0;
  int i;
  for (i = 0; i < 1024 * 5; i = i + 1) { f0[i] = 1000 + ((i * 13) % 257); }
  for (step = 0; step < 12; step = step + 1) {
    if (step % 2 == 0) { collide_stream(f0, f1); }
    else { collide_stream(f1, f0); }
  }
  for (i = 0; i < 1024 * 5; i = i + 1) { acc = (acc + f0[i]) % 1000003; }
  printf("lbm_mini:%d\n", acc);
  return 0;
}
|}

(* --------------------------------------------------------------- *)
(* sphinx_mini — sphinx3: Gaussian-mixture acoustic scoring with
   per-senone distance callbacks in malloc'd model structs (MF + a
   NULL'd hook, like the original's MF/SU split). *)

let sphinx_mini =
  {|
struct senone {
  int nmix;
  int mean[8];
  int var[8];
  int (*dist)(struct senone *s, int *frame);  /* fptr: MF on malloc */
  int (*debug_hook)(int);
};

int dist_diag(struct senone *s, int *frame) {
  int best = -1000000000;
  int m;
  for (m = 0; m < s->nmix; m = m + 1) {
    int d = 0;
    int k;
    for (k = 0; k < 8; k = k + 1) {
      int diff = frame[k] - (s->mean[k] + m * 3);
      d = d - (diff * diff) / (s->var[k] + 1);
    }
    if (d > best) { best = d; }
  }
  return best;
}

struct senone *new_senone(int seedv) {
  struct senone *s = (struct senone *) malloc(sizeof(struct senone)); /* MF */
  int k;
  s->nmix = 4;
  for (k = 0; k < 8; k = k + 1) {
    s->mean[k] = (seedv * 7 + k * 13) % 50;
    s->var[k] = 1 + ((seedv + k) % 9);
  }
  s->dist = dist_diag;
  s->debug_hook = 0; /* SU */
  return s;
}

struct senone *models[16];
int frame[8];

int main() {
  int t;
  int acc = 0;
  int i;
  for (i = 0; i < 16; i = i + 1) { models[i] = new_senone(i); }
  for (t = 0; t < 800; t = t + 1) {
    int best = -1000000000;
    int besti = 0;
    int k;
    for (k = 0; k < 8; k = k + 1) { frame[k] = (t * 11 + k * k * 3) % 50; }
    for (i = 0; i < 16; i = i + 1) {
      int d = models[i]->dist(models[i], frame);
      if (d > best) { best = d; besti = i; }
    }
    acc = (acc + besti + (best % 1000)) % 1000003;
    if (acc < 0) { acc = acc + 1000003; }
  }
  printf("sphinx_mini:%d\n", acc);
  return 0;
}
|}

let all : benchmark list =
  [
    { name = "perlite"; spec_name = "perlbench";
      description = "stack-bytecode interpreter with dispatch tables";
      source = perlite; expected_exit = 0 };
    { name = "bzip_mini"; spec_name = "bzip2";
      description = "RLE + move-to-front compressor with sink callbacks";
      source = bzip_mini; expected_exit = 0 };
    { name = "cc_mini"; spec_name = "gcc";
      description = "expression compiler: parse, fold, symbol tree";
      source = cc_mini; expected_exit = 0 };
    { name = "mcf_mini"; spec_name = "mcf";
      description = "shortest-path flow routing on a grid network";
      source = mcf_mini; expected_exit = 0 };
    { name = "gomoku"; spec_name = "gobmk";
      description = "board-game minimax with pattern scorers";
      source = gomoku; expected_exit = 0 };
    { name = "hmm_mini"; spec_name = "hmmer";
      description = "profile-HMM Viterbi decoding, fixed point";
      source = hmm_mini; expected_exit = 0 };
    { name = "sjeng_mini"; spec_name = "sjeng";
      description = "alpha-beta game-tree search";
      source = sjeng_mini; expected_exit = 0 };
    { name = "qsim"; spec_name = "libquantum";
      description = "quantum register simulation, fixed point";
      source = qsim; expected_exit = 0 };
    { name = "h264_mini"; spec_name = "h264ref";
      description = "4x4 integer DCT + quantization + mode decision";
      source = h264_mini; expected_exit = 0 };
    { name = "milc_mini"; spec_name = "milc";
      description = "3x3 matrix lattice sweeps (SU(3) flavoured)";
      source = milc_mini; expected_exit = 0 };
    { name = "lbm_mini"; spec_name = "lbm";
      description = "D2Q5 lattice-Boltzmann stream/collide";
      source = lbm_mini; expected_exit = 0 };
    { name = "sphinx_mini"; spec_name = "sphinx3";
      description = "GMM acoustic scoring with distance callbacks";
      source = sphinx_mini; expected_exit = 0 };
  ]

let find name = List.find_opt (fun b -> b.name = name) all
