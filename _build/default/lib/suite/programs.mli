(** The benchmark suite: twelve MiniC programs shaped after the
    SPECCPU2006 C benchmarks of the paper's evaluation (§8).

    Each program is a genuine workload (interpreter, compressor,
    game-tree search, signal processing, …) with the function-pointer
    and cast patterns the paper's Table 1/2 analysis found in its SPEC
    counterpart.  All numeric kernels are fixed-point (MiniC has no
    floating point).  Each prints a deterministic checksum, so
    unprotected and instrumented builds are compared output-for-output
    by the test suite. *)

type benchmark = {
  name : string;
  spec_name : string;  (** the SPECCPU2006 benchmark it is shaped after *)
  description : string;
  source : string;     (** the MiniC translation unit *)
  expected_exit : int;
}

(** The twelve benchmarks, in the paper's Table 1 order. *)
val all : benchmark list

val find : string -> benchmark option
