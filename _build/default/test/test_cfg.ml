(* Unit and property tests for the type-matching CFG generator. *)

open Cfg.Cfggen
module Ast = Minic.Ast

let ft params ret : Ast.fun_ty = { params; varargs = false; ret }
let vft params ret : Ast.fun_ty = { params; varargs = true; ret }

let fn ?(at = true) name ty addr =
  { fname = name; fty = ty; faddr = addr; faddress_taken = at }

let mk_input ?(functions = []) ?(sites = [||]) ?(direct_calls = [])
    ?(tail_calls = []) ?(setjmp_addrs = []) () =
  {
    env = Minic.Types.empty;
    functions;
    sites;
    direct_calls;
    tail_calls;
    setjmp_addrs;
  }

let int_int = ft [ Ast.Tint ] Ast.Tint
let int_void = ft [ Ast.Tint ] Ast.Tvoid
let str_int = ft [ Ast.Tptr Ast.Tchar ] Ast.Tint

(* ---------- type matching ---------- *)

let test_icall_matches_by_type () =
  let input =
    mk_input
      ~functions:
        [ fn "f" int_int 0x100; fn "g" int_int 0x200; fn "h" str_int 0x300 ]
      ~sites:[| Sicall { fn = "main"; ty = int_int; ret_addr = 0x400 } |]
      ()
  in
  let targets = targets_of_site input (Sicall { fn = "main"; ty = int_int; ret_addr = 0x400 }) in
  Alcotest.(check (list int)) "type-matched targets" [ 0x100; 0x200 ] targets

let test_icall_requires_address_taken () =
  let input =
    mk_input
      ~functions:[ fn ~at:false "f" int_int 0x100; fn "g" int_int 0x200 ]
      ()
  in
  let targets =
    targets_of_site input (Sicall { fn = "m"; ty = int_int; ret_addr = 0 })
  in
  Alcotest.(check (list int)) "only address-taken" [ 0x200 ] targets

let test_varargs_site_matches_prefix () =
  let printf_ty = ft [ Ast.Tptr Ast.Tchar; Ast.Tint ] Ast.Tint in
  let input =
    mk_input
      ~functions:[ fn "printf_like" printf_ty 0x100; fn "g" int_int 0x200 ]
      ()
  in
  let site_ty = vft [ Ast.Tptr Ast.Tchar ] Ast.Tint in
  let targets =
    targets_of_site input (Sicall { fn = "m"; ty = site_ty; ret_addr = 0 })
  in
  Alcotest.(check (list int)) "prefix match" [ 0x100 ] targets

(* ---------- returns and the call graph ---------- *)

let test_return_targets_callers () =
  let input =
    mk_input
      ~functions:[ fn ~at:false "f" int_int 0x100 ]
      ~sites:[| Sreturn { fn = "f" } |]
      ~direct_calls:[ ("main", "f", 0x500); ("aux", "f", 0x600) ]
      ()
  in
  let targets = targets_of_site input (Sreturn { fn = "f" }) in
  Alcotest.(check (list int)) "returns to both call sites" [ 0x500; 0x600 ]
    targets

let test_return_through_indirect_call () =
  (* f is called only indirectly (by type); its return targets that
     indirect call's return site *)
  let input =
    mk_input
      ~functions:[ fn "f" int_int 0x100 ]
      ~sites:[| Sicall { fn = "main"; ty = int_int; ret_addr = 0x700 } |]
      ()
  in
  let targets = targets_of_site input (Sreturn { fn = "f" }) in
  Alcotest.(check (list int)) "returns to the icall site" [ 0x700 ] targets

let test_tail_call_collapses () =
  (* main calls g; g tail-calls h; so h's return may return to main's
     call site (paper §6) *)
  let input =
    mk_input
      ~functions:[ fn ~at:false "g" int_int 0x100; fn ~at:false "h" int_int 0x200 ]
      ~direct_calls:[ ("main", "g", 0x500) ]
      ~tail_calls:[ ("g", "h") ]
      ()
  in
  Alcotest.(check (list int)) "h returns to main's site" [ 0x500 ]
    (targets_of_site input (Sreturn { fn = "h" }));
  Alcotest.(check (list int)) "g too" [ 0x500 ]
    (targets_of_site input (Sreturn { fn = "g" }))

let test_tail_call_chain_transitive () =
  let input =
    mk_input
      ~functions:
        [ fn ~at:false "a" int_int 1; fn ~at:false "b" int_int 2;
          fn ~at:false "c" int_int 3 ]
      ~direct_calls:[ ("main", "a", 0x900) ]
      ~tail_calls:[ ("a", "b"); ("b", "c") ]
      ()
  in
  Alcotest.(check (list int)) "c returns through the chain" [ 0x900 ]
    (targets_of_site input (Sreturn { fn = "c" }))

let test_indirect_tail_call_closure () =
  (* g makes an indirect tail call; every type-matched AT function joins
     g's tail closure *)
  let input =
    mk_input
      ~functions:[ fn "h" int_int 0x200; fn ~at:false "g" int_int 0x100 ]
      ~sites:[| Sitail { fn = "g"; ty = int_int } |]
      ~direct_calls:[ ("main", "g", 0x800) ]
      ()
  in
  Alcotest.(check (list int)) "indirect tail target returns to caller"
    [ 0x800 ]
    (targets_of_site input (Sreturn { fn = "h" }))

(* ---------- other site kinds ---------- *)

let test_jumptable_targets () =
  let site = Sjumptable { fn = "f"; target_addrs = [ 0x10; 0x20 ] } in
  let input = mk_input ~sites:[| site |] () in
  Alcotest.(check (list int)) "static targets" [ 0x10; 0x20 ]
    (targets_of_site input site)

let test_longjmp_targets_setjmps () =
  let site = Slongjmp { fn = "f" } in
  let input = mk_input ~sites:[| site |] ~setjmp_addrs:[ 0x30; 0x40 ] () in
  Alcotest.(check (list int)) "setjmp continuations" [ 0x30; 0x40 ]
    (targets_of_site input site)

let test_plt_targets_symbol () =
  let site = Splt { symbol = "ext" } in
  let input = mk_input ~functions:[ fn ~at:false "ext" int_int 0x900 ] () in
  Alcotest.(check (list int)) "the symbol's entry" [ 0x900 ]
    (targets_of_site input site)

let test_plt_unresolved_is_empty () =
  let site = Splt { symbol = "missing" } in
  let input = mk_input () in
  Alcotest.(check (list int)) "empty" [] (targets_of_site input site)

(* ---------- equivalence classes ---------- *)

let test_overlapping_sets_merge () =
  (* two icall sites with overlapping target sets: classic CFI merges
     them into one equivalence class *)
  let v1 = ft [ Ast.Tint ] Ast.Tint in
  let sites =
    [|
      Sicall { fn = "m"; ty = v1; ret_addr = 0x500 };
      Sicall { fn = "m"; ty = vft [] Ast.Tint; ret_addr = 0x504 };
    |]
  in
  (* f matches both (vft [] matches any int-returning fn by prefix rule);
     g matches only the exact one *)
  let input =
    mk_input
      ~functions:[ fn "f" v1 0x100; fn "g" (vft [] Ast.Tint) 0x200 ]
      ~sites ()
  in
  let out = generate input in
  let ecn_of addr = List.assoc addr out.tary in
  Alcotest.(check int) "merged class" (ecn_of 0x100) (ecn_of 0x200)

let test_disjoint_sets_stay_apart () =
  let sites =
    [|
      Sicall { fn = "m"; ty = int_int; ret_addr = 0x500 };
      Sicall { fn = "m"; ty = str_int; ret_addr = 0x504 };
    |]
  in
  let input =
    mk_input ~functions:[ fn "f" int_int 0x100; fn "g" str_int 0x200 ] ~sites ()
  in
  let out = generate input in
  let ecn_of addr = List.assoc addr out.tary in
  Alcotest.(check bool) "distinct classes" true (ecn_of 0x100 <> ecn_of 0x200)

let test_empty_target_site_never_passes () =
  (* a K1-like site: nothing matches its type; its branch class contains
     no target address at all *)
  let sites = [| Sicall { fn = "m"; ty = str_int; ret_addr = 0x500 } |] in
  let input = mk_input ~functions:[ fn "f" int_int 0x100 ] ~sites () in
  let out = generate input in
  let branch_ecn = List.assoc 0 out.bary in
  Alcotest.(check bool) "no tary entry has the branch's class" true
    (List.for_all (fun (_, e) -> e <> branch_ecn) out.tary)

let test_stats () =
  let sites =
    [|
      Sicall { fn = "m"; ty = int_int; ret_addr = 0x500 };
      Sreturn { fn = "f" };
    |]
  in
  let input =
    mk_input
      ~functions:[ fn "f" int_int 0x100; fn "g" str_int 0x200 ]
      ~sites
      ~direct_calls:[ ("m", "f", 0x600) ]
      ()
  in
  let out = generate input in
  Alcotest.(check int) "IBs" 2 out.stats.n_ibs;
  (* targets: f(0x100, AT), g(0x200, AT), icall ret 0x500, dc ret 0x600 *)
  Alcotest.(check int) "IBTs" 4 out.stats.n_ibts;
  Alcotest.(check bool) "EQCs positive" true (out.stats.n_eqcs > 0)

let test_unused_at_function_gets_singleton () =
  let input = mk_input ~functions:[ fn "lonely" int_int 0x100 ] () in
  let out = generate input in
  Alcotest.(check bool) "lonely has a tary entry" true
    (List.mem_assoc 0x100 out.tary)

(* ---------- properties ---------- *)

(* On random inputs: every site's raw targets share the branch's ECN in
   the generated tables (soundness of the EC construction). *)
let prop_branch_class_covers_targets =
  let gen =
    QCheck.Gen.(
      let* nfun = int_range 1 6 in
      let* nsite = int_range 1 6 in
      let tys = [| int_int; str_int; int_void; vft [] Ast.Tint |] in
      let* fsel = list_repeat nfun (int_bound (Array.length tys - 1)) in
      let* ssel = list_repeat nsite (int_bound (Array.length tys - 1)) in
      let functions =
        List.mapi
          (fun i k -> fn (Printf.sprintf "f%d" i) tys.(k) (0x100 + (4 * i)))
          fsel
      in
      let sites =
        Array.of_list
          (List.mapi
             (fun i k ->
               Sicall
                 { fn = "m"; ty = tys.(k); ret_addr = 0x1000 + (4 * i) })
             ssel)
      in
      return (mk_input ~functions ~sites ()))
  in
  QCheck.Test.make ~name:"branch ECN covers all its raw targets" ~count:100
    (QCheck.make gen) (fun input ->
      let out = generate input in
      Array.to_list input.sites
      |> List.mapi (fun slot site -> (slot, site))
      |> List.for_all (fun (slot, site) ->
             let branch_ecn = List.assoc slot out.bary in
             targets_of_site input site
             |> List.for_all (fun addr ->
                    List.assoc addr out.tary = branch_ecn)))

let prop_eqcs_bounded_by_ibts =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let tys = [| int_int; str_int; int_void |] in
      let* fsel = list_repeat n (int_bound 2) in
      let functions =
        List.mapi
          (fun i k -> fn (Printf.sprintf "f%d" i) tys.(k) (0x100 + (4 * i)))
          fsel
      in
      let sites =
        Array.of_list
          (List.mapi
             (fun i k ->
               Sicall { fn = "m"; ty = tys.(k); ret_addr = 0x1000 + (4 * i) })
             fsel)
      in
      return (mk_input ~functions ~sites ()))
  in
  QCheck.Test.make ~name:"EQCs <= IBTs" ~count:100 (QCheck.make gen)
    (fun input ->
      let out = generate input in
      out.stats.n_eqcs <= out.stats.n_ibts)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "cfg"
    [
      ( "type matching",
        [
          Alcotest.test_case "icall by type" `Quick test_icall_matches_by_type;
          Alcotest.test_case "address-taken required" `Quick
            test_icall_requires_address_taken;
          Alcotest.test_case "varargs prefix" `Quick
            test_varargs_site_matches_prefix;
        ] );
      ( "call graph",
        [
          Alcotest.test_case "return to callers" `Quick
            test_return_targets_callers;
          Alcotest.test_case "return via icall" `Quick
            test_return_through_indirect_call;
          Alcotest.test_case "tail call collapses" `Quick
            test_tail_call_collapses;
          Alcotest.test_case "tail chain transitive" `Quick
            test_tail_call_chain_transitive;
          Alcotest.test_case "indirect tail closure" `Quick
            test_indirect_tail_call_closure;
        ] );
      ( "site kinds",
        [
          Alcotest.test_case "jump table" `Quick test_jumptable_targets;
          Alcotest.test_case "longjmp" `Quick test_longjmp_targets_setjmps;
          Alcotest.test_case "plt" `Quick test_plt_targets_symbol;
          Alcotest.test_case "plt unresolved" `Quick
            test_plt_unresolved_is_empty;
        ] );
      ( "equivalence classes",
        [
          Alcotest.test_case "overlap merges" `Quick
            test_overlapping_sets_merge;
          Alcotest.test_case "disjoint apart" `Quick
            test_disjoint_sets_stay_apart;
          Alcotest.test_case "empty target set" `Quick
            test_empty_target_site_never_passes;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "lonely AT function" `Quick
            test_unused_at_function_gets_singleton;
        ] );
      ("props", qc [ prop_branch_class_covers_targets; prop_eqcs_bounded_by_ibts ]);
    ]
