(* Tests for the instrumentation pass and the modular verifier.

   The central property, checked over the whole benchmark suite: the
   verifier accepts everything the rewriter emits (paper §7: the verifier
   removes the rewriter from the TCB), and rejects hand-corrupted
   variants. *)

module Asm = Vmisa.Asm
module Instr = Vmisa.Instr
module Objfile = Mcfi_compiler.Objfile
module Rewriter = Instrument.Rewriter

let compile ?(instrument = true) name src =
  let obj = Mcfi.Pipeline.compile_module ~name (Suite.Libc.header ^ src) in
  if instrument then Mcfi.Pipeline.instrument obj else obj

let layout obj =
  match
    Asm.assemble ~base:Vmisa.Abi.code_base
      ~resolve_code:(fun _ -> Some Vmisa.Abi.code_base)
      ~resolve_data:(fun _ -> Some 16)
      obj.Objfile.o_items
  with
  | Ok prog -> prog
  | Error e -> Alcotest.failf "assemble: %a" Asm.pp_error e

let verify ?sandbox obj =
  Verifier.verify ?sandbox ~obj ~prog:(layout obj) ~slot_base:0
    ~slot_count:(List.length obj.Objfile.o_sites) ()

let demo_src =
  {|
int sink[8];
int inc(int x) { return x + 1; }
int apply(int (*f)(int), int v, int *out) {
  *out = f(v);
  return *out;
}
int main() {
  switch (apply(inc, 41, sink)) {
    case 40: return 1;
    case 41: return 2;
    case 42: return 0;
    case 43: return 3;
    case 44: return 4;
    default: return 5;
  }
}
|}

(* ---------- rewriter structure ---------- *)

let count_instr pred obj =
  List.length
    (List.filter (function Asm.I i -> pred i | _ -> false) obj.Objfile.o_items)

let test_no_ret_remains () =
  let obj = compile "demo" demo_src in
  Alcotest.(check int) "no rets" 0
    (count_instr (function Instr.Ret -> true | _ -> false) obj)

let test_branch_count_matches_sites () =
  let obj = compile "demo" demo_src in
  Alcotest.(check int) "one commit per site"
    (List.length obj.Objfile.o_sites)
    (count_instr Instr.is_indirect_branch obj)

let test_bary_slots_sequential () =
  let obj = compile "demo" demo_src in
  let slots =
    List.filter_map
      (function
        | Asm.I (Instr.Bary_load (_, k)) -> Some k
        | _ -> None)
      obj.Objfile.o_items
  in
  Alcotest.(check (list int)) "slots 0..n-1"
    (List.init (List.length obj.Objfile.o_sites) Fun.id)
    (List.sort compare slots)

let test_double_instrument_rejected () =
  let obj = compile "demo" demo_src in
  Alcotest.(check bool) "raises" true
    (match Rewriter.instrument obj with
    | _ -> false
    | exception Rewriter.Error _ -> true)

let test_code_grows () =
  let plain = compile ~instrument:false "demo" demo_src in
  let mcfi = compile "demo" demo_src in
  let p = Rewriter.size_of_items plain.Objfile.o_items in
  let m = Rewriter.size_of_items mcfi.Objfile.o_items in
  Alcotest.(check bool) "instrumented code is larger" true (m > p)

let test_plt_entry_shape () =
  let items = Rewriter.plt_entry ~symbol:"ext" ~slot:7 in
  (* contains the GOT reload, a Bary_load with the right slot, and a
     committing Jmp_r *)
  let has pred = List.exists pred items in
  Alcotest.(check bool) "got symbol" true
    (has (function Asm.Mov_dsym (_, s) -> s = "__got_ext" | _ -> false));
  Alcotest.(check bool) "bary slot" true
    (has (function Asm.I (Instr.Bary_load (_, 7)) -> true | _ -> false));
  Alcotest.(check bool) "committing jump" true
    (has (function Asm.I (Instr.Jmp_r _) -> true | _ -> false))

(* ---------- verifier: acceptance over the whole suite ---------- *)

let test_verifier_accepts_suite () =
  List.iter
    (fun (b : Suite.Programs.benchmark) ->
      let obj = compile b.name b.source in
      match verify obj with
      | Ok () -> ()
      | Error issues ->
        Alcotest.failf "%s rejected: %a" b.name
          Fmt.(list ~sep:(any "; ") Verifier.pp_issue)
          issues)
    Suite.Programs.all

let test_verifier_accepts_libc () =
  let obj =
    Mcfi.Pipeline.instrument
      (Mcfi.Pipeline.compile_module ~name:"libc" Suite.Libc.source)
  in
  match verify obj with
  | Ok () -> ()
  | Error issues ->
    Alcotest.failf "libc rejected: %a"
      Fmt.(list ~sep:(any "; ") Verifier.pp_issue)
      issues

(* ---------- verifier: rejections ---------- *)

let expect_reject label mutate =
  Alcotest.test_case label `Quick (fun () ->
      let obj = compile "demo" demo_src in
      let bad = mutate obj in
      match verify bad with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s: corrupted module passed" label)

let replace_first pred replacement obj =
  let fired = ref false in
  let items =
    List.concat_map
      (fun item ->
        if (not !fired) && pred item then begin
          fired := true;
          replacement
        end
        else [ item ])
      obj.Objfile.o_items
  in
  { obj with Objfile.o_items = items }

let rejections =
  [
    expect_reject "naked ret"
      (replace_first
         (function Asm.I (Instr.Jmp_r _) -> true | _ -> false)
         [ Asm.I Instr.Ret ]);
    expect_reject "unchecked indirect call"
      (replace_first
         (function Asm.I (Instr.Bary_load _) -> true | _ -> false)
         [ Asm.I Instr.Nop ]);
    expect_reject "unmasked store"
      (replace_first
         (function
           | Asm.I (Instr.Binop_i (Instr.And, r, _)) -> r = Instr.rscratch0
           | _ -> false)
         []);
    expect_reject "store via arbitrary register"
      (fun obj ->
        { obj with
          Objfile.o_items = obj.Objfile.o_items @ [ Asm.I (Instr.Store (3, 0, 4)) ]
        });
    expect_reject "misaligned function entry"
      (replace_first
         (function Asm.Label l -> l = "inc" | _ -> false)
         [ Asm.I Instr.Nop; Asm.Label "inc" ]);
    expect_reject "branch through wrong register"
      (replace_first
         (function Asm.I (Instr.Jmp_r _) -> true | _ -> false)
         [ Asm.I (Instr.Jmp_r 5) ]);
    expect_reject "bary slot out of module range"
      (replace_first
         (function Asm.I (Instr.Bary_load _) -> true | _ -> false)
         [ Asm.I (Instr.Bary_load (Instr.rscratch2, 4095)) ]);
    expect_reject "direct jump into mid-instruction"
      (fun obj ->
        (* lead the module with a 10-byte Mov_ri, then jump one byte into
           it: base+1 is not an instruction boundary *)
        { obj with
          Objfile.o_items =
            (Asm.I (Instr.Mov_ri (0, 0)) :: obj.Objfile.o_items)
            @ [ Asm.I (Instr.Jmp (Vmisa.Abi.code_base + 1)) ]
        });
  ]

(* ---------- sandbox flavours (paper §5.1: x86-32 vs x86-64) ---------- *)

let test_segment_mode_omits_masks () =
  let obj = Mcfi.Pipeline.compile_module ~name:"demo" (Suite.Libc.header ^ demo_src) in
  let seg = Mcfi.Pipeline.instrument ~sandbox:Vmisa.Abi.Segment obj in
  let masks =
    count_instr
      (function
        | Instr.Binop_i (Instr.And, r, m) ->
          r = Instr.rscratch0 && m = Vmisa.Abi.sandbox_mask
        | _ -> false)
      seg
  in
  Alcotest.(check int) "no masks under segmentation" 0 masks;
  (* and the segment-mode verifier accepts it... *)
  (match verify ~sandbox:Vmisa.Abi.Segment seg with
  | Ok () -> ()
  | Error issues ->
    Alcotest.failf "segment module rejected: %a"
      Fmt.(list ~sep:(any "; ") Verifier.pp_issue)
      issues);
  (* ...while the mask-mode verifier rejects its unmasked stores *)
  match verify ~sandbox:Vmisa.Abi.Mask seg with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unmasked stores passed the Mask verifier"

let test_segment_mode_runs () =
  let proc =
    Mcfi.Pipeline.build_process ~sandbox:Vmisa.Abi.Segment
      ~sources:[ ("demo", demo_src) ]
      ()
  in
  match Mcfi_runtime.Process.run proc with
  | Mcfi_runtime.Machine.Exited 0 -> ()
  | r ->
    Alcotest.failf "segment-mode run: %a" Mcfi_runtime.Machine.pp_exit_reason r

let test_segment_code_is_smaller () =
  let obj = Mcfi.Pipeline.compile_module ~name:"demo" (Suite.Libc.header ^ demo_src) in
  let seg = Mcfi.Pipeline.instrument ~sandbox:Vmisa.Abi.Segment obj in
  let mask =
    Mcfi.Pipeline.instrument ~sandbox:Vmisa.Abi.Mask
      (Mcfi.Pipeline.compile_module ~name:"demo" (Suite.Libc.header ^ demo_src))
  in
  Alcotest.(check bool) "segmentation needs fewer bytes" true
    (Rewriter.size_of_items seg.Objfile.o_items
    < Rewriter.size_of_items mask.Objfile.o_items)

(* uninstrumented code must be rejected wholesale *)
let test_verifier_rejects_plain () =
  let obj = compile ~instrument:false "demo" demo_src in
  match verify { obj with Objfile.o_instrumented = true } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "plain module passed verification"

let () =
  Alcotest.run "instrument"
    [
      ( "rewriter",
        [
          Alcotest.test_case "no ret remains" `Quick test_no_ret_remains;
          Alcotest.test_case "branch count = sites" `Quick
            test_branch_count_matches_sites;
          Alcotest.test_case "bary slots sequential" `Quick
            test_bary_slots_sequential;
          Alcotest.test_case "double instrument" `Quick
            test_double_instrument_rejected;
          Alcotest.test_case "code grows" `Quick test_code_grows;
          Alcotest.test_case "plt entry shape" `Quick test_plt_entry_shape;
        ] );
      ( "verifier acceptance",
        [
          Alcotest.test_case "whole suite verifies" `Quick
            test_verifier_accepts_suite;
          Alcotest.test_case "libc verifies" `Quick test_verifier_accepts_libc;
          Alcotest.test_case "plain rejected" `Quick test_verifier_rejects_plain;
        ] );
      ("verifier rejections", rejections);
      ( "sandbox flavours",
        [
          Alcotest.test_case "segment omits masks" `Quick
            test_segment_mode_omits_masks;
          Alcotest.test_case "segment mode runs" `Quick test_segment_mode_runs;
          Alcotest.test_case "segment code smaller" `Quick
            test_segment_code_is_smaller;
        ] );
    ]
