test/test_idtables.ml: Alcotest Atomic Domain Id Idtables List Mcfi_util Printf QCheck QCheck_alcotest Tables Tx Tx_baselines
