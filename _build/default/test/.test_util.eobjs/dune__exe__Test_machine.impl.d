test/test_machine.ml: Alcotest Char Idtables List Mcfi_runtime Vmisa
