test/test_instrument.ml: Alcotest Fmt Fun Instrument List Mcfi Mcfi_compiler Mcfi_runtime Suite Verifier Vmisa
