test/test_tx_model.ml: Alcotest Array Fun Id Idtables List Printf Tables
