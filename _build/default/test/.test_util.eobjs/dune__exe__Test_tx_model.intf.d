test/test_tx_model.mli:
