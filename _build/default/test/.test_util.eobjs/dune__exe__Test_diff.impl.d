test/test_diff.ml: Alcotest Ast Int64 List Mcfi Mcfi_runtime Mcfi_util Minic Option Parser Pretty Printf QCheck QCheck_alcotest Suite
