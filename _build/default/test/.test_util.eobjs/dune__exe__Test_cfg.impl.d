test/test_cfg.ml: Alcotest Array Cfg List Minic Printf QCheck QCheck_alcotest
