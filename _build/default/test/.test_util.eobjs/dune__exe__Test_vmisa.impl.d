test/test_vmisa.ml: Alcotest Array Asm Disasm Encode Fmt Hashtbl Instr List QCheck QCheck_alcotest String Vmisa
