test/test_idtables.mli:
