test/test_pipeline.ml: Alcotest Mcfi Mcfi_runtime String Vmisa
