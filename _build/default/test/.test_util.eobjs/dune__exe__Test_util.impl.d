test/test_util.ml: Alcotest Int64 List Mcfi_util QCheck QCheck_alcotest
