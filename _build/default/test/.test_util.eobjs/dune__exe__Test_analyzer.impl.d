test/test_analyzer.ml: Alcotest Analyzer Array List Minic Parser QCheck QCheck_alcotest Suite Typecheck
