test/test_runtime.ml: Alcotest Idtables Int64 List Mcfi Mcfi_runtime Option QCheck QCheck_alcotest Security String Suite
