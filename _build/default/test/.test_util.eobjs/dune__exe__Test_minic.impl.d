test/test_minic.ml: Alcotest Ast Lexer List Minic Option Parser Printf QCheck QCheck_alcotest Token Typecheck Types
