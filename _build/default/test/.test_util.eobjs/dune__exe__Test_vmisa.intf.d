test/test_vmisa.mli:
