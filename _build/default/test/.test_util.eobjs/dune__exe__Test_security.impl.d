test/test_security.ml: Alcotest Array Cfg List Mcfi Mcfi_runtime QCheck QCheck_alcotest Security String Suite Vmisa
