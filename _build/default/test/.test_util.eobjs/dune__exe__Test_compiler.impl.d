test/test_compiler.ml: Alcotest Filename List Mcfi Mcfi_compiler Mcfi_runtime Printf QCheck QCheck_alcotest Suite Sys
