(* Tests for the virtual ISA: encode/decode round-trips, assembler layout,
   label resolution, and alignment padding. *)

open Vmisa

let all_sample_instrs =
  Instr.
    [
      Nop; Halt; Ret; Syscall; Push 3; Pop 15; Call_r 2; Jmp_r 9;
      Mov_rr (1, 2); Cmp_rr (3, 4); Cmp_lo (11, 13); Tary_load (11, 12);
      Binop (Add, 0, 1); Binop (Shr, 9, 10);
      Jmp 0x1234; Call 77; Jcc (Ne, 0x40); Bary_load (13, 5);
      Load (1, 2, 8); Store (15, -8, 3);
      Mov_ri (4, 123456789); Cmp_ri (5, -1); Test_ri (11, 1);
      Binop_i (And, 12, 0xffffffff);
    ]

let test_roundtrip_each () =
  List.iter
    (fun i ->
      let bytes = Encode.encode_all [ i ] in
      match Encode.decode bytes 0 with
      | Ok (j, off) ->
        Alcotest.(check bool)
          (Fmt.str "roundtrip %a" Instr.pp i)
          true
          (Instr.equal i j && off = String.length bytes)
      | Error e -> Alcotest.failf "decode error: %a" Encode.pp_decode_error e)
    all_sample_instrs

let test_size_matches_encoding () =
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Fmt.str "size %a" Instr.pp i)
        (String.length (Encode.encode_all [ i ]))
        (Instr.size i))
    all_sample_instrs

let test_decode_all_stream () =
  let bytes = Encode.encode_all all_sample_instrs in
  match Encode.decode_all bytes with
  | Ok items ->
    Alcotest.(check int) "count" (List.length all_sample_instrs)
      (List.length items);
    Alcotest.(check bool)
      "instrs" true
      (List.map fst items = all_sample_instrs)
  | Error (e, off) ->
    Alcotest.failf "decode failed at %d: %a" off Encode.pp_decode_error e

let test_decode_bad_opcode () =
  match Encode.decode "\xff" 0 with
  | Error (Encode.Bad_opcode 0xff) -> ()
  | _ -> Alcotest.fail "expected Bad_opcode"

let test_decode_truncated () =
  (* Mov_ri needs 10 bytes; give it 3 *)
  let bytes = String.sub (Encode.encode_all [ Instr.Mov_ri (1, 42) ]) 0 3 in
  match Encode.decode bytes 0 with
  | Error Encode.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated"

let test_asm_label_resolution () =
  let items =
    Asm.
      [
        Label "start"; I (Instr.Mov_ri (0, 1)); Jmp_sym "end";
        Label "mid"; I Instr.Nop; Label "end"; I Instr.Halt;
      ]
  in
  match Asm.assemble ~base:0x100 items with
  | Ok prog ->
    let lbl s = Hashtbl.find prog.Asm.labels s in
    Alcotest.(check int) "start" 0x100 (lbl "start");
    (* mov_ri = 10 bytes, jmp = 5 *)
    Alcotest.(check int) "mid" (0x100 + 15) (lbl "mid");
    Alcotest.(check int) "end" (0x100 + 16) (lbl "end");
    (* the jmp resolves to end's address *)
    let _, jmp = prog.Asm.instrs.(1) in
    Alcotest.(check bool) "jmp target" true (jmp = Instr.Jmp (0x100 + 16))
  | Error e -> Alcotest.failf "assemble: %a" Asm.pp_error e

let test_asm_align_padding () =
  let items =
    Asm.[ I Instr.Nop; Align 4; Label "target"; I Instr.Halt ]
  in
  match Asm.assemble items with
  | Ok prog ->
    Alcotest.(check int) "aligned" 0 (Hashtbl.find prog.Asm.labels "target" mod 4);
    Alcotest.(check int) "addr 4" 4 (Hashtbl.find prog.Asm.labels "target")
  | Error e -> Alcotest.failf "assemble: %a" Asm.pp_error e

let test_asm_align_noop_when_aligned () =
  let items = Asm.[ Align 4; Label "t"; I Instr.Halt ] in
  match Asm.assemble items with
  | Ok prog ->
    Alcotest.(check int) "no padding" 0 (Hashtbl.find prog.Asm.labels "t")
  | Error e -> Alcotest.failf "assemble: %a" Asm.pp_error e

let test_asm_undefined_label () =
  match Asm.assemble [ Asm.Jmp_sym "nowhere" ] with
  | Error (Asm.Undefined_label "nowhere") -> ()
  | _ -> Alcotest.fail "expected Undefined_label"

let test_asm_duplicate_label () =
  match Asm.assemble [ Asm.Label "x"; Asm.Label "x" ] with
  | Error (Asm.Duplicate_label "x") -> ()
  | _ -> Alcotest.fail "expected Duplicate_label"

let test_asm_undefined_labels_listing () =
  let items =
    Asm.[ Label "here"; Call_sym "ext1"; Jmp_sym "here"; Mov_sym (0, "ext2") ]
  in
  Alcotest.(check (list string))
    "externs" [ "ext1"; "ext2" ]
    (Asm.undefined_labels items)

let test_asm_image_matches_instrs () =
  let items =
    Asm.[ Label "f"; I (Instr.Push 14); I (Instr.Pop 14); I Instr.Ret ]
  in
  match Asm.assemble items with
  | Ok prog ->
    let decoded, err = Disasm.disassemble prog.Asm.image in
    Alcotest.(check bool) "no trailing error" true (err = None);
    Alcotest.(check bool)
      "same stream" true
      (List.map snd decoded = List.map snd (Array.to_list prog.Asm.instrs))
  | Error e -> Alcotest.failf "assemble: %a" Asm.pp_error e

(* property: encode-decode round trip over random instruction streams *)

let arb_reg = QCheck.Gen.int_bound 15

let arb_instr : Instr.t QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    oneof
      [
        return Instr.Nop; return Instr.Halt; return Instr.Ret;
        return Instr.Syscall;
        map (fun r -> Instr.Push r) arb_reg;
        map (fun r -> Instr.Pop r) arb_reg;
        map (fun r -> Instr.Call_r r) arb_reg;
        map (fun r -> Instr.Jmp_r r) arb_reg;
        map2 (fun a b -> Instr.Mov_rr (a, b)) arb_reg arb_reg;
        map2 (fun a b -> Instr.Cmp_rr (a, b)) arb_reg arb_reg;
        map2 (fun a b -> Instr.Cmp_lo (a, b)) arb_reg arb_reg;
        map2 (fun a b -> Instr.Tary_load (a, b)) arb_reg arb_reg;
        map2 (fun r i -> Instr.Mov_ri (r, i)) arb_reg (int_range (-1000000000) 1000000000);
        map2 (fun r i -> Instr.Cmp_ri (r, i)) arb_reg (int_range (-1000) 1000);
        map2 (fun r i -> Instr.Bary_load (r, i)) arb_reg (int_bound 10000);
        map2 (fun a i -> Instr.Jcc ((if i then Instr.Eq else Instr.Ne), a))
          (int_bound 100000) bool;
        map (fun a -> Instr.Jmp a) (int_bound 100000);
        map (fun a -> Instr.Call a) (int_bound 100000);
        map3 (fun a b o -> Instr.Load (a, b, o)) arb_reg arb_reg (int_range (-64) 64);
        map3 (fun a o b -> Instr.Store (a, o, b)) arb_reg (int_range (-64) 64) arb_reg;
      ]
  in
  QCheck.make ~print:Instr.to_string gen

let prop_stream_roundtrip =
  QCheck.Test.make ~name:"encode/decode stream roundtrip" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_bound 40) arb_instr)
    (fun instrs ->
      match Encode.decode_all (Encode.encode_all instrs) with
      | Ok items -> List.map fst items = instrs
      | Error _ -> false)

let prop_decode_never_crashes =
  QCheck.Test.make ~name:"decode total on random bytes" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun s ->
      match Encode.decode_all s with Ok _ | Error _ -> true)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vmisa"
    [
      ( "encode",
        [
          Alcotest.test_case "roundtrip each" `Quick test_roundtrip_each;
          Alcotest.test_case "size matches" `Quick test_size_matches_encoding;
          Alcotest.test_case "decode_all" `Quick test_decode_all_stream;
          Alcotest.test_case "bad opcode" `Quick test_decode_bad_opcode;
          Alcotest.test_case "truncated" `Quick test_decode_truncated;
        ] );
      ( "asm",
        [
          Alcotest.test_case "label resolution" `Quick test_asm_label_resolution;
          Alcotest.test_case "align padding" `Quick test_asm_align_padding;
          Alcotest.test_case "align no-op" `Quick test_asm_align_noop_when_aligned;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "undefined listing" `Quick
            test_asm_undefined_labels_listing;
          Alcotest.test_case "image matches" `Quick test_asm_image_matches_instrs;
        ] );
      ("props", qc [ prop_stream_roundtrip; prop_decode_never_crashes ]);
    ]
