(* End-to-end code-generator tests: each case compiles a MiniC program
   (uninstrumented, plus libc) through the real pipeline, runs it on the
   VM, and checks the exit code and output.  The same programs run again
   under MCFI in test_runtime; here the concern is language semantics. *)

let run ?(instrumented = false) ?(tco = false) src =
  Mcfi.Pipeline.run_source ~instrumented ~tco src

let expect_output ?tco name src expected =
  Alcotest.test_case name `Quick (fun () ->
      match run ?tco src with
      | Mcfi_runtime.Machine.Exited 0, out ->
        Alcotest.(check string) name expected out
      | reason, out ->
        Alcotest.failf "%s: %a (output %S)" name
          Mcfi_runtime.Machine.pp_exit_reason reason out)

let expect_exit name src code =
  Alcotest.test_case name `Quick (fun () ->
      match run src with
      | Mcfi_runtime.Machine.Exited n, _ -> Alcotest.(check int) name code n
      | reason, out ->
        Alcotest.failf "%s: %a (output %S)" name
          Mcfi_runtime.Machine.pp_exit_reason reason out)

let expect_fault name src =
  Alcotest.test_case name `Quick (fun () ->
      match run src with
      | Mcfi_runtime.Machine.Fault _, _ -> ()
      | reason, out ->
        Alcotest.failf "%s: expected a fault, got %a (output %S)" name
          Mcfi_runtime.Machine.pp_exit_reason reason out)

let semantics =
  [
    expect_output "arithmetic"
      {|int main() { printf("%d %d %d %d %d", 7 + 3, 7 - 3, 7 * 3, 7 / 3, 7 % 3); return 0; }|}
      "10 4 21 2 1";
    expect_output "precedence"
      {|int main() { printf("%d", 2 + 3 * 4 - 10 / 5); return 0; }|} "12";
    expect_output "negative division truncates toward zero"
      {|int main() { printf("%d %d", -7 / 2, -7 % 2); return 0; }|} "-3 -1";
    expect_output "bitwise"
      {|int main() { printf("%d %d %d %d %d", 12 & 10, 12 | 10, 12 ^ 10, 1 << 4, 64 >> 3); return 0; }|}
      "8 14 6 16 8";
    expect_output "comparisons produce 0/1"
      {|int main() { printf("%d%d%d%d%d%d", 1 < 2, 2 <= 2, 3 > 4, 4 >= 5, 5 == 5, 5 != 5); return 0; }|}
      "110010";
    expect_output "short circuit and"
      {|
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
  int r = 0 && bump();
  printf("%d %d", r, calls);
  return 0;
}|}
      "0 0";
    expect_output "short circuit or"
      {|
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
  int r = 1 || bump();
  printf("%d %d", r, calls);
  return 0;
}|}
      "1 0";
    expect_output "ternary"
      {|int main() { int x = 5; printf("%d %d", x > 3 ? 10 : 20, x < 3 ? 10 : 20); return 0; }|}
      "10 20";
    expect_output "assignment is an expression"
      {|int main() { int a; int b; a = b = 21; printf("%d", a + b); return 0; }|}
      "42";
    expect_output "unary operators"
      {|int main() { int x = 5; printf("%d %d %d", -x, !x, ~x); return 0; }|}
      "-5 0 -6";
  ]

let control_flow =
  [
    expect_output "while with break/continue"
      {|
int main() {
  int i = 0;
  int s = 0;
  while (1) {
    i = i + 1;
    if (i > 10) { break; }
    if (i % 2 == 0) { continue; }
    s = s + i;
  }
  printf("%d", s);
  return 0;
}|}
      "25";
    expect_output "for with declaration in header"
      {|
int main() {
  int s = 0;
  for (int i = 0; i < 5; i = i + 1) { s = s + i * i; }
  printf("%d", s);
  return 0;
}|}
      "30";
    expect_output "nested loops with continue"
      {|
int main() {
  int s = 0;
  int i;
  int j;
  for (i = 0; i < 4; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) {
      if (j == i) { continue; }
      s = s + 1;
    }
  }
  printf("%d", s);
  return 0;
}|}
      "12";
    expect_output "dense switch builds a jump table"
      {|
int pick(int x) {
  switch (x) {
    case 0: return 10;
    case 1: return 11;
    case 2: return 12;
    case 3: return 13;
    case 4: return 14;
    default: return -1;
  }
}
int main() {
  int i;
  for (i = -1; i < 6; i = i + 1) { printf("%d ", pick(i)); }
  return 0;
}|}
      "-1 10 11 12 13 14 -1 ";
    expect_output "sparse switch compares"
      {|
int pick(int x) {
  switch (x) {
    case 100: return 1;
    case -7: return 2;
    default: return 3;
  }
}
int main() { printf("%d%d%d", pick(100), pick(-7), pick(0)); return 0; }|}
      "123";
    expect_output "switch multi-label case"
      {|
int main() {
  int i;
  for (i = 0; i < 5; i = i + 1) {
    switch (i) { case 0: case 2: case 4: print_str("e"); default: print_str("o"); }
  }
  return 0;
}|}
      "eoeoe";
    expect_output "recursion"
      {|
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() { printf("%d", fib(15)); return 0; }|}
      "610";
    expect_output "mutual recursion"
      {|
int odd(int n);
int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
int main() { printf("%d%d", even(10), odd(10)); return 0; }|}
      "10";
  ]

let memory =
  [
    expect_output "pointers and address-of"
      {|
void set(int *p, int v) { *p = v; }
int main() {
  int x = 1;
  set(&x, 42);
  printf("%d", x);
  return 0;
}|}
      "42";
    expect_output "pointer arithmetic scales"
      {|
struct pair { int a; int b; };
struct pair arr[3];
int main() {
  struct pair *p = arr;
  p = p + 2;
  p->a = 7;
  printf("%d", arr[2].a);
  return 0;
}|}
      "7";
    expect_output "pointer difference"
      {|
int arr[10];
int main() {
  int *a = &arr[2];
  int *b = &arr[9];
  printf("%d", b - a);
  return 0;
}|}
      "7";
    expect_output "array in struct"
      {|
struct buf { int len; int data[4]; };
int main() {
  struct buf b;
  int i;
  b.len = 4;
  for (i = 0; i < 4; i = i + 1) { b.data[i] = i * i; }
  printf("%d%d%d%d", b.data[0], b.data[1], b.data[2], b.data[3]);
  return 0;
}|}
      "0149";
    expect_output "nested struct access"
      {|
struct inner { int x; int y; };
struct outer { int tag; struct inner in; };
int main() {
  struct outer o;
  o.in.x = 6;
  o.in.y = 7;
  printf("%d", o.in.x * o.in.y);
  return 0;
}|}
      "42";
    expect_output "union shares storage"
      {|
union u { int as_int; char as_char; };
int main() {
  union u v;
  v.as_int = 65;
  printf("%c", v.as_char);
  return 0;
}|}
      "A";
    expect_output "global initializers"
      {|
int x = 40;
int arr[3] = { 1, 2, 3 };
int computed = 6 * 7;
int main() { printf("%d %d %d", x + arr[1], arr[0] + arr[2], computed); return 0; }|}
      "42 4 42";
    expect_output "string literals and strlen"
      {|int main() { char *s = "hello"; printf("%s:%d", s, strlen(s)); return 0; }|}
      "hello:5";
    expect_output "malloc'd memory persists"
      {|
int *mk(int n) {
  int *p = (int *) malloc(n);
  int i;
  for (i = 0; i < n; i = i + 1) { p[i] = i; }
  return p;
}
int main() {
  int *a = mk(5);
  int *b = mk(5);
  printf("%d %d", a[4], b == a);
  return 0;
}|}
      "4 0";
    expect_fault "null dereference faults" {|int main() { int *p = (int *) 0; return *p; }|};
    expect_fault "division by zero faults"
      {|int main() { int z = 0; return 5 / z; }|};
  ]

let functions =
  [
    expect_output "function pointer call"
      {|
int dbl(int x) { return 2 * x; }
int main() {
  int (*f)(int) = dbl;
  printf("%d", f(21));
  return 0;
}|}
      "42";
    expect_output "function pointer array dispatch"
      {|
int a(int x) { return x + 1; }
int b(int x) { return x + 2; }
int c(int x) { return x + 3; }
int (*ops[3])(int) = { a, b, c };
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 3; i = i + 1) { s = s + ops[i](10); }
  printf("%d", s);
  return 0;
}|}
      "36";
    expect_output "fptr in struct field"
      {|
struct obj { int v; int (*get)(struct obj *o); };
int get_v(struct obj *o) { return o->v; }
int main() {
  struct obj o;
  o.v = 42;
  o.get = get_v;
  printf("%d", o.get(&o));
  return 0;
}|}
      "42";
    expect_output "higher order"
      {|
int apply_twice(int (*f)(int), int x) { return f(f(x)); }
int inc(int x) { return x + 1; }
int main() { printf("%d", apply_twice(inc, 40)); return 0; }|}
      "42";
    expect_output "varargs printf"
      {|int main() { printf("%d-%s-%c-%%", 1, "two", '3'); return 0; }|}
      "1-two-3-%";
    expect_output "custom varargs via __vararg"
      {|
int sum_all(int n, ...) {
  int s = 0;
  int i;
  for (i = 0; i < n; i = i + 1) { s = s + __vararg(i); }
  return s;
}
int main() { printf("%d", sum_all(4, 10, 20, 30, 40)); return 0; }|}
      "100";
    expect_output "deep expression spills"
      {|
int main() {
  int r = 1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + (11 + 12))))))))));
  printf("%d", r);
  return 0;
}|}
      "78";
    expect_output "call in deep expression saves temporaries"
      {|
int seven() { return 7; }
int main() {
  int r = 1 + (2 + (3 + (4 + (5 * seven()))));
  printf("%d", r);
  return 0;
}|}
      "45";
    expect_exit "exit code from main"
      {|int main() { return 42; }|} 42;
  ]

let setjmp_tco =
  [
    expect_output "setjmp returns twice"
      {|
int buf[4];
int main() {
  int r = setjmp(buf);
  printf("[%d]", r);
  if (r < 3) { longjmp(buf, r + 1); }
  return 0;
}|}
      "[0][1][2][3]";
    expect_output "longjmp across frames"
      {|
int buf[4];
void deep(int n) {
  if (n == 0) { longjmp(buf, 42); }
  deep(n - 1);
}
int main() {
  int r = setjmp(buf);
  if (r == 0) { deep(10); return 1; }
  printf("%d", r);
  return 0;
}|}
      "42";
    expect_output ~tco:true "deep tail recursion with tco"
      {|
int count(int n, int acc) {
  if (n == 0) { return acc; }
  return count(n - 1, acc + 1);
}
int main() { printf("%d", count(200000, 0)); return 0; }|}
      "200000";
    expect_output ~tco:true "indirect tail call"
      {|
int base(int n, int acc) { return acc; }
int step(int n, int acc);
int (*next)(int, int) = step;
int step(int n, int acc) {
  if (n == 0) { return base(n, acc); }
  return next(n - 1, acc + 2);
}
int main() { printf("%d", step(1000, 0)); return 0; }|}
      "2000";
  ]

(* objfile serialization round trip *)
let test_objfile_roundtrip () =
  let src = Suite.Libc.header ^ {|
int twice(int x) { return 2 * x; }
int main() { return twice(21) - 42; }|} in
  let obj = Mcfi.Pipeline.compile_module ~name:"rt" src in
  let obj = Mcfi.Pipeline.instrument obj in
  let path = Filename.temp_file "mcfi" ".mobj" in
  Mcfi_compiler.Objfile.save path obj;
  let loaded = Mcfi_compiler.Objfile.load path in
  Sys.remove path;
  Alcotest.(check string) "name" obj.o_name loaded.o_name;
  Alcotest.(check int) "items"
    (List.length obj.o_items)
    (List.length loaded.o_items);
  Alcotest.(check int) "sites"
    (List.length obj.o_sites)
    (List.length loaded.o_sites);
  Alcotest.(check bool) "instrumented" true loaded.o_instrumented

let test_objfile_bad_magic () =
  let path = Filename.temp_file "mcfi" ".mobj" in
  let oc = open_out path in
  output_string oc "NOT AN OBJECT";
  close_out oc;
  let result =
    match Mcfi_compiler.Objfile.load path with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Sys.remove path;
  Alcotest.(check bool) "rejected" true result

(* Property: compiled arithmetic agrees with OCaml's. *)
let prop_compiled_arith =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then map (fun v -> `Lit v) (int_range (-1000) 1000)
          else
            frequency
              [
                (1, map (fun v -> `Lit v) (int_range (-1000) 1000));
                ( 3,
                  map3
                    (fun op a b -> `Bin (op, a, b))
                    (oneofl [ "+"; "-"; "*" ])
                    (self (n / 2)) (self (n / 2)) );
              ]))
  in
  let rec render = function
    | `Lit v -> if v < 0 then Printf.sprintf "(0 - %d)" (-v) else string_of_int v
    | `Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (render a) op (render b)
  in
  let rec eval = function
    | `Lit v -> v
    | `Bin ("+", a, b) -> eval a + eval b
    | `Bin ("-", a, b) -> eval a - eval b
    | `Bin ("*", a, b) -> eval a * eval b
    | `Bin _ -> assert false
  in
  QCheck.Test.make ~name:"compiled arithmetic agrees with OCaml" ~count:25
    (QCheck.make ~print:render gen) (fun e ->
      let src =
        Printf.sprintf "int main() { print_int(%s); return 0; }" (render e)
      in
      match run src with
      | Mcfi_runtime.Machine.Exited 0, out -> out = string_of_int (eval e)
      | _ -> false)

let () =
  Alcotest.run "compiler"
    [
      ("semantics", semantics);
      ("control flow", control_flow);
      ("memory", memory);
      ("functions", functions);
      ("setjmp & tco", setjmp_tco);
      ( "objfile",
        [
          Alcotest.test_case "save/load roundtrip" `Quick
            test_objfile_roundtrip;
          Alcotest.test_case "bad magic rejected" `Quick test_objfile_bad_magic;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_compiled_arith ]);
    ]
