(* Differential tests.

   1. The pretty-printer round-trips: printing any suite program and
      re-parsing yields a structurally equal AST (modulo locations and
      negative-literal normalization).
   2. Randomly generated, well-typed MiniC programs behave identically
      under plain execution, MCFI, and MCFI+TCO — the instrumentation
      must be semantically transparent on benign programs, whatever the
      control-flow shape. Generated programs use global state, bounded
      loops, nested calls and indirect calls through a function-pointer
      table, with call depth bounded by construction (f_i only calls
      f_j, j < i; the table holds only f_0/f_1). *)

open Minic

(* ---------- round trip ---------- *)

(* Structural equality modulo locations, [ety], and the parser's
   representation of negative literals. *)
let rec norm_expr (e : Ast.expr) : Ast.expr =
  let mk edesc = { Ast.edesc; eloc = Ast.no_loc; ety = Ast.Tvoid } in
  match e.edesc with
  | Eunop (Neg, { edesc = Eint n; _ }) -> mk (Ast.Eint (-n))
  | Eint _ | Echar _ | Estr _ | Evar _ | Esizeof _ -> mk e.edesc
  | Eunop (op, a) -> mk (Ast.Eunop (op, norm_expr a))
  | Ebinop (op, a, b) -> mk (Ast.Ebinop (op, norm_expr a, norm_expr b))
  | Eassign (a, b) -> mk (Ast.Eassign (norm_expr a, norm_expr b))
  | Econd (a, b, c) -> mk (Ast.Econd (norm_expr a, norm_expr b, norm_expr c))
  | Ecall (f, args) -> mk (Ast.Ecall (norm_expr f, List.map norm_expr args))
  | Ecast (t, a) -> mk (Ast.Ecast (t, norm_expr a))
  | Eaddr a -> mk (Ast.Eaddr (norm_expr a))
  | Ederef a -> mk (Ast.Ederef (norm_expr a))
  | Efield (a, f) -> mk (Ast.Efield (norm_expr a, f))
  | Earrow (a, f) -> mk (Ast.Earrow (norm_expr a, f))
  | Eindex (a, i) -> mk (Ast.Eindex (norm_expr a, norm_expr i))

let rec norm_stmt (s : Ast.stmt) : Ast.stmt =
  let mk sdesc = { Ast.sdesc; sloc = Ast.no_loc } in
  match s.sdesc with
  | Sexpr e -> mk (Ast.Sexpr (norm_expr e))
  | Sdecl (t, n, init) -> mk (Ast.Sdecl (t, n, Option.map norm_expr init))
  | Sif (c, a, b) ->
    mk (Ast.Sif (norm_expr c, norm_stmt a, Option.map norm_stmt b))
  | Swhile (c, b) -> mk (Ast.Swhile (norm_expr c, norm_stmt b))
  | Sfor (i, c, st, b) ->
    mk
      (Ast.Sfor
         ( Option.map norm_stmt i,
           Option.map norm_expr c,
           Option.map norm_expr st,
           norm_stmt b ))
  | Sreturn e -> mk (Ast.Sreturn (Option.map norm_expr e))
  | Sblock body -> mk (Ast.Sblock (List.map norm_stmt body))
  | Sbreak -> mk Ast.Sbreak
  | Scontinue -> mk Ast.Scontinue
  | Sswitch (e, cases, default) ->
    mk
      (Ast.Sswitch
         ( norm_expr e,
           List.map
             (fun c ->
               { Ast.cvalues = c.Ast.cvalues;
                 cbody = List.map norm_stmt c.Ast.cbody })
             cases,
           Option.map (List.map norm_stmt) default ))

let norm_decl = function
  | Ast.Dfun f -> Ast.Dfun { f with fbody = List.map norm_stmt f.fbody;
                             floc = Ast.no_loc }
  | Ast.Dglobal (t, n, Some (Iexpr e)) ->
    Ast.Dglobal (t, n, Some (Ast.Iexpr (norm_expr e)))
  | Ast.Dglobal (t, n, Some (Ilist es)) ->
    Ast.Dglobal (t, n, Some (Ast.Ilist (List.map norm_expr es)))
  | d -> d

let norm_program (p : Ast.program) =
  { p with Ast.pdecls = List.map norm_decl p.pdecls }

let roundtrip_cases =
  List.map
    (fun (b : Suite.Programs.benchmark) ->
      Alcotest.test_case b.name `Quick (fun () ->
          let p1 = Parser.parse ~name:b.name b.source in
          let printed = Pretty.to_string p1 in
          let p2 =
            try Parser.parse ~name:b.name printed
            with Parser.Error (msg, loc) ->
              Alcotest.failf "%s: reparse failed at %a: %s\n%s" b.name
                Ast.pp_loc loc msg printed
          in
          if norm_program p1 <> norm_program p2 then
            Alcotest.failf "%s: round trip changed the AST" b.name))
    Suite.Programs.all

let libc_roundtrip =
  Alcotest.test_case "libc" `Quick (fun () ->
      let p1 = Parser.parse ~name:"libc" Suite.Libc.source in
      let p2 = Parser.parse ~name:"libc" (Pretty.to_string p1) in
      if norm_program p1 <> norm_program p2 then
        Alcotest.fail "libc round trip changed the AST")

(* ---------- random program generation ---------- *)

(* Programs are generated directly as ASTs and printed to source; all
   expressions have type int, so they are well typed by construction. *)

let mk = Ast.mk_expr
let int_ n = mk (Ast.Eint n)
let var v = mk (Ast.Evar v)
let bin op a b = mk (Ast.Ebinop (op, a, b))
let assign l r = mk (Ast.Eassign (l, r))
let call f args = mk (Ast.Ecall (var f, args))
let idx a i = mk (Ast.Eindex (a, i))
let stmt sdesc = { Ast.sdesc; sloc = Ast.no_loc }

(* g0 is an 8-element global int array; indices are masked with & 7 *)
let g0 i = idx (var "g0") (bin Ast.Band i (int_ 7))

type genv = {
  calls_left : int ref;
      (* per-function budget of generated call sites: keeps the dynamic
         call tree polynomial (f_i may call f_j for j < i, so an
         unbounded generator would produce exponential call fans) *)
  locals : string list;
  fn_index : int;    (* may call f_j for j < fn_index *)
  table_size : int;
}

let rec gen_expr rng env depth =
  let open Mcfi_util.Prng in
  if depth <= 0 then gen_atom rng env
  else begin
    match int rng 10 with
    | 0 | 1 | 2 ->
      let op =
        choose rng Ast.[ Add; Sub; Mul; Band; Bor; Bxor ]
      in
      bin op (gen_expr rng env (depth - 1)) (gen_expr rng env (depth - 1))
    | 3 ->
      let op = choose rng Ast.[ Lt; Le; Eq; Ne; Gt; Ge ] in
      bin op (gen_expr rng env (depth - 1)) (gen_expr rng env (depth - 1))
    | 4 when env.fn_index > 0 && !(env.calls_left) > 0 ->
      (* direct call to an earlier function *)
      decr env.calls_left;
      let j = int rng env.fn_index in
      call (Printf.sprintf "f%d" j)
        [ gen_expr rng env (depth - 1); gen_expr rng env (depth - 1) ]
    | 5 when env.fn_index >= 2 && !(env.calls_left) > 0 ->
      (* indirect call through the table (entries are f0/f1 only) *)
      decr env.calls_left;
      mk
        (Ast.Ecall
           ( idx (var "tab")
               (bin Ast.Band (gen_expr rng env (depth - 1))
                  (int_ (env.table_size - 1))),
             [ gen_expr rng env (depth - 1); gen_expr rng env (depth - 1) ] ))
    | 6 -> g0 (gen_expr rng env (depth - 1))
    | _ -> gen_atom rng env
  end

and gen_atom rng env =
  let open Mcfi_util.Prng in
  match int rng 5 with
  | 0 -> int_ (int rng 200 - 100)
  | 1 -> var "a"
  | 2 -> var "b"
  | 3 -> var "g1"
  | 4 when env.locals <> [] -> var (choose rng env.locals)
  | _ -> int_ (int rng 20)

let rec gen_stmt rng env depth =
  let open Mcfi_util.Prng in
  match int rng 8 with
  | 0 -> (stmt (Ast.Sexpr (assign (var "g1") (gen_expr rng env 2))), env)
  | 1 ->
    (stmt (Ast.Sexpr (assign (g0 (gen_expr rng env 1)) (gen_expr rng env 2))),
     env)
  | 2 when depth > 0 ->
    let then_, _ = gen_block rng env (depth - 1) 2 in
    let else_, _ = gen_block rng env (depth - 1) 2 in
    ( stmt
        (Ast.Sif
           ( gen_expr rng env 2,
             stmt (Ast.Sblock then_),
             if bool rng then Some (stmt (Ast.Sblock else_)) else None )),
      env )
  | 3 when depth > 0 ->
    (* a bounded counting loop over a fresh local; no calls inside loop
       bodies, so the dynamic call tree stays polynomial *)
    let v = Printf.sprintf "i%d" (List.length env.locals) in
    let body, _ =
      gen_block rng
        { env with locals = v :: env.locals; calls_left = ref 0 }
        (depth - 1) 2
    in
    ( stmt
        (Ast.Sfor
           ( Some (stmt (Ast.Sdecl (Ast.Tint, v, Some (int_ 0)))),
             Some (bin Ast.Lt (var v) (int_ (1 + int rng 6))),
             Some (assign (var v) (bin Ast.Add (var v) (int_ 1))),
             stmt (Ast.Sblock body) )),
      env )
  | 4 ->
    let v = Printf.sprintf "x%d" (List.length env.locals) in
    ( stmt (Ast.Sdecl (Ast.Tint, v, Some (gen_expr rng env 2))),
      { env with locals = v :: env.locals } )
  | 5 when depth > 0 ->
    (* a small dense switch: exercises jump tables *)
    let case v =
      { Ast.cvalues = [ v ];
        cbody = [ stmt (Ast.Sexpr (assign (var "g1")
                                     (gen_expr rng env 1))) ] }
    in
    ( stmt
        (Ast.Sswitch
           ( bin Ast.Band (gen_expr rng env 1) (int_ 3),
             [ case 0; case 1; case 2; case 3 ],
             if bool rng then Some [ stmt (Ast.Sexpr (gen_expr rng env 1)) ]
             else None )),
      env )
  | _ ->
    (stmt (Ast.Sexpr (gen_expr rng env 2)), env)

and gen_block rng env depth n =
  let rec go env acc k =
    if k = 0 then (List.rev acc, env)
    else begin
      let s, env = gen_stmt rng env depth in
      go env (s :: acc) (k - 1)
    end
  in
  go env [] n

let gen_function rng ~fn_index ~table_size =
  let env = { calls_left = ref 3; locals = []; fn_index; table_size } in
  let nstmts = 2 + Mcfi_util.Prng.int rng 3 in
  let body, env = gen_block rng env 2 nstmts in
  {
    Ast.fname = Printf.sprintf "f%d" fn_index;
    fparams = [ ("a", Ast.Tint); ("b", Ast.Tint) ];
    fvarargs = false;
    fret = Ast.Tint;
    fbody = body @ [ stmt (Ast.Sreturn (Some (gen_expr rng env 2))) ];
    floc = Ast.no_loc;
  }

let gen_program seed =
  let rng = Mcfi_util.Prng.create (Int64.of_int seed) in
  let nfuns = 3 + Mcfi_util.Prng.int rng 4 in
  let table_size = 4 in
  let funs =
    List.init nfuns (fun i -> Ast.Dfun (gen_function rng ~fn_index:i ~table_size))
  in
  let table_init =
    List.init table_size (fun k -> var (Printf.sprintf "f%d" (k mod 2)))
  in
  let main_body =
    List.concat_map
      (fun k ->
        [
          stmt
            (Ast.Sexpr
               (call "print_int"
                  [ call (Printf.sprintf "f%d" (nfuns - 1))
                      [ int_ k; int_ (k * 7) ] ]));
          stmt (Ast.Sexpr (call "print_char" [ int_ 32 ]));
        ])
      [ 0; 1; 2; 3 ]
    @ [
        stmt (Ast.Sexpr (call "print_int" [ var "g1" ]));
        stmt (Ast.Sreturn (Some (int_ 0)));
      ]
  in
  let decls =
    [
      Ast.Dglobal (Ast.Tarray (Ast.Tint, 8), "g0", None);
      Ast.Dglobal (Ast.Tint, "g1", Some (Ast.Iexpr (int_ 0)));
      Ast.Dglobal
        ( Ast.Tarray
            ( Ast.Tptr
                (Ast.Tfun
                   { params = [ Ast.Tint; Ast.Tint ]; varargs = false;
                     ret = Ast.Tint }),
              table_size ),
          "tab",
          Some (Ast.Ilist table_init) );
    ]
    @ funs
    @ [
        Ast.Dfun
          {
            fname = "main";
            fparams = [];
            fvarargs = false;
            fret = Ast.Tint;
            fbody = main_body;
            floc = Ast.no_loc;
          };
      ]
  in
  Pretty.to_string { Ast.pname = "gen"; pdecls = decls }

let run_variant ~instrumented ~tco src =
  Mcfi.Pipeline.run_source ~instrumented ~tco ~fuel:30_000_000 src

let prop_differential =
  QCheck.Test.make ~name:"random programs: plain = MCFI = MCFI+TCO" ~count:30
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let src = gen_program seed in
      match
        ( run_variant ~instrumented:false ~tco:false src,
          run_variant ~instrumented:true ~tco:false src,
          run_variant ~instrumented:true ~tco:true src )
      with
      | ( (Mcfi_runtime.Machine.Exited 0, out_plain),
          (Mcfi_runtime.Machine.Exited 0, out_mcfi),
          (Mcfi_runtime.Machine.Exited 0, out_tco) ) ->
        out_plain = out_mcfi && out_plain = out_tco
      | (r1, _), (r2, _), (r3, _) ->
        QCheck.Test.fail_reportf "unexpected exits: %a / %a / %a\n%s"
          Mcfi_runtime.Machine.pp_exit_reason r1
          Mcfi_runtime.Machine.pp_exit_reason r2
          Mcfi_runtime.Machine.pp_exit_reason r3 src
      | exception Mcfi.Pipeline.Error msg ->
        QCheck.Test.fail_reportf "pipeline error: %s\n%s" msg src)

let prop_generated_roundtrip =
  QCheck.Test.make ~name:"generated programs round-trip" ~count:50
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let src = gen_program seed in
      let p1 = Parser.parse ~name:"gen" src in
      let p2 = Parser.parse ~name:"gen" (Pretty.to_string p1) in
      norm_program p1 = norm_program p2)

let prop_generated_verify =
  QCheck.Test.make ~name:"generated programs pass the verifier" ~count:20
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let src = gen_program seed in
      (* build_process verifies every loaded module; reaching Exited
         means verification passed *)
      match run_variant ~instrumented:true ~tco:false src with
      | Mcfi_runtime.Machine.Exited 0, _ -> true
      | _ -> false)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "diff"
    [
      ("suite round trip", roundtrip_cases @ [ libc_roundtrip ]);
      ( "generated programs",
        qc [ prop_generated_roundtrip; prop_differential; prop_generated_verify ]
      );
    ]
