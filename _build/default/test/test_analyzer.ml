(* Tests for the C1/C2 analyzer: each false-positive elimination category
   (paper Table 1) on a minimal witness, the K1/K2 classification (Table
   2), and golden totals for the benchmark suite. *)

open Minic

let analyze src =
  let full = Suite.Libc.header ^ src in
  Analyzer.analyze ~source:src
    (Typecheck.check (Parser.parse ~name:"test" full))

let counts r =
  Analyzer.(r.vbe, r.uc, r.dc, r.mf, r.su, r.nf, r.vae, r.k1, r.k2)

let check_counts name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let r = analyze src in
      let got = counts r in
      if got <> expected then
        Alcotest.failf
          "%s: (vbe,uc,dc,mf,su,nf,vae,k1,k2) = %d,%d,%d,%d,%d,%d,%d,%d,%d"
          name r.vbe r.uc r.dc r.mf r.su r.nf r.vae r.k1 r.k2)

(* structs with a function-pointer field: every cast involving them is a
   C1 candidate *)
let preamble =
  {|
struct base { int tag; int (*run)(int); };
struct derived { int tag; int (*run)(int); int extra; };
struct untagged { int (*run)(int); int extra2; };
int runner(int x) { return x; }
|}

let categories =
  [
    check_counts "clean program has no violations"
      {|int add(int a, int b) { return a + b; }
        int main() { return add(21, 21) - 42; }|}
      (0, 0, 0, 0, 0, 0, 0, 0, 0);
    check_counts "well-typed fptr use is not a violation"
      {|int inc(int x) { return x + 1; }
        int main() { int (*f)(int) = inc; return f(41) - 42; }|}
      (0, 0, 0, 0, 0, 0, 0, 0, 0);
    check_counts "UC: upcast to prefix struct"
      (preamble
      ^ {|
struct base *up(struct derived *d) { return (struct base *) d; }
int main() { return 0; }|})
      (1, 1, 0, 0, 0, 0, 0, 0, 0);
    check_counts "DC: tagged downcast"
      (preamble
      ^ {|
struct derived *down(struct base *b) { return (struct derived *) b; }
int main() { return 0; }|})
      (1, 0, 1, 0, 0, 0, 0, 0, 0);
    check_counts "untagged downcast is not eliminated"
      (preamble
      ^ {|
struct untagged2 { int (*run)(int); int extra2; int more; };
struct untagged2 *down(struct untagged *b) { return (struct untagged2 *) b; }
int main() { return 0; }|})
      (1, 0, 0, 0, 0, 0, 1, 0, 1);
    check_counts "MF: malloc result"
      (preamble
      ^ {|
int main() {
  struct base *b = (struct base *) malloc(2);
  b->run = runner;
  return 0;
}|})
      (1, 0, 0, 1, 0, 0, 0, 0, 0);
    check_counts "MF: free argument"
      (preamble
      ^ {|
int main(struct base *b) {
  free((void *) b);
  return 0;
}|})
      (1, 0, 0, 1, 0, 0, 0, 0, 0);
    check_counts "SU: NULL'd function pointer"
      {|
int main() {
  int (*f)(int) = 0;
  return 0;
}|}
      (1, 0, 0, 0, 1, 0, 0, 0, 0);
    check_counts "NF: cast used for a non-fptr field"
      (preamble
      ^ {|
int peek(void *p) { return ((struct base *) p)->tag; }
int main() { return 0; }|})
      (1, 0, 0, 0, 0, 1, 0, 0, 0);
    check_counts "fptr field access is NOT an NF false positive"
      (preamble
      ^ {|
int call(void *p) { return ((struct base *) p)->run(1); }
int main() { return 0; }|})
      (1, 0, 0, 0, 0, 0, 1, 0, 1);
    check_counts "K1: incompatible function address"
      {|
int op(int a, int b) { return a + b; }
int main() {
  int (*f)(int) = (int (*)(int)) op;
  return 0;
}|}
      (1, 0, 0, 0, 0, 0, 1, 1, 0);
    check_counts "K2: fptr parked in void*"
      {|
int inc(int x) { return x + 1; }
int main() {
  int (*f)(int) = inc;
  void *p = (void *) f;
  int (*g)(int) = (int (*)(int)) p;
  return g(41) - 42;
}|}
      (2, 0, 0, 0, 0, 0, 2, 0, 2);
    check_counts "compatible assignment is not flagged"
      {|
int inc(int x) { return x + 1; }
typedef int (*fn)(int);
int main() { fn f = inc; return f(41) - 42; }|}
      (0, 0, 0, 0, 0, 0, 0, 0, 0);
    check_counts "implicit cast at call argument"
      (preamble
      ^ {|
void takes_base(struct base *b) { }
int main(struct derived *d) {
  takes_base((struct base *) d);
  return 0;
}|})
      (1, 1, 0, 0, 0, 0, 0, 0, 0);
    check_counts "int-to-int casts never counted"
      {|int main() { int x = (int) 'a'; char c = (char) x; return 0; }|}
      (0, 0, 0, 0, 0, 0, 0, 0, 0);
  ]

(* C2: MiniC has no inline assembly, matching the paper's zero rate. *)
let test_no_c2 () =
  let r = analyze {|int main() { return __syscall(6) * 0; }|} in
  Alcotest.(check int) "no violations from intrinsics" 0 r.Analyzer.vbe

(* Golden totals over the suite: these pin down the Table 1/2 rows. *)
let test_suite_golden () =
  let rows =
    List.map
      (fun (b : Suite.Programs.benchmark) ->
        let r = analyze b.source in
        (b.name, counts r))
      Suite.Programs.all
  in
  let expect =
    [
      ("perlite", (9, 1, 1, 1, 1, 1, 4, 1, 3));
      ("bzip_mini", (0, 0, 0, 0, 0, 0, 0, 0, 0));
      ("cc_mini", (10, 2, 2, 2, 0, 1, 3, 0, 3));
      ("mcf_mini", (0, 0, 0, 0, 0, 0, 0, 0, 0));
      ("gomoku", (0, 0, 0, 0, 0, 0, 0, 0, 0));
      ("hmm_mini", (1, 0, 0, 1, 0, 0, 0, 0, 0));
      ("sjeng_mini", (0, 0, 0, 0, 0, 0, 0, 0, 0));
      ("qsim", (0, 0, 0, 0, 0, 0, 0, 0, 0));
      ("h264_mini", (1, 0, 0, 1, 0, 0, 0, 0, 0));
      ("milc_mini", (3, 0, 0, 1, 0, 0, 2, 0, 2));
      ("lbm_mini", (0, 0, 0, 0, 0, 0, 0, 0, 0));
      ("sphinx_mini", (2, 0, 0, 1, 1, 0, 0, 0, 0));
    ]
  in
  List.iter2
    (fun (name, got) (ename, want) ->
      Alcotest.(check string) "order" ename name;
      if got <> want then Alcotest.failf "%s: unexpected analyzer counts" name)
    rows expect

let test_libc_clean () =
  let r =
    Analyzer.analyze ~source:Suite.Libc.source
      (Typecheck.check (Parser.parse ~name:"libc" Suite.Libc.source))
  in
  Alcotest.(check int) "libc VAE" 0 r.Analyzer.vae

(* property: VBE = eliminated + remaining, and K1 + K2 = VAE *)
let prop_partition =
  let sources =
    Array.of_list
      (List.map (fun (b : Suite.Programs.benchmark) -> b.source)
         Suite.Programs.all)
  in
  QCheck.Test.make ~name:"counts partition" ~count:(Array.length sources)
    (QCheck.make QCheck.Gen.(int_bound (Array.length sources - 1)))
    (fun i ->
      let r = analyze sources.(i) in
      r.Analyzer.vbe = r.uc + r.dc + r.mf + r.su + r.nf + r.vae
      && r.vae = r.k1 + r.k2)

let () =
  Alcotest.run "analyzer"
    [
      ("categories", categories);
      ( "general",
        [
          Alcotest.test_case "no C2 in MiniC" `Quick test_no_c2;
          Alcotest.test_case "suite golden counts" `Quick test_suite_golden;
          Alcotest.test_case "libc clean" `Quick test_libc_clean;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_partition ]);
    ]
