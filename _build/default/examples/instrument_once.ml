(* "Instrument once, reuse everywhere" — the motivation of the paper's
   introduction: past fine-grained CFI required every application to ship
   its own instrumented copy of every library; MCFI modules are
   instrumented separately and reused.

   This example compiles and instruments a small math library exactly
   once, saves the object file, then links the SAME saved object into two
   different programs.  Each program gets its own CFG: the combination of
   the library's auxiliary type information with that program's — note
   how the two processes end up with different equivalence-class counts
   from the same library bytes.

   Run with: dune exec examples/instrument_once.exe *)

module Objfile = Mcfi_compiler.Objfile
module Process = Mcfi_runtime.Process
module Machine = Mcfi_runtime.Machine
module Linker = Mcfi_runtime.Linker

let library =
  {|
typedef int (*fold_fn)(int, int);
int fold_sum(int a, int b) { return a + b; }
int fold_max(int a, int b) { if (a > b) { return a; } return b; }
int fold_range(fold_fn f, int lo, int hi) {
  int acc = lo;
  int i;
  for (i = lo + 1; i <= hi; i = i + 1) { acc = f(acc, i); }
  return acc;
}
|}

let program_a =
  {|
typedef int (*fold_fn)(int, int);
extern int fold_sum(int, int);
extern int fold_range(fold_fn f, int lo, int hi);
int main() {
  printf("sum 1..100 = %d\n", fold_range(fold_sum, 1, 100));
  return 0;
}
|}

let program_b =
  {|
typedef int (*fold_fn)(int, int);
extern int fold_max(int, int);
extern int fold_range(fold_fn f, int lo, int hi);
/* program B adds its own callback of the same type: the combined CFG
   gains an edge the library alone could not know about */
int fold_product_mod(int a, int b) { return a * b % 1000003; }
int main() {
  printf("max = %d\n", fold_range(fold_max, -5, 7));
  printf("prod mod = %d\n", fold_range(fold_product_mod, 1, 15));
  return 0;
}
|}

let compile_and_instrument name src =
  Mcfi.Pipeline.instrument
    (Mcfi.Pipeline.compile_module ~name (Suite.Libc.header ^ src))

let run_with_library ~libfile name src =
  (* load the instrumented library from disk — as shipped *)
  let lib = Objfile.load libfile in
  let prog = compile_and_instrument name src in
  let libc = compile_and_instrument "libc" Suite.Libc.source in
  let start = Mcfi.Pipeline.instrument (Linker.start_module ()) in
  let exe = Linker.link ~name:(name ^ ".out") [ start; libc; lib; prog ] in
  let proc = Process.create ~instrumented:true () in
  Process.load proc exe;
  let reason = Process.run proc in
  Fmt.pr "%s -> %a@." name Machine.pp_exit_reason reason;
  print_string (Machine.output (Process.machine proc));
  match Process.cfg_stats proc with
  | Some s ->
    Fmt.pr "  CFG: %d branches, %d targets, %d classes@.@."
      s.Cfg.Cfggen.n_ibs s.n_ibts s.n_eqcs
  | None -> ()

let () =
  let libfile = Filename.temp_file "mathlib" ".mobj" in
  (* instrument the library ONCE; neither program was in sight *)
  let lib = compile_and_instrument "mathlib" library in
  Objfile.save libfile lib;
  Fmt.pr "instrumented mathlib saved to %s (%d sites)@.@." libfile
    (List.length lib.Objfile.o_sites);
  run_with_library ~libfile "program_a" program_a;
  run_with_library ~libfile "program_b" program_b;
  Sys.remove libfile
