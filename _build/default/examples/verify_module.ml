(* The modular verifier in action (paper §7): it re-disassembles a
   module's laid-out bytes and checks the instrumentation without
   trusting the rewriter.  A well-formed module passes; three
   hand-corrupted variants are rejected with precise complaints:

   1. a check sequence's committing branch replaced by a naked Ret;
   2. a store whose sandbox mask was dropped;
   3. a function entry pushed off its 4-byte alignment.

   Run with: dune exec examples/verify_module.exe *)

module Asm = Vmisa.Asm
module Instr = Vmisa.Instr
module Objfile = Mcfi_compiler.Objfile

let src =
  {|
int log_buf[16];
int inc(int x) { return x + 1; }
int apply(int (*f)(int), int v, int *sink) {
  *sink = v;  /* a heap/global store: gets the sandbox mask */
  return f(v);
}
int main() { return apply(inc, 41, log_buf) - 42; }
|}

let compile_instrumented () =
  let obj =
    Mcfi.Pipeline.compile_module ~name:"demo" (Suite.Libc.header ^ src)
  in
  Mcfi.Pipeline.instrument obj

let verify label obj =
  let nsites = List.length obj.Objfile.o_sites in
  match Asm.assemble ~base:0x10000 ~resolve_code:(fun _ -> Some 0x10000)
          ~resolve_data:(fun _ -> Some 16) obj.Objfile.o_items with
  | Error e -> Fmt.pr "%-20s assembly failed: %a@." label Asm.pp_error e
  | Ok prog -> begin
    match Verifier.verify ~obj ~prog ~slot_base:0 ~slot_count:nsites () with
    | Ok () -> Fmt.pr "%-20s PASS@." label
    | Error issues ->
      Fmt.pr "%-20s REJECTED:@." label;
      List.iter (Fmt.pr "    %a@." Verifier.pp_issue) issues
  end

(* Corruptions *)

let drop_commit obj =
  (* replace the first committing indirect jump with a naked Ret *)
  let replaced = ref false in
  let items =
    List.map
      (fun item ->
        match item with
        | Asm.I (Instr.Jmp_r _) when not !replaced ->
          replaced := true;
          Asm.I Instr.Ret
        | item -> item)
      obj.Objfile.o_items
  in
  { obj with Objfile.o_items = items }

let drop_mask obj =
  (* remove the first AND-mask of a sandboxed store *)
  let dropped = ref false in
  let items =
    List.filter
      (fun item ->
        match item with
        | Asm.I (Instr.Binop_i (Instr.And, r, _))
          when r = Instr.rscratch0 && not !dropped ->
          dropped := true;
          false
        | _ -> true)
      obj.Objfile.o_items
  in
  { obj with Objfile.o_items = items }

let misalign_entry obj =
  (* slip one byte of padding before a function entry's alignment nops *)
  let rec go = function
    | Asm.Align 4 :: Asm.Label l :: rest when l = "inc" ->
      Asm.Align 4 :: Asm.I Instr.Nop :: Asm.Label l :: rest
    | item :: rest -> item :: go rest
    | [] -> []
  in
  { obj with Objfile.o_items = go obj.Objfile.o_items }

let () =
  let good = compile_instrumented () in
  verify "well-formed" good;
  verify "naked-ret" (drop_commit good);
  verify "unmasked-store" (drop_mask good);
  verify "misaligned-entry" (misalign_entry good)
