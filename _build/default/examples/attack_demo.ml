(* Control-flow hijacking under three regimes (paper §8.3).

   Scenario 1 — return-address smash: a stack buffer overflow aims the
   return at a never-called function.  Plain execution is hijacked;
   MCFI's rewritten return (pop + check transaction) halts.

   Scenario 2 — the CVE-2006-6235 analog: a function pointer of type
   "void (int)" is corrupted by the concurrent attacker to point at an
   execve-like function of type "int (char*, int)" whose address is
   taken.
   Coarse-grained CFI (one class for all address-taken functions — the
   binCFI/CCFIR policy, installed here into the very same ID tables)
   lets the transfer through; MCFI's type-matched equivalence classes
   put the two functions in different classes, so the check halts.

   Scenario 3 — random memory corruption: under MCFI, whatever the
   attacker writes, every committed indirect transfer still lands on a
   valid, 4-byte-aligned CFG target.

   Run with: dune exec examples/attack_demo.exe *)

let () =
  Fmt.pr "=== scenario 1: return-address smash ===@.";
  List.iter (Fmt.pr "  %a@." Security.Attacks.pp_outcome)
    (Security.Attacks.stack_smash ());
  Fmt.pr "@.=== scenario 2: function-pointer hijack to execve ===@.";
  List.iter (Fmt.pr "  %a@." Security.Attacks.pp_outcome)
    (Security.Attacks.fptr_hijack ());
  Fmt.pr "@.=== scenario 3: randomized corruption, MCFI stays in the CFG ===@.";
  List.iter
    (fun seed ->
      let reason, sound =
        Security.Attacks.random_corruption ~seed ~writes:1
      in
      Fmt.pr "  seed %Ld: %a, every indirect transfer in CFG: %b@." seed
        Mcfi_runtime.Machine.pp_exit_reason reason sound)
    [ 1L; 2L; 3L ]
