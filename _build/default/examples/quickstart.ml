(* Quickstart: the whole MCFI pipeline on a two-module program.

   Two MiniC translation units are compiled and instrumented
   *separately* (neither sees the other), statically linked, loaded
   into an MCFI process — the loader verifies each module's bytes and
   generates the CFG from the merged type information — and executed
   under check transactions.

   Run with: dune exec examples/quickstart.exe *)

let math_module =
  {|
/* a little math library: note the function-pointer-based API */
typedef int (*unary_fn)(int);

int square(int x) { return x * x; }
int cube(int x) { return x * x * x; }

int sum_map(unary_fn f, int n) {
  int s = 0;
  int i;
  for (i = 1; i <= n; i = i + 1) { s = s + f(i); }
  return s;
}
|}

let main_module =
  {|
typedef int (*unary_fn)(int);
extern int square(int x);
extern int cube(int x);
extern int sum_map(unary_fn f, int n);

int main() {
  printf("sum of squares 1..10 = %d\n", sum_map(square, 10));
  printf("sum of cubes   1..10 = %d\n", sum_map(cube, 10));
  return 0;
}
|}

let () =
  (* compile + instrument each module separately, link, load, run *)
  let proc =
    Mcfi.Pipeline.build_process ~instrumented:true
      ~sources:[ ("math", math_module); ("main", main_module) ]
      ()
  in
  let reason = Mcfi_runtime.Process.run proc in
  print_string (Mcfi_runtime.Machine.output (Mcfi_runtime.Process.machine proc));
  Fmt.pr "exit: %a@." Mcfi_runtime.Machine.pp_exit_reason reason;
  (* a peek at what MCFI built *)
  (match Mcfi_runtime.Process.cfg_stats proc with
  | Some s ->
    Fmt.pr "CFG: %d indirect branches, %d possible targets, %d equivalence classes@."
      s.Cfg.Cfggen.n_ibs s.Cfg.Cfggen.n_ibts s.Cfg.Cfggen.n_eqcs
  | None -> ());
  match Mcfi_runtime.Process.tables proc with
  | Some t ->
    Fmt.pr "ID tables: version %d, %d Tary entries@."
      (Idtables.Tables.version t)
      (List.length (Idtables.Tables.tary_entries t))
  | None -> ()
