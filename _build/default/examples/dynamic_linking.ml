(* Dynamic linking under MCFI (paper §6): the program dlopen()s a plugin
   while running.  The loader lays the plugin out, verifies it, merges
   its type information into a new CFG, and installs the new Bary/Tary
   IDs with one update transaction — binding the PLT's GOT slot between
   the Tary and Bary phases.  Before the dlopen, calling through the
   PLT would read target 0 from the GOT and halt; after it, the same
   indirect jump passes its check transaction.

   Run with: dune exec examples/dynamic_linking.exe *)

module Process = Mcfi_runtime.Process
module Machine = Mcfi_runtime.Machine
module Tables = Idtables.Tables

let plugin =
  {|
typedef int (*step_fn)(int);
int plugin_step(int x) { return (x * 3 + 1) / 2; }
int plugin_name_len(void) { return strlen("collatz-ish"); }
|}

let main_module =
  {|
extern int plugin_step(int x);
extern int plugin_name_len(void);

int main() {
  int x = 27;
  int i;
  if (dlopen("plugin") != 0) {
    print_str("dlopen failed\n");
    return 1;
  }
  /* these calls go through MCFI-instrumented PLT entries */
  for (i = 0; i < 8; i = i + 1) {
    x = plugin_step(x);
    printf("step %d -> %d\n", i, x);
  }
  printf("plugin name length: %d\n", plugin_name_len());
  return 0;
}
|}

let () =
  let proc =
    Mcfi.Pipeline.build_process ~instrumented:true
      ~sources:[ ("main", main_module) ]
      ~dynamic:[ ("plugin", plugin) ]
      ()
  in
  let tables = Option.get (Process.tables proc) in
  let stats label =
    match Process.cfg_stats proc with
    | Some s ->
      Fmt.pr "%s: table version %d, %d branches, %d targets, %d classes@."
        label (Tables.version tables) s.Cfg.Cfggen.n_ibs s.Cfg.Cfggen.n_ibts
        s.Cfg.Cfggen.n_eqcs
    | None -> ()
  in
  stats "before dlopen";
  let reason = Process.run proc in
  print_string (Machine.output (Process.machine proc));
  stats "after dlopen ";
  Fmt.pr "update transactions executed: %d@." (Process.updates proc);
  Fmt.pr "exit: %a@." Machine.pp_exit_reason reason
