examples/quickstart.mli:
