examples/dynamic_linking.ml: Cfg Fmt Idtables Mcfi Mcfi_runtime Option
