examples/attack_demo.ml: Fmt List Mcfi_runtime Security
