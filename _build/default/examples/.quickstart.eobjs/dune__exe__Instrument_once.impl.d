examples/instrument_once.ml: Cfg Filename Fmt List Mcfi Mcfi_compiler Mcfi_runtime Suite Sys
