examples/verify_module.mli:
