examples/quickstart.ml: Cfg Fmt Idtables List Mcfi Mcfi_runtime
