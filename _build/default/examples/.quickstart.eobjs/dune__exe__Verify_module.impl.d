examples/verify_module.ml: Fmt List Mcfi Mcfi_compiler Suite Verifier Vmisa
