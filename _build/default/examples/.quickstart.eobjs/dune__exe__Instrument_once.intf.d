examples/instrument_once.mli:
