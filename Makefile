.PHONY: all check faults test bench bench-json telemetry torture fuzz \
	fuzz-replay redteam redteam-replay fleet clean

all:
	dune build

# tier-1 gate: full build + test suite with warnings as errors
check:
	dune build --profile ci @all
	dune runtest --profile ci

# the fault-injection differential-oracle sweep alone
faults:
	dune exec --profile ci test/test_faults.exe

test:
	dune runtest

bench:
	dune exec bench/main.exe

# machine-readable benchmark report: the incremental-linking scaling
# curve, install-throughput, telemetry-overhead, fuzzing-throughput,
# fleet-supervision, sharded-install, dispatch-engine and
# attack-surface numbers, written to the schema-versioned file
# Benchjson.output_file (BENCH_10.json today)
bench-json:
	dune exec bench/main.exe -- json

# telemetry overhead: torture check throughput with the instrumentation
# enabled vs disabled (budget: ratio >= 0.95), plus the un-amortized
# single-domain per-check price
telemetry:
	dune exec bench/main.exe -- telemetry

# sustained multi-domain torture: several large scenarios with updater
# kills and loader storms, every outcome validated by the history oracle
torture:
	dune exec --profile ci bin/mcfi_cli.exe -- torture --long

# property-based fuzzing: random MiniC programs through the full
# pipeline against the differential oracle bank; failures shrink into
# replayable files under corpus/
fuzz:
	dune exec bin/mcfi_cli.exe -- fuzz --seed 1 --iters 2000

# re-run every committed counterexample; fails on any regression
# (a corpus file failing a *different* oracle than it recorded).
# cex_*.c only: chain_*.c are redteam artifacts with their own replayer
fuzz-replay:
	@files=$$(ls corpus/cex_*.c 2>/dev/null); \
	if [ -z "$$files" ]; then echo "corpus/ has no counterexamples"; \
	else dune exec bin/mcfi_cli.exe -- fuzz \
	  $$(for f in $$files; do echo --replay $$f; done); fi

# adversarial in-policy attack synthesis over generated programs; a
# found chain shrinks into a replayable corpus/chain_*.c artifact and
# exits nonzero (a clean run over this codebase should find nothing)
redteam:
	dune exec bin/mcfi_cli.exe -- redteam --seed 1 --iters 50

# re-search every committed chain artifact's embedded sources; fails
# if a chain vanished (policy accidentally tightened: regenerate it)
# or, worse, if one stopped confirming
redteam-replay:
	@files=$$(ls corpus/chain_*.c 2>/dev/null); \
	if [ -z "$$files" ]; then echo "corpus/ has no chain artifacts"; \
	else dune exec bin/mcfi_cli.exe -- redteam \
	  $$(for f in $$files; do echo --replay $$f; done); fi

# tenant-fleet supervision under seeded chaos: 16 tenants sharing the
# table infrastructure, a scripted mid-install kill and reader wedge
# plus random slowdowns, an install storm every 10 ticks; exits nonzero
# on any oracle anomaly, unrecovered tenant, or wedged quiescence
fleet:
	dune exec --profile ci bin/mcfi_cli.exe -- fleet --smoke --seed 11

clean:
	dune clean
