.PHONY: all check faults test bench bench-json torture clean

all:
	dune build

# tier-1 gate: full build + test suite with warnings as errors
check:
	dune build --profile ci @all
	dune runtest --profile ci

# the fault-injection differential-oracle sweep alone
faults:
	dune exec --profile ci test/test_faults.exe

test:
	dune runtest

bench:
	dune exec bench/main.exe

# machine-readable benchmark report: the incremental-linking scaling
# curve and install-throughput numbers, written to BENCH_3.json
bench-json:
	dune exec bench/main.exe -- json

# sustained multi-domain torture: several large scenarios with updater
# kills and loader storms, every outcome validated by the history oracle
torture:
	dune exec --profile ci bin/mcfi_cli.exe -- torture --long

clean:
	dune clean
