.PHONY: all check faults test bench bench-json telemetry torture clean

all:
	dune build

# tier-1 gate: full build + test suite with warnings as errors
check:
	dune build --profile ci @all
	dune runtest --profile ci

# the fault-injection differential-oracle sweep alone
faults:
	dune exec --profile ci test/test_faults.exe

test:
	dune runtest

bench:
	dune exec bench/main.exe

# machine-readable benchmark report: the incremental-linking scaling
# curve, install-throughput and telemetry-overhead numbers, written to
# the schema-versioned file Benchjson.output_file (BENCH_4.json today)
bench-json:
	dune exec bench/main.exe -- json

# telemetry overhead: torture check throughput with the instrumentation
# enabled vs disabled (budget: ratio >= 0.95), plus the un-amortized
# single-domain per-check price
telemetry:
	dune exec bench/main.exe -- telemetry

# sustained multi-domain torture: several large scenarios with updater
# kills and loader storms, every outcome validated by the history oracle
torture:
	dune exec --profile ci bin/mcfi_cli.exe -- torture --long

clean:
	dune clean
